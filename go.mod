module slacksim

go 1.22
