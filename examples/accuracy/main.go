// Accuracy vs speed: the core trade-off of slack simulation.
//
// For each of the four kernels, this example runs the gold-standard
// cycle-by-cycle simulation and then a ladder of slack schemes, reporting
// each scheme's simulated-execution-time error against CC, its violation
// rates, and its speedup in host work units — the trade-off curve behind
// the paper's Figure 4.
package main

import (
	"fmt"
	"log"

	"slacksim"
)

func run(wl string, scheme slacksim.Scheme, seed int64) slacksim.Results {
	sim, err := slacksim.New(slacksim.Config{
		Workload: wl,
		Cores:    8,
		Scheme:   scheme,
		Seed:     seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Verify(); err != nil {
		log.Fatalf("%s/%s: functional check failed: %v", wl, scheme.Name(), err)
	}
	return res
}

func main() {
	schemes := []slacksim.Scheme{
		slacksim.Schemes.Bounded(1),
		slacksim.Schemes.Bounded(4),
		slacksim.Schemes.Bounded(16),
		slacksim.Schemes.Bounded(64),
		slacksim.Schemes.Unbounded(),
		slacksim.Schemes.Quantum(100),
	}
	for _, wl := range []string{"fft", "lu", "barnes", "water"} {
		gold := run(wl, slacksim.Schemes.CC(), 1)
		fmt.Printf("\n%s — CC gold standard: %d cycles, CPI %.2f\n",
			wl, gold.Cycles, gold.CPI)
		fmt.Printf("%-8s %10s %9s %12s %12s %9s\n",
			"scheme", "cycles", "err%", "bus viol%", "map viol%", "speedup")
		for _, s := range schemes {
			r := run(wl, s, 1)
			fmt.Printf("%-8s %10d %8.2f%% %11.4f%% %11.5f%% %8.2fx\n",
				r.Scheme, r.Cycles, r.CycleErrorVs(gold),
				100*r.BusRate, 100*r.MapRate, r.SpeedupOver(gold))
		}
	}
	fmt.Println("\nNote: every run above also passed its functional reference check,")
	fmt.Println("so the errors are pure timing distortion, never corrupted state.")
}
