// Quickstart: simulate the paper's 8-core CMP running the FFT kernel
// under bounded slack, print the run summary, and check the workload's
// functional result against its reference implementation.
package main

import (
	"fmt"
	"log"

	"slacksim"
)

func main() {
	sim, err := slacksim.New(slacksim.Config{
		Workload: "fft",
		Scale:    2,
		Cores:    8,
		Scheme:   slacksim.Schemes.Bounded(10),
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())

	if err := sim.Verify(); err != nil {
		log.Fatalf("functional check failed: %v", err)
	}
	fmt.Println("functional check: the simulated FFT matches the reference bit for bit")
}
