// Scaling and scheme comparison: two studies the paper names as future
// work, run against each other.
//
// First it sweeps the target machine size (the paper simulated only
// 8-on-8), showing that unbounded slack's cost advantage survives scaling
// while its accuracy does not. Then, at the paper's 8-core size, it
// compares the full scheme spectrum — cycle-by-cycle, quantum, bounded,
// adaptive, Graphite-style Lax-P2P, and unbounded — on one workload.
package main

import (
	"fmt"
	"log"

	"slacksim"
)

func run(cores int, scheme slacksim.Scheme) slacksim.Results {
	sim, err := slacksim.New(slacksim.Config{
		Workload: "water",
		Cores:    cores,
		Scheme:   scheme,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Verify(); err != nil {
		log.Fatalf("%s on %d cores: %v", scheme.Name(), cores, err)
	}
	return res
}

func main() {
	fmt.Println("machine-size sweep (water, unbounded slack vs cycle-by-cycle):")
	fmt.Printf("%6s %10s %10s %12s %9s\n", "cores", "CC work", "SU work", "bus viol%", "err%")
	for _, cores := range []int{2, 4, 8, 16} {
		cc := run(cores, slacksim.Schemes.CC())
		su := run(cores, slacksim.Schemes.Unbounded())
		fmt.Printf("%6d %10.0f %10.0f %11.3f%% %8.2f%%\n",
			cores, cc.HostWorkUnits, su.HostWorkUnits,
			100*su.BusRate, su.CycleErrorVs(cc))
	}

	fmt.Println("\nscheme spectrum at 8 cores (water):")
	gold := run(8, slacksim.Schemes.CC())
	schemes := []slacksim.Scheme{
		slacksim.Schemes.CC(),
		slacksim.Schemes.Quantum(100),
		slacksim.Schemes.Bounded(8),
		slacksim.Schemes.AdaptiveDefault(),
		slacksim.Schemes.LaxP2P(100, 50),
		slacksim.Schemes.Unbounded(),
	}
	fmt.Printf("%-10s %12s %9s %9s %12s\n", "scheme", "host work", "speedup", "err%", "suspensions")
	for _, s := range schemes {
		r := run(8, s)
		fmt.Printf("%-10s %12.0f %8.2fx %8.2f%% %12d\n",
			r.Scheme, r.HostWorkUnits, r.SpeedupOver(gold), r.CycleErrorVs(gold), r.Suspensions)
	}
	fmt.Println("\nSlack's speedup holds as the machine grows; its accuracy does not —")
	fmt.Println("the trade-off the paper's accuracy-control schemes exist to manage.")
}
