// Speculative slack: checkpoints, rollback, and the analytical model.
//
// The paper evaluated speculative slack simulation analytically: it
// measured checkpointing overhead (Table 2), the fraction of intervals
// with a violation F (Table 3), and the first-violation distance Dr
// (Table 4), then plugged them into Ts = (1-F)·Tcpt + F·Dr·Tcpt/I + F·Tcc
// (Table 5). This simulator implements rollback for real, so this example
// does both: it derives the model estimate from measured F/Dr and compares
// it against an actual speculative run with rollbacks.
package main

import (
	"fmt"
	"log"

	"slacksim"
	"slacksim/internal/specmodel"
)

const interval = 2000

func run(cfg slacksim.Config) slacksim.Results {
	sim, err := slacksim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.Verify(); err != nil {
		log.Fatalf("functional check failed: %v", err)
	}
	return res
}

func main() {
	base := slacksim.Config{Workload: "barnes", Scale: 1, Cores: 8, Seed: 4}

	ccCfg := base
	ccCfg.Scheme = slacksim.Schemes.CC()
	cc := run(ccCfg)

	// Slack run with periodic checkpoints but no rollback: Tcpt, F, Dr.
	cptCfg := base
	cptCfg.Scheme = slacksim.Schemes.Bounded(32)
	cptCfg.CheckpointInterval = interval
	cptCfg.TrackIntervals = []int64{interval}
	cpt := run(cptCfg)
	ir := cpt.Intervals[0]

	fmt.Printf("cycle-by-cycle:       %10.0f work units (%d cycles)\n",
		cc.HostWorkUnits, cc.Cycles)
	fmt.Printf("slack+checkpointing:  %10.0f work units, %d checkpoints\n",
		cpt.HostWorkUnits, cpt.Checkpoints)
	fmt.Printf("interval stats:       F = %.2f, Dr = %.0f cycles (I = %d)\n",
		ir.FractionViolating, ir.MeanFirstDistance, interval)

	in := specmodel.Inputs{
		Tcc:  cc.HostWorkUnits,
		Tcpt: cpt.HostWorkUnits,
		F:    ir.FractionViolating,
		Dr:   ir.MeanFirstDistance,
		I:    interval,
	}
	ts, err := in.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalytical model Ts:  %10.0f work units", ts)
	if ok, _ := in.Worthwhile(); ok {
		fmt.Println("  -> model says speculation beats CC")
	} else {
		fmt.Println("  -> model says speculation loses to CC (the paper's Table 5 outcome)")
	}
	if f, err := in.BreakEvenF(); err == nil {
		fmt.Printf("break-even F:         %10.2f (need fewer violating intervals than this)\n", f)
	}

	// Now run speculation for real.
	specCfg := cptCfg
	specCfg.Rollback = true
	specCfg.TrackIntervals = nil
	spec := run(specCfg)
	fmt.Printf("\nmeasured speculative: %10.0f work units, %d rollbacks, %d cycles wasted, %d replayed\n",
		spec.HostWorkUnits, spec.Rollbacks, spec.WastedCycles, spec.ReplayCycles)
	fmt.Printf("surviving violations: bus=%d map=%d (rollback erased the rest)\n",
		spec.BusViolations, spec.MapViolations)
}
