// Adaptive slack: hold a target violation rate with a feedback loop.
//
// The example sweeps target violation rates (as in the paper's Figure 4)
// and shows, for each, the rate the controller actually achieved, the
// slack bound it converged to, and the host cost — including the paper's
// observation that a wider violation band is cheaper because the bound is
// adjusted less often, and that adaptive runs cost more than a plain
// bounded run at the same violation rate (the price of the safety net).
package main

import (
	"fmt"
	"log"

	"slacksim"
)

func adaptiveRun(target, band float64) slacksim.Results {
	sim, err := slacksim.New(slacksim.Config{
		Workload: "water",
		Scale:    2,
		Cores:    8,
		Seed:     2,
		Scheme: slacksim.Schemes.Adaptive(slacksim.AdaptiveConfig{
			TargetRate:   target,
			Band:         band,
			InitialBound: 4,
			MinBound:     1,
			MaxBound:     512,
			Period:       512,
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("target rate sweep (violation band 5%):")
	fmt.Printf("%10s %12s %10s %10s %12s %12s\n",
		"target%", "achieved%", "bound", "meanBound", "adjustments", "host work")
	for _, target := range []float64{0.0005, 0.001, 0.005, 0.01, 0.02} {
		r := adaptiveRun(target, 0.05)
		fmt.Printf("%9.3f%% %11.4f%% %10d %10.1f %12d %12.0f\n",
			100*target, 100*r.ViolationRate, r.FinalBound, r.MeanBound,
			r.Adjustments, r.HostWorkUnits)
	}

	fmt.Println("\nviolation band sweep (target 0.5%):")
	fmt.Printf("%8s %12s %12s %12s\n", "band", "achieved%", "adjustments", "host work")
	for _, band := range []float64{0, 0.05, 0.25, 0.5} {
		r := adaptiveRun(0.005, band)
		fmt.Printf("%7.0f%% %11.4f%% %12d %12.0f\n",
			100*band, 100*r.ViolationRate, r.Adjustments, r.HostWorkUnits)
	}
	fmt.Println("\nWider bands adjust the bound less often, trading rate precision")
	fmt.Println("for lower control overhead — the paper's Figure 4 observation.")
}
