// Package slacksim is a parallel simulator of chip multiprocessors (CMPs)
// on CMPs with adaptive and speculative slack, reproducing Chen, Dabbiru,
// Annavaram and Dubois, "Adaptive and Speculative Slack Simulations of
// CMPs on CMPs" (MoBS 2010).
//
// The simulated target is a snooping-bus CMP of out-of-order cores with
// private MESI L1s and a shared L2. Each target core is simulated by its
// own simulation thread and one simulation manager thread models the
// shared memory system and paces the simulation. The slack between any
// two cores' clocks is governed by a scheme: cycle-by-cycle (exact),
// bounded slack, unbounded slack, quantum, or adaptive slack that holds a
// target violation rate; periodic checkpoints with rollback implement
// speculative slack simulation.
//
// Quick start:
//
//	sim, err := slacksim.New(slacksim.Config{
//		Workload: "fft",
//		Scheme:   slacksim.Schemes.Bounded(10),
//	})
//	if err != nil { ... }
//	res, err := sim.Run()
//	fmt.Println(res)
package slacksim

import (
	"fmt"
	"sync/atomic"
	"time"

	"slacksim/internal/adaptive"
	"slacksim/internal/engine"
	"slacksim/internal/memtrace"
	"slacksim/internal/sampling"
	"slacksim/internal/synth"
	"slacksim/internal/trace"
	"slacksim/internal/violation"
	"slacksim/internal/workload"
)

// Results summarizes a finished run; see the fields for the simulated
// execution time, violation counts and rates, host costs, and
// checkpoint/rollback accounting.
type Results = engine.Results

// Scheme is a fully-parameterized synchronization scheme between
// simulation threads.
type Scheme = engine.Scheme

// AdaptiveConfig parameterizes the adaptive slack controller.
type AdaptiveConfig = adaptive.Config

// IntervalReport carries per-checkpoint-interval violation statistics
// (fraction of intervals violating, mean first-violation distance).
type IntervalReport = violation.IntervalReport

// Progress is a monotone snapshot of a run's forward motion, delivered
// through Config.OnProgress (see engine.Progress).
type Progress = engine.Progress

// SynthConfig parameterizes the synthetic workload generator (see
// internal/synth) for Config.Workload = "synth".
type SynthConfig = synth.Config

// SamplingPlan configures interval sampling for Config.Sampling.
type SamplingPlan = sampling.Plan

// SamplingReport is the interval-sampling estimate attached to
// Results.Sampling: estimated cycles with a confidence bound.
type SamplingReport = sampling.Report

// StallError is the structured no-forward-progress failure returned by
// parallel runs whose stall watchdog fired.
type StallError = engine.StallError

// ErrInterrupted reports that a run was stopped early via Config.Interrupt.
var ErrInterrupted = engine.ErrInterrupted

// ErrSnapshotted reports that a run stopped at a checkpoint boundary to
// export its state via Config.SnapshotRequest; continue it elsewhere with
// Simulation.Resume.
var ErrSnapshotted = engine.ErrSnapshotted

// Policy selects the adaptive controller's bound-adjustment policy.
type Policy = adaptive.Policy

// Adjustment policies for Config.AdaptivePolicy.
const (
	// AIMD is additive increase, multiplicative decrease (the default).
	AIMD = adaptive.AIMD
	// AIAD is additive both ways (the ablation alternative).
	AIAD = adaptive.AIAD
)

// Schemes groups the scheme constructors.
var Schemes = struct {
	// CC is exact cycle-by-cycle simulation, the gold standard.
	CC func() Scheme
	// Bounded keeps all core clocks within the given slack bound.
	Bounded func(bound int64) Scheme
	// Unbounded lets every core run free (fastest, least accurate).
	Unbounded func() Scheme
	// Quantum barriers all cores every q cycles.
	Quantum func(q int64) Scheme
	// Adaptive steers the slack bound to hold a target violation rate.
	Adaptive func(cfg AdaptiveConfig) Scheme
	// AdaptiveDefault is Adaptive with the paper's base configuration
	// (0.01% target, 5% band).
	AdaptiveDefault func() Scheme
	// LaxP2P is Graphite-style random-pairwise synchronization (the
	// related-work scheme the paper planned to explore): every period
	// cycles a core syncs with one random partner, waiting when more
	// than maxAhead cycles past it.
	LaxP2P func(period, maxAhead int64) Scheme
}{
	CC:        engine.CycleByCycle,
	Bounded:   engine.BoundedSlack,
	Unbounded: engine.UnboundedSlack,
	Quantum:   engine.QuantumScheme,
	Adaptive:  engine.AdaptiveSlack,
	AdaptiveDefault: func() Scheme {
		return engine.AdaptiveSlack(adaptive.DefaultConfig())
	},
	LaxP2P: engine.LaxP2PScheme,
}

// Config describes a simulation to construct with New.
type Config struct {
	// Cores is the number of target cores (default 8, the paper's CMP).
	Cores int
	// Workload names a built-in benchmark ("fft", "lu", "barnes",
	// "water", "falseshare", "private", ...), or one of the scenario
	// kinds: "synth" (requires Synth) and "trace" (requires TraceData).
	Workload string
	// Scale multiplies the workload's input size (default 1, the quick
	// size; larger scales approach the paper's inputs).
	Scale int
	// Synth parameterizes the synthetic workload generator; used when
	// Workload is "synth".
	Synth *synth.Config
	// TraceData is an encoded memory trace (internal/memtrace format) to
	// replay; used when Workload is "trace". The machine must have the
	// trace's core count.
	TraceData []byte
	// Sampling, when non-nil, enables interval sampling: detailed
	// intervals under cycle-accurate CC pacing, fast-forward through
	// warmed functional mode for the rest, and an estimated cycle count
	// with a confidence bound in Results.Sampling. Deterministic host
	// with the cc scheme only.
	Sampling *sampling.Plan
	// MemRecorder, when non-nil, captures every core's architectural
	// retire stream during the run (use memtrace.NewRecorder); encode it
	// afterwards to obtain a replayable trace.
	MemRecorder engine.MemRecorder
	// Scheme is the slack scheme (default cycle-by-cycle).
	Scheme Scheme
	// MaxInstructions stops the run after this many total committed
	// instructions (0 = run the programs to completion).
	MaxInstructions uint64
	// Seed drives the deterministic host's scheduling (ignored by the
	// parallel host).
	Seed int64
	// CheckpointInterval, when positive, takes a global checkpoint every
	// that many simulated cycles.
	CheckpointInterval int64
	// Rollback enables speculative slack simulation: restore the last
	// checkpoint on a violation and replay cycle-by-cycle to the next
	// boundary. Deterministic host only.
	Rollback bool
	// Parallel selects the goroutine-parallel host (one goroutine per
	// core plus a manager, as the paper runs Pthreads) instead of the
	// seeded deterministic host.
	Parallel bool
	// TrackIntervals enables per-interval violation statistics for the
	// given interval lengths (the paper's Tables 3 and 4).
	TrackIntervals []int64
	// MapViolationsOnly restricts adaptation and rollback to cache-map
	// violations, the paper's suggested refinement for cutting rollback
	// costs.
	MapViolationsOnly bool
	// MeasureViolations charges the violation-detection overhead to the
	// host cost model even when the scheme does not require it (it is
	// implied by Adaptive, Rollback and TrackIntervals; set it to model
	// an instrumented bounded run, as in the Figure 3 experiments).
	MeasureViolations bool
	// AdaptivePolicy selects the adaptive controller's bound-adjustment
	// policy (AIMD by default; AIAD exists for the ablation study).
	AdaptivePolicy Policy
	// TraceEvents, when positive, keeps a ring of the last N noteworthy
	// events (serviced requests, violations, bound changes, checkpoints,
	// rollbacks), retrievable with Simulation.Trace after the run. On the
	// parallel host the ring also feeds the stall watchdog: a *StallError
	// dump includes the trace tail, so a wedged run fails with the events
	// leading up to the wedge attached.
	TraceEvents int
	// OnProgress, when non-nil, receives monotone progress snapshots as
	// the run advances; the callback must be fast and non-blocking.
	OnProgress func(Progress)
	// ProgressEvery is the minimum global-time advance, in simulated
	// cycles, between OnProgress deliveries (default 1024).
	ProgressEvery int64
	// Interrupt, when non-nil, is an external stop request: set it true
	// and the run returns ErrInterrupted at its next pacing step.
	Interrupt *atomic.Bool
	// StallTimeout overrides the parallel host's stall-watchdog budget
	// (0 = the 30s default, negative disables it).
	StallTimeout time.Duration
	// SnapshotRequest, when non-nil and set true, asks the run to export
	// its complete state at the next checkpoint boundary: OnSnapshot
	// receives the serialized state and the run returns ErrSnapshotted.
	// Requires CheckpointInterval > 0 and the deterministic host.
	SnapshotRequest *atomic.Bool
	// OnSnapshot receives the serialized run state when a snapshot
	// request fires; pass it to Simulation.Resume (on a fresh Simulation
	// built from the same Config, possibly on another machine) to
	// continue the run.
	OnSnapshot func(state []byte)
}

// Simulation is a constructed machine ready to run once.
type Simulation struct {
	machine *engine.Machine
	wload   workload.Workload
	runCfg  engine.RunConfig
	par     bool
	used    bool
}

// New builds a simulation from cfg.
func New(cfg Config) (*Simulation, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	w, err := buildWorkload(cfg)
	if err != nil {
		return nil, err
	}
	return NewWithWorkload(cfg, w)
}

// buildWorkload resolves cfg's workload: a scenario kind ("synth",
// "trace") or a registry benchmark.
func buildWorkload(cfg Config) (workload.Workload, error) {
	switch cfg.Workload {
	case "":
		return nil, fmt.Errorf("slacksim: Config.Workload is required")
	case "synth":
		var sc synth.Config
		if cfg.Synth != nil {
			sc = *cfg.Synth
		}
		return synth.New(sc)
	case "trace":
		if len(cfg.TraceData) == 0 {
			return nil, fmt.Errorf("slacksim: workload \"trace\" requires Config.TraceData")
		}
		return memtrace.NewReplay(cfg.TraceData)
	default:
		return workload.ByName(cfg.Workload, cfg.Scale)
	}
}

// machinePool recycles released machines across Simulations: a machine
// whose Simulation called Release is reset and handed to the next New
// with the same shape, so repeated runs (sweeps, services, benchmarks)
// reuse every warmed internal allocation instead of rebuilding the
// machine. Machines are only pooled on explicit Release, so Simulations
// that keep inspecting their machine after the run are unaffected.
var machinePool = engine.NewMachinePool()

// NewWithWorkload builds a simulation running a custom workload (anything
// satisfying the workload.Workload contract: per-core programs plus a
// memory initializer).
func NewWithWorkload(cfg Config, w workload.Workload) (*Simulation, error) {
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	m, err := machinePool.Get(engine.MachineConfig{NumCores: cfg.Cores}, w)
	if err != nil {
		return nil, err
	}
	rc := engine.RunConfig{
		Scheme:             cfg.Scheme,
		MaxInstructions:    cfg.MaxInstructions,
		Seed:               cfg.Seed,
		CheckpointInterval: cfg.CheckpointInterval,
		Rollback:           cfg.Rollback,
		TrackIntervals:     cfg.TrackIntervals,
		MeasureViolations:  cfg.MeasureViolations,
		AdaptivePolicy:     cfg.AdaptivePolicy,
		OnProgress:         cfg.OnProgress,
		ProgressEvery:      cfg.ProgressEvery,
		Interrupt:          cfg.Interrupt,
		StallTimeout:       cfg.StallTimeout,
		SnapshotRequest:    cfg.SnapshotRequest,
		OnSnapshot:         cfg.OnSnapshot,
		Sampling:           cfg.Sampling,
		MemRecorder:        cfg.MemRecorder,
	}
	if cfg.MapViolationsOnly {
		rc.Selected = []violation.Type{violation.Map}
	}
	if cfg.TraceEvents > 0 {
		rc.Tracer = trace.NewRing(cfg.TraceEvents)
	}
	return &Simulation{machine: m, wload: w, runCfg: rc, par: cfg.Parallel}, nil
}

// Release returns the simulation's machine to the process-wide machine
// pool, where the next New with the same core count and configuration
// will reuse it (reset, with all warmed allocations kept). Call it after
// the run's Results — and any Machine()/Verify() inspection — are no
// longer needed; the Simulation must not be used afterwards.
func (s *Simulation) Release() {
	if s.machine != nil {
		machinePool.Put(s.machine)
		s.machine = nil
	}
}

// Run simulates to completion and returns the results. A Simulation runs
// once; build a new one for another run.
func (s *Simulation) Run() (Results, error) {
	if s.used {
		return Results{}, fmt.Errorf("slacksim: this simulation already ran; construct a new one")
	}
	if s.machine == nil {
		return Results{}, fmt.Errorf("slacksim: this simulation was released; construct a new one")
	}
	s.used = true
	if s.par {
		return engine.RunParallel(s.machine, s.runCfg)
	}
	return engine.Run(s.machine, s.runCfg)
}

// Resume continues a run that exported its state via a snapshot request.
// The Simulation must be freshly built from the same Config (same
// workload, cores, scheme and seed) that produced the state — typically
// on another machine — and counts as this Simulation's single run. The
// continued run produces Results identical to an uninterrupted one
// (wall-clock timing aside).
func (s *Simulation) Resume(state []byte) (Results, error) {
	if s.used {
		return Results{}, fmt.Errorf("slacksim: this simulation already ran; construct a new one")
	}
	s.used = true
	if s.par {
		return Results{}, fmt.Errorf("slacksim: resume requires the deterministic host")
	}
	return engine.Resume(s.machine, s.runCfg, state)
}

// Verify checks the workload's functional result in the simulated memory
// against its reference implementation, when the workload supports it.
func (s *Simulation) Verify() error {
	v, ok := s.wload.(workload.Verifier)
	if !ok {
		return fmt.Errorf("slacksim: workload %s has no verifier", s.wload.Name())
	}
	return v.Verify(s.machine.Memory())
}

// Machine exposes the underlying machine for inspection (per-core caches,
// the status map, target memory). Intended for tests and tools.
func (s *Simulation) Machine() *engine.Machine { return s.machine }

// Trace returns the retained event trace as text (empty when tracing was
// not enabled).
func (s *Simulation) Trace() string {
	if s.runCfg.Tracer == nil {
		return ""
	}
	return s.runCfg.Tracer.String()
}

// MustRun builds and runs a simulation, panicking on error; a convenience
// for examples and benchmarks.
func MustRun(cfg Config) Results {
	sim, err := New(cfg)
	if err != nil {
		panic(err)
	}
	res, err := sim.Run()
	if err != nil {
		panic(err)
	}
	return res
}
