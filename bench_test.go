package slacksim

import (
	"fmt"
	"sync"
	"testing"

	"slacksim/internal/experiments"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation section. Each prints its rows once (so `go test -bench .`
// reproduces the evaluation) and reports headline numbers as benchmark
// metrics. Absolute values are host- and scale-dependent; the shapes —
// who wins, by what factor, where crossovers fall — are the reproduction
// targets and are also asserted by the tests in internal/experiments.

// benchCfg is the shared scaled-down experiment configuration: the
// paper's 8-core CMP, all four kernels, checkpoint intervals scaled to
// the run length as the paper's 5k..100k are to 100M-instruction runs.
func benchCfg() experiments.Config {
	cfg := experiments.Default()
	return cfg
}

var printOnce sync.Map

func printFirst(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", key, text)
	}
}

// BenchmarkFig3BusViolations regenerates Figure 3(a): bus violation rate
// versus slack bound for every workload. Expected shape: the rate grows
// with the bound and plateaus at the unbounded-slack rate.
func BenchmarkFig3BusViolations(b *testing.B) {
	cfg := benchCfg()
	var series []experiments.Fig3Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFirst(b, "Figure 3", experiments.FormatFig3(series))
	last := series[0].Points
	b.ReportMetric(100*last[len(last)-1].BusRate, "bus-viol-%-unbounded")
}

// BenchmarkFig3MapViolations reports Figure 3(b)'s headline: map
// violations stay at least an order of magnitude below bus violations and
// are negligible at small bounds.
func BenchmarkFig3MapViolations(b *testing.B) {
	cfg := benchCfg()
	cfg.Workloads = []string{"water", "barnes"} // the lock-based kernels
	var series []experiments.Fig3Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Fig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFirst(b, "Figure 3(b) lock kernels", experiments.FormatFig3(series))
	pts := series[0].Points
	b.ReportMetric(100*pts[len(pts)-1].MapRate, "map-viol-%-unbounded")
	b.ReportMetric(100*pts[0].MapRate, "map-viol-%-smallest-bound")
}

// BenchmarkFig4AdaptiveTradeoff regenerates Figure 4: simulation cost
// versus violation rate for CC, bounded slack S1-S9, and adaptive slack
// with 0% and 5% violation bands across twelve target rates. Expected
// shape: adaptive always beats CC but costs more than bounded slack at
// the same violation rate; wider bands are cheaper.
func BenchmarkFig4AdaptiveTradeoff(b *testing.B) {
	cfg := benchCfg()
	var r experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig4(cfg, "water")
		if err != nil {
			b.Fatal(err)
		}
	}
	printFirst(b, "Figure 4 (water)", experiments.FormatFig4(r))
	cc := r.Baseline[0].HostWork
	worstAdaptive := 0.0
	for _, p := range append(r.AdaptiveBand0, r.AdaptiveBand5...) {
		if p.HostWork > worstAdaptive {
			worstAdaptive = p.HostWork
		}
	}
	b.ReportMetric(cc/worstAdaptive, "min-adaptive-speedup-vs-CC")
}

// BenchmarkTable2SimulationTime regenerates Table 2: cost of CC, SU, the
// base adaptive scheme, and adaptive plus checkpointing at four interval
// lengths. Expected shape: SU 2-3x cheaper than CC; adaptive in between;
// the densest checkpointing the most expensive, approaching plain
// adaptive as the interval grows.
func BenchmarkTable2SimulationTime(b *testing.B) {
	cfg := benchCfg()
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFirst(b, "Table 2", experiments.FormatTable2(cfg, rows))
	var speedup float64
	for _, r := range rows {
		speedup += r.CC / r.SU
	}
	b.ReportMetric(speedup/float64(len(rows)), "mean-SU-speedup-vs-CC")
}

// BenchmarkTable3ViolatingIntervals regenerates Table 3: the fraction of
// checkpoint intervals with at least one violation under the base
// adaptive scheme. Expected shape: F grows with the interval length.
func BenchmarkTable3ViolatingIntervals(b *testing.B) {
	cfg := benchCfg()
	var rows []experiments.Table34Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3And4(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFirst(b, "Tables 3 and 4", experiments.FormatTable3And4(cfg, rows))
	reps := rows[0].Reports
	b.ReportMetric(reps[len(reps)-1].FractionViolating, "F-largest-interval")
}

// BenchmarkTable4FirstViolationDistance regenerates Table 4: the mean
// distance from an interval's start to its first violation — the rollback
// distance Dr of the analytical model. Expected shape: Dr grows
// sublinearly with the interval.
func BenchmarkTable4FirstViolationDistance(b *testing.B) {
	cfg := benchCfg()
	var rows []experiments.Table34Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3And4(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reps := rows[0].Reports
	printFirst(b, "Table 4 (see Tables 3 and 4 above)", "")
	b.ReportMetric(reps[len(reps)-1].MeanFirstDistance, "Dr-largest-interval-cycles")
}

// BenchmarkTable5SpeculativeModel regenerates Table 5: the analytical
// speculative-simulation cost from measured Tcc/Tcpt/F/Dr — and, beyond
// the paper, compares it against a real speculative run with rollback.
// Expected shape: with violating fractions this high, speculation does
// not beat cycle-by-cycle (the paper's negative result).
func BenchmarkTable5SpeculativeModel(b *testing.B) {
	cfg := benchCfg()
	cfg.Workloads = []string{"barnes", "water"}
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table5(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFirst(b, "Table 5", experiments.FormatTable5(rows))
	r := rows[len(rows)-1]
	b.ReportMetric(r.Modeled/r.CC, "modeled-Ts-over-Tcc")
	b.ReportMetric(r.Measured/r.CC, "measured-Ts-over-Tcc")
}

// BenchmarkAblationStudies runs the design-choice ablations DESIGN.md
// calls out: AIMD vs AIAD adaptation, violation-band width, and selective
// (map-only) rollback.
func BenchmarkAblationStudies(b *testing.B) {
	cfg := benchCfg()
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Ablations(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	printFirst(b, "Ablations", experiments.FormatAblations(rows))
	b.ReportMetric(float64(len(rows)), "ablation-rows")
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// core-cycles per second under each scheme on the deterministic host.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, tc := range []struct {
		name   string
		scheme Scheme
	}{
		{"CC", Schemes.CC()},
		{"S16", Schemes.Bounded(16)},
		{"SU", Schemes.Unbounded()},
		{"P2P100", Schemes.LaxP2P(100, 50)},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var cycles int64
			for i := 0; i < b.N; i++ {
				sim, err := New(Config{
					Workload: "fft", Cores: 8, Scheme: tc.scheme, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles * int64(len(res.PerCore))
				sim.Release()
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "core-cycles/s")
		})
	}
}

// BenchmarkParallelHost measures the goroutine host on the same workload,
// for comparison with the deterministic host.
func BenchmarkParallelHost(b *testing.B) {
	b.ReportAllocs()
	var cycles int64
	for i := 0; i < b.N; i++ {
		sim, err := New(Config{
			Workload: "fft", Cores: 8, Scheme: Schemes.Bounded(16), Parallel: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles * int64(len(res.PerCore))
		sim.Release()
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "core-cycles/s")
}
