package slacksim

import (
	"strings"
	"testing"

	"slacksim/internal/workload"
)

func TestQuickstartFlow(t *testing.T) {
	sim, err := New(Config{
		Workload: "fft",
		Cores:    4,
		Scheme:   Schemes.Bounded(10),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 || res.Cycles == 0 {
		t.Fatalf("empty results: %v", res)
	}
	if err := sim.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(res.String(), "fft") {
		t.Errorf("summary %q missing workload", res.String())
	}
	if res.Table() == "" {
		t.Error("empty table")
	}
}

func TestDefaultsAre8CoreCC(t *testing.T) {
	sim, err := New(Config{Workload: "private"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "CC" {
		t.Errorf("default scheme %q, want CC", res.Scheme)
	}
	if len(res.PerCore) != 8 {
		t.Errorf("default cores %d, want 8", len(res.PerCore))
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing workload accepted")
	}
	if _, err := New(Config{Workload: "bogus"}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := New(Config{Workload: "fft", Scheme: Schemes.Bounded(0)}); err == nil {
		// Scheme errors surface at Run, not New; make sure Run catches it.
		sim, _ := New(Config{Workload: "fft", Scheme: Schemes.Bounded(0)})
		if sim != nil {
			if _, err := sim.Run(); err == nil {
				t.Error("invalid scheme accepted by Run")
			}
		}
	}
}

func TestSimulationRunsOnce(t *testing.T) {
	sim, err := New(Config{Workload: "private", Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Error("second Run on the same simulation accepted")
	}
}

func TestSchemeConstructors(t *testing.T) {
	if Schemes.CC().Name() != "CC" || Schemes.Unbounded().Name() != "SU" {
		t.Error("scheme names wrong")
	}
	if Schemes.Bounded(7).Name() != "S7" || Schemes.Quantum(50).Name() != "Q50" {
		t.Error("parameterized scheme names wrong")
	}
	if Schemes.AdaptiveDefault().Adaptive.TargetRate != 0.0001 {
		t.Error("default adaptive target is not the paper's 0.01%")
	}
}

func TestSpeculativeViaPublicAPI(t *testing.T) {
	sim, err := New(Config{
		Workload:           "water",
		Cores:              4,
		Scheme:             Schemes.Bounded(64),
		Seed:               3,
		CheckpointInterval: 400,
		Rollback:           true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints == 0 {
		t.Error("no checkpoints")
	}
	if err := sim.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestMapOnlySelection(t *testing.T) {
	sim, err := New(Config{
		Workload:          "water",
		Cores:             4,
		Scheme:            Schemes.Bounded(32),
		Seed:              2,
		MapViolationsOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With only map violations selected, the reported (selected) rate
	// must equal the map rate.
	if res.ViolationRate != res.MapRate {
		t.Errorf("selected rate %v != map rate %v", res.ViolationRate, res.MapRate)
	}
}

func TestParallelHostViaPublicAPI(t *testing.T) {
	sim, err := New(Config{
		Workload: "lu",
		Cores:    4,
		Scheme:   Schemes.Bounded(16),
		Parallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Host != "parallel" {
		t.Errorf("host %q", res.Host)
	}
	if err := sim.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomWorkload(t *testing.T) {
	w := workload.NewPrivate(64, 1)
	sim, err := NewWithWorkload(Config{Cores: 2, Scheme: Schemes.CC()}, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyWithoutRunIsClean(t *testing.T) {
	// Verify on an un-run simulation checks the *initial* memory, which
	// for most workloads fails — but it must not panic.
	sim, err := New(Config{Workload: "fft", Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	_ = sim.Verify() // error is fine; panic is not
}

func TestTraceCapture(t *testing.T) {
	sim, err := New(Config{
		Workload:           "falseshare",
		Cores:              4,
		Scheme:             Schemes.Bounded(32),
		Seed:               3,
		CheckpointInterval: 500,
		Rollback:           true,
		TraceEvents:        4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Trace() != "" {
		t.Error("trace non-empty before run")
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	tr := sim.Trace()
	if !strings.Contains(tr, "request") {
		t.Errorf("trace missing requests:\n%s", tr)
	}
	if !strings.Contains(tr, "checkpoint") && !strings.Contains(tr, "rollback") {
		t.Errorf("trace missing engine events:\n%s", tr)
	}
}

func TestNoTraceByDefault(t *testing.T) {
	sim, err := New(Config{Workload: "private", Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sim.Trace() != "" {
		t.Error("untraced run produced a trace")
	}
}

func TestLaxP2PViaPublicAPI(t *testing.T) {
	sim, err := New(Config{
		Workload: "fft",
		Cores:    4,
		Scheme:   Schemes.LaxP2P(100, 50),
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "P2P100" {
		t.Errorf("scheme %q", res.Scheme)
	}
	if err := sim.Verify(); err != nil {
		t.Fatal(err)
	}
}
