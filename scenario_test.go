package slacksim

import (
	"bytes"
	"encoding/json"
	"testing"

	"slacksim/internal/memtrace"
	"slacksim/internal/synth"
)

// runScenario runs one config to completion, verifies its functional
// result, and returns the Results.
func runScenario(t *testing.T, cfg Config) Results {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Verify(); err != nil {
		t.Fatalf("functional check: %v", err)
	}
	return res
}

// canonicalResults renders Results with the host-side fields zeroed: the
// host name, wall clock, host work units and suspension count describe
// the simulating host, not the simulated machine, and legitimately
// differ between the deterministic and parallel hosts. Everything else —
// cycles, instructions, per-core stats, violation counts, sampling
// reports — must be byte-identical for runs that claim cross-host
// equivalence.
func canonicalResults(t *testing.T, r Results) string {
	t.Helper()
	r.Host = ""
	r.WallClock = 0
	r.HostWorkUnits = 0
	r.Suspensions = 0
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSynthCrossHostIdentical: a race-free synth pattern (Zipf-skewed
// hot lines synchronize only at barriers) produces byte-identical
// Results on the deterministic and parallel hosts under CC — the
// engine's strongest cross-host check, extended to generated workloads.
func TestSynthCrossHostIdentical(t *testing.T) {
	sc := synth.Config{Pattern: synth.PatternZipf, Ops: 48, Phases: 3}
	det := runScenario(t, Config{Workload: "synth", Synth: &sc, Cores: 4, Seed: 1})
	par := runScenario(t, Config{Workload: "synth", Synth: &sc, Cores: 4, Parallel: true})
	if d, p := canonicalResults(t, det), canonicalResults(t, par); d != p {
		t.Errorf("zipf synth differs across hosts:\ndet %s\npar %s", d, p)
	}
}

// TestSynthPatternsBothHostsAllSchemes: every generator pattern runs and
// verifies on both hosts, and under slack schemes that reorder the
// interleaving — the generated programs must be functionally correct
// under any slack, like every hand-written workload.
func TestSynthPatternsBothHostsAllSchemes(t *testing.T) {
	for _, pat := range []string{
		synth.PatternZipf, synth.PatternMigratory, synth.PatternProdCons, synth.PatternMixed,
	} {
		sc := synth.Config{Pattern: pat, Ops: 24, Phases: 2}
		for _, parallel := range []bool{false, true} {
			runScenario(t, Config{
				Workload: "synth", Synth: &sc, Cores: 4,
				Scheme: Schemes.Bounded(8), Parallel: parallel, Seed: 2,
			})
		}
		runScenario(t, Config{
			Workload: "synth", Synth: &sc, Cores: 4, Scheme: Schemes.Unbounded(), Seed: 3,
		})
	}
}

// record runs a config with a recorder attached and returns the encoded
// trace alongside the run's Results.
func record(t *testing.T, cfg Config) ([]byte, Results) {
	t.Helper()
	rec := memtrace.NewRecorder(cfg.Cores, cfg.Workload)
	cfg.MemRecorder = rec
	res := runScenario(t, cfg)
	data, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data, res
}

// TestRecordCrossHostIdenticalTrace: recording the same race-free CC run
// on each host captures byte-identical trace files — the recorder sits
// at architectural retire, so the stream is a property of the simulated
// machine, not of which host simulated it.
func TestRecordCrossHostIdenticalTrace(t *testing.T) {
	sc := synth.Config{Pattern: synth.PatternZipf, Ops: 48, Phases: 3}
	base := Config{Workload: "synth", Synth: &sc, Cores: 4, Seed: 1}

	detTrace, _ := record(t, base)
	parCfg := base
	parCfg.Parallel = true
	parTrace, _ := record(t, parCfg)

	if !bytes.Equal(detTrace, parTrace) {
		t.Errorf("trace bytes differ across hosts: det %d bytes (digest %s), par %d bytes (digest %s)",
			len(detTrace), memtrace.Digest(detTrace)[:12],
			len(parTrace), memtrace.Digest(parTrace)[:12])
	}
}

// TestReplayCrossHostIdentical: a trace recorded from a lock-heavy run
// (whose own timing is host-dependent) replays with byte-identical
// Results on both hosts — replay programs are straight-line, so the
// race-free CC invariant applies to them no matter what was recorded.
func TestReplayCrossHostIdentical(t *testing.T) {
	sc := synth.Config{Pattern: synth.PatternMixed, Ops: 32, Phases: 3}
	data, orig := record(t, Config{Workload: "synth", Synth: &sc, Cores: 4, Seed: 1})

	tr, err := memtrace.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalEvents() == 0 || uint64(tr.TotalEvents()) > orig.Committed {
		t.Fatalf("trace has %d events for %d committed instructions", tr.TotalEvents(), orig.Committed)
	}

	det := runScenario(t, Config{Workload: "trace", TraceData: data, Cores: 4, Seed: 5})
	par := runScenario(t, Config{Workload: "trace", TraceData: data, Cores: 4, Parallel: true})
	if d, p := canonicalResults(t, det), canonicalResults(t, par); d != p {
		t.Errorf("replay differs across hosts:\ndet %s\npar %s", d, p)
	}
}

// TestRecordThroughRollback: recording a speculative run must not leak
// squashed work into the trace — the recorder's checkpoint/rollback
// hooks truncate each core's stream back to the last checkpoint. The
// recovered trace then replays byte-identically on both hosts.
func TestRecordThroughRollback(t *testing.T) {
	data, res := record(t, Config{
		Workload:           "falseshare",
		Cores:              4,
		Scheme:             Schemes.Bounded(32),
		Seed:               3,
		CheckpointInterval: 500,
		Rollback:           true,
	})
	if res.Rollbacks == 0 {
		t.Fatal("speculative falseshare run took no rollbacks; the test exercises nothing")
	}
	tr, err := memtrace.Decode(data)
	if err != nil {
		t.Fatalf("trace recorded through rollback does not decode: %v", err)
	}
	// Every surviving event was committed on the winning timeline; the
	// squashed replays must not inflate the stream beyond what the run
	// reports as committed.
	if uint64(tr.TotalEvents()) > res.Committed {
		t.Fatalf("trace has %d events but only %d instructions survived commit",
			tr.TotalEvents(), res.Committed)
	}

	det := runScenario(t, Config{Workload: "trace", TraceData: data, Cores: 4, Seed: 9})
	par := runScenario(t, Config{Workload: "trace", TraceData: data, Cores: 4, Parallel: true})
	if d, p := canonicalResults(t, det), canonicalResults(t, par); d != p {
		t.Errorf("rollback-recorded replay differs across hosts:\ndet %s\npar %s", d, p)
	}
}

// TestSampledWithinBounds: for each SPLASH-2 kernel, an interval-sampled
// run's estimated cycle count must fall within its own stated confidence
// bound of the full-detail CC run — the acceptance bar for the sampling
// estimator. Both runs are deterministic, so this is a fixed property of
// the estimator on these kernels, not a flaky statistical assertion.
func TestSampledWithinBounds(t *testing.T) {
	plan := SamplingPlan{IntervalInsts: 2000, DetailEvery: 4, Confidence: 0.95}
	for _, wl := range []string{"fft", "lu", "barnes", "water"} {
		full := runScenario(t, Config{Workload: wl, Cores: 8, Seed: 1})
		sampled := runScenario(t, Config{Workload: wl, Cores: 8, Seed: 1, Sampling: &plan})
		rep := sampled.Sampling
		if rep == nil {
			t.Fatalf("%s: sampled run reported no estimate", wl)
		}
		if rep.Intervals <= rep.DetailedIntervals {
			t.Errorf("%s: nothing was fast-forwarded (%d intervals, %d detailed)",
				wl, rep.Intervals, rep.DetailedIntervals)
		}
		if !rep.Within(full.Cycles) {
			t.Errorf("%s: true cycles %d outside stated bound: estimate %.0f ± %.0f",
				wl, full.Cycles, rep.EstimatedCycles, rep.HalfWidth)
		}
		if sampled.Committed != full.Committed {
			t.Errorf("%s: sampled run committed %d instructions, full run %d — fast-forward must not skip work",
				wl, sampled.Committed, full.Committed)
		}
	}
}

// TestSampledRunVerifies: fast-forwarded intervals still execute every
// instruction functionally, so a sampled run passes the workload's own
// functional check (runScenario asserts it) and reports host work
// savings over full detail.
func TestSampledRunVerifies(t *testing.T) {
	plan := SamplingPlan{IntervalInsts: 2000, DetailEvery: 4}
	full := runScenario(t, Config{Workload: "fft", Cores: 8, Seed: 1})
	sampled := runScenario(t, Config{Workload: "fft", Cores: 8, Seed: 1, Sampling: &plan})
	if sampled.HostWorkUnits >= full.HostWorkUnits {
		t.Errorf("sampling saved no host work: %.0f sampled vs %.0f full",
			sampled.HostWorkUnits, full.HostWorkUnits)
	}
}
