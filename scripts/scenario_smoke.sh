#!/usr/bin/env bash
# scenario_smoke.sh — end-to-end smoke for the scenario engine.
#
# Drives the full generate → record → replay → sample loop through the
# slacksim CLI and a slacksimd instance:
#
#   1. generate a synthetic workload and record its memory trace on the
#      deterministic host, then record the same spec on the parallel
#      host — the two trace files must be byte-identical;
#   2. replay the trace on both hosts — Results (host fields excepted)
#      must be byte-identical;
#   3. submit the same synth spec to slacksimd twice — the second
#      submission must be served from the result cache (digest-stable
#      spec keys) and match the in-process run;
#   4. run a sampled simulation and check it reports an estimate with a
#      finite confidence bound.
#
# CI's scenario-smoke job runs exactly this script; it also works
# locally:
#
#   scripts/scenario_smoke.sh         # builds, runs, cleans up
#
# Requires curl and jq. Exits non-zero on the first broken invariant.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:8094"
work="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/slacksim" ./cmd/slacksim
go build -o "$work/slacksimd" ./cmd/slacksimd

# Canonical form of one run's results: everything except the host-side
# fields, which legitimately differ between hosts and between runs.
canon() {
  jq -S 'del(.wall_clock_ns, .host, .host_work_units, .suspensions)'
}

synth="pattern=zipf,ops=64,phases=3,seed=5"

echo "== generate + record on both hosts: trace files must be byte-identical"
"$work/slacksim" -synth "$synth" -cores 4 -record "$work/det.trc" -json \
  > "$work/synth_det.json" 2> /dev/null
"$work/slacksim" -synth "$synth" -cores 4 -parallel -record "$work/par.trc" -json \
  > "$work/synth_par.json" 2> /dev/null
cmp "$work/det.trc" "$work/par.trc" \
  || { echo "FAIL: recorded traces differ across hosts" >&2; exit 1; }
canon < "$work/synth_det.json" > "$work/synth_det.canon"
canon < "$work/synth_par.json" > "$work/synth_par.canon"
diff -u "$work/synth_det.canon" "$work/synth_par.canon" \
  || { echo "FAIL: synth results differ across hosts" >&2; exit 1; }
echo "   trace: $(wc -c < "$work/det.trc") bytes, identical on both hosts"

echo "== replay the trace on both hosts: results must be byte-identical"
"$work/slacksim" -replay "$work/det.trc" -cores 4 -json 2> /dev/null \
  | canon > "$work/replay_det.canon"
"$work/slacksim" -replay "$work/det.trc" -cores 4 -parallel -json 2> /dev/null \
  | canon > "$work/replay_par.canon"
diff -u "$work/replay_det.canon" "$work/replay_par.canon" \
  || { echo "FAIL: replayed results differ across hosts" >&2; exit 1; }

echo "== synth spec through slacksimd: digest-stable key, cache hit, same results"
"$work/slacksimd" -addr "$addr" -queue 8 -workers 1 &
pid=$!
for i in $(seq 1 150); do
  curl -sf "$addr/v1/healthz" > /dev/null && break
  sleep 0.2
done
curl -sf "$addr/v1/healthz" > /dev/null \
  || { echo "FAIL: daemon at $addr never became healthy" >&2; exit 1; }

spec='{"workload":"synth","cores":4,"synth":{"pattern":"zipf","ops":64,"phases":3,"seed":5}}'
id=$(curl -sf "$addr/v1/jobs" -d "$spec" | jq -r .id)
for i in $(seq 1 300); do
  state=$(curl -sf "$addr/v1/jobs/$id" | jq -r .state)
  [ "$state" = done ] && break
  [ "$state" = failed ] && { echo "FAIL: synth job failed" >&2; exit 1; }
  sleep 0.2
done
curl -sf "$addr/v1/jobs/$id" | jq .result | canon > "$work/service.canon"
diff -u "$work/synth_det.canon" "$work/service.canon" \
  || { echo "FAIL: service-run synth differs from the in-process run" >&2; exit 1; }

again=$(curl -sf "$addr/v1/jobs" -d "$spec")
echo "$again" | jq -e '.cached == true and .state == "done"' > /dev/null \
  || { echo "FAIL: identical synth spec was not served from the cache: $again" >&2; exit 1; }

kill -TERM "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""

echo "== sampled run reports an estimate with a finite bound"
"$work/slacksim" -workload fft -sample-interval 2000 -sample-every 4 -json 2> /dev/null \
  > "$work/sampled.json"
jq -e '.sampling.estimated_cycles > 0 and .sampling.half_width >= 0 and .sampling.intervals > .sampling.detailed_intervals' \
  "$work/sampled.json" > /dev/null \
  || { echo "FAIL: sampled run missing a usable estimate: $(jq .sampling "$work/sampled.json")" >&2; exit 1; }

echo "PASS: scenario smoke"
