#!/usr/bin/env bash
# bench.sh — measure the host-performance benchmarks and write a JSON
# baseline (default BENCH_PR7.json) for before/after comparisons.
#
#   scripts/bench.sh                  # write BENCH_PR7.json at 5 iterations
#   BENCHTIME=20x scripts/bench.sh    # steadier numbers
#   scripts/bench.sh /tmp/after.json  # alternate output path
#
# Compare a fresh measurement against the committed baseline with
# cmd/benchcheck (CI's bench-smoke job does exactly this):
#
#   scripts/bench.sh /tmp/now.json
#   go run ./cmd/benchcheck -current /tmp/now.json
#
# The headline metric is densest_deep_over_incremental: how many times
# cheaper the incremental copy-on-write checkpoint path is than the
# reference deep-copy path at the densest checkpoint interval.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-5x}"
out="${1:-BENCH_PR7.json}"

engine_raw=$(go test ./internal/engine/ -run '^$' -bench BenchmarkCheckpointRestore -benchtime "$benchtime" -count 1)
root_raw=$(go test . -run '^$' -bench 'BenchmarkSimulatorThroughput|BenchmarkParallelHost' -benchtime "$benchtime" -count 1)

printf '%s\n%s\n' "$engine_raw" "$root_raw" | awk -v benchtime="$benchtime" '
/^Benchmark/ {
  name = $1; iters = $2; ns = "null"; bytes = "null"; allocs = "null"
  for (i = 2; i < NF; i++) {
    if ($(i+1) == "ns/op")     ns = $i
    if ($(i+1) == "B/op")      bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  ns_by[name] = ns
  rows[n++] = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                      name, iters, ns, bytes, allocs)
}
END {
  deep = ""; inc = ""; densest = 1e18
  for (k in ns_by) {
    if (k ~ /CheckpointRestore\/interval=/) {
      split(k, parts, "=");  split(parts[2], p2, "/")
      if (p2[1] + 0 < densest) densest = p2[1] + 0
    }
  }
  for (k in ns_by) {
    if (k ~ ("interval=" densest "/deep"))        deep = ns_by[k]
    if (k ~ ("interval=" densest "/incremental")) inc  = ns_by[k]
  }
  print "{"
  printf "  \"benchtime\": \"%s\",\n", benchtime
  if (deep != "" && inc != "" && inc + 0 > 0)
    printf "  \"densest_deep_over_incremental\": %.2f,\n", deep / inc
  print "  \"results\": ["
  for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
  print "  ]"
  print "}"
}' > "$out"

echo "wrote $out"
grep densest_deep_over_incremental "$out" || true
