#!/usr/bin/env bash
# bench.sh — measure the host-performance benchmarks and write a JSON
# baseline (default BENCH_PR8.json) for before/after comparisons.
#
#   scripts/bench.sh                  # write BENCH_PR8.json at 5 iterations
#   BENCHTIME=20x scripts/bench.sh    # steadier numbers
#   scripts/bench.sh /tmp/after.json  # alternate output path
#   MEMPROFILE=/tmp/prof scripts/bench.sh   # also write -memprofile artifacts
#
# Compare a fresh measurement against the committed baseline with
# cmd/benchcheck (CI's bench-smoke job does exactly this):
#
#   scripts/bench.sh /tmp/now.json
#   go run ./cmd/benchcheck -current /tmp/now.json
#
# The baseline records the measuring environment (go version, GOMAXPROCS,
# git SHA) so a regression report can be traced to the machine and commit
# that produced it. The steady-state benchmarks (SimulatorThroughput,
# ParallelHost) carry a hard "max_allocs" ceiling of 500 allocs/op that
# benchcheck enforces absolutely — the zero-alloc steady state must not
# erode even through a chain of individually-tolerated regressions.
#
# The headline metric is densest_deep_over_incremental: how many times
# cheaper the incremental copy-on-write checkpoint path is than the
# reference deep-copy path at the densest checkpoint interval.
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-5x}"
out="${1:-BENCH_PR8.json}"

go_version=$(go env GOVERSION)
gomaxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"
git_sha=$(git rev-parse HEAD 2>/dev/null || echo unknown)

engine_prof=()
root_prof=()
if [[ -n "${MEMPROFILE:-}" ]]; then
  mkdir -p "$MEMPROFILE"
  engine_prof=(-memprofile "$MEMPROFILE/engine.memprofile")
  root_prof=(-memprofile "$MEMPROFILE/root.memprofile")
fi

engine_raw=$(go test ./internal/engine/ -run '^$' -bench BenchmarkCheckpointRestore -benchtime "$benchtime" -count 1 "${engine_prof[@]}")
root_raw=$(go test . -run '^$' -bench 'BenchmarkSimulatorThroughput|BenchmarkParallelHost' -benchtime "$benchtime" -count 1 "${root_prof[@]}")

printf '%s\n%s\n' "$engine_raw" "$root_raw" | awk \
  -v benchtime="$benchtime" -v go_version="$go_version" \
  -v gomaxprocs="$gomaxprocs" -v git_sha="$git_sha" '
/^Benchmark/ {
  name = $1; iters = $2; ns = "null"; bytes = "null"; allocs = "null"
  for (i = 2; i < NF; i++) {
    if ($(i+1) == "ns/op")     ns = $i
    if ($(i+1) == "B/op")      bytes = $i
    if ($(i+1) == "allocs/op") allocs = $i
  }
  # The steady-state benchmarks carry the hard allocs/op ceiling.
  ceil = (name ~ /SimulatorThroughput|ParallelHost/) ? ", \"max_allocs\": 500" : ""
  ns_by[name] = ns
  rows[n++] = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}",
                      name, iters, ns, bytes, allocs, ceil)
}
END {
  deep = ""; inc = ""; densest = 1e18
  for (k in ns_by) {
    if (k ~ /CheckpointRestore\/interval=/) {
      split(k, parts, "=");  split(parts[2], p2, "/")
      if (p2[1] + 0 < densest) densest = p2[1] + 0
    }
  }
  for (k in ns_by) {
    if (k ~ ("interval=" densest "/deep"))        deep = ns_by[k]
    if (k ~ ("interval=" densest "/incremental")) inc  = ns_by[k]
  }
  print "{"
  printf "  \"benchtime\": \"%s\",\n", benchtime
  printf "  \"env\": {\"go_version\": \"%s\", \"gomaxprocs\": %s, \"git_sha\": \"%s\"},\n", go_version, gomaxprocs, git_sha
  if (deep != "" && inc != "" && inc + 0 > 0)
    printf "  \"densest_deep_over_incremental\": %.2f,\n", deep / inc
  print "  \"results\": ["
  for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
  print "  ]"
  print "}"
}' > "$out"

echo "wrote $out"
grep densest_deep_over_incremental "$out" || true
