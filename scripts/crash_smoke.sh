#!/usr/bin/env bash
# crash_smoke.sh — end-to-end crash-recovery smoke for the durable daemon.
#
# Starts slacksimd on a durable data directory, completes one quick cell,
# submits a batch of slow cells, then SIGKILLs the daemon mid-sweep. A
# restart on the same data directory must:
#
#   1. serve the finished cell from the persistent store (cached, byte-
#      identical, zero re-simulation), and
#   2. re-enqueue every journaled unfinished job under its original ID
#      and run each to done.
#
# CI's crash-smoke job runs exactly this script; it also works locally:
#
#   scripts/crash_smoke.sh            # builds, runs, cleans up
#
# Requires curl and jq. Exits non-zero on the first broken invariant.
set -euo pipefail
cd "$(dirname "$0")/.."

addr="127.0.0.1:8093"
work="$(mktemp -d)"
data="$work/data"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/slacksimd" ./cmd/slacksimd

start_daemon() {
  "$work/slacksimd" -addr "$addr" -data "$data" -queue 32 -workers 2 &
  pid=$!
  for i in $(seq 1 150); do
    curl -sf "$addr/v1/healthz" > /dev/null && return 0
    sleep 0.2
  done
  echo "FAIL: daemon at $addr never became healthy" >&2
  exit 1
}

# Canonical form of a job's result: everything except host wall time,
# which legitimately differs between runs of the same cell.
canon() {
  jq -S 'del(.wall_clock_ns)'
}

quick='{"workload":"fft","scheme":"s8","cores":2,"seed":1}'
slow() {
  printf '{"workload":"fft","scheme":"s8","cores":2,"seed":%d,"scale":32,"checkpoint_interval":256}' "$1"
}

wait_done() { # wait_done <job-id> -> prints final job JSON
  local id="$1" state
  for i in $(seq 1 300); do
    state=$(curl -sf "$addr/v1/jobs/$id" | jq -r .state)
    case "$state" in
      done) curl -sf "$addr/v1/jobs/$id"; return 0 ;;
      failed|cancelled|migrated) echo "FAIL: job $id ended $state" >&2; exit 1 ;;
    esac
    sleep 0.2
  done
  echo "FAIL: job $id never finished" >&2
  exit 1
}

echo "== first boot: complete one cell, queue three slow cells"
start_daemon
first_id=$(curl -sf "$addr/v1/jobs" -d "$quick" | jq -r .id)
wait_done "$first_id" | jq .result | canon > "$work/before.json"

pending_ids=()
for seed in 2 3 4; do
  pending_ids+=("$(curl -sf "$addr/v1/jobs" -d "$(slow "$seed")" | jq -r .id)")
done
sleep 0.5  # let the journal's fsync batch land and the runs start

echo "== kill -9 mid-sweep (pids journaled: ${pending_ids[*]})"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "== restart on the same data directory"
start_daemon

echo "== finished cell is served from the persistent store"
hit=$(curl -sf "$addr/v1/jobs" -d "$quick")
echo "$hit" | jq -e '.cached == true and .state == "done"' > /dev/null \
  || { echo "FAIL: restarted daemon re-simulated a stored result: $hit" >&2; exit 1; }
echo "$hit" | jq .result | canon > "$work/after.json"
diff -u "$work/before.json" "$work/after.json" \
  || { echo "FAIL: store-served result differs from the pre-crash result" >&2; exit 1; }

echo "== journaled unfinished jobs recover under their original IDs"
for id in "${pending_ids[@]}"; do
  wait_done "$id" | jq -e '.result.cycles > 0' > /dev/null
  echo "   recovered $id: done"
done

echo "== recovery accounting"
stats=$(curl -sf "$addr/v1/statsz")
echo "$stats" | jq -e '.recovered >= 3' > /dev/null \
  || { echo "FAIL: statsz.recovered < 3: $stats" >&2; exit 1; }
echo "$stats" | jq -e '.store.entries >= 4' > /dev/null \
  || { echo "FAIL: store holds fewer results than the sweep produced: $stats" >&2; exit 1; }

kill -TERM "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""
echo "PASS: crash recovery smoke"
