#!/usr/bin/env bash
# lint.sh — run the slacksimlint analyzer suite (standalone and as a
# go vet backend) plus govulncheck, failing on any finding.
#
# Usage: scripts/lint.sh
#
# In CI the script also appends a markdown findings table to
# $GITHUB_STEP_SUMMARY so a red lint job is readable without opening
# the logs.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=bin/slacksimlint
mkdir -p bin
go build -o "$BIN" ./cmd/slacksimlint

summary() {
  # Append to the GitHub job summary when running in Actions.
  if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    printf '%s\n' "$@" >> "$GITHUB_STEP_SUMMARY"
  fi
}

fail=0

# 1. Standalone mode over the whole module (offline: loads and
#    type-checks every package from source, fixtures excluded). Run once
#    per analyzer so the job summary shows where findings cluster; the
#    interprocedural analyzers (poolescape, atomicfield, hotpathalloc,
#    keyappend) only see whole-module summaries in this mode, so it is
#    the authoritative gate.
echo "==> slacksimlint (standalone) ./..."
analyzers=$("./$BIN" -list . | awk '{print $1}')
counts=""
for a in $analyzers; do
  if out=$("./$BIN" -only "$a" . 2>&1); then
    n=0
  else
    n=$(printf '%s\n' "$out" | grep -c ": $a: " || true)
    fail=1
    echo "$out"
    summary "## slacksimlint findings ($a)" '' '```' "$out" '```'
  fi
  counts="$counts| $a | $n |"$'\n'
done
summary "## slacksimlint findings per analyzer" '' \
        '| analyzer | findings |' '| --- | --- |' "$counts"
if [ "$fail" -eq 0 ]; then
  echo "clean"
fi

# 1b. Waiver inventory: every //lint:allow must carry a reason and must
#     still suppress something. Stale or unjustified waivers fail.
echo "==> slacksimlint -allows (waiver inventory)"
if ! out=$("./$BIN" -allows . 2>&1); then
  fail=1
  echo "$out"
  summary "## stale or unjustified //lint:allow directives" '' '```' "$out" '```'
else
  echo "clean ($(printf '%s\n' "$out" | grep -c . || true) waivers, all used and justified)"
fi

# 2. Vet mode: the same analyzers driven by the go command's unitchecker
#    protocol, which also covers the test variants of every package.
echo "==> go vet -vettool=$BIN ./..."
if ! out=$(go vet -vettool="$(pwd)/$BIN" ./... 2>&1); then
  fail=1
  echo "$out"
  summary "## go vet -vettool findings" '' '```' "$out" '```'
else
  echo "clean"
fi

# 3. govulncheck, when installed (the container image may not ship it;
#    network installs are not assumed).
if command -v govulncheck >/dev/null 2>&1; then
  echo "==> govulncheck ./..."
  if ! out=$(govulncheck ./... 2>&1); then
    fail=1
    echo "$out"
    summary "## govulncheck findings" '' '```' "$out" '```'
  else
    echo "clean"
  fi
else
  echo "==> govulncheck not installed; skipping"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
summary "## Lint" '' 'slacksimlint (standalone + vettool) and govulncheck: clean ✅'
echo "lint: OK"
