package syncctl

import (
	"sync"
	"testing"
)

func TestLockBasics(t *testing.T) {
	c := New(4)
	if !c.TryLock(0x10, 0, 1) {
		t.Fatal("free lock refused")
	}
	if c.TryLock(0x10, 1, 2) {
		t.Fatal("held lock granted to another core")
	}
	if got := c.HeldBy(0x10); got != 0 {
		t.Fatalf("HeldBy = %d, want 0", got)
	}
	c.Unlock(0x10, 0, 3)
	if got := c.HeldBy(0x10); got != -1 {
		t.Fatalf("HeldBy after unlock = %d, want -1", got)
	}
	if !c.TryLock(0x10, 1, 4) {
		t.Fatal("released lock refused")
	}
	if c.Acquires != 2 || c.Releases != 1 || c.Contended != 1 {
		t.Errorf("stats %d/%d/%d", c.Acquires, c.Releases, c.Contended)
	}
	if c.LocksHeld() != 1 {
		t.Errorf("LocksHeld = %d", c.LocksHeld())
	}
}

func TestLockReleaseVisibleNextCycle(t *testing.T) {
	c := New(2)
	c.TryLock(0x10, 0, 5)
	c.Unlock(0x10, 0, 9)
	// Same simulated cycle: the release has not propagated.
	if c.TryLock(0x10, 1, 9) {
		t.Fatal("same-cycle re-acquire succeeded")
	}
	if !c.TryLock(0x10, 1, 10) {
		t.Fatal("next-cycle acquire failed")
	}
}

func TestReacquirePanics(t *testing.T) {
	c := New(2)
	c.TryLock(0x10, 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("re-acquire did not panic")
		}
	}()
	c.TryLock(0x10, 0, 2)
}

func TestUnlockNotOwnerPanics(t *testing.T) {
	c := New(2)
	c.TryLock(0x10, 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("foreign unlock did not panic")
		}
	}()
	c.Unlock(0x10, 1, 2)
}

func TestUnlockUnheldPanics(t *testing.T) {
	c := New(2)
	defer func() {
		if recover() == nil {
			t.Error("unheld unlock did not panic")
		}
	}()
	c.Unlock(0x10, 0, 1)
}

func TestBarrierGenerations(t *testing.T) {
	c := New(3)
	g0 := c.BarrierArrive(0, 0, 10)
	if c.BarrierPassed(0, g0, 11) {
		t.Fatal("barrier passed with 1/3 arrivals")
	}
	if got := c.WaitingAt(0); got != 1 {
		t.Fatalf("WaitingAt = %d", got)
	}
	g1 := c.BarrierArrive(0, 1, 12)
	if g1 != g0 {
		t.Fatalf("same generation expected, got %d vs %d", g1, g0)
	}
	c.BarrierArrive(0, 2, 20) // releases at t=20
	if c.BarrierPassed(0, g0, 20) {
		t.Fatal("release visible in its own cycle")
	}
	if !c.BarrierPassed(0, g0, 21) {
		t.Fatal("barrier not released after all arrived")
	}
	if c.BarrierEpisodes != 1 {
		t.Errorf("episodes = %d", c.BarrierEpisodes)
	}
	// Next generation starts fresh.
	g2 := c.BarrierArrive(0, 0, 30)
	if g2 != g0+1 {
		t.Errorf("next generation = %d, want %d", g2, g0+1)
	}
	if c.BarrierPassed(0, g2, 31) {
		t.Error("new generation passed with 1/3")
	}
	// Complete generation 1; a generation two behind then passes
	// regardless of the asker's clock.
	c.BarrierArrive(0, 1, 32)
	c.BarrierArrive(0, 2, 33)
	if !c.BarrierPassed(0, g0, 0) {
		t.Error("long-past generation must pass")
	}
}

func TestBarrierDoubleArrivePanics(t *testing.T) {
	c := New(3)
	c.BarrierArrive(5, 0, 1)
	defer func() {
		if recover() == nil {
			t.Error("double arrival did not panic")
		}
	}()
	c.BarrierArrive(5, 0, 2)
}

func TestIndependentBarriers(t *testing.T) {
	c := New(1)
	gA := c.BarrierArrive(1, 0, 7) // single-core barrier releases at once
	if !c.BarrierPassed(1, gA, 8) {
		t.Fatal("1-core barrier not released next cycle")
	}
	if c.BarrierPassed(2, 0, 100) {
		t.Fatal("untouched barrier reports passed")
	}
}

func TestSnapshotRestore(t *testing.T) {
	c := New(2)
	c.TryLock(0x10, 1, 1)
	c.BarrierArrive(0, 0, 2)
	snap := c.Snapshot()
	c.Unlock(0x10, 1, 3)
	c.BarrierArrive(0, 1, 4) // releases generation 0
	c.Restore(snap)
	if c.HeldBy(0x10) != 1 {
		t.Error("restore lost lock owner")
	}
	if c.BarrierPassed(0, 0, 100) {
		t.Error("restore lost barrier wait state")
	}
	if c.WaitingAt(0) != 1 {
		t.Errorf("restored arrivals = %d, want 1", c.WaitingAt(0))
	}
	// Deep copy: the snapshot must not see post-restore changes.
	c.BarrierArrive(0, 1, 5)
	if snap.BarrierPassed(0, 0, 100) {
		t.Error("snapshot aliases live barrier")
	}
}

func TestConcurrentLocking(t *testing.T) {
	c := New(8)
	var held sync.Map
	var wg sync.WaitGroup
	for core := 0; core < 8; core++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				now := int64(core*1000 + i*2)
				if c.TryLock(0xA0, core, now) {
					if _, loaded := held.LoadOrStore("l", core); loaded {
						t.Errorf("two cores inside the lock")
					}
					held.Delete("l")
					c.Unlock(0xA0, core, now)
				}
			}
		}(core)
	}
	wg.Wait()
	if c.LocksHeld() != 0 {
		t.Errorf("locks leaked: %d", c.LocksHeld())
	}
}
