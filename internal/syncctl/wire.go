package syncctl

import (
	"bytes"
	"encoding/gob"
	"sort"
)

// Wire serialization for run snapshots: lock and barrier maps flattened
// into key-sorted slices so the encoding is deterministic.

type lockWire struct {
	Addr       uint64
	Owner      int
	ReleasedAt int64
}

type barrierWire struct {
	ID         int64
	Arrived    int
	Generation uint64
	ReleasedAt int64
	Waiting    []int
}

type controllerWire struct {
	NumCores int
	Locks    []lockWire
	Barriers []barrierWire

	Acquires, Releases, Contended uint64
	BarrierEpisodes               uint64
}

// GobEncode implements gob.GobEncoder.
func (c *Controller) GobEncode() ([]byte, error) {
	c.mu.Lock()
	w := controllerWire{
		NumCores: c.numCores,
		Acquires: c.Acquires, Releases: c.Releases,
		Contended: c.Contended, BarrierEpisodes: c.BarrierEpisodes,
	}
	for a, l := range c.locks {
		w.Locks = append(w.Locks, lockWire{Addr: a, Owner: l.owner, ReleasedAt: l.releasedAt})
	}
	for id, b := range c.barriers {
		bw := barrierWire{ID: id, Arrived: b.arrived, Generation: b.generation, ReleasedAt: b.releasedAt}
		for core := range b.waiting {
			bw.Waiting = append(bw.Waiting, core)
		}
		sort.Ints(bw.Waiting)
		w.Barriers = append(w.Barriers, bw)
	}
	c.mu.Unlock()
	sort.Slice(w.Locks, func(i, j int) bool { return w.Locks[i].Addr < w.Locks[j].Addr })
	sort.Slice(w.Barriers, func(i, j int) bool { return w.Barriers[i].ID < w.Barriers[j].ID })
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (c *Controller) GobDecode(data []byte) error {
	var w controllerWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	fresh := New(w.NumCores)
	for _, lw := range w.Locks {
		fresh.locks[lw.Addr] = &lockState{owner: lw.Owner, releasedAt: lw.ReleasedAt}
	}
	for _, bw := range w.Barriers {
		b := &barrier{
			arrived: bw.Arrived, generation: bw.Generation,
			releasedAt: bw.ReleasedAt, waiting: make(map[int]bool, len(bw.Waiting)),
		}
		for _, core := range bw.Waiting {
			b.waiting[core] = true
		}
		fresh.barriers[bw.ID] = b
	}
	fresh.Acquires, fresh.Releases = w.Acquires, w.Releases
	fresh.Contended, fresh.BarrierEpisodes = w.Contended, w.BarrierEpisodes

	c.mu.Lock()
	c.numCores = fresh.numCores
	c.locks = fresh.locks
	c.barriers = fresh.barriers
	c.Acquires, c.Releases = fresh.Acquires, fresh.Releases
	c.Contended, c.BarrierEpisodes = fresh.Contended, fresh.BarrierEpisodes
	c.mu.Unlock()
	return nil
}
