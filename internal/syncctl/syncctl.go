// Package syncctl executes the workload's synchronization primitives
// (locks and global barriers) reliably inside the simulator, the way the
// paper's SlackSim executes the MP_Simplesim parallel-programming APIs.
// Because acquisition and release are functionally atomic at the host
// level regardless of simulation slack, simulated-workload-state
// violations cannot occur (paper, Section 3) — tests assert exactly that.
//
// Timing is still modeled by the cores: a core that fails to acquire a
// lock or waits at a barrier keeps spinning in *target* time, so its local
// clock always advances and the slack time protocol stays live.
package syncctl

import (
	"fmt"
	"sync"
)

// Controller holds the functional state of every lock word and barrier.
//
// Releases become visible strictly after the simulated cycle in which they
// happen (one cycle of propagation), which both matches hardware and makes
// cycle-by-cycle simulation independent of the order in which the host
// executes cores within one target cycle.
type Controller struct {
	mu       sync.Mutex
	numCores int

	// locks maps lock-word address -> lock state.
	locks map[uint64]*lockState

	// barriers maps barrier id -> state.
	barriers map[int64]*barrier

	// Acquires, Releases, Contended count lock traffic; BarrierEpisodes
	// counts completed barrier generations.
	Acquires, Releases, Contended uint64
	BarrierEpisodes               uint64
}

type lockState struct {
	owner int // -1 when free
	// releasedAt is the simulated time of the last release; a TryLock at
	// a time <= releasedAt fails (the release is not visible yet).
	releasedAt int64
}

type barrier struct {
	arrived    int
	generation uint64
	// releasedAt is the simulated time at which the current generation
	// was released; waiters pass only strictly after it.
	releasedAt int64
	waiting    map[int]bool // cores currently parked in this generation
}

// New returns a controller for a machine with numCores participating
// hardware threads. Every barrier involves all numCores threads.
func New(numCores int) *Controller {
	return &Controller{
		numCores: numCores,
		locks:    make(map[uint64]*lockState),
		barriers: make(map[int64]*barrier),
	}
}

// TryLock attempts to acquire the lock word at addr for core at simulated
// time now. It returns true on success; it fails while the lock is held or
// while a same-cycle release has not propagated yet. Re-acquiring a lock
// the core already owns panics: the workload kernels never do it and
// silence would hide kernel bugs.
func (c *Controller) TryLock(addr uint64, core int, now int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.locks[addr]
	if l == nil {
		l = &lockState{owner: -1, releasedAt: -1}
		c.locks[addr] = l
	}
	if l.owner >= 0 {
		if l.owner == core {
			panic(fmt.Sprintf("syncctl: core %d re-acquires lock %#x it already holds", core, addr))
		}
		c.Contended++
		return false
	}
	if now == l.releasedAt {
		// Same-cycle handoff is blocked (one cycle of propagation), which
		// keeps cycle-by-cycle simulation independent of host execution
		// order. An acquirer whose clock is *behind* the release time may
		// proceed: under slack the clocks are incomparable and forbidding
		// it would impose a causality barrier the real SlackSim does not
		// have (it would also hide the migratory-sharing reorderings that
		// produce the paper's map violations).
		c.Contended++
		return false
	}
	l.owner = core
	c.Acquires++
	return true
}

// Unlock releases the lock word at addr at simulated time now. Releasing a
// lock the core does not own panics (workload bug).
func (c *Controller) Unlock(addr uint64, core int, now int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.locks[addr]
	if l == nil || l.owner != core {
		panic(fmt.Sprintf("syncctl: core %d releases lock %#x it does not hold", core, addr))
	}
	l.owner = -1
	if now > l.releasedAt {
		l.releasedAt = now
	}
	c.Releases++
}

// HeldBy returns the core owning the lock at addr, or -1.
func (c *Controller) HeldBy(addr uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.locks[addr]; l != nil {
		return l.owner
	}
	return -1
}

// BarrierArrive registers core's arrival at barrier id at simulated time
// now and returns the generation the core is waiting for. The last arrival
// releases the barrier, visible to waiters strictly after now. Arriving
// twice in the same generation panics.
func (c *Controller) BarrierArrive(id int64, core int, now int64) (generation uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.barriers[id]
	if b == nil {
		b = &barrier{waiting: make(map[int]bool), releasedAt: -1}
		c.barriers[id] = b
	}
	if b.waiting[core] {
		panic(fmt.Sprintf("syncctl: core %d arrives twice at barrier %d generation %d", core, id, b.generation))
	}
	gen := b.generation
	b.waiting[core] = true
	b.arrived++
	if b.arrived >= c.numCores {
		b.generation++
		b.arrived = 0
		clear(b.waiting)
		b.releasedAt = now
		c.BarrierEpisodes++
	}
	return gen
}

// BarrierPassed reports whether a core that arrived in the given
// generation may proceed at simulated time now: the barrier must have
// moved past the generation and the release must not be in the asker's
// current cycle (one cycle of propagation, which keeps cycle-by-cycle
// simulation host-order independent). A waiter whose clock is behind the
// release time passes — under slack that is a tolerated simulated-time
// distortion, not a wait.
func (c *Controller) BarrierPassed(id int64, generation uint64, now int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.barriers[id]
	if b == nil || b.generation <= generation {
		return false
	}
	if b.generation == generation+1 {
		return now != b.releasedAt
	}
	return true
}

// WaitingAt returns how many cores are parked at barrier id right now.
func (c *Controller) WaitingAt(id int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b := c.barriers[id]; b != nil {
		return b.arrived
	}
	return 0
}

// LocksHeld returns the number of currently-held locks.
func (c *Controller) LocksHeld() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, l := range c.locks {
		if l.owner >= 0 {
			n++
		}
	}
	return n
}

func copyBarrier(b *barrier) *barrier {
	w := make(map[int]bool, len(b.waiting))
	for k, v := range b.waiting {
		w[k] = v
	}
	return &barrier{arrived: b.arrived, generation: b.generation, releasedAt: b.releasedAt, waiting: w}
}

// Snapshot deep-copies the controller.
func (c *Controller) Snapshot() *Controller {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := New(c.numCores)
	for a, l := range c.locks {
		cp := *l
		n.locks[a] = &cp
	}
	for id, b := range c.barriers {
		n.barriers[id] = copyBarrier(b)
	}
	n.Acquires, n.Releases, n.Contended, n.BarrierEpisodes =
		c.Acquires, c.Releases, c.Contended, c.BarrierEpisodes
	return n
}

// SyncSnapshot brings dst — a snapshot previously built with Snapshot —
// up to date with the live controller, reusing dst's maps and entry
// allocations: the mirror image of Restore, for incremental checkpoints
// that keep one evolving snapshot instead of deep-copying every boundary.
// dst is owned by the checkpointing goroutine, so only the live
// controller is locked.
//
//slacksim:hotpath
func (c *Controller) SyncSnapshot(dst *Controller) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dst.numCores = c.numCores
	for a := range dst.locks {
		if c.locks[a] == nil {
			delete(dst.locks, a)
		}
	}
	for a, l := range c.locks {
		e := dst.locks[a]
		if e == nil {
			e = &lockState{} //lint:allow hotpathalloc -- lock population is tiny and stable; entries are reused across boundaries
			dst.locks[a] = e
		}
		*e = *l
	}
	for id := range dst.barriers {
		if c.barriers[id] == nil {
			delete(dst.barriers, id)
		}
	}
	for id, b := range c.barriers {
		e := dst.barriers[id]
		if e == nil {
			e = &barrier{waiting: make(map[int]bool, len(b.waiting))} //lint:allow hotpathalloc -- barrier population is tiny and stable; entries are reused across boundaries
			dst.barriers[id] = e
		}
		e.arrived, e.generation, e.releasedAt = b.arrived, b.generation, b.releasedAt
		clear(e.waiting)
		for k, v := range b.waiting {
			e.waiting[k] = v
		}
	}
	dst.Acquires, dst.Releases, dst.Contended, dst.BarrierEpisodes =
		c.Acquires, c.Releases, c.Contended, c.BarrierEpisodes
}

// SnapshotInto deep-copies the controller into dst, reusing dst's maps
// and entries — the pooled-snapshot-graph variant of Snapshot. It shares
// SyncSnapshot's implementation: that path already performs a complete
// overwrite (it walks every lock and barrier, deleting stale entries).
func (c *Controller) SnapshotInto(dst *Controller) {
	c.SyncSnapshot(dst)
}

// Reset returns the controller to its freshly-constructed state (same
// core count), dropping all lock and barrier state. Used when a pooled
// machine is recycled for a new run.
func (c *Controller) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.locks)
	clear(c.barriers)
	c.Acquires, c.Releases, c.Contended, c.BarrierEpisodes = 0, 0, 0, 0
}

// Restore overwrites the controller from a snapshot, reusing the live
// maps and entry allocations (lock and barrier populations are tiny and
// stable, so a restore in the rollback hot path allocates almost nothing).
func (c *Controller) Restore(snap *Controller) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.numCores = snap.numCores
	for a := range c.locks {
		if snap.locks[a] == nil {
			delete(c.locks, a)
		}
	}
	for a, l := range snap.locks {
		e := c.locks[a]
		if e == nil {
			e = &lockState{} //lint:allow hotpathalloc -- lock population is tiny and stable; entries are reused across boundaries
			c.locks[a] = e
		}
		*e = *l
	}
	for id := range c.barriers {
		if snap.barriers[id] == nil {
			delete(c.barriers, id)
		}
	}
	for id, b := range snap.barriers {
		e := c.barriers[id]
		if e == nil {
			e = &barrier{waiting: make(map[int]bool, len(b.waiting))} //lint:allow hotpathalloc -- barrier population is tiny and stable; entries are reused across boundaries
			c.barriers[id] = e
		}
		e.arrived, e.generation, e.releasedAt = b.arrived, b.generation, b.releasedAt
		clear(e.waiting)
		for k, v := range b.waiting {
			e.waiting[k] = v
		}
	}
	c.Acquires, c.Releases, c.Contended, c.BarrierEpisodes =
		snap.Acquires, snap.Releases, snap.Contended, snap.BarrierEpisodes
}
