package syncctl

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestControllerWireRoundTrip(t *testing.T) {
	c := New(4)
	if !c.TryLock(0x100, 2, 10) {
		t.Fatal("TryLock failed on free lock")
	}
	c.TryLock(0x100, 3, 11) // contended
	c.BarrierArrive(1, 0, 20)
	c.BarrierArrive(1, 1, 21)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got := New(1)
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.HeldBy(0x100) != 2 {
		t.Fatalf("lock owner = %d, want 2", got.HeldBy(0x100))
	}
	if got.WaitingAt(1) != 2 {
		t.Fatalf("barrier arrivals = %d, want 2", got.WaitingAt(1))
	}
	if got.Acquires != c.Acquires || got.Contended != c.Contended {
		t.Fatal("counters did not survive the wire round trip")
	}
	// The barrier must still release correctly on the decoded side.
	got.BarrierArrive(1, 2, 22)
	got.BarrierArrive(1, 3, 23)
	if got.BarrierEpisodes != 1 {
		t.Fatalf("barrier episodes = %d, want 1", got.BarrierEpisodes)
	}
}
