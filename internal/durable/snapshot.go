package durable

import (
	"bytes"
	"encoding/json"
	"fmt"

	"slacksim/internal/spec"
)

// Snapshot container format: a portable, self-describing serialization
// of one in-flight run, produced at a checkpoint boundary and resumable
// on any node. Layout:
//
//	magic "SLKSNAP1" (8 bytes)
//	CRC-framed record: JSON header {format, key, spec}
//	CRC-framed record: opaque engine state (internal/engine's versioned
//	                   gob stream)
//
// The header carries the full normalized spec, so a receiving node can
// rebuild the machine (workload, cores, scheme) without any side
// channel, and the spec digest, so stores and caches key the eventual
// result identically to an uninterrupted run.
var snapshotMagic = []byte("SLKSNAP1")

// SnapshotFormat versions the container layout (the engine payload
// carries its own version).
const SnapshotFormat = 1

// Snapshot is a decoded run-snapshot container.
type Snapshot struct {
	// Format is the container format version.
	Format int `json:"format"`
	// Key is the spec's content address (spec.Key of Spec).
	Key string `json:"key"`
	// Spec is the normalized run spec of the snapshotted run.
	Spec spec.Spec `json:"spec"`
	// Engine is the engine's opaque serialized state.
	Engine []byte `json:"-"`
}

type snapshotHeader struct {
	Format int       `json:"format"`
	Key    string    `json:"key"`
	Spec   spec.Spec `json:"spec"`
}

// EncodeSnapshot wraps an engine state blob in the container format.
func EncodeSnapshot(sp spec.Spec, engine []byte) ([]byte, error) {
	sp = sp.Normalize()
	hdr, err := json.Marshal(snapshotHeader{Format: SnapshotFormat, Key: sp.Key(), Spec: sp})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	// The container size is known exactly; one allocation serves the whole
	// encode.
	buf.Grow(len(snapshotMagic) + 2*recHeaderLen + len(hdr) + len(engine))
	buf.Write(snapshotMagic)
	if _, err := appendRecord(&buf, hdr); err != nil {
		return nil, err
	}
	if _, err := appendRecord(&buf, engine); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses and checksums a snapshot container.
func DecodeSnapshot(blob []byte) (*Snapshot, error) {
	if len(blob) < len(snapshotMagic) || !bytes.Equal(blob[:len(snapshotMagic)], snapshotMagic) {
		return nil, fmt.Errorf("durable: not a run snapshot (bad magic)")
	}
	var records [][]byte
	res, err := scanRecords(bytes.NewReader(blob[len(snapshotMagic):]), func(off int64, payload []byte) error {
		records = append(records, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res.Torn || len(records) != 2 {
		return nil, fmt.Errorf("durable: run snapshot is truncated or corrupt (%d records, torn=%v)", len(records), res.Torn)
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(records[0], &hdr); err != nil {
		return nil, fmt.Errorf("durable: run snapshot header: %w", err)
	}
	if hdr.Format != SnapshotFormat {
		return nil, fmt.Errorf("durable: run snapshot format %d is not supported (want %d)", hdr.Format, SnapshotFormat)
	}
	sp := hdr.Spec.Normalize()
	if key := sp.Key(); key != hdr.Key {
		return nil, fmt.Errorf("durable: run snapshot key mismatch: header %s, spec %s", hdr.Key, key)
	}
	return &Snapshot{Format: hdr.Format, Key: hdr.Key, Spec: sp, Engine: records[1]}, nil
}
