// Package durable is the persistence subsystem of the slacksim service:
// a content-addressed on-disk result store behind the resultcache
// interface (an append-only write-ahead log compacted into immutable
// segment files), a crash-recoverable job journal for slacksimd and the
// fleet coordinator, and a versioned container format for exportable run
// snapshots used by live migration.
//
// All on-disk data shares one record framing (internal/recframe, also
// used by the memtrace trace files): length-prefixed records protected by
// a CRC-32C checksum. A process death can tear at most the record being
// appended; recovery-on-open scans to the first record that fails its
// length or checksum test and truncates the file there, so every
// surviving byte is known-good and an interrupted append can never
// corrupt earlier records.
package durable

import (
	"fmt"
	"io"
	"os"
	"sync"

	"slacksim/internal/recframe"
)

// recBufPool recycles record-encoding scratch buffers so steady-state WAL
// appends (Store.Put, compaction) stop allocating per record. Buffers are
// handed back immediately after appendRecord returns — the framing writes
// the payload out before returning, so nothing retains the bytes.
var recBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getRecBuf() *[]byte  { return recBufPool.Get().(*[]byte) }
func putRecBuf(b *[]byte) { recBufPool.Put(b) }

// The framing itself lives in internal/recframe; these thin aliases keep
// the package-internal call sites and names stable.
const recHeaderLen = recframe.HeaderLen

type scanResult = recframe.ScanResult

func appendRecord(w io.Writer, payload []byte) (int64, error) {
	return recframe.Append(w, payload)
}

func scanRecords(r io.Reader, fn func(off int64, payload []byte) error) (scanResult, error) {
	return recframe.Scan(r, fn)
}

// recoverLog opens (creating if absent) the record log at path for
// appending, first scanning it and truncating any torn tail so the file
// ends on a record boundary. fn sees every intact record in order.
func recoverLog(path string, fn func(off int64, payload []byte) error) (*os.File, scanResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, scanResult{}, err
	}
	res, err := scanRecords(f, fn)
	if err != nil {
		f.Close()
		return nil, res, err
	}
	if res.Torn {
		if err := f.Truncate(res.GoodBytes); err != nil {
			f.Close()
			return nil, res, fmt.Errorf("durable: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, res, err
		}
	}
	if _, err := f.Seek(res.GoodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, res, err
	}
	return f, res, nil
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable (required for the atomic segment-publish rename).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
