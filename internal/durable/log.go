// Package durable is the persistence subsystem of the slacksim service:
// a content-addressed on-disk result store behind the resultcache
// interface (an append-only write-ahead log compacted into immutable
// segment files), a crash-recoverable job journal for slacksimd and the
// fleet coordinator, and a versioned container format for exportable run
// snapshots used by live migration.
//
// All on-disk data shares one record framing (this file): length-prefixed
// records protected by a CRC-32C checksum. A process death can tear at
// most the record being appended; recovery-on-open scans to the first
// record that fails its length or checksum test and truncates the file
// there, so every surviving byte is known-good and an interrupted append
// can never corrupt earlier records.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// recBufPool recycles record-encoding scratch buffers so steady-state WAL
// appends (Store.Put, compaction) stop allocating per record. Buffers are
// handed back immediately after appendRecord returns — the framing writes
// the payload out before returning, so nothing retains the bytes.
var recBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getRecBuf() *[]byte  { return recBufPool.Get().(*[]byte) }
func putRecBuf(b *[]byte) { recBufPool.Put(b) }

// Record framing: a fixed header of two little-endian uint32s — payload
// length and CRC-32C (Castagnoli) of the payload — followed by the
// payload bytes. The maximum record size bounds a corrupt length field:
// a length beyond it is treated as a torn tail, not an allocation order.
const (
	recHeaderLen = 8
	maxRecordLen = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord frames payload and appends it to w, returning the number
// of bytes written (header + payload).
func appendRecord(w io.Writer, payload []byte) (int64, error) {
	if len(payload) > maxRecordLen {
		return 0, fmt.Errorf("durable: record of %d bytes exceeds the %d-byte bound", len(payload), maxRecordLen)
	}
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(recHeaderLen + len(payload)), nil
}

// scanResult describes one pass over a record log.
type scanResult struct {
	// goodBytes is the offset just past the last record that passed both
	// the length and checksum tests.
	goodBytes int64
	// torn reports whether the file continued past goodBytes with bytes
	// that did not form a valid record (a torn or corrupt tail).
	torn bool
}

// scanRecords reads records from r, invoking fn with each payload and the
// record's starting offset. It stops at EOF or at the first record that
// fails validation; the result says how many prefix bytes are good.
func scanRecords(r io.Reader, fn func(off int64, payload []byte) error) (scanResult, error) {
	var off int64
	var hdr [recHeaderLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return scanResult{goodBytes: off}, nil
			}
			// io.ErrUnexpectedEOF: a torn header.
			return scanResult{goodBytes: off, torn: true}, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecordLen {
			return scanResult{goodBytes: off, torn: true}, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return scanResult{goodBytes: off, torn: true}, nil
		}
		if crc32.Checksum(payload, crcTable) != want {
			return scanResult{goodBytes: off, torn: true}, nil
		}
		if err := fn(off, payload); err != nil {
			return scanResult{goodBytes: off}, err
		}
		off += int64(recHeaderLen) + int64(n)
	}
}

// recoverLog opens (creating if absent) the record log at path for
// appending, first scanning it and truncating any torn tail so the file
// ends on a record boundary. fn sees every intact record in order.
func recoverLog(path string, fn func(off int64, payload []byte) error) (*os.File, scanResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, scanResult{}, err
	}
	res, err := scanRecords(f, fn)
	if err != nil {
		f.Close()
		return nil, res, err
	}
	if res.torn {
		if err := f.Truncate(res.goodBytes); err != nil {
			f.Close()
			return nil, res, fmt.Errorf("durable: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, res, err
		}
	}
	if _, err := f.Seek(res.goodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, res, err
	}
	return f, res, nil
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable (required for the atomic segment-publish rename).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
