package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// StoreOptions parameterizes a Store.
type StoreOptions struct {
	// SyncEvery is the fsync batching window: an append schedules one
	// deferred fsync at most this far in the future, so a burst of puts
	// shares a single disk flush (default 25ms). Zero selects the
	// default; negative syncs every append (slow, test-friendly).
	SyncEvery time.Duration
	// CompactBytes triggers WAL compaction: once the write-ahead log
	// exceeds this many bytes its live records are rewritten into a new
	// immutable segment file and the log is truncated (default 4 MiB).
	CompactBytes int64
}

func (o StoreOptions) withDefaults() StoreOptions {
	if o.SyncEvery == 0 {
		o.SyncEvery = 25 * time.Millisecond
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 4 << 20
	}
	return o
}

// StoreStats snapshots the store's counters.
type StoreStats struct {
	Entries     int    `json:"entries"`
	Segments    int    `json:"segments"`
	WALBytes    int64  `json:"wal_bytes"`
	Puts        uint64 `json:"puts"`
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Compactions uint64 `json:"compactions"`
	// Recovered counts records replayed from disk when the store opened;
	// TornTails counts files whose tail had to be truncated.
	Recovered uint64 `json:"recovered"`
	TornTails uint64 `json:"torn_tails"`
}

// loc addresses one record's value bytes. file 0 is the WAL; positive
// values are segment ids.
type loc struct {
	file int64
	off  int64 // offset of the value bytes within the file
	vlen int64
}

// Store is a persistent content-addressed key→value store: appends go to
// a write-ahead log which compaction folds into immutable segment files.
// Keys are content addresses (spec digests), so records are never
// mutated in place — a later put of the same key supersedes the earlier
// record, and compaction drops superseded ones. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts StoreOptions

	mu       sync.Mutex
	wal      *os.File
	walSize  int64
	segs     map[int64]*os.File // guarded by mu; open segment files
	nextSeg  int64              // guarded by mu
	index    map[string]loc     // guarded by mu
	syncing  bool               // guarded by mu; a deferred fsync is scheduled
	closed   bool               // guarded by mu
	syncWait sync.WaitGroup

	puts, hits, misses, compactions, recovered, tornTails uint64 // guarded by mu
}

// record payload: u32 key length | key bytes | value bytes.
// encodeStoreRecord appends the encoding to dst[:0] and returns it, so
// callers can thread a pooled scratch buffer through repeated encodes.
func encodeStoreRecord(dst []byte, key string, val []byte) []byte {
	dst = append(dst[:0], 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(dst[:4], uint32(len(key)))
	dst = append(dst, key...)
	return append(dst, val...)
}

func decodeStoreRecord(payload []byte) (key string, valOff int64, err error) {
	if len(payload) < 4 {
		return "", 0, fmt.Errorf("durable: store record of %d bytes is too short", len(payload))
	}
	kl := int(binary.LittleEndian.Uint32(payload[:4]))
	if kl < 0 || 4+kl > len(payload) {
		return "", 0, fmt.Errorf("durable: store record key length %d exceeds payload", kl)
	}
	return string(payload[4 : 4+kl]), int64(4 + kl), nil
}

const (
	walName    = "wal.log"
	segPattern = "seg-%06d.seg"
)

// OpenStore opens (creating if needed) the store rooted at dir,
// replaying every segment and the write-ahead log to rebuild the index
// and truncating any torn WAL tail left by a crash.
func OpenStore(dir string, opts StoreOptions) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		opts:    opts.withDefaults(),
		segs:    make(map[int64]*os.File),
		index:   make(map[string]loc),
		nextSeg: 1,
	}

	names, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		var id int64
		if _, err := fmt.Sscanf(filepath.Base(name), segPattern, &id); err != nil {
			continue
		}
		f, err := os.Open(name)
		if err != nil {
			s.Close()
			return nil, err
		}
		res, err := scanRecords(f, func(off int64, payload []byte) error {
			return s.replayLocked(id, off, payload)
		})
		if err != nil {
			f.Close()
			s.Close()
			return nil, err
		}
		if res.Torn {
			// Segments are published by atomic rename, so a torn segment
			// means external corruption; keep the good prefix.
			s.tornTails++
		}
		s.segs[id] = f
		if id >= s.nextSeg {
			s.nextSeg = id + 1
		}
	}

	wal, res, err := recoverLog(filepath.Join(dir, walName), func(off int64, payload []byte) error {
		return s.replayLocked(0, off, payload)
	})
	if err != nil {
		s.Close()
		return nil, err
	}
	if res.Torn {
		s.tornTails++
	}
	s.wal = wal
	s.walSize = res.GoodBytes
	return s, nil
}

// replayLocked indexes one recovered record. Open-time callers own the
// store exclusively (it is not yet published), which satisfies the
// caller-holds-the-lock contract.
func (s *Store) replayLocked(file, off int64, payload []byte) error {
	key, valOff, err := decodeStoreRecord(payload)
	if err != nil {
		return err
	}
	s.recovered++
	s.index[key] = loc{
		file: file,
		off:  off + recHeaderLen + valOff,
		vlen: int64(len(payload)) - valOff,
	}
	return nil
}

func (s *Store) fileForLocked(l loc) *os.File {
	if l.file == 0 {
		return s.wal
	}
	return s.segs[l.file]
}

// Get returns the stored value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	l, ok := s.index[key]
	if !ok || s.closed {
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	f := s.fileForLocked(l)
	s.hits++
	s.mu.Unlock()
	// ReadAt is safe concurrently with appends; records are immutable
	// once indexed (compaction swaps the index entry under mu before the
	// WAL is truncated, so a raced Get reads either copy, both intact).
	val := make([]byte, l.vlen)
	if _, err := f.ReadAt(val, l.off); err != nil {
		return nil, false
	}
	return val, true
}

// Has reports whether key is present without touching the hit counters.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Len returns the number of distinct keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Put durably records key→val. The append lands in the write-ahead log
// immediately; the fsync is batched (StoreOptions.SyncEvery), so a crash
// inside the batching window may lose the newest appends — never earlier
// ones, and results are recomputable by construction.
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	bp := getRecBuf()
	payload := encodeStoreRecord(*bp, key, val)
	off := s.walSize
	n, err := appendRecord(s.wal, payload)
	*bp = payload
	putRecBuf(bp)
	if err != nil {
		return err
	}
	s.walSize += n
	s.puts++
	s.index[key] = loc{file: 0, off: off + recHeaderLen + 4 + int64(len(key)), vlen: int64(len(val))}
	if s.opts.SyncEvery < 0 {
		if err := s.wal.Sync(); err != nil {
			return err
		}
	} else if !s.syncing {
		s.syncing = true
		s.syncWait.Add(1)
		time.AfterFunc(s.opts.SyncEvery, s.flush)
	}
	if s.walSize >= s.opts.CompactBytes {
		return s.compactLocked()
	}
	return nil
}

// flush performs one batched fsync.
func (s *Store) flush() {
	defer s.syncWait.Done()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.syncing = false
	if s.closed {
		return
	}
	_ = s.wal.Sync()
}

// Sync forces the write-ahead log to disk (tests and Close).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.wal.Sync()
}

// compactLocked rewrites the WAL's live records into a new immutable
// segment (write temp → fsync → atomic rename → fsync dir) and truncates
// the log. The caller holds s.mu.
func (s *Store) compactLocked() error {
	id := s.nextSeg
	final := filepath.Join(s.dir, fmt.Sprintf(segPattern, id))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}

	// Collect the keys whose latest record lives in the WAL, in a stable
	// order so compaction output is deterministic.
	keys := make([]string, 0, len(s.index))
	for k, l := range s.index {
		if l.file == 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var off int64
	var val, enc []byte // reused across records
	moved := make(map[string]loc, len(keys))
	for _, k := range keys {
		l := s.index[k]
		if int64(cap(val)) < l.vlen {
			val = make([]byte, l.vlen)
		}
		val = val[:l.vlen]
		if _, err := s.wal.ReadAt(val, l.off); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		enc = encodeStoreRecord(enc, k, val)
		n, err := appendRecord(f, enc)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		moved[k] = loc{file: id, off: off + recHeaderLen + 4 + int64(len(k)), vlen: l.vlen}
		off += n
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	// The segment is durable; now the index can point at it and the WAL
	// can be reset. Order matters for crash safety, not for readers: a
	// crash before the truncate replays both copies (idempotent).
	s.segs[id] = f
	s.nextSeg = id + 1
	for k, l := range moved {
		s.index[k] = l
	}
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.walSize = 0
	s.compactions++
	return nil
}

// Compact forces a WAL→segment compaction (tests; production compaction
// is size-triggered).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("durable: store is closed")
	}
	return s.compactLocked()
}

// Stats snapshots the counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries:     len(s.index),
		Segments:    len(s.segs),
		WALBytes:    s.walSize,
		Puts:        s.puts,
		Hits:        s.hits,
		Misses:      s.misses,
		Compactions: s.compactions,
		Recovered:   s.recovered,
		TornTails:   s.tornTails,
	}
}

// Close syncs and closes every file. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var firstErr error
	if s.wal != nil {
		if err := s.wal.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, f := range s.segs {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.mu.Unlock()
	s.syncWait.Wait()
	return firstErr
}
