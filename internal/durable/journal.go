package durable

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"slacksim/internal/service/jobqueue"
	"slacksim/internal/spec"
)

// jobEvent is one journaled transition. Spec is present only on the
// admission record; later transitions reference the job by id.
type jobEvent struct {
	ID    string          `json:"id"`
	State string          `json:"state"`
	Key   string          `json:"key,omitempty"`
	Spec  json.RawMessage `json:"spec,omitempty"`
	Error string          `json:"error,omitempty"`
}

// PendingJob is a job the journal says was admitted but never finished:
// still pending at the crash, or orphaned mid-run (WasRunning). Both are
// re-enqueued on restart — runs are deterministic, so re-executing an
// orphan is always safe.
type PendingJob struct {
	ID         string
	Key        string
	Spec       spec.Spec
	WasRunning bool
}

// liveJob is the journal's in-memory view of one non-terminal job.
type liveJob struct {
	key     string
	spec    json.RawMessage
	running bool
}

// Journal is a crash-recoverable job journal: every lifecycle transition
// (submitted → running → done/failed/cancelled/migrated) is appended as
// a CRC-framed record, so a restarted daemon re-enqueues exactly the
// jobs that were admitted but never finished instead of 404ing every
// caller that still holds their ids. Admission records are fsynced
// before the method returns; later transitions ride the next sync.
// All methods are safe for concurrent use.
type Journal struct {
	path string

	mu      sync.Mutex
	f       *os.File
	size    int64
	live    map[string]*liveJob // guarded by mu
	order   []string            // guarded by mu; live ids, admission order
	appends uint64              // guarded by mu
	lastErr error               // guarded by mu

	recovered uint64
	torn      bool
}

// journalCompactBytes bounds journal growth: past this size a rewrite
// keeps only the records of still-live jobs.
const journalCompactBytes = 1 << 20

// OpenJournal opens (creating if needed) the journal at path, replays it
// — truncating any torn tail — and returns the jobs that never reached a
// terminal state, in admission order.
func OpenJournal(path string) (*Journal, []PendingJob, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, err
	}
	j := &Journal{path: path, live: make(map[string]*liveJob)}
	f, res, err := recoverLog(path, func(off int64, payload []byte) error {
		var ev jobEvent
		if err := json.Unmarshal(payload, &ev); err != nil {
			return fmt.Errorf("durable: journal record at %d: %w", off, err)
		}
		j.recovered++
		j.applyLocked(ev)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	j.f = f
	j.size = res.GoodBytes
	j.torn = res.Torn

	var pending []PendingJob
	for _, id := range j.order {
		lj := j.live[id]
		var sp spec.Spec
		if err := json.Unmarshal(lj.spec, &sp); err != nil {
			// An admission record that does not parse is unrecoverable;
			// drop the job rather than refuse to start.
			continue
		}
		pending = append(pending, PendingJob{ID: id, Key: lj.key, Spec: sp.Normalize(), WasRunning: lj.running})
	}
	// Rewrite so terminal history does not accumulate across restarts.
	j.mu.Lock()
	err = j.compactLocked()
	j.mu.Unlock()
	if err != nil {
		j.Close()
		return nil, nil, err
	}
	return j, pending, nil
}

// applyLocked folds one event into the live map.
func (j *Journal) applyLocked(ev jobEvent) {
	switch ev.State {
	case jobqueue.Pending.String(): // "pending" = admitted
		if _, ok := j.live[ev.ID]; !ok {
			j.live[ev.ID] = &liveJob{key: ev.Key, spec: ev.Spec}
			j.order = append(j.order, ev.ID)
		}
	case jobqueue.Running.String():
		if lj, ok := j.live[ev.ID]; ok {
			lj.running = true
		}
	default: // terminal: done/failed/cancelled/migrated
		if _, ok := j.live[ev.ID]; ok {
			delete(j.live, ev.ID)
			for i, id := range j.order {
				if id == ev.ID {
					j.order = append(j.order[:i], j.order[i+1:]...)
					break
				}
			}
		}
	}
}

// append writes one event record; sync forces it to disk before return.
func (j *Journal) append(ev jobEvent, sync bool) {
	payload, err := json.Marshal(ev)
	if err != nil {
		j.noteErr(err)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	n, err := appendRecord(j.f, payload)
	if err != nil {
		j.lastErr = err
		log.Printf("durable: journal append: %v", err)
		return
	}
	j.size += n
	j.appends++
	j.applyLocked(ev)
	if sync {
		if err := j.f.Sync(); err != nil {
			j.lastErr = err
		}
	}
	if j.size > journalCompactBytes {
		if err := j.compactLocked(); err != nil {
			j.lastErr = err
			log.Printf("durable: journal compact: %v", err)
		}
	}
}

func (j *Journal) noteErr(err error) {
	j.mu.Lock()
	j.lastErr = err
	j.mu.Unlock()
	log.Printf("durable: journal: %v", err)
}

// JobSubmitted journals an admission; it is durable (fsynced) before the
// method returns, so an acknowledged job is never forgotten.
func (j *Journal) JobSubmitted(id, key string, sp spec.Spec) {
	blob, err := json.Marshal(sp)
	if err != nil {
		j.noteErr(err)
		return
	}
	j.append(jobEvent{ID: id, State: jobqueue.Pending.String(), Key: key, Spec: blob}, true)
}

// JobRunning journals a worker picking the job up, marking it for
// orphan re-enqueue if the daemon dies mid-run.
func (j *Journal) JobRunning(id string) {
	j.append(jobEvent{ID: id, State: jobqueue.Running.String()}, false)
}

// JobFinished journals a terminal transition.
func (j *Journal) JobFinished(id string, state jobqueue.State, errMsg string) {
	j.append(jobEvent{ID: id, State: state.String(), Error: errMsg}, false)
}

// compactLocked atomically rewrites the journal keeping only live jobs:
// their admission records, plus a running record for orphans-to-be. The
// caller holds j.mu.
func (j *Journal) compactLocked() error {
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var size int64
	for _, id := range j.order {
		lj := j.live[id]
		sub, err := json.Marshal(jobEvent{ID: id, State: jobqueue.Pending.String(), Key: lj.key, Spec: lj.spec})
		if err == nil {
			n, werr := appendRecord(f, sub)
			if werr != nil {
				err = werr
			}
			size += n
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if lj.running {
			run, _ := json.Marshal(jobEvent{ID: id, State: jobqueue.Running.String()})
			n, err := appendRecord(f, run)
			if err != nil {
				f.Close()
				os.Remove(tmp)
				return err
			}
			size += n
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := syncDir(filepath.Dir(j.path)); err != nil {
		f.Close()
		return err
	}
	if j.f != nil {
		j.f.Close()
	}
	j.f = f
	j.size = size
	return nil
}

// Err returns the first persistent-write error observed ("" = none).
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastErr
}

// Live returns the number of journaled non-terminal jobs.
func (j *Journal) Live() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.live)
}

// Recovered reports how many records the last OpenJournal replayed and
// whether a torn tail was truncated.
func (j *Journal) Recovered() (records uint64, torn bool) { return j.recovered, j.torn }

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
