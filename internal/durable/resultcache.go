package durable

import (
	"encoding/json"
	"log"

	"slacksim"
	"slacksim/internal/service/resultcache"
)

// ResultCache presents a Store as the server's result cache: a bounded
// LRU memory tier in front of the persistent content-addressed store.
// Results are deterministic functions of their spec digest, and the JSON
// encoding of Results round-trips exactly (float64 marshals shortest-
// form), so a result served from disk is byte-identical to the freshly
// computed one.
type ResultCache struct {
	store *Store
	mem   *resultcache.Cache[*slacksim.Results]
}

// NewResultCache fronts store with a memEntries-entry LRU tier.
func NewResultCache(store *Store, memEntries int) *ResultCache {
	return &ResultCache{store: store, mem: resultcache.New[*slacksim.Results](memEntries)}
}

// Get returns the cached result for key, consulting the memory tier
// first and falling back to the store (promoting the hit).
func (c *ResultCache) Get(key string) (*slacksim.Results, bool) {
	if res, ok := c.mem.Get(key); ok {
		return res, true
	}
	blob, ok := c.store.Get(key)
	if !ok {
		return nil, false
	}
	var res slacksim.Results
	if err := json.Unmarshal(blob, &res); err != nil {
		log.Printf("durable: result for %s does not decode (dropping): %v", key, err)
		return nil, false
	}
	c.mem.Put(key, &res)
	return &res, true
}

// Put stores the result durably and in the memory tier.
func (c *ResultCache) Put(key string, res *slacksim.Results) {
	c.mem.Put(key, res)
	blob, err := json.Marshal(res)
	if err != nil {
		log.Printf("durable: result for %s does not encode: %v", key, err)
		return
	}
	if err := c.store.Put(key, blob); err != nil {
		log.Printf("durable: persisting result for %s: %v", key, err)
	}
}

// Len returns the number of durably stored results.
func (c *ResultCache) Len() int { return c.store.Len() }

// Stats reports the memory tier's counters (the server's cache metrics).
func (c *ResultCache) Stats() resultcache.Stats { return c.mem.Stats() }

// StoreStats reports the persistent tier's counters.
func (c *ResultCache) StoreStats() StoreStats { return c.store.Stats() }
