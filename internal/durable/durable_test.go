package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"slacksim/internal/service/jobqueue"
	"slacksim/internal/spec"
)

// syncNow makes every append fsync inline so tests never race the
// batching timer.
var syncNow = StoreOptions{SyncEvery: -1}

func openTestStore(t *testing.T, dir string, opts StoreOptions) *Store {
	t.Helper()
	s, err := OpenStore(dir, opts)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStorePutGetReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, syncNow)
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("key%02d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Overwrite: latest record wins.
	if err := s.Put("key07", []byte("fresh")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v, ok := s.Get("key07"); !ok || string(v) != "fresh" {
		t.Fatalf("Get(key07) = %q, %v; want fresh", v, ok)
	}
	if s.Len() != 20 {
		t.Fatalf("Len = %d, want 20", s.Len())
	}
	s.Close()

	r := openTestStore(t, dir, syncNow)
	if r.Len() != 20 {
		t.Fatalf("reopened Len = %d, want 20", r.Len())
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key%02d", i)
		want := fmt.Sprintf("value-%d", i)
		if i == 7 {
			want = "fresh"
		}
		if v, ok := r.Get(key); !ok || string(v) != want {
			t.Fatalf("reopened Get(%s) = %q, %v; want %q", key, v, ok, want)
		}
	}
}

func TestStoreTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, syncNow)
	if err := s.Put("good", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: a partial record at the tail.
	wal := filepath.Join(dir, walName)
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := openTestStore(t, dir, syncNow)
	if v, ok := r.Get("good"); !ok || string(v) != "intact" {
		t.Fatalf("good record lost across torn-tail recovery: %q, %v", v, ok)
	}
	st := r.Stats()
	if st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}
	// The truncation must leave the WAL appendable on a record boundary.
	if err := r.Put("after", []byte("recovery")); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := openTestStore(t, dir, syncNow)
	if v, ok := r2.Get("after"); !ok || string(v) != "recovery" {
		t.Fatalf("post-recovery append lost: %q, %v", v, ok)
	}
}

func TestStoreCRCCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, syncNow)
	if err := s.Put("a", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a payload bit in the FIRST record: everything from there on is
	// untrusted and must be dropped.
	wal := filepath.Join(dir, walName)
	blob, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	blob[recHeaderLen+5] ^= 0x01
	if err := os.WriteFile(wal, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTestStore(t, dir, syncNow)
	if _, ok := r.Get("a"); ok {
		t.Fatal("corrupt record served")
	}
	if _, ok := r.Get("b"); ok {
		t.Fatal("record after corruption served (suffix must be distrusted)")
	}
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, syncNow)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.Segments != 1 || st.WALBytes != 0 {
		t.Fatalf("after compaction: segments=%d walBytes=%d, want 1/0", st.Segments, st.WALBytes)
	}
	// Reads served from the segment.
	for i := 0; i < 10; i++ {
		if v, ok := s.Get(fmt.Sprintf("k%d", i)); !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 100)) {
			t.Fatalf("post-compaction Get(k%d) wrong: %v %v", i, v, ok)
		}
	}
	// New puts land in the WAL again; reopen sees both tiers.
	if err := s.Put("k3", []byte("newer")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	r := openTestStore(t, dir, syncNow)
	if v, ok := r.Get("k3"); !ok || string(v) != "newer" {
		t.Fatalf("WAL record must shadow segment record: %q %v", v, ok)
	}
	if v, ok := r.Get("k4"); !ok || !bytes.Equal(v, bytes.Repeat([]byte{4}, 100)) {
		t.Fatalf("segment record lost after reopen: %v %v", v, ok)
	}
}

func TestStoreSizeTriggeredCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, StoreOptions{SyncEvery: -1, CompactBytes: 2048})
	for i := 0; i < 64; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i%8), bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatal("no size-triggered compaction happened")
	}
	if st.Entries != 8 {
		t.Fatalf("Entries = %d, want 8", st.Entries)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := openTestStore(t, t.TempDir(), StoreOptions{CompactBytes: 4096})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%10)
				val := []byte(fmt.Sprintf("g%d-v%d", g, i))
				if err := s.Put(key, val); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if v, ok := s.Get(key); ok && len(v) == 0 {
					t.Errorf("empty read for %s", key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

func testSpec(workload string, seed int64) spec.Spec {
	return spec.Spec{Workload: workload, Cores: 2, Scheme: "b10", Seed: seed, MaxInstructions: 500}.Normalize()
}

func TestJournalReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.log")
	j, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending jobs", len(pending))
	}
	spDone, spRun, spPend := testSpec("fft", 1), testSpec("fft", 2), testSpec("fft", 3)
	j.JobSubmitted("j1", spDone.Key(), spDone)
	j.JobSubmitted("j2", spRun.Key(), spRun)
	j.JobSubmitted("j3", spPend.Key(), spPend)
	j.JobRunning("j1")
	j.JobRunning("j2")
	j.JobFinished("j1", jobqueue.Done, "")
	if err := j.Err(); err != nil {
		t.Fatalf("journal error: %v", err)
	}
	j.Close()

	// Crash here: j1 done, j2 orphaned mid-run, j3 still pending.
	j2, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if len(pending) != 2 {
		t.Fatalf("pending = %d jobs, want 2", len(pending))
	}
	if pending[0].ID != "j2" || !pending[0].WasRunning {
		t.Fatalf("pending[0] = %+v, want orphaned j2", pending[0])
	}
	if pending[1].ID != "j3" || pending[1].WasRunning {
		t.Fatalf("pending[1] = %+v, want pending j3", pending[1])
	}
	if pending[0].Key != spRun.Key() || pending[0].Spec.Key() != spRun.Key() {
		t.Fatalf("j2 spec did not round-trip: %+v", pending[0])
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.log")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec("lu", 7)
	j.JobSubmitted("j1", sp.Key(), sp)
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0x00, 0x00}) // torn header
	f.Close()

	j2, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer j2.Close()
	if _, torn := j2.Recovered(); !torn {
		t.Fatal("torn tail not detected")
	}
	if len(pending) != 1 || pending[0].ID != "j1" {
		t.Fatalf("pending = %+v, want [j1]", pending)
	}
}

func TestJournalCompactsOnOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.log")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sp := testSpec("fft", int64(i))
		id := fmt.Sprintf("j%d", i)
		j.JobSubmitted(id, sp.Key(), sp)
		j.JobRunning(id)
		j.JobFinished(id, jobqueue.Done, "")
	}
	j.Close()

	j2, pending, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if len(pending) != 0 {
		t.Fatalf("terminal jobs resurfaced: %d", len(pending))
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("compacted journal with no live jobs is %d bytes, want 0", fi.Size())
	}
}

func TestSnapshotContainerRoundTrip(t *testing.T) {
	sp := testSpec("barnes", 11)
	engine := bytes.Repeat([]byte{1, 2, 3, 4, 5}, 100)
	blob, err := EncodeSnapshot(sp, engine)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	snap, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if snap.Key != sp.Key() {
		t.Fatalf("key = %s, want %s", snap.Key, sp.Key())
	}
	if snap.Spec.Key() != sp.Key() {
		t.Fatalf("spec did not round-trip: %+v", snap.Spec)
	}
	if !bytes.Equal(snap.Engine, engine) {
		t.Fatal("engine payload did not round-trip")
	}

	// Corruption anywhere must be detected.
	for _, idx := range []int{0, len(snapshotMagic) + 2, len(blob) - 3} {
		bad := append([]byte(nil), blob...)
		bad[idx] ^= 0x40
		if _, err := DecodeSnapshot(bad); err == nil {
			t.Fatalf("corruption at byte %d not detected", idx)
		}
	}
	if _, err := DecodeSnapshot(blob[:len(blob)-10]); err == nil {
		t.Fatal("truncated snapshot not detected")
	}
}

func TestSnapshotSpecKeyMismatch(t *testing.T) {
	sp := testSpec("fft", 1)
	blob, err := EncodeSnapshot(sp, []byte("engine"))
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the spec inside the header while recomputing the CRC:
	// decode the header record, change a field, re-encode.
	var records [][]byte
	if _, err := scanRecords(bytes.NewReader(blob[len(snapshotMagic):]), func(off int64, p []byte) error {
		records = append(records, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var hdr map[string]json.RawMessage
	if err := json.Unmarshal(records[0], &hdr); err != nil {
		t.Fatal(err)
	}
	var tampered spec.Spec
	if err := json.Unmarshal(hdr["spec"], &tampered); err != nil {
		t.Fatal(err)
	}
	tampered.Seed++
	hdr["spec"], _ = json.Marshal(tampered)
	newHdr, _ := json.Marshal(hdr)
	var buf bytes.Buffer
	buf.Write(snapshotMagic)
	if _, err := appendRecord(&buf, newHdr); err != nil {
		t.Fatal(err)
	}
	if _, err := appendRecord(&buf, records[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(buf.Bytes()); err == nil {
		t.Fatal("spec/key mismatch not detected")
	}
}
