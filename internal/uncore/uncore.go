// Package uncore implements the target-system model owned by the
// simulation manager thread: the snooping request/response bus, the shared
// L2 cache, main memory timing, and the global cache status map tracking
// every L1 copy. It corresponds to the first function of the paper's
// manager thread (the second — pacing the simulation — lives in
// internal/engine).
//
// The manager services requests *eagerly*, in the order it receives them,
// which is what allows a slack simulation to process two cores' accesses
// in a different order than the target machine would; the bus grant
// monitor and the status-map monitors detect exactly those reorderings and
// report them to the violation detector.
package uncore

import (
	"fmt"

	"slacksim/internal/bus"
	"slacksim/internal/cache"
	"slacksim/internal/coherence"
	"slacksim/internal/event"
	"slacksim/internal/trace"
	"slacksim/internal/violation"
)

// Config describes the shared memory system.
type Config struct {
	NumCores int
	// L2 configures the shared cache (the paper: 256KB, 8-cycle access).
	L2 cache.Config
	// MemLatency is the L2 miss penalty in cycles (the paper: 100).
	MemLatency int64
	// OwnerFlushLatency is the latency for a dirty L1 to supply a line.
	OwnerFlushLatency int64
	// ReqBusOccupancy and RespBusOccupancy are bus cycles per transaction.
	ReqBusOccupancy, RespBusOccupancy int64
}

// DefaultConfig returns the paper's shared-memory configuration.
func DefaultConfig(numCores int) Config {
	return Config{
		NumCores: numCores,
		L2: cache.Config{
			Name: "l2", SizeBytes: 256 << 10, Assoc: 8, LatencyCycles: 8,
		},
		MemLatency:        100,
		OwnerFlushLatency: 8,
		ReqBusOccupancy:   1,
		RespBusOccupancy:  1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NumCores <= 0 {
		return fmt.Errorf("uncore: NumCores must be positive")
	}
	if c.MemLatency <= 0 || c.OwnerFlushLatency < 0 {
		return fmt.Errorf("uncore: latencies must be positive")
	}
	return c.L2.Validate()
}

// Uncore is the manager-side model of the shared memory system.
type Uncore struct {
	cfg  Config
	bus  *bus.Bus
	l2   *cache.Cache
	smap *cache.StatusMap
	det  *violation.Detector
	inQs []*event.Queue[event.Msg]
	trc  *trace.Ring

	// Served counts serviced requests (the manager's event workload).
	Served uint64
	// Invalidations counts snoop messages sent to remote L1s.
	Invalidations uint64

	// holdScratch backs the holder list in Service so the per-request hot
	// path allocates nothing.
	holdScratch []int
}

// New builds the uncore. inQs[i] is core i's incoming queue; det receives
// detected violations.
func New(cfg Config, inQs []*event.Queue[event.Msg], det *violation.Detector) (*Uncore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(inQs) != cfg.NumCores {
		return nil, fmt.Errorf("uncore: %d InQs for %d cores", len(inQs), cfg.NumCores)
	}
	return &Uncore{
		cfg:  cfg,
		bus:  bus.New(cfg.ReqBusOccupancy, cfg.RespBusOccupancy),
		l2:   cache.New(cfg.L2),
		smap: cache.NewStatusMap(cfg.NumCores),
		det:  det,
		inQs: inQs,
	}, nil
}

// Bus exposes the bus model (stats, tests).
func (u *Uncore) Bus() *bus.Bus { return u.bus }

// L2 exposes the shared cache (stats, tests).
func (u *Uncore) L2() *cache.Cache { return u.l2 }

// StatusMap exposes the global L1 state map (tests).
func (u *Uncore) StatusMap() *cache.StatusMap { return u.smap }

// SetTracer attaches an optional event ring (nil disables tracing).
func (u *Uncore) SetTracer(r *trace.Ring) { u.trc = r }

// Service processes one core request completely: request-bus arbitration,
// snooping (with invalidations to remote L1s through their InQs), L2/memory
// timing, status-map update, and the data reply on the response bus. It
// records bus and map violations in the detector.
func (u *Uncore) Service(req event.Request) {
	u.Served++
	// Addf calls are guarded by Enabled so the variadic boxing only
	// allocates when a tracer is attached — this is the hottest manager
	// path, one call per serviced request.
	if u.trc.Enabled() {
		u.trc.Addf(req.TS, req.Core, trace.Request, "%s line=%#x", req.Kind, req.LineAddr)
	}
	grant, busViol := u.bus.Grant(req.TS)
	if busViol {
		u.det.Record(violation.Bus, req.TS)
		if u.trc.Enabled() {
			u.trc.Addf(req.TS, req.Core, trace.Violation, "bus reorder line=%#x", req.LineAddr)
		}
	}

	// At most one map violation is charged per serviced request, however
	// many per-core entries its snoops touch.
	mapViolated := false

	if req.Kind == coherence.BusWB {
		// Dirty eviction: data is written into L2; no reply needed.
		u.l2.Probe(req.LineAddr, true)
		u.l2.Insert(req.LineAddr, coherence.Modified)
		if u.smap.Apply(req.LineAddr, req.Core, coherence.Invalid, req.TS) {
			u.det.Record(violation.Map, req.TS)
		}
		return
	}

	// Effective kind: an upgrade whose S copy was already invalidated by a
	// racing BusRdX must refetch data.
	kind := req.Kind
	if kind == coherence.BusUpgr && !u.smap.State(req.LineAddr, req.Core).Valid() {
		kind = coherence.BusRdX
	}

	// Snoop every remote holder.
	owner := u.smap.OwnerOtherThan(req.LineAddr, req.Core)
	holders := u.smap.HoldersInto(u.holdScratch[:0], req.LineAddr, req.Core)
	u.holdScratch = holders
	sharedElsewhere := false
	for _, h := range holders {
		next, _ := coherence.SnoopState(u.smap.State(req.LineAddr, h), kind)
		mapViolated = u.smap.Apply(req.LineAddr, h, next, req.TS) || mapViolated
		u.inQs[h].Push(event.Msg{
			Kind:     event.MsgInval,
			LineAddr: req.LineAddr,
			NewState: next,
			TS:       grant + u.cfg.ReqBusOccupancy,
		})
		u.Invalidations++
		if next.Valid() {
			sharedElsewhere = true
		}
	}

	// Data source timing.
	var ready int64
	switch {
	case kind == coherence.BusUpgr:
		// No data transfer; permission granted when the request wins the
		// bus and snoops are out.
		ready = grant + u.cfg.ReqBusOccupancy
	case owner >= 0:
		// Cache-to-cache supply from the dirty/exclusive owner; the line
		// is also written back into L2.
		ready = grant + u.cfg.OwnerFlushLatency
		u.l2.Probe(req.LineAddr, true)
		u.l2.Insert(req.LineAddr, coherence.Modified)
	default:
		if u.l2.Probe(req.LineAddr, false) {
			ready = grant + int64(u.l2.Latency())
		} else {
			ready = grant + int64(u.l2.Latency()) + u.cfg.MemLatency
			// The L2 victim's writeback to memory is off the critical path.
			u.l2.Insert(req.LineAddr, coherence.Shared)
		}
	}

	grantState := coherence.GrantState(kind, sharedElsewhere)
	mapViolated = u.smap.Apply(req.LineAddr, req.Core, grantState, req.TS) || mapViolated
	if mapViolated {
		u.det.Record(violation.Map, req.TS)
		if u.trc.Enabled() {
			u.trc.Addf(req.TS, req.Core, trace.Violation, "map ownership reorder line=%#x", req.LineAddr)
		}
	}

	done := ready
	if kind != coherence.BusUpgr {
		done = u.bus.ScheduleResponse(ready)
	}
	u.inQs[req.Core].Push(event.Msg{
		Kind:     event.MsgReply,
		ReqID:    req.ID,
		LineAddr: req.LineAddr,
		NewState: grantState,
		TS:       done,
	})
}

// Snapshot deep-copies the uncore state (queues are snapshotted by the
// engine, which owns them).
type Snapshot struct {
	bus           *bus.Bus
	l2            *cache.Cache
	smap          *cache.StatusMap
	served        uint64
	invalidations uint64
}

// Snapshot captures bus, L2 and status-map state.
func (u *Uncore) Snapshot() *Snapshot {
	return &Snapshot{
		bus:           u.bus.Snapshot(),
		l2:            u.l2.Snapshot(),
		smap:          u.smap.Snapshot(),
		served:        u.Served,
		invalidations: u.Invalidations,
	}
}

// SnapshotInto captures bus, L2 and status-map state into s, reusing s's
// component graphs — the pooled-snapshot-graph variant of Snapshot. A
// zero Snapshot is populated on first use (pool warm-up); after that no
// component is reallocated.
func (u *Uncore) SnapshotInto(s *Snapshot) {
	if s.bus == nil {
		s.bus = u.bus.Snapshot() //lint:allow hotpathalloc -- one-time pool warm-up; later boundaries reuse s.bus in place
	} else {
		u.bus.SnapshotInto(s.bus)
	}
	if s.l2 == nil {
		s.l2 = u.l2.Snapshot() //lint:allow hotpathalloc -- one-time pool warm-up; later boundaries reuse s.l2 in place
	} else {
		u.l2.SnapshotInto(s.l2)
	}
	if s.smap == nil {
		s.smap = u.smap.Snapshot() //lint:allow hotpathalloc -- one-time pool warm-up; later boundaries reuse s.smap in place
	} else {
		u.smap.SnapshotInto(s.smap)
	}
	s.served = u.Served
	s.invalidations = u.Invalidations
}

// Reset returns the uncore to its freshly-constructed state (same
// configuration and queues), detaching any tracer. Used when a pooled
// machine is recycled for a new run.
func (u *Uncore) Reset() {
	u.bus.Reset()
	u.l2.Reset()
	u.smap.Reset()
	u.Served = 0
	u.Invalidations = 0
	u.trc = nil
}

// Restore overwrites the uncore from a snapshot.
func (u *Uncore) Restore(s *Snapshot) {
	u.bus.Restore(s.bus)
	u.l2.Restore(s.l2)
	u.smap.Restore(s.smap)
	u.Served = s.served
	u.Invalidations = s.invalidations
}

// StartTracking begins dirty tracking in the L2 and status map for
// incremental checkpoints; the caller takes a full Snapshot at the same
// instant.
func (u *Uncore) StartTracking() {
	u.l2.StartTracking()
	u.smap.StartTracking()
}

// SyncSnapshot brings s (a full Snapshot kept current since tracking
// started) up to date, copying only dirty L2 sets and status-map lines.
//
//slacksim:hotpath
func (u *Uncore) SyncSnapshot(s *Snapshot) {
	u.bus.SyncSnapshot(s.bus)
	u.l2.SyncSnapshot(s.l2)
	u.smap.SyncSnapshot(s.smap)
	s.served = u.Served
	s.invalidations = u.Invalidations
}

// RestoreDirty rolls the uncore back to s, undoing only state touched
// since the last sync.
//
//slacksim:hotpath
func (u *Uncore) RestoreDirty(s *Snapshot) {
	u.bus.Restore(s.bus)
	u.l2.RestoreDirty(s.l2)
	u.smap.RestoreDirty(s.smap)
	u.Served = s.served
	u.Invalidations = s.invalidations
}

// StateEqual reports whether two uncores hold identical bus, L2, and
// status-map state (used by checkpoint-equivalence tests).
func (u *Uncore) StateEqual(o *Uncore) bool {
	return u.Served == o.Served && u.Invalidations == o.Invalidations &&
		u.bus.Equal(o.bus) && u.l2.Equal(o.l2) && u.smap.Equal(o.smap)
}

// StateWords estimates snapshot size for the checkpoint cost model.
func (u *Uncore) StateWords() int {
	return u.l2.StateWords() + u.smap.StateWords() + 16
}
