package uncore

import (
	"testing"

	"slacksim/internal/cache"
	"slacksim/internal/coherence"
	"slacksim/internal/event"
	"slacksim/internal/violation"
)

type fixture struct {
	u    *Uncore
	inQs []*event.Queue[event.Msg]
	det  *violation.Detector
}

func newFixture(t *testing.T, cores int) *fixture {
	t.Helper()
	det := violation.NewDetector()
	var inQs []*event.Queue[event.Msg]
	for i := 0; i < cores; i++ {
		inQs = append(inQs, event.NewQueue[event.Msg]())
	}
	u, err := New(DefaultConfig(cores), inQs, det)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{u: u, inQs: inQs, det: det}
}

func req(core int, kind coherence.BusReq, line uint64, ts int64) event.Request {
	return event.Request{ID: uint64(ts) + 1, Core: core, Kind: kind, LineAddr: line, TS: ts}
}

func (f *fixture) reply(t *testing.T, core int) event.Msg {
	t.Helper()
	for {
		m, ok := f.inQs[core].Pop()
		if !ok {
			t.Fatalf("core %d has no reply", core)
		}
		if m.Kind == event.MsgReply {
			return m
		}
	}
}

func TestBusRdColdGetsExclusive(t *testing.T) {
	f := newFixture(t, 2)
	f.u.Service(req(0, coherence.BusRd, 0x10, 5))
	m := f.reply(t, 0)
	if m.NewState != coherence.Exclusive {
		t.Errorf("cold BusRd granted %v, want E", m.NewState)
	}
	// L2 miss: data ready no earlier than grant + L2 latency + memory.
	if m.TS < 5+8+100 {
		t.Errorf("reply at %d, want >= %d (L2 miss path)", m.TS, 5+8+100)
	}
	if f.u.StatusMap().State(0x10, 0) != coherence.Exclusive {
		t.Error("status map not updated")
	}
}

func TestBusRdSharedGetsShared(t *testing.T) {
	f := newFixture(t, 2)
	f.u.Service(req(0, coherence.BusRd, 0x10, 1))
	f.u.Service(req(1, coherence.BusRd, 0x10, 2))
	m := f.reply(t, 1)
	if m.NewState != coherence.Shared {
		t.Errorf("second reader granted %v, want S", m.NewState)
	}
	// First reader is downgraded E -> S by the snoop.
	var sawInval bool
	for {
		msg, ok := f.inQs[0].Pop()
		if !ok {
			break
		}
		if msg.Kind == event.MsgInval && msg.NewState == coherence.Shared {
			sawInval = true
		}
	}
	if !sawInval {
		t.Error("first reader not downgraded")
	}
	// Second read hits in L2 (first miss filled it): no memory latency.
	if m.TS >= 2+8+100 {
		t.Errorf("L2 hit reply at %d, too slow", m.TS)
	}
}

func TestBusRdXInvalidatesSharers(t *testing.T) {
	f := newFixture(t, 3)
	f.u.Service(req(0, coherence.BusRd, 0x20, 1))
	f.u.Service(req(1, coherence.BusRd, 0x20, 2))
	f.u.Service(req(2, coherence.BusRdX, 0x20, 3))
	m := f.reply(t, 2)
	if m.NewState != coherence.Modified {
		t.Errorf("BusRdX granted %v, want M", m.NewState)
	}
	sm := f.u.StatusMap()
	if sm.State(0x20, 0).Valid() || sm.State(0x20, 1).Valid() {
		t.Error("sharers not invalidated in map")
	}
	for core := 0; core < 2; core++ {
		sawI := false
		for {
			msg, ok := f.inQs[core].Pop()
			if !ok {
				break
			}
			if msg.Kind == event.MsgInval && msg.NewState == coherence.Invalid {
				sawI = true
			}
		}
		if !sawI {
			t.Errorf("core %d got no invalidation", core)
		}
	}
}

func TestOwnerSupplyPath(t *testing.T) {
	f := newFixture(t, 2)
	f.u.Service(req(0, coherence.BusRdX, 0x30, 1)) // core 0 owns M
	f.reply(t, 0)
	f.u.Service(req(1, coherence.BusRd, 0x30, 50))
	m := f.reply(t, 1)
	// Cache-to-cache: owner flush latency, not the 100-cycle memory trip.
	if m.TS >= 50+8+100 {
		t.Errorf("owner supply at %d, want fast path", m.TS)
	}
	if m.NewState != coherence.Shared {
		t.Errorf("granted %v, want S (owner downgraded to sharer)", m.NewState)
	}
}

func TestUpgradeNoData(t *testing.T) {
	f := newFixture(t, 2)
	f.u.Service(req(0, coherence.BusRd, 0x40, 1))
	f.reply(t, 0)
	f.u.Service(req(0, coherence.BusUpgr, 0x40, 30))
	m := f.reply(t, 0)
	if m.NewState != coherence.Modified {
		t.Errorf("upgrade granted %v, want M", m.NewState)
	}
	// No data transfer: permission arrives right after arbitration.
	if m.TS > 32 {
		t.Errorf("upgrade reply at %d, want immediate", m.TS)
	}
}

func TestUpgradeRaceBecomesRdX(t *testing.T) {
	f := newFixture(t, 2)
	f.u.Service(req(0, coherence.BusRd, 0x50, 1)) // core 0: S (via E)
	f.reply(t, 0)
	f.u.Service(req(1, coherence.BusRdX, 0x50, 2)) // core 1 steals: core 0 invalid
	f.reply(t, 1)
	// Core 0's upgrade was issued from stale S; the manager must refetch.
	f.u.Service(req(0, coherence.BusUpgr, 0x50, 3))
	m := f.reply(t, 0)
	if m.NewState != coherence.Modified {
		t.Errorf("raced upgrade granted %v, want M", m.NewState)
	}
	// Data path means response-bus timing (> request+occupancy).
	if m.TS <= 4 {
		t.Errorf("raced upgrade must refetch data, reply at %d", m.TS)
	}
	if f.u.StatusMap().State(0x50, 1).Valid() {
		t.Error("thief not invalidated")
	}
}

func TestWritebackUpdatesL2AndMap(t *testing.T) {
	f := newFixture(t, 2)
	f.u.Service(req(0, coherence.BusRdX, 0x60, 1))
	f.reply(t, 0)
	f.u.Service(req(0, coherence.BusWB, 0x60, 90))
	if f.u.StatusMap().State(0x60, 0).Valid() {
		t.Error("writeback left the line in the map")
	}
	if f.u.L2().State(0x60) != coherence.Modified {
		t.Error("writeback did not dirty L2")
	}
	if f.inQs[0].Len() != 0 {
		t.Error("writeback produced a reply")
	}
}

func TestBusViolationRecorded(t *testing.T) {
	f := newFixture(t, 2)
	f.u.Service(req(0, coherence.BusRd, 0x70, 100))
	f.u.Service(req(1, coherence.BusRd, 0x71, 50)) // retrograde
	if f.det.Count(violation.Bus) != 1 {
		t.Errorf("bus violations = %d, want 1", f.det.Count(violation.Bus))
	}
}

func TestMapViolationRecorded(t *testing.T) {
	f := newFixture(t, 2)
	f.u.Service(req(0, coherence.BusRd, 0x80, 100))
	// Retrograde op on the same line's map entry. Serviced later with a
	// smaller timestamp: both a bus and a map violation.
	f.u.Service(req(1, coherence.BusRdX, 0x80, 40))
	if f.det.Count(violation.Map) == 0 {
		t.Error("map violation not recorded")
	}
}

func TestIFetchTreatedAsRead(t *testing.T) {
	f := newFixture(t, 2)
	f.u.Service(req(0, coherence.BusIFetch, 0x90, 1))
	m := f.reply(t, 0)
	if m.NewState != coherence.Exclusive {
		t.Errorf("cold ifetch granted %v", m.NewState)
	}
}

func TestSnapshotRestore(t *testing.T) {
	f := newFixture(t, 2)
	f.u.Service(req(0, coherence.BusRdX, 0xA0, 1))
	snap := f.u.Snapshot()
	served := f.u.Served
	f.u.Service(req(1, coherence.BusRdX, 0xA0, 2))
	f.u.Restore(snap)
	if f.u.Served != served {
		t.Error("restore lost counters")
	}
	if !f.u.StatusMap().State(0xA0, 0).CanWrite() {
		t.Error("restore lost map state")
	}
	if f.u.StatusMap().State(0xA0, 1).Valid() {
		t.Error("restore kept post-snapshot map state")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(0)
	if err := cfg.Validate(); err == nil {
		t.Error("zero cores accepted")
	}
	cfg = DefaultConfig(2)
	cfg.MemLatency = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero memory latency accepted")
	}
	if _, err := New(DefaultConfig(2), nil, violation.NewDetector()); err == nil {
		t.Error("missing InQs accepted")
	}
}

func TestL2EvictionsHappen(t *testing.T) {
	f := newFixture(t, 1)
	sets := f.u.L2().Config().Sets()
	assoc := f.u.L2().Config().Assoc
	// Fill one L2 set beyond capacity.
	for i := 0; i <= assoc; i++ {
		line := uint64(i * sets) // same set index
		f.u.Service(req(0, coherence.BusRd, line, int64(i)*200))
	}
	if f.u.L2().Evictions == 0 {
		t.Error("no L2 evictions after overfilling a set")
	}
	_ = cache.LineBytes // keep import honest if constants change
}
