package uncore

import (
	"bytes"
	"encoding/gob"

	"slacksim/internal/bus"
	"slacksim/internal/cache"
)

// Wire serialization for run snapshots: the uncore's checkpoint unit is
// its Snapshot, whose nested bus/L2/status-map carry their own gob
// methods.

type snapshotWire struct {
	Bus  *bus.Bus
	L2   *cache.Cache
	Smap *cache.StatusMap

	Served, Invalidations uint64
}

// GobEncode implements gob.GobEncoder.
func (s *Snapshot) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(snapshotWire{
		Bus: s.bus, L2: s.l2, Smap: s.smap,
		Served: s.served, Invalidations: s.invalidations,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (s *Snapshot) GobDecode(data []byte) error {
	var w snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*s = Snapshot{bus: w.Bus, l2: w.L2, smap: w.Smap, served: w.Served, invalidations: w.Invalidations}
	return nil
}
