package spec

import (
	"strings"
	"testing"

	"slacksim"
	"slacksim/internal/memtrace"
	"slacksim/internal/synth"
)

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"cc", "CC"},
		{"s10", "S10"},
		{"su", "SU"},
		{"unbounded", "SU"},
		{"q100", "Q100"},
		{"p2p50", "P2P50"},
		{"adaptive", "adaptive"},
		{" S8 ", "S8"}, // case/space insensitive
	}
	for _, c := range cases {
		sch, err := ParseScheme(c.in, 0, 0)
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", c.in, err)
		}
		if sch.Name() != c.want {
			t.Fatalf("ParseScheme(%q) = %s, want %s", c.in, sch.Name(), c.want)
		}
	}
	for _, bad := range []string{"", "xyz", "sNaN", "qq", "p2p", "s"} {
		if _, err := ParseScheme(bad, 0, 0); err == nil {
			t.Fatalf("ParseScheme(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestParseSchemeAdaptiveOverrides(t *testing.T) {
	sch, err := ParseScheme("adaptive", 0.0005, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sch.Adaptive.TargetRate != 0.0005 || sch.Adaptive.Band != 0.1 {
		t.Fatalf("overrides not applied: %+v", sch.Adaptive)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	n := Spec{Workload: " FFT "}.Normalize()
	if n.Workload != "fft" || n.Scheme != "cc" || n.Scale != 1 || n.Cores != 8 {
		t.Fatalf("bad defaults: %+v", n)
	}
	// Adaptive tuning noise is cleared for non-adaptive schemes.
	n = Spec{Workload: "fft", Scheme: "s10", TargetRate: 0.5, Band: 0.5}.Normalize()
	if n.TargetRate != 0 || n.Band != 0 {
		t.Fatalf("tuning fields not cleared: %+v", n)
	}
	// ... and filled with the paper's defaults for adaptive.
	n = Spec{Workload: "fft", Scheme: "adaptive"}.Normalize()
	if n.TargetRate == 0 || n.Band == 0 {
		t.Fatalf("adaptive defaults not filled: %+v", n)
	}
}

func TestValidate(t *testing.T) {
	good := Spec{Workload: "fft", Scheme: "s8", Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{},                                // no workload
		{Workload: "nope"},                // unknown workload
		{Workload: "fft", Scheme: "zz"},   // bad scheme
		{Workload: "fft", Scheme: "s0"},   // bound < 1
		{Workload: "fft", Rollback: true}, // rollback without ckpt
		{Workload: "fft", Rollback: true, CheckpointInterval: 100, Parallel: true}, // rollback on parallel host
		{Workload: "fft", Cores: -2}, // bad cores
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d unexpectedly validated: %+v", i, s)
		}
	}
}

func TestKeyCanonicalization(t *testing.T) {
	a := Spec{Workload: "FFT", Scheme: "", Seed: 1}
	b := Spec{Workload: "fft", Scheme: "cc", Scale: 1, Cores: 8, Seed: 1}
	if a.Key() != b.Key() {
		t.Fatalf("equivalent specs hash differently:\n%s\n%s", a.Key(), b.Key())
	}
	if len(a.Key()) != 64 || strings.ToLower(a.Key()) != a.Key() {
		t.Fatalf("key is not lowercase hex sha256: %q", a.Key())
	}
	// Every simulation-relevant field must change the key.
	base := Spec{Workload: "fft", Scheme: "s8", Seed: 1}
	variants := []Spec{
		{Workload: "lu", Scheme: "s8", Seed: 1},
		{Workload: "fft", Scheme: "s16", Seed: 1},
		{Workload: "fft", Scheme: "s8", Seed: 2},
		{Workload: "fft", Scheme: "s8", Seed: 1, Scale: 2},
		{Workload: "fft", Scheme: "s8", Seed: 1, Cores: 4},
		{Workload: "fft", Scheme: "s8", Seed: 1, MaxInstructions: 100},
		{Workload: "fft", Scheme: "s8", Seed: 1, CheckpointInterval: 50},
		{Workload: "fft", Scheme: "s8", Seed: 1, Parallel: true},
		{Workload: "fft", Scheme: "s8", Seed: 1, MapViolationsOnly: true},
	}
	seen := map[string]int{base.Key(): -1}
	for i, v := range variants {
		k := v.Key()
		if j, dup := seen[k]; dup {
			t.Fatalf("variant %d collides with %d", i, j)
		}
		seen[k] = i
	}
	// Irrelevant tuning noise must NOT change the key.
	noisy := Spec{Workload: "fft", Scheme: "s8", Seed: 1, TargetRate: 0.9, Band: 0.9}
	if noisy.Key() != base.Key() {
		t.Fatalf("non-adaptive tuning fields leaked into the key")
	}
}

func TestConfigBuilds(t *testing.T) {
	cfg, err := Spec{Workload: "fft", Scheme: "q100", Seed: 3, Parallel: true}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workload != "fft" || cfg.Scheme.Name() != "Q100" || !cfg.Parallel || cfg.Seed != 3 {
		t.Fatalf("bad config: %+v", cfg)
	}
	// The built config must actually run.
	sim, err := slacksim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestScenarioSpecs(t *testing.T) {
	// Synth: nil config validates (defaults), bad config rejected, and a
	// synth spec's built Config actually runs and verifies.
	if err := (Spec{Workload: "synth"}).Validate(); err != nil {
		t.Fatalf("default synth spec rejected: %v", err)
	}
	if err := (Spec{Workload: "synth", Synth: &synth.Config{Pattern: "nope"}}).Validate(); err == nil {
		t.Fatal("bad synth pattern unexpectedly validated")
	}
	cfg, err := Spec{Workload: "synth", Cores: 4, Synth: &synth.Config{Ops: 8, Phases: 2}}.Config()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := slacksim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sim.Verify(); err != nil {
		t.Fatalf("synth run failed verification: %v", err)
	}

	// Trace: data is required, cores must match, the digest is filled in
	// during normalization, and corrupt data is rejected.
	if err := (Spec{Workload: "trace"}).Validate(); err == nil {
		t.Fatal("trace spec without data unexpectedly validated")
	}
	tr := Spec{Workload: "trace", Cores: 2, Trace: &TraceSpec{Data: goldenTraceData}}
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace spec rejected: %v", err)
	}
	if n := tr.Normalize(); n.Trace.Digest != memtrace.Digest(goldenTraceData) {
		t.Fatalf("normalize did not fill the trace digest: %q", n.Trace.Digest)
	}
	if err := (Spec{Workload: "trace", Cores: 8, Trace: &TraceSpec{Data: goldenTraceData}}).Validate(); err == nil {
		t.Fatal("core-count mismatch unexpectedly validated")
	}
	corrupt := append([]byte(nil), goldenTraceData...)
	corrupt[len(corrupt)-1] ^= 0xff
	if err := (Spec{Workload: "trace", Cores: 2, Trace: &TraceSpec{Data: corrupt}}).Validate(); err == nil {
		t.Fatal("corrupt trace unexpectedly validated")
	}

	// Sampling: defaults fill in, and the engine's constraints are
	// mirrored at spec level.
	n := Spec{Workload: "fft", SampleInterval: 5000}.Normalize()
	if n.SampleDetailEvery == 0 || n.SampleConfidence == 0 {
		t.Fatalf("sampling defaults not filled: %+v", n)
	}
	if err := (Spec{Workload: "fft", SampleInterval: 5000}).Validate(); err != nil {
		t.Fatalf("valid sampled spec rejected: %v", err)
	}
	for _, bad := range []Spec{
		{Workload: "fft", SampleInterval: 5000, Scheme: "s8"},
		{Workload: "fft", SampleInterval: 5000, Parallel: true},
		{Workload: "fft", SampleInterval: 5000, CheckpointInterval: 100},
		{Workload: "fft", SampleInterval: 5000, TrackIntervals: []int64{100}},
		{Workload: "fft", SampleConfidence: 0.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("bad sampled spec unexpectedly validated: %+v", bad)
		}
	}
}
