// Package spec defines the canonical run specification shared by every
// front end: the slacksim and sweep CLIs, the slacksimd HTTP service, and
// the Go client all parse, validate and normalize the same Spec, so a
// run means the same thing no matter how it was requested. A normalized
// Spec also has a stable content address (Key) used by the service's
// result cache to serve identical runs without re-simulating.
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"slacksim"
	"slacksim/internal/adaptive"
	"slacksim/internal/engine"
	"slacksim/internal/memtrace"
	"slacksim/internal/sampling"
	"slacksim/internal/synth"
	"slacksim/internal/violation"
	"slacksim/internal/workload"
)

// TraceSpec carries a recorded memory trace for the "trace" workload
// kind. Data is the encoded trace (internal/memtrace format; base64 in
// JSON); Digest is its hex SHA-256, filled during normalization. Key()
// hashes the digest only, so the content address of a replay spec stays
// small and two specs carrying the same trace bytes share a key.
type TraceSpec struct {
	Digest string `json:"digest,omitempty"`
	Data   []byte `json:"data,omitempty"`
}

// Spec is one fully-described simulation run. The zero value is not
// runnable; call Normalize to apply defaults and Validate before use.
// The json names are the service's request contract.
type Spec struct {
	// Workload names a built-in benchmark ("fft", "lu", "barnes", ...).
	Workload string `json:"workload"`
	// Scale multiplies the workload's input size (default 1).
	Scale int `json:"scale,omitempty"`
	// Cores is the number of target cores (default 8).
	Cores int `json:"cores,omitempty"`
	// Scheme is the slack scheme in CLI syntax: "cc", "s<N>", "su",
	// "q<N>", "p2p<N>", or "adaptive" (default "cc").
	Scheme string `json:"scheme,omitempty"`
	// TargetRate and Band tune the adaptive controller (ignored by other
	// schemes; zeroed during normalization so they never affect the Key).
	// A negative Band requests a zero-width band — an explicit zero would
	// be indistinguishable from "use the default" in JSON.
	TargetRate float64 `json:"target_rate,omitempty"`
	Band       float64 `json:"band,omitempty"`
	// AdaptivePeriod, AdaptiveInitialBound, AdaptiveMinBound and
	// AdaptiveMaxBound complete the adaptive controller configuration
	// (zero selects the paper's defaults; ignored by other schemes).
	AdaptivePeriod       int64 `json:"adaptive_period,omitempty"`
	AdaptiveInitialBound int64 `json:"adaptive_initial_bound,omitempty"`
	AdaptiveMinBound     int64 `json:"adaptive_min_bound,omitempty"`
	AdaptiveMaxBound     int64 `json:"adaptive_max_bound,omitempty"`
	// AdaptivePolicy selects the bound-adjustment policy: "aimd" (the
	// default) or "aiad" (the ablation alternative).
	AdaptivePolicy string `json:"adaptive_policy,omitempty"`
	// Seed drives the deterministic host's scheduling.
	Seed int64 `json:"seed,omitempty"`
	// MaxInstructions stops the run after N total committed instructions.
	MaxInstructions uint64 `json:"max_instructions,omitempty"`
	// CheckpointInterval takes a global checkpoint every N cycles.
	CheckpointInterval int64 `json:"checkpoint_interval,omitempty"`
	// Rollback enables speculative slack simulation (deterministic host).
	Rollback bool `json:"rollback,omitempty"`
	// MapViolationsOnly restricts adaptation/rollback to map violations.
	MapViolationsOnly bool `json:"map_only,omitempty"`
	// Parallel selects the goroutine-parallel host.
	Parallel bool `json:"parallel,omitempty"`
	// MeasureViolations charges violation-detection overhead to the host
	// cost model even for schemes that do not require it (the Figure 3
	// instrumented bounded runs). Implied by adaptive, rollback, and
	// interval tracking.
	MeasureViolations bool `json:"measure_violations,omitempty"`
	// TrackIntervals enables per-interval violation statistics for the
	// given interval lengths (the paper's Tables 3 and 4).
	TrackIntervals []int64 `json:"track_intervals,omitempty"`
	// Synth parameterizes the synthetic workload generator; meaningful
	// only when Workload is "synth" (nil there selects the defaults, and
	// normalization clears it everywhere else).
	Synth *synth.Config `json:"synth,omitempty"`
	// Trace carries the recorded memory trace replayed when Workload is
	// "trace"; required for that workload kind, cleared otherwise.
	Trace *TraceSpec `json:"trace,omitempty"`
	// SampleInterval, SampleDetailEvery and SampleConfidence enable
	// interval sampling when any is nonzero: detailed (cycle-accurate)
	// intervals interleaved with fast-forwarded ones, reporting estimated
	// cycles with a confidence bound. Zeros within an enabled plan take
	// the sampling defaults. Requires the cc scheme on the deterministic
	// host.
	SampleInterval    uint64  `json:"sample_interval,omitempty"`
	SampleDetailEvery int     `json:"sample_detail_every,omitempty"`
	SampleConfidence  float64 `json:"sample_confidence,omitempty"`
}

// Normalize returns the spec with defaults applied and identity-free
// noise removed: names are trimmed and lower-cased, zero Scale/Cores
// become their defaults, and adaptive tuning fields are cleared for
// non-adaptive schemes. Two specs describing the same run normalize to
// the same value, which is what Key hashes.
func (s Spec) Normalize() Spec {
	s.Workload = strings.ToLower(strings.TrimSpace(s.Workload))
	s.Scheme = strings.ToLower(strings.TrimSpace(s.Scheme))
	if s.Scheme == "" {
		s.Scheme = "cc"
	}
	if s.Scale < 1 {
		s.Scale = 1
	}
	if s.Cores == 0 {
		s.Cores = 8
	}
	if s.Scheme != "adaptive" {
		s.TargetRate, s.Band = 0, 0
		s.AdaptivePeriod, s.AdaptiveInitialBound = 0, 0
		s.AdaptiveMinBound, s.AdaptiveMaxBound = 0, 0
		s.AdaptivePolicy = ""
	} else {
		// Fill the paper's base configuration in so "adaptive" and an
		// explicitly-spelled default adapt to the same cache key.
		def := slacksim.Schemes.AdaptiveDefault().Adaptive
		if s.TargetRate == 0 {
			s.TargetRate = def.TargetRate
		}
		if s.Band == 0 {
			s.Band = def.Band
		} else if s.Band < 0 {
			s.Band = -1 // canonical "explicitly zero" band
		}
		if s.AdaptivePeriod == 0 {
			s.AdaptivePeriod = def.Period
		}
		if s.AdaptiveInitialBound == 0 {
			s.AdaptiveInitialBound = def.InitialBound
		}
		if s.AdaptiveMinBound == 0 {
			s.AdaptiveMinBound = def.MinBound
		}
		if s.AdaptiveMaxBound == 0 {
			s.AdaptiveMaxBound = def.MaxBound
		}
		s.AdaptivePolicy = strings.ToLower(strings.TrimSpace(s.AdaptivePolicy))
		if s.AdaptivePolicy == "" {
			s.AdaptivePolicy = "aimd"
		}
	}
	if s.Scheme == "adaptive" || s.Rollback || len(s.TrackIntervals) > 0 {
		// The engine measures violations on these paths regardless, so
		// fold the implication into the canonical form (and the Key).
		s.MeasureViolations = true
	}
	if len(s.TrackIntervals) == 0 {
		s.TrackIntervals = nil
	}
	if s.Workload == "synth" {
		var c synth.Config
		if s.Synth != nil {
			c = *s.Synth
		}
		s.Synth = c.Normalize()
	} else {
		s.Synth = nil
	}
	if s.Workload == "trace" {
		if s.Trace != nil && len(s.Trace.Data) > 0 {
			t := *s.Trace
			t.Digest = memtrace.Digest(t.Data)
			s.Trace = &t
		}
	} else {
		s.Trace = nil
	}
	if p := s.samplingPlan(); p != nil {
		s.SampleInterval = p.IntervalInsts
		s.SampleDetailEvery = p.DetailEvery
		s.SampleConfidence = p.Confidence
	}
	return s
}

// samplingPlan returns the normalized sampling plan the spec's sampling
// fields describe, or nil when sampling is disabled (all three zero).
func (s Spec) samplingPlan() *sampling.Plan {
	if s.SampleInterval == 0 && s.SampleDetailEvery == 0 && s.SampleConfidence == 0 {
		return nil
	}
	p := sampling.Plan{
		IntervalInsts: s.SampleInterval,
		DetailEvery:   s.SampleDetailEvery,
		Confidence:    s.SampleConfidence,
	}
	return p.Normalize()
}

// Validate reports whether the normalized spec describes a runnable
// simulation. It checks the workload name, scheme syntax and parameters,
// and host/feature combinations, mirroring what the engine would reject
// at run time so front ends fail fast with a clear message.
func (s Spec) Validate() error {
	s = s.Normalize()
	switch s.Workload {
	case "":
		return fmt.Errorf("spec: workload is required")
	case "synth":
		if err := s.Synth.Validate(); err != nil {
			return err
		}
	case "trace":
		if s.Trace == nil || len(s.Trace.Data) == 0 {
			return fmt.Errorf("spec: workload \"trace\" requires trace data")
		}
		tr, err := memtrace.Decode(s.Trace.Data)
		if err != nil {
			return err
		}
		if tr.Cores != s.Cores {
			return fmt.Errorf("spec: trace records %d cores but spec asks for %d", tr.Cores, s.Cores)
		}
	default:
		if _, err := workload.ByName(s.Workload, s.Scale); err != nil {
			return err
		}
	}
	if s.Cores < 1 {
		return fmt.Errorf("spec: cores must be positive, got %d", s.Cores)
	}
	sch, err := s.scheme()
	if err != nil {
		return err
	}
	if err := sch.Validate(); err != nil {
		return err
	}
	switch s.AdaptivePolicy {
	case "", "aimd", "aiad":
	default:
		return fmt.Errorf("spec: unknown adaptive policy %q (want aimd or aiad)", s.AdaptivePolicy)
	}
	if s.Rollback && s.CheckpointInterval <= 0 {
		return fmt.Errorf("spec: rollback requires a checkpoint interval")
	}
	if s.Rollback && s.Parallel {
		return fmt.Errorf("spec: rollback is only supported on the deterministic host")
	}
	if s.CheckpointInterval < 0 {
		return fmt.Errorf("spec: negative checkpoint interval")
	}
	for _, iv := range s.TrackIntervals {
		if iv <= 0 {
			return fmt.Errorf("spec: track intervals must be positive, got %d", iv)
		}
	}
	if p := s.samplingPlan(); p != nil {
		if err := p.Validate(); err != nil {
			return err
		}
		// Mirror the engine's sampling constraints so front ends fail
		// fast: detailed intervals are the cycle-accurate reference.
		if s.Scheme != "cc" {
			return fmt.Errorf("spec: sampling requires the cc scheme, got %q", s.Scheme)
		}
		if s.Parallel {
			return fmt.Errorf("spec: sampling is only supported on the deterministic host")
		}
		if s.CheckpointInterval > 0 || s.Rollback {
			return fmt.Errorf("spec: sampling cannot be combined with checkpointing")
		}
		if len(s.TrackIntervals) > 0 {
			return fmt.Errorf("spec: sampling cannot be combined with interval tracking")
		}
	}
	return nil
}

// Key returns the spec's content address: the hex SHA-256 of a canonical
// fixed-order rendering of the normalized spec. Identical runs — however
// their specs were spelled — share a key; any field that changes the
// simulation changes the key. The segment schema is append-only (keys
// name results already persisted in the durable store) and is pinned in
// testdata/keyschema.golden, enforced by the keyappend analyzer.
//
//slacksim:appendonly testdata/keyschema.golden
func (s Spec) Key() string {
	n := s.Normalize()
	canon := fmt.Sprintf(
		"v2|workload=%s|scale=%d|cores=%d|scheme=%s|target=%g|band=%g|seed=%d|maxinst=%d|ckpt=%d|rollback=%t|maponly=%t|parallel=%t|measure=%t|track=%v|aperiod=%d|ainit=%d|amin=%d|amax=%d|apolicy=%s",
		n.Workload, n.Scale, n.Cores, n.Scheme, n.TargetRate, n.Band,
		n.Seed, n.MaxInstructions, n.CheckpointInterval,
		n.Rollback, n.MapViolationsOnly, n.Parallel,
		n.MeasureViolations, n.TrackIntervals,
		n.AdaptivePeriod, n.AdaptiveInitialBound, n.AdaptiveMinBound,
		n.AdaptiveMaxBound, n.AdaptivePolicy)
	// Scenario segments are appended only when present so every
	// pre-scenario spec keeps the content address it has always had —
	// those keys name results already persisted in the durable store.
	if n.Synth != nil {
		canon += "|synth=" + n.Synth.Canonical()
	}
	if n.Trace != nil {
		canon += "|trace=" + n.Trace.Digest
	}
	if p := n.samplingPlan(); p != nil {
		canon += "|sample=" + p.Canonical()
	}
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// scheme builds the fully-parameterized scheme a normalized spec
// describes, including the controller fields ParseScheme's CLI surface
// does not carry.
func (s Spec) scheme() (slacksim.Scheme, error) {
	sch, err := ParseScheme(s.Scheme, s.TargetRate, s.Band)
	if err != nil {
		return slacksim.Scheme{}, err
	}
	if sch.Kind == engine.Adaptive {
		if s.AdaptivePeriod > 0 {
			sch.Adaptive.Period = s.AdaptivePeriod
		}
		if s.AdaptiveInitialBound > 0 {
			sch.Adaptive.InitialBound = s.AdaptiveInitialBound
		}
		if s.AdaptiveMinBound > 0 {
			sch.Adaptive.MinBound = s.AdaptiveMinBound
		}
		if s.AdaptiveMaxBound > 0 {
			sch.Adaptive.MaxBound = s.AdaptiveMaxBound
		}
	}
	return sch, nil
}

// Config builds the slacksim.Config for this spec. Front-end-only knobs
// (tracing, progress hooks, interrupts) are not part of a Spec; callers
// set them on the returned Config.
func (s Spec) Config() (slacksim.Config, error) {
	n := s.Normalize()
	if err := n.Validate(); err != nil {
		return slacksim.Config{}, err
	}
	sch, err := n.scheme()
	if err != nil {
		return slacksim.Config{}, err
	}
	cfg := slacksim.Config{
		Workload:           n.Workload,
		Scale:              n.Scale,
		Cores:              n.Cores,
		Scheme:             sch,
		Seed:               n.Seed,
		MaxInstructions:    n.MaxInstructions,
		CheckpointInterval: n.CheckpointInterval,
		Rollback:           n.Rollback,
		MapViolationsOnly:  n.MapViolationsOnly,
		Parallel:           n.Parallel,
		MeasureViolations:  n.MeasureViolations,
		TrackIntervals:     n.TrackIntervals,
	}
	if n.AdaptivePolicy == "aiad" {
		cfg.AdaptivePolicy = slacksim.AIAD
	}
	cfg.Synth = n.Synth
	if n.Trace != nil {
		cfg.TraceData = n.Trace.Data
	}
	cfg.Sampling = n.samplingPlan()
	return cfg, nil
}

// FromRun converts one in-process experiment cell — a workload name,
// input scale, core count and engine run configuration — into the
// canonical Spec describing the identical run, so grid runners can hand
// cells to remote workers and get byte-identical results back. Run
// configurations a Spec cannot express (custom host pacing, tracers,
// selective violation sets beyond map-only, asymmetric Lax-P2P) are
// reported as errors rather than silently approximated.
func FromRun(workload string, scale, cores int, rc engine.RunConfig) (Spec, error) {
	sp := Spec{
		Workload:           workload,
		Scale:              scale,
		Cores:              cores,
		Seed:               rc.Seed,
		MaxInstructions:    rc.MaxInstructions,
		CheckpointInterval: rc.CheckpointInterval,
		Rollback:           rc.Rollback,
		MeasureViolations:  rc.MeasureViolations,
		TrackIntervals:     append([]int64(nil), rc.TrackIntervals...),
	}
	switch sch := rc.Scheme; sch.Kind {
	case engine.CC:
		sp.Scheme = "cc"
	case engine.Bounded:
		sp.Scheme = fmt.Sprintf("s%d", sch.Bound)
	case engine.Unbounded:
		sp.Scheme = "su"
	case engine.Quantum:
		sp.Scheme = fmt.Sprintf("q%d", sch.Quantum)
	case engine.LaxP2P:
		if sch.SyncPeriod != sch.P2PMaxAhead {
			return Spec{}, fmt.Errorf("spec: lax-p2p with period %d != max-ahead %d has no spec form",
				sch.SyncPeriod, sch.P2PMaxAhead)
		}
		sp.Scheme = fmt.Sprintf("p2p%d", sch.SyncPeriod)
	case engine.Adaptive:
		a := sch.Adaptive
		sp.Scheme = "adaptive"
		sp.TargetRate = a.TargetRate
		sp.Band = a.Band
		if a.Band == 0 {
			sp.Band = -1
		}
		sp.AdaptivePeriod = a.Period
		sp.AdaptiveInitialBound = a.InitialBound
		sp.AdaptiveMinBound = a.MinBound
		sp.AdaptiveMaxBound = a.MaxBound
	default:
		return Spec{}, fmt.Errorf("spec: scheme %v has no spec form", sch.Kind)
	}
	if rc.AdaptivePolicy == adaptive.AIAD {
		sp.AdaptivePolicy = "aiad"
	}
	switch {
	case len(rc.Selected) == 0:
	case len(rc.Selected) == 1 && rc.Selected[0] == violation.Map:
		sp.MapViolationsOnly = true
	default:
		return Spec{}, fmt.Errorf("spec: violation selection %v has no spec form", rc.Selected)
	}
	if rc.MaxCycles != 0 || rc.MaxChunk != 0 || rc.HostDriftCap != 0 ||
		rc.DeepCheckpoint || rc.Tracer != nil || rc.MemRecorder != nil {
		return Spec{}, fmt.Errorf("spec: run config uses host knobs a spec cannot carry")
	}
	if rc.Sampling != nil {
		sp.SampleInterval = rc.Sampling.IntervalInsts
		sp.SampleDetailEvery = rc.Sampling.DetailEvery
		sp.SampleConfidence = rc.Sampling.Confidence
	}
	sp = sp.Normalize()
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// ParseScheme parses the CLI scheme syntax shared by every front end:
// "cc", "s<N>" (bounded), "su"/"unbounded", "q<N>" (quantum), "p2p<N>"
// (Lax-P2P with period = max-ahead = N), or "adaptive". target and band,
// when positive, override the adaptive controller's defaults; a negative
// band requests a zero-width band.
func ParseScheme(s string, target, band float64) (slacksim.Scheme, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch {
	case s == "cc":
		return slacksim.Schemes.CC(), nil
	case s == "su" || s == "unbounded":
		return slacksim.Schemes.Unbounded(), nil
	case s == "adaptive":
		cfg := slacksim.Schemes.AdaptiveDefault().Adaptive
		if target > 0 {
			cfg.TargetRate = target
		}
		if band > 0 {
			cfg.Band = band
		} else if band < 0 {
			cfg.Band = 0
		}
		return slacksim.Schemes.Adaptive(cfg), nil
	case strings.HasPrefix(s, "p2p"):
		period, err := strconv.ParseInt(s[3:], 10, 64)
		if err != nil {
			return slacksim.Scheme{}, fmt.Errorf("spec: bad lax-p2p scheme %q", s)
		}
		return slacksim.Schemes.LaxP2P(period, period), nil
	case strings.HasPrefix(s, "s"):
		b, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			return slacksim.Scheme{}, fmt.Errorf("spec: bad bounded scheme %q", s)
		}
		return slacksim.Schemes.Bounded(b), nil
	case strings.HasPrefix(s, "q"):
		q, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			return slacksim.Scheme{}, fmt.Errorf("spec: bad quantum scheme %q", s)
		}
		return slacksim.Schemes.Quantum(q), nil
	}
	return slacksim.Scheme{}, fmt.Errorf("spec: unknown scheme %q (want cc, s<N>, su, q<N>, p2p<N>, adaptive)", s)
}
