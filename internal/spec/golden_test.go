package spec

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slacksim/internal/core"
	"slacksim/internal/memtrace"
	"slacksim/internal/synth"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenSpecs is a canonical grid covering every field that feeds Key():
// each entry exists to pin one axis of the content address. If Key() (or
// Normalize(), which it hashes) ever changes for any of these, the golden
// comparison fails — which is the point: these digests address results in
// the durable store and the journal, so a silent change would orphan
// every persisted result and re-simulate the world.
var goldenSpecs = []struct {
	name string
	spec Spec
}{
	{"zero-defaults", Spec{Workload: "fft"}},
	{"explicit-defaults", Spec{Workload: "FFT ", Scheme: "CC", Scale: 1, Cores: 8}},
	{"bounded", Spec{Workload: "fft", Scheme: "s8"}},
	{"bounded-other-bound", Spec{Workload: "fft", Scheme: "s64"}},
	{"unbounded", Spec{Workload: "lu", Scheme: "su"}},
	{"quantum", Spec{Workload: "water", Scheme: "q1000"}},
	{"laxp2p", Spec{Workload: "barnes", Scheme: "p2p100"}},
	{"adaptive-default", Spec{Workload: "fft", Scheme: "adaptive"}},
	{"adaptive-spelled-default", Spec{
		Workload: "fft", Scheme: "adaptive",
		TargetRate: 0.0001, Band: 0.05,
		AdaptivePeriod: 1024, AdaptiveInitialBound: 4,
		AdaptiveMinBound: 1, AdaptiveMaxBound: 512,
		AdaptivePolicy: "aimd",
	}},
	{"adaptive-tuned", Spec{Workload: "fft", Scheme: "adaptive", TargetRate: 0.001, Band: 0.1}},
	{"adaptive-zero-band", Spec{Workload: "fft", Scheme: "adaptive", Band: -1}},
	{"adaptive-aiad", Spec{Workload: "fft", Scheme: "adaptive", AdaptivePolicy: "aiad"}},
	{"adaptive-junk-cleared", Spec{Workload: "fft", Scheme: "s8", TargetRate: 0.5, Band: 0.5, AdaptivePolicy: "aiad"}},
	{"seeded", Spec{Workload: "fft", Scheme: "s8", Seed: 42}},
	{"scaled", Spec{Workload: "fft", Scheme: "s8", Scale: 4}},
	{"cores", Spec{Workload: "fft", Scheme: "s8", Cores: 16}},
	{"max-instructions", Spec{Workload: "fft", Scheme: "s8", MaxInstructions: 100000}},
	{"checkpointed", Spec{Workload: "fft", Scheme: "s8", CheckpointInterval: 1000}},
	{"rollback", Spec{Workload: "fft", Scheme: "s8", CheckpointInterval: 1000, Rollback: true}},
	{"map-only", Spec{Workload: "fft", Scheme: "s8", CheckpointInterval: 1000, Rollback: true, MapViolationsOnly: true}},
	{"parallel", Spec{Workload: "fft", Scheme: "s8", Parallel: true}},
	{"measured", Spec{Workload: "fft", Scheme: "s8", MeasureViolations: true}},
	{"tracked", Spec{Workload: "fft", Scheme: "s8", TrackIntervals: []int64{1000, 10000}}},
	{"kitchen-sink", Spec{
		Workload: "water", Scheme: "adaptive", Scale: 2, Cores: 4,
		TargetRate: 0.0005, Band: 0.02, AdaptivePeriod: 5000,
		AdaptiveInitialBound: 20, AdaptiveMinBound: 2, AdaptiveMaxBound: 500,
		AdaptivePolicy: "aiad", Seed: 7, MaxInstructions: 1 << 20,
		CheckpointInterval: 2000, Rollback: true, MapViolationsOnly: true,
		TrackIntervals: []int64{500},
	}},
	{"synth-default", Spec{Workload: "synth"}},
	{"synth-tuned", Spec{Workload: "synth", Synth: &synth.Config{
		Seed: 7, Pattern: synth.PatternZipf, Ops: 128, ZipfAlpha: 0.8,
	}}},
	{"synth-prodcons", Spec{Workload: "synth", Scheme: "s8", Cores: 4, Synth: &synth.Config{
		Pattern: synth.PatternProdCons, RingSlots: 2,
	}}},
	{"synth-junk-cleared", Spec{Workload: "fft", Scheme: "s8", Synth: &synth.Config{Seed: 9}}},
	{"trace-replay", Spec{Workload: "trace", Cores: 2, Trace: &TraceSpec{Data: goldenTraceData}}},
	{"sampled-default", Spec{Workload: "fft", SampleInterval: 20000}},
	{"sampled-tuned", Spec{
		Workload: "lu", SampleInterval: 5000, SampleDetailEvery: 4, SampleConfidence: 0.99,
	}},
}

// goldenTraceData is a tiny deterministic trace: memtrace.Encode is
// canonical, so these bytes (and the digest Key() embeds) are stable.
var goldenTraceData = func() []byte {
	data, err := memtrace.Encode(&memtrace.Trace{
		Version:  1,
		Workload: "golden",
		Cores:    2,
		Events: [][]Event{
			{{Op: core.OpLoad, Addr: 0x0100_0000}, {Op: core.OpHalt}},
			{{Op: core.OpStore, Addr: 0x0100_0040, Val: 7}, {Op: core.OpHalt}},
		},
	})
	if err != nil {
		panic(err)
	}
	return data
}()

type Event = memtrace.Event

// TestGoldenSpecDigests pins the content address of a canonical spec grid
// against testdata/spec_keys.golden. These keys name results on disk (the
// durable store's segments, the journal's job records, snapshot headers),
// so changing Key() is a persistent-format break: if this test fails, the
// change either needs a format-version bump plus a store migration story,
// or it is a bug. Regenerate deliberately with `go test -run Golden -update`.
func TestGoldenSpecDigests(t *testing.T) {
	var b strings.Builder
	for _, g := range goldenSpecs {
		fmt.Fprintf(&b, "%s %s\n", g.spec.Key(), g.name)
	}
	got := b.String()

	path := filepath.Join("testdata", "spec_keys.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update): %v", err)
	}
	if got == string(want) {
		return
	}
	// Diff line-by-line so the failure names the drifted axis.
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	if len(gotLines) != len(wantLines) {
		t.Fatalf("golden grid has %d entries, file has %d; spec digests drifted:\n--- got ---\n%s--- want ---\n%s",
			len(gotLines)-1, len(wantLines)-1, got, want)
	}
	for i := range gotLines {
		if gotLines[i] != wantLines[i] {
			t.Errorf("spec digest drifted:\n  got  %s\n  want %s\n"+
				"Key() is the durable store's content address; changing it orphans persisted results.",
				gotLines[i], wantLines[i])
		}
	}
}

// TestGoldenGridDistinct: every entry in the golden grid hashes to a
// distinct key — each pinned axis really changes the content address.
func TestGoldenGridDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, g := range goldenSpecs {
		k := g.spec.Key()
		if prev, dup := seen[k]; dup {
			// The explicitly-spelled defaults intentionally collide with
			// their shorthand forms; everything else must be distinct.
			if aliased(g.name) || aliased(prev) {
				continue
			}
			t.Errorf("%s and %s share key %s", prev, g.name, k)
		}
		seen[k] = g.name
	}
}

func aliased(name string) bool {
	switch name {
	case "explicit-defaults", "adaptive-spelled-default", "adaptive-junk-cleared",
		"synth-junk-cleared":
		return true
	}
	return false
}
