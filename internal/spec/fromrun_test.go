package spec

import (
	"reflect"
	"strings"
	"testing"

	"slacksim/internal/adaptive"
	"slacksim/internal/engine"
	"slacksim/internal/violation"
)

// TestFromRunRoundTrip: a run config converted to a Spec must build the
// same slacksim.Config a direct run would use — the lossless-round-trip
// property the fleet driver's byte-identical guarantee rests on.
func TestFromRunRoundTrip(t *testing.T) {
	ad := adaptive.DefaultConfig()
	ad.Period = 512
	zeroBand := ad
	zeroBand.Band = 0
	custom := adaptive.Config{
		TargetRate: 0.002, Band: 0.25, InitialBound: 64,
		MinBound: 2, MaxBound: 256, Period: 128,
	}
	cases := []struct {
		name string
		rc   engine.RunConfig
	}{
		{"cc", engine.RunConfig{Scheme: engine.CycleByCycle()}},
		{"bounded", engine.RunConfig{Scheme: engine.BoundedSlack(8), MeasureViolations: true}},
		{"unbounded", engine.RunConfig{Scheme: engine.UnboundedSlack()}},
		{"quantum", engine.RunConfig{Scheme: engine.QuantumScheme(100)}},
		{"p2p", engine.RunConfig{Scheme: engine.LaxP2PScheme(50, 50)}},
		{"adaptive", engine.RunConfig{Scheme: engine.AdaptiveSlack(ad)}},
		{"adaptive band 0", engine.RunConfig{Scheme: engine.AdaptiveSlack(zeroBand)}},
		{"adaptive custom", engine.RunConfig{Scheme: engine.AdaptiveSlack(custom)}},
		{"adaptive aiad", engine.RunConfig{Scheme: engine.AdaptiveSlack(ad), AdaptivePolicy: adaptive.AIAD}},
		{"tracked intervals", engine.RunConfig{Scheme: engine.AdaptiveSlack(ad), TrackIntervals: []int64{250, 1000}}},
		{"rollback", engine.RunConfig{
			Scheme: engine.BoundedSlack(32), Rollback: true, CheckpointInterval: 500,
		}},
		{"rollback map-only", engine.RunConfig{
			Scheme: engine.BoundedSlack(32), Rollback: true, CheckpointInterval: 500,
			Selected: []violation.Type{violation.Map},
		}},
		{"checkpointing", engine.RunConfig{Scheme: engine.AdaptiveSlack(ad), CheckpointInterval: 1000}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rc := tc.rc
			rc.Seed = 7
			sp, err := FromRun("water", 1, 4, rc)
			if err != nil {
				t.Fatalf("FromRun: %v", err)
			}
			cfg, err := sp.Config()
			if err != nil {
				t.Fatalf("Config: %v", err)
			}
			if cfg.Workload != "water" || cfg.Scale != 1 || cfg.Cores != 4 || cfg.Seed != 7 {
				t.Fatalf("identity fields: %+v", cfg)
			}
			if cfg.Scheme.Kind != rc.Scheme.Kind {
				t.Fatalf("scheme kind %v != %v", cfg.Scheme.Kind, rc.Scheme.Kind)
			}
			if rc.Scheme.Kind == engine.Adaptive && !reflect.DeepEqual(cfg.Scheme.Adaptive, rc.Scheme.Adaptive) {
				t.Fatalf("adaptive config %+v != %+v", cfg.Scheme.Adaptive, rc.Scheme.Adaptive)
			}
			if cfg.Scheme.Bound != rc.Scheme.Bound || cfg.Scheme.Quantum != rc.Scheme.Quantum ||
				cfg.Scheme.SyncPeriod != rc.Scheme.SyncPeriod || cfg.Scheme.P2PMaxAhead != rc.Scheme.P2PMaxAhead {
				t.Fatalf("scheme params %+v != %+v", cfg.Scheme, rc.Scheme)
			}
			if cfg.Rollback != rc.Rollback || cfg.CheckpointInterval != rc.CheckpointInterval {
				t.Fatalf("rollback/checkpoint mismatch: %+v vs %+v", cfg, rc)
			}
			if cfg.AdaptivePolicy != rc.AdaptivePolicy {
				t.Fatalf("policy %v != %v", cfg.AdaptivePolicy, rc.AdaptivePolicy)
			}
			wantMapOnly := len(rc.Selected) == 1
			if cfg.MapViolationsOnly != wantMapOnly {
				t.Fatalf("map-only = %v, want %v", cfg.MapViolationsOnly, wantMapOnly)
			}
			if !reflect.DeepEqual(cfg.TrackIntervals, rc.TrackIntervals) {
				t.Fatalf("track intervals %v != %v", cfg.TrackIntervals, rc.TrackIntervals)
			}
		})
	}
}

// TestFromRunBandZeroDistinctFromDefault: the explicit zero-width band
// and the default band must produce different cache keys — Figure 4's
// band-0 series depends on them not aliasing.
func TestFromRunBandZeroDistinctFromDefault(t *testing.T) {
	def := adaptive.DefaultConfig()
	zero := def
	zero.Band = 0
	spDef, err := FromRun("fft", 1, 4, engine.RunConfig{Scheme: engine.AdaptiveSlack(def), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	spZero, err := FromRun("fft", 1, 4, engine.RunConfig{Scheme: engine.AdaptiveSlack(zero), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if spDef.Key() == spZero.Key() {
		t.Fatal("band-0 run aliases the default-band run's cache key")
	}
	cfg, err := spZero.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme.Adaptive.Band != 0 {
		t.Fatalf("band-0 spec built band %v", cfg.Scheme.Adaptive.Band)
	}
}

// TestFromRunRejectsInexpressible: host knobs a Spec cannot carry must
// error loudly instead of silently running something else remotely.
func TestFromRunRejectsInexpressible(t *testing.T) {
	cases := []struct {
		name string
		rc   engine.RunConfig
		want string
	}{
		{"max cycles", engine.RunConfig{Scheme: engine.CycleByCycle(), MaxCycles: 100}, "host knobs"},
		{"asymmetric p2p", engine.RunConfig{Scheme: engine.LaxP2PScheme(50, 100)}, "no spec form"},
		{"bus-only selection", engine.RunConfig{
			Scheme: engine.CycleByCycle(), Selected: []violation.Type{violation.Bus},
		}, "no spec form"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FromRun("fft", 1, 4, tc.rc)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}
