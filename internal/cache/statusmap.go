package cache

import (
	"slices"

	"slacksim/internal/arena"
	"slacksim/internal/coherence"
)

// StatusMap is the simulation manager's global record of which L1 caches
// hold each line and in what MESI state. It is the "cache status map" of
// the paper: the simulated-system state whose out-of-order updates are
// counted as map violations.
//
// Every entry carries a monitoring timestamp — the largest timestamp of
// any operation applied to it so far. Apply compares an incoming
// operation's timestamp against it and reports a violation when the
// operation arrives out of simulated-time order, exactly the detection
// mechanism of the paper's Section 3.
type StatusMap struct {
	numCores int
	lines    map[uint64]*mapEntry

	// Entries and their per-core state vectors come out of slab arenas:
	// runtime entry creation is pointer-bump cheap, deleted entries are
	// recycled through the slab free lists, and a pooled machine's Reset
	// reclaims everything wholesale without freeing the blocks.
	entries *arena.Slab[mapEntry]
	states  *arena.Slices[coherence.State]

	// Incremental-checkpoint support: when tracking is on, every line
	// touched by Apply since the last SyncSnapshot/RestoreDirty is flagged
	// dirty and listed once in dirtyList, so a checkpoint copies only the
	// touched entries and a rollback restores only the diverged ones.
	track     bool
	dirtyList []uint64
}

type mapEntry struct {
	states    []coherence.State
	monitorTS int64
	dirty     bool
}

// NewStatusMap returns an empty map for a machine with numCores L1s.
func NewStatusMap(numCores int) *StatusMap {
	return &StatusMap{
		numCores: numCores,
		lines:    make(map[uint64]*mapEntry),
		entries:  arena.NewSlab[mapEntry](256),
		states:   arena.NewSlices[coherence.State](numCores, 256),
	}
}

// newEntry carves a fresh entry (with its state vector) from the arenas.
//
//slacksim:hotpath
//slacksim:pooled
func (m *StatusMap) newEntry() *mapEntry {
	e := m.entries.Get()
	e.states = m.states.Get()
	return e
}

// freeEntry recycles a deleted entry and its state vector.
//
//slacksim:hotpath
func (m *StatusMap) freeEntry(e *mapEntry) {
	m.states.Put(e.states)
	m.entries.Put(e)
}

// NumCores returns the number of tracked caches.
func (m *StatusMap) NumCores() int { return m.numCores }

// entry returns the (pool-owned) map entry for lineAddr, carving a new
// one on first touch.
//
//slacksim:hotpath
//slacksim:pooled
func (m *StatusMap) entry(lineAddr uint64) *mapEntry {
	e := m.lines[lineAddr]
	if e == nil {
		e = m.newEntry()
		e.monitorTS = -1
		m.lines[lineAddr] = e
	}
	return e
}

// State returns core's recorded state for lineAddr.
func (m *StatusMap) State(lineAddr uint64, core int) coherence.State {
	if e := m.lines[lineAddr]; e != nil {
		return e.states[core]
	}
	return coherence.Invalid
}

// SharersOtherThan reports whether any cache except core holds the line.
func (m *StatusMap) SharersOtherThan(lineAddr uint64, core int) bool {
	e := m.lines[lineAddr]
	if e == nil {
		return false
	}
	for i, s := range e.states {
		if i != core && s.Valid() {
			return true
		}
	}
	return false
}

// OwnerOtherThan returns the core holding the line in M or E (the cache
// that must supply or flush data), or -1.
func (m *StatusMap) OwnerOtherThan(lineAddr uint64, core int) int {
	e := m.lines[lineAddr]
	if e == nil {
		return -1
	}
	for i, s := range e.states {
		if i != core && s.CanWrite() {
			return i
		}
	}
	return -1
}

// Holders returns, in ascending core order, every core other than the
// requester holding a valid copy.
func (m *StatusMap) Holders(lineAddr uint64, except int) []int {
	return m.HoldersInto(nil, lineAddr, except)
}

// HoldersInto appends the holders to buf (reusing its backing array) and
// returns it; the manager's hot path passes a per-uncore scratch slice so
// servicing a request allocates nothing.
//
//slacksim:hotpath
func (m *StatusMap) HoldersInto(buf []int, lineAddr uint64, except int) []int {
	e := m.lines[lineAddr]
	if e == nil {
		return buf
	}
	for i, s := range e.states {
		if i != except && s.Valid() {
			buf = append(buf, i)
		}
	}
	return buf
}

// Apply records a state transition for (lineAddr, core) performed by an
// operation carrying timestamp ts, updating the entry's monitoring
// variable. It returns true when the operation is a map violation: its
// timestamp is retrograde (smaller than the largest already applied to
// this entry) *and* the transition involves ownership (the old or new
// state is Modified), so the reordering changes which write the global
// state reflects. Retrograde reorderings of read-sharing transitions
// commute and are not state inconsistencies — this is why the paper finds
// map violations an order of magnitude rarer than bus violations and
// negligible at small slack: conflicting ownership transfers of one line
// are separated by full coherence round trips, while the bus serializes
// every request in the machine.
//
//slacksim:hotpath
func (m *StatusMap) Apply(lineAddr uint64, core int, s coherence.State, ts int64) (violation bool) {
	e := m.entry(lineAddr)
	if m.track && !e.dirty {
		e.dirty = true
		m.dirtyList = append(m.dirtyList, lineAddr) //lint:allow hotpathalloc -- dirty-list growth is bounded by tracked lines and reused via clearDirty
	}
	old := e.states[core]
	if ts < e.monitorTS {
		violation = old == coherence.Modified || s == coherence.Modified
	} else {
		e.monitorTS = ts
	}
	e.states[core] = s
	return violation
}

// MonitorTS returns the entry's monitoring timestamp (-1 when untouched).
func (m *StatusMap) MonitorTS(lineAddr uint64) int64 {
	if e := m.lines[lineAddr]; e != nil {
		return e.monitorTS
	}
	return -1
}

// CheckLegal verifies the MESI compatibility matrix for every line and
// returns the line addresses (sorted) that violate it. Used by protocol
// invariant tests; an eagerly-serviced slack simulation may transiently
// break it — that is precisely the simulated-system-state inaccuracy the
// paper studies — so production runs do not call this on the hot path.
func (m *StatusMap) CheckLegal() []uint64 {
	var bad []uint64
	for la, e := range m.lines {
		ok := true
	outer:
		for i := 0; i < len(e.states); i++ {
			for j := i + 1; j < len(e.states); j++ {
				if !coherence.LegalPair(e.states[i], e.states[j]) {
					ok = false
					break outer
				}
			}
		}
		if !ok {
			bad = append(bad, la)
		}
	}
	slices.Sort(bad)
	return bad
}

// Lines returns the number of tracked lines.
func (m *StatusMap) Lines() int { return len(m.lines) }

// Snapshot deep-copies the map.
func (m *StatusMap) Snapshot() *StatusMap {
	n := NewStatusMap(m.numCores)
	m.SnapshotInto(n)
	return n
}

// SnapshotInto deep-copies the map's contents into dst, reusing dst's
// map buckets and recycling its entries through dst's arenas — the
// pooled-snapshot-graph variant of Snapshot. dst must have been built
// for the same core count.
func (m *StatusMap) SnapshotInto(dst *StatusMap) {
	dst.numCores = m.numCores
	for la, e := range dst.lines {
		if m.lines[la] == nil {
			delete(dst.lines, la)
			dst.freeEntry(e)
		}
	}
	for la, e := range m.lines {
		de := dst.lines[la]
		if de == nil {
			de = dst.newEntry()
			dst.lines[la] = de
		}
		copy(de.states, e.states)
		de.monitorTS = e.monitorTS
		de.dirty = false
	}
	dst.dirtyList = dst.dirtyList[:0]
}

// Restore overwrites the map from a snapshot, reusing the existing map
// and recycled entries instead of rebuilding them.
func (m *StatusMap) Restore(snap *StatusMap) {
	snap.SnapshotInto(m)
}

// Reset returns the map to its freshly-constructed state, reclaiming
// every entry wholesale through the arenas (the blocks are kept for the
// next run). Used when a pooled machine is recycled.
func (m *StatusMap) Reset() {
	clear(m.lines)
	m.entries.Reset()
	m.states.Reset()
	m.track = false
	m.dirtyList = m.dirtyList[:0]
}

// StartTracking begins dirty-line tracking for incremental checkpoints.
// The caller takes a full Snapshot at the same instant; from then on
// SyncSnapshot keeps that snapshot current by copying only dirty entries.
func (m *StatusMap) StartTracking() {
	m.track = true
	m.clearDirty()
}

//slacksim:hotpath
func (m *StatusMap) clearDirty() {
	for _, la := range m.dirtyList {
		if e := m.lines[la]; e != nil {
			e.dirty = false
		}
	}
	m.dirtyList = m.dirtyList[:0]
}

// SyncSnapshot brings snap (a full Snapshot taken when tracking started,
// kept in sync at every checkpoint since) up to date by copying only the
// entries dirtied since the previous sync or restore.
//
//slacksim:hotpath
func (m *StatusMap) SyncSnapshot(snap *StatusMap) {
	snap.numCores = m.numCores
	for _, la := range m.dirtyList {
		e := m.lines[la]
		if e == nil {
			continue
		}
		e.dirty = false
		se := snap.lines[la]
		if se == nil {
			// First sync of a line only; subsequent boundaries reuse the
			// entry, and the arena makes even the first sync pointer-bump
			// cheap after warm-up.
			se = snap.newEntry()
			snap.lines[la] = se
		}
		copy(se.states, e.states)
		se.monitorTS = e.monitorTS
	}
	m.dirtyList = m.dirtyList[:0]
}

// RestoreDirty rolls the map back to snap by undoing only the entries
// dirtied since the last sync: diverged entries are copied back, entries
// created after the checkpoint are deleted.
//
//slacksim:hotpath
func (m *StatusMap) RestoreDirty(snap *StatusMap) {
	m.numCores = snap.numCores
	for _, la := range m.dirtyList {
		e := m.lines[la]
		if e == nil {
			continue
		}
		e.dirty = false
		se := snap.lines[la]
		if se == nil {
			delete(m.lines, la)
			m.freeEntry(e)
			continue
		}
		copy(e.states, se.states)
		e.monitorTS = se.monitorTS
	}
	m.dirtyList = m.dirtyList[:0]
}

// Equal reports whether two maps record identical state (entries whose
// states are all Invalid with an untouched monitor compare equal to
// absent entries only when both sides agree; equality here is exact
// entry-for-entry, the property the incremental-checkpoint tests assert).
func (m *StatusMap) Equal(o *StatusMap) bool {
	if m.numCores != o.numCores || len(m.lines) != len(o.lines) {
		return false
	}
	for la, e := range m.lines {
		oe := o.lines[la]
		if oe == nil || e.monitorTS != oe.monitorTS || !slices.Equal(e.states, oe.states) {
			return false
		}
	}
	return true
}

// StateWords estimates live state size in 64-bit words for the checkpoint
// cost model.
func (m *StatusMap) StateWords() int {
	return len(m.lines) * (m.numCores/4 + 2)
}
