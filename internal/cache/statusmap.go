package cache

import (
	"sort"

	"slacksim/internal/coherence"
)

// StatusMap is the simulation manager's global record of which L1 caches
// hold each line and in what MESI state. It is the "cache status map" of
// the paper: the simulated-system state whose out-of-order updates are
// counted as map violations.
//
// Every entry carries a monitoring timestamp — the largest timestamp of
// any operation applied to it so far. Apply compares an incoming
// operation's timestamp against it and reports a violation when the
// operation arrives out of simulated-time order, exactly the detection
// mechanism of the paper's Section 3.
type StatusMap struct {
	numCores int
	lines    map[uint64]*mapEntry
}

type mapEntry struct {
	states    []coherence.State
	monitorTS int64
}

// NewStatusMap returns an empty map for a machine with numCores L1s.
func NewStatusMap(numCores int) *StatusMap {
	return &StatusMap{numCores: numCores, lines: make(map[uint64]*mapEntry)}
}

// NumCores returns the number of tracked caches.
func (m *StatusMap) NumCores() int { return m.numCores }

func (m *StatusMap) entry(lineAddr uint64) *mapEntry {
	e := m.lines[lineAddr]
	if e == nil {
		e = &mapEntry{states: make([]coherence.State, m.numCores), monitorTS: -1}
		m.lines[lineAddr] = e
	}
	return e
}

// State returns core's recorded state for lineAddr.
func (m *StatusMap) State(lineAddr uint64, core int) coherence.State {
	if e := m.lines[lineAddr]; e != nil {
		return e.states[core]
	}
	return coherence.Invalid
}

// SharersOtherThan reports whether any cache except core holds the line.
func (m *StatusMap) SharersOtherThan(lineAddr uint64, core int) bool {
	e := m.lines[lineAddr]
	if e == nil {
		return false
	}
	for i, s := range e.states {
		if i != core && s.Valid() {
			return true
		}
	}
	return false
}

// OwnerOtherThan returns the core holding the line in M or E (the cache
// that must supply or flush data), or -1.
func (m *StatusMap) OwnerOtherThan(lineAddr uint64, core int) int {
	e := m.lines[lineAddr]
	if e == nil {
		return -1
	}
	for i, s := range e.states {
		if i != core && s.CanWrite() {
			return i
		}
	}
	return -1
}

// Holders returns, in ascending core order, every core other than the
// requester holding a valid copy.
func (m *StatusMap) Holders(lineAddr uint64, except int) []int {
	e := m.lines[lineAddr]
	if e == nil {
		return nil
	}
	var out []int
	for i, s := range e.states {
		if i != except && s.Valid() {
			out = append(out, i)
		}
	}
	return out
}

// Apply records a state transition for (lineAddr, core) performed by an
// operation carrying timestamp ts, updating the entry's monitoring
// variable. It returns true when the operation is a map violation: its
// timestamp is retrograde (smaller than the largest already applied to
// this entry) *and* the transition involves ownership (the old or new
// state is Modified), so the reordering changes which write the global
// state reflects. Retrograde reorderings of read-sharing transitions
// commute and are not state inconsistencies — this is why the paper finds
// map violations an order of magnitude rarer than bus violations and
// negligible at small slack: conflicting ownership transfers of one line
// are separated by full coherence round trips, while the bus serializes
// every request in the machine.
func (m *StatusMap) Apply(lineAddr uint64, core int, s coherence.State, ts int64) (violation bool) {
	e := m.entry(lineAddr)
	old := e.states[core]
	if ts < e.monitorTS {
		violation = old == coherence.Modified || s == coherence.Modified
	} else {
		e.monitorTS = ts
	}
	e.states[core] = s
	return violation
}

// MonitorTS returns the entry's monitoring timestamp (-1 when untouched).
func (m *StatusMap) MonitorTS(lineAddr uint64) int64 {
	if e := m.lines[lineAddr]; e != nil {
		return e.monitorTS
	}
	return -1
}

// CheckLegal verifies the MESI compatibility matrix for every line and
// returns the line addresses (sorted) that violate it. Used by protocol
// invariant tests; an eagerly-serviced slack simulation may transiently
// break it — that is precisely the simulated-system-state inaccuracy the
// paper studies — so production runs do not call this on the hot path.
func (m *StatusMap) CheckLegal() []uint64 {
	var bad []uint64
	for la, e := range m.lines {
		ok := true
	outer:
		for i := 0; i < len(e.states); i++ {
			for j := i + 1; j < len(e.states); j++ {
				if !coherence.LegalPair(e.states[i], e.states[j]) {
					ok = false
					break outer
				}
			}
		}
		if !ok {
			bad = append(bad, la)
		}
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return bad
}

// Lines returns the number of tracked lines.
func (m *StatusMap) Lines() int { return len(m.lines) }

// Snapshot deep-copies the map.
func (m *StatusMap) Snapshot() *StatusMap {
	n := NewStatusMap(m.numCores)
	for la, e := range m.lines {
		n.lines[la] = &mapEntry{
			states:    append([]coherence.State(nil), e.states...),
			monitorTS: e.monitorTS,
		}
	}
	return n
}

// Restore overwrites the map from a snapshot.
func (m *StatusMap) Restore(snap *StatusMap) {
	m.numCores = snap.numCores
	m.lines = make(map[uint64]*mapEntry, len(snap.lines))
	for la, e := range snap.lines {
		m.lines[la] = &mapEntry{
			states:    append([]coherence.State(nil), e.states...),
			monitorTS: e.monitorTS,
		}
	}
}

// StateWords estimates live state size in 64-bit words for the checkpoint
// cost model.
func (m *StatusMap) StateWords() int {
	return len(m.lines) * (m.numCores/4 + 2)
}
