package cache

import (
	"testing"

	"slacksim/internal/coherence"
)

func TestStatusMapApplyAndState(t *testing.T) {
	m := NewStatusMap(4)
	if m.State(0x10, 0) != coherence.Invalid {
		t.Fatal("fresh map not Invalid")
	}
	if v := m.Apply(0x10, 0, coherence.Modified, 5); v {
		t.Fatal("first apply flagged violation")
	}
	if m.State(0x10, 0) != coherence.Modified {
		t.Fatal("state not recorded")
	}
	if m.MonitorTS(0x10) != 5 {
		t.Fatalf("monitor = %d, want 5", m.MonitorTS(0x10))
	}
}

func TestStatusMapRetrogradeViolation(t *testing.T) {
	m := NewStatusMap(2)
	m.Apply(0x10, 0, coherence.Shared, 10)
	if v := m.Apply(0x10, 1, coherence.Shared, 10); v {
		t.Error("equal timestamp must not violate")
	}
	// A retrograde ownership transfer is a map violation.
	if v := m.Apply(0x10, 1, coherence.Modified, 9); !v {
		t.Error("retrograde ownership transition not flagged")
	}
	// A violation does not update the monitor.
	if m.MonitorTS(0x10) != 10 {
		t.Errorf("monitor moved backwards to %d", m.MonitorTS(0x10))
	}
	// The state change is still applied (the simulation proceeds).
	if m.State(0x10, 1) != coherence.Modified {
		t.Error("retrograde op's state change lost")
	}
	// Losing ownership retrograde also flags (old state Modified).
	if v := m.Apply(0x10, 1, coherence.Invalid, 8); !v {
		t.Error("retrograde ownership loss not flagged")
	}
}

func TestStatusMapRetrogradeReadsCommute(t *testing.T) {
	m := NewStatusMap(2)
	m.Apply(0x20, 0, coherence.Shared, 10)
	// A retrograde read-sharing transition commutes with the recorded
	// state and is not a map violation (the paper's map violations need a
	// real state inconsistency, which keeps them an order of magnitude
	// rarer than bus violations).
	if v := m.Apply(0x20, 1, coherence.Shared, 5); v {
		t.Error("retrograde read-share flagged as map violation")
	}
	if v := m.Apply(0x20, 1, coherence.Invalid, 4); v {
		t.Error("retrograde share-drop flagged as map violation")
	}
}

func TestStatusMapHoldersAndOwner(t *testing.T) {
	m := NewStatusMap(4)
	m.Apply(0x20, 1, coherence.Shared, 1)
	m.Apply(0x20, 3, coherence.Modified, 2)
	if !m.SharersOtherThan(0x20, 0) {
		t.Error("sharers not seen")
	}
	if m.SharersOtherThan(0x99, 0) {
		t.Error("phantom sharers")
	}
	if got := m.OwnerOtherThan(0x20, 0); got != 3 {
		t.Errorf("owner = %d, want 3", got)
	}
	if got := m.OwnerOtherThan(0x20, 3); got != -1 {
		t.Errorf("owner excluding self = %d, want -1", got)
	}
	h := m.Holders(0x20, 3)
	if len(h) != 1 || h[0] != 1 {
		t.Errorf("holders = %v, want [1]", h)
	}
	if h := m.Holders(0x77, 0); h != nil {
		t.Errorf("holders of untracked line = %v", h)
	}
}

func TestStatusMapCheckLegal(t *testing.T) {
	m := NewStatusMap(2)
	m.Apply(0x1, 0, coherence.Shared, 1)
	m.Apply(0x1, 1, coherence.Shared, 2)
	if bad := m.CheckLegal(); len(bad) != 0 {
		t.Errorf("legal map flagged: %v", bad)
	}
	m.Apply(0x2, 0, coherence.Modified, 3)
	m.Apply(0x2, 1, coherence.Shared, 4)
	bad := m.CheckLegal()
	if len(bad) != 1 || bad[0] != 0x2 {
		t.Errorf("illegal pair not found: %v", bad)
	}
}

func TestStatusMapSnapshotRestore(t *testing.T) {
	m := NewStatusMap(2)
	m.Apply(0x1, 0, coherence.Modified, 9)
	snap := m.Snapshot()
	m.Apply(0x1, 0, coherence.Invalid, 10)
	m.Apply(0x5, 1, coherence.Shared, 11)
	m.Restore(snap)
	if m.State(0x1, 0) != coherence.Modified || m.MonitorTS(0x1) != 9 {
		t.Error("restore lost entry")
	}
	if m.Lines() != 1 {
		t.Errorf("restore kept %d lines, want 1", m.Lines())
	}
	// Deep copy: mutating restored map must not touch the snapshot.
	m.Apply(0x1, 1, coherence.Shared, 12)
	if snap.State(0x1, 1) != coherence.Invalid {
		t.Error("snapshot aliases live entries")
	}
}

func TestStatusMapStateWords(t *testing.T) {
	m := NewStatusMap(8)
	if m.StateWords() != 0 {
		t.Error("empty map has state words")
	}
	m.Apply(0x1, 0, coherence.Shared, 1)
	if m.StateWords() <= 0 {
		t.Error("non-empty map reports no state")
	}
}
