package cache

import "testing"

func TestMSHRAllocatePrimaryAndMerge(t *testing.T) {
	f := NewMSHRFile(2)
	e, primary := f.Allocate(0x10, false, 1, 100)
	if e == nil || !primary {
		t.Fatal("first allocate not primary")
	}
	e2, primary2 := f.Allocate(0x10, true, 2, 101)
	if e2 == nil || primary2 {
		t.Fatal("second allocate to same line must merge")
	}
	if !e2.Write {
		t.Error("merged write did not set Write")
	}
	if f.Merges != 1 {
		t.Errorf("Merges = %d, want 1", f.Merges)
	}
	if len(e2.Waiters) != 2 {
		t.Errorf("waiters = %v, want two", e2.Waiters)
	}
	if f.Len() != 1 {
		t.Errorf("Len = %d, want 1", f.Len())
	}
}

func TestMSHRFull(t *testing.T) {
	f := NewMSHRFile(1)
	f.Allocate(0x10, false, 1, 0)
	e, primary := f.Allocate(0x20, false, 2, 0)
	if e != nil || primary {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if f.Full != 1 {
		t.Errorf("Full = %d, want 1", f.Full)
	}
}

func TestMSHRRelease(t *testing.T) {
	f := NewMSHRFile(4)
	f.Allocate(0x10, false, 1, 0)
	f.Allocate(0x10, false, 2, 0)
	f.Allocate(0x20, true, 3, 0)
	w := f.Release(0x10)
	if len(w) != 2 || w[0] != 1 || w[1] != 2 {
		t.Errorf("released waiters %v", w)
	}
	if f.Lookup(0x10) != nil {
		t.Error("entry still present after release")
	}
	if f.Lookup(0x20) == nil {
		t.Error("unrelated entry vanished")
	}
	if w := f.Release(0x99); w != nil {
		t.Errorf("release of absent line returned %v", w)
	}
}

func TestMSHRNegativeTagNotRecorded(t *testing.T) {
	f := NewMSHRFile(2)
	e, _ := f.Allocate(0x10, false, -1, 0)
	if len(e.Waiters) != 0 {
		t.Errorf("tag -1 recorded as waiter: %v", e.Waiters)
	}
}

func TestMSHRForEach(t *testing.T) {
	f := NewMSHRFile(4)
	f.Allocate(0x1, false, 1, 0)
	f.Allocate(0x2, false, 2, 0)
	var lines []uint64
	f.ForEach(func(e *MSHR) { lines = append(lines, e.LineAddr) })
	if len(lines) != 2 || lines[0] != 0x1 || lines[1] != 0x2 {
		t.Errorf("ForEach order %v", lines)
	}
}

func TestMSHRSnapshotRestore(t *testing.T) {
	f := NewMSHRFile(4)
	f.Allocate(0x1, true, 7, 5)
	snap := f.Snapshot()
	f.Release(0x1)
	f.Allocate(0x2, false, 8, 6)
	f.Restore(snap)
	e := f.Lookup(0x1)
	if e == nil || !e.Write || len(e.Waiters) != 1 || e.Waiters[0] != 7 {
		t.Errorf("restore lost entry: %+v", e)
	}
	if f.Lookup(0x2) != nil {
		t.Error("restore kept post-snapshot entry")
	}
	// Snapshot must be deep: mutating the restored file must not affect
	// the snapshot.
	f.Allocate(0x1, false, 9, 0)
	if len(snap.Lookup(0x1).Waiters) != 1 {
		t.Error("snapshot aliases live waiters")
	}
}

func TestMSHRZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity accepted")
		}
	}()
	NewMSHRFile(0)
}
