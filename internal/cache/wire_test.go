package cache

import (
	"bytes"
	"encoding/gob"
	"testing"

	"slacksim/internal/coherence"
)

func gobRoundTrip[T any](t *testing.T, in T, out T) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestCacheWireRoundTrip(t *testing.T) {
	c := New(Config{Name: "l1d", SizeBytes: 4 << 10, Assoc: 2, LatencyCycles: 1})
	for i := uint64(0); i < 200; i++ {
		c.Insert(i*7, coherence.State(1+i%3))
		c.Probe(i*7, i%2 == 0)
	}
	var got Cache
	gobRoundTrip(t, c, &got)
	if !c.Equal(&got) {
		t.Fatal("cache did not survive the wire round trip")
	}
	// The decoded cache must be fully functional.
	got.Insert(9999, coherence.Modified)
	if got.State(9999) != coherence.Modified {
		t.Fatal("decoded cache is not functional")
	}
}

func TestMSHRWireRoundTrip(t *testing.T) {
	f := NewMSHRFile(8)
	f.Allocate(100, false, 3, 50)
	f.Allocate(100, true, 4, 51) // merge
	f.Allocate(200, true, 7, 60)
	var got MSHRFile
	gobRoundTrip(t, f, &got)
	if !f.Equal(&got) {
		t.Fatal("MSHR file did not survive the wire round trip")
	}
}

func TestStatusMapWireRoundTrip(t *testing.T) {
	m := NewStatusMap(4)
	m.Apply(10, 0, coherence.Modified, 5)
	m.Apply(10, 1, coherence.Shared, 9)
	m.Apply(77, 3, coherence.Exclusive, 2)
	var got StatusMap
	gobRoundTrip(t, m, &got)
	if !m.Equal(&got) {
		t.Fatal("status map did not survive the wire round trip")
	}
	if got.MonitorTS(10) != 9 {
		t.Fatalf("monitor TS = %d, want 9", got.MonitorTS(10))
	}
}
