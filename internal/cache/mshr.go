package cache

import "fmt"

// MSHR is one miss-status holding register: an outstanding miss on a line
// with the set of instruction tags waiting for it. The L1s are lock-up
// free, so multiple misses can be outstanding and secondary misses to the
// same line merge into the primary's MSHR.
type MSHR struct {
	LineAddr uint64
	// Write records whether any merged request needs write permission.
	Write bool
	// Waiters are ROB tags of instructions blocked on this line.
	Waiters []int
	// Issued reports whether the bus request has been sent to the manager.
	Issued bool
	// IssueTS is the local time at which the request was (or will be) sent.
	IssueTS int64
}

// MSHRFile is a fixed-capacity set of MSHRs.
type MSHRFile struct {
	cap     int
	entries []MSHR

	// Merges counts secondary misses folded into an existing entry.
	Merges uint64
	// Full counts allocation attempts rejected because the file was full.
	Full uint64

	// version counts mutations. All state changes funnel through
	// Allocate/Release (entries are never mutated through Lookup/ForEach
	// pointers), so an incremental checkpoint can skip the whole file when
	// the version matches the snapshot's.
	version uint64
}

// NewMSHRFile returns a file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: MSHR capacity %d must be positive", capacity))
	}
	return &MSHRFile{cap: capacity}
}

// Cap returns the file's capacity.
func (f *MSHRFile) Cap() int { return f.cap }

// Len returns the number of live entries.
func (f *MSHRFile) Len() int { return len(f.entries) }

// Lookup returns the entry for lineAddr, or nil.
func (f *MSHRFile) Lookup(lineAddr uint64) *MSHR {
	for i := range f.entries {
		if f.entries[i].LineAddr == lineAddr {
			return &f.entries[i]
		}
	}
	return nil
}

// Allocate records a miss on lineAddr for the instruction with tag waiting.
// It merges into an existing entry when possible. It returns the entry and
// whether this is a new (primary) miss; (nil,false) means the file is full
// and the requester must retry later.
func (f *MSHRFile) Allocate(lineAddr uint64, write bool, tag int, issueTS int64) (entry *MSHR, primary bool) {
	f.version++
	if e := f.Lookup(lineAddr); e != nil {
		e.Write = e.Write || write
		if tag >= 0 {
			e.Waiters = append(e.Waiters, tag)
		}
		f.Merges++
		return e, false
	}
	if len(f.entries) >= f.cap {
		f.Full++
		return nil, false
	}
	f.entries = append(f.entries, MSHR{LineAddr: lineAddr, Write: write, IssueTS: issueTS})
	e := &f.entries[len(f.entries)-1]
	if tag >= 0 {
		e.Waiters = append(e.Waiters, tag)
	}
	return e, true
}

// Release removes the entry for lineAddr and returns its waiters (nil if
// the entry does not exist).
func (f *MSHRFile) Release(lineAddr uint64) []int {
	for i := range f.entries {
		if f.entries[i].LineAddr == lineAddr {
			f.version++
			w := f.entries[i].Waiters
			f.entries = append(f.entries[:i], f.entries[i+1:]...)
			return w
		}
	}
	return nil
}

// ForEach visits every live entry in allocation order.
func (f *MSHRFile) ForEach(fn func(*MSHR)) {
	for i := range f.entries {
		fn(&f.entries[i])
	}
}

// Snapshot deep-copies the file.
func (f *MSHRFile) Snapshot() *MSHRFile {
	n := &MSHRFile{cap: f.cap, Merges: f.Merges, Full: f.Full, version: f.version}
	n.entries = make([]MSHR, len(f.entries))
	for i, e := range f.entries {
		e.Waiters = append([]int(nil), e.Waiters...)
		n.entries[i] = e
	}
	return n
}

// Restore overwrites the file from a snapshot.
//
//slacksim:hotpath
func (f *MSHRFile) Restore(snap *MSHRFile) {
	f.cap = snap.cap
	f.Merges, f.Full = snap.Merges, snap.Full
	f.entries = f.entries[:0]
	for _, e := range snap.entries {
		e.Waiters = append([]int(nil), e.Waiters...) //lint:allow hotpathalloc -- deep copy is required: aliasing snap's waiter slices would corrupt the snapshot on replay
		f.entries = append(f.entries, e)
	}
	f.version = snap.version
}

// SyncSnapshot brings snap up to date with the live file. When no
// mutation has happened since the last sync (the common case between
// dense checkpoints) it is a single integer compare.
//
//slacksim:hotpath
func (f *MSHRFile) SyncSnapshot(snap *MSHRFile) {
	if snap.version == f.version && snap.cap == f.cap {
		return
	}
	snap.Restore(f)
}

// RestoreDirty rolls the live file back to snap, skipping the copy when
// nothing changed since the sync.
//
//slacksim:hotpath
func (f *MSHRFile) RestoreDirty(snap *MSHRFile) {
	if f.version == snap.version && f.cap == snap.cap {
		return
	}
	f.Restore(snap)
}

// Equal reports whether two files hold identical entries and stats.
func (f *MSHRFile) Equal(o *MSHRFile) bool {
	if f.cap != o.cap || f.Merges != o.Merges || f.Full != o.Full ||
		len(f.entries) != len(o.entries) {
		return false
	}
	for i := range f.entries {
		a, b := &f.entries[i], &o.entries[i]
		if a.LineAddr != b.LineAddr || a.Write != b.Write ||
			a.Issued != b.Issued || a.IssueTS != b.IssueTS ||
			len(a.Waiters) != len(b.Waiters) {
			return false
		}
		for j := range a.Waiters {
			if a.Waiters[j] != b.Waiters[j] {
				return false
			}
		}
	}
	return true
}
