package cache

import "fmt"

// MSHR is one miss-status holding register: an outstanding miss on a line
// with the set of instruction tags waiting for it. The L1s are lock-up
// free, so multiple misses can be outstanding and secondary misses to the
// same line merge into the primary's MSHR.
type MSHR struct {
	LineAddr uint64
	// Write records whether any merged request needs write permission.
	Write bool
	// Waiters are ROB tags of instructions blocked on this line.
	Waiters []int
	// Issued reports whether the bus request has been sent to the manager.
	Issued bool
	// IssueTS is the local time at which the request was (or will be) sent.
	IssueTS int64
}

// MSHRFile is a fixed-capacity set of MSHRs.
type MSHRFile struct {
	cap     int
	entries []MSHR

	// Merges counts secondary misses folded into an existing entry.
	Merges uint64
	// Full counts allocation attempts rejected because the file was full.
	Full uint64

	// version counts mutations. All state changes funnel through
	// Allocate/Release (entries are never mutated through Lookup/ForEach
	// pointers), so an incremental checkpoint can skip the whole file when
	// the version matches the snapshot's.
	version uint64

	// scratch carries Release's returned waiter list so the entry's own
	// backing array stays parked in the file for reuse; see Release.
	scratch []int
}

// NewMSHRFile returns a file with the given capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: MSHR capacity %d must be positive", capacity))
	}
	return &MSHRFile{cap: capacity}
}

// Cap returns the file's capacity.
func (f *MSHRFile) Cap() int { return f.cap }

// Len returns the number of live entries.
func (f *MSHRFile) Len() int { return len(f.entries) }

// Lookup returns the entry for lineAddr, or nil.
func (f *MSHRFile) Lookup(lineAddr uint64) *MSHR {
	for i := range f.entries {
		if f.entries[i].LineAddr == lineAddr {
			return &f.entries[i]
		}
	}
	return nil
}

// Allocate records a miss on lineAddr for the instruction with tag waiting.
// It merges into an existing entry when possible. It returns the entry and
// whether this is a new (primary) miss; (nil,false) means the file is full
// and the requester must retry later.
func (f *MSHRFile) Allocate(lineAddr uint64, write bool, tag int, issueTS int64) (entry *MSHR, primary bool) {
	f.version++
	if e := f.Lookup(lineAddr); e != nil {
		e.Write = e.Write || write
		if tag >= 0 {
			e.Waiters = append(e.Waiters, tag)
		}
		f.Merges++
		return e, false
	}
	if len(f.entries) >= f.cap {
		f.Full++
		return nil, false
	}
	// A slot vacated by Release or Restore parks its waiter backing array
	// within the slice capacity; reviving it keeps steady-state miss
	// traffic allocation-free.
	n := len(f.entries)
	var w []int
	if n < cap(f.entries) {
		w = f.entries[:n+1][n].Waiters[:0]
	}
	f.entries = append(f.entries, MSHR{LineAddr: lineAddr, Write: write, IssueTS: issueTS, Waiters: w})
	e := &f.entries[len(f.entries)-1]
	if tag >= 0 {
		e.Waiters = append(e.Waiters, tag)
	}
	return e, true
}

// Release removes the entry for lineAddr and returns its waiters (nil if
// the entry does not exist). The returned slice is the file's scratch
// buffer: it is valid until the next Release and must not be retained —
// the entry's own backing array stays parked in the file so a later
// Allocate reuses it instead of allocating.
//
//slacksim:hotpath
func (f *MSHRFile) Release(lineAddr uint64) []int {
	for i := range f.entries {
		if f.entries[i].LineAddr == lineAddr {
			f.version++
			f.scratch = append(f.scratch[:0], f.entries[i].Waiters...)
			w := f.entries[i].Waiters[:0]
			n := len(f.entries)
			copy(f.entries[i:], f.entries[i+1:])
			// Park the released backing in the vacated tail slot; every
			// slot within capacity keeps a distinct backing array, so
			// reuse can never alias two entries' waiter lists.
			f.entries[n-1] = MSHR{Waiters: w}
			f.entries = f.entries[:n-1]
			return f.scratch
		}
	}
	return nil
}

// ForEach visits every live entry in allocation order.
func (f *MSHRFile) ForEach(fn func(*MSHR)) {
	for i := range f.entries {
		fn(&f.entries[i])
	}
}

// Snapshot deep-copies the file.
func (f *MSHRFile) Snapshot() *MSHRFile {
	n := &MSHRFile{cap: f.cap}
	n.Restore(f)
	return n
}

// SnapshotInto deep-copies the file's contents into dst, reusing dst's
// entry and waiter backings — the pooled-snapshot-graph variant of
// Snapshot.
//
//slacksim:hotpath
func (f *MSHRFile) SnapshotInto(dst *MSHRFile) {
	dst.Restore(f)
}

// Restore overwrites the file from a snapshot. Waiter lists are deep
// copies (aliasing snap's slices would corrupt the snapshot on replay),
// but the copies land in f's own parked backing arrays, so steady-state
// restores allocate nothing.
//
//slacksim:hotpath
func (f *MSHRFile) Restore(snap *MSHRFile) {
	f.cap = snap.cap
	f.Merges, f.Full = snap.Merges, snap.Full
	n := len(snap.entries)
	for len(f.entries) < n {
		if len(f.entries) < cap(f.entries) {
			// Revive a parked slot, keeping its waiter backing.
			f.entries = f.entries[:len(f.entries)+1]
		} else {
			// Grows only past the file's high-water entry count, then reused.
			f.entries = append(f.entries, MSHR{})
		}
	}
	for i := n; i < len(f.entries); i++ {
		f.entries[i] = MSHR{Waiters: f.entries[i].Waiters[:0]}
	}
	f.entries = f.entries[:n]
	for i := range snap.entries {
		se := &snap.entries[i]
		e := &f.entries[i]
		w := append(e.Waiters[:0], se.Waiters...)
		*e = *se
		e.Waiters = w
	}
	f.version = snap.version
}

// Reset returns the file to its freshly-constructed state, parking every
// entry's waiter backing for reuse. Used when a pooled machine is
// recycled.
func (f *MSHRFile) Reset() {
	for i := range f.entries {
		f.entries[i] = MSHR{Waiters: f.entries[i].Waiters[:0]}
	}
	f.entries = f.entries[:0]
	f.Merges, f.Full = 0, 0
	f.version = 0
}

// SyncSnapshot brings snap up to date with the live file. When no
// mutation has happened since the last sync (the common case between
// dense checkpoints) it is a single integer compare.
//
//slacksim:hotpath
func (f *MSHRFile) SyncSnapshot(snap *MSHRFile) {
	if snap.version == f.version && snap.cap == f.cap {
		return
	}
	snap.Restore(f)
}

// RestoreDirty rolls the live file back to snap, skipping the copy when
// nothing changed since the sync.
//
//slacksim:hotpath
func (f *MSHRFile) RestoreDirty(snap *MSHRFile) {
	if f.version == snap.version && f.cap == snap.cap {
		return
	}
	f.Restore(snap)
}

// Equal reports whether two files hold identical entries and stats.
func (f *MSHRFile) Equal(o *MSHRFile) bool {
	if f.cap != o.cap || f.Merges != o.Merges || f.Full != o.Full ||
		len(f.entries) != len(o.entries) {
		return false
	}
	for i := range f.entries {
		a, b := &f.entries[i], &o.entries[i]
		if a.LineAddr != b.LineAddr || a.Write != b.Write ||
			a.Issued != b.Issued || a.IssueTS != b.IssueTS ||
			len(a.Waiters) != len(b.Waiters) {
			return false
		}
		for j := range a.Waiters {
			if a.Waiters[j] != b.Waiters[j] {
				return false
			}
		}
	}
	return true
}
