// Package cache implements the target system's cache structures: the
// set-associative arrays with MESI state used for the private L1s and the
// shared L2, lock-up-free miss handling via MSHRs, and the global cache
// status map the simulation manager uses to track every L1 copy in the
// machine (the structure whose retrograde updates the paper counts as
// "map violations").
package cache

import (
	"fmt"

	"slacksim/internal/coherence"
)

// LineBytes is the cache line size for every cache in the target system.
const LineBytes = 64

// LineShift converts byte addresses to line addresses.
const LineShift = 6

// LineAddr returns the line address (byte address / LineBytes) of addr.
func LineAddr(addr uint64) uint64 { return addr >> LineShift }

// Config describes one cache array.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
	// LatencyCycles is the access (hit) latency.
	LatencyCycles int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (LineBytes * c.Assoc) }

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: size and associativity must be positive", c.Name)
	}
	if c.SizeBytes%(LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by %d-way line groups",
			c.Name, c.SizeBytes, c.Assoc)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, s)
	}
	return nil
}

// line is one cache tag entry. Data contents live in the target memory
// image; caches model state and timing only, which is all the slack
// machinery observes (the paper's simulator does the same: values are
// fetched just before execution).
type line struct {
	tag   uint64
	state coherence.State
	lru   uint64 // bigger = more recently used
}

// Cache is a set-associative, write-back, write-allocate cache array with
// per-line MESI state.
type Cache struct {
	cfg Config
	// sets are views into flat, one flat backing array for the whole
	// cache: construction is two allocations instead of one per set, and
	// full copies/resets are a single copy/clear.
	sets    [][]line
	flat    []line
	setMask uint64
	lruClk  uint64

	// Statistics.
	Hits, Misses, Evictions, Writebacks uint64

	// Incremental-checkpoint support: sets touched since the last sync.
	// Granularity is a whole set (Assoc lines) — fine enough to skip the
	// untouched bulk of the array, coarse enough that marking is one
	// branch on the hit path.
	track     bool
	dirty     []bool
	dirtyList []uint32
}

func (c *Cache) markSet(set uint64) {
	if c.track && !c.dirty[set] {
		c.dirty[set] = true
		c.dirtyList = append(c.dirtyList, uint32(set))
	}
}

// New builds a cache from cfg, panicking on invalid configuration (caches
// are constructed from static target descriptions).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	flat := make([]line, cfg.Sets()*cfg.Assoc)
	sets := make([][]line, cfg.Sets())
	for i := range sets {
		sets[i] = flat[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Cache{cfg: cfg, sets: sets, flat: flat, setMask: uint64(cfg.Sets() - 1)}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the configured hit latency in cycles.
func (c *Cache) Latency() int { return c.cfg.LatencyCycles }

func (c *Cache) index(lineAddr uint64) (set uint64, tag uint64) {
	return lineAddr & c.setMask, lineAddr >> uint(len64(c.setMask))
}

func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

func (c *Cache) find(lineAddr uint64) *line {
	set, tag := c.index(lineAddr)
	ways := c.sets[set]
	for i := range ways {
		if ways[i].state.Valid() && ways[i].tag == tag {
			return &ways[i]
		}
	}
	return nil
}

// State returns the MESI state of lineAddr (Invalid if not present).
func (c *Cache) State(lineAddr uint64) coherence.State {
	if l := c.find(lineAddr); l != nil {
		return l.state
	}
	return coherence.Invalid
}

// Probe looks up lineAddr for a read (write=false) or write (write=true)
// and returns whether it hits. A hit touches LRU and counts a hit; a miss
// counts a miss. Probe does not change MESI state.
func (c *Cache) Probe(lineAddr uint64, write bool) bool {
	l := c.find(lineAddr)
	hit := l != nil && (!write && l.state.CanRead() || write && l.state.CanWrite())
	if hit {
		c.lruClk++
		l.lru = c.lruClk
		c.Hits++
		c.markSet(lineAddr & c.setMask)
	} else {
		c.Misses++
	}
	return hit
}

// SetState forces the MESI state of a resident line (used when a snooped
// transaction or a reply changes the line's state). It is a no-op when the
// line is absent and newState is Invalid.
func (c *Cache) SetState(lineAddr uint64, s coherence.State) {
	if l := c.find(lineAddr); l != nil {
		l.state = s
		if s == coherence.Invalid {
			l.tag = 0
		}
		c.markSet(lineAddr & c.setMask)
	} else if s != coherence.Invalid {
		panic(fmt.Sprintf("cache %s: SetState(%#x,%v) on absent line", c.cfg.Name, lineAddr, s))
	}
}

// Victim describes a line displaced by Insert.
type Victim struct {
	LineAddr uint64
	Dirty    bool
	Valid    bool
}

// Insert allocates lineAddr in state s, evicting the LRU way if the set is
// full, and returns the victim (Valid=false when an invalid way was free).
// If the line is already resident, its state is updated instead.
func (c *Cache) Insert(lineAddr uint64, s coherence.State) Victim {
	if l := c.find(lineAddr); l != nil {
		l.state = s
		c.lruClk++
		l.lru = c.lruClk
		c.markSet(lineAddr & c.setMask)
		return Victim{}
	}
	set, tag := c.index(lineAddr)
	c.markSet(set)
	ways := c.sets[set]
	vi := 0
	for i := range ways {
		if !ways[i].state.Valid() {
			vi = i
			break
		}
		if ways[i].lru < ways[vi].lru {
			vi = i
		}
	}
	var v Victim
	w := &ways[vi]
	if w.state.Valid() {
		v = Victim{
			LineAddr: w.tag<<uint(len64(c.setMask)) | set,
			Dirty:    w.state.Dirty(),
			Valid:    true,
		}
		c.Evictions++
		if v.Dirty {
			c.Writebacks++
		}
	}
	c.lruClk++
	*w = line{tag: tag, state: s, lru: c.lruClk}
	return v
}

// ForEachValid calls fn for every valid line with its line address and
// state. Iteration order is deterministic (set order, then way order).
func (c *Cache) ForEachValid(fn func(lineAddr uint64, s coherence.State)) {
	shift := uint(len64(c.setMask))
	for set := range c.sets {
		for i := range c.sets[set] {
			l := &c.sets[set][i]
			if l.state.Valid() {
				fn(l.tag<<shift|uint64(set), l.state)
			}
		}
	}
}

// Snapshot deep-copies the cache (tags, states, LRU, stats).
func (c *Cache) Snapshot() *Cache {
	n := New(c.cfg)
	c.SnapshotInto(n)
	return n
}

// SnapshotInto deep-copies the cache's contents into dst, a cache built
// from the same configuration — the pooled-snapshot-graph variant of
// Snapshot, one flat copy and no allocation.
//
//slacksim:hotpath
func (c *Cache) SnapshotInto(dst *Cache) {
	if dst.cfg != c.cfg {
		panic(fmt.Sprintf("cache %s: SnapshotInto mismatched config %s", c.cfg.Name, dst.cfg.Name))
	}
	dst.lruClk = c.lruClk
	dst.Hits, dst.Misses, dst.Evictions, dst.Writebacks =
		c.Hits, c.Misses, c.Evictions, c.Writebacks
	copy(dst.flat, c.flat)
}

// Reset returns the cache to its freshly-constructed state: all lines
// invalid, statistics zeroed, dirty tracking off. Used when a pooled
// machine is recycled for a new run.
func (c *Cache) Reset() {
	clear(c.flat)
	c.lruClk = 0
	c.Hits, c.Misses, c.Evictions, c.Writebacks = 0, 0, 0, 0
	c.track = false
	c.clearDirty()
}

// Restore overwrites the cache with the snapshot's contents. The snapshot
// must come from a cache with the same configuration.
//
//slacksim:hotpath
func (c *Cache) Restore(snap *Cache) {
	if snap.cfg != c.cfg {
		panic(fmt.Sprintf("cache %s: restore from mismatched config %s", c.cfg.Name, snap.cfg.Name))
	}
	c.lruClk = snap.lruClk
	c.Hits, c.Misses, c.Evictions, c.Writebacks =
		snap.Hits, snap.Misses, snap.Evictions, snap.Writebacks
	copy(c.flat, snap.flat)
	c.clearDirty()
}

// StartTracking begins dirty-set tracking for incremental checkpoints; the
// caller takes a full Snapshot at the same instant.
func (c *Cache) StartTracking() {
	c.track = true
	if c.dirty == nil {
		c.dirty = make([]bool, len(c.sets)) //lint:allow hotpathalloc -- one-time tracking warm-up; cleared and reused thereafter
	}
	c.clearDirty()
}

//slacksim:hotpath
func (c *Cache) clearDirty() {
	for _, s := range c.dirtyList {
		c.dirty[s] = false
	}
	c.dirtyList = c.dirtyList[:0]
}

// SyncSnapshot brings snap (a full Snapshot kept current since tracking
// started) up to date by copying only the sets touched since the last
// sync or restore, plus the scalar stats.
//
//slacksim:hotpath
func (c *Cache) SyncSnapshot(snap *Cache) {
	snap.lruClk = c.lruClk
	snap.Hits, snap.Misses, snap.Evictions, snap.Writebacks =
		c.Hits, c.Misses, c.Evictions, c.Writebacks
	for _, s := range c.dirtyList {
		c.dirty[s] = false
		copy(snap.sets[s], c.sets[s])
	}
	c.dirtyList = c.dirtyList[:0]
}

// RestoreDirty rolls the cache back to snap by copying back only the sets
// touched since the last sync.
//
//slacksim:hotpath
func (c *Cache) RestoreDirty(snap *Cache) {
	c.lruClk = snap.lruClk
	c.Hits, c.Misses, c.Evictions, c.Writebacks =
		snap.Hits, snap.Misses, snap.Evictions, snap.Writebacks
	for _, s := range c.dirtyList {
		c.dirty[s] = false
		copy(c.sets[s], snap.sets[s])
	}
	c.dirtyList = c.dirtyList[:0]
}

// Equal reports whether two caches hold identical tag/state/LRU contents
// and statistics (used by checkpoint-equivalence tests).
func (c *Cache) Equal(o *Cache) bool {
	if c.cfg != o.cfg || c.lruClk != o.lruClk ||
		c.Hits != o.Hits || c.Misses != o.Misses ||
		c.Evictions != o.Evictions || c.Writebacks != o.Writebacks {
		return false
	}
	for i := range c.flat {
		if c.flat[i] != o.flat[i] {
			return false
		}
	}
	return true
}

// StateWords estimates the number of 64-bit words of live state (for the
// checkpoint cost model).
func (c *Cache) StateWords() int {
	return len(c.sets)*c.cfg.Assoc*2 + 8
}
