package cache

import (
	"testing"
	"testing/quick"

	"slacksim/internal/coherence"
)

func testConfig() Config {
	return Config{Name: "t", SizeBytes: 1 << 12, Assoc: 2, LatencyCycles: 2} // 32 sets
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "z", SizeBytes: 0, Assoc: 1},
		{Name: "n", SizeBytes: -64, Assoc: 1},
		{Name: "d", SizeBytes: 100, Assoc: 1},     // not divisible
		{Name: "p", SizeBytes: 64 * 3, Assoc: 1},  // 3 sets, not pow2
		{Name: "a", SizeBytes: 1 << 12, Assoc: 0}, // zero assoc
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if got := testConfig().Sets(); got != 32 {
		t.Errorf("Sets = %d, want 32", got)
	}
}

func TestProbeMissThenInsertHit(t *testing.T) {
	c := New(testConfig())
	if c.Probe(0x100, false) {
		t.Fatal("cold probe hit")
	}
	c.Insert(0x100, coherence.Shared)
	if !c.Probe(0x100, false) {
		t.Fatal("read probe after insert missed")
	}
	if c.Probe(0x100, true) {
		t.Fatal("write probe hit in Shared state")
	}
	c.SetState(0x100, coherence.Modified)
	if !c.Probe(0x100, true) {
		t.Fatal("write probe in Modified missed")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestStateAndSetState(t *testing.T) {
	c := New(testConfig())
	if c.State(0x42) != coherence.Invalid {
		t.Fatal("absent line not Invalid")
	}
	c.Insert(0x42, coherence.Exclusive)
	if c.State(0x42) != coherence.Exclusive {
		t.Fatal("state after insert wrong")
	}
	c.SetState(0x42, coherence.Invalid)
	if c.State(0x42) != coherence.Invalid {
		t.Fatal("invalidate failed")
	}
	// Setting Invalid on an absent line is a no-op, not a panic.
	c.SetState(0x9999, coherence.Invalid)
}

func TestSetStateAbsentPanics(t *testing.T) {
	c := New(testConfig())
	defer func() {
		if recover() == nil {
			t.Error("SetState(valid) on absent line did not panic")
		}
	}()
	c.SetState(0x77, coherence.Modified)
}

func TestLRUEviction(t *testing.T) {
	c := New(testConfig()) // 2-way, 32 sets
	// Three lines in the same set (same low 5 bits).
	l1, l2, l3 := uint64(0x20), uint64(0x40), uint64(0x60)
	c.Insert(l1, coherence.Shared)
	c.Insert(l2, coherence.Shared)
	c.Probe(l1, false) // touch l1 so l2 is LRU
	v := c.Insert(l3, coherence.Shared)
	if !v.Valid || v.LineAddr != l2 {
		t.Fatalf("evicted %+v, want line %#x", v, l2)
	}
	if v.Dirty {
		t.Error("clean victim flagged dirty")
	}
	if c.State(l1) == coherence.Invalid || c.State(l3) == coherence.Invalid {
		t.Error("survivors missing")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := New(testConfig())
	l1, l2, l3 := uint64(0x20), uint64(0x40), uint64(0x60)
	c.Insert(l1, coherence.Modified)
	c.Insert(l2, coherence.Shared)
	c.Probe(l2, false)
	v := c.Insert(l3, coherence.Shared)
	if !v.Valid || v.LineAddr != l1 || !v.Dirty {
		t.Fatalf("victim %+v, want dirty line %#x", v, l1)
	}
	if c.Writebacks != 1 || c.Evictions != 1 {
		t.Errorf("writebacks=%d evictions=%d", c.Writebacks, c.Evictions)
	}
}

func TestInsertExistingUpdatesState(t *testing.T) {
	c := New(testConfig())
	c.Insert(0x10, coherence.Shared)
	v := c.Insert(0x10, coherence.Modified)
	if v.Valid {
		t.Error("re-insert evicted something")
	}
	if c.State(0x10) != coherence.Modified {
		t.Error("re-insert did not update state")
	}
}

func TestForEachValidDeterministic(t *testing.T) {
	c := New(testConfig())
	lines := []uint64{0x3, 0x23, 0x7, 0x100}
	for _, l := range lines {
		c.Insert(l, coherence.Shared)
	}
	var a, b []uint64
	c.ForEachValid(func(l uint64, _ coherence.State) { a = append(a, l) })
	c.ForEachValid(func(l uint64, _ coherence.State) { b = append(b, l) })
	if len(a) != len(lines) {
		t.Fatalf("visited %d lines, want %d", len(a), len(lines))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("iteration order not deterministic")
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	c := New(testConfig())
	c.Insert(0x1, coherence.Modified)
	c.Insert(0x21, coherence.Shared)
	c.Probe(0x1, true)
	snap := c.Snapshot()
	c.Insert(0x41, coherence.Exclusive)
	c.SetState(0x1, coherence.Invalid)
	c.Restore(snap)
	if c.State(0x1) != coherence.Modified || c.State(0x21) != coherence.Shared {
		t.Error("restore lost states")
	}
	if c.State(0x41) != coherence.Invalid {
		t.Error("restore kept post-snapshot line")
	}
	if c.Hits != snap.Hits || c.Misses != snap.Misses {
		t.Error("restore lost stats")
	}
}

func TestRestoreMismatchPanics(t *testing.T) {
	c := New(testConfig())
	other := New(Config{Name: "o", SizeBytes: 1 << 11, Assoc: 2, LatencyCycles: 1})
	defer func() {
		if recover() == nil {
			t.Error("mismatched restore did not panic")
		}
	}()
	c.Restore(other.Snapshot())
}

// Property: after inserting any sequence of lines, every line the cache
// reports valid was actually inserted, and a line just inserted always
// probes as readable.
func TestQuickInsertProbe(t *testing.T) {
	prop := func(lines []uint16) bool {
		c := New(testConfig())
		seen := map[uint64]bool{}
		for _, l16 := range lines {
			l := uint64(l16)
			c.Insert(l, coherence.Shared)
			seen[l] = true
			if !c.Probe(l, false) {
				return false
			}
		}
		ok := true
		c.ForEachValid(func(l uint64, s coherence.State) {
			if !seen[l] || !s.Valid() {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: snapshot/restore round-trips arbitrary insert sequences.
func TestQuickSnapshotRoundTrip(t *testing.T) {
	prop := func(lines []uint16, states []uint8) bool {
		c := New(testConfig())
		n := len(lines)
		if len(states) < n {
			n = len(states)
		}
		for i := 0; i < n; i++ {
			c.Insert(uint64(lines[i]), coherence.State(states[i]%3+1))
		}
		snap := c.Snapshot()
		c.Insert(0xFFFF, coherence.Modified)
		c.Restore(snap)
		same := true
		c.ForEachValid(func(l uint64, s coherence.State) {
			if snap.State(l) != s {
				same = false
			}
		})
		return same && c.State(0xFFFF) == snap.State(0xFFFF)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
