package cache

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"slacksim/internal/coherence"
)

// Wire serialization for run snapshots (durable checkpoint export /
// live migration). Each type mirrors its unexported state into an
// exported struct for encoding/gob; maps are flattened into slices
// sorted by key so the encoding is deterministic. Decoded structures
// are cold (no dirty tracking active) — the restorer re-arms tracking.

type cacheWire struct {
	Cfg    Config
	LRUClk uint64
	// Parallel arrays over every line, set-major then way order.
	Tags   []uint64
	States []coherence.State
	LRUs   []uint64

	Hits, Misses, Evictions, Writebacks uint64
}

// GobEncode implements gob.GobEncoder.
func (c *Cache) GobEncode() ([]byte, error) {
	w := cacheWire{
		Cfg: c.cfg, LRUClk: c.lruClk,
		Hits: c.Hits, Misses: c.Misses, Evictions: c.Evictions, Writebacks: c.Writebacks,
	}
	n := len(c.sets) * c.cfg.Assoc
	w.Tags = make([]uint64, 0, n)
	w.States = make([]coherence.State, 0, n)
	w.LRUs = make([]uint64, 0, n)
	for _, set := range c.sets {
		for i := range set {
			w.Tags = append(w.Tags, set[i].tag)
			w.States = append(w.States, set[i].state)
			w.LRUs = append(w.LRUs, set[i].lru)
		}
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder, rebuilding the cache in place.
func (c *Cache) GobDecode(data []byte) error {
	var w cacheWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if err := w.Cfg.Validate(); err != nil {
		return err
	}
	if want := w.Cfg.Sets() * w.Cfg.Assoc; len(w.Tags) != want ||
		len(w.States) != want || len(w.LRUs) != want {
		return fmt.Errorf("cache %s: wire line count %d, want %d", w.Cfg.Name, len(w.Tags), want)
	}
	fresh := New(w.Cfg)
	*c = *fresh
	c.lruClk = w.LRUClk
	c.Hits, c.Misses, c.Evictions, c.Writebacks = w.Hits, w.Misses, w.Evictions, w.Writebacks
	k := 0
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{tag: w.Tags[k], state: w.States[k], lru: w.LRUs[k]}
			k++
		}
	}
	return nil
}

type mshrWire struct {
	Cap     int
	Entries []MSHR
	Merges  uint64
	Full    uint64
	Version uint64
}

// GobEncode implements gob.GobEncoder.
func (f *MSHRFile) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(mshrWire{
		Cap: f.cap, Entries: f.entries,
		Merges: f.Merges, Full: f.Full, Version: f.version,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (f *MSHRFile) GobDecode(data []byte) error {
	var w mshrWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.Cap <= 0 {
		return fmt.Errorf("cache: wire MSHR capacity %d must be positive", w.Cap)
	}
	f.cap = w.Cap
	f.entries = w.Entries
	f.Merges, f.Full, f.version = w.Merges, w.Full, w.Version
	return nil
}

type mapEntryWire struct {
	Addr      uint64
	States    []coherence.State
	MonitorTS int64
}

type statusMapWire struct {
	NumCores int
	Lines    []mapEntryWire
}

// GobEncode implements gob.GobEncoder.
func (m *StatusMap) GobEncode() ([]byte, error) {
	w := statusMapWire{NumCores: m.numCores, Lines: make([]mapEntryWire, 0, len(m.lines))}
	for la, e := range m.lines {
		w.Lines = append(w.Lines, mapEntryWire{Addr: la, States: e.states, MonitorTS: e.monitorTS})
	}
	sort.Slice(w.Lines, func(i, j int) bool { return w.Lines[i].Addr < w.Lines[j].Addr })
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (m *StatusMap) GobDecode(data []byte) error {
	var w statusMapWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.NumCores <= 0 {
		return fmt.Errorf("cache: wire status map has %d cores", w.NumCores)
	}
	fresh := NewStatusMap(w.NumCores)
	for _, e := range w.Lines {
		if len(e.States) != w.NumCores {
			return fmt.Errorf("cache: wire status map line %#x has %d states for %d cores",
				e.Addr, len(e.States), w.NumCores)
		}
		fresh.lines[e.Addr] = &mapEntry{states: e.States, monitorTS: e.MonitorTS}
	}
	*m = *fresh
	return nil
}
