package event

// Bands is a time-banded pending set: items are bucketed by timestamp
// band (TS >> shift), so a conservative manager can collect everything
// below its service horizon without sorting or scanning the far future.
// Bands fully below the horizon's band are taken wholesale; only the
// boundary band is filtered item by item against the exact horizon, so
// correctness never depends on the band granularity — a coarser shift
// just moves work from band bookkeeping to boundary filtering.
//
// Band slices are recycled through a free list, so steady-state add/take
// traffic allocates nothing once the window has warmed up. Items whose
// timestamp falls below the current window ("late" arrivals, routine
// under slack because the global time is the minimum over cores) go to a
// dedicated bucket that TakeBelow always filters by exact timestamp, so
// they are released exactly when the horizon passes them no matter where
// the window sits.
//
// Bands is single-goroutine state (the manager's); the thread-safe
// hand-off happens upstream in Queue.
type Bands[T any] struct {
	shift uint
	base  int64 // band index of bands[0]; meaningful while size-len(late) > 0
	bands [][]banded[T]
	free  [][]banded[T]
	late  []banded[T]
	size  int
}

type banded[T any] struct {
	ts int64
	v  T
}

// NewBands returns an empty banded set with 1<<shift timestamps per band.
func NewBands[T any](shift uint) *Bands[T] {
	return &Bands[T]{shift: shift}
}

// Len returns the number of pending items.
func (b *Bands[T]) Len() int { return b.size }

// newBand pops a recycled band slice or allocates a fresh one.
//
//slacksim:hotpath
//slacksim:pooled
func (b *Bands[T]) newBand() []banded[T] {
	if n := len(b.free); n > 0 {
		s := b.free[n-1]
		b.free = b.free[:n-1]
		return s
	}
	return make([]banded[T], 0, 16) //lint:allow hotpathalloc -- pool warm-up: runs only while the band free list is empty
}

// Add inserts v with timestamp ts.
//
//slacksim:hotpath
func (b *Bands[T]) Add(ts int64, v T) {
	idx := ts >> b.shift
	if b.size == len(b.late) {
		// The window is empty: rebase it on this item's band.
		b.base = idx
		if len(b.bands) == 0 {
			b.bands = append(b.bands, b.newBand()) //lint:allow hotpathalloc -- window growth is bounded by the slack bound, then reused forever
		}
		for i := 1; i < len(b.bands); i++ {
			// Clear before recycling: a rebased band is empty in length but
			// its backing array still holds the last window's items, and a
			// free-listed slice must not pin those values (for pointerful T,
			// retained references outlive rollback).
			clear(b.bands[i])
			b.free = append(b.free, b.bands[i][:0]) //lint:allow hotpathalloc -- free-list growth is bounded by the window width, then reused forever
		}
		b.bands = b.bands[:1]
	}
	if idx < b.base {
		// Late arrival below the window: filtered by exact timestamp on
		// every TakeBelow, so release timing is exact regardless of where
		// the window has moved.
		b.late = append(b.late, banded[T]{ts: ts, v: v}) //lint:allow hotpathalloc -- the late bucket is tiny (bounded by in-flight slack) and reused
		b.size++
		return
	}
	for int(idx-b.base) >= len(b.bands) {
		// Window growth is bounded by the slack bound, then reused forever.
		b.bands = append(b.bands, b.newBand())
	}
	i := int(idx - b.base)
	b.bands[i] = append(b.bands[i], banded[T]{ts: ts, v: v}) //lint:allow hotpathalloc -- band growth is amortized; slices are recycled through the free list
	b.size++
}

// TakeBelow removes every item with ts < horizon and appends it to buf
// (returned). Full bands below the horizon band are appended wholesale in
// insertion order; the boundary band is filtered by exact timestamp with
// the survivors compacted in place. The caller imposes its own total
// service order (e.g. a sort) on the result.
//
//slacksim:hotpath
func (b *Bands[T]) TakeBelow(horizon int64, buf []T) []T {
	if b.size == 0 {
		return buf
	}
	if len(b.late) > 0 {
		n := 0
		for i := range b.late {
			if b.late[i].ts < horizon {
				buf = append(buf, b.late[i].v)
				b.size--
			} else {
				b.late[n] = b.late[i]
				n++
			}
		}
		clear(b.late[n:])
		b.late = b.late[:n]
	}
	hb := horizon >> b.shift
	// Whole bands strictly below the horizon band: every ts < hb<<shift
	// <= horizon, so no filtering is needed.
	k := 0
	for k < len(b.bands) && b.base+int64(k) < hb {
		for i := range b.bands[k] {
			buf = append(buf, b.bands[k][i].v)
		}
		b.size -= len(b.bands[k])
		// Clear the consumed band before returning it to the free list so
		// the recycled backing array does not pin the taken items (the
		// boundary-filter path below already clears its survivors' tail).
		clear(b.bands[k])
		b.free = append(b.free, b.bands[k][:0]) //lint:allow hotpathalloc -- free-list growth is bounded by the window width, then reused forever
		k++
	}
	if k > 0 {
		n := copy(b.bands, b.bands[k:])
		clear(b.bands[n:])
		b.bands = b.bands[:n]
		b.base += int64(k)
	}
	// Boundary band: filter by exact timestamp, compacting survivors.
	if len(b.bands) > 0 && b.base == hb {
		band := b.bands[0]
		n := 0
		for i := range band {
			if band[i].ts < horizon {
				buf = append(buf, band[i].v)
				b.size--
			} else {
				band[n] = band[i]
				n++
			}
		}
		clear(band[n:])
		b.bands[0] = band[:n]
	}
	return buf
}
