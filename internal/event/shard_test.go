package event

import (
	"sync"
	"testing"
)

func TestShardFIFO(t *testing.T) {
	s := NewShard[int]()
	const n = 3*shardChunkSize + 17 // cross several chunk boundaries
	for i := 0; i < n; i++ {
		s.Push(i)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := s.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = %d,%v", i, v, ok)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on empty shard succeeded")
	}
	if s.Len() != 0 {
		t.Fatalf("Len after drain = %d", s.Len())
	}
}

func TestShardDrainInto(t *testing.T) {
	s := NewShard[int]()
	var buf []int
	// Interleave pushes and drains so head and tail wander across chunks,
	// exercising the free-list recycle path.
	next, want := 0, 0
	for round := 0; round < 10; round++ {
		for i := 0; i < shardChunkSize+31; i++ {
			s.Push(next)
			next++
		}
		buf = s.DrainInto(buf[:0])
		for _, v := range buf {
			if v != want {
				t.Fatalf("round %d: drained %d, want %d", round, v, want)
			}
			want++
		}
	}
	if want != next {
		t.Fatalf("drained %d items, pushed %d", want, next)
	}
}

func TestShardSnapshotRestore(t *testing.T) {
	s := NewShard[int]()
	for i := 0; i < 2*shardChunkSize+5; i++ {
		s.Push(i)
	}
	// Consume a partial prefix so the snapshot starts mid-chunk.
	for i := 0; i < 100; i++ {
		s.Pop()
	}
	snap := s.Snapshot()
	if len(snap) != 2*shardChunkSize+5-100 {
		t.Fatalf("snapshot has %d items", len(snap))
	}
	for i, v := range snap {
		if v != i+100 {
			t.Fatalf("snapshot[%d] = %d", i, v)
		}
	}
	// Mutate, then restore, and check contents round-trip.
	s.Push(-1)
	s.Restore(snap)
	if s.Len() != len(snap) {
		t.Fatalf("Len after Restore = %d, want %d", s.Len(), len(snap))
	}
	var buf []int
	buf = s.SnapshotInto(buf)
	for i, v := range buf {
		if v != snap[i] {
			t.Fatalf("restored[%d] = %d, want %d", i, v, snap[i])
		}
	}
	// Restore must not have consumed or aliased the caller's slice.
	for i, v := range snap {
		if v != i+100 {
			t.Fatalf("caller slice mutated at %d: %d", i, v)
		}
	}
}

// TestShardRecycleNoAliasing: consumed slots and recycled chunks must not
// pin the values that passed through them.
func TestShardRecycleNoAliasing(t *testing.T) {
	s := NewShard[*int]()
	mk := func(i int) *int { v := i; return &v }
	for i := 0; i < 2*shardChunkSize; i++ {
		s.Push(mk(i))
	}
	var buf []*int
	buf = s.DrainInto(buf)
	if len(buf) != 2*shardChunkSize {
		t.Fatalf("drained %d", len(buf))
	}
	s.Push(mk(0))
	s.Reset()
	// Walk every chunk the shard still owns (live list + free list): all
	// slots must be nil.
	seen := map[*shardChunk[*int]]bool{}
	check := func(c *shardChunk[*int]) {
		for j := range c.buf {
			if c.buf[j] != nil {
				t.Fatalf("chunk slot %d retains a reference", j)
			}
		}
	}
	for c := s.head; c != nil && !seen[c]; c = c.next.Load() {
		seen[c] = true
		check(c)
	}
	s.freeMu.Lock()
	for _, c := range s.free {
		check(c)
	}
	s.freeMu.Unlock()
}

// TestShardConcurrent runs the single-producer/single-consumer pair under
// the race detector: ordering must hold and every item must arrive.
func TestShardConcurrent(t *testing.T) {
	s := NewShard[int]()
	const n = 50_000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			s.Push(i)
		}
	}()
	var buf []int
	want := 0
	for want < n {
		buf = s.DrainInto(buf[:0])
		for _, v := range buf {
			if v != want {
				t.Errorf("got %d, want %d", v, want)
				wg.Wait()
				return
			}
			want++
		}
		// An occasional Pop interleaved with drains exercises both
		// consumer paths; Len is legal from either side.
		if v, ok := s.Pop(); ok {
			if v != want {
				t.Errorf("Pop got %d, want %d", v, want)
				wg.Wait()
				return
			}
			want++
		}
		_ = s.Len()
	}
	wg.Wait()
	if s.Len() != 0 {
		t.Fatalf("Len after consuming all = %d", s.Len())
	}
}
