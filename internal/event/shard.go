package event

import (
	"sync"
	"sync/atomic"
)

// shardChunkSize is the number of items per chunk. A chunk is the unit of
// producer/consumer hand-off and of free-list recycling, so the per-item
// synchronization cost is two atomic counters and the per-chunk cost is
// one (amortized) mutex acquisition.
const shardChunkSize = 256

type shardChunk[T any] struct {
	next atomic.Pointer[shardChunk[T]]
	buf  [shardChunkSize]T
}

// Shard is a single-producer single-consumer FIFO built as a chunked
// linked list: the producing core appends to the tail chunk lock-free and
// the consuming manager drains from the head chunk lock-free, so the
// per-core out-queues become contention-free shards of the global queue
// (the manager's drainAll is the merge point that rebuilds the total
// service order).
//
// Synchronization is two monotonic atomic counters: published (producer)
// and consumed (consumer). A consumer that observes published >= k is, by
// the Go memory model's atomic synchronized-before rule, guaranteed to
// see the producer's write of item k-1; chunk hand-off through the free
// list is ordered by its mutex, which both sides touch at most once per
// shardChunkSize operations. The list grows instead of blocking when the
// producer outruns the consumer, which also makes the type safe for the
// deterministic host, where the same goroutine pushes and later drains.
//
// Snapshot, SnapshotInto, Restore, and Reset require the shard to be
// quiesced (no concurrent producer or consumer) — exactly the checkpoint
// boundaries where they are called.
type Shard[T any] struct {
	published atomic.Int64 // producer-advanced: items ever pushed
	consumed  atomic.Int64 // consumer-advanced: items ever popped

	tail    *shardChunk[T] // producer-owned
	tailPos int            // producer-owned: next write slot in tail

	head    *shardChunk[T] // consumer-owned
	headPos int            // consumer-owned: next read slot in head

	freeMu sync.Mutex
	free   []*shardChunk[T] // guarded by freeMu
}

// NewShard returns an empty shard.
func NewShard[T any]() *Shard[T] {
	c := &shardChunk[T]{}
	return &Shard[T]{head: c, tail: c}
}

// grabChunk pops a recycled chunk or allocates a fresh one (producer
// side). The popped chunk is invisible to the consumer until linked, so
// resetting its next pointer here is race-free.
//
//slacksim:hotpath
//slacksim:pooled
func (s *Shard[T]) grabChunk() *shardChunk[T] {
	s.freeMu.Lock()
	var c *shardChunk[T]
	if n := len(s.free); n > 0 {
		c = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	}
	s.freeMu.Unlock()
	if c == nil {
		c = &shardChunk[T]{} //lint:allow hotpathalloc -- pool warm-up: runs only while the chunk free list is empty
	}
	c.next.Store(nil)
	return c
}

// releaseChunk returns a fully consumed chunk to the free list (consumer
// side). Its slots were zeroed as they were consumed, so the recycled
// chunk pins nothing.
//
//slacksim:hotpath
func (s *Shard[T]) releaseChunk(c *shardChunk[T]) {
	s.freeMu.Lock()
	s.free = append(s.free, c) //lint:allow hotpathalloc -- free-list growth is bounded by the high-water chunk count, then reused forever
	s.freeMu.Unlock()
}

// advanceHead moves the consumer to the next chunk. The caller has
// established that unconsumed published items exist beyond the exhausted
// head chunk, which implies the producer linked next before publishing
// them, so the load cannot observe nil.
//
//slacksim:hotpath
func (s *Shard[T]) advanceHead() *shardChunk[T] {
	old := s.head
	next := old.next.Load()
	s.head = next
	s.headPos = 0
	s.releaseChunk(old)
	return next
}

// Push appends an item (producer only). The fast path is one slot write
// and one atomic add; crossing a chunk boundary additionally takes the
// free-list mutex once.
//
//slacksim:hotpath
func (s *Shard[T]) Push(v T) {
	c := s.tail
	if s.tailPos == shardChunkSize {
		nc := s.grabChunk()
		c.next.Store(nc)
		s.tail = nc
		s.tailPos = 0
		c = nc
	}
	c.buf[s.tailPos] = v
	s.tailPos++
	s.published.Add(1)
}

// Pop removes and returns the head item (consumer only); ok is false when
// empty.
//
//slacksim:hotpath
func (s *Shard[T]) Pop() (v T, ok bool) {
	if s.consumed.Load() == s.published.Load() {
		return v, false
	}
	c := s.head
	if s.headPos == shardChunkSize {
		c = s.advanceHead()
	}
	v = c.buf[s.headPos]
	var zero T
	c.buf[s.headPos] = zero
	s.headPos++
	s.consumed.Add(1)
	return v, true
}

// Len returns the number of queued items (two atomic loads, callable from
// either side; a racing reader may see a push one tick late, which the
// slack protocols already tolerate).
//
//slacksim:hotpath
func (s *Shard[T]) Len() int {
	return int(s.published.Load() - s.consumed.Load())
}

// DrainInto removes every item visible at entry, in order, appending them
// to buf (returned). Consumer only; with a reused buf the steady state
// allocates nothing.
//
//slacksim:hotpath
func (s *Shard[T]) DrainInto(buf []T) []T {
	avail := s.published.Load() - s.consumed.Load()
	for avail > 0 {
		c := s.head
		if s.headPos == shardChunkSize {
			c = s.advanceHead()
		}
		n := shardChunkSize - s.headPos
		if int64(n) > avail {
			n = int(avail)
		}
		buf = append(buf, c.buf[s.headPos:s.headPos+n]...)
		clear(c.buf[s.headPos : s.headPos+n])
		s.headPos += n
		s.consumed.Add(int64(n))
		avail -= int64(n)
	}
	return buf
}

// Snapshot copies the shard contents (quiesced only).
func (s *Shard[T]) Snapshot() []T {
	return s.snapshotAppend(nil)
}

// SnapshotInto copies the shard contents into buf's backing array
// (truncating buf first) and returns it, for incremental checkpoints that
// reuse their buffers. Quiesced only.
//
//slacksim:hotpath
func (s *Shard[T]) SnapshotInto(buf []T) []T {
	return s.snapshotAppend(buf[:0])
}

//slacksim:hotpath
func (s *Shard[T]) snapshotAppend(buf []T) []T {
	n := s.published.Load() - s.consumed.Load()
	c, pos := s.head, s.headPos
	for n > 0 {
		if pos == shardChunkSize {
			c = c.next.Load()
			pos = 0
		}
		k := shardChunkSize - pos
		if int64(k) > n {
			k = int(n)
		}
		buf = append(buf, c.buf[pos:pos+k]...)
		pos += k
		n -= int64(k)
	}
	return buf
}

// Restore replaces the shard contents (quiesced only), reusing chunks.
//
//slacksim:hotpath
func (s *Shard[T]) Restore(items []T) {
	s.Reset()
	for _, v := range items {
		s.Push(v)
	}
}

// Reset empties the shard (quiesced only), recycling every chunk and
// clearing retained values so a pooled shard pins nothing from its
// previous run.
//
//slacksim:hotpath
func (s *Shard[T]) Reset() {
	for c := s.head; c != s.tail; {
		next := c.next.Load()
		clear(c.buf[:])
		c.next.Store(nil)
		s.releaseChunk(c)
		c = next
	}
	clear(s.tail.buf[:])
	s.tail.next.Store(nil)
	s.head = s.tail
	s.headPos = 0
	s.tailPos = 0
	s.published.Store(0)
	s.consumed.Store(0)
}
