package event

import (
	"sync"
	"testing"

	"slacksim/internal/coherence"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int]()
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d, want 5", q.Len())
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty succeeded")
	}
}

func TestQueuePopIf(t *testing.T) {
	q := NewQueue[int]()
	q.Push(10)
	q.Push(3)
	if _, ok := q.PopIf(func(v int) bool { return v < 5 }); ok {
		t.Fatal("PopIf took head that fails predicate")
	}
	v, ok := q.PopIf(func(v int) bool { return v == 10 })
	if !ok || v != 10 {
		t.Fatalf("PopIf = (%d,%v)", v, ok)
	}
	// Head is now 3; the blocked 3 was never reordered past 10.
	v, ok = q.Pop()
	if !ok || v != 3 {
		t.Fatalf("after PopIf, head = (%d,%v)", v, ok)
	}
}

func TestQueuePeekAndDrain(t *testing.T) {
	q := NewQueue[string]()
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty succeeded")
	}
	q.Push("a")
	q.Push("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = (%q,%v)", v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("Peek consumed")
	}
	d := q.Drain()
	if len(d) != 2 || d[0] != "a" || d[1] != "b" {
		t.Fatalf("Drain = %v", d)
	}
	if q.Len() != 0 {
		t.Fatal("Drain left items")
	}
}

func TestQueueSnapshotRestore(t *testing.T) {
	q := NewQueue[int]()
	q.Push(1)
	q.Push(2)
	snap := q.Snapshot()
	q.Pop()
	q.Push(3)
	q.Restore(snap)
	if q.Len() != 2 {
		t.Fatalf("restored Len = %d", q.Len())
	}
	v, _ := q.Pop()
	if v != 1 {
		t.Fatalf("restored head = %d, want 1", v)
	}
	// Restore must copy: mutating the queue must not affect the snapshot.
	if len(snap) != 2 {
		t.Fatal("snapshot changed")
	}
}

func TestQueueConcurrent(t *testing.T) {
	q := NewQueue[int]()
	const n = 1000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i)
		}
	}()
	got := 0
	for got < n {
		if v, ok := q.Pop(); ok {
			if v != got {
				t.Errorf("out of order: %d, want %d", v, got)
				break
			}
			got++
		}
	}
	wg.Wait()
}

func TestRequestString(t *testing.T) {
	r := Request{ID: 3, Core: 1, Kind: coherence.BusRdX, LineAddr: 0x40, TS: 9}
	s := r.String()
	for _, want := range []string{"c1", "#3", "BusRdX", "0x40", "ts=9"} {
		if !contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestMsgString(t *testing.T) {
	m := Msg{Kind: MsgInval, LineAddr: 0x10, NewState: coherence.Invalid, TS: 4}
	if !contains(m.String(), "inval") {
		t.Errorf("Msg.String = %q", m.String())
	}
	m2 := Msg{Kind: MsgReply, ReqID: 7, NewState: coherence.Modified, TS: 8}
	if !contains(m2.String(), "reply") {
		t.Errorf("Msg.String = %q", m2.String())
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
