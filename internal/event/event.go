// Package event defines the timestamped messages exchanged between core
// threads and the simulation manager thread, and the queues that carry
// them: each core owns an outgoing queue (OutQ) and an incoming queue
// (InQ), and the manager consolidates all outstanding work in a global
// queue (GQ), mirroring the SlackSim architecture of the paper's Figure 1.
package event

import (
	"fmt"
	"sync"
	"sync/atomic"

	"slacksim/internal/coherence"
)

// Request is a memory-system transaction sent from a core thread to the
// simulation manager (an L1 miss, upgrade, writeback, or I-fetch miss).
type Request struct {
	// ID is unique within the issuing core and matches the eventual Reply.
	ID uint64
	// Core is the issuing core's index.
	Core int
	// Kind is the bus transaction type.
	Kind coherence.BusReq
	// LineAddr is the line address (byte address >> cache.LineShift).
	LineAddr uint64
	// TS is the issuing core's local time when the request was issued; the
	// manager uses it for arbitration-order monitoring and reply timing.
	TS int64
}

// String renders the request for traces.
func (r Request) String() string {
	return fmt.Sprintf("req{c%d #%d %s line=%#x ts=%d}", r.Core, r.ID, r.Kind, r.LineAddr, r.TS)
}

// MsgKind distinguishes manager-to-core messages.
type MsgKind uint8

// Manager-to-core message kinds.
const (
	// MsgReply completes one of the core's own requests.
	MsgReply MsgKind = iota
	// MsgInval snoop-invalidates or downgrades a line in the core's L1.
	MsgInval
)

// Msg is a manager-to-core message delivered through the core's InQ.
type Msg struct {
	Kind MsgKind
	// ReqID echoes Request.ID for MsgReply.
	ReqID uint64
	// LineAddr is the affected line.
	LineAddr uint64
	// NewState is the L1's state after this message is applied: the grant
	// state for replies, S or I for snoops.
	NewState coherence.State
	// TS is the simulated time at which the message takes effect (data
	// ready time for replies). The core consumes a reply when its local
	// time reaches TS, per the paper's InQ protocol.
	TS int64
}

// String renders the message for traces.
func (m Msg) String() string {
	k := "reply"
	if m.Kind == MsgInval {
		k = "inval"
	}
	return fmt.Sprintf("msg{%s #%d line=%#x ->%s ts=%d}", k, m.ReqID, m.LineAddr, m.NewState, m.TS)
}

// Queue is a FIFO of manager-to-core messages or core-to-manager requests.
// It is safe for one producer and one consumer running concurrently (the
// parallel host) and trivially safe in the deterministic host.
//
// The queue keeps a head index into a reused backing array instead of
// re-slicing on every Pop, so steady-state push/pop traffic allocates
// nothing: when the queue empties, the whole backing array is reclaimed
// for the next burst.
//
// A size counter maintained atomically inside the critical sections lets
// Len and the is-it-empty checks in Pop/PopIf/Peek/DrainInto skip the
// mutex entirely. Queues are empty most ticks, so the hot paths become a
// single atomic load. A reader that races a concurrent Push may see the
// queue as empty one tick early — indistinguishable from having run just
// before the Push, which the slack protocols already tolerate; once a
// Push completes (its mutex release and the pacing publication that
// follows it), the counter is visible to every later reader.
type Queue[T any] struct {
	mu    sync.Mutex
	size  atomic.Int64
	items []T
	head  int
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Push appends an item.
func (q *Queue[T]) Push(v T) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.size.Add(1)
	q.mu.Unlock()
}

// popLocked removes the head item; the caller holds q.mu and has checked
// the queue is non-empty.
//
//slacksim:hotpath
func (q *Queue[T]) popLocked() T {
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero // release references for pointerful T
	q.head++
	q.size.Add(-1)
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

// Pop removes and returns the head item; ok is false when empty.
//
//slacksim:hotpath
func (q *Queue[T]) Pop() (v T, ok bool) {
	if q.size.Load() == 0 {
		return v, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return v, false
	}
	return q.popLocked(), true
}

// PopIf removes and returns the head item only when pred accepts it.
//
//slacksim:hotpath
func (q *Queue[T]) PopIf(pred func(T) bool) (v T, ok bool) {
	if q.size.Load() == 0 {
		return v, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) || !pred(q.items[q.head]) {
		return v, false
	}
	return q.popLocked(), true
}

// Peek returns the head item without removing it.
//
//slacksim:hotpath
func (q *Queue[T]) Peek() (v T, ok bool) {
	if q.size.Load() == 0 {
		return v, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return v, false
	}
	return q.items[q.head], true
}

// Len returns the number of queued items (a single atomic load).
//
//slacksim:hotpath
func (q *Queue[T]) Len() int {
	return int(q.size.Load())
}

// Drain removes and returns all items in order. The returned slice is
// freshly owned by the caller; the queue keeps its backing array.
func (q *Queue[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return nil
	}
	out := append([]T(nil), q.items[q.head:]...)
	clear(q.items)
	q.items = q.items[:0]
	q.head = 0
	q.size.Store(0)
	return out
}

// DrainInto removes all items in order, appending them to buf (which is
// returned). A single lock acquisition replaces the per-item Pop loop on
// the manager's hot path, and with a reused buf it allocates nothing.
//
//slacksim:hotpath
func (q *Queue[T]) DrainInto(buf []T) []T {
	if q.size.Load() == 0 {
		return buf
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		return buf
	}
	buf = append(buf, q.items[q.head:]...)
	clear(q.items)
	q.items = q.items[:0]
	q.head = 0
	q.size.Store(0)
	return buf
}

// Snapshot copies the queue contents.
func (q *Queue[T]) Snapshot() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]T(nil), q.items[q.head:]...)
}

// SnapshotInto copies the queue contents into buf's backing array
// (truncating buf first) and returns it, for incremental checkpoints
// that reuse their buffers.
//
//slacksim:hotpath
func (q *Queue[T]) SnapshotInto(buf []T) []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append(buf[:0], q.items[q.head:]...)
}

// Restore replaces the queue contents, reusing the backing array.
//
//slacksim:hotpath
func (q *Queue[T]) Restore(items []T) {
	q.mu.Lock()
	clear(q.items)
	q.items = append(q.items[:0], items...)
	q.head = 0
	q.size.Store(int64(len(items)))
	q.mu.Unlock()
}
