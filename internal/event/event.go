// Package event defines the timestamped messages exchanged between core
// threads and the simulation manager thread, and the queues that carry
// them: each core owns an outgoing queue (OutQ) and an incoming queue
// (InQ), and the manager consolidates all outstanding work in a global
// queue (GQ), mirroring the SlackSim architecture of the paper's Figure 1.
package event

import (
	"fmt"
	"sync"

	"slacksim/internal/coherence"
)

// Request is a memory-system transaction sent from a core thread to the
// simulation manager (an L1 miss, upgrade, writeback, or I-fetch miss).
type Request struct {
	// ID is unique within the issuing core and matches the eventual Reply.
	ID uint64
	// Core is the issuing core's index.
	Core int
	// Kind is the bus transaction type.
	Kind coherence.BusReq
	// LineAddr is the line address (byte address >> cache.LineShift).
	LineAddr uint64
	// TS is the issuing core's local time when the request was issued; the
	// manager uses it for arbitration-order monitoring and reply timing.
	TS int64
}

// String renders the request for traces.
func (r Request) String() string {
	return fmt.Sprintf("req{c%d #%d %s line=%#x ts=%d}", r.Core, r.ID, r.Kind, r.LineAddr, r.TS)
}

// MsgKind distinguishes manager-to-core messages.
type MsgKind uint8

// Manager-to-core message kinds.
const (
	// MsgReply completes one of the core's own requests.
	MsgReply MsgKind = iota
	// MsgInval snoop-invalidates or downgrades a line in the core's L1.
	MsgInval
)

// Msg is a manager-to-core message delivered through the core's InQ.
type Msg struct {
	Kind MsgKind
	// ReqID echoes Request.ID for MsgReply.
	ReqID uint64
	// LineAddr is the affected line.
	LineAddr uint64
	// NewState is the L1's state after this message is applied: the grant
	// state for replies, S or I for snoops.
	NewState coherence.State
	// TS is the simulated time at which the message takes effect (data
	// ready time for replies). The core consumes a reply when its local
	// time reaches TS, per the paper's InQ protocol.
	TS int64
}

// String renders the message for traces.
func (m Msg) String() string {
	k := "reply"
	if m.Kind == MsgInval {
		k = "inval"
	}
	return fmt.Sprintf("msg{%s #%d line=%#x ->%s ts=%d}", k, m.ReqID, m.LineAddr, m.NewState, m.TS)
}

// Queue is a FIFO of manager-to-core messages or core-to-manager requests.
// It is safe for one producer and one consumer running concurrently (the
// parallel host) and trivially safe in the deterministic host.
type Queue[T any] struct {
	mu    sync.Mutex
	items []T
}

// NewQueue returns an empty queue.
func NewQueue[T any]() *Queue[T] { return &Queue[T]{} }

// Push appends an item.
func (q *Queue[T]) Push(v T) {
	q.mu.Lock()
	q.items = append(q.items, v)
	q.mu.Unlock()
}

// Pop removes and returns the head item; ok is false when empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// PopIf removes and returns the head item only when pred accepts it.
func (q *Queue[T]) PopIf(pred func(T) bool) (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 || !pred(q.items[0]) {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return v, false
	}
	return q.items[0], true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Drain removes and returns all items in order.
func (q *Queue[T]) Drain() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.items
	q.items = nil
	return out
}

// Snapshot copies the queue contents.
func (q *Queue[T]) Snapshot() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]T(nil), q.items...)
}

// Restore replaces the queue contents.
func (q *Queue[T]) Restore(items []T) {
	q.mu.Lock()
	q.items = append([]T(nil), items...)
	q.mu.Unlock()
}
