package event

import (
	"math/rand"
	"sort"
	"testing"
)

// TestBandsTakeBelowExact drives random adds and takes and checks that
// TakeBelow releases exactly the items with ts < horizon, independent of
// where the band window sits.
func TestBandsTakeBelowExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBands[int](4)
	pending := map[int]int64{} // value -> ts
	next := 0
	var horizon int64
	var buf []int
	for step := 0; step < 2000; step++ {
		if rng.Intn(3) > 0 {
			// Mostly-forward timestamps with occasional late arrivals below
			// the horizon (routine under slack).
			ts := horizon + int64(rng.Intn(100)) - 8
			b.Add(ts, next)
			pending[next] = ts
			next++
			continue
		}
		horizon += int64(rng.Intn(64))
		buf = b.TakeBelow(horizon, buf[:0])
		for _, v := range buf {
			ts, ok := pending[v]
			if !ok {
				t.Fatalf("step %d: took %d twice", step, v)
			}
			if ts >= horizon {
				t.Fatalf("step %d: took item ts=%d at horizon %d", step, ts, horizon)
			}
			delete(pending, v)
		}
		for v, ts := range pending {
			if ts < horizon {
				t.Fatalf("step %d: item %d ts=%d left behind at horizon %d", step, v, ts, horizon)
			}
		}
		if b.Len() != len(pending) {
			t.Fatalf("step %d: Len=%d want %d", step, b.Len(), len(pending))
		}
	}
}

// TestBandsRecycleNoAliasing asserts that band slices returned to the
// free list (both the wholesale TakeBelow path and the Add rebase path)
// are cleared first: a recycled backing array must not pin references to
// items that were already taken, or for pointerful payloads the retained
// reference would keep target-memory state alive past rollback.
func TestBandsRecycleNoAliasing(t *testing.T) {
	b := NewBands[*int](2) // 4 timestamps per band
	mk := func(i int) *int { v := i; return &v }
	var buf []*int

	// Several windows of wholesale takes: every fully-consumed band goes
	// through the free list.
	for round := 0; round < 5; round++ {
		base := int64(round * 1000)
		for i := 0; i < 40; i++ {
			b.Add(base+int64(i), mk(i))
		}
		buf = b.TakeBelow(base+100, buf[:0])
		if len(buf) != 40 {
			t.Fatalf("round %d: took %d items, want 40", round, len(buf))
		}
		assertRecycledCleared(t, b)
	}

	// The rebase path: grow a wide window, empty it, then Add far ahead so
	// every band but the first is recycled in one shot.
	for i := 0; i < 64; i++ {
		b.Add(int64(i*4), mk(i))
	}
	buf = b.TakeBelow(1<<20, buf[:0])
	if len(buf) != 64 {
		t.Fatalf("wide window: took %d items, want 64", len(buf))
	}
	b.Add(1<<21, mk(0))
	assertRecycledCleared(t, b)
}

func assertRecycledCleared(t *testing.T, b *Bands[*int]) {
	t.Helper()
	for i, s := range b.free {
		full := s[:cap(s)]
		for j := range full {
			if full[j].v != nil || full[j].ts != 0 {
				t.Fatalf("free slice %d retains item {ts=%d} at index %d after recycle", i, full[j].ts, j)
			}
		}
	}
	// Live bands must not pin anything past their logical length either
	// (the boundary-filter and late-bucket paths clear their tails).
	for i, s := range b.bands {
		full := s[:cap(s)]
		for j := len(s); j < len(full); j++ {
			if full[j].v != nil {
				t.Fatalf("band %d tail retains an item reference at index %d", i, j)
			}
		}
	}
	full := b.late[:cap(b.late)]
	for j := len(b.late); j < len(full); j++ {
		if full[j].v != nil {
			t.Fatalf("late bucket tail retains an item reference at index %d", j)
		}
	}
}

// TestBandsInsertionOrderWithinBand pins the wholesale path's contract:
// items of one band come out in insertion order (callers impose their own
// total order on the merged result).
func TestBandsInsertionOrderWithinBand(t *testing.T) {
	b := NewBands[int](6) // one band covers 64 timestamps
	for i := 0; i < 10; i++ {
		b.Add(int64(i%4), i)
	}
	got := b.TakeBelow(64, nil)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("band items out of insertion order: %v", got)
	}
}
