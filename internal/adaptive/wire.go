package adaptive

import (
	"bytes"
	"encoding/gob"
)

// Wire serialization for run snapshots: the whole controller is plain
// scalar state plus its (validated) configuration.

type controllerWire struct {
	Cfg    Config
	Policy Policy
	Bound  int64

	Adjustments, Holds uint64
	BoundSum           float64
	Samples            uint64
}

// GobEncode implements gob.GobEncoder.
func (c *Controller) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(controllerWire{
		Cfg: c.cfg, Policy: c.policy, Bound: c.bound,
		Adjustments: c.Adjustments, Holds: c.Holds,
		BoundSum: c.boundSum, Samples: c.samples,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (c *Controller) GobDecode(data []byte) error {
	var w controllerWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if err := w.Cfg.Validate(); err != nil {
		return err
	}
	*c = Controller{
		cfg: w.Cfg, policy: w.Policy, bound: w.Bound,
		Adjustments: w.Adjustments, Holds: w.Holds,
		boundSum: w.BoundSum, samples: w.Samples,
	}
	return nil
}
