package adaptive

import (
	"testing"
	"testing/quick"
)

func cfg() Config {
	c := DefaultConfig()
	c.InitialBound = 8
	return c
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := []Config{
		{TargetRate: 0, Band: 0, InitialBound: 1, MinBound: 1, MaxBound: 2, Period: 1},
		{TargetRate: 0.1, Band: -1, InitialBound: 1, MinBound: 1, MaxBound: 2, Period: 1},
		{TargetRate: 0.1, Band: 0, InitialBound: 1, MinBound: 0, MaxBound: 2, Period: 1},
		{TargetRate: 0.1, Band: 0, InitialBound: 1, MinBound: 2, MaxBound: 1, Period: 1},
		{TargetRate: 0.1, Band: 0, InitialBound: 5, MinBound: 1, MaxBound: 2, Period: 1},
		{TargetRate: 0.1, Band: 0, InitialBound: 1, MinBound: 1, MaxBound: 2, Period: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(bad[0]); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestIncreaseWhenQuiet(t *testing.T) {
	c := MustNew(cfg())
	b0 := c.Bound()
	b1 := c.Update(0) // no violations at all
	if b1 != b0+1 {
		t.Errorf("bound %d -> %d, want +1", b0, b1)
	}
	if c.Adjustments != 1 {
		t.Errorf("Adjustments = %d", c.Adjustments)
	}
}

func TestDecreaseWhenNoisy(t *testing.T) {
	conf := cfg()
	conf.InitialBound = 100
	c := MustNew(conf)
	b := c.Update(conf.TargetRate * 10)
	if b >= 100 {
		t.Errorf("bound did not decrease: %d", b)
	}
	// AIMD: the cut is multiplicative (bound/4 = 25).
	if b != 75 {
		t.Errorf("AIMD cut to %d, want 75", b)
	}
}

func TestAIADPolicy(t *testing.T) {
	conf := cfg()
	conf.InitialBound = 100
	c := MustNew(conf)
	c.SetPolicy(AIAD)
	if b := c.Update(conf.TargetRate * 10); b != 99 {
		t.Errorf("AIAD cut to %d, want 99", b)
	}
}

func TestHoldInsideBand(t *testing.T) {
	c := MustNew(cfg())
	b0 := c.Bound()
	// 3% above target with a 5% band: hold.
	if b := c.Update(c.Config().TargetRate * 1.03); b != b0 {
		t.Errorf("bound moved inside band: %d -> %d", b0, b)
	}
	if c.Holds != 1 || c.Adjustments != 0 {
		t.Errorf("holds=%d adjustments=%d", c.Holds, c.Adjustments)
	}
}

func TestClamping(t *testing.T) {
	conf := cfg()
	conf.MinBound, conf.MaxBound = 2, 10
	conf.InitialBound = 10
	c := MustNew(conf)
	if b := c.Update(0); b != 10 {
		t.Errorf("bound exceeded max: %d", b)
	}
	for i := 0; i < 20; i++ {
		c.Update(1) // very noisy
	}
	if c.Bound() != 2 {
		t.Errorf("bound below min or stuck: %d", c.Bound())
	}
}

func TestMeanBound(t *testing.T) {
	c := MustNew(cfg())
	if c.MeanBound() != 0 {
		t.Error("mean before updates not 0")
	}
	c.Update(0) // 9
	c.Update(0) // 10
	if got := c.MeanBound(); got != 9.5 {
		t.Errorf("MeanBound = %v, want 9.5", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	c := MustNew(cfg())
	c.Update(0)
	snap := c.Snapshot()
	c.Update(0)
	c.Update(0)
	c.Restore(snap)
	if c.Bound() != snap.Bound() || c.Adjustments != snap.Adjustments {
		t.Error("restore mismatch")
	}
}

// Property: the bound always stays within [MinBound, MaxBound] under any
// rate sequence.
func TestQuickBoundStaysClamped(t *testing.T) {
	conf := cfg()
	prop := func(rates []float64) bool {
		c := MustNew(conf)
		for _, r := range rates {
			if r < 0 {
				r = -r
			}
			b := c.Update(r)
			if b < conf.MinBound || b > conf.MaxBound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property of the feedback direction: above the band the bound never
// grows; below it never shrinks.
func TestQuickMonotoneResponse(t *testing.T) {
	conf := cfg()
	c := MustNew(conf)
	for i := 0; i < 100; i++ {
		before := c.Bound()
		after := c.Update(conf.TargetRate * 3)
		if after > before {
			t.Fatal("bound grew while too noisy")
		}
	}
	for i := 0; i < 100; i++ {
		before := c.Bound()
		after := c.Update(0)
		if after < before {
			t.Fatal("bound shrank while quiet")
		}
	}
}
