// Package adaptive implements the paper's adaptive slack controller
// ("slack throttling", Section 4): a feedback loop that adjusts the slack
// bound of a bounded slack simulation to hold the cumulative simulation
// violation rate at a preset target. The violation rate is the chosen
// proxy for simulation error because it is cheap to track dynamically and
// correlates with errors on the metrics of interest.
//
// The controller implements the paper's violation band: while the current
// rate stays within target·(1±band), the bound is left alone, which
// reduces adjustment overhead (the paper observes wider bands give
// shorter simulation times).
package adaptive

import "fmt"

// Config parameterizes the controller.
type Config struct {
	// TargetRate is the desired violations-per-cycle (e.g. 0.0001 for the
	// paper's 0.01%).
	TargetRate float64
	// Band is the violation band as a fraction of TargetRate (0.05 means
	// no adjustment while rate is within 95%..105% of target).
	Band float64
	// InitialBound is the slack bound before the first adjustment.
	InitialBound int64
	// MinBound and MaxBound clamp the bound. MinBound is "the lowest
	// possible value for the slack bound" of the paper.
	MinBound, MaxBound int64
	// Period is the number of global cycles between adjustments.
	Period int64
}

// DefaultConfig returns the controller settings used throughout the
// experiments: the paper's base target of 0.01% with a 5% band.
func DefaultConfig() Config {
	return Config{
		TargetRate:   0.0001,
		Band:         0.05,
		InitialBound: 4,
		MinBound:     1,
		MaxBound:     512,
		Period:       1024,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TargetRate <= 0 {
		return fmt.Errorf("adaptive: target rate must be positive")
	}
	if c.Band < 0 {
		return fmt.Errorf("adaptive: band must be non-negative")
	}
	if c.MinBound < 1 || c.MaxBound < c.MinBound {
		return fmt.Errorf("adaptive: need 1 <= MinBound <= MaxBound")
	}
	if c.InitialBound < c.MinBound || c.InitialBound > c.MaxBound {
		return fmt.Errorf("adaptive: initial bound %d outside [%d,%d]",
			c.InitialBound, c.MinBound, c.MaxBound)
	}
	if c.Period <= 0 {
		return fmt.Errorf("adaptive: period must be positive")
	}
	return nil
}

// Policy selects how the bound moves when outside the band.
type Policy uint8

// Adjustment policies. AIMD (additive increase, multiplicative decrease)
// is the default; AIAD (additive both ways) exists for the ablation bench.
const (
	AIMD Policy = iota
	AIAD
)

// Controller holds the feedback-loop state.
type Controller struct {
	cfg    Config
	policy Policy
	bound  int64

	// Adjustments counts bound changes; Holds counts update calls that
	// landed inside the violation band.
	Adjustments, Holds uint64

	boundSum float64
	samples  uint64
}

// New returns a controller with cfg (validated) and the AIMD policy.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg, bound: cfg.InitialBound}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Controller {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// SetPolicy selects the adjustment policy (ablation hook).
func (c *Controller) SetPolicy(p Policy) { c.policy = p }

// Bound returns the current slack bound.
func (c *Controller) Bound() int64 { return c.bound }

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Update feeds the current cumulative violation rate and returns the
// (possibly adjusted) slack bound: increase when violations are too rare,
// decrease when too frequent, hold inside the band.
func (c *Controller) Update(rate float64) int64 {
	c.samples++
	defer func() { c.boundSum += float64(c.bound) }()
	lo := c.cfg.TargetRate * (1 - c.cfg.Band)
	hi := c.cfg.TargetRate * (1 + c.cfg.Band)
	switch {
	case rate < lo:
		if c.bound < c.cfg.MaxBound {
			c.bound++
			c.Adjustments++
		}
	case rate > hi:
		if c.bound > c.cfg.MinBound {
			step := int64(1)
			if c.policy == AIMD {
				if s := c.bound / 4; s > 1 {
					step = s
				}
			}
			c.bound -= step
			if c.bound < c.cfg.MinBound {
				c.bound = c.cfg.MinBound
			}
			c.Adjustments++
		}
	default:
		c.Holds++
	}
	return c.bound
}

// MeanBound returns the average bound over all updates (0 before any).
func (c *Controller) MeanBound() float64 {
	if c.samples == 0 {
		return 0
	}
	return c.boundSum / float64(c.samples)
}

// Snapshot copies the controller state.
func (c *Controller) Snapshot() *Controller {
	n := *c
	return &n
}

// Restore overwrites the controller from a snapshot.
func (c *Controller) Restore(snap *Controller) { *c = *snap }
