// Package stress generates randomized short simulation configurations and
// executes them with liveness and cross-host equivalence checks. It is the
// engine behind both the `go test` stress harness
// (internal/engine/stress_test.go) and the standalone cmd/stress driver:
// hundreds of tiny runs across scheme × core count × checkpoint interval ×
// seed, each bounded by the parallel host's stall watchdog so a pacing
// deadlock fails with a structured dump instead of hanging, and — for the
// cycle-by-cycle scheme — asserted to match the deterministic host
// cycle-for-cycle.
package stress

import (
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"slacksim/internal/adaptive"
	"slacksim/internal/engine"
	"slacksim/internal/mem"
	"slacksim/internal/workload"
)

// Config is one randomized stress scenario. The workload sizes are
// deliberately tiny (tens to a few thousand target cycles) so hundreds of
// scenarios fit in one `go test -race` run.
type Config struct {
	// Seed drives the deterministic host's scheduling for this scenario.
	Seed int64
	// Cores is the target core count (always a power of two so every
	// workload accepts it; includes the n=1 edge).
	Cores int
	// Workload names one of the tiny stress workloads (see build).
	Workload string
	// Scheme is the synchronization scheme under test.
	Scheme engine.Scheme
	// CheckpointInterval, when positive, checkpoints every that many
	// cycles (including intervals far beyond the halt time, the
	// all-cores-retire-before-checkpoint edge).
	CheckpointInterval int64
	// MaxCycles, when positive, truncates the run at the horizon.
	MaxCycles int64
	// MaxInstructions, when positive, stops the run at a commit cap. The
	// stopping cycle is host-scheduling dependent, so equivalence checks
	// are skipped for such configs (liveness and horizon checks still run).
	MaxInstructions uint64
	// Rollback enables speculative slack simulation (deterministic host
	// only; the parallel host rejects it).
	Rollback bool
	// DeepCheckpoint selects the reference deep-copy checkpoint path.
	DeepCheckpoint bool
	// StallTimeout is the parallel host's watchdog budget for this run.
	StallTimeout time.Duration
}

// String renders the scenario compactly for failure messages.
func (c Config) String() string {
	return fmt.Sprintf("seed=%d cores=%d wl=%s scheme=%s ckpt=%d maxcycles=%d maxinst=%d rollback=%v",
		c.Seed, c.Cores, c.Workload, c.Scheme.Name(),
		c.CheckpointInterval, c.MaxCycles, c.MaxInstructions, c.Rollback)
}

// truncated reports whether the run may stop before the programs halt, in
// which case the functional memory image cannot be verified.
func (c Config) truncated() bool { return c.MaxCycles > 0 || c.MaxInstructions > 0 }

// build constructs the scenario's workload.
func (c Config) build() (engine.Workload, error) {
	switch c.Workload {
	case "private":
		return workload.NewPrivate(32, 1), nil
	case "private-long":
		return workload.NewPrivate(64, 2), nil
	case "falseshare":
		return workload.NewFalseShare(12), nil
	case "fft":
		return workload.NewFFT(8), nil
	case "lu":
		return workload.NewLU(4), nil
	}
	return nil, fmt.Errorf("stress: unknown workload %q", c.Workload)
}

// runConfig translates the scenario into an engine.RunConfig.
func (c Config) runConfig() engine.RunConfig {
	return engine.RunConfig{
		Scheme:             c.Scheme,
		Seed:               c.Seed,
		CheckpointInterval: c.CheckpointInterval,
		MaxCycles:          c.MaxCycles,
		MaxInstructions:    c.MaxInstructions,
		Rollback:           c.Rollback,
		DeepCheckpoint:     c.DeepCheckpoint,
		StallTimeout:       c.StallTimeout,
	}
}

// verifier is implemented by all stress workloads (functional check of the
// simulated memory image against a Go reference).
type verifier interface {
	Verify(*mem.Memory) error
}

// Result is the outcome of one executed scenario.
type Result struct {
	// Par is the parallel host's result.
	Par engine.Results
	// Det is the deterministic host's result when the scenario was
	// equivalence-eligible (CC without an instruction cap), else nil.
	Det *engine.Results
}

// Execute runs one scenario: the parallel host under the stall watchdog,
// the horizon invariant (no core clock past MaxCycles), the functional
// check when the run is not truncated, and — for equivalence-eligible
// configs — a deterministic-host run compared cycle-for-cycle.
func Execute(c Config) (Result, error) {
	w, err := c.build()
	if err != nil {
		return Result{}, err
	}
	mp, err := engine.NewMachine(engine.MachineConfig{NumCores: c.Cores}, w)
	if err != nil {
		return Result{}, fmt.Errorf("stress: build machine: %w", err)
	}
	par, err := engine.RunParallel(mp, c.runConfig())
	if err != nil {
		return Result{}, fmt.Errorf("stress: parallel host: %w", err)
	}
	if err := checkHorizon(c, par); err != nil {
		return Result{}, err
	}
	if !c.truncated() {
		if err := w.(verifier).Verify(mp.Memory()); err != nil {
			return Result{}, fmt.Errorf("stress: parallel host functional: %w", err)
		}
	}
	res := Result{Par: par}
	if c.Scheme.Kind != engine.CC || c.MaxInstructions > 0 {
		return res, nil
	}
	md, err := engine.NewMachine(engine.MachineConfig{NumCores: c.Cores}, w)
	if err != nil {
		return Result{}, fmt.Errorf("stress: build machine: %w", err)
	}
	det, err := engine.Run(md, c.runConfig())
	if err != nil {
		return Result{}, fmt.Errorf("stress: deterministic host: %w", err)
	}
	if !c.truncated() {
		if err := w.(verifier).Verify(md.Memory()); err != nil {
			return Result{}, fmt.Errorf("stress: deterministic host functional: %w", err)
		}
	}
	if err := compareCC(det, par); err != nil {
		return Result{}, err
	}
	res.Det = &det
	return res, nil
}

// ExecuteCheckpointEquivalence runs one scenario three times on the
// deterministic host — once with the reference deep-copy checkpoints,
// once with the default incremental copy-on-write checkpoints, and once
// more incrementally on a RECYCLED machine (the incremental machine put
// through MachinePool and reset, so every pooled structure — caches,
// arenas, free lists, the checkpoint snapshot graph — is reused warm) —
// and demands byte-identical outcomes: the full Results struct
// (wall-clock excepted, the only host-dependent field), the final target
// memory image, the uncore (L2 + status map + MSHRs + bus), and every
// core's architectural and microarchitectural state. This is the
// property that makes the incremental path and machine pooling pure
// optimizations.
func ExecuteCheckpointEquivalence(c Config) error {
	run := func(deep bool) (engine.Results, *engine.Machine, error) {
		w, err := c.build()
		if err != nil {
			return engine.Results{}, nil, err
		}
		m, err := engine.NewMachine(engine.MachineConfig{NumCores: c.Cores}, w)
		if err != nil {
			return engine.Results{}, nil, fmt.Errorf("stress: build machine: %w", err)
		}
		rc := c.runConfig()
		rc.DeepCheckpoint = deep
		res, err := engine.Run(m, rc)
		if err != nil {
			return engine.Results{}, nil, fmt.Errorf("stress: deterministic host (deep=%v): %w", deep, err)
		}
		return res, m, nil
	}
	deepRes, deepM, err := run(true)
	if err != nil {
		return err
	}
	incRes, incM, err := run(false)
	if err != nil {
		return err
	}
	deepRes.WallClock, incRes.WallClock = 0, 0
	if !reflect.DeepEqual(deepRes, incRes) {
		return fmt.Errorf("stress: %s: results diverge between deep and incremental checkpoints:\ndeep:        %+v\nincremental: %+v",
			c, deepRes, incRes)
	}
	if err := compareMachines(c, "deep and incremental checkpoints", deepM, incM); err != nil {
		return err
	}

	// Third leg: recycle the incremental machine through a pool and run
	// the same scenario again on it. A pooled machine's reset must leave
	// no residue — the run on warmed, reused storage must match the deep
	// reference bit for bit too.
	w, err := c.build()
	if err != nil {
		return err
	}
	pool := engine.NewMachinePool()
	pool.Put(incM)
	poolM, err := pool.Get(engine.MachineConfig{NumCores: c.Cores}, w)
	if err != nil {
		return fmt.Errorf("stress: pooled machine get: %w", err)
	}
	if poolM != incM {
		return fmt.Errorf("stress: %s: pool built a fresh machine instead of recycling", c)
	}
	rc := c.runConfig()
	rc.DeepCheckpoint = false
	poolRes, err := engine.Run(poolM, rc)
	if err != nil {
		return fmt.Errorf("stress: deterministic host (pooled): %w", err)
	}
	poolRes.WallClock = 0
	if !reflect.DeepEqual(deepRes, poolRes) {
		return fmt.Errorf("stress: %s: results diverge between deep and pooled incremental runs:\ndeep:   %+v\npooled: %+v",
			c, deepRes, poolRes)
	}
	return compareMachines(c, "deep and pooled incremental runs", deepM, poolM)
}

// compareMachines demands byte-identical final machine state.
func compareMachines(c Config, what string, a, b *engine.Machine) error {
	if !a.Memory().Equal(b.Memory()) {
		return fmt.Errorf("stress: %s: final memory images diverge between %s", c, what)
	}
	if !a.Uncore().StateEqual(b.Uncore()) {
		return fmt.Errorf("stress: %s: final uncore state diverges between %s", c, what)
	}
	ac, bc := a.Cores(), b.Cores()
	for i := range ac {
		if !ac[i].StateEqual(bc[i]) {
			return fmt.Errorf("stress: %s: final core %d state diverges between %s", c, i, what)
		}
	}
	return nil
}

// checkHorizon asserts the MaxCycles invariant: neither the global clock
// nor any per-core clock may pass the simulation horizon.
func checkHorizon(c Config, par engine.Results) error {
	if c.MaxCycles <= 0 {
		return nil
	}
	if par.Cycles > c.MaxCycles {
		return fmt.Errorf("stress: global time %d past horizon %d", par.Cycles, c.MaxCycles)
	}
	for i, s := range par.PerCore {
		if s.Cycles > c.MaxCycles {
			return fmt.Errorf("stress: core %d ticked to %d, past horizon %d", i, s.Cycles, c.MaxCycles)
		}
	}
	return nil
}

// compareCC asserts cycle-for-cycle equivalence of the CC scheme across
// hosts: same global time, same committed instructions, same events
// served, and identical per-core clocks and commit counts. Checkpoint
// counts may differ by one when the run ends exactly on a boundary (the
// deterministic host checkpoints before noticing completion; the parallel
// manager checks completion first).
func compareCC(det, par engine.Results) error {
	if det.Cycles != par.Cycles {
		return fmt.Errorf("stress: CC cycles diverge: deterministic %d vs parallel %d", det.Cycles, par.Cycles)
	}
	if det.Committed != par.Committed {
		return fmt.Errorf("stress: CC committed diverge: deterministic %d vs parallel %d", det.Committed, par.Committed)
	}
	if det.EventsServed != par.EventsServed {
		return fmt.Errorf("stress: CC events diverge: deterministic %d vs parallel %d", det.EventsServed, par.EventsServed)
	}
	if len(det.PerCore) != len(par.PerCore) {
		return fmt.Errorf("stress: per-core count diverge: %d vs %d", len(det.PerCore), len(par.PerCore))
	}
	for i := range det.PerCore {
		d, p := det.PerCore[i], par.PerCore[i]
		if d.Cycles != p.Cycles || d.Committed != p.Committed {
			return fmt.Errorf("stress: CC core %d diverges: deterministic %d cyc/%d inst vs parallel %d cyc/%d inst",
				i, d.Cycles, d.Committed, p.Cycles, p.Committed)
		}
	}
	if d := det.Checkpoints - par.Checkpoints; d < -1 || d > 1 {
		return fmt.Errorf("stress: CC checkpoints diverge: deterministic %d vs parallel %d", det.Checkpoints, par.Checkpoints)
	}
	return nil
}

// defaultStall is the watchdog budget stress scenarios run under: long
// enough for a loaded -race CI machine, short enough to fail a wedged run
// quickly.
const defaultStall = 20 * time.Second

// pick returns a uniformly random element.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// equivalenceWorkloads weights the tiny kernels toward the cheapest ones
// so a 100+ config sweep stays fast under -race; fft/lu still appear for
// barrier-phased and owner-computes sharing.
var equivalenceWorkloads = []string{
	"private", "private", "falseshare", "falseshare", "falseshare", "fft", "lu",
}

// RandomEquivalence draws an equivalence-eligible scenario: the CC scheme
// (whose timing must be host-independent) with randomized core count,
// checkpoint interval, horizon and seed, and no instruction cap.
func RandomEquivalence(rng *rand.Rand) Config {
	c := Config{
		Seed:               rng.Int63n(1 << 30),
		Cores:              pick(rng, []int{1, 2, 2, 4, 4, 8}),
		Workload:           pick(rng, equivalenceWorkloads),
		Scheme:             engine.CycleByCycle(),
		CheckpointInterval: pick(rng, []int64{0, 0, 0, 64, 128, 256}),
		StallTimeout:       defaultStall,
	}
	if rng.Intn(3) == 0 {
		c.MaxCycles = 100 + rng.Int63n(900)
	}
	return c
}

// Random draws a liveness scenario: any scheme, any tiny workload, with
// occasional cycle horizons and instruction caps. Non-CC schemes are not
// equivalence-checked (their timing legitimately depends on host
// interleaving); the scenario still asserts termination, the horizon
// invariant, and functional correctness when untruncated.
func Random(rng *rand.Rand) Config {
	c := Config{
		Seed:               rng.Int63n(1 << 30),
		Cores:              pick(rng, []int{1, 2, 2, 4, 4, 8}),
		Workload:           pick(rng, []string{"private", "private-long", "falseshare", "fft", "lu"}),
		Scheme:             randomScheme(rng),
		CheckpointInterval: pick(rng, []int64{0, 0, 64, 128, 256}),
		StallTimeout:       defaultStall,
	}
	switch rng.Intn(4) {
	case 0:
		c.MaxCycles = 100 + rng.Int63n(900)
	case 1:
		c.MaxInstructions = uint64(200 + rng.Intn(4000))
	}
	return c
}

// RandomSpeculative draws a rollback-heavy scenario for the checkpoint
// equivalence property: a violating slack scheme, a dense checkpoint
// interval, and speculative rollback on, so both checkpoint paths take
// and restore many checkpoints per run.
func RandomSpeculative(rng *rand.Rand) Config {
	c := Config{
		Seed:               rng.Int63n(1 << 30),
		Cores:              pick(rng, []int{2, 2, 4, 4, 8}),
		Workload:           pick(rng, []string{"falseshare", "falseshare", "fft", "lu", "private-long"}),
		Scheme:             speculativeScheme(rng),
		CheckpointInterval: pick(rng, []int64{32, 64, 64, 128, 256}),
		Rollback:           true,
		StallTimeout:       defaultStall,
	}
	if rng.Intn(4) == 0 {
		c.MaxCycles = 200 + rng.Int63n(800)
	}
	return c
}

// speculativeScheme draws a scheme that actually produces violations
// (cycle-by-cycle cannot, so it would never exercise rollback).
func speculativeScheme(rng *rand.Rand) engine.Scheme {
	switch rng.Intn(4) {
	case 0:
		return engine.BoundedSlack(4 + rng.Int63n(60))
	case 1:
		return engine.UnboundedSlack()
	case 2:
		return engine.AdaptiveSlack(adaptive.DefaultConfig())
	default:
		return engine.QuantumScheme(16 + rng.Int63n(112))
	}
}

// randomScheme draws one of the six schemes with randomized parameters.
func randomScheme(rng *rand.Rand) engine.Scheme {
	switch rng.Intn(6) {
	case 0:
		return engine.CycleByCycle()
	case 1:
		return engine.BoundedSlack(1 + rng.Int63n(32))
	case 2:
		return engine.UnboundedSlack()
	case 3:
		return engine.QuantumScheme(8 + rng.Int63n(120))
	case 4:
		return engine.AdaptiveSlack(adaptive.DefaultConfig())
	default:
		return engine.LaxP2PScheme(8+rng.Int63n(56), rng.Int63n(48))
	}
}

// Edges returns the deterministic corner scenarios every sweep includes:
// single-core machines under every scheme (the Lax-P2P n=1 partner-pick
// panic regression), all-cores-retire-before-the-first-checkpoint, and a
// run whose horizon lands exactly on a checkpoint boundary.
func Edges() []Config {
	singleCore := []engine.Scheme{
		engine.CycleByCycle(),
		engine.BoundedSlack(8),
		engine.UnboundedSlack(),
		engine.QuantumScheme(64),
		engine.AdaptiveSlack(adaptive.DefaultConfig()),
		engine.LaxP2PScheme(16, 8),
	}
	var cfgs []Config
	for _, s := range singleCore {
		cfgs = append(cfgs, Config{
			Seed: 1, Cores: 1, Workload: "private", Scheme: s,
			StallTimeout: defaultStall,
		})
	}
	cfgs = append(cfgs,
		// All cores halt long before the first checkpoint boundary.
		Config{Seed: 2, Cores: 4, Workload: "falseshare", Scheme: engine.CycleByCycle(),
			CheckpointInterval: 1 << 20, StallTimeout: defaultStall},
		// Horizon exactly on a checkpoint boundary.
		Config{Seed: 3, Cores: 2, Workload: "private-long", Scheme: engine.CycleByCycle(),
			CheckpointInterval: 64, MaxCycles: 256, StallTimeout: defaultStall},
		// Horizon with unbounded slack: the clamp is the only wall.
		Config{Seed: 4, Cores: 4, Workload: "private-long", Scheme: engine.UnboundedSlack(),
			MaxCycles: 200, StallTimeout: defaultStall},
	)
	return cfgs
}
