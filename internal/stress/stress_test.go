package stress

import (
	"math/rand"
	"testing"

	"slacksim/internal/engine"
)

// TestGeneratorsProduceValidConfigs: every drawn scenario must have a
// valid scheme, a power-of-two core count every workload accepts, and a
// buildable workload.
func TestGeneratorsProduceValidConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		for _, cfg := range []Config{RandomEquivalence(rng), Random(rng)} {
			if err := cfg.Scheme.Validate(); err != nil {
				t.Fatalf("draw %d {%s}: invalid scheme: %v", i, cfg, err)
			}
			if cfg.Cores < 1 || cfg.Cores&(cfg.Cores-1) != 0 {
				t.Fatalf("draw %d {%s}: core count not a power of two", i, cfg)
			}
			if _, err := cfg.build(); err != nil {
				t.Fatalf("draw %d {%s}: %v", i, cfg, err)
			}
			if cfg.StallTimeout <= 0 {
				t.Fatalf("draw %d {%s}: watchdog disabled", i, cfg)
			}
			if cfg.String() == "" {
				t.Fatalf("draw %d: empty description", i)
			}
		}
	}
}

// TestEquivalenceDrawsAreEligible: RandomEquivalence must only produce CC
// scenarios without instruction caps, so Execute always cross-checks them.
func TestEquivalenceDrawsAreEligible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		cfg := RandomEquivalence(rng)
		if cfg.Scheme.Kind != engine.CC {
			t.Fatalf("draw %d {%s}: not CC", i, cfg)
		}
		if cfg.MaxInstructions != 0 {
			t.Fatalf("draw %d {%s}: instruction cap breaks equivalence", i, cfg)
		}
	}
}

// TestExecuteReportsDivergence: a non-CC scheme must not be
// equivalence-checked, and a CC run must be.
func TestExecuteReportsDivergence(t *testing.T) {
	cc := Config{Seed: 1, Cores: 2, Workload: "private", Scheme: engine.CycleByCycle(),
		StallTimeout: defaultStall}
	res, err := Execute(cc)
	if err != nil {
		t.Fatalf("CC scenario: %v", err)
	}
	if res.Det == nil {
		t.Fatal("CC scenario was not cross-checked")
	}
	su := cc
	su.Scheme = engine.UnboundedSlack()
	res, err = Execute(su)
	if err != nil {
		t.Fatalf("SU scenario: %v", err)
	}
	if res.Det != nil {
		t.Fatal("SU scenario was cross-checked; SU timing is host-dependent")
	}
}

// TestCompareCCCatchesDivergence: the comparator itself must flag each
// divergence axis.
func TestCompareCCCatchesDivergence(t *testing.T) {
	base := engine.Results{Cycles: 100, Committed: 50, EventsServed: 7}
	if err := compareCC(base, base); err != nil {
		t.Fatalf("identical results flagged: %v", err)
	}
	for name, mutate := range map[string]func(*engine.Results){
		"cycles":    func(r *engine.Results) { r.Cycles++ },
		"committed": func(r *engine.Results) { r.Committed++ },
		"events":    func(r *engine.Results) { r.EventsServed++ },
		"ckpts":     func(r *engine.Results) { r.Checkpoints += 2 },
	} {
		par := base
		mutate(&par)
		if err := compareCC(base, par); err == nil {
			t.Errorf("%s divergence not flagged", name)
		}
	}
	// A one-checkpoint difference is the tolerated boundary coincidence.
	par := base
	par.Checkpoints = base.Checkpoints + 1
	if err := compareCC(base, par); err != nil {
		t.Errorf("±1 checkpoint tolerance missing: %v", err)
	}
}
