package stress

import (
	"math/rand"
	"testing"

	"slacksim/internal/engine"
)

// TestGeneratorsProduceValidConfigs: every drawn scenario must have a
// valid scheme, a power-of-two core count every workload accepts, and a
// buildable workload.
func TestGeneratorsProduceValidConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		for _, cfg := range []Config{RandomEquivalence(rng), Random(rng), RandomSpeculative(rng)} {
			if err := cfg.Scheme.Validate(); err != nil {
				t.Fatalf("draw %d {%s}: invalid scheme: %v", i, cfg, err)
			}
			if cfg.Cores < 1 || cfg.Cores&(cfg.Cores-1) != 0 {
				t.Fatalf("draw %d {%s}: core count not a power of two", i, cfg)
			}
			if _, err := cfg.build(); err != nil {
				t.Fatalf("draw %d {%s}: %v", i, cfg, err)
			}
			if cfg.StallTimeout <= 0 {
				t.Fatalf("draw %d {%s}: watchdog disabled", i, cfg)
			}
			if cfg.String() == "" {
				t.Fatalf("draw %d: empty description", i)
			}
		}
	}
}

// TestEquivalenceDrawsAreEligible: RandomEquivalence must only produce CC
// scenarios without instruction caps, so Execute always cross-checks them.
func TestEquivalenceDrawsAreEligible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		cfg := RandomEquivalence(rng)
		if cfg.Scheme.Kind != engine.CC {
			t.Fatalf("draw %d {%s}: not CC", i, cfg)
		}
		if cfg.MaxInstructions != 0 {
			t.Fatalf("draw %d {%s}: instruction cap breaks equivalence", i, cfg)
		}
	}
}

// TestExecuteReportsDivergence: a non-CC scheme must not be
// equivalence-checked, and a CC run must be.
func TestExecuteReportsDivergence(t *testing.T) {
	cc := Config{Seed: 1, Cores: 2, Workload: "private", Scheme: engine.CycleByCycle(),
		StallTimeout: defaultStall}
	res, err := Execute(cc)
	if err != nil {
		t.Fatalf("CC scenario: %v", err)
	}
	if res.Det == nil {
		t.Fatal("CC scenario was not cross-checked")
	}
	su := cc
	su.Scheme = engine.UnboundedSlack()
	res, err = Execute(su)
	if err != nil {
		t.Fatalf("SU scenario: %v", err)
	}
	if res.Det != nil {
		t.Fatal("SU scenario was cross-checked; SU timing is host-dependent")
	}
}

// TestSpeculativeDrawsExerciseRollback: RandomSpeculative must always
// checkpoint and roll back under a scheme that can violate.
func TestSpeculativeDrawsExerciseRollback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		cfg := RandomSpeculative(rng)
		if !cfg.Rollback || cfg.CheckpointInterval <= 0 {
			t.Fatalf("draw %d {%s}: not a speculative scenario", i, cfg)
		}
		if cfg.Scheme.Kind == engine.CC {
			t.Fatalf("draw %d {%s}: CC cannot violate, rollback never fires", i, cfg)
		}
	}
}

// TestCheckpointEquivalenceProperty is the correctness proof behind the
// incremental checkpoint path: across edge scenarios and randomized
// speculative sweeps, deep-copy and incremental checkpoints must produce
// identical Results and identical final machine state.
func TestCheckpointEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var cfgs []Config
	for _, c := range Edges() {
		if c.CheckpointInterval == 0 {
			c.CheckpointInterval = 64 // the property needs checkpoints to compare
		}
		cfgs = append(cfgs, c)
	}
	cfgs = append(cfgs,
		// Speculative twins of the checkpointing edges: rollback with an
		// interval past the halt time, and with a boundary-dense run.
		Config{Seed: 5, Cores: 4, Workload: "falseshare", Scheme: engine.BoundedSlack(8),
			CheckpointInterval: 64, Rollback: true, StallTimeout: defaultStall},
		Config{Seed: 6, Cores: 2, Workload: "fft", Scheme: engine.UnboundedSlack(),
			CheckpointInterval: 1 << 20, Rollback: true, StallTimeout: defaultStall},
	)
	nRand, nCC := 32, 8
	if testing.Short() {
		nRand, nCC = 8, 2
	}
	for i := 0; i < nRand; i++ {
		cfgs = append(cfgs, RandomSpeculative(rng))
	}
	// Checkpointing without rollback must match too (checkpoints still
	// mutate accounting and snapshots even when never restored).
	for i := 0; i < nCC; i++ {
		c := RandomEquivalence(rng)
		if c.CheckpointInterval == 0 {
			c.CheckpointInterval = 128
		}
		cfgs = append(cfgs, c)
	}
	for i, c := range cfgs {
		if err := ExecuteCheckpointEquivalence(c); err != nil {
			t.Errorf("config %d: %v", i, err)
		}
	}
}

// TestCompareCCCatchesDivergence: the comparator itself must flag each
// divergence axis.
func TestCompareCCCatchesDivergence(t *testing.T) {
	base := engine.Results{Cycles: 100, Committed: 50, EventsServed: 7}
	if err := compareCC(base, base); err != nil {
		t.Fatalf("identical results flagged: %v", err)
	}
	for name, mutate := range map[string]func(*engine.Results){
		"cycles":    func(r *engine.Results) { r.Cycles++ },
		"committed": func(r *engine.Results) { r.Committed++ },
		"events":    func(r *engine.Results) { r.EventsServed++ },
		"ckpts":     func(r *engine.Results) { r.Checkpoints += 2 },
	} {
		par := base
		mutate(&par)
		if err := compareCC(base, par); err == nil {
			t.Errorf("%s divergence not flagged", name)
		}
	}
	// A one-checkpoint difference is the tolerated boundary coincidence.
	par := base
	par.Checkpoints = base.Checkpoints + 1
	if err := compareCC(base, par); err != nil {
		t.Errorf("±1 checkpoint tolerance missing: %v", err)
	}
}
