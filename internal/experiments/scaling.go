package experiments

import (
	"fmt"
	"strings"

	"slacksim/internal/engine"
)

// ScalingRow compares cycle-by-cycle and unbounded slack at one machine
// size: the paper's conclusion calls for exactly this larger-scale study.
type ScalingRow struct {
	Cores int
	// CCWork and SUWork are host work units; Speedup is their ratio.
	CCWork, SUWork float64
	Speedup        float64
	// BusRate and MapRate are the unbounded run's violation rates.
	BusRate, MapRate float64
	// CycleErrPct is the unbounded run's execution-time error vs CC.
	CycleErrPct float64
}

// Scaling sweeps the target core count for one workload (the paper ran
// only 8-on-8 and names larger machines as future work). The measured
// story: the slack speedup holds steady across machine sizes, but the
// violation rate and the timing error grow sharply with the core count
// because every added core shares the one bus — quantifying the accuracy
// concern behind the paper's call for larger-scale studies.
func Scaling(cfg Config, wl string, coreCounts []int) ([]ScalingRow, error) {
	runAt := func(n int, rc engine.RunConfig) (engine.Results, error) {
		return cfg.runAt(wl, n, rc)
	}
	// Two grid cells per machine size: the CC reference and the unbounded
	// slack run it is compared against.
	ccs := make([]engine.Results, len(coreCounts))
	sus := make([]engine.Results, len(coreCounts))
	err := runGrid(cfg.workers(), 2*len(coreCounts), func(i int) error {
		k, n := i/2, coreCounts[i/2]
		if i%2 == 0 {
			res, err := runAt(n, engine.RunConfig{Scheme: engine.CycleByCycle()})
			if err != nil {
				return fmt.Errorf("scaling %s %d cores CC: %w", wl, n, err)
			}
			ccs[k] = res
		} else {
			res, err := runAt(n, engine.RunConfig{Scheme: engine.UnboundedSlack()})
			if err != nil {
				return fmt.Errorf("scaling %s %d cores SU: %w", wl, n, err)
			}
			sus[k] = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ScalingRow, len(coreCounts))
	for k, n := range coreCounts {
		cc, su := ccs[k], sus[k]
		rows[k] = ScalingRow{
			Cores:  n,
			CCWork: cc.HostWorkUnits, SUWork: su.HostWorkUnits,
			Speedup: cc.HostWorkUnits / su.HostWorkUnits,
			BusRate: su.BusRate, MapRate: su.MapRate,
			CycleErrPct: su.CycleErrorVs(cc),
		}
	}
	return rows, nil
}

// FormatScaling renders the sweep.
func FormatScaling(wl string, rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling (%s): unbounded slack vs cycle-by-cycle across machine sizes\n", wl)
	fmt.Fprintf(&b, "%6s %12s %12s %9s %11s %9s\n",
		"cores", "CC work", "SU work", "speedup", "bus viol%", "err%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %12.0f %12.0f %8.2fx %10.4f%% %8.2f%%\n",
			r.Cores, r.CCWork, r.SUWork, r.Speedup, 100*r.BusRate, r.CycleErrPct)
	}
	return b.String()
}
