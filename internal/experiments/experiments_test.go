package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"slacksim/internal/sampling"
)

// quick returns a configuration small enough for unit tests.
func quickCfg() Config {
	cfg := Default()
	cfg.Cores = 4
	cfg.Workloads = []string{"water", "lu"}
	cfg.Fig3Bounds = []int64{2, 16, 64}
	cfg.Fig4Targets = []float64{0.001, 0.005}
	cfg.CheckpointIntervals = []int64{500, 2000}
	cfg.StatIntervals = []int64{250, 1000}
	return cfg
}

func TestFig3ShapeHolds(t *testing.T) {
	series, err := Fig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 4 { // 3 bounds + unbounded
			t.Fatalf("%s: %d points", s.Workload, len(s.Points))
		}
		first, last := s.Points[0], s.Points[len(s.Points)-2] // largest bound
		if first.BusRate > last.BusRate {
			t.Errorf("%s: bus rate fell from %v to %v", s.Workload, first.BusRate, last.BusRate)
		}
		for _, p := range s.Points {
			if p.MapRate > p.BusRate && p.MapCount > 0 {
				t.Errorf("%s bound %d: map rate %v above bus rate %v",
					s.Workload, p.Bound, p.MapRate, p.BusRate)
			}
		}
	}
	out := FormatFig3(series)
	if !strings.Contains(out, "unbounded") || !strings.Contains(out, "water") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	cfg := quickCfg()
	r, err := Fig4(cfg, "water")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Baseline) != 10 { // CC + S1..S9
		t.Fatalf("baseline points = %d", len(r.Baseline))
	}
	if len(r.AdaptiveBand0) != len(cfg.Fig4Targets) || len(r.AdaptiveBand5) != len(cfg.Fig4Targets) {
		t.Fatal("adaptive series incomplete")
	}
	cc := r.Baseline[0]
	if cc.ViolationRate != 0 {
		t.Error("CC baseline has violations")
	}
	// Every adaptive point must beat CC (the paper: adaptive always runs
	// faster than cycle-by-cycle).
	for _, p := range append(r.AdaptiveBand0, r.AdaptiveBand5...) {
		if p.HostWork >= cc.HostWork {
			t.Errorf("adaptive point %s work %v not below CC %v", p.Label, p.HostWork, cc.HostWork)
		}
	}
	if !strings.Contains(FormatFig4(r), "band 5%") {
		t.Error("format output incomplete")
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	cfg := quickCfg()
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper's orderings: SU well below CC; adaptive in between;
		// denser checkpoints cost more than sparser ones.
		if !(r.SU < r.Adaptive && r.Adaptive < r.CC) {
			t.Errorf("%s: ordering broken SU=%.0f Adapt=%.0f CC=%.0f",
				r.Workload, r.SU, r.Adaptive, r.CC)
		}
		if r.ByInterval[0] <= r.ByInterval[len(r.ByInterval)-1] {
			t.Errorf("%s: denser checkpoints not more expensive: %v", r.Workload, r.ByInterval)
		}
	}
	if !strings.Contains(FormatTable2(cfg, rows), "Table 2") {
		t.Error("format output incomplete")
	}
}

func TestTable3And4ShapeHolds(t *testing.T) {
	cfg := quickCfg()
	rows, err := Table3And4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Reports) != len(cfg.CheckpointIntervals) {
			t.Fatalf("%s: %d reports", r.Workload, len(r.Reports))
		}
		// Table 3's trend: larger intervals violate at least as often.
		if r.Reports[0].FractionViolating > r.Reports[1].FractionViolating {
			t.Errorf("%s: F fell with interval: %+v", r.Workload, r.Reports)
		}
		for _, rep := range r.Reports {
			if rep.MeanFirstDistance < 0 || rep.MeanFirstDistance >= float64(rep.Interval) {
				t.Errorf("%s: Dr out of range: %+v", r.Workload, rep)
			}
		}
	}
	if !strings.Contains(FormatTable3And4(cfg, rows), "Table 4") {
		t.Error("format output incomplete")
	}
}

func TestTable5ProducesRows(t *testing.T) {
	cfg := quickCfg()
	cfg.Workloads = []string{"water"}
	rows, err := Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // two intervals
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Modeled <= 0 || r.Measured <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
	if !strings.Contains(FormatTable5(rows), "modeled") {
		t.Error("format output incomplete")
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := quickCfg()
	rows, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	if !strings.Contains(FormatAblations(rows), "Ablations") {
		t.Error("format output incomplete")
	}
}

// TestParallelMatchesSerial is the golden comparison behind the driver:
// every cell owns its machine and seed, so a parallel sweep must produce
// exactly the serial sweep's numbers — wall-clock is the only field
// allowed to differ.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := quickCfg()
	cfg.Workloads = []string{"water"}

	serial, parallel := cfg, cfg
	serial.Parallelism = 1
	parallel.Parallelism = 4

	f3s, err := Fig3(serial)
	if err != nil {
		t.Fatal(err)
	}
	f3p, err := Fig3(parallel)
	if err != nil {
		t.Fatal(err)
	}
	// Fig3 points carry no wall-clock: they must match exactly.
	if !reflect.DeepEqual(f3s, f3p) {
		t.Errorf("Fig3 parallel diverged from serial:\nserial:   %+v\nparallel: %+v", f3s, f3p)
	}

	t2s, err := Table2(serial)
	if err != nil {
		t.Fatal(err)
	}
	t2p, err := Table2(parallel)
	if err != nil {
		t.Fatal(err)
	}
	zeroWall := func(rows []Table2Row) {
		for i := range rows {
			rows[i].CCWall, rows[i].SUWall, rows[i].AdaptiveWall = 0, 0, 0
			for k := range rows[i].IntervalWall {
				rows[i].IntervalWall[k] = 0
			}
		}
	}
	zeroWall(t2s)
	zeroWall(t2p)
	if !reflect.DeepEqual(t2s, t2p) {
		t.Errorf("Table2 parallel diverged from serial:\nserial:   %+v\nparallel: %+v", t2s, t2p)
	}
}

// TestRunGridReportsEveryCellError checks that one failing cell does not
// hide the others and that results land in their slots regardless.
func TestRunGridReportsEveryCellError(t *testing.T) {
	got := make([]int, 6)
	err := runGrid(3, 6, func(i int) error {
		got[i] = i + 1
		if i%2 == 1 {
			return fmt.Errorf("cell %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected joined error")
	}
	for _, want := range []string{"cell 1 failed", "cell 3 failed", "cell 5 failed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
	for i, v := range got {
		if v != i+1 {
			t.Errorf("cell %d did not run (got %d)", i, v)
		}
	}
	if err := runGrid(1, 3, func(int) error { return nil }); err != nil {
		t.Errorf("serial grid returned %v", err)
	}
}

func TestScalingSpeedupGrows(t *testing.T) {
	cfg := quickCfg()
	rows, err := Scaling(cfg, "water", []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1.5 {
			t.Errorf("%d cores: SU speedup %.2f too low", r.Cores, r.Speedup)
		}
	}
	// More cores share the bus, so unbounded slack's violation rate and
	// timing error must grow with the machine size — the accuracy concern
	// behind the paper's call for larger-scale studies.
	if rows[1].BusRate <= rows[0].BusRate {
		t.Errorf("violation rate did not grow with cores: %v", rows)
	}
	if FormatScaling("water", rows) == "" {
		t.Error("empty format")
	}
}

func TestSamplingStudyBoundsHold(t *testing.T) {
	cfg := quickCfg()
	plan := sampling.Plan{IntervalInsts: 2000, DetailEvery: 4, Confidence: 0.95}
	rows, err := SamplingStudy(cfg, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Workloads) {
		t.Fatalf("got %d rows for %d workloads", len(rows), len(cfg.Workloads))
	}
	for _, r := range rows {
		if !r.Within {
			t.Errorf("%s: truth %d outside stated bound %.0f ± %.0f",
				r.Workload, r.ActualCycles, r.Report.EstimatedCycles, r.Report.HalfWidth)
		}
		if r.SampledWork >= r.FullWork {
			t.Errorf("%s: sampling saved no host work (%.0f vs %.0f)",
				r.Workload, r.SampledWork, r.FullWork)
		}
	}
	out := FormatSampling(plan, rows)
	for _, want := range []string{"workload", "within", cfg.Workloads[0]} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSampling missing %q:\n%s", want, out)
		}
	}
}
