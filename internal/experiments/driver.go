package experiments

import (
	"errors"
	"runtime"
	"sync"
)

// workers resolves Config.Parallelism: 0 means one worker per available
// host hardware thread (the experiments are CPU-bound simulations), 1
// means serial, anything else is taken literally.
func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runGrid executes n independent experiment cells on a bounded worker
// pool. Every cell builds its own machine and owns its own seeded
// scheduler, and writes its result into an index-slotted destination, so
// a grid's output is identical whatever the worker count or completion
// order — only wall-clock fields differ between serial and parallel runs
// (asserted by TestParallelMatchesSerial).
//
// All cells run even when some fail; the per-cell errors come back joined
// in cell order, each labeled by its cell (workload, scheme, interval) at
// the point of failure, so one broken configuration in a sweep reports
// precisely without hiding the rest.
func runGrid(workers, n int, run func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = run(i)
		}
		return errors.Join(errs...)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return errors.Join(errs...)
}
