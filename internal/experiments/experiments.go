// Package experiments regenerates every table and figure of the paper's
// evaluation: violation rates versus slack bound (Figure 3), the
// simulation-time/violation-rate trade-off of bounded and adaptive slack
// (Figure 4), simulation times with periodic checkpointing (Table 2), the
// per-interval violation statistics (Tables 3 and 4), and the analytical
// speculation model (Table 5) — plus a measured speculative run the paper
// left as future work, and the ablations called out in DESIGN.md.
//
// Absolute numbers differ from the paper's (their substrate was a Xeon
// server running SimpleScalar binaries; ours is a from-scratch simulator
// with scaled-down inputs), so each experiment reports the deterministic
// host-work-unit metric alongside wall-clock and is judged on shape: who
// wins, by roughly what factor, and where the crossovers fall.
package experiments

import (
	"fmt"
	"strings"

	"slacksim/internal/adaptive"
	"slacksim/internal/engine"
	"slacksim/internal/violation"
	"slacksim/internal/workload"
)

// Config scales the experiment suite.
type Config struct {
	// Cores is the target CMP size (the paper: 8).
	Cores int
	// Scale multiplies workload input sizes (1 = quick, larger = closer
	// to the paper's inputs).
	Scale int
	// Seed drives the deterministic host.
	Seed int64
	// Workloads lists the benchmarks (default: the paper's four).
	Workloads []string
	// CheckpointIntervals are the Table 2 and Table 5 interval lengths in
	// simulated cycles. The paper uses 5k/10k/50k/100k on runs of tens of
	// millions of cycles; scaled-down runs use proportionally smaller
	// intervals so the interval-to-run ratio spans the same range (the
	// densest roughly doubling the cost, the sparsest nearly free).
	CheckpointIntervals []int64
	// StatIntervals are the Table 3/4 interval lengths; they are chosen
	// smaller than the run length so each interval count is meaningful.
	StatIntervals []int64
	// Fig3Bounds are the slack bounds swept in Figure 3.
	Fig3Bounds []int64
	// Fig4Targets are the adaptive target violation rates of Figure 4.
	// The paper sweeps 0.01%..0.20% on 100M-instruction runs; on
	// scaled-down runs the same controller dynamics appear at
	// proportionally higher targets.
	Fig4Targets []float64
	// Parallelism bounds the experiment worker pool: 0 runs one worker
	// per host hardware thread, 1 runs serially, larger values are taken
	// literally. Results are identical at any setting except the
	// wall-clock fields (every cell owns its machine and seed).
	Parallelism int
	// Exec, when non-nil, executes one grid cell in place of the
	// in-process engine: it receives the workload, input scale, core
	// count and fully-populated run configuration (Seed included) and
	// returns the cell's results. fleet.Driver satisfies it to fan a
	// grid out across slacksimd workers; results must be identical to a
	// local run, wall-clock excepted.
	Exec func(workload string, scale, cores int, rc engine.RunConfig) (engine.Results, error)
}

// Default returns the quick configuration used by tests and benchmarks.
func Default() Config {
	return Config{
		Cores:               8,
		Scale:               1,
		Seed:                1,
		Workloads:           []string{"barnes", "fft", "lu", "water"},
		CheckpointIntervals: []int64{500, 1000, 5000, 10000},
		StatIntervals:       []int64{250, 500, 1000, 2500},
		Fig3Bounds:          []int64{1, 2, 4, 8, 16, 32, 64, 128, 256},
		Fig4Targets: []float64{
			0.001, 0.003, 0.005, 0.007, 0.009, 0.010,
			0.011, 0.013, 0.015, 0.017, 0.019, 0.020,
		},
	}
}

func (c Config) run(name string, rc engine.RunConfig) (engine.Results, error) {
	return c.runAt(name, c.Cores, rc)
}

// runAt executes one cell at an explicit core count (the scaling sweep
// varies it), routing through the Exec hook when one is installed.
func (c Config) runAt(name string, cores int, rc engine.RunConfig) (engine.Results, error) {
	rc.Seed = c.Seed
	if c.Exec != nil {
		return c.Exec(name, c.Scale, cores, rc)
	}
	w, err := workload.ByName(name, c.Scale)
	if err != nil {
		return engine.Results{}, err
	}
	m, err := engine.NewMachine(engine.MachineConfig{NumCores: cores}, w)
	if err != nil {
		return engine.Results{}, err
	}
	return engine.Run(m, rc)
}

// adaptiveBase returns the paper's base adaptive configuration (target
// 0.01%, band 5%) with the adaptation period scaled to the run size.
func (c Config) adaptiveBase() adaptive.Config {
	a := adaptive.DefaultConfig()
	a.Period = 512
	return a
}

// ---------------------------------------------------------------- Figure 3

// Fig3Point is one (bound, rates) sample for one workload.
type Fig3Point struct {
	Bound              int64 // 0 means unbounded
	BusRate, MapRate   float64
	BusCount, MapCount uint64
}

// Fig3Series is the violation-rate curve for one workload.
type Fig3Series struct {
	Workload string
	Points   []Fig3Point
}

// Fig3 sweeps the slack bound and measures bus and cache-map violation
// rates (Figures 3(a) and 3(b)). One grid cell per (workload, bound)
// pair, the unbounded run riding as the last bound of each series.
func Fig3(cfg Config) ([]Fig3Series, error) {
	nb := len(cfg.Fig3Bounds) + 1 // + unbounded
	out := make([]Fig3Series, len(cfg.Workloads))
	for i, wl := range cfg.Workloads {
		out[i] = Fig3Series{Workload: wl, Points: make([]Fig3Point, nb)}
	}
	err := runGrid(cfg.workers(), len(cfg.Workloads)*nb, func(i int) error {
		wi, bi := i/nb, i%nb
		wl := cfg.Workloads[wi]
		rc := engine.RunConfig{Scheme: engine.UnboundedSlack(), MeasureViolations: true}
		var bound int64
		if bi < len(cfg.Fig3Bounds) {
			bound = cfg.Fig3Bounds[bi]
			rc.Scheme = engine.BoundedSlack(bound)
		}
		res, err := cfg.run(wl, rc)
		if err != nil {
			return fmt.Errorf("fig3 %s bound %d: %w", wl, bound, err)
		}
		out[wi].Points[bi] = Fig3Point{
			Bound: bound, BusRate: res.BusRate, MapRate: res.MapRate,
			BusCount: res.BusViolations, MapCount: res.MapViolations,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatFig3 renders the series as an aligned text table.
func FormatFig3(series []Fig3Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: violation rates of bus (a) and cache map (b) vs slack bound\n")
	for _, s := range series {
		fmt.Fprintf(&b, "\n%s:\n%8s %12s %12s\n", s.Workload, "bound", "bus rate%", "map rate%")
		for _, p := range s.Points {
			label := fmt.Sprintf("%d", p.Bound)
			if p.Bound == 0 {
				label = "unbounded"
			}
			fmt.Fprintf(&b, "%8s %11.4f%% %11.5f%%\n", label, 100*p.BusRate, 100*p.MapRate)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Figure 4

// Fig4Point is one (violation rate, cost) sample.
type Fig4Point struct {
	Label         string
	ViolationRate float64
	HostWork      float64
	WallSeconds   float64
}

// Fig4Result groups the three series of Figure 4 for one workload.
type Fig4Result struct {
	Workload string
	// Baseline holds CC and the bounded slack ladder S1..S9.
	Baseline []Fig4Point
	// AdaptiveBand0 and AdaptiveBand5 hold the adaptive sweeps with 0%
	// and 5% violation bands across the target rates.
	AdaptiveBand0 []Fig4Point
	AdaptiveBand5 []Fig4Point
}

// Fig4 reproduces the simulation-time-vs-violation-rate plot: cycle-by-
// cycle and bounded slack S1..S9 as the baseline curve, plus adaptive
// slack at the configured target rates with violation bands of 0% and 5%.
// The grid has one cell per point: CC, S1..S9, then both bands' target
// sweeps.
func Fig4(cfg Config, wl string) (Fig4Result, error) {
	nt := len(cfg.Fig4Targets)
	out := Fig4Result{
		Workload:      wl,
		Baseline:      make([]Fig4Point, 10), // CC + S1..S9
		AdaptiveBand0: make([]Fig4Point, nt),
		AdaptiveBand5: make([]Fig4Point, nt),
	}
	err := runGrid(cfg.workers(), 10+2*nt, func(i int) error {
		switch {
		case i == 0:
			res, err := cfg.run(wl, engine.RunConfig{Scheme: engine.CycleByCycle()})
			if err != nil {
				return fmt.Errorf("fig4 %s CC: %w", wl, err)
			}
			out.Baseline[0] = fig4Point("CC", res)
		case i < 10:
			bound := int64(i)
			res, err := cfg.run(wl, engine.RunConfig{
				Scheme: engine.BoundedSlack(bound), MeasureViolations: true,
			})
			if err != nil {
				return fmt.Errorf("fig4 %s S%d: %w", wl, bound, err)
			}
			out.Baseline[i] = fig4Point(fmt.Sprintf("S%d", bound), res)
		default:
			j := i - 10
			band, dst := 0.0, out.AdaptiveBand0
			if j >= nt {
				band, dst = 0.05, out.AdaptiveBand5
			}
			target := cfg.Fig4Targets[j%nt]
			a := cfg.adaptiveBase()
			a.TargetRate = target
			a.Band = band
			res, err := cfg.run(wl, engine.RunConfig{Scheme: engine.AdaptiveSlack(a)})
			if err != nil {
				return fmt.Errorf("fig4 %s band %g target %g: %w", wl, band, target, err)
			}
			dst[j%nt] = fig4Point(fmt.Sprintf("T%.2f%%", 100*target), res)
		}
		return nil
	})
	return out, err
}

func fig4Point(label string, r engine.Results) Fig4Point {
	return Fig4Point{
		Label:         label,
		ViolationRate: r.ViolationRate,
		HostWork:      r.HostWorkUnits,
		WallSeconds:   r.WallClock.Seconds(),
	}
}

// FormatFig4 renders the three series.
func FormatFig4(r Fig4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 (%s): simulation cost vs violation rate\n", r.Workload)
	dump := func(name string, pts []Fig4Point) {
		fmt.Fprintf(&b, "\n%s:\n%10s %12s %14s\n", name, "point", "viol rate%", "host work")
		for _, p := range pts {
			fmt.Fprintf(&b, "%10s %11.4f%% %14.0f\n", p.Label, 100*p.ViolationRate, p.HostWork)
		}
	}
	dump("CC and bounded slack", r.Baseline)
	dump("adaptive, band 0%", r.AdaptiveBand0)
	dump("adaptive, band 5%", r.AdaptiveBand5)
	return b.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Row is one workload's simulation costs across schemes.
type Table2Row struct {
	Workload string
	// CC, SU, Adaptive are host work units; ByInterval[i] is adaptive
	// plus checkpointing at CheckpointIntervals[i].
	CC, SU, Adaptive float64
	ByInterval       []float64
	// Wall-clock seconds for the same runs (host-dependent).
	CCWall, SUWall, AdaptiveWall float64
	IntervalWall                 []float64
}

// Table2 measures simulation cost for cycle-by-cycle, unbounded slack,
// the base adaptive scheme (target 0.01%, band 5%), and adaptive with
// periodic checkpointing at each configured interval. One grid cell per
// (workload, scheme) entry.
func Table2(cfg Config) ([]Table2Row, error) {
	per := 3 + len(cfg.CheckpointIntervals) // CC, SU, Adapt, then intervals
	rows := make([]Table2Row, len(cfg.Workloads))
	for i, wl := range cfg.Workloads {
		rows[i] = Table2Row{
			Workload:     wl,
			ByInterval:   make([]float64, len(cfg.CheckpointIntervals)),
			IntervalWall: make([]float64, len(cfg.CheckpointIntervals)),
		}
	}
	err := runGrid(cfg.workers(), len(cfg.Workloads)*per, func(i int) error {
		wi, ci := i/per, i%per
		wl, row := cfg.Workloads[wi], &rows[wi]
		switch ci {
		case 0:
			res, err := cfg.run(wl, engine.RunConfig{Scheme: engine.CycleByCycle()})
			if err != nil {
				return fmt.Errorf("table2 %s CC: %w", wl, err)
			}
			row.CC, row.CCWall = res.HostWorkUnits, res.WallClock.Seconds()
		case 1:
			res, err := cfg.run(wl, engine.RunConfig{Scheme: engine.UnboundedSlack()})
			if err != nil {
				return fmt.Errorf("table2 %s SU: %w", wl, err)
			}
			row.SU, row.SUWall = res.HostWorkUnits, res.WallClock.Seconds()
		case 2:
			res, err := cfg.run(wl, engine.RunConfig{
				Scheme: engine.AdaptiveSlack(cfg.adaptiveBase()),
			})
			if err != nil {
				return fmt.Errorf("table2 %s adaptive: %w", wl, err)
			}
			row.Adaptive, row.AdaptiveWall = res.HostWorkUnits, res.WallClock.Seconds()
		default:
			iv := cfg.CheckpointIntervals[ci-3]
			res, err := cfg.run(wl, engine.RunConfig{
				Scheme:             engine.AdaptiveSlack(cfg.adaptiveBase()),
				CheckpointInterval: iv,
			})
			if err != nil {
				return fmt.Errorf("table2 %s interval %d: %w", wl, iv, err)
			}
			row.ByInterval[ci-3] = res.HostWorkUnits
			row.IntervalWall[ci-3] = res.WallClock.Seconds()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable2 renders the rows with the paper's column layout.
func FormatTable2(cfg Config, rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: simulation cost (host work units), adaptive target 0.01%%, band 5%%\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s", "", "CC", "SU", "Adapt")
	for _, iv := range cfg.CheckpointIntervals {
		fmt.Fprintf(&b, " %9dc", iv)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.0f %10.0f %10.0f", r.Workload, r.CC, r.SU, r.Adaptive)
		for _, v := range r.ByInterval {
			fmt.Fprintf(&b, " %10.0f", v)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ------------------------------------------------------------ Tables 3 & 4

// Table34Row carries the interval statistics for one workload.
type Table34Row struct {
	Workload string
	// Reports[i] matches CheckpointIntervals[i]: F (fraction violating)
	// and Dr (mean first-violation distance).
	Reports []violation.IntervalReport
}

// Table3And4 measures, under the base adaptive scheme, the fraction of
// checkpoint intervals containing at least one violation (Table 3) and
// the mean distance of the first violation within a violating interval
// (Table 4).
func Table3And4(cfg Config) ([]Table34Row, error) {
	rows := make([]Table34Row, len(cfg.Workloads))
	err := runGrid(cfg.workers(), len(cfg.Workloads), func(i int) error {
		wl := cfg.Workloads[i]
		res, err := cfg.run(wl, engine.RunConfig{
			Scheme:         engine.AdaptiveSlack(cfg.adaptiveBase()),
			TrackIntervals: cfg.StatIntervals,
		})
		if err != nil {
			return fmt.Errorf("table3/4 %s: %w", wl, err)
		}
		rows[i] = Table34Row{Workload: wl, Reports: res.Intervals}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable3And4 renders both tables.
func FormatTable3And4(cfg Config, rows []Table34Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: fraction of checkpoint intervals with >= 1 violation\n%-10s", "")
	for _, iv := range cfg.StatIntervals {
		fmt.Fprintf(&b, " %9dc", iv)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Workload)
		for _, rep := range r.Reports {
			fmt.Fprintf(&b, " %9.0f%%", 100*rep.FractionViolating)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "\nTable 4: mean distance of first violation within an interval (cycles)\n%-10s", "")
	for _, iv := range cfg.StatIntervals {
		fmt.Fprintf(&b, " %9dc", iv)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Workload)
		for _, rep := range r.Reports {
			fmt.Fprintf(&b, " %10.0f", rep.MeanFirstDistance)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 5

// Table5Row is the modeled and measured speculative cost for one workload
// at one checkpoint interval.
type Table5Row struct {
	Workload string
	Interval int64
	CC       float64
	// Modeled is the analytical Ts from measured Tcc/Tcpt/F/Dr.
	Modeled float64
	// Measured is a real speculative run (rollback enabled) — the piece
	// the paper left as future work.
	Measured  float64
	Rollbacks int
}

// FormatTable5 renders the comparison.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: speculative simulation cost — model vs measured (host work units)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %12s %12s %10s\n",
		"", "interval", "CC", "modeled Ts", "measured", "rollbacks")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %10.0f %12.0f %12.0f %10d\n",
			r.Workload, r.Interval, r.CC, r.Modeled, r.Measured, r.Rollbacks)
	}
	return b.String()
}
