package experiments

import (
	"fmt"
	"strings"

	"slacksim/internal/adaptive"
	"slacksim/internal/engine"
	"slacksim/internal/specmodel"
	"slacksim/internal/violation"
)

// Table5 estimates speculative slack simulation cost with the analytical
// model (from measured Tcc, Tcpt, F and Dr, exactly the paper's method)
// and, beyond the paper, measures a fully-functional speculative run with
// rollback for comparison. Only the larger configured intervals are used,
// matching the paper's Table 5 (50k and 100k).
func Table5(cfg Config) ([]Table5Row, error) {
	intervals := cfg.CheckpointIntervals
	if len(intervals) > 2 {
		intervals = intervals[len(intervals)-2:]
	}
	var rows []Table5Row
	for _, wl := range cfg.Workloads {
		cc, err := cfg.run(wl, engine.RunConfig{Scheme: engine.CycleByCycle()})
		if err != nil {
			return nil, err
		}
		for _, iv := range intervals {
			cpt, err := cfg.run(wl, engine.RunConfig{
				Scheme:             engine.AdaptiveSlack(cfg.adaptiveBase()),
				CheckpointInterval: iv,
				TrackIntervals:     []int64{iv},
			})
			if err != nil {
				return nil, err
			}
			if len(cpt.Intervals) != 1 {
				return nil, fmt.Errorf("experiments: missing interval stats for %s", wl)
			}
			ir := cpt.Intervals[0]
			in := specmodel.Inputs{
				Tcc:  cc.HostWorkUnits,
				Tcpt: cpt.HostWorkUnits,
				F:    ir.FractionViolating,
				Dr:   ir.MeanFirstDistance,
				I:    float64(iv),
			}
			modeled, err := in.Estimate()
			if err != nil {
				return nil, err
			}
			spec, err := cfg.run(wl, engine.RunConfig{
				Scheme:             engine.AdaptiveSlack(cfg.adaptiveBase()),
				CheckpointInterval: iv,
				Rollback:           true,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table5Row{
				Workload: wl, Interval: iv,
				CC:      cc.HostWorkUnits,
				Modeled: modeled, Measured: spec.HostWorkUnits,
				Rollbacks: spec.Rollbacks,
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Ablations

// AblationRow compares two design alternatives on one metric.
type AblationRow struct {
	Name            string
	BaselineLabel   string
	Baseline        float64
	AlternateLabel  string
	Alternate       float64
	LowerIsBaseline bool // true when the baseline is expected to be lower
}

// Ablations runs the design-choice studies DESIGN.md calls out: AIMD vs
// AIAD bound adjustment, violation-band width, and selective (map-only)
// rollback.
func Ablations(cfg Config) ([]AblationRow, error) {
	wl := cfg.Workloads[0]

	// AIMD vs AIAD: time to pull an excessive violation rate back to the
	// target — compare achieved rates under a tight target.
	tight := cfg.adaptiveBase()
	tight.TargetRate = 0.0005
	tight.InitialBound = 64
	aimd, err := cfg.run(wl, engine.RunConfig{Scheme: engine.AdaptiveSlack(tight)})
	if err != nil {
		return nil, err
	}
	aiadRes, err := cfg.run(wl, engine.RunConfig{
		Scheme: engine.AdaptiveSlack(tight), AdaptivePolicy: adaptive.AIAD,
	})
	if err != nil {
		return nil, err
	}

	// Band width: control overhead (adjustments) at 0% vs 25% band, with
	// a fast adaptation period so the controller is exercised enough for
	// the band to matter on a short run.
	wide := cfg.adaptiveBase()
	wide.Band = 0.25
	wide.Period = 128
	wide.TargetRate = 0.005
	zero := wide
	zero.Band = 0
	wideRes, err := cfg.run(wl, engine.RunConfig{Scheme: engine.AdaptiveSlack(wide)})
	if err != nil {
		return nil, err
	}
	zeroRes, err := cfg.run(wl, engine.RunConfig{Scheme: engine.AdaptiveSlack(zero)})
	if err != nil {
		return nil, err
	}

	// Selective rollback: all violations vs map-only, with an interval
	// short enough that several rollbacks fit in the run.
	iv := cfg.StatIntervals[len(cfg.StatIntervals)-1]
	all, err := cfg.run(wl, engine.RunConfig{
		Scheme:             engine.BoundedSlack(32),
		CheckpointInterval: iv,
		Rollback:           true,
	})
	if err != nil {
		return nil, err
	}
	mapOnly, err := cfg.run(wl, engine.RunConfig{
		Scheme:             engine.BoundedSlack(32),
		CheckpointInterval: iv,
		Rollback:           true,
		Selected:           []violation.Type{violation.Map},
	})
	if err != nil {
		return nil, err
	}

	return []AblationRow{
		{
			Name:          "adaptation policy: achieved rate under tight target",
			BaselineLabel: "AIMD", Baseline: aimd.ViolationRate,
			AlternateLabel: "AIAD", Alternate: aiadRes.ViolationRate,
			LowerIsBaseline: true,
		},
		{
			Name:          "violation band: controller adjustments",
			BaselineLabel: "band 25%", Baseline: float64(wideRes.Adjustments),
			AlternateLabel: "band 0%", Alternate: float64(zeroRes.Adjustments),
			LowerIsBaseline: true,
		},
		{
			Name:          "selective rollback: rollbacks per run",
			BaselineLabel: "map-only", Baseline: float64(mapOnly.Rollbacks),
			AlternateLabel: "all violations", Alternate: float64(all.Rollbacks),
			LowerIsBaseline: true,
		},
		{
			Name:          "selective rollback: host work",
			BaselineLabel: "map-only", Baseline: mapOnly.HostWorkUnits,
			AlternateLabel: "all violations", Alternate: all.HostWorkUnits,
			LowerIsBaseline: true,
		},
	}, nil
}

// FormatAblations renders the ablation outcomes.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations:\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-50s %s=%.5g vs %s=%.5g\n",
			r.Name, r.BaselineLabel, r.Baseline, r.AlternateLabel, r.Alternate)
	}
	return b.String()
}
