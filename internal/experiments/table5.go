package experiments

import (
	"fmt"
	"strings"

	"slacksim/internal/adaptive"
	"slacksim/internal/engine"
	"slacksim/internal/specmodel"
	"slacksim/internal/violation"
)

// Table5 estimates speculative slack simulation cost with the analytical
// model (from measured Tcc, Tcpt, F and Dr, exactly the paper's method)
// and, beyond the paper, measures a fully-functional speculative run with
// rollback for comparison. Only the larger configured intervals are used,
// matching the paper's Table 5 (50k and 100k). The CC, checkpointing, and
// speculative runs of every workload all go through one grid; the model
// is evaluated afterwards from the collected measurements.
func Table5(cfg Config) ([]Table5Row, error) {
	intervals := cfg.CheckpointIntervals
	if len(intervals) > 2 {
		intervals = intervals[len(intervals)-2:]
	}
	ni := len(intervals)
	per := 1 + 2*ni // CC, then a (checkpointing, speculative) pair per interval
	ccs := make([]engine.Results, len(cfg.Workloads))
	cpts := make([]engine.Results, len(cfg.Workloads)*ni)
	specs := make([]engine.Results, len(cfg.Workloads)*ni)
	err := runGrid(cfg.workers(), len(cfg.Workloads)*per, func(i int) error {
		wi, ci := i/per, i%per
		wl := cfg.Workloads[wi]
		switch {
		case ci == 0:
			res, err := cfg.run(wl, engine.RunConfig{Scheme: engine.CycleByCycle()})
			if err != nil {
				return fmt.Errorf("table5 %s CC: %w", wl, err)
			}
			ccs[wi] = res
		case ci <= ni:
			iv := intervals[ci-1]
			res, err := cfg.run(wl, engine.RunConfig{
				Scheme:             engine.AdaptiveSlack(cfg.adaptiveBase()),
				CheckpointInterval: iv,
				TrackIntervals:     []int64{iv},
			})
			if err != nil {
				return fmt.Errorf("table5 %s checkpointing interval %d: %w", wl, iv, err)
			}
			cpts[wi*ni+ci-1] = res
		default:
			iv := intervals[ci-1-ni]
			res, err := cfg.run(wl, engine.RunConfig{
				Scheme:             engine.AdaptiveSlack(cfg.adaptiveBase()),
				CheckpointInterval: iv,
				Rollback:           true,
			})
			if err != nil {
				return fmt.Errorf("table5 %s speculative interval %d: %w", wl, iv, err)
			}
			specs[wi*ni+ci-1-ni] = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Table5Row
	for wi, wl := range cfg.Workloads {
		for k, iv := range intervals {
			cpt := cpts[wi*ni+k]
			if len(cpt.Intervals) != 1 {
				return nil, fmt.Errorf("experiments: missing interval stats for %s", wl)
			}
			ir := cpt.Intervals[0]
			in := specmodel.Inputs{
				Tcc:  ccs[wi].HostWorkUnits,
				Tcpt: cpt.HostWorkUnits,
				F:    ir.FractionViolating,
				Dr:   ir.MeanFirstDistance,
				I:    float64(iv),
			}
			modeled, err := in.Estimate()
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table5Row{
				Workload: wl, Interval: iv,
				CC:      ccs[wi].HostWorkUnits,
				Modeled: modeled, Measured: specs[wi*ni+k].HostWorkUnits,
				Rollbacks: specs[wi*ni+k].Rollbacks,
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Ablations

// AblationRow compares two design alternatives on one metric.
type AblationRow struct {
	Name            string
	BaselineLabel   string
	Baseline        float64
	AlternateLabel  string
	Alternate       float64
	LowerIsBaseline bool // true when the baseline is expected to be lower
}

// Ablations runs the design-choice studies DESIGN.md calls out: AIMD vs
// AIAD bound adjustment, violation-band width, and selective (map-only)
// rollback. The six underlying simulations run as one grid.
func Ablations(cfg Config) ([]AblationRow, error) {
	wl := cfg.Workloads[0]

	// AIMD vs AIAD: time to pull an excessive violation rate back to the
	// target — compare achieved rates under a tight target.
	tight := cfg.adaptiveBase()
	tight.TargetRate = 0.0005
	tight.InitialBound = 64

	// Band width: control overhead (adjustments) at 0% vs 25% band, with
	// a fast adaptation period so the controller is exercised enough for
	// the band to matter on a short run.
	wide := cfg.adaptiveBase()
	wide.Band = 0.25
	wide.Period = 128
	wide.TargetRate = 0.005
	zero := wide
	zero.Band = 0

	// Selective rollback: all violations vs map-only, with an interval
	// short enough that several rollbacks fit in the run.
	iv := cfg.StatIntervals[len(cfg.StatIntervals)-1]

	cells := []struct {
		name string
		rc   engine.RunConfig
	}{
		{"aimd", engine.RunConfig{Scheme: engine.AdaptiveSlack(tight)}},
		{"aiad", engine.RunConfig{Scheme: engine.AdaptiveSlack(tight), AdaptivePolicy: adaptive.AIAD}},
		{"band 25%", engine.RunConfig{Scheme: engine.AdaptiveSlack(wide)}},
		{"band 0%", engine.RunConfig{Scheme: engine.AdaptiveSlack(zero)}},
		{"rollback all", engine.RunConfig{
			Scheme: engine.BoundedSlack(32), CheckpointInterval: iv, Rollback: true,
		}},
		{"rollback map-only", engine.RunConfig{
			Scheme: engine.BoundedSlack(32), CheckpointInterval: iv, Rollback: true,
			Selected: []violation.Type{violation.Map},
		}},
	}
	results := make([]engine.Results, len(cells))
	err := runGrid(cfg.workers(), len(cells), func(i int) error {
		res, err := cfg.run(wl, cells[i].rc)
		if err != nil {
			return fmt.Errorf("ablation %s: %w", cells[i].name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	aimd, aiadRes := results[0], results[1]
	wideRes, zeroRes := results[2], results[3]
	all, mapOnly := results[4], results[5]

	return []AblationRow{
		{
			Name:          "adaptation policy: achieved rate under tight target",
			BaselineLabel: "AIMD", Baseline: aimd.ViolationRate,
			AlternateLabel: "AIAD", Alternate: aiadRes.ViolationRate,
			LowerIsBaseline: true,
		},
		{
			Name:          "violation band: controller adjustments",
			BaselineLabel: "band 25%", Baseline: float64(wideRes.Adjustments),
			AlternateLabel: "band 0%", Alternate: float64(zeroRes.Adjustments),
			LowerIsBaseline: true,
		},
		{
			Name:          "selective rollback: rollbacks per run",
			BaselineLabel: "map-only", Baseline: float64(mapOnly.Rollbacks),
			AlternateLabel: "all violations", Alternate: float64(all.Rollbacks),
			LowerIsBaseline: true,
		},
		{
			Name:          "selective rollback: host work",
			BaselineLabel: "map-only", Baseline: mapOnly.HostWorkUnits,
			AlternateLabel: "all violations", Alternate: all.HostWorkUnits,
			LowerIsBaseline: true,
		},
	}, nil
}

// FormatAblations renders the ablation outcomes.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations:\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-50s %s=%.5g vs %s=%.5g\n",
			r.Name, r.BaselineLabel, r.Baseline, r.AlternateLabel, r.Alternate)
	}
	return b.String()
}
