package experiments

import (
	"fmt"
	"strings"

	"slacksim/internal/engine"
	"slacksim/internal/sampling"
)

// SamplingRow compares a full-detail CC run against an interval-sampled
// run of the same workload: the sampled run's estimate, its confidence
// bound, the true error, and the host work the sampling saved.
type SamplingRow struct {
	Workload string
	// ActualCycles is the full-detail CC run's cycle count (the truth the
	// estimate is judged against).
	ActualCycles int64
	// Report is the sampled run's estimate with its confidence bound.
	Report sampling.Report
	// ErrPct is the estimate's true error versus the full run, percent.
	ErrPct float64
	// Within reports whether the truth fell inside the stated bound.
	Within bool
	// FullWork and SampledWork are the two runs' host work units; the
	// ratio is what sampling buys.
	FullWork, SampledWork float64
}

// SamplingStudy runs every configured workload twice — once in full
// detail under CC, once interval-sampled with the given plan — and
// reports how tight and how honest the sampled estimates are. The paper
// simulates every cycle; this study quantifies the Pac-Sim-style
// alternative: how much host work sampling saves on the same kernels and
// whether the stated confidence bounds actually cover the true cycle
// counts.
func SamplingStudy(cfg Config, plan sampling.Plan) ([]SamplingRow, error) {
	plan.Normalize()
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	// Two grid cells per workload: the full-detail reference and the
	// sampled run it is judged against.
	fulls := make([]engine.Results, len(cfg.Workloads))
	sampled := make([]engine.Results, len(cfg.Workloads))
	err := runGrid(cfg.workers(), 2*len(cfg.Workloads), func(i int) error {
		k, wl := i/2, cfg.Workloads[i/2]
		if i%2 == 0 {
			res, err := cfg.run(wl, engine.RunConfig{Scheme: engine.CycleByCycle()})
			if err != nil {
				return fmt.Errorf("sampling %s full: %w", wl, err)
			}
			fulls[k] = res
			return nil
		}
		p := plan
		res, err := cfg.run(wl, engine.RunConfig{Scheme: engine.CycleByCycle(), Sampling: &p})
		if err != nil {
			return fmt.Errorf("sampling %s sampled: %w", wl, err)
		}
		sampled[k] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]SamplingRow, len(cfg.Workloads))
	for k, wl := range cfg.Workloads {
		full, samp := fulls[k], sampled[k]
		if samp.Sampling == nil {
			return nil, fmt.Errorf("sampling %s: sampled run reported no estimate", wl)
		}
		rep := *samp.Sampling
		rows[k] = SamplingRow{
			Workload:     wl,
			ActualCycles: full.Cycles,
			Report:       rep,
			ErrPct:       100 * (rep.EstimatedCycles - float64(full.Cycles)) / float64(full.Cycles),
			Within:       rep.Within(full.Cycles),
			FullWork:     full.HostWorkUnits,
			SampledWork:  samp.HostWorkUnits,
		}
	}
	return rows, nil
}

// FormatSampling renders the study as an aligned text table.
func FormatSampling(plan sampling.Plan, rows []SamplingRow) string {
	plan.Normalize()
	var b strings.Builder
	fmt.Fprintf(&b, "Sampled simulation vs full detail (interval %d insts, 1-in-%d detailed, %.0f%% confidence)\n",
		plan.IntervalInsts, plan.DetailEvery, plan.Confidence*100)
	fmt.Fprintf(&b, "%-10s %10s %12s %10s %8s %7s %10s %9s\n",
		"workload", "actual", "estimated", "±bound", "err%", "within", "work-full", "work-smp")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10d %12.0f %10.0f %8.2f %7t %10.0f %9.0f\n",
			r.Workload, r.ActualCycles, r.Report.EstimatedCycles, r.Report.HalfWidth,
			r.ErrPct, r.Within, r.FullWork, r.SampledWork)
	}
	return b.String()
}
