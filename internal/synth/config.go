// Package synth generates deterministic synthetic workloads parameterized
// by sharing pattern: Zipf-skewed hot lines, migratory lock-protected
// counters, flag-based producer-consumer rings, and barrier-separated
// phases. Every program is compiled through the isa.Builder against the
// standard workload address layout, so both hosts, the checkpoint
// machinery, and the fleet run synthetic specs unchanged. Generation is
// seeded per (core, phase) from the spec seed alone; the same Config
// always yields byte-identical programs, and Verify re-derives the
// expected memory image from the same choices, making every pattern
// functionally checkable under any slack scheme.
package synth

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Pattern names. Mixed rotates through the three concrete patterns, one
// per barrier phase.
const (
	PatternZipf      = "zipf"
	PatternMigratory = "migratory"
	PatternProdCons  = "prodcons"
	PatternMixed     = "mixed"
)

// Config parameterizes the generator. It is embedded in specs (the /v1
// API contract), so field names and JSON tags are stable.
type Config struct {
	// Seed drives every random choice; two configs differing only in
	// Seed produce different programs with the same shape.
	Seed int64 `json:"seed"`
	// Pattern is zipf, migratory, prodcons, or mixed.
	Pattern string `json:"pattern"`
	// Ops is the number of memory operations (or ring items) per core
	// per phase.
	Ops int `json:"ops"`
	// Phases is the number of barrier-separated phases.
	Phases int `json:"phases"`
	// HotLines is the number of logical shared-hot lines the zipf
	// pattern spreads accesses over.
	HotLines int `json:"hot_lines"`
	// ZipfAlpha is the skew exponent; 0 is uniform, larger concentrates
	// traffic on the hottest lines.
	ZipfAlpha float64 `json:"zipf_alpha"`
	// ReadPct is the percentage of zipf operations that are reads of a
	// neighbor core's slot rather than read-modify-writes of the core's
	// own slot.
	ReadPct int `json:"read_pct"`
	// Locks is the number of migratory lock/counter pairs.
	Locks int `json:"locks"`
	// RingSlots is the producer-consumer ring depth per core pair.
	RingSlots int `json:"ring_slots"`
}

// Normalize fills defaults in place and returns the config.
func (c *Config) Normalize() *Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Pattern == "" {
		c.Pattern = PatternMixed
	}
	if c.Ops == 0 {
		c.Ops = 64
	}
	if c.Phases == 0 {
		c.Phases = 3
	}
	if c.HotLines == 0 {
		c.HotLines = 16
	}
	if c.ZipfAlpha == 0 {
		c.ZipfAlpha = 1.2
	}
	if c.ReadPct == 0 {
		c.ReadPct = 40
	}
	if c.Locks == 0 {
		c.Locks = 4
	}
	if c.RingSlots == 0 {
		c.RingSlots = 4
	}
	return c
}

// Validate reports whether the config is generatable.
func (c *Config) Validate() error {
	switch c.Pattern {
	case PatternZipf, PatternMigratory, PatternProdCons, PatternMixed:
	default:
		return fmt.Errorf("synth: unknown pattern %q (want zipf, migratory, prodcons, mixed)", c.Pattern)
	}
	if c.Ops < 1 || c.Ops > 1<<16 {
		return fmt.Errorf("synth: ops=%d out of range [1, 65536]", c.Ops)
	}
	if c.Phases < 1 || c.Phases > 64 {
		return fmt.Errorf("synth: phases=%d out of range [1, 64]", c.Phases)
	}
	if c.HotLines < 1 || c.HotLines > 1024 {
		return fmt.Errorf("synth: hot_lines=%d out of range [1, 1024]", c.HotLines)
	}
	if c.ZipfAlpha < 0 || c.ZipfAlpha > 8 {
		return fmt.Errorf("synth: zipf_alpha=%g out of range [0, 8]", c.ZipfAlpha)
	}
	if c.ReadPct < 0 || c.ReadPct > 100 {
		return fmt.Errorf("synth: read_pct=%d out of range [0, 100]", c.ReadPct)
	}
	if c.Locks < 1 || c.Locks > 1024 {
		return fmt.Errorf("synth: locks=%d out of range [1, 1024]", c.Locks)
	}
	if c.RingSlots < 1 || c.RingSlots > 256 {
		return fmt.Errorf("synth: ring_slots=%d out of range [1, 256]", c.RingSlots)
	}
	return nil
}

// Canonical returns the config's canonical spec-key segment. It must stay
// stable: content-addressed spec digests are built from it.
func (c Config) Canonical() string {
	return fmt.Sprintf("seed=%d|pattern=%s|ops=%d|phases=%d|hot=%d|alpha=%g|read=%d|locks=%d|ring=%d",
		c.Seed, c.Pattern, c.Ops, c.Phases, c.HotLines, c.ZipfAlpha, c.ReadPct, c.Locks, c.RingSlots)
}

// Digest returns a short stable content digest of the config, used in
// workload names (which key machine pooling and program reuse).
func (c Config) Digest() string {
	sum := sha256.Sum256([]byte(c.Canonical()))
	return hex.EncodeToString(sum[:6])
}

// ParseConfig parses a comma-separated k=v list, e.g.
// "pattern=zipf,ops=128,alpha=1.5,seed=7". Unset keys take defaults; the
// result is normalized and validated.
func ParseConfig(s string) (Config, error) {
	var c Config
	if s != "" && s != "default" {
		for _, kv := range strings.Split(s, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return c, fmt.Errorf("synth: bad option %q (want k=v)", kv)
			}
			var err error
			switch k {
			case "seed":
				c.Seed, err = strconv.ParseInt(v, 10, 64)
			case "pattern":
				c.Pattern = v
			case "ops":
				c.Ops, err = strconv.Atoi(v)
			case "phases":
				c.Phases, err = strconv.Atoi(v)
			case "hot":
				c.HotLines, err = strconv.Atoi(v)
			case "alpha":
				c.ZipfAlpha, err = strconv.ParseFloat(v, 64)
			case "read":
				c.ReadPct, err = strconv.Atoi(v)
			case "locks":
				c.Locks, err = strconv.Atoi(v)
			case "ring":
				c.RingSlots, err = strconv.Atoi(v)
			default:
				return c, fmt.Errorf("synth: unknown option %q (want seed, pattern, ops, phases, hot, alpha, read, locks, ring)", k)
			}
			if err != nil {
				return c, fmt.Errorf("synth: option %s: %w", k, err)
			}
		}
	}
	c.Normalize()
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}
