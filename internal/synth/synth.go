package synth

import (
	"fmt"
	"math"
	"math/rand"

	"slacksim/internal/isa"
	"slacksim/internal/mem"
	"slacksim/internal/workload"
)

// Region layout inside the standard workload address space. Each region
// is 1 MiB; Programs checks the configured shapes fit.
const (
	zipfBase   = workload.SharedBase               // hot lines
	migBase    = workload.SharedBase + 0x0010_0000 // migratory counters
	pcBase     = workload.SharedBase + 0x0020_0000 // producer-consumer rings
	resBase    = workload.SharedBase + 0x0030_0000 // consumer result words
	regionSize = 0x0010_0000
	lineSize   = 64
	// pcStride is the footprint of one ring slot: a value line, a flag
	// line, and an ack line, so the three words never share a line.
	pcStride = 3 * lineSize
)

// Workload is a generated synthetic workload. It satisfies
// workload.Workload and workload.Verifier.
type Workload struct {
	cfg Config

	// cores remembers the machine size from the last Programs call so
	// Verify checks exactly the state that ran (micro.go idiom).
	cores int
}

// New builds a workload from cfg (normalized and validated).
func New(cfg Config) (*Workload, error) {
	cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Workload{cfg: cfg}, nil
}

// Config returns the (normalized) generator config.
func (w *Workload) Config() Config { return w.cfg }

// Name implements Workload. The config digest is embedded so machine
// pooling never reuses programs compiled for a different config.
func (w *Workload) Name() string {
	return fmt.Sprintf("synth-%s-%s", w.cfg.Pattern, w.cfg.Digest())
}

// InitMemory implements Workload; all regions start zeroed.
func (w *Workload) InitMemory(m *mem.Memory) error { return w.cfg.Validate() }

// phasePattern returns the concrete pattern phase p runs.
func (c Config) phasePattern(p int) string {
	if c.Pattern != PatternMixed {
		return c.Pattern
	}
	switch p % 3 {
	case 0:
		return PatternZipf
	case 1:
		return PatternMigratory
	default:
		return PatternProdCons
	}
}

// mix64 is the splitmix64 finalizer; it turns structured (seed, core,
// phase) coordinates into well-spread PRNG seeds.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rngFor returns the spec-seeded PRNG for one (core, phase) cell. Both
// program emission and Verify's expectation pass draw from identical
// streams, which is what makes regeneration-based verification sound.
func (c Config) rngFor(tid, phase int) *rand.Rand {
	h := mix64(uint64(c.Seed)) ^ mix64(uint64(tid)<<20|uint64(phase)+0x5eed)
	return rand.New(rand.NewSource(int64(h)))
}

// zipfSampler draws line ranks from a Zipf(alpha) distribution by inverse
// CDF, valid for any alpha >= 0 (alpha 0 is uniform).
type zipfSampler struct {
	cum   []float64
	total float64
}

func newZipfSampler(n int, alpha float64) *zipfSampler {
	z := &zipfSampler{cum: make([]float64, n)}
	for r := 0; r < n; r++ {
		z.total += math.Pow(float64(r+1), -alpha)
		z.cum[r] = z.total
	}
	return z
}

func (z *zipfSampler) sample(rng *rand.Rand) int {
	u := rng.Float64() * z.total
	for r, c := range z.cum {
		if u < c {
			return r
		}
	}
	return len(z.cum) - 1
}

// Per-op choice records, shared verbatim between emission and Verify.
type zipfOp struct {
	line int
	read bool
}

type migOp struct{ lock int }

func (c Config) zipfOps(tid, phase int) []zipfOp {
	rng := c.rngFor(tid, phase)
	z := newZipfSampler(c.HotLines, c.ZipfAlpha)
	ops := make([]zipfOp, c.Ops)
	for i := range ops {
		ops[i] = zipfOp{line: z.sample(rng), read: rng.Intn(100) < c.ReadPct}
	}
	return ops
}

func (c Config) migOps(tid, phase int) []migOp {
	rng := c.rngFor(tid, phase)
	ops := make([]migOp, c.Ops)
	for i := range ops {
		ops[i] = migOp{lock: rng.Intn(c.Locks)}
	}
	return ops
}

// pcValues returns the values pair k's producer pushes in one phase; the
// stream is seeded from the producer core's (tid, phase) cell, so the
// consumer's Verify expectation regenerates it exactly.
func (c Config) pcValues(producerTid, phase int) []int64 {
	rng := c.rngFor(producerTid, phase)
	vals := make([]int64, c.Ops)
	for i := range vals {
		vals[i] = 1 + rng.Int63n(1<<16)
	}
	return vals
}

// Addresses. Zipf gives every core its own word slot inside each logical
// hot line; with more than 8 cores a logical line becomes a group of
// ceil(cores/8) physical lines so slots never collide.
func zipfGroups(cores int) int { return (cores + 7) / 8 }

func zipfSlotAddr(line, tid, cores int) uint64 {
	phys := line*zipfGroups(cores) + tid/8
	return zipfBase + uint64(phys)*lineSize + uint64(tid%8)*8
}

func migCounterAddr(lock int) uint64 { return migBase + uint64(lock)*lineSize }

func pcSlotAddr(pair, slot, ringSlots int) (val, flag, ack uint64) {
	base := pcBase + uint64(pair*ringSlots+slot)*pcStride
	return base, base + lineSize, base + 2*lineSize
}

func resAddr(tid int) uint64 { return resBase + uint64(tid)*lineSize }

func (c Config) checkShape(cores int) error {
	if zipf := uint64(c.HotLines*zipfGroups(cores)) * lineSize; zipf > regionSize {
		return fmt.Errorf("synth: %d hot lines x %d cores need %d bytes, region is %d", c.HotLines, cores, zipf, regionSize)
	}
	if pairs := cores / 2; uint64(pairs*c.RingSlots)*pcStride > regionSize {
		return fmt.Errorf("synth: %d ring slots x %d pairs overflow the ring region", c.RingSlots, pairs)
	}
	return nil
}

// Programs implements Workload.
func (w *Workload) Programs(numCores int) ([]*isa.Program, error) {
	if numCores < 1 {
		return nil, fmt.Errorf("synth: need at least one core")
	}
	if err := w.cfg.Validate(); err != nil {
		return nil, err
	}
	if err := w.cfg.checkShape(numCores); err != nil {
		return nil, err
	}
	w.cores = numCores
	progs := make([]*isa.Program, numCores)
	for tid := 0; tid < numCores; tid++ {
		progs[tid] = w.program(tid, numCores)
	}
	return progs, nil
}

// Registers: 3-7 are per-op scratch; rSum survives the whole program so
// a consumer's running total carries across mixed-pattern phases.
const (
	rAddr isa.Reg = 3
	rTmp  isa.Reg = 4
	rVal  isa.Reg = 5
	rNeed isa.Reg = 6
	rLock isa.Reg = 7
	rSum  isa.Reg = 12
)

func (w *Workload) program(tid, cores int) *isa.Program {
	c := w.cfg
	b := isa.NewBuilder(fmt.Sprintf("%s.t%d", w.Name(), tid))
	b.Li(rSum, 0)
	// pcItem numbers ring items cumulatively across phases so a reused
	// slot's flag/ack sequence numbers keep increasing — a fresh phase
	// can never mistake a stale flag for its own item.
	pcItem := 0
	for phase := 0; phase < c.Phases; phase++ {
		switch c.phasePattern(phase) {
		case PatternZipf:
			for _, op := range c.zipfOps(tid, phase) {
				if op.read {
					neighbor := (tid + 1) % cores
					b.Li(rAddr, int64(zipfSlotAddr(op.line, neighbor, cores)))
					b.Load(rTmp, rAddr, 0)
				} else {
					b.Li(rAddr, int64(zipfSlotAddr(op.line, tid, cores)))
					b.Load(rTmp, rAddr, 0)
					b.Addi(rTmp, rTmp, 1)
					b.Store(rTmp, rAddr, 0)
				}
			}
		case PatternMigratory:
			for _, op := range c.migOps(tid, phase) {
				b.Li(rLock, int64(workload.LockAddr(op.lock)))
				b.Lock(rLock, 0)
				b.Li(rAddr, int64(migCounterAddr(op.lock)))
				b.Load(rTmp, rAddr, 0)
				b.Addi(rTmp, rTmp, 1)
				b.Store(rTmp, rAddr, 0)
				b.Unlock(rLock, 0)
			}
		case PatternProdCons:
			pcItem = w.emitProdCons(b, tid, cores, phase, pcItem)
		}
		b.Barrier(int64(phase))
	}
	b.Halt()
	return b.MustProgram()
}

// emitProdCons emits one producer-consumer phase for core tid. Cores pair
// up as (2k producer, 2k+1 consumer); an unpaired last core just waits at
// the barrier. The protocol is flag-based: the producer writes the value,
// then publishes sequence number g+1 in the slot's flag word; the
// consumer spins on the flag, reads the value, and publishes g+1 in the
// ack word, which the producer spins on before reusing the slot. Stores
// commit in program order to the shared memory image, so the value is
// always in place before the flag is observable — under any slack scheme.
func (w *Workload) emitProdCons(b *isa.Builder, tid, cores, phase, itemBase int) int {
	c := w.cfg
	pair := tid / 2
	if tid >= cores-cores%2 { // unpaired odd-count straggler
		return itemBase + c.Ops
	}
	producer := tid%2 == 0
	var vals []int64
	if producer {
		vals = c.pcValues(tid, phase)
	}
	for i := 0; i < c.Ops; i++ {
		g := itemBase + i
		val, flag, ack := pcSlotAddr(pair, g%c.RingSlots, c.RingSlots)
		if producer {
			if g >= c.RingSlots {
				// Wait for the slot's previous occupant to be consumed.
				b.Li(rAddr, int64(ack))
				b.Li(rNeed, int64(g-c.RingSlots+1))
				top := b.Here()
				b.Load(rTmp, rAddr, 0)
				b.Blt(rTmp, rNeed, top)
			}
			b.Li(rVal, vals[i])
			b.Li(rAddr, int64(val))
			b.Store(rVal, rAddr, 0)
			b.Li(rVal, int64(g+1))
			b.Li(rAddr, int64(flag))
			b.Store(rVal, rAddr, 0)
		} else {
			b.Li(rAddr, int64(flag))
			b.Li(rNeed, int64(g+1))
			top := b.Here()
			b.Load(rTmp, rAddr, 0)
			b.Blt(rTmp, rNeed, top)
			b.Li(rAddr, int64(val))
			b.Load(rTmp, rAddr, 0)
			b.Op3(isa.Add, rSum, rSum, rTmp)
			b.Li(rVal, int64(g+1))
			b.Li(rAddr, int64(ack))
			b.Store(rVal, rAddr, 0)
		}
	}
	if !producer {
		b.Li(rAddr, int64(resAddr(tid)))
		b.Store(rSum, rAddr, 0)
	}
	return itemBase + c.Ops
}

// expected is the functional reference: the memory image the run must
// produce, derived by regenerating every random choice.
type expected struct {
	zipf  [][]int64 // [tid][line] increments to the core's own slot
	locks []int64   // [lock] total increments
	pcSum []int64   // [tid] consumer running totals (0 for non-consumers)
}

func (c Config) expected(cores int) expected {
	e := expected{
		zipf:  make([][]int64, cores),
		locks: make([]int64, c.Locks),
		pcSum: make([]int64, cores),
	}
	for tid := range e.zipf {
		e.zipf[tid] = make([]int64, c.HotLines)
	}
	for phase := 0; phase < c.Phases; phase++ {
		switch c.phasePattern(phase) {
		case PatternZipf:
			for tid := 0; tid < cores; tid++ {
				for _, op := range c.zipfOps(tid, phase) {
					if !op.read {
						e.zipf[tid][op.line]++
					}
				}
			}
		case PatternMigratory:
			for tid := 0; tid < cores; tid++ {
				for _, op := range c.migOps(tid, phase) {
					e.locks[op.lock]++
				}
			}
		case PatternProdCons:
			for pair := 0; pair < cores/2; pair++ {
				for _, v := range c.pcValues(2*pair, phase) {
					e.pcSum[2*pair+1] += v
				}
			}
		}
	}
	return e
}

// Verify implements workload.Verifier for the machine size of the last
// Programs call.
func (w *Workload) Verify(m *mem.Memory) error {
	n := w.cores
	if n == 0 {
		n = 8
	}
	return w.VerifyCores(m, n)
}

// VerifyCores checks the simulated memory image against the regenerated
// functional reference for a numCores-machine run.
func (w *Workload) VerifyCores(m *mem.Memory, numCores int) error {
	c := w.cfg
	e := c.expected(numCores)
	for tid := 0; tid < numCores; tid++ {
		for line := 0; line < c.HotLines; line++ {
			addr := zipfSlotAddr(line, tid, numCores)
			if got := int64(m.Read(addr)); got != e.zipf[tid][line] {
				return fmt.Errorf("synth: zipf slot (core %d, line %d) = %d, want %d", tid, line, got, e.zipf[tid][line])
			}
		}
		if got := int64(m.Read(resAddr(tid))); got != e.pcSum[tid] {
			return fmt.Errorf("synth: consumer sum of core %d = %d, want %d", tid, got, e.pcSum[tid])
		}
	}
	for lock := 0; lock < c.Locks; lock++ {
		if got := int64(m.Read(migCounterAddr(lock))); got != e.locks[lock] {
			return fmt.Errorf("synth: migratory counter %d = %d, want %d", lock, got, e.locks[lock])
		}
	}
	return nil
}
