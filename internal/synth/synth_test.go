package synth

import (
	"fmt"
	"testing"
)

func TestParseConfig(t *testing.T) {
	c, err := ParseConfig("pattern=zipf,ops=128,alpha=1.5,seed=7,hot=32,read=25,locks=8,ring=2,phases=4")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, Pattern: "zipf", Ops: 128, Phases: 4, HotLines: 32, ZipfAlpha: 1.5, ReadPct: 25, Locks: 8, RingSlots: 2}
	if c != want {
		t.Fatalf("ParseConfig = %+v, want %+v", c, want)
	}
	if _, err := ParseConfig("bogus=1"); err == nil {
		t.Error("unknown key must error")
	}
	if _, err := ParseConfig("ops"); err == nil {
		t.Error("missing = must error")
	}
	if _, err := ParseConfig("pattern=nope"); err == nil {
		t.Error("unknown pattern must error")
	}
	if _, err := ParseConfig(""); err != nil {
		t.Errorf("empty string must yield the default config: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Pattern: "x", Ops: 1, Phases: 1, HotLines: 1, Locks: 1, RingSlots: 1, Seed: 1, ZipfAlpha: 1, ReadPct: 1},
		{Pattern: PatternZipf, Ops: 0, Phases: 1, HotLines: 1, Locks: 1, RingSlots: 1, Seed: 1, ZipfAlpha: 1, ReadPct: 1},
		{Pattern: PatternZipf, Ops: 1, Phases: 1, HotLines: 2048, Locks: 1, RingSlots: 1, Seed: 1, ZipfAlpha: 1, ReadPct: 1},
		{Pattern: PatternZipf, Ops: 1, Phases: 1, HotLines: 1, Locks: 1, RingSlots: 1, Seed: 1, ZipfAlpha: -1, ReadPct: 1},
		{Pattern: PatternZipf, Ops: 1, Phases: 1, HotLines: 1, Locks: 1, RingSlots: 1, Seed: 1, ZipfAlpha: 1, ReadPct: 101},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: %+v must fail validation", i, c)
		}
	}
	var def Config
	def.Normalize()
	if err := def.Validate(); err != nil {
		t.Fatalf("normalized default invalid: %v", err)
	}
}

func TestCanonicalAndDigestStable(t *testing.T) {
	var c Config
	c.Normalize()
	const wantCanon = "seed=1|pattern=mixed|ops=64|phases=3|hot=16|alpha=1.2|read=40|locks=4|ring=4"
	if got := c.Canonical(); got != wantCanon {
		t.Fatalf("Canonical() = %q, want %q (spec digests depend on this)", got, wantCanon)
	}
	if got := c.Digest(); got != c.Digest() || len(got) != 12 {
		t.Fatalf("Digest() unstable or wrong length: %q", got)
	}
	c2 := c
	c2.Seed = 2
	if c2.Digest() == c.Digest() {
		t.Fatal("different seeds must digest differently")
	}
}

func TestProgramsDeterministic(t *testing.T) {
	for _, pattern := range []string{PatternZipf, PatternMigratory, PatternProdCons, PatternMixed} {
		cfg := Config{Pattern: pattern, Seed: 42}
		w1, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w2, _ := New(cfg)
		for _, cores := range []int{1, 2, 5, 8, 16} {
			p1, err := w1.Programs(cores)
			if err != nil {
				t.Fatalf("%s/%d cores: %v", pattern, cores, err)
			}
			p2, _ := w2.Programs(cores)
			for tid := range p1 {
				a, b := p1[tid].Insts, p2[tid].Insts
				if len(a) != len(b) {
					t.Fatalf("%s/%d cores: core %d program lengths differ", pattern, cores, tid)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s/%d cores: core %d inst %d differs: %+v vs %+v", pattern, cores, tid, i, a[i], b[i])
					}
				}
			}
		}
	}
}

func TestSeedChangesPrograms(t *testing.T) {
	w1, _ := New(Config{Pattern: PatternZipf, Seed: 1})
	w2, _ := New(Config{Pattern: PatternZipf, Seed: 2})
	p1, err1 := w1.Programs(4)
	p2, err2 := w2.Programs(4)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	same := true
	for tid := range p1 {
		if len(p1[tid].Insts) != len(p2[tid].Insts) {
			same = false
			break
		}
		for i := range p1[tid].Insts {
			if p1[tid].Insts[i] != p2[tid].Insts[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestNamesEmbedConfig(t *testing.T) {
	w1, _ := New(Config{Pattern: PatternZipf, Seed: 1})
	w2, _ := New(Config{Pattern: PatternZipf, Seed: 2})
	if w1.Name() == w2.Name() {
		t.Fatal("names must differ per config (machine pooling keys program reuse on the name)")
	}
}

func TestZipfSamplerSkewAndRange(t *testing.T) {
	cfg := Config{Pattern: PatternZipf, Seed: 9, Ops: 2000, HotLines: 8, ZipfAlpha: 1.5}
	cfg.Normalize()
	counts := make([]int, cfg.HotLines)
	for _, op := range cfg.zipfOps(0, 0) {
		if op.line < 0 || op.line >= cfg.HotLines {
			t.Fatalf("line %d out of range", op.line)
		}
		counts[op.line]++
	}
	if counts[0] <= counts[cfg.HotLines-1] {
		t.Fatalf("alpha=1.5 must skew to low ranks: counts=%v", counts)
	}
	// Uniform (alpha=0) must still cover the range.
	uni := cfg
	uni.ZipfAlpha = 0
	hit := 0
	ucounts := make([]int, uni.HotLines)
	for _, op := range uni.zipfOps(0, 0) {
		ucounts[op.line]++
	}
	for _, n := range ucounts {
		if n > 0 {
			hit++
		}
	}
	if hit < uni.HotLines {
		t.Fatalf("alpha=0 should touch every line over %d ops: %v", uni.Ops, ucounts)
	}
}

func TestExpectedConservation(t *testing.T) {
	// Totals must be conserved: migratory counters sum to cores*ops per
	// migratory phase; zipf increments sum to the number of write ops.
	cfg := Config{Pattern: PatternMixed, Seed: 3, Phases: 6}
	cfg.Normalize()
	cfg.Phases = 6
	const cores = 4
	e := cfg.expected(cores)
	var lockTotal int64
	for _, n := range e.locks {
		lockTotal += n
	}
	migPhases := 0
	for p := 0; p < cfg.Phases; p++ {
		if cfg.phasePattern(p) == PatternMigratory {
			migPhases++
		}
	}
	if want := int64(migPhases * cores * cfg.Ops); lockTotal != want {
		t.Fatalf("lock increments total %d, want %d", lockTotal, want)
	}
	for pair := 0; pair < cores/2; pair++ {
		if e.pcSum[2*pair] != 0 {
			t.Errorf("producer %d must have zero consumer sum", 2*pair)
		}
		if e.pcSum[2*pair+1] <= 0 {
			t.Errorf("consumer %d sum must be positive", 2*pair+1)
		}
	}
}

func TestCheckShapeRejectsOverflow(t *testing.T) {
	w, _ := New(Config{Pattern: PatternZipf, HotLines: 1024})
	if _, err := w.Programs(1024); err == nil {
		t.Fatal("1024 hot lines x 1024 cores must overflow the region")
	}
	if _, err := w.Programs(8); err != nil {
		t.Fatalf("1024 hot lines x 8 cores must fit: %v", err)
	}
}

func TestPhasePatternRotation(t *testing.T) {
	c := Config{Pattern: PatternMixed}
	want := []string{PatternZipf, PatternMigratory, PatternProdCons, PatternZipf}
	for p, wp := range want {
		if got := c.phasePattern(p); got != wp {
			t.Errorf("mixed phase %d = %s, want %s", p, got, wp)
		}
	}
	for _, fixed := range []string{PatternZipf, PatternMigratory, PatternProdCons} {
		c := Config{Pattern: fixed}
		for p := 0; p < 4; p++ {
			if c.phasePattern(p) != fixed {
				t.Errorf("%s must not rotate", fixed)
			}
		}
	}
}

func ExampleParseConfig() {
	c, _ := ParseConfig("pattern=zipf,seed=7")
	fmt.Println(c.Pattern, c.Seed)
	// Output: zipf 7
}
