package workload

import (
	"fmt"

	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// LU is a right-looking dense LU factorization without pivoting over an
// N×N matrix, the stand-in for SPLASH-2 LU (256×256 in the paper). At
// step k the owner of column k (core k mod P) scales the subdiagonal of
// column k; after a barrier every core updates its cyclic share of the
// trailing rows; another barrier closes the step. The sharing pattern is
// the paper's LU: the pivot row and column are read-broadcast to all
// cores each step, everything else is owner-computes.
type LU struct {
	// N is the matrix dimension (a power of two so the kernel can use
	// shifts for addressing).
	N int
}

// NewLU returns an LU workload over an n×n matrix.
func NewLU(n int) *LU { return &LU{N: n} }

// Name implements Workload.
func (l *LU) Name() string { return fmt.Sprintf("lu-%dx%d", l.N, l.N) }

func (l *LU) check(p int) error {
	if !isPow2(l.N) || l.N < 4 {
		return fmt.Errorf("lu: N=%d must be a power of two >= 4", l.N)
	}
	if p > 0 && !isPow2(p) {
		return fmt.Errorf("lu: core count %d must be a power of two", p)
	}
	return nil
}

func (l *LU) aBase() uint64 { return SharedBase }

// element returns the deterministic initial value of A[i][j]: a diagonally
// dominant matrix so the factorization is numerically tame.
func (l *LU) element(i, j int) float64 {
	v := float64((i*29+j*17)%97)/97.0 - 0.5
	if i == j {
		v += float64(l.N)
	}
	return v
}

// InitMemory implements Workload.
func (l *LU) InitMemory(m *mem.Memory) error {
	if err := l.check(0); err != nil {
		return err
	}
	for i := 0; i < l.N; i++ {
		for j := 0; j < l.N; j++ {
			m.WriteFloat(l.addr(i, j), l.element(i, j))
		}
	}
	return nil
}

func (l *LU) addr(i, j int) uint64 {
	return l.aBase() + uint64(i*l.N+j)*8
}

// Programs implements Workload.
func (l *LU) Programs(numCores int) ([]*isa.Program, error) {
	if err := l.check(numCores); err != nil {
		return nil, err
	}
	progs := make([]*isa.Program, numCores)
	for tid := 0; tid < numCores; tid++ {
		progs[tid] = l.program(tid, numCores)
	}
	return progs, nil
}

// Register conventions.
const (
	luRK    isa.Reg = 3  // step k
	luRI    isa.Reg = 4  // row i
	luRJ    isa.Reg = 5  // column j
	luRN    isa.Reg = 6  // N
	luRA    isa.Reg = 7  // &A[0][0]
	luRT0   isa.Reg = 8  // scratch
	luRT1   isa.Reg = 9  // scratch
	luRPiv  isa.Reg = 10 // pivot value
	luRLik  isa.Reg = 11 // A[i][k]
	luRAkj  isa.Reg = 12 // A[k][j]
	luRAij  isa.Reg = 13 // A[i][j]
	luRAdr  isa.Reg = 14 // element address
	luRRowI isa.Reg = 15 // &A[i][0]
	luRRowK isa.Reg = 16 // &A[k][0]
	luRTid  isa.Reg = 17 // this core's id
	luRF    isa.Reg = 18 // fp scratch
)

func (l *LU) program(tid, p int) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("%s.t%d", l.Name(), tid))
	n := l.N
	logN := log2(n)

	b.Li(luRN, int64(n))
	b.Li(luRA, int64(l.aBase()))
	b.Li(luRTid, int64(tid))
	b.Li(luRK, 0)

	kLoop := b.Here()
	skipScale := b.NewLabel()

	// Column scaling: only the owner of column k (k mod P == tid).
	b.OpImm(isa.Andi, luRT0, luRK, int64(p-1))
	b.Bne(luRT0, luRTid, skipScale)
	{
		// pivot = A[k][k].
		b.OpImm(isa.Shli, luRT0, luRK, int64(logN))
		b.Op3(isa.Add, luRT0, luRT0, luRK)
		b.OpImm(isa.Shli, luRT0, luRT0, 3)
		b.Op3(isa.Add, luRAdr, luRA, luRT0)
		b.Load(luRPiv, luRAdr, 0)
		// for i = k+1 .. n-1: A[i][k] /= pivot.
		b.Addi(luRI, luRK, 1)
		scaleDone := b.NewLabel()
		b.Bge(luRI, luRN, scaleDone)
		scaleTop := b.Here()
		b.OpImm(isa.Shli, luRT0, luRI, int64(logN))
		b.Op3(isa.Add, luRT0, luRT0, luRK)
		b.OpImm(isa.Shli, luRT0, luRT0, 3)
		b.Op3(isa.Add, luRAdr, luRA, luRT0)
		b.Load(luRF, luRAdr, 0)
		b.Op3(isa.FDiv, luRF, luRF, luRPiv)
		b.Store(luRF, luRAdr, 0)
		b.Addi(luRI, luRI, 1)
		b.Blt(luRI, luRN, scaleTop)
		b.Bind(scaleDone)
	}
	b.Bind(skipScale)
	b.Barrier(0)

	// Trailing update: rows i > k with i mod P == tid.
	// First owned row: i0 = k+1 + ((tid - k - 1) mod P).
	b.Op3(isa.Sub, luRT0, luRTid, luRK)
	b.Subi(luRT0, luRT0, 1)
	b.OpImm(isa.Andi, luRT0, luRT0, int64(p-1))
	b.Addi(luRI, luRK, 1)
	b.Op3(isa.Add, luRI, luRI, luRT0)
	updDone := b.NewLabel()
	b.Bge(luRI, luRN, updDone)
	rowTop := b.Here()
	{
		// rowI = &A[i][0]; rowK = &A[k][0]; lik = A[i][k].
		b.OpImm(isa.Shli, luRT0, luRI, int64(logN+3))
		b.Op3(isa.Add, luRRowI, luRA, luRT0)
		b.OpImm(isa.Shli, luRT0, luRK, int64(logN+3))
		b.Op3(isa.Add, luRRowK, luRA, luRT0)
		b.OpImm(isa.Shli, luRT0, luRK, 3)
		b.Op3(isa.Add, luRAdr, luRRowI, luRT0)
		b.Load(luRLik, luRAdr, 0)
		// for j = k+1 .. n-1: A[i][j] -= lik * A[k][j].
		b.Addi(luRJ, luRK, 1)
		colDone := b.NewLabel()
		b.Bge(luRJ, luRN, colDone)
		colTop := b.Here()
		b.OpImm(isa.Shli, luRT1, luRJ, 3)
		b.Op3(isa.Add, luRAdr, luRRowK, luRT1)
		b.Load(luRAkj, luRAdr, 0)
		b.Op3(isa.Add, luRAdr, luRRowI, luRT1)
		b.Load(luRAij, luRAdr, 0)
		b.Op3(isa.FMul, luRF, luRLik, luRAkj)
		b.Op3(isa.FSub, luRAij, luRAij, luRF)
		b.Store(luRAij, luRAdr, 0)
		b.Addi(luRJ, luRJ, 1)
		b.Blt(luRJ, luRN, colTop)
		b.Bind(colDone)
	}
	b.Addi(luRI, luRI, int64(p))
	b.Blt(luRI, luRN, rowTop)
	b.Bind(updDone)
	b.Barrier(0)

	b.Addi(luRK, luRK, 1)
	b.OpImm(isa.Slti, luRT0, luRK, int64(n-1))
	b.Bne(luRT0, isa.Zero, kLoop)
	b.Halt()
	return b.MustProgram()
}

// Reference computes the expected factorized matrix (L below the diagonal,
// U on and above) with the exact same operation order as the kernel.
func (l *LU) Reference() []float64 {
	n := l.N
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = l.element(i, j)
		}
	}
	for k := 0; k < n-1; k++ {
		piv := a[k*n+k]
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= piv
		}
		for i := k + 1; i < n; i++ {
			lik := a[i*n+k]
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= lik * a[k*n+j]
			}
		}
	}
	return a
}

// Verify checks the simulated factorization bit for bit.
func (l *LU) Verify(m *mem.Memory) error {
	want := l.Reference()
	for i := 0; i < l.N; i++ {
		for j := 0; j < l.N; j++ {
			got := m.Read(l.addr(i, j))
			if got != isa.F2U(want[i*l.N+j]) {
				return fmt.Errorf("lu: A[%d][%d] = %g, want %g",
					i, j, isa.U2F(got), want[i*l.N+j])
			}
		}
	}
	return nil
}
