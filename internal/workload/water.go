package workload

import (
	"fmt"

	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// Water is an O(N²) molecular-dynamics kernel shaped like SPLASH-2
// Water-Nsquared (216 molecules in the paper): every timestep, each core
// computes the pair interactions for its share of molecules, reading every
// other molecule's position (all-to-all read sharing) and accumulating
// forces into *both* molecules of a pair under per-molecule locks —
// Water's signature migratory lock pattern. A barrier separates the force
// phase from the (owner-computes) position update phase.
//
// Positions are floating point; force accumulators are fixed-point
// integers (scaled by 2^16) so the final state is independent of lock
// acquisition order and verifiable bit for bit.
type Water struct {
	// Molecules is the molecule count.
	Molecules int
	// Steps is the number of timesteps.
	Steps int
}

// NewWater returns a Water workload.
func NewWater(n, steps int) *Water { return &Water{Molecules: n, Steps: steps} }

// Name implements Workload.
func (w *Water) Name() string { return fmt.Sprintf("water-%d", w.Molecules) }

func (w *Water) check() error {
	if w.Molecules < 4 || w.Molecules > 1<<20 {
		return fmt.Errorf("water: Molecules=%d out of range", w.Molecules)
	}
	if w.Steps < 1 {
		return fmt.Errorf("water: Steps=%d must be >= 1", w.Steps)
	}
	return nil
}

// Layout: molecule i owns one cache line.
//
//	+0 position (float64 bits)
//	+8 force accumulator (fixed-point int, scale 2^16)
const (
	wMolPos   = 0
	wMolForce = 8
	wMolSize  = 64
	// wScale is the fixed-point scale for forces.
	wScale = 1 << 16
)

func (w *Water) molAddr(i int) uint64 { return SharedBase + uint64(i)*wMolSize }

// initPos is molecule i's deterministic initial position.
func (w *Water) initPos(i int) float64 {
	return float64(i) + float64((i*31)%7)/7.0
}

// InitMemory implements Workload.
func (w *Water) InitMemory(m *mem.Memory) error {
	if err := w.check(); err != nil {
		return err
	}
	for i := 0; i < w.Molecules; i++ {
		m.WriteFloat(w.molAddr(i)+wMolPos, w.initPos(i))
		m.Write(w.molAddr(i)+wMolForce, 0)
	}
	return nil
}

// pairForce computes the fixed-point interaction for positions a, b: the
// (symmetric) force magnitude 1/((a-b)² + 1) scaled to integer.
func pairForce(a, b float64) int64 {
	d := a - b
	f := 1.0 / (d*d + 1.0)
	return int64(f * wScale)
}

// Programs implements Workload.
func (w *Water) Programs(numCores int) ([]*isa.Program, error) {
	if err := w.check(); err != nil {
		return nil, err
	}
	progs := make([]*isa.Program, numCores)
	for tid := 0; tid < numCores; tid++ {
		progs[tid] = w.program(tid, numCores)
	}
	return progs, nil
}

// Register conventions.
const (
	waRStep isa.Reg = 3
	waRI    isa.Reg = 4
	waRJ    isa.Reg = 5
	waRHi   isa.Reg = 6
	waRN    isa.Reg = 7
	waRMolI isa.Reg = 8  // &mol[i]
	waRMolJ isa.Reg = 9  // &mol[j]
	waRPi   isa.Reg = 10 // pos[i]
	waRPj   isa.Reg = 11 // pos[j]
	waRF    isa.Reg = 12 // force (int)
	waRT0   isa.Reg = 13
	waRT1   isa.Reg = 14
	waRBase isa.Reg = 15 // &mol[0]
	waROne  isa.Reg = 16 // 1.0
	waRDt   isa.Reg = 17 // position step scale (1/2^24 as float)
)

func (w *Water) program(tid, p int) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("%s.t%d", w.Name(), tid))
	lo, hi := splitRange(w.Molecules, tid, p)

	b.Li(waRBase, int64(w.molAddr(0)))
	b.Li(waRN, int64(w.Molecules))
	b.Lf(waROne, 1.0)
	b.Lf(waRDt, 1.0/float64(1<<24))
	b.Li(waRStep, int64(w.Steps))
	stepTop := b.Here()

	// ---- Force phase: pairs (i, j) with j > i, for my i's.
	if lo < hi {
		b.Li(waRI, int64(lo))
		b.Li(waRHi, int64(hi))
		iTop := b.Here()
		// &mol[i] = base + i*64; pos[i].
		b.OpImm(isa.Shli, waRT0, waRI, 6)
		b.Op3(isa.Add, waRMolI, waRBase, waRT0)
		b.Load(waRPi, waRMolI, wMolPos)
		b.Addi(waRJ, waRI, 1)
		jDone := b.NewLabel()
		b.Bge(waRJ, waRN, jDone)
		jTop := b.Here()
		b.OpImm(isa.Shli, waRT0, waRJ, 6)
		b.Op3(isa.Add, waRMolJ, waRBase, waRT0)
		b.Load(waRPj, waRMolJ, wMolPos)
		// f = int((1/((pi-pj)^2+1)) * 2^16).
		b.Op3(isa.FSub, waRT0, waRPi, waRPj)
		b.Op3(isa.FMul, waRT0, waRT0, waRT0)
		b.Op3(isa.FAdd, waRT0, waRT0, waROne)
		b.Op3(isa.FDiv, waRT0, waROne, waRT0)
		b.Li(waRT1, wScale)
		b.OpImm(isa.Itof, waRT1, waRT1, 0)
		b.Op3(isa.FMul, waRT0, waRT0, waRT1)
		b.OpImm(isa.Ftoi, waRF, waRT0, 0)
		// force[i] += f under lock i; force[j] -= f under lock j.
		b.Lock(waRMolI, wMolForce+8) // lock word shares the molecule line
		b.Load(waRT0, waRMolI, wMolForce)
		b.Op3(isa.Add, waRT0, waRT0, waRF)
		b.Store(waRT0, waRMolI, wMolForce)
		b.Unlock(waRMolI, wMolForce+8)
		b.Lock(waRMolJ, wMolForce+8)
		b.Load(waRT0, waRMolJ, wMolForce)
		b.Op3(isa.Sub, waRT0, waRT0, waRF)
		b.Store(waRT0, waRMolJ, wMolForce)
		b.Unlock(waRMolJ, wMolForce+8)
		b.Addi(waRJ, waRJ, 1)
		b.Blt(waRJ, waRN, jTop)
		b.Bind(jDone)
		b.Addi(waRI, waRI, 1)
		b.Blt(waRI, waRHi, iTop)
	}
	b.Barrier(0)

	// ---- Update phase: pos[i] += float(force[i]) * dt; force[i] = 0.
	if lo < hi {
		b.Li(waRI, int64(lo))
		b.Li(waRHi, int64(hi))
		uTop := b.Here()
		b.OpImm(isa.Shli, waRT0, waRI, 6)
		b.Op3(isa.Add, waRMolI, waRBase, waRT0)
		b.Load(waRT0, waRMolI, wMolForce)
		b.OpImm(isa.Itof, waRT0, waRT0, 0)
		b.Op3(isa.FMul, waRT0, waRT0, waRDt)
		b.Load(waRT1, waRMolI, wMolPos)
		b.Op3(isa.FAdd, waRT1, waRT1, waRT0)
		b.Store(waRT1, waRMolI, wMolPos)
		b.Store(isa.Zero, waRMolI, wMolForce)
		b.Addi(waRI, waRI, 1)
		b.Blt(waRI, waRHi, uTop)
	}
	b.Barrier(0)

	b.Subi(waRStep, waRStep, 1)
	b.Bne(waRStep, isa.Zero, stepTop)
	b.Halt()
	return b.MustProgram()
}

// Reference computes the expected final positions (integer force sums are
// order-independent, so this matches the simulation bit for bit).
func (w *Water) Reference() []float64 {
	n := w.Molecules
	pos := make([]float64, n)
	force := make([]int64, n)
	for i := range pos {
		pos[i] = w.initPos(i)
	}
	dt := 1.0 / float64(1<<24)
	for s := 0; s < w.Steps; s++ {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				f := pairForce(pos[i], pos[j])
				force[i] += f
				force[j] -= f
			}
		}
		for i := 0; i < n; i++ {
			pos[i] += float64(force[i]) * dt
			force[i] = 0
		}
	}
	return pos
}

// Verify checks final positions bit for bit.
func (w *Water) Verify(m *mem.Memory) error {
	want := w.Reference()
	for i := 0; i < w.Molecules; i++ {
		got := m.Read(w.molAddr(i) + wMolPos)
		if got != isa.F2U(want[i]) {
			return fmt.Errorf("water: pos[%d] = %g, want %g", i, isa.U2F(got), want[i])
		}
	}
	return nil
}
