// Package workload provides the benchmark programs the simulator runs:
// reimplementations of the four SPLASH-2 kernels the paper evaluates
// (Barnes, FFT, LU, Water-Nsquared) plus microbenchmarks, all written as
// real programs for the target ISA via the isa.Builder.
//
// The originals cannot be run (they are C programs compiled to SimpleScalar
// PISA); these kernels reproduce what slack simulation is sensitive to —
// the sharing and synchronization patterns: barrier-phased stages with
// partner exchange (FFT), owner-computes with broadcast rows (LU),
// lock-protected tree updates and read-shared traversals (Barnes), and
// O(N²) pair interactions with per-molecule accumulation locks
// (Water-Nsquared). Each kernel is functionally real: a Go reference
// implementation computes the expected memory image and Verify checks the
// simulated result bit-for-bit, so the whole stack (ISA semantics, OoO
// core, coherence, slack engine) is validated end to end.
package workload

import (
	"fmt"

	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// Workload is the contract every benchmark satisfies; it is structurally
// identical to engine.Workload so any value here plugs straight into the
// engine.
type Workload interface {
	Name() string
	Programs(numCores int) ([]*isa.Program, error)
	InitMemory(m *mem.Memory) error
}

// Address-space layout. All data lives well below the per-core code images
// (0x1000_0000_0000 + core<<32) so instruction and data lines never alias.
const (
	// SharedBase is where each workload's shared arrays start.
	SharedBase uint64 = 0x0100_0000
	// LockBase is where lock words live (one word each, spaced a line
	// apart to avoid false sharing between locks).
	LockBase uint64 = 0x0800_0000
	// LockStride spaces lock words one cache line apart.
	LockStride uint64 = 64
	// PrivateBase returns the start of a core's private region.
	privateBase uint64 = 0x4000_0000
	// PrivateStride spaces the per-core private regions.
	privateStride uint64 = 0x0100_0000
)

// PrivateBase returns the base address of core tid's private region.
func PrivateBase(tid int) uint64 {
	return privateBase + uint64(tid)*privateStride
}

// LockAddr returns the address of lock word i.
func LockAddr(i int) uint64 {
	return LockBase + uint64(i)*LockStride
}

// Verifier is implemented by workloads that can check the simulated memory
// image against a functional reference.
type Verifier interface {
	Verify(m *mem.Memory) error
}

// isPow2 reports whether v is a positive power of two.
func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// log2 returns floor(log2(v)) for positive v.
func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// splitRange returns the half-open [lo,hi) share of work items that core
// tid of p cores owns, distributing any remainder to the low cores.
func splitRange(items, tid, p int) (lo, hi int) {
	base := items / p
	rem := items % p
	lo = tid*base + min(tid, rem)
	sz := base
	if tid < rem {
		sz++
	}
	return lo, lo + sz
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ByName constructs a workload by its registry name with a size scale in
// [1..]; scale 1 is the quick test size, larger scales approach the
// paper's inputs. Unknown names return an error listing the choices.
func ByName(name string, scale int) (Workload, error) {
	if scale < 1 {
		scale = 1
	}
	switch name {
	case "fft":
		return NewFFT(256 * scale), nil
	case "lu":
		return NewLU(16 * scale), nil
	case "barnes":
		return NewBarnes(64*scale, 2), nil
	case "water":
		return NewWater(32*scale, 2), nil
	case "ocean":
		return NewOcean(16*scale, 4), nil
	case "radix":
		return NewRadix(128 * scale), nil
	case "falseshare":
		return NewFalseShare(512 * scale), nil
	case "private":
		return NewPrivate(1024*scale, 2), nil
	default:
		return nil, fmt.Errorf("workload: unknown %q (want fft, lu, barnes, water, ocean, radix, falseshare, private)", name)
	}
}
