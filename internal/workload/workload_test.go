package workload

import (
	"testing"
	"testing/quick"

	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

func TestSplitRangeCoversAll(t *testing.T) {
	prop := func(items8, p8 uint8) bool {
		items := int(items8)
		p := int(p8%8) + 1
		covered := 0
		prevHi := 0
		for tid := 0; tid < p; tid++ {
			lo, hi := splitRange(items, tid, p)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == items && prevHi == items
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitRangeBalanced(t *testing.T) {
	// No core's share exceeds another's by more than one item.
	for items := 0; items < 40; items++ {
		for p := 1; p <= 8; p++ {
			min, max := items, 0
			for tid := 0; tid < p; tid++ {
				lo, hi := splitRange(items, tid, p)
				if hi-lo < min {
					min = hi - lo
				}
				if hi-lo > max {
					max = hi - lo
				}
			}
			if max-min > 1 {
				t.Fatalf("items=%d p=%d imbalance %d", items, p, max-min)
			}
		}
	}
}

func TestHelpers(t *testing.T) {
	if !isPow2(1) || !isPow2(64) || isPow2(0) || isPow2(3) || isPow2(-4) {
		t.Error("isPow2 wrong")
	}
	for v, want := range map[int]int{1: 0, 2: 1, 8: 3, 9: 3, 1024: 10} {
		if got := log2(v); got != want {
			t.Errorf("log2(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestAddressRegionsDisjoint(t *testing.T) {
	// Lock words, shared data and private regions must not overlap.
	if LockBase <= SharedBase+1<<24 {
		t.Error("lock region too close to shared region")
	}
	for tid := 0; tid < 8; tid++ {
		if PrivateBase(tid) <= LockBase {
			t.Error("private region overlaps locks")
		}
		if tid > 0 && PrivateBase(tid) < PrivateBase(tid-1)+privateStride {
			t.Error("private regions overlap each other")
		}
	}
	if LockAddr(1)-LockAddr(0) != LockStride {
		t.Error("lock stride wrong")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"fft", "lu", "barnes", "water", "falseshare", "private"} {
		w, err := ByName(name, 1)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if w.Name() == "" {
			t.Errorf("%q has empty name", name)
		}
		progs, err := w.Programs(8)
		if err != nil {
			t.Errorf("%q Programs: %v", name, err)
			continue
		}
		for i, p := range progs {
			if err := p.Validate(); err != nil {
				t.Errorf("%q core %d invalid: %v", name, i, err)
			}
		}
		if err := w.InitMemory(mem.New()); err != nil {
			t.Errorf("%q InitMemory: %v", name, err)
		}
	}
	if _, err := ByName("nonsense", 1); err == nil {
		t.Error("unknown workload accepted")
	}
	// Scale below 1 is clamped, not rejected.
	if _, err := ByName("fft", 0); err != nil {
		t.Errorf("scale 0: %v", err)
	}
}

func TestProgramsEndWithBarrierThenHalt(t *testing.T) {
	// Every multi-core kernel must have each thread pass the same number
	// of barriers and end with Halt, or barrier participants would hang.
	for _, name := range []string{"fft", "lu", "barnes", "water", "falseshare"} {
		w, err := ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		progs, err := w.Programs(4)
		if err != nil {
			t.Fatal(err)
		}
		var wantBarriers = -1
		for tid, p := range progs {
			if p.Insts[p.Len()-1].Op != isa.Halt {
				t.Errorf("%s core %d does not end with halt", name, tid)
			}
			// Static barrier count must agree across threads (they all
			// execute every barrier site the same number of times by
			// construction: same loop bounds).
			n := 0
			for _, in := range p.Insts {
				if in.Op == isa.Barrier {
					n++
				}
			}
			if wantBarriers == -1 {
				wantBarriers = n
			} else if n != wantBarriers {
				t.Errorf("%s core %d has %d barrier sites, core 0 has %d",
					name, tid, n, wantBarriers)
			}
		}
	}
}

func TestWorkloadParameterValidation(t *testing.T) {
	cases := []Workload{
		NewFFT(6),        // not a power of two
		NewFFT(4),        // too small
		NewLU(3),         // not a power of two
		NewBarnes(10, 1), // bodies not a power of two
		NewBarnes(16, 0), // zero steps
		NewWater(1, 1),   // too few molecules
		NewWater(8, 0),   // zero steps
		NewFalseShare(0), // zero iterations
		NewPrivate(0, 1), // zero words
	}
	for i, w := range cases {
		if err := w.InitMemory(mem.New()); err == nil {
			if _, err2 := w.Programs(4); err2 == nil {
				t.Errorf("case %d (%s): invalid parameters accepted", i, w.Name())
			}
		}
	}
	// LU also rejects non-power-of-two core counts.
	if _, err := NewLU(16).Programs(3); err == nil {
		t.Error("LU accepted 3 cores")
	}
	// FalseShare rejects more cores than fit one line.
	if _, err := NewFalseShare(8).Programs(9); err == nil {
		t.Error("FalseShare accepted 9 cores")
	}
}

// memWithInit builds a memory image initialized by w.
func memWithInit(t *testing.T, w Workload) *mem.Memory {
	t.Helper()
	m := mem.New()
	if err := w.InitMemory(m); err != nil {
		t.Fatal(err)
	}
	return m
}
