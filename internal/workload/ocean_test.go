package workload

import (
	"math"
	"testing"
)

func TestOceanReferenceIsJacobi(t *testing.T) {
	// One sweep on a small grid, checked cell by cell against a direct
	// stencil evaluation.
	o := NewOcean(8, 1)
	got := o.Reference()
	n := o.N
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			want := (o.cell(i-1, j) + o.cell(i+1, j) + o.cell(i, j-1) + o.cell(i, j+1)) * 0.25
			if math.Abs(got[i*n+j]-want) > 1e-15 {
				t.Fatalf("cell (%d,%d) = %g, want %g", i, j, got[i*n+j], want)
			}
		}
	}
	// Boundary cells never change.
	for j := 0; j < n; j++ {
		if got[j] != o.cell(0, j) || got[(n-1)*n+j] != o.cell(n-1, j) {
			t.Fatal("boundary row changed")
		}
	}
}

func TestOceanConvergesTowardSmooth(t *testing.T) {
	// Jacobi smoothing must shrink the grid's interior variation.
	variation := func(g []float64, n int) float64 {
		v := 0.0
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-2; j++ {
				d := g[i*n+j] - g[i*n+j+1]
				v += d * d
			}
		}
		return v
	}
	short := NewOcean(16, 1).Reference()
	long := NewOcean(16, 8).Reference()
	if variation(long, 16) >= variation(short, 16) {
		t.Error("more sweeps did not smooth the grid")
	}
}

func TestOceanValidation(t *testing.T) {
	if err := NewOcean(6, 1).check(); err == nil {
		t.Error("non-power-of-two grid accepted")
	}
	if err := NewOcean(16, 0).check(); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := NewOcean(4, 1).Programs(2); err == nil {
		t.Error("tiny grid accepted")
	}
}

func TestOceanPrograms(t *testing.T) {
	o := NewOcean(16, 2)
	progs, err := o.Programs(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != 4 {
		t.Fatalf("programs = %d", len(progs))
	}
	for i, p := range progs {
		if err := p.Validate(); err != nil {
			t.Errorf("core %d: %v", i, err)
		}
	}
}

func TestOceanVerifyCatchesCorruption(t *testing.T) {
	o := NewOcean(8, 1)
	m := memWithInit(t, o)
	// Unmodified memory fails (the sweep has not run).
	if err := o.Verify(m); err == nil {
		t.Error("verify passed on unswept grid")
	}
}
