package workload

import (
	"fmt"

	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// Ocean is a red-black-free Jacobi stencil over an N×N grid, shaped like
// SPLASH-2 Ocean's nearest-neighbour sharing: each core owns a contiguous
// band of rows and, every timestep, recomputes its band from the previous
// grid (reading one boundary row from each neighbouring core — the only
// cross-core sharing), with a global barrier between steps. It extends
// the paper's benchmark pool with a sharing pattern none of the four
// original kernels has: producer-consumer reuse of band edges.
//
// The computation double-buffers between two grids, so every cell has
// exactly one writer per step and the result is deterministic and
// bit-exact against the Go reference.
type Ocean struct {
	// N is the grid dimension (a power of two, >= 8).
	N int
	// Steps is the number of Jacobi sweeps.
	Steps int
}

// NewOcean returns an Ocean workload.
func NewOcean(n, steps int) *Ocean { return &Ocean{N: n, Steps: steps} }

// Name implements Workload.
func (o *Ocean) Name() string { return fmt.Sprintf("ocean-%dx%d", o.N, o.N) }

func (o *Ocean) check() error {
	if !isPow2(o.N) || o.N < 8 {
		return fmt.Errorf("ocean: N=%d must be a power of two >= 8", o.N)
	}
	if o.Steps < 1 {
		return fmt.Errorf("ocean: Steps=%d must be >= 1", o.Steps)
	}
	return nil
}

func (o *Ocean) gridA() uint64 { return SharedBase }
func (o *Ocean) gridB() uint64 { return SharedBase + uint64(o.N*o.N)*8 }

// cell returns the deterministic initial value of grid point (i, j).
func (o *Ocean) cell(i, j int) float64 {
	return float64((i*13+j*7)%31) / 31.0
}

// InitMemory implements Workload: grid A holds the input, grid B a copy
// (so fixed boundary cells are valid in both buffers).
func (o *Ocean) InitMemory(m *mem.Memory) error {
	if err := o.check(); err != nil {
		return err
	}
	for i := 0; i < o.N; i++ {
		for j := 0; j < o.N; j++ {
			v := o.cell(i, j)
			m.WriteFloat(o.gridA()+uint64(i*o.N+j)*8, v)
			m.WriteFloat(o.gridB()+uint64(i*o.N+j)*8, v)
		}
	}
	return nil
}

// Programs implements Workload.
func (o *Ocean) Programs(numCores int) ([]*isa.Program, error) {
	if err := o.check(); err != nil {
		return nil, err
	}
	progs := make([]*isa.Program, numCores)
	for tid := 0; tid < numCores; tid++ {
		progs[tid] = o.program(tid, numCores)
	}
	return progs, nil
}

// Register conventions.
const (
	ocRStep isa.Reg = 3  // timestep counter
	ocRI    isa.Reg = 4  // row
	ocRJ    isa.Reg = 5  // column
	ocRIHi  isa.Reg = 6  // end row
	ocRJHi  isa.Reg = 7  // end column
	ocRSrc  isa.Reg = 8  // source grid base
	ocRDst  isa.Reg = 9  // destination grid base
	ocRRow  isa.Reg = 10 // &src[i][0]
	ocRDRow isa.Reg = 11 // &dst[i][0]
	ocRT0   isa.Reg = 12
	ocRT1   isa.Reg = 13
	ocRAcc  isa.Reg = 14 // stencil accumulator
	ocRQrt  isa.Reg = 15 // 0.25
	ocRTmp  isa.Reg = 16 // for buffer swap
)

func (o *Ocean) program(tid, p int) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("%s.t%d", o.Name(), tid))
	n := o.N
	logN := log2(n)
	// Interior rows 1..n-2 split into contiguous bands.
	lo, hi := splitRange(n-2, tid, p)
	lo, hi = lo+1, hi+1

	b.Li(ocRSrc, int64(o.gridA()))
	b.Li(ocRDst, int64(o.gridB()))
	b.Lf(ocRQrt, 0.25)
	b.Li(ocRStep, int64(o.Steps))
	stepTop := b.Here()

	if lo < hi {
		b.Li(ocRI, int64(lo))
		b.Li(ocRIHi, int64(hi))
		rowTop := b.Here()
		// row pointers: src + i*n*8, dst + i*n*8.
		b.OpImm(isa.Shli, ocRT0, ocRI, int64(logN+3))
		b.Op3(isa.Add, ocRRow, ocRSrc, ocRT0)
		b.Op3(isa.Add, ocRDRow, ocRDst, ocRT0)
		b.Li(ocRJ, 1)
		b.Li(ocRJHi, int64(n-1))
		colTop := b.Here()
		b.OpImm(isa.Shli, ocRT0, ocRJ, 3)
		b.Op3(isa.Add, ocRT0, ocRRow, ocRT0)
		// acc = up + down + left + right (up/down rows are ±n*8 bytes).
		b.Load(ocRAcc, ocRT0, -int64(n)*8)
		b.Load(ocRT1, ocRT0, int64(n)*8)
		b.Op3(isa.FAdd, ocRAcc, ocRAcc, ocRT1)
		b.Load(ocRT1, ocRT0, -8)
		b.Op3(isa.FAdd, ocRAcc, ocRAcc, ocRT1)
		b.Load(ocRT1, ocRT0, 8)
		b.Op3(isa.FAdd, ocRAcc, ocRAcc, ocRT1)
		b.Op3(isa.FMul, ocRAcc, ocRAcc, ocRQrt)
		// dst[i][j] = acc.
		b.OpImm(isa.Shli, ocRT0, ocRJ, 3)
		b.Op3(isa.Add, ocRT0, ocRDRow, ocRT0)
		b.Store(ocRAcc, ocRT0, 0)
		b.Addi(ocRJ, ocRJ, 1)
		b.Blt(ocRJ, ocRJHi, colTop)
		b.Addi(ocRI, ocRI, 1)
		b.Blt(ocRI, ocRIHi, rowTop)
	}
	b.Barrier(0)
	// Swap source and destination grids for the next sweep.
	b.Mov(ocRTmp, ocRSrc)
	b.Mov(ocRSrc, ocRDst)
	b.Mov(ocRDst, ocRTmp)

	b.Subi(ocRStep, ocRStep, 1)
	b.Bne(ocRStep, isa.Zero, stepTop)
	b.Halt()
	return b.MustProgram()
}

// Reference computes the expected final grid (the buffer written by the
// last sweep) with the same operation order.
func (o *Ocean) Reference() []float64 {
	n := o.N
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = o.cell(i, j)
			bb[i*n+j] = o.cell(i, j)
		}
	}
	src, dst := a, bb
	for s := 0; s < o.Steps; s++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				acc := src[(i-1)*n+j] + src[(i+1)*n+j]
				acc += src[i*n+j-1]
				acc += src[i*n+j+1]
				dst[i*n+j] = acc * 0.25
			}
		}
		src, dst = dst, src
	}
	return src // the grid most recently written
}

// Verify checks the final grid bit for bit.
func (o *Ocean) Verify(m *mem.Memory) error {
	want := o.Reference()
	base := o.gridA()
	if o.Steps%2 == 1 {
		base = o.gridB()
	}
	for i := 0; i < o.N; i++ {
		for j := 0; j < o.N; j++ {
			got := m.Read(base + uint64(i*o.N+j)*8)
			if got != isa.F2U(want[i*o.N+j]) {
				return fmt.Errorf("ocean: cell (%d,%d) = %g, want %g",
					i, j, isa.U2F(got), want[i*o.N+j])
			}
		}
	}
	return nil
}
