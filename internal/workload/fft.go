package workload

import (
	"fmt"
	"math"

	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// FFT is a barrier-phased radix-2 decimation-in-time FFT over N complex
// points, the stand-in for SPLASH-2 FFT (64K points in the paper; scaled
// down here as the paper itself scales inputs). Input is taken to be in
// bit-reversed order so the kernel is the pure butterfly network: log2(N)
// stages, each core owning a contiguous block of the N/2 butterflies per
// stage, with a global barrier between stages. Cross-core traffic is the
// partner reads whose stride doubles every stage — the paper's FFT
// all-to-all pattern.
type FFT struct {
	// N is the number of complex points (a power of two).
	N int
}

// NewFFT returns an FFT workload over n points (n must be a power of two
// of at least 8).
func NewFFT(n int) *FFT { return &FFT{N: n} }

// Name implements Workload.
func (f *FFT) Name() string { return fmt.Sprintf("fft-%d", f.N) }

func (f *FFT) check() error {
	if !isPow2(f.N) || f.N < 8 {
		return fmt.Errorf("fft: N=%d must be a power of two >= 8", f.N)
	}
	return nil
}

// Memory layout.
func (f *FFT) reBase() uint64  { return SharedBase }
func (f *FFT) imBase() uint64  { return f.reBase() + uint64(f.N)*8 }
func (f *FFT) wReBase() uint64 { return f.imBase() + uint64(f.N)*8 }
func (f *FFT) wImBase() uint64 { return f.wReBase() + uint64(f.N/2)*8 }

// input returns the (deterministic, irrational-looking) initial value of
// point i.
func (f *FFT) input(i int) (re, im float64) {
	return math.Sin(0.7*float64(i) + 0.25), 0
}

// InitMemory implements Workload: it loads the input points and the
// twiddle-factor table.
func (f *FFT) InitMemory(m *mem.Memory) error {
	if err := f.check(); err != nil {
		return err
	}
	for i := 0; i < f.N; i++ {
		re, im := f.input(i)
		m.WriteFloat(f.reBase()+uint64(i)*8, re)
		m.WriteFloat(f.imBase()+uint64(i)*8, im)
	}
	for j := 0; j < f.N/2; j++ {
		ang := -2 * math.Pi * float64(j) / float64(f.N)
		m.WriteFloat(f.wReBase()+uint64(j)*8, math.Cos(ang))
		m.WriteFloat(f.wImBase()+uint64(j)*8, math.Sin(ang))
	}
	return nil
}

// Programs implements Workload: one butterfly program per core.
func (f *FFT) Programs(numCores int) ([]*isa.Program, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	progs := make([]*isa.Program, numCores)
	for tid := 0; tid < numCores; tid++ {
		progs[tid] = f.program(tid, numCores)
	}
	return progs, nil
}

// Register conventions inside the kernel.
const (
	fftRB    isa.Reg = 3  // butterfly index b
	fftRHi   isa.Reg = 4  // end of this core's range
	fftRBase isa.Reg = 5  // base element index of the butterfly
	fftRPart isa.Reg = 6  // partner element index
	fftRT0   isa.Reg = 7  // scratch
	fftRT1   isa.Reg = 8  // scratch
	fftRRe   isa.Reg = 9  // &re[0]
	fftRIm   isa.Reg = 10 // &im[0]
	fftRWRe  isa.Reg = 11 // &wRe[0]
	fftRWIm  isa.Reg = 12 // &wIm[0]
	fftRAr   isa.Reg = 13
	fftRAi   isa.Reg = 14
	fftRBr   isa.Reg = 15
	fftRBi   isa.Reg = 16
	fftRWr   isa.Reg = 17
	fftRWi   isa.Reg = 18
	fftRTr   isa.Reg = 19
	fftRTi   isa.Reg = 20
	fftRAd1  isa.Reg = 21 // &re[base]/&im[base]
	fftRAd2  isa.Reg = 22 // &re[partner]/&im[partner]
	fftRP    isa.Reg = 23 // position within group
	fftRF0   isa.Reg = 24 // fp scratch
	fftRF1   isa.Reg = 25 // fp scratch
)

func (f *FFT) program(tid, p int) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("%s.t%d", f.Name(), tid))
	stages := log2(f.N)
	lo, hi := splitRange(f.N/2, tid, p)

	b.Li(fftRRe, int64(f.reBase()))
	b.Li(fftRIm, int64(f.imBase()))
	b.Li(fftRWRe, int64(f.wReBase()))
	b.Li(fftRWIm, int64(f.wImBase()))

	for s := 0; s < stages; s++ {
		half := 1 << s
		twShift := stages - 1 - s // twiddle index = p << twShift
		if lo < hi {
			b.Li(fftRB, int64(lo))
			b.Li(fftRHi, int64(hi))
			top := b.Here()
			// group g = b >> s; position p = b & (half-1).
			b.OpImm(isa.Shri, fftRT0, fftRB, int64(s))
			b.OpImm(isa.Andi, fftRP, fftRB, int64(half-1))
			// base = g*2*half + p; partner = base + half.
			b.OpImm(isa.Shli, fftRBase, fftRT0, int64(s+1))
			b.Op3(isa.Add, fftRBase, fftRBase, fftRP)
			b.OpImm(isa.Addi, fftRPart, fftRBase, int64(half))
			// Twiddle w = (wRe[p<<twShift], wIm[p<<twShift]).
			b.OpImm(isa.Shli, fftRT0, fftRP, int64(twShift+3))
			b.Op3(isa.Add, fftRT1, fftRWRe, fftRT0)
			b.Load(fftRWr, fftRT1, 0)
			b.Op3(isa.Add, fftRT1, fftRWIm, fftRT0)
			b.Load(fftRWi, fftRT1, 0)
			// a = x[base], c = x[partner].
			b.OpImm(isa.Shli, fftRT0, fftRBase, 3)
			b.Op3(isa.Add, fftRAd1, fftRRe, fftRT0)
			b.Load(fftRAr, fftRAd1, 0)
			b.Op3(isa.Add, fftRT1, fftRIm, fftRT0)
			b.Load(fftRAi, fftRT1, 0)
			b.OpImm(isa.Shli, fftRT0, fftRPart, 3)
			b.Op3(isa.Add, fftRAd2, fftRRe, fftRT0)
			b.Load(fftRBr, fftRAd2, 0)
			b.Op3(isa.Add, fftRT0, fftRIm, fftRT0)
			b.Load(fftRBi, fftRT0, 0)
			// t = c*w (complex): tr = br*wr - bi*wi, ti = br*wi + bi*wr.
			b.Op3(isa.FMul, fftRF0, fftRBr, fftRWr)
			b.Op3(isa.FMul, fftRF1, fftRBi, fftRWi)
			b.Op3(isa.FSub, fftRTr, fftRF0, fftRF1)
			b.Op3(isa.FMul, fftRF0, fftRBr, fftRWi)
			b.Op3(isa.FMul, fftRF1, fftRBi, fftRWr)
			b.Op3(isa.FAdd, fftRTi, fftRF0, fftRF1)
			// x[base] = a + t.
			b.Op3(isa.FAdd, fftRF0, fftRAr, fftRTr)
			b.Store(fftRF0, fftRAd1, 0)
			b.OpImm(isa.Shli, fftRT0, fftRBase, 3)
			b.Op3(isa.FAdd, fftRF1, fftRAi, fftRTi)
			b.Op3(isa.Add, fftRT0, fftRIm, fftRT0)
			b.Store(fftRF1, fftRT0, 0)
			// x[partner] = a - t.
			b.Op3(isa.FSub, fftRF0, fftRAr, fftRTr)
			b.Store(fftRF0, fftRAd2, 0)
			b.OpImm(isa.Shli, fftRT0, fftRPart, 3)
			b.Op3(isa.FSub, fftRF1, fftRAi, fftRTi)
			b.Op3(isa.Add, fftRT0, fftRIm, fftRT0)
			b.Store(fftRF1, fftRT0, 0)

			b.Addi(fftRB, fftRB, 1)
			b.Blt(fftRB, fftRHi, top)
		}
		b.Barrier(0)
	}
	b.Halt()
	return b.MustProgram()
}

// Reference computes the expected final re/im arrays by running the exact
// same butterfly network in Go (same operations in the same order, so the
// simulated result must match bit for bit).
func (f *FFT) Reference() (re, im []float64) {
	n := f.N
	re = make([]float64, n)
	im = make([]float64, n)
	wre := make([]float64, n/2)
	wim := make([]float64, n/2)
	for i := 0; i < n; i++ {
		re[i], im[i] = f.input(i)
	}
	for j := 0; j < n/2; j++ {
		ang := -2 * math.Pi * float64(j) / float64(n)
		wre[j], wim[j] = math.Cos(ang), math.Sin(ang)
	}
	stages := log2(n)
	for s := 0; s < stages; s++ {
		half := 1 << s
		twShift := stages - 1 - s
		for bf := 0; bf < n/2; bf++ {
			g := bf >> s
			p := bf & (half - 1)
			base := g<<(s+1) + p
			part := base + half
			w := p << twShift
			tr := re[part]*wre[w] - im[part]*wim[w]
			ti := re[part]*wim[w] + im[part]*wre[w]
			ar, ai := re[base], im[base]
			re[base], im[base] = ar+tr, ai+ti
			re[part], im[part] = ar-tr, ai-ti
		}
	}
	return re, im
}

// Verify checks the simulated memory against the reference, bit for bit.
func (f *FFT) Verify(m *mem.Memory) error {
	re, im := f.Reference()
	for i := 0; i < f.N; i++ {
		gr := m.Read(f.reBase() + uint64(i)*8)
		gi := m.Read(f.imBase() + uint64(i)*8)
		if gr != isa.F2U(re[i]) || gi != isa.F2U(im[i]) {
			return fmt.Errorf("fft: point %d = (%g,%g), want (%g,%g)",
				i, isa.U2F(gr), isa.U2F(gi), re[i], im[i])
		}
	}
	return nil
}
