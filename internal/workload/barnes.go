package workload

import (
	"fmt"

	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// Barnes is an N-body tree code shaped like SPLASH-2 Barnes (1024 bodies
// in the paper): a shared tree whose nodes are updated under per-node
// locks during the "tree build" phase and read by every core during the
// "force computation" phase, repeated for a number of timesteps with
// global barriers between phases.
//
// The tree is a complete binary tree stored as one cache line per node
// with explicit child pointers, so the force phase is genuine pointer
// chasing over read-shared lines and the build phase produces migratory,
// lock-protected read-modify-write sharing with heavy contention near the
// root — the traffic Barnes is known for. Node masses accumulate in
// integers so the result is independent of the (nondeterministic) lock
// acquisition order and can be verified exactly.
type Barnes struct {
	// Bodies is the number of bodies (a power of two).
	Bodies int
	// Steps is the number of timesteps.
	Steps int
}

// NewBarnes returns a Barnes workload.
func NewBarnes(bodies, steps int) *Barnes { return &Barnes{Bodies: bodies, Steps: steps} }

// Name implements Workload.
func (w *Barnes) Name() string { return fmt.Sprintf("barnes-%d", w.Bodies) }

func (w *Barnes) check() error {
	if !isPow2(w.Bodies) || w.Bodies < 8 {
		return fmt.Errorf("barnes: Bodies=%d must be a power of two >= 8", w.Bodies)
	}
	if w.Steps < 1 {
		return fmt.Errorf("barnes: Steps=%d must be >= 1", w.Steps)
	}
	return nil
}

// depth returns the tree depth: leaves = Bodies, so internal levels =
// log2(Bodies).
func (w *Barnes) depth() int { return log2(w.Bodies) }

// numNodes is the node count of the complete binary tree with Bodies
// leaves (heap indexing 1..numNodes).
func (w *Barnes) numNodes() int { return 2*w.Bodies - 1 }

// Node layout: one 64-byte line per node.
//
//	+0  mass accumulator (int)
//	+8  left child pointer (0 for leaves)
//	+16 right child pointer
//	+24 lock word
const (
	nodeMass  = 0
	nodeLeft  = 8
	nodeRight = 16
	nodeLock  = 24
	nodeSize  = 64
)

func (w *Barnes) treeBase() uint64 { return SharedBase }

// nodeAddr maps 1-based heap index to the node's line address.
func (w *Barnes) nodeAddr(idx int) uint64 {
	return w.treeBase() + uint64(idx-1)*nodeSize
}

// bodyMass is the integer mass of body i.
func (w *Barnes) bodyMass(i int) int64 { return int64(i%17 + 1) }

// InitMemory implements Workload: it lays out the tree with child
// pointers and zeroed mass accumulators.
func (w *Barnes) InitMemory(m *mem.Memory) error {
	if err := w.check(); err != nil {
		return err
	}
	internal := w.Bodies - 1
	for idx := 1; idx <= w.numNodes(); idx++ {
		base := w.nodeAddr(idx)
		m.Write(base+nodeMass, 0)
		if idx <= internal {
			m.Write(base+nodeLeft, w.nodeAddr(2*idx))
			m.Write(base+nodeRight, w.nodeAddr(2*idx+1))
		} else {
			m.Write(base+nodeLeft, 0)
			m.Write(base+nodeRight, 0)
		}
	}
	return nil
}

// Programs implements Workload.
func (w *Barnes) Programs(numCores int) ([]*isa.Program, error) {
	if err := w.check(); err != nil {
		return nil, err
	}
	progs := make([]*isa.Program, numCores)
	for tid := 0; tid < numCores; tid++ {
		progs[tid] = w.program(tid, numCores)
	}
	return progs, nil
}

// Register conventions.
const (
	bnRStep isa.Reg = 3  // timestep counter
	bnRBody isa.Reg = 4  // body index
	bnRHi   isa.Reg = 5  // end of body range
	bnRNode isa.Reg = 6  // current node address
	bnRBit  isa.Reg = 7  // direction bit scratch
	bnRLvl  isa.Reg = 8  // level counter
	bnRT0   isa.Reg = 9  // scratch
	bnRT1   isa.Reg = 10 // scratch
	bnRMass isa.Reg = 11 // body mass
	bnRAcc  isa.Reg = 12 // traversal accumulator
	bnRSP   isa.Reg = 13 // traversal stack pointer
	bnRRoot isa.Reg = 14 // root node address
	bnROut  isa.Reg = 15 // private result address
)

func (w *Barnes) program(tid, p int) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("%s.t%d", w.Name(), tid))
	lo, hi := splitRange(w.Bodies, tid, p)
	depth := w.depth()
	stackBase := PrivateBase(tid)          // traversal stack
	outAddr := PrivateBase(tid) + 0x8_0000 // private accumulator result

	b.Li(bnRRoot, int64(w.nodeAddr(1)))
	b.Li(bnROut, int64(outAddr))
	b.Li(bnRStep, int64(w.Steps))
	stepTop := b.Here()

	// ---- Phase A: tree build. Walk root->leaf by the body's index bits,
	// accumulating the body's mass into every node on the path under the
	// node's lock.
	if lo < hi {
		b.Li(bnRBody, int64(lo))
		b.Li(bnRHi, int64(hi))
		bodyTop := b.Here()
		// mass = bodyMass(body) = body % 17 + 1.
		b.OpImm(isa.Addi, bnRT0, bnRBody, 0)
		b.Li(bnRT1, 17)
		b.Op3(isa.Rem, bnRMass, bnRT0, bnRT1)
		b.Addi(bnRMass, bnRMass, 1)
		b.Mov(bnRNode, bnRRoot)
		b.Li(bnRLvl, int64(depth))
		walkTop := b.Here()
		// Lock node; node.mass += mass; unlock.
		b.Lock(bnRNode, nodeLock)
		b.Load(bnRT0, bnRNode, nodeMass)
		b.Op3(isa.Add, bnRT0, bnRT0, bnRMass)
		b.Store(bnRT0, bnRNode, nodeMass)
		b.Unlock(bnRNode, nodeLock)
		// Descend: bit = (body >> (level-1)) & 1.
		walkEnd := b.NewLabel()
		b.Beq(bnRLvl, isa.Zero, walkEnd)
		b.Subi(bnRLvl, bnRLvl, 1)
		b.Op3(isa.Shr, bnRBit, bnRBody, bnRLvl)
		b.OpImm(isa.Andi, bnRBit, bnRBit, 1)
		goRight := b.NewLabel()
		b.Bne(bnRBit, isa.Zero, goRight)
		b.Load(bnRNode, bnRNode, nodeLeft)
		b.Jmp(walkTop)
		b.Bind(goRight)
		b.Load(bnRNode, bnRNode, nodeRight)
		b.Jmp(walkTop)
		b.Bind(walkEnd)
		b.Addi(bnRBody, bnRBody, 1)
		b.Blt(bnRBody, bnRHi, bodyTop)
	}
	b.Barrier(0)

	// ---- Phase B: force computation. Every core traverses the whole
	// tree (explicit-stack preorder over the child pointers), summing the
	// masses it reads; the sum is stored privately.
	b.Li(bnRAcc, 0)
	b.Li(bnRSP, int64(stackBase))
	// push root.
	b.Store(bnRRoot, bnRSP, 0)
	b.Addi(bnRSP, bnRSP, 8)
	travTop := b.Here()
	travEnd := b.NewLabel()
	b.Li(bnRT0, int64(stackBase))
	b.Beq(bnRSP, bnRT0, travEnd)
	// pop node.
	b.Subi(bnRSP, bnRSP, 8)
	b.Load(bnRNode, bnRSP, 0)
	b.Load(bnRT0, bnRNode, nodeMass)
	b.Op3(isa.Add, bnRAcc, bnRAcc, bnRT0)
	// push children if internal.
	b.Load(bnRT0, bnRNode, nodeLeft)
	skipKids := b.NewLabel()
	b.Beq(bnRT0, isa.Zero, skipKids)
	b.Store(bnRT0, bnRSP, 0)
	b.Addi(bnRSP, bnRSP, 8)
	b.Load(bnRT1, bnRNode, nodeRight)
	b.Store(bnRT1, bnRSP, 0)
	b.Addi(bnRSP, bnRSP, 8)
	b.Bind(skipKids)
	b.Jmp(travTop)
	b.Bind(travEnd)
	b.Store(bnRAcc, bnROut, 0)
	b.Barrier(0)

	b.Subi(bnRStep, bnRStep, 1)
	b.Bne(bnRStep, isa.Zero, stepTop)
	b.Halt()
	return b.MustProgram()
}

// expectedNodeMass returns node idx's final mass: Steps times the sum of
// masses of bodies whose root-to-leaf path passes through it.
func (w *Barnes) expectedNodeMass(idx int) int64 {
	// Heap index idx at level L covers bodies whose top L bits equal
	// idx - 2^L (idx in [2^L, 2^(L+1))).
	level := log2(idx)
	span := w.Bodies >> level
	first := (idx - (1 << level)) * span
	var sum int64
	for i := first; i < first+span; i++ {
		sum += w.bodyMass(i)
	}
	return sum * int64(w.Steps)
}

// TotalMass returns the expected full-tree traversal sum for one step.
func (w *Barnes) TotalMass() int64 {
	var sum int64
	for i := 0; i < w.Bodies; i++ {
		sum += w.bodyMass(i)
	}
	return sum
}

// Verify checks every node's accumulated mass and every core's traversal
// result written in the final step.
func (w *Barnes) Verify(m *mem.Memory) error {
	if err := w.check(); err != nil {
		return err
	}
	for idx := 1; idx <= w.numNodes(); idx++ {
		got := int64(m.Read(w.nodeAddr(idx) + nodeMass))
		want := w.expectedNodeMass(idx)
		if got != want {
			return fmt.Errorf("barnes: node %d mass = %d, want %d", idx, got, want)
		}
	}
	return nil
}

// VerifyTraversals checks the per-core traversal sums for numCores cores.
// The final-step traversal sees every node at full mass, so each core's
// accumulator must equal TotalMass·Steps·(depth+1).
func (w *Barnes) VerifyTraversals(m *mem.Memory, numCores int) error {
	want := w.TotalMass() * int64(w.Steps) * int64(w.depth()+1)
	for tid := 0; tid < numCores; tid++ {
		got := int64(m.Read(PrivateBase(tid) + 0x8_0000))
		if got != want {
			return fmt.Errorf("barnes: core %d traversal sum = %d, want %d", tid, got, want)
		}
	}
	return nil
}
