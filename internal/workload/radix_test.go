package workload

import (
	"testing"

	"slacksim/internal/mem"
)

func TestRadixValidation(t *testing.T) {
	if err := NewRadix(4).check(); err == nil {
		t.Error("tiny key count accepted")
	}
	if _, err := NewRadix(1 << 21).Programs(2); err == nil {
		t.Error("huge key count accepted")
	}
}

func TestRadixProgramsValid(t *testing.T) {
	r := NewRadix(64)
	progs, err := r.Programs(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		if err := p.Validate(); err != nil {
			t.Errorf("core %d: %v", i, err)
		}
	}
}

func TestRadixVerifyCatchesUnsorted(t *testing.T) {
	r := NewRadix(32)
	m := mem.New()
	if err := r.InitMemory(m); err != nil {
		t.Fatal(err)
	}
	// An untouched (all-zero) output region fails the permutation check
	// unless zero happens to be every key, which it is not.
	if err := r.Verify(m); err == nil {
		t.Error("verify passed on unsorted output")
	}
}

func TestRadixVerifyAcceptsAnyValidOrder(t *testing.T) {
	// Manually produce a correct digit-sorted permutation and check
	// Verify accepts it (within-bucket order scrambled on purpose).
	r := NewRadix(32)
	m := mem.New()
	if err := r.InitMemory(m); err != nil {
		t.Fatal(err)
	}
	var buckets [radixBuckets][]uint64
	for i := 0; i < r.Keys; i++ {
		k := r.key(i)
		d := k & (radixBuckets - 1)
		// Prepend rather than append: a different-but-valid bucket order.
		buckets[d] = append([]uint64{k}, buckets[d]...)
	}
	pos := 0
	for _, b := range buckets {
		for _, k := range b {
			m.Write(r.outBase()+uint64(pos)*8, k)
			pos++
		}
	}
	if err := r.Verify(m); err != nil {
		t.Errorf("valid permutation rejected: %v", err)
	}
}
