package workload

import (
	"math"
	"math/cmplx"
	"testing"
)

// TestFFTReferenceIsDFT checks the butterfly-network reference against a
// naive O(N²) DFT: since the kernel consumes input as if bit-reversed, the
// network's output must equal the DFT of the bit-reversed input sequence.
func TestFFTReferenceIsDFT(t *testing.T) {
	const n = 32
	f := NewFFT(n)
	re, im := f.Reference()

	// Bit-reverse the input, then DFT it directly.
	bits := log2(n)
	rev := func(i int) int {
		r := 0
		for b := 0; b < bits; b++ {
			r = r<<1 | (i>>b)&1
		}
		return r
	}
	in := make([]complex128, n)
	for i := 0; i < n; i++ {
		r, _ := f.input(rev(i))
		in[i] = complex(r, 0)
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			sum += in[j] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*j)/float64(n)))
		}
		if math.Abs(real(sum)-re[k]) > 1e-6 || math.Abs(imag(sum)-im[k]) > 1e-6 {
			t.Fatalf("bin %d: network (%g,%g), DFT (%g,%g)",
				k, re[k], im[k], real(sum), imag(sum))
		}
	}
}

// TestLUReferenceFactorizes multiplies L·U back together and compares with
// the original matrix.
func TestLUReferenceFactorizes(t *testing.T) {
	const n = 16
	l := NewLU(n)
	a := l.Reference()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (L·U)[i][j] = sum_k L[i][k]·U[k][j], L unit lower, U upper.
			var sum float64
			for k := 0; k <= min(i, j); k++ {
				lik := a[i*n+k]
				if k == i {
					lik = 1
				}
				sum += lik * a[k*n+j]
			}
			want := l.element(i, j)
			if math.Abs(sum-want) > 1e-8*math.Max(1, math.Abs(want)) {
				t.Fatalf("L·U[%d][%d] = %g, want %g", i, j, sum, want)
			}
		}
	}
}

// TestBarnesExpectations cross-checks the per-node expectations: a parent
// node's mass must equal the sum of its children's.
func TestBarnesExpectations(t *testing.T) {
	w := NewBarnes(32, 3)
	internal := w.Bodies - 1
	for idx := 1; idx <= internal; idx++ {
		p := w.expectedNodeMass(idx)
		l := w.expectedNodeMass(2 * idx)
		r := w.expectedNodeMass(2*idx + 1)
		if p != l+r {
			t.Fatalf("node %d mass %d != children %d+%d", idx, p, l, r)
		}
	}
	// Root holds everything.
	if w.expectedNodeMass(1) != w.TotalMass()*int64(w.Steps) {
		t.Error("root mass wrong")
	}
}

// TestWaterReferenceSymmetry: total force over all molecules is zero every
// step (Newton's third law in fixed point), so positions drift but their
// force-sum stays balanced. We check by re-running the reference with an
// instrumented loop.
func TestWaterReferenceSymmetry(t *testing.T) {
	w := NewWater(16, 1)
	n := w.Molecules
	pos := make([]float64, n)
	force := make([]int64, n)
	for i := range pos {
		pos[i] = w.initPos(i)
	}
	var total int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			f := pairForce(pos[i], pos[j])
			force[i] += f
			force[j] -= f
			total += 0 // pairwise cancel by construction
		}
	}
	var sum int64
	for _, f := range force {
		sum += f
	}
	if sum != 0 {
		t.Errorf("net force %d, want 0", sum)
	}
	if total != 0 {
		t.Error("bookkeeping broke")
	}
}

// TestWaterReferenceMoves sanity-checks that the dynamics actually change
// positions (the kernel is not a no-op).
func TestWaterReferenceMoves(t *testing.T) {
	w := NewWater(8, 2)
	ref := w.Reference()
	moved := false
	for i := range ref {
		if ref[i] != w.initPos(i) {
			moved = true
		}
	}
	if !moved {
		t.Error("no molecule moved")
	}
}

// TestPrivateExpectedSum cross-checks the closed form.
func TestPrivateExpectedSum(t *testing.T) {
	p := NewPrivate(4, 3)
	// words 0..3 plus tid: tid=2 → 2+3+4+5 = 14, ×3 passes = 42.
	if got := p.ExpectedSum(2); got != 42 {
		t.Errorf("ExpectedSum(2) = %d, want 42", got)
	}
}
