package workload

import (
	"fmt"

	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// Radix is one pass of a parallel counting sort (radix 16), shaped like
// SPLASH-2 Radix: each core histograms its block of keys into a global
// histogram under per-bucket locks, one core prefix-sums the histogram
// into bucket offsets, and each core then scatters its keys through
// lock-protected bucket cursors — all-to-all scatter traffic with
// migratory lock lines, the one SPLASH pattern the other kernels lack.
//
// The scatter order within a bucket depends on core interleaving, so the
// output is *intentionally* schedule-dependent; Verify checks semantic
// correctness instead of bit equality: the output must be a permutation
// of the input with nondecreasing digits. This exercises the simulator's
// guarantee that any slack schedule still yields a *valid* target
// execution when the workload synchronizes properly.
type Radix struct {
	// Keys is the number of keys.
	Keys int

	// cores remembers the machine size from the last Programs call.
	cores int
}

// radixBuckets is the number of buckets (digit = key & 15).
const radixBuckets = 16

// NewRadix returns a Radix workload over n keys.
func NewRadix(n int) *Radix { return &Radix{Keys: n} }

// Name implements Workload.
func (r *Radix) Name() string { return fmt.Sprintf("radix-%d", r.Keys) }

func (r *Radix) check() error {
	if r.Keys < radixBuckets || r.Keys > 1<<20 {
		return fmt.Errorf("radix: Keys=%d out of range", r.Keys)
	}
	return nil
}

// Layout.
func (r *Radix) inBase() uint64   { return SharedBase }
func (r *Radix) outBase() uint64  { return r.inBase() + uint64(r.Keys)*8 }
func (r *Radix) histBase() uint64 { return r.outBase() + uint64(r.Keys)*8 }

// cursorBase holds the per-bucket scatter cursors, one cache line apart
// so bucket locks contend only on their own line.
func (r *Radix) cursorBase() uint64 { return r.histBase() + radixBuckets*64 }

func (r *Radix) key(i int) uint64 {
	return uint64((i*2654435761 + 40503) % (1 << 16))
}

// InitMemory implements Workload.
func (r *Radix) InitMemory(m *mem.Memory) error {
	if err := r.check(); err != nil {
		return err
	}
	for i := 0; i < r.Keys; i++ {
		m.Write(r.inBase()+uint64(i)*8, r.key(i))
	}
	return nil
}

// Register conventions.
const (
	rxRI    isa.Reg = 3
	rxRHi   isa.Reg = 4
	rxRKey  isa.Reg = 5
	rxRDig  isa.Reg = 6
	rxRT0   isa.Reg = 7
	rxRT1   isa.Reg = 8
	rxRIn   isa.Reg = 9
	rxROut  isa.Reg = 10
	rxRHist isa.Reg = 11
	rxRCur  isa.Reg = 12
	rxRAdr  isa.Reg = 13
	rxRSum  isa.Reg = 14
	rxRB    isa.Reg = 15
)

func (r *Radix) program(tid, p int) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("%s.t%d", r.Name(), tid))
	lo, hi := splitRange(r.Keys, tid, p)

	b.Li(rxRIn, int64(r.inBase()))
	b.Li(rxROut, int64(r.outBase()))
	b.Li(rxRHist, int64(r.histBase()))
	b.Li(rxRCur, int64(r.cursorBase()))

	// ---- Phase 1: histogram my block under per-bucket locks.
	if lo < hi {
		b.Li(rxRI, int64(lo))
		b.Li(rxRHi, int64(hi))
		top := b.Here()
		b.OpImm(isa.Shli, rxRT0, rxRI, 3)
		b.Op3(isa.Add, rxRAdr, rxRIn, rxRT0)
		b.Load(rxRKey, rxRAdr, 0)
		b.OpImm(isa.Andi, rxRDig, rxRKey, radixBuckets-1)
		// &hist[digit] with 64-byte stride: hist + digit*64.
		b.OpImm(isa.Shli, rxRT0, rxRDig, 6)
		b.Op3(isa.Add, rxRAdr, rxRHist, rxRT0)
		b.Lock(rxRAdr, 8)
		b.Load(rxRT1, rxRAdr, 0)
		b.Addi(rxRT1, rxRT1, 1)
		b.Store(rxRT1, rxRAdr, 0)
		b.Unlock(rxRAdr, 8)
		b.Addi(rxRI, rxRI, 1)
		b.Blt(rxRI, rxRHi, top)
	}
	b.Barrier(0)

	// ---- Phase 2: core 0 prefix-sums the histogram into the cursors.
	if tid == 0 {
		b.Li(rxRSum, 0)
		b.Li(rxRB, 0)
		b.Li(rxRHi, radixBuckets)
		top := b.Here()
		b.OpImm(isa.Shli, rxRT0, rxRB, 6)
		b.Op3(isa.Add, rxRAdr, rxRCur, rxRT0)
		b.Store(rxRSum, rxRAdr, 0)
		b.Op3(isa.Add, rxRAdr, rxRHist, rxRT0)
		b.Load(rxRT1, rxRAdr, 0)
		b.Op3(isa.Add, rxRSum, rxRSum, rxRT1)
		b.Addi(rxRB, rxRB, 1)
		b.Blt(rxRB, rxRHi, top)
	}
	b.Barrier(0)

	// ---- Phase 3: scatter my keys through the lock-protected cursors.
	if lo < hi {
		b.Li(rxRI, int64(lo))
		b.Li(rxRHi, int64(hi))
		top := b.Here()
		b.OpImm(isa.Shli, rxRT0, rxRI, 3)
		b.Op3(isa.Add, rxRAdr, rxRIn, rxRT0)
		b.Load(rxRKey, rxRAdr, 0)
		b.OpImm(isa.Andi, rxRDig, rxRKey, radixBuckets-1)
		b.OpImm(isa.Shli, rxRT0, rxRDig, 6)
		b.Op3(isa.Add, rxRAdr, rxRCur, rxRT0)
		// slot = cursor[digit]++, under the bucket's lock.
		b.Lock(rxRAdr, 8)
		b.Load(rxRT1, rxRAdr, 0)
		b.Addi(rxRT0, rxRT1, 1)
		b.Store(rxRT0, rxRAdr, 0)
		b.Unlock(rxRAdr, 8)
		// out[slot] = key.
		b.OpImm(isa.Shli, rxRT1, rxRT1, 3)
		b.Op3(isa.Add, rxRAdr, rxROut, rxRT1)
		b.Store(rxRKey, rxRAdr, 0)
		b.Addi(rxRI, rxRI, 1)
		b.Blt(rxRI, rxRHi, top)
	}
	b.Barrier(0)
	b.Halt()
	return b.MustProgram()
}

// Programs implements Workload.
func (r *Radix) Programs(numCores int) ([]*isa.Program, error) {
	if err := r.check(); err != nil {
		return nil, err
	}
	r.cores = numCores
	progs := make([]*isa.Program, numCores)
	for tid := 0; tid < numCores; tid++ {
		progs[tid] = r.program(tid, numCores)
	}
	return progs, nil
}

// Verify checks semantic correctness: the output is a digit-sorted
// permutation of the input (the within-bucket order is legitimately
// schedule-dependent).
func (r *Radix) Verify(m *mem.Memory) error {
	if err := r.check(); err != nil {
		return err
	}
	counts := map[uint64]int{}
	for i := 0; i < r.Keys; i++ {
		counts[r.key(i)]++
	}
	prevDigit := uint64(0)
	for i := 0; i < r.Keys; i++ {
		k := m.Read(r.outBase() + uint64(i)*8)
		if counts[k] == 0 {
			return fmt.Errorf("radix: out[%d] = %d is not an unconsumed input key", i, k)
		}
		counts[k]--
		d := k & (radixBuckets - 1)
		if d < prevDigit {
			return fmt.Errorf("radix: digit order broken at out[%d]: %d after %d", i, d, prevDigit)
		}
		prevDigit = d
	}
	for k, c := range counts {
		if c != 0 {
			return fmt.Errorf("radix: key %d lost (%d copies unaccounted)", k, c)
		}
	}
	return nil
}
