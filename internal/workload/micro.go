package workload

import (
	"fmt"

	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// FalseShare is a microbenchmark in which every core increments its own
// counter word, but all counters live on the same cache line, so the line
// ping-pongs between L1s on every increment. It produces the densest
// possible coherence traffic without any data race (each word has one
// writer) and is the quickest way to generate bus and map violations in a
// slack simulation; unit tests and Figure 3 sanity checks use it.
type FalseShare struct {
	// Iters is the number of increments per core.
	Iters int

	// cores remembers the machine size from the last Programs call so
	// Verify checks exactly the counters that ran.
	cores int
}

// NewFalseShare returns a FalseShare workload.
func NewFalseShare(iters int) *FalseShare { return &FalseShare{Iters: iters} }

// Name implements Workload.
func (f *FalseShare) Name() string { return fmt.Sprintf("falseshare-%d", f.Iters) }

func (f *FalseShare) counterAddr(tid int) uint64 { return SharedBase + uint64(tid)*8 }

// InitMemory implements Workload.
func (f *FalseShare) InitMemory(m *mem.Memory) error {
	if f.Iters < 1 {
		return fmt.Errorf("falseshare: Iters=%d must be >= 1", f.Iters)
	}
	return nil
}

// Programs implements Workload.
func (f *FalseShare) Programs(numCores int) ([]*isa.Program, error) {
	if numCores > 8 {
		// All counters must share one 64-byte line.
		return nil, fmt.Errorf("falseshare: at most 8 cores share a line, got %d", numCores)
	}
	f.cores = numCores
	progs := make([]*isa.Program, numCores)
	for tid := 0; tid < numCores; tid++ {
		b := isa.NewBuilder(fmt.Sprintf("%s.t%d", f.Name(), tid))
		const (
			rAddr isa.Reg = 3
			rVal  isa.Reg = 4
			rCtr  isa.Reg = 5
		)
		b.Li(rAddr, int64(f.counterAddr(tid)))
		b.Loop(rCtr, int64(f.Iters), func() {
			b.Load(rVal, rAddr, 0)
			b.Addi(rVal, rVal, 1)
			b.Store(rVal, rAddr, 0)
		})
		b.Barrier(0)
		b.Halt()
		progs[tid] = b.MustProgram()
	}
	return progs, nil
}

// Verify checks every core's counter reached Iters (for the machine size
// of the last Programs call).
func (f *FalseShare) Verify(m *mem.Memory) error {
	n := f.cores
	if n == 0 {
		n = 8
	}
	return f.VerifyCores(m, n)
}

// VerifyCores checks the first numCores counters.
func (f *FalseShare) VerifyCores(m *mem.Memory, numCores int) error {
	for tid := 0; tid < numCores; tid++ {
		got := int64(m.Read(f.counterAddr(tid)))
		if got != int64(f.Iters) {
			return fmt.Errorf("falseshare: counter %d = %d, want %d", tid, got, f.Iters)
		}
	}
	return nil
}

// Private is a microbenchmark with zero sharing: each core repeatedly
// sums its own private array. It stresses the core pipeline and private
// cache path, produces no coherence traffic between cores beyond cold
// misses, and should run violation-free under any slack — the control
// case for the violation experiments.
type Private struct {
	// Words is the private array length per core.
	Words int
	// Passes is how many times each core sums its array.
	Passes int

	// cores remembers the machine size from the last Programs call.
	cores int
}

// NewPrivate returns a Private workload.
func NewPrivate(words, passes int) *Private { return &Private{Words: words, Passes: passes} }

// Name implements Workload.
func (p *Private) Name() string { return fmt.Sprintf("private-%dx%d", p.Words, p.Passes) }

func (p *Private) arrayBase(tid int) uint64 { return PrivateBase(tid) }
func (p *Private) sumAddr(tid int) uint64   { return PrivateBase(tid) + uint64(p.Words+8)*8 }

// InitMemory implements Workload.
func (p *Private) InitMemory(m *mem.Memory) error {
	if p.Words < 1 || p.Passes < 1 {
		return fmt.Errorf("private: Words and Passes must be >= 1")
	}
	for tid := 0; tid < 8; tid++ {
		for i := 0; i < p.Words; i++ {
			m.Write(p.arrayBase(tid)+uint64(i)*8, uint64(i+tid))
		}
	}
	return nil
}

// Programs implements Workload.
func (p *Private) Programs(numCores int) ([]*isa.Program, error) {
	p.cores = numCores
	progs := make([]*isa.Program, numCores)
	for tid := 0; tid < numCores; tid++ {
		b := isa.NewBuilder(fmt.Sprintf("%s.t%d", p.Name(), tid))
		const (
			rPass isa.Reg = 3
			rIdx  isa.Reg = 4
			rEnd  isa.Reg = 5
			rSum  isa.Reg = 6
			rAddr isa.Reg = 7
			rVal  isa.Reg = 8
		)
		b.Li(rSum, 0)
		b.Loop(rPass, int64(p.Passes), func() {
			b.Li(rAddr, int64(p.arrayBase(tid)))
			b.Li(rIdx, 0)
			b.Li(rEnd, int64(p.Words))
			top := b.Here()
			b.Load(rVal, rAddr, 0)
			b.Op3(isa.Add, rSum, rSum, rVal)
			b.Addi(rAddr, rAddr, 8)
			b.Addi(rIdx, rIdx, 1)
			b.Blt(rIdx, rEnd, top)
		})
		b.Li(rAddr, int64(p.sumAddr(tid)))
		b.Store(rSum, rAddr, 0)
		b.Halt()
		progs[tid] = b.MustProgram()
	}
	return progs, nil
}

// ExpectedSum returns core tid's expected total.
func (p *Private) ExpectedSum(tid int) int64 {
	var one int64
	for i := 0; i < p.Words; i++ {
		one += int64(i + tid)
	}
	return one * int64(p.Passes)
}

// Verify checks each core's stored sum (for the machine size of the last
// Programs call).
func (p *Private) Verify(m *mem.Memory) error {
	n := p.cores
	if n == 0 {
		n = 8
	}
	return p.VerifyCores(m, n)
}

// VerifyCores checks the first numCores sums.
func (p *Private) VerifyCores(m *mem.Memory, numCores int) error {
	for tid := 0; tid < numCores; tid++ {
		got := int64(m.Read(p.sumAddr(tid)))
		if got != p.ExpectedSum(tid) {
			return fmt.Errorf("private: core %d sum = %d, want %d", tid, got, p.ExpectedSum(tid))
		}
	}
	return nil
}
