package lint

import (
	"go/ast"
	"go/types"
)

// heldLock describes one mutex believed held at a program point.
type heldLock struct {
	// canon is the canonical path of the locked expression ("r.mu").
	canon string
	// obj is the types object of the final path element (the mutex
	// field or variable), when resolvable.
	obj types.Object
	// rlock is true for RLock (shared) acquisitions.
	rlock bool
}

// lockMethod classifies a call as a lock-state transition on its
// receiver. It recognizes sync.Mutex, sync.RWMutex, and sync.Locker
// method sets by name; the receiver expression is returned for
// canonicalization.
func lockMethod(call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return sel.X, sel.Sel.Name, true
	}
	return nil, "", false
}

// lockExprObj resolves the object of the final element of a lock
// expression (the mutex field or variable), or nil.
func lockExprObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// heldAt computes the set of locks held at target, which must lie inside
// body. The analysis is syntactic and path-directed: for every block on
// the chain from body down to target, the statements preceding target's
// ancestor in that block are scanned (without descending into nested
// blocks or function literals) for X.Lock()/X.RLock() and
// X.Unlock()/X.RUnlock() calls. defer X.Unlock() does not release (it
// runs at function exit); locks taken inside sibling branches are
// conservatively ignored — a lock is only "held" when it is acquired on
// the straight-line path to the target. Function literals bound the
// scan: a closure does not inherit its enclosing function's lock state,
// because the closure may run on any goroutine at any time.
func heldAt(info *types.Info, body *ast.BlockStmt, target ast.Node) map[string]heldLock {
	held := map[string]heldLock{}
	path := pathEnclosing(body, target.Pos(), target.End())
	if len(path) == 0 {
		return held
	}

	// Walk the path outermost→innermost. At each statement-list node,
	// scan the statements preceding the path's next step.
	apply := func(stmt ast.Stmt) {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				applyLockCall(info, call, held)
			}
		case *ast.DeferStmt:
			// defer X.Unlock() keeps the lock held until return; defer
			// X.Lock() (pathological) is ignored.
		case *ast.AssignStmt:
			// `defer func() {...}` assignments et al.: no lock effect on
			// the straight-line path.
		}
	}

	// containsNode reports whether child's range covers the next path node.
	for i := 0; i < len(path); i++ {
		var list []ast.Stmt
		switch n := path[i].(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		case *ast.FuncLit:
			// Entering a closure: its body does not inherit lock state.
			held = map[string]heldLock{}
			continue
		default:
			continue
		}
		// Apply every statement of this list that precedes the one the
		// target lies in; the statement containing the target terminates
		// the scan (deeper lists are handled by later path elements).
		for _, st := range list {
			if containsPos(st, target) {
				break
			}
			apply(st)
		}
	}
	return held
}

// containsPos reports whether n's source range contains t's start.
func containsPos(n ast.Node, t ast.Node) bool {
	return n.Pos() <= t.Pos() && t.Pos() < n.End()
}

// applyLockCall folds one Lock/Unlock-shaped call into the held set.
func applyLockCall(info *types.Info, call *ast.CallExpr, held map[string]heldLock) {
	recv, method, ok := lockMethod(call)
	if !ok {
		return
	}
	canon := canonExpr(recv)
	if canon == "" {
		return
	}
	switch method {
	case "Lock":
		held[canon] = heldLock{canon: canon, obj: lockExprObj(info, recv), rlock: false}
	case "RLock":
		held[canon] = heldLock{canon: canon, obj: lockExprObj(info, recv), rlock: true}
	case "Unlock", "RUnlock":
		delete(held, canon)
	}
}
