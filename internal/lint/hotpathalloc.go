package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathDirective is the annotation that opts a function into the
// no-allocation contract. It goes in the function's doc comment:
//
//	//slacksim:hotpath
//	func (q *Queue[T]) DrainInto(now int64, buf []T) []T { ... }
const hotpathDirective = "//slacksim:hotpath"

// HotPathAlloc protects the steady-state allocation profile of
// checkpoint restore, event-queue drain, and robEntry recycling: after
// pool warm-up these paths run allocation-free, and that property (a
// ~24x reduction, measured in PR 3; ~130x by PR 8) dies by a thousand
// innocent-looking appends. Any function carrying //slacksim:hotpath in
// its doc comment may not contain:
//
//   - make() of a slice, map, or channel (fresh backing storage);
//   - new() or &CompositeLit (heap candidates);
//   - function literals (closure environments allocate);
//   - append whose destination is not visibly reusing storage — the
//     accepted idioms are appending into a slice derived from a slicing
//     expression (x = append(x[:0], ...)), appending to a caller-provided
//     buffer parameter, or appending to a target previously reset via a
//     slicing expression in the same function;
//   - a call that boxes variadic arguments (f(a, b) against f(x ...T)
//     allocates the backing slice — the trace.Ring.Addf class);
//   - a call to a callee that itself allocates, propagated bottom-up
//     through the call graph by per-function summaries. Callee-side
//     allocations waived with //lint:allow hotpathalloc do not poison
//     the callee's summary — the written reason covers every caller.
//
// Two classes of site are cold by convention and exempt everywhere:
// arguments of panic() (the program is dying), and statements guarded by
// an Enabled() conditional (the documented cold-diagnostic idiom:
// `if tr.Enabled() { tr.Addf(...) }`).
//
// Soundness boundary: callees without source in the analyzed program
// (stdlib, export data) are assumed allocation-free except a small
// denylist of known allocators (the fmt package, errors.New/Errorf,
// strings.Join/Repeat, sort.Slice/SliceStable) — in vet mode the
// program is a single package, so cross-package propagation only
// happens in standalone mode. Calls through unresolvable function
// values are not propagated.
//
// Genuinely-unavoidable allocations (pool warm-up, rare resize paths)
// are waived with `//lint:allow hotpathalloc -- <why>`.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "report allocation sources (make, new, composite-literal address, closures, " +
		"growing append, variadic boxing, allocating callees) inside //slacksim:hotpath functions",
	Run: runHotPathAlloc,
}

// allocSummary is the per-function interprocedural fact: whether calling
// the function can allocate on the (non-cold, non-waived) path, and a
// human-readable description of the first cause found.
type allocSummary struct {
	Allocates bool
	What      string // e.g. `make(slice) at event.go:42` or `calls fmt.Sprintf`
}

func runHotPathAlloc(pass *Pass) error {
	sums := hotpathSummaries(pass.Prog)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			scanAllocs(pass.Info, fd, allocScanOpts{
				fset: pass.Fset,
				sums: sums,
			}, func(pos token.Pos, msg string) {
				pass.Reportf(pos, "%s", msg)
			})
		}
	}
	return nil
}

// hotpathSummaries computes the program's allocation summaries: a
// function allocates if its body contains a non-waived, non-cold
// allocation site, or (transitively) calls one that does.
func hotpathSummaries(prog *Program) map[*types.Func]any {
	return prog.Summaries("hotpathalloc", func(n *FuncNode, callee func(*types.Func) (any, bool)) any {
		if n.Decl == nil {
			// Interface dispatch hub: join over the in-program
			// implementations (any of them allocating taints the call).
			for _, c := range n.Callees {
				if s, known := callee(c); known {
					if as, ok := s.(allocSummary); ok && as.Allocates {
						return allocSummary{Allocates: true,
							What: fmt.Sprintf("dispatches to %s, which %s", c.Name(), as.What)}
					}
				}
			}
			return allocSummary{}
		}
		found := allocSummary{}
		scanAllocs(n.Pkg.Info, n.Decl, allocScanOpts{
			fset:   n.Pkg.Fset,
			sums:   nil, // resolved through calleeSum below instead
			callee: callee,
			waived: func(pos token.Pos) bool {
				return prog.AllowedAt(n.Pkg, "hotpathalloc", pos)
			},
		}, func(pos token.Pos, msg string) {
			if !found.Allocates {
				found = allocSummary{Allocates: true,
					What: fmt.Sprintf("%s (%s)", firstClause(msg), shortPos(n.Pkg.Fset, pos))}
			}
		})
		return found
	})
}

// firstClause trims a diagnostic down to its leading clause for use
// inside a propagated summary description. Cutting at ':' as well as
// ';' keeps summaries from recursively embedding callee descriptions —
// an unbounded What string would defeat the fixpoint's change detection
// (summaries must stabilize, not grow a longer chain each round).
func firstClause(msg string) string {
	cut := len(msg)
	for _, sep := range []string{"; ", ": "} {
		if i := strings.Index(msg, sep); i >= 0 && i < cut {
			cut = i
		}
	}
	return msg[:cut]
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// isHotPath reports whether the function's doc comment carries the
// //slacksim:hotpath directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

// allocDenylist names external (out-of-program) callees known to
// allocate. Everything else external is assumed clean — the documented
// soundness boundary.
func externalAllocates(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "fmt":
		return true
	case "errors":
		return fn.Name() == "New" || fn.Name() == "Errorf"
	case "strings":
		return fn.Name() == "Join" || fn.Name() == "Repeat"
	case "sort":
		return fn.Name() == "Slice" || fn.Name() == "SliceStable"
	}
	return false
}

// allocScanOpts configures scanAllocs for its two callers: the reporting
// pass (sums set: callee facts resolved from the finished summary map)
// and the summary transfer function (callee set: facts resolved through
// the in-progress fixpoint; waived filters out callee-side allows).
type allocScanOpts struct {
	fset   *token.FileSet
	sums   map[*types.Func]any
	callee func(*types.Func) (any, bool)
	waived func(token.Pos) bool
}

func (o allocScanOpts) calleeSum(fn *types.Func) (allocSummary, bool) {
	if o.callee != nil {
		s, known := o.callee(fn)
		if !known {
			return allocSummary{}, false
		}
		as, _ := s.(allocSummary)
		return as, true
	}
	s, present := o.sums[fn]
	if !present {
		return allocSummary{}, false
	}
	as, _ := s.(allocSummary)
	return as, true
}

// scanAllocs walks one function body reporting every allocation site:
// the intraprocedural classes (make/new/&lit/closure/growing append),
// variadic boxing, and calls to allocating callees. Sites that are cold
// by convention (panic arguments, Enabled()-guarded statements) are
// skipped, as are sites for which opts.waived returns true.
func scanAllocs(info *types.Info, fd *ast.FuncDecl, opts allocScanOpts,
	report func(pos token.Pos, msg string)) {

	params := paramObjs(info, fd)
	// prepared tracks canonical targets that were visibly reset to reused
	// storage earlier in the function (x = x[:0], x := buf[:0], ...).
	prepared := map[string]bool{}
	emit := func(pos token.Pos, msg string) {
		if opts.waived != nil && opts.waived(pos) {
			return
		}
		report(pos, msg)
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if isEnabledGuard(info, n.Cond) {
				// The then-branch is a cold diagnostic path by the
				// documented convention; init/cond/else are still scanned.
				if n.Init != nil {
					ast.Inspect(n.Init, walk)
				}
				ast.Inspect(n.Cond, walk)
				if n.Else != nil {
					ast.Inspect(n.Else, walk)
				}
				return false
			}
		case *ast.FuncLit:
			emit(n.Pos(), "function literal in a //slacksim:hotpath function allocates its closure environment; "+
				"hoist it to a method or a struct-field func set up once")
			return false
		case *ast.CallExpr:
			if isBuiltin(info, n, "panic") {
				// Panic arguments are cold: the program is dying.
				return false
			}
			checkAllocCall(info, n, params, prepared, opts, emit)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					emit(n.Pos(), "&composite-literal in a //slacksim:hotpath function heap-allocates; "+
						"reuse a pooled object instead")
				}
			}
		case *ast.AssignStmt:
			noteHotPathAssign(info, n, prepared)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// isEnabledGuard reports whether an if-condition is a conjunction with a
// direct method call named Enabled as one of its terms — the documented
// cold-diagnostic guard (`if tr.Enabled() { tr.Addf(...) }`). A negated
// Enabled() is not a guard.
func isEnabledGuard(info *types.Info, cond ast.Expr) bool {
	cond = ast.Unparen(cond)
	if be, ok := cond.(*ast.BinaryExpr); ok && be.Op == token.LAND {
		return isEnabledGuard(info, be.X) || isEnabledGuard(info, be.Y)
	}
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Enabled"
}

// noteHotPathAssign records targets reset to reused storage: any
// assignment (= or :=) whose RHS is a slicing expression marks the LHS
// canonical path as prepared for later appends.
func noteHotPathAssign(info *types.Info, as *ast.AssignStmt, prepared map[string]bool) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		if isStorageReuse(info, ast.Unparen(rhs), nil, prepared) {
			if c := canonExpr(as.Lhs[i]); c != "" {
				prepared[c] = true
			}
		}
	}
}

func checkAllocCall(info *types.Info, call *ast.CallExpr, params map[types.Object]bool,
	prepared map[string]bool, opts allocScanOpts, emit func(token.Pos, string)) {

	switch {
	case isBuiltin(info, call, "make"):
		kind := "slice"
		if len(call.Args) > 0 {
			if t := info.TypeOf(call.Args[0]); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					kind = "map"
				case *types.Chan:
					kind = "channel"
				}
			}
		}
		emit(call.Pos(),
			fmt.Sprintf("make(%s) in a //slacksim:hotpath function allocates fresh backing storage; "+
				"preallocate in the constructor and reuse via [:0]/clear()", kind))
		return
	case isBuiltin(info, call, "new"):
		emit(call.Pos(),
			"new() in a //slacksim:hotpath function heap-allocates; recycle through the free list")
		return
	case isBuiltin(info, call, "append"):
		if len(call.Args) == 0 {
			return
		}
		dst := ast.Unparen(call.Args[0])
		if isStorageReuse(info, dst, params, prepared) {
			return
		}
		emit(call.Pos(),
			fmt.Sprintf("append to %s in a //slacksim:hotpath function can grow (allocate); "+
				"append into a reused backing array (x = append(x[:0], ...)) or a caller-provided buffer",
				describeTarget(dst)))
		return
	}

	fn, _ := resolveCallee(info, call)
	if fn == nil {
		return
	}

	// Variadic boxing: calling a variadic signature with one or more
	// arguments at the variadic position allocates the backing slice
	// (a spread call f(xs...) passes the caller's slice through). One
	// finding per call: boxing subsumes the callee-body report.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Variadic() && !call.Ellipsis.IsValid() {
		if len(call.Args) >= sig.Params().Len() {
			emit(call.Pos(),
				fmt.Sprintf("call to %s boxes its variadic arguments into a fresh slice in a "+
					"//slacksim:hotpath function; pass a reused slice with ... or hoist behind a guard",
					fn.Name()))
			return
		}
	}

	// Interprocedural propagation: a callee whose summary allocates
	// taints this call site.
	if sum, known := opts.calleeSum(fn); known {
		if sum.Allocates {
			emit(call.Pos(),
				fmt.Sprintf("call to %s in a //slacksim:hotpath function allocates: %s", fn.Name(), sum.What))
		}
	} else if externalAllocates(fn) {
		emit(call.Pos(),
			fmt.Sprintf("call to %s.%s in a //slacksim:hotpath function allocates", fn.Pkg().Name(), fn.Name()))
	}
}

// isStorageReuse reports whether an append destination (or assignment
// source) visibly reuses existing storage:
//
//   - a slicing expression (x[:0], buf[:n]) — the canonical reuse idiom;
//   - a caller-provided parameter (the caller owns amortization);
//   - a target previously prepared by a slicing assignment;
//   - a nested append chain whose innermost destination qualifies.
func isStorageReuse(info *types.Info, e ast.Expr, params map[types.Object]bool, prepared map[string]bool) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		if params != nil {
			if obj := info.Uses[e]; obj != nil && params[obj] {
				return true
			}
		}
		return prepared[e.Name]
	case *ast.SelectorExpr:
		return prepared[canonExpr(e)]
	case *ast.IndexExpr:
		return prepared[canonExpr(e)]
	case *ast.CallExpr:
		if isBuiltin(info, e, "append") && len(e.Args) > 0 {
			return isStorageReuse(info, ast.Unparen(e.Args[0]), params, prepared)
		}
	}
	return false
}

// paramObjs collects the objects of the function's parameters (including
// named results, which are also caller-visible buffers only when
// returned — results are excluded; only true parameters qualify).
func paramObjs(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func describeTarget(e ast.Expr) string {
	if c := canonExpr(e); c != "" {
		return c
	}
	return "its destination"
}
