package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathDirective is the annotation that opts a function into the
// no-allocation contract. It goes in the function's doc comment:
//
//	//slacksim:hotpath
//	func (q *Queue[T]) DrainInto(now int64, buf []T) []T { ... }
const hotpathDirective = "//slacksim:hotpath"

// HotPathAlloc protects the steady-state allocation profile of
// checkpoint restore, event-queue drain, and robEntry recycling: after
// pool warm-up these paths run allocation-free, and that property (a
// ~24x reduction, measured in PR 3) dies by a thousand innocent-looking
// appends. Any function carrying //slacksim:hotpath in its doc comment
// may not contain:
//
//   - make() of a slice, map, or channel (fresh backing storage);
//   - new() or &CompositeLit (heap candidates);
//   - function literals (closure environments allocate);
//   - append whose destination is not visibly reusing storage — the
//     accepted idioms are appending into a slice derived from a slicing
//     expression (x = append(x[:0], ...)), appending to a caller-provided
//     buffer parameter, or appending to a target previously reset via a
//     slicing expression in the same function.
//
// Genuinely-unavoidable allocations (pool warm-up, rare resize paths)
// are waived with `//lint:allow hotpathalloc -- <why>`.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "report allocation sources (make, new, composite-literal address, closures, " +
		"growing append) inside //slacksim:hotpath functions",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotPathFunc(pass, fd)
		}
	}
	return nil
}

// isHotPath reports whether the function's doc comment carries the
// //slacksim:hotpath directive.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

func checkHotPathFunc(pass *Pass, fd *ast.FuncDecl) {
	params := paramObjs(pass.Info, fd)
	// prepared tracks canonical targets that were visibly reset to reused
	// storage earlier in the function (x = x[:0], x := buf[:0], ...).
	prepared := map[string]bool{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"function literal in a //slacksim:hotpath function allocates its closure environment; "+
					"hoist it to a method or a struct-field func set up once")
			return false
		case *ast.CallExpr:
			checkHotPathCall(pass, n, params, prepared)
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"&composite-literal in a //slacksim:hotpath function heap-allocates; "+
							"reuse a pooled object instead")
				}
			}
		case *ast.AssignStmt:
			noteHotPathAssign(pass, n, prepared)
		}
		return true
	})
}

// noteHotPathAssign records targets reset to reused storage: any
// assignment (= or :=) whose RHS is a slicing expression marks the LHS
// canonical path as prepared for later appends.
func noteHotPathAssign(pass *Pass, as *ast.AssignStmt, prepared map[string]bool) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		if isStorageReuse(pass, ast.Unparen(rhs), nil, prepared) {
			if c := canonExpr(as.Lhs[i]); c != "" {
				prepared[c] = true
			}
		}
	}
}

func checkHotPathCall(pass *Pass, call *ast.CallExpr, params map[types.Object]bool, prepared map[string]bool) {
	switch {
	case isBuiltin(pass.Info, call, "make"):
		kind := "slice"
		if len(call.Args) > 0 {
			if t := pass.Info.TypeOf(call.Args[0]); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					kind = "map"
				case *types.Chan:
					kind = "channel"
				}
			}
		}
		pass.Reportf(call.Pos(),
			"make(%s) in a //slacksim:hotpath function allocates fresh backing storage; "+
				"preallocate in the constructor and reuse via [:0]/clear()", kind)
	case isBuiltin(pass.Info, call, "new"):
		pass.Reportf(call.Pos(),
			"new() in a //slacksim:hotpath function heap-allocates; recycle through the free list")
	case isBuiltin(pass.Info, call, "append"):
		if len(call.Args) == 0 {
			return
		}
		dst := ast.Unparen(call.Args[0])
		if isStorageReuse(pass, dst, params, prepared) {
			return
		}
		pass.Reportf(call.Pos(),
			"append to %s in a //slacksim:hotpath function can grow (allocate); "+
				"append into a reused backing array (x = append(x[:0], ...)) or a caller-provided buffer",
			describeTarget(dst))
	}
}

// isStorageReuse reports whether an append destination (or assignment
// source) visibly reuses existing storage:
//
//   - a slicing expression (x[:0], buf[:n]) — the canonical reuse idiom;
//   - a caller-provided parameter (the caller owns amortization);
//   - a target previously prepared by a slicing assignment;
//   - a nested append chain whose innermost destination qualifies.
func isStorageReuse(pass *Pass, e ast.Expr, params map[types.Object]bool, prepared map[string]bool) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		if params != nil {
			if obj := pass.Info.Uses[e]; obj != nil && params[obj] {
				return true
			}
		}
		return prepared[e.Name]
	case *ast.SelectorExpr:
		return prepared[canonExpr(e)]
	case *ast.IndexExpr:
		return prepared[canonExpr(e)]
	case *ast.CallExpr:
		if isBuiltin(pass.Info, e, "append") && len(e.Args) > 0 {
			return isStorageReuse(pass, ast.Unparen(e.Args[0]), params, prepared)
		}
	}
	return false
}

// paramObjs collects the objects of the function's parameters (including
// named results, which are also caller-visible buffers only when
// returned — results are excluded; only true parameters qualify).
func paramObjs(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

func describeTarget(e ast.Expr) string {
	if c := canonExpr(e); c != "" {
		return c
	}
	return "its destination"
}
