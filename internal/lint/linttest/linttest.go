// Package linttest is a miniature analysistest: it loads a fixture
// package, runs analyzers over it, and checks the findings against
// `// want "regexp"` comments placed on the lines they should flag.
// Lines without a want comment must produce no finding, so every
// fixture simultaneously tests the positive and negative space of its
// analyzer.
package linttest

import (
	"regexp"
	"strings"
	"testing"

	"slacksim/internal/lint"
)

// wantRe extracts the expectation pattern from a want comment, written
// either analysistest-style with backquotes (`// want ` + "`pat`") or
// with double quotes (`// want "pat"`). The pattern is a regexp matched
// against the finding message.
var wantRe = regexp.MustCompile("//\\s*want\\s+(?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture directory, applies the analyzers, and reports
// any mismatch between findings and want comments as test errors.
func Run(t *testing.T, dir string, analyzers []*lint.Analyzer) {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), pat, err)
				}
				posn := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
			}
		}
	}

	findings, err := pkg.Lint(analyzers)
	if err != nil {
		t.Fatalf("lint fixture %s: %v", dir, err)
	}

	for _, f := range findings {
		w := matchWant(wants, f)
		if w == nil {
			t.Errorf("unexpected finding at %s: %s: %s", f.Position, f.Analyzer, f.Message)
			continue
		}
		w.matched = true
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none",
				shortPath(w.file), w.line, w.re)
		}
	}
}

func matchWant(wants []*expectation, f lint.Finding) *expectation {
	for _, w := range wants {
		if w.matched || w.file != f.Position.Filename || w.line != f.Position.Line {
			continue
		}
		if w.re.MatchString(f.Message) || w.re.MatchString(f.Analyzer+": "+f.Message) {
			return w
		}
	}
	return nil
}

func shortPath(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
