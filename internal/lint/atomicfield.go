package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces all-or-nothing atomicity on struct fields: a
// field accessed through the sync/atomic package anywhere in the program
// must be accessed atomically everywhere (outside its type's
// constructor), and fields of the typed atomic kinds (atomic.Int64,
// atomic.Bool, ...) must never be copied by value. Mixing one plain
// store in with atomic loads is exactly the bug the race detector only
// catches when the interleaving happens under -race — this analyzer
// catches it statically.
//
// Two field classes are checked:
//
//  1. Function-style atomics: any field whose address is passed to a
//     sync/atomic function (atomic.AddInt64(&s.n, 1)) is an atomic
//     field. Every other access — plain read, plain write, ++/--,
//     taking its address outside an atomic call — is flagged.
//     Interprocedural summaries classify addresses passed to in-program
//     helpers: a helper that only uses its pointer parameter atomically
//     is a safe sink; one that dereferences it plainly flags the call
//     site. Addresses escaping to unknown external functions are
//     flagged (the analyzer cannot see what they do).
//
//  2. Typed atomics: a field of a sync/atomic type must only be used
//     via its methods (x.f.Load()) or by address (&x.f). Value copies —
//     assignment of the whole field, passing it by value, ranging over
//     a container of them with a value variable — silently tear the
//     atomic and are flagged.
//
// Constructor exemption: plain access to function-style atomic fields
// inside functions named New*/new* is allowed — before the value is
// published, plain initialization is the idiom.
//
// Soundness boundary: the atomic-field set is computed over the Program
// (the whole module in standalone mode, one package in vet mode), so a
// field used atomically only in another package is not cross-checked in
// vet mode — standalone is the authoritative gate.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "require every access to an atomically-accessed struct field to be atomic " +
		"(outside constructors), and forbid value copies of typed atomic fields",
	Run: runAtomicField,
}

// atomicParamSummary is the interprocedural fact about one function's
// pointer parameters: bitmask Atomic marks parameters passed to
// sync/atomic functions, Plain marks parameters dereferenced directly
// (or escaping to unknown callees). Both propagate through calls.
type atomicParamSummary struct {
	Atomic uint32
	Plain  uint32
}

// isAtomicFunc reports whether fn is a package-level sync/atomic
// function (AddInt64, StoreUint32, CompareAndSwapPointer, ...).
func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isTypedAtomic reports whether t is one of the typed atomics declared
// in sync/atomic (Int32, Int64, Uint32, Uint64, Uintptr, Bool, Pointer,
// Value, Int32-like generics aside).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		// Generic instantiations (atomic.Pointer[T]) are *types.Named too;
		// aliases resolve through Unalias.
		named, ok = types.Unalias(t).(*types.Named)
		if !ok {
			return false
		}
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicParamSummaries computes, bottom-up, how each function treats its
// pointer parameters.
func atomicParamSummaries(prog *Program) map[*types.Func]any {
	return prog.Summaries("atomicfield.params", func(n *FuncNode, callee func(*types.Func) (any, bool)) any {
		if n.Decl == nil {
			var join atomicParamSummary
			for _, c := range n.Callees {
				if s, known := callee(c); known {
					if ps, ok := s.(atomicParamSummary); ok {
						join.Atomic |= ps.Atomic
						join.Plain |= ps.Plain
					}
				}
			}
			return join
		}
		info := n.Pkg.Info
		params := paramIndexObjs(info, n.Decl)
		var sum atomicParamSummary
		mark := func(e ast.Expr, atomic bool) {
			if i, ok := paramIndexOf(info, params, e); ok {
				if atomic {
					sum.Atomic |= 1 << i
				} else {
					sum.Plain |= 1 << i
				}
			}
		}
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.StarExpr:
				// Plain dereference of a pointer parameter.
				mark(node.X, false)
			case *ast.CallExpr:
				fn, unknown := resolveCallee(info, node)
				switch {
				case isAtomicFunc(fn):
					for _, arg := range node.Args {
						mark(arg, true)
					}
				case fn != nil:
					if s, known := callee(fn); known {
						ps, _ := s.(atomicParamSummary)
						for j, arg := range node.Args {
							if j >= 32 {
								break
							}
							if i, ok := paramIndexOf(info, params, arg); ok {
								if ps.Atomic&(1<<j) != 0 {
									sum.Atomic |= 1 << i
								}
								if ps.Plain&(1<<j) != 0 {
									sum.Plain |= 1 << i
								}
							}
						}
					} else {
						// External callee: a pointer parameter handed over
						// escapes the analysis — treat as plain.
						for _, arg := range node.Args {
							mark(arg, false)
						}
					}
				case unknown:
					for _, arg := range node.Args {
						mark(arg, false)
					}
				}
			}
			return true
		})
		return sum
	})
}

// atomicPlainAccess is one non-atomic access to an atomic field.
type atomicPlainAccess struct {
	pkg  *Package
	pos  token.Pos
	desc string
}

// atomicFieldFacts is the program-wide collection: for each field with
// at least one atomic access, where that access is (for the message) and
// every plain access found.
type atomicFieldFacts struct {
	atomicSite map[*types.Var]token.Pos
	sitePkg    map[*types.Var]*Package
	desc       map[*types.Var]string
	plain      map[*types.Var][]atomicPlainAccess
}

// fieldOf resolves a selector expression to the struct field it selects,
// or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isConstructorName reports whether accesses inside the function fall
// under the constructor exemption.
func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// collectAtomicFacts scans the whole program twice: first for atomic
// sites (defining the atomic-field set), then for plain accesses to
// those fields.
func collectAtomicFacts(prog *Program) *atomicFieldFacts {
	return prog.Fact("atomicfield.facts", func() any {
		facts := &atomicFieldFacts{
			atomicSite: map[*types.Var]token.Pos{},
			sitePkg:    map[*types.Var]*Package{},
			desc:       map[*types.Var]string{},
			plain:      map[*types.Var][]atomicPlainAccess{},
		}
		sums := atomicParamSummaries(prog)
		paramBits := func(fn *types.Func) (atomicParamSummary, bool) {
			s, ok := sums[fn]
			if !ok {
				return atomicParamSummary{}, false
			}
			ps, _ := s.(atomicParamSummary)
			return ps, true
		}

		// addrField unwraps &x.f to the field selector, or nil.
		addrField := func(info *types.Info, e ast.Expr) *ast.SelectorExpr {
			ue, ok := ast.Unparen(e).(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return nil
			}
			sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			return sel
		}

		// Phase 1: the atomic-field set — fields whose address reaches a
		// sync/atomic function directly or through an atomic-only helper
		// parameter.
		for _, pkg := range prog.Packages() {
			info := pkg.Info
			for _, f := range pkg.Files {
				ast.Inspect(f, func(node ast.Node) bool {
					call, ok := node.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn, _ := resolveCallee(info, call)
					if fn == nil {
						return true
					}
					record := func(sel *ast.SelectorExpr) {
						fv := fieldOf(info, sel)
						if fv == nil {
							return
						}
						if _, seen := facts.atomicSite[fv]; !seen {
							facts.atomicSite[fv] = sel.Pos()
							facts.sitePkg[fv] = pkg
							if c := canonExpr(sel); c != "" {
								facts.desc[fv] = c
							} else {
								facts.desc[fv] = sel.Sel.Name
							}
						}
					}
					if isAtomicFunc(fn) {
						for _, arg := range call.Args {
							if sel := addrField(info, arg); sel != nil {
								record(sel)
							}
						}
						return true
					}
					if ps, known := paramBits(fn); known {
						for j, arg := range call.Args {
							if j >= 32 {
								break
							}
							if ps.Atomic&(1<<j) != 0 && ps.Plain&(1<<j) == 0 {
								if sel := addrField(info, arg); sel != nil {
									record(sel)
								}
							}
						}
					}
					return true
				})
			}
		}
		if len(facts.atomicSite) == 0 {
			return facts
		}

		// Phase 2: plain accesses to the atomic fields.
		for _, pkg := range prog.Packages() {
			collectPlainAccesses(pkg, facts, paramBits, addrField)
		}
		return facts
	}).(*atomicFieldFacts)
}

// collectPlainAccesses walks one package recording every non-atomic
// access to a field in the atomic set.
func collectPlainAccesses(pkg *Package, facts *atomicFieldFacts,
	paramBits func(*types.Func) (atomicParamSummary, bool),
	addrField func(*types.Info, ast.Expr) *ast.SelectorExpr) {

	info := pkg.Info
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isConstructorName(fd.Name.Name) {
				continue
			}
			// consumed marks selectors already classified by an enclosing
			// construct (an atomic call argument, a flagged LHS, ...).
			consumed := map[ast.Node]bool{}
			tracked := func(sel *ast.SelectorExpr) *types.Var {
				fv := fieldOf(info, sel)
				if fv == nil {
					return nil
				}
				if _, ok := facts.atomicSite[fv]; !ok {
					return nil
				}
				return fv
			}
			add := func(fv *types.Var, pos token.Pos, desc string) {
				facts.plain[fv] = append(facts.plain[fv], atomicPlainAccess{pkg: pkg, pos: pos, desc: desc})
			}
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				switch node := node.(type) {
				case *ast.CallExpr:
					fn, _ := resolveCallee(info, node)
					if fn == nil {
						return true
					}
					if isAtomicFunc(fn) {
						for _, arg := range node.Args {
							if sel := addrField(info, arg); sel != nil {
								consumed[sel] = true
							}
						}
						return true
					}
					ps, known := paramBits(fn)
					for j, arg := range node.Args {
						sel := addrField(info, arg)
						if sel == nil {
							continue
						}
						fv := tracked(sel)
						if fv == nil {
							continue
						}
						consumed[sel] = true
						switch {
						case !known || j >= 32:
							add(fv, arg.Pos(), fmt.Sprintf(
								"address passed to %s, which the analyzer cannot see through", fn.Name()))
						case ps.Plain&(1<<j) != 0:
							add(fv, arg.Pos(), fmt.Sprintf(
								"address passed to %s, which accesses it non-atomically", fn.Name()))
						case ps.Atomic&(1<<j) != 0:
							// Atomic-only helper: a safe sink.
						default:
							// Pointer unused by the callee: harmless.
						}
					}
				case *ast.AssignStmt:
					for _, lhs := range node.Lhs {
						if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
							if fv := tracked(sel); fv != nil {
								consumed[sel] = true
								add(fv, sel.Pos(), "written directly")
							}
						}
					}
				case *ast.IncDecStmt:
					if sel, ok := ast.Unparen(node.X).(*ast.SelectorExpr); ok {
						if fv := tracked(sel); fv != nil {
							consumed[sel] = true
							add(fv, sel.Pos(), "incremented directly")
						}
					}
				case *ast.UnaryExpr:
					if node.Op == token.AND {
						if sel, ok := ast.Unparen(node.X).(*ast.SelectorExpr); ok {
							if fv := tracked(sel); fv != nil && !consumed[sel] {
								consumed[sel] = true
								add(fv, node.Pos(), "address taken outside an atomic call")
							}
						}
					}
				case *ast.SelectorExpr:
					if consumed[node] {
						return true
					}
					if fv := tracked(node); fv != nil {
						add(fv, node.Pos(), "read directly")
					}
				}
				return true
			})
		}
	}
}

func runAtomicField(pass *Pass) error {
	facts := collectAtomicFacts(pass.Prog)
	self := pass.Package()
	for fv, accesses := range facts.plain {
		for _, a := range accesses {
			if a.pkg != self {
				continue
			}
			pass.Reportf(a.pos,
				"field %s is accessed atomically (e.g. at %s) but %s here; every access outside "+
					"the constructor must go through sync/atomic",
				facts.desc[fv], shortPos(pass.Fset, facts.atomicSite[fv]), a.desc)
		}
	}
	checkTypedAtomicCopies(pass)
	return nil
}

// checkTypedAtomicCopies flags value copies of typed atomic fields in
// the pass's package: whole-field assignment, value-context uses, and
// range value variables over containers of atomics.
func checkTypedAtomicCopies(pass *Pass) {
	info := pass.Info
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			consumed := map[ast.Node]bool{}
			atomicSel := func(e ast.Expr) *ast.SelectorExpr {
				sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
				if !ok {
					return nil
				}
				if fieldOf(info, sel) == nil || !isTypedAtomic(info.TypeOf(sel)) {
					return nil
				}
				return sel
			}
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				switch node := node.(type) {
				case *ast.SelectorExpr:
					// x.f.Load(): the inner typed-atomic selector is consumed
					// by the method selection.
					if inner := atomicSel(node.X); inner != nil {
						consumed[inner] = true
					}
					if consumed[node] {
						return true
					}
					if sel := atomicSel(node); sel != nil {
						pass.Reportf(sel.Pos(),
							"typed atomic field %s used by value; atomics must not be copied — "+
								"call its methods or pass &%s", describeTarget(sel), describeTarget(sel))
						consumed[sel] = true
					}
				case *ast.UnaryExpr:
					if node.Op == token.AND {
						if sel := atomicSel(node.X); sel != nil {
							consumed[sel] = true // &x.f is fine: no copy
						}
					}
				case *ast.AssignStmt:
					for _, lhs := range node.Lhs {
						if sel := atomicSel(lhs); sel != nil {
							consumed[sel] = true
							pass.Reportf(sel.Pos(),
								"typed atomic field %s assigned by value; atomics must not be copied — "+
									"use %s.Store(...)", describeTarget(sel), describeTarget(sel))
						}
					}
				case *ast.RangeStmt:
					if v, ok := node.Value.(*ast.Ident); ok && v.Name != "_" {
						if isTypedAtomic(info.TypeOf(node.Value)) {
							pass.Reportf(v.Pos(),
								"range value variable copies atomic values out of %s; range by index instead",
								describeTarget(node.X))
						}
					}
				}
				return true
			})
		}
	}
}
