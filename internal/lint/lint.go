// Package lint is slacksimlint's analysis framework and analyzer suite:
// static enforcement of the invariants the simulator's correctness
// claims stand on. The paper's premise is detecting violations of
// simulation invariants at runtime (monitoring timestamps on shared
// resources); this package is the static complement for the *host*
// program — the invariants that keep the parallel host deterministic,
// lock-correct, and allocation-free on its hot paths:
//
//   - condlock: every sync.Cond Broadcast/Signal must happen while the
//     cond's own locker is held (the PR 1 lost-wakeup bug class).
//   - determinism: result-affecting packages must not read the wall
//     clock, use the global math/rand generator, or let map iteration
//     order escape into ordered output.
//   - hotpathalloc: functions annotated //slacksim:hotpath must not
//     allocate (protecting the incremental-checkpoint hot paths).
//   - guardedby: struct fields annotated "guarded by mu" may only be
//     accessed while that mutex is held.
//   - poolescape: memory from //slacksim:pooled allocators must not
//     outlive its pool's Reset/Release, and SnapshotInto/CopyInto must
//     copy rather than alias (the PR 8 recycled-slice bug class).
//   - atomicfield: a field ever accessed via sync/atomic must be
//     accessed atomically everywhere outside its constructor.
//   - keyappend: //slacksim:appendonly key builders must match their
//     pinned segment schema, additions at the tail only.
//
// hotpathalloc, poolescape, atomicfield, and keyappend are
// interprocedural: they share a call graph and per-function summary
// framework (Program, CallGraph, Summaries) that propagates facts
// bottom-up over SCCs — see DESIGN.md §17.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the suite can be ported to the real
// framework mechanically, but is built entirely on the standard library
// (go/ast, go/types, go/importer) so the repository stays
// dependency-free.
//
// # Suppressions
//
// A finding can be waived with a mandatory-reason directive on the
// flagged line or the line above it:
//
//	//lint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// An allow directive without a reason is itself a finding: the written
// reason is the point of the escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The shape deliberately
// mirrors golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
// Prog is the surrounding Program: the whole module in standalone mode,
// the single package under analysis in vet mode and fixture tests.
// Interprocedural analyzers reach the call graph and summary caches
// through it; it is never nil.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Prog     *Program

	report func(Diagnostic)
}

// Package returns the loaded package this pass analyzes.
func (p *Pass) Package() *Package {
	for _, pkg := range p.Prog.pkgs {
		if pkg.Types == p.Pkg {
			return pkg
		}
	}
	return nil
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one raw finding before suppression filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved, position-stamped finding that survived
// suppression filtering.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{CondLock, Determinism, HotPathAlloc, GuardedBy,
		PoolEscape, AtomicField, KeyAppend}
}

// ByName returns the named analyzers (nil names → full suite).
func ByName(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return Analyzers(), nil
	}
	all := Analyzers()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// allowRe matches the suppression directive. The reason separator is
// mandatory so a bare waiver cannot be written by accident.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-zA-Z0-9_,]+)\s*(?:--\s*(.*))?$`)

// allowSite is one parsed //lint:allow directive.
type allowSite struct {
	analyzers map[string]bool
	reason    string
	line      int
	pos       token.Pos
	used      bool
}

func (s *allowSite) hasReason() bool { return s.reason != "" }

// collectAllows parses every //lint:allow directive in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) []*allowSite {
	var sites []*allowSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				s := &allowSite{
					analyzers: map[string]bool{},
					reason:    strings.TrimSpace(m[2]),
					line:      fset.Position(c.Pos()).Line,
					pos:       c.Pos(),
				}
				for _, n := range strings.Split(m[1], ",") {
					s.analyzers[strings.TrimSpace(n)] = true
				}
				sites = append(sites, s)
			}
		}
	}
	return sites
}

// RunPackage applies the analyzers to one type-checked package and
// returns the findings that survive //lint:allow filtering, sorted by
// position. Findings in _test.go files are dropped: the invariants
// target production code, and the vet driver feeds test variants of
// every package through the same checker.
//
// The package is wrapped in a single-package Program, so interprocedural
// analyzers see facts within the package but not across packages — the
// vet-mode soundness boundary. Callers holding a whole-module Program
// (the standalone loader) use Program-aware paths instead.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*Analyzer) ([]Finding, error) {

	lp := &Package{
		ImportPath: pkg.Path(),
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}
	return runPackageInProgram(NewProgram(lp), lp, analyzers)
}

// runPackageInProgram is RunPackage with an explicit surrounding
// Program (whole-module in standalone mode).
func runPackageInProgram(prog *Program, lp *Package, analyzers []*Analyzer) ([]Finding, error) {
	fset, files, pkg, info := lp.Fset, lp.Files, lp.Types, lp.Info
	// Share the Program's parsed sites so a directive consumed here (or
	// by a summary via AllowedAt) is marked used for AllowInventory.
	allows := prog.allowsFor(lp)
	allowed := func(name string, line int) bool {
		// A directive covers its own line and the following line, so it
		// can trail the flagged statement or stand alone above it. Prefer
		// the same-line directive so that in a stack of per-line trailing
		// allows each one is credited (and audited) for its own line.
		for _, s := range allows {
			if s.analyzers[name] && s.line == line {
				s.used = true
				return true
			}
		}
		for _, s := range allows {
			if s.analyzers[name] && s.line+1 == line {
				s.used = true
				return true
			}
		}
		return false
	}

	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Prog:     prog,
		}
		pass.report = func(d Diagnostic) {
			posn := fset.Position(d.Pos)
			if strings.HasSuffix(posn.Filename, "_test.go") {
				return
			}
			if allowed(a.Name, posn.Line) {
				return
			}
			out = append(out, Finding{Position: posn, Analyzer: a.Name, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path(), err)
		}
	}

	// A reason-less allow is a finding of its own, whether or not it
	// matched anything: the written justification is mandatory.
	for _, s := range allows {
		if !s.hasReason() {
			posn := fset.Position(s.pos)
			if !strings.HasSuffix(posn.Filename, "_test.go") {
				out = append(out, Finding{
					Position: posn,
					Analyzer: "lintdirective",
					Message:  "//lint:allow directive is missing its mandatory reason (use `//lint:allow <name> -- <why>`)",
				})
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// pathEnclosing returns the chain of AST nodes from root down to the
// node whose position range most tightly encloses [pos, end), outermost
// first. It is the stdlib-only stand-in for astutil.PathEnclosingInterval.
func pathEnclosing(root ast.Node, pos, end token.Pos) []ast.Node {
	var path []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && end <= n.End() {
			path = append(path, n)
			ast.Inspect(n, func(c ast.Node) bool {
				if c == nil || c == n {
					return c == n
				}
				if c.Pos() <= pos && end <= c.End() {
					visit(c)
					return false
				}
				return true
			})
			return true
		}
		return false
	}
	visit(root)
	return path
}

// enclosingFuncs returns the innermost function body (FuncDecl body or
// FuncLit body) containing the path's tail, plus the FuncDecl if any.
func enclosingFunc(path []ast.Node) (body *ast.BlockStmt, decl *ast.FuncDecl) {
	for i := len(path) - 1; i >= 0; i-- {
		switch n := path[i].(type) {
		case *ast.FuncLit:
			return n.Body, nil
		case *ast.FuncDecl:
			return n.Body, n
		}
	}
	return nil, nil
}

// canonExpr renders an expression as a canonical access path ("r.mu",
// "q.cond.L", "m.shards[i]") for intra-function lock matching. The empty
// string means the expression has no stable path (calls, literals, ...).
func canonExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := canonExpr(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return canonExpr(e.X)
	case *ast.StarExpr:
		return canonExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return canonExpr(e.X)
		}
		return ""
	case *ast.IndexExpr:
		base := canonExpr(e.X)
		idx := canonExpr(e.Index)
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	}
	return ""
}

// funcNameExempt reports whether a function participates in the
// "caller holds the lock" convention: names ending in "Locked" are
// documented as requiring their receiver's mutex to be held on entry,
// so lock-discipline analyzers skip their bodies.
func funcNameExempt(name string) bool {
	return strings.HasSuffix(name, "Locked")
}

// isPkgFunc reports whether the call's callee is the package-level
// function pkgPath.name, resolved through the type checker (so local
// shadows and method values are not confused with it).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// calleeObj resolves the object a call expression invokes, or nil.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}
