package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// guardedByRe matches the field annotation, written as a trailing or
// doc comment on the field:
//
//	parked []bool // guarded by mu
//	healthy bool  // guarded by Registry.mu
//
// The unqualified form names a sibling field of the same struct; the
// qualified form names a field of another struct in the same package
// (for satellite records owned by a container's lock).
var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)`)

// GuardedBy enforces annotation-declared lock ownership: a struct field
// carrying a "// guarded by mu" comment may only be read while mu (or
// its read half) is held, and only be written while mu is held
// exclusively. The analysis is intra-package and path-directed (same
// lock-state model as condlock); functions named *Locked are exempt by
// the repo-wide "caller holds the lock" convention, and accesses to
// objects freshly constructed in the same function (not yet published)
// are exempt.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "report reads/writes of fields annotated `// guarded by mu` made without holding " +
		"the named mutex",
	Run: runGuardedBy,
}

// guardSpec records one annotated field's lock requirement.
type guardSpec struct {
	// lockObj is the mutex field's object. For unqualified annotations
	// it is the sibling field; for qualified ones, the named struct's
	// field.
	lockObj types.Object
	// lockName is the annotation text, for messages ("mu", "Registry.mu").
	lockName string
	// sameStruct is true for the unqualified form: the access base path
	// must then match the held lock's base path (r.parked needs r.mu,
	// not some other instance's mu).
	sameStruct bool
}

func runGuardedBy(pass *Pass) error {
	specs := collectGuardSpecs(pass)
	if len(specs) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name != nil && funcNameExempt(fd.Name.Name) {
				continue
			}
			checkGuardedFunc(pass, fd, specs)
		}
	}
	return nil
}

// collectGuardSpecs finds every annotated field in the package's struct
// declarations and resolves the mutex it names.
func collectGuardSpecs(pass *Pass) map[types.Object]guardSpec {
	specs := map[types.Object]guardSpec{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				lockName, ok := fieldGuardAnnotation(field)
				if !ok {
					continue
				}
				lockObj, sameStruct := resolveGuardLock(pass, st, lockName)
				if lockObj == nil {
					continue // unresolvable annotation: no enforcement, no crash
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						specs[obj] = guardSpec{lockObj: lockObj, lockName: lockName, sameStruct: sameStruct}
					}
				}
			}
			return true
		})
	}
	return specs
}

// fieldGuardAnnotation extracts the "guarded by X" lock name from a
// field's doc or trailing comment.
func fieldGuardAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// resolveGuardLock maps an annotation's lock name to a mutex object:
// the unqualified form finds the sibling field in the same struct; the
// qualified Owner.field form looks up the named type in the package
// scope and takes its field.
func resolveGuardLock(pass *Pass, st *ast.StructType, lockName string) (types.Object, bool) {
	for i := 0; i < len(lockName); i++ {
		if lockName[i] != '.' {
			continue
		}
		ownerName, fieldName := lockName[:i], lockName[i+1:]
		owner := pass.Pkg.Scope().Lookup(ownerName)
		if owner == nil {
			return nil, false
		}
		strct, ok := owner.Type().Underlying().(*types.Struct)
		if !ok {
			return nil, false
		}
		for j := 0; j < strct.NumFields(); j++ {
			if strct.Field(j).Name() == fieldName {
				return strct.Field(j), false
			}
		}
		return nil, false
	}
	// Unqualified: sibling field of the same struct declaration.
	for _, sib := range st.Fields.List {
		for _, name := range sib.Names {
			if name.Name == lockName {
				return pass.Info.Defs[name], true
			}
		}
	}
	return nil, false
}

func checkGuardedFunc(pass *Pass, fd *ast.FuncDecl, specs map[types.Object]guardSpec) {
	fresh := locallyConstructed(pass, fd)
	// Classify write positions first so the inspection below can tell a
	// store from a load.
	writes := map[*ast.SelectorExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					writes[sel] = true // escaping address: treat as a write
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := selectedField(pass.Info, sel)
		if obj == nil {
			return true
		}
		spec, ok := specs[obj]
		if !ok {
			return true
		}
		if fresh[baseObjOf(pass.Info, sel.X)] {
			return true // object constructed here, not yet published
		}
		// A closure's lock state is its own: bound the scan at the
		// closest enclosing function literal.
		path := pathEnclosing(fd.Body, sel.Pos(), sel.End())
		body, _ := enclosingFunc(path)
		if body == nil {
			body = fd.Body
		}
		held := heldAt(pass.Info, body, sel)
		write := writes[sel]
		if guardSatisfied(spec, sel, held, write) {
			return true
		}
		verb := "read"
		need := "the lock (or its read half)"
		if write {
			verb = "write to"
			need = "the exclusive lock"
		}
		pass.Reportf(sel.Pos(),
			"%s %s, a field guarded by %s, without holding %s",
			verb, canonOr(sel, "field"), spec.lockName, need)
		return true
	})
}

// guardSatisfied reports whether the held-lock set meets the spec for
// this access.
func guardSatisfied(spec guardSpec, sel *ast.SelectorExpr, held map[string]heldLock, write bool) bool {
	accessBase := baseOf(canonExpr(sel.X))
	for _, h := range held {
		if h.obj != spec.lockObj {
			continue
		}
		if write && h.rlock {
			continue // RLock does not license a store
		}
		if spec.sameStruct && accessBase != "" && baseOf(h.canon) != "" && baseOf(h.canon) != accessBase {
			continue // some other instance's mutex
		}
		return true
	}
	return false
}

// selectedField resolves the field object a selector denotes, or nil
// when the selector is not a field access.
func selectedField(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if s, ok := info.Selections[sel]; ok {
		if s.Kind() == types.FieldVal {
			return s.Obj()
		}
		return nil
	}
	// Package-qualified or unresolved selector: not a field access.
	return nil
}

// baseObjOf resolves the object of the root identifier of an access
// path (the "r" in r.shards[i].mu), or nil.
func baseObjOf(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// locallyConstructed collects local variables whose initializer freshly
// constructs an object (composite literal, &composite literal, new(T),
// or a plain `var x T` declaration): until published, their fields
// cannot be accessed by another goroutine, so guarded-field checks do
// not apply.
func locallyConstructed(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	isFreshExpr := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
				return ok
			}
		case *ast.CallExpr:
			return isBuiltin(pass.Info, e, "new")
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && isFreshExpr(rhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 && n.Type != nil {
				for _, name := range n.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
			for i, v := range n.Values {
				if i < len(n.Names) && isFreshExpr(v) {
					if obj := pass.Info.Defs[n.Names[i]]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}

func canonOr(e ast.Expr, fallback string) string {
	if c := canonExpr(e); c != "" {
		return c
	}
	return fallback
}
