package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// resultPackages are the packages whose code can influence engine.Results
// and must therefore be bit-reproducible: same spec + same seed → same
// bytes, on any host, in any process. The list is matched against the
// package import path's module-relative suffix so it holds for the repo
// checked out under any module prefix.
var resultPackages = []string{
	"internal/engine",
	"internal/core",
	"internal/cache",
	"internal/coherence",
	"internal/bus",
	"internal/violation",
	"internal/adaptive",
	"internal/spec",
	"internal/synth",
	"internal/memtrace",
	"internal/sampling",
}

// wallClockFuncs are the time package entry points that read the wall
// clock (directly or by arming a timer against it).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// globalRandExempt are math/rand top-level funcs that do NOT draw from
// the global generator: constructors for explicitly-seeded local ones.
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism enforces reproducibility in result-affecting packages:
// byte-identical Results across hosts, processes, and fleet topologies
// are the property every equivalence test in this repo asserts, and they
// cannot survive wall-clock reads, the (process-global, racy) math/rand
// generator, or map iteration order escaping into ordered output.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "report nondeterminism sources (wall clock, global math/rand, order-sensitive map " +
		"iteration) in result-affecting packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !isResultPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// isResultPackage matches the package path (possibly a vet test-variant
// form like "m/internal/engine [m/internal/engine.test]") against the
// result-affecting list.
func isResultPackage(path string) bool {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	for _, suffix := range resultPackages {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
		// A bare path with no separators (fixture packages loaded outside
		// a module) matches on the final component ("engine").
		if !strings.Contains(path, "/") && path == suffix[strings.LastIndexByte(suffix, '/')+1:] {
			return true
		}
	}
	return false
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	fn, ok := calleeObj(pass.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on an explicitly-seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a result-affecting package; "+
					"derive timing from simulated cycles, or justify with "+
					"`//lint:allow determinism -- <why>` if the value provably never reaches Results",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandExempt[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the process-global generator in a result-affecting package; "+
					"use an explicitly-seeded rand.New(rand.NewSource(seed)) carried in the run's state",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags `range m` over a map when the loop body leaks the
// iteration order into ordered output: appending to a slice that
// outlives the loop (unless that slice is sorted later in the same
// function), writing to an io/fmt sink, sending on a channel, or
// accumulating into a float (whose addition is not associative, so the
// low bits depend on iteration order). Order-insensitive folds — map
// writes, integer sums, counters — pass.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	body, _ := enclosingFuncOfNode(pass, rng)

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside map iteration publishes entries in randomized map order")
		case *ast.CallExpr:
			if name, ok := orderedSinkCall(pass.Info, n); ok {
				pass.Reportf(n.Pos(),
					"%s inside map iteration emits entries in randomized map order; "+
						"collect and sort the keys first", name)
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, body, rng, n)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	// x = append(x, ...) where x is declared outside the loop.
	if as.Tok == token.ASSIGN && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isBuiltin(pass.Info, call, "append") {
			obj := assignTargetObj(pass.Info, as.Lhs[0])
			if obj == nil || declaredWithin(pass.Fset, obj, rng) {
				return
			}
			if fnBody != nil && sortedAfter(pass, fnBody, rng, obj) {
				return
			}
			pass.Reportf(as.Pos(),
				"append to %s inside map iteration builds a slice in randomized map order; "+
					"sort it before it escapes (or iterate sorted keys)", canonExpr(as.Lhs[0]))
			return
		}
	}
	// x += <float> accumulation: float addition is not associative, so
	// even a commutative-looking sum depends on iteration order.
	if as.Tok == token.ADD_ASSIGN || as.Tok == token.SUB_ASSIGN || as.Tok == token.MUL_ASSIGN {
		if len(as.Lhs) != 1 {
			return
		}
		t := pass.Info.TypeOf(as.Lhs[0])
		if t == nil {
			return
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			obj := assignTargetObj(pass.Info, as.Lhs[0])
			if obj != nil && declaredWithin(pass.Fset, obj, rng) {
				return
			}
			pass.Reportf(as.Pos(),
				"floating-point accumulation into %s inside map iteration is order-sensitive "+
					"(float addition is not associative); accumulate in an integer or sort the keys",
				canonExpr(as.Lhs[0]))
		}
	}
}

// orderedSinkCall recognizes calls that emit ordered output: fmt
// printers and Write/WriteString/WriteByte/WriteRune methods.
func orderedSinkCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if fn, ok := calleeObj(info, call).(*types.Func); ok && fn.Pkg() != nil {
		if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
			return "fmt." + fn.Name(), true
		}
		if fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
			return "fmt." + fn.Name(), true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			switch fn.Name() {
			case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
				return fn.Name(), true
			}
		}
	}
	return "", false
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(fset *token.FileSet, obj types.Object, node ast.Node) bool {
	return obj.Pos() != token.NoPos && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// sortedAfter reports whether, after the range statement, the function
// passes obj to a call whose name suggests sorting (sort.*, slices.Sort*,
// or any local helper containing "sort" in its name). This keeps the
// collect-then-sort idiom clean without a suppression.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		name := calleeName(pass.Info, call)
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if lockExprObj(pass.Info, arg) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeName returns the callee's qualified name ("sort.Strings",
// "slices.Sort", "sortCores") so the "contains sort" heuristic sees
// both the package and function halves of the name.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObj(info, call)
	if obj == nil {
		return ""
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// enclosingFuncOfNode finds the innermost function body containing n in
// any of the pass's files.
func enclosingFuncOfNode(pass *Pass, n ast.Node) (*ast.BlockStmt, *ast.FuncDecl) {
	for _, f := range pass.Files {
		if f.Pos() <= n.Pos() && n.End() <= f.End() {
			path := pathEnclosing(f, n.Pos(), n.End())
			return enclosingFunc(path)
		}
	}
	return nil, nil
}
