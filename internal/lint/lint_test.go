package lint_test

import (
	"path/filepath"
	"testing"

	"slacksim/internal/lint"
	"slacksim/internal/lint/linttest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestCondLockFixture(t *testing.T) {
	linttest.Run(t, fixture("condlock"), []*lint.Analyzer{lint.CondLock})
}

func TestDeterminismFixture(t *testing.T) {
	linttest.Run(t, fixture("determinism"), []*lint.Analyzer{lint.Determinism})
}

func TestHotPathAllocFixture(t *testing.T) {
	linttest.Run(t, fixture("hotpathalloc"), []*lint.Analyzer{lint.HotPathAlloc})
}

func TestGuardedByFixture(t *testing.T) {
	linttest.Run(t, fixture("guardedby"), []*lint.Analyzer{lint.GuardedBy})
}

// TestReasonlessAllowIsReported pins the directive contract: an allow
// without a reason suppresses its target finding but surfaces as a
// lintdirective finding of its own.
func TestReasonlessAllowIsReported(t *testing.T) {
	pkg, err := lint.LoadDir(fixture("lintdirective"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings, err := pkg.Lint(lint.Analyzers())
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var directive, condlock int
	for _, f := range findings {
		switch f.Analyzer {
		case "lintdirective":
			directive++
		case "condlock":
			condlock++
		}
	}
	if directive != 1 {
		t.Errorf("want exactly 1 lintdirective finding, got %d (%v)", directive, findings)
	}
	if condlock != 0 {
		t.Errorf("the allow should still suppress the condlock finding, got %d (%v)", condlock, findings)
	}
}

func TestByName(t *testing.T) {
	got, err := lint.ByName([]string{"condlock", "guardedby"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "condlock" || got[1].Name != "guardedby" {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := lint.ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName should reject unknown analyzer names")
	}
	if all, err := lint.ByName(nil); err != nil || len(all) != 7 {
		t.Fatalf("ByName(nil) = %v, %v; want the full 7-analyzer suite", all, err)
	}
}

func TestPoolEscapeFixture(t *testing.T) {
	linttest.Run(t, fixture("poolescape"), []*lint.Analyzer{lint.PoolEscape})
}

func TestAtomicFieldFixture(t *testing.T) {
	linttest.Run(t, fixture("atomicfield"), []*lint.Analyzer{lint.AtomicField})
}

func TestKeyAppendFixture(t *testing.T) {
	linttest.Run(t, fixture("keyappend"), []*lint.Analyzer{lint.KeyAppend})
}

// TestHotPathInterFixture exercises the interprocedural side of
// hotpathalloc: callee allocations propagate to hotpath callers through
// call-graph summaries, waivers at the callee clear its summary, and the
// cold-path conventions (panic, Enabled() guards) are honored.
func TestHotPathInterFixture(t *testing.T) {
	linttest.Run(t, fixture("hotpathinter"), []*lint.Analyzer{lint.HotPathAlloc})
}

// TestEveryAnalyzerHasFixture keeps the suite and the fixture tree in
// lockstep: registering an analyzer without a fixture directory fails.
func TestEveryAnalyzerHasFixture(t *testing.T) {
	for _, a := range lint.Analyzers() {
		dir := fixture(a.Name)
		if a.Name == "hotpathalloc" {
			// Covered by both hotpathalloc (intra) and hotpathinter (inter).
			dir = fixture("hotpathinter")
		}
		if _, err := filepath.Glob(filepath.Join(dir, "*.go")); err != nil {
			t.Fatalf("glob %s: %v", dir, err)
		}
		matches, _ := filepath.Glob(filepath.Join(dir, "*.go"))
		if len(matches) == 0 {
			t.Errorf("analyzer %s has no fixture under %s", a.Name, dir)
		}
	}
}
