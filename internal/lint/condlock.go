package lint

import (
	"go/ast"
	"go/types"
)

// CondLock enforces the engine's wakeup contract: every
// sync.Cond.Broadcast/Signal call must be made while holding the cond's
// own locker. A broadcast outside the critical section can land in the
// window between a waiter's predicate test and its cond.Wait — the
// classic lost wakeup, and exactly the parallel-host shutdown bug fixed
// in PR 1 (see the parRun memory-model contract in
// internal/engine/parallel.go).
var CondLock = &Analyzer{
	Name: "condlock",
	Doc: "report sync.Cond Broadcast/Signal calls made without holding the cond's locker " +
		"(the lost-wakeup bug class)",
	Run: runCondLock,
}

// condLocker records where a cond's locker came from: the object of the
// mutex variable/field passed to sync.NewCond, plus its canonical path
// relative to the cond expression's base.
type condLocker struct {
	obj   types.Object
	canon string
}

func runCondLock(pass *Pass) error {
	// Pass 1: map cond objects (package-level vars, locals, struct
	// fields) to the locker expression passed to sync.NewCond. The
	// binding is found syntactically in assignments, value specs, and
	// composite literals anywhere in the package.
	lockers := map[types.Object]condLocker{}
	bind := func(lhsObj types.Object, call *ast.CallExpr) {
		if lhsObj == nil || len(call.Args) != 1 {
			return
		}
		arg := call.Args[0]
		lockers[lhsObj] = condLocker{
			obj:   lockExprObj(pass.Info, arg),
			canon: canonExpr(arg),
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isPkgFunc(pass.Info, call, "sync", "NewCond") || i >= len(n.Lhs) {
						continue
					}
					bind(assignTargetObj(pass.Info, n.Lhs[i]), call)
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					call, ok := ast.Unparen(v).(*ast.CallExpr)
					if !ok || !isPkgFunc(pass.Info, call, "sync", "NewCond") || i >= len(n.Names) {
						continue
					}
					bind(pass.Info.Defs[n.Names[i]], call)
				}
			case *ast.KeyValueExpr:
				call, ok := ast.Unparen(n.Value).(*ast.CallExpr)
				if !ok || !isPkgFunc(pass.Info, call, "sync", "NewCond") {
					return true
				}
				if key, ok := n.Key.(*ast.Ident); ok {
					bind(pass.Info.Uses[key], call)
				}
			}
			return true
		})
	}

	// Pass 2: check every Broadcast/Signal call site.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name != nil && funcNameExempt(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, method, condExpr := condWakeCall(pass.Info, call)
				if sel == nil {
					return true
				}
				// The closest enclosing function body bounds the lock scan
				// (a closure does not inherit its definer's lock state).
				path := pathEnclosing(fd.Body, call.Pos(), call.End())
				body, _ := enclosingFunc(path)
				if body == nil {
					body = fd.Body
				}
				held := heldAt(pass.Info, body, call)
				if condWakeIsLocked(pass.Info, condExpr, lockers, held) {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s on %s is not dominated by a Lock of the cond's locker: "+
						"a waiter between its predicate test and cond.Wait misses this wakeup (lost-wakeup); "+
						"store state and %s while holding the cond's mutex",
					method, exprString(condExpr), method)
				return true
			})
		}
	}
	return nil
}

// condWakeCall recognizes X.Broadcast() / X.Signal() where X is a
// *sync.Cond (or sync.Cond) value, returning the selector, method name,
// and cond expression.
func condWakeCall(info *types.Info, call *ast.CallExpr) (*ast.SelectorExpr, string, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", nil
	}
	if sel.Sel.Name != "Broadcast" && sel.Sel.Name != "Signal" {
		return nil, "", nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", nil
	}
	if named := namedOf(sig.Recv().Type()); named == nil || named.Obj().Name() != "Cond" {
		return nil, "", nil
	}
	return sel, sel.Sel.Name, sel.X
}

// condWakeIsLocked reports whether the held-lock set satisfies the
// cond's locker requirement:
//
//   - a held lock matching the locker bound by sync.NewCond, by object
//     identity when the cond and the lock share the same base path
//     (r.cond ↔ r.mu), or
//   - an explicit cond.L lock (X.L.Lock() for this X), or
//   - when the cond's construction is not visible in this package, any
//     held lock at all (conservative).
func condWakeIsLocked(info *types.Info, condExpr ast.Expr,
	lockers map[types.Object]condLocker, held map[string]heldLock) bool {

	condCanon := canonExpr(condExpr)
	if condCanon != "" {
		if _, ok := held[condCanon+".L"]; ok {
			return true
		}
	}
	condObj := lockExprObj(info, condExpr)
	locker, known := condLockerFor(condObj, lockers)
	if !known {
		return len(held) > 0
	}
	condBase := baseOf(condCanon)
	for _, h := range held {
		if locker.obj != nil && h.obj == locker.obj {
			// Same mutex object; require the same instance when both
			// sides have a resolvable base path.
			if condBase == "" || baseOf(h.canon) == "" || condBase == baseOf(h.canon) {
				return true
			}
		}
		if locker.canon != "" && h.canon == locker.canon {
			return true
		}
	}
	return false
}

func condLockerFor(condObj types.Object, lockers map[types.Object]condLocker) (condLocker, bool) {
	if condObj == nil {
		return condLocker{}, false
	}
	l, ok := lockers[condObj]
	return l, ok
}

// baseOf returns the leading component of a canonical path ("r.cond" →
// "r"), or "" when there is none.
func baseOf(canon string) string {
	for i := 0; i < len(canon); i++ {
		if canon[i] == '.' || canon[i] == '[' {
			return canon[:i]
		}
	}
	return canon
}

// namedOf unwraps pointers to reach a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// exprString renders a short description of an expression for messages.
func exprString(e ast.Expr) string {
	if c := canonExpr(e); c != "" {
		return c
	}
	return "cond"
}

// assignTargetObj resolves the object an assignment LHS denotes: a
// variable (Uses or Defs for :=) or a struct field (selector).
func assignTargetObj(info *types.Info, lhs ast.Expr) types.Object {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if o := info.Defs[lhs]; o != nil {
			return o
		}
		return info.Uses[lhs]
	case *ast.SelectorExpr:
		return info.Uses[lhs.Sel]
	}
	return nil
}
