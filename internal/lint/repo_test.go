package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"slacksim/internal/lint"
)

// TestRepoIsLintClean runs the full analyzer suite over every package
// in the repository: the tree must stay finding-free (suppressions
// carry written reasons; real issues get fixed). This is the in-process
// half of the CI gate; cmd/slacksimlint tests the binary and vet modes.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages from the repo")
	}
	var total int
	for _, pkg := range pkgs {
		findings, err := pkg.Lint(lint.Analyzers())
		if err != nil {
			t.Fatalf("lint %s: %v", pkg.ImportPath, err)
		}
		for _, f := range findings {
			total++
			t.Errorf("%s", f)
		}
	}
	if total > 0 {
		t.Errorf("%d finding(s); fix them or add `//lint:allow <name> -- <reason>` for genuinely-safe cases", total)
	}
}

// TestBrokenModIsFlagged pins the PR 1 regression: the reconstructed
// unlocked-Broadcast module must produce a condlock finding.
func TestBrokenModIsFlagged(t *testing.T) {
	loader, err := lint.NewLoader(filepath.Join("testdata", "brokenmod"))
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	var hit bool
	for _, pkg := range pkgs {
		findings, err := pkg.Lint(lint.Analyzers())
		if err != nil {
			t.Fatalf("lint %s: %v", pkg.ImportPath, err)
		}
		for _, f := range findings {
			if f.Analyzer == "condlock" && strings.Contains(f.Message, "lost-wakeup") {
				hit = true
			}
		}
	}
	if !hit {
		t.Fatal("condlock did not flag the reconstructed PR 1 unlocked Broadcast")
	}
}
