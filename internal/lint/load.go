package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for RunPackage.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// prog is the Program this package was loaded into: whole-module
	// for Loader.LoadAll, single-package for LoadDir and RunPackage.
	prog *Program
}

// Lint runs the analyzers over the package, with interprocedural
// analyses scoped to the Program the package was loaded into.
func (p *Package) Lint(analyzers []*Analyzer) ([]Finding, error) {
	if p.prog == nil {
		p.prog = NewProgram(p)
	}
	return runPackageInProgram(p.prog, p, analyzers)
}

// Program returns the Program the package was loaded into, building a
// single-package one on first use (as Lint does).
func (p *Package) Program() *Program {
	if p.prog == nil {
		p.prog = NewProgram(p)
	}
	return p.prog
}

// The loader resolves imports without the go command or a module cache:
// module-local paths map onto repository directories, and standard
// library packages are type-checked from GOROOT source by the stdlib
// "source" importer. One process-wide fset and source importer are
// shared so the (expensive) stdlib type-checking is paid once across
// every Loader and test in the process.
var (
	sharedFset    = token.NewFileSet()
	sharedStd     types.Importer
	sharedStdOnce sync.Once
)

func stdImporter() types.Importer {
	sharedStdOnce.Do(func() {
		// The source importer consults build.Default; cgo-flavored files
		// cannot be type-checked from source, so force the pure-Go file
		// set (the same one used for cross-compilation).
		build.Default.CgoEnabled = false
		sharedStd = importer.ForCompiler(sharedFset, "source", nil)
	})
	return sharedStd
}

// A Loader loads and type-checks the packages of one module rooted at
// RootDir, offline.
type Loader struct {
	RootDir    string
	modulePath string
	fset       *token.FileSet
	ctxt       build.Context

	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle detection
}

// NewLoader prepares a loader for the module rooted at dir (which must
// contain a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	stdImporter() // ensure build.Default is configured before ImportDir use
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		RootDir:    abs,
		modulePath: modPath,
		fset:       sharedFset,
		ctxt:       ctxt,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll loads every package under the module root (the ./... set),
// returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.RootDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.RootDir {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })

	// One Program spans every package the loader saw (the walked set
	// plus any module-local dependencies pulled in by imports), so
	// interprocedural summaries cross package boundaries.
	all := make([]*Package, 0, len(l.pkgs))
	for _, pkg := range l.pkgs {
		all = append(all, pkg)
	}
	prog := NewProgram(all...)
	for _, pkg := range all {
		pkg.prog = prog
	}
	return out, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.RootDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir loads the package in dir, or (nil, nil) when the directory
// holds no buildable Go files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	pkg := &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader to types.Importer: module-local
// paths recurse into loadDir, "unsafe" is the built-in package, and
// everything else goes to the shared stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.RootDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return stdImporter().Import(path)
}

// LoadDir type-checks a single directory as a standalone package whose
// imports are standard-library only. It is the fixture loader used by
// the analyzer tests.
func LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	stdImporter()
	ctxt := build.Default
	ctxt.CgoEnabled = false
	bp, err := ctxt.ImportDir(abs, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(sharedFset, filepath.Join(abs, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:    importOnlyStd{},
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(bp.Name, sharedFset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", abs, err)
	}
	return &Package{
		Dir:        abs,
		ImportPath: bp.Name,
		Fset:       sharedFset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

type importOnlyStd struct{}

func (importOnlyStd) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return stdImporter().Import(path)
}
