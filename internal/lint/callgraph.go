package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Program is the whole set of packages one lint run can see, plus the
// lazily-built call graph and per-analysis summary caches shared by the
// interprocedural analyzers. In standalone mode the Program spans the
// entire module (cross-package summaries); in vet mode and in fixture
// tests it holds a single package, so interprocedural facts stop at the
// package boundary — standalone is the stronger, authoritative gate.
type Program struct {
	pkgs   []*Package
	byPath map[string]*Package

	cg     *CallGraph
	facts  map[string]any                 // per-analysis program-wide facts
	sums   map[string]map[*types.Func]any // per-analysis summary caches
	allows map[*Package][]*allowSite      // per-package allow directives
}

// NewProgram builds a Program over the given packages. Packages must
// share one *token.FileSet and one type-checking universe (the same
// Loader, or a single package).
func NewProgram(pkgs ...*Package) *Program {
	p := &Program{
		byPath: map[string]*Package{},
		facts:  map[string]any{},
		sums:   map[string]map[*types.Func]any{},
		allows: map[*Package][]*allowSite{},
	}
	for _, pkg := range pkgs {
		if pkg == nil {
			continue
		}
		if _, ok := p.byPath[pkg.ImportPath]; ok {
			continue
		}
		p.pkgs = append(p.pkgs, pkg)
		p.byPath[pkg.ImportPath] = pkg
	}
	sort.Slice(p.pkgs, func(i, j int) bool { return p.pkgs[i].ImportPath < p.pkgs[j].ImportPath })
	return p
}

// Packages returns the program's packages sorted by import path.
func (p *Program) Packages() []*Package { return p.pkgs }

// allowsFor parses (once) and returns the //lint:allow sites of pkg.
func (p *Program) allowsFor(pkg *Package) []*allowSite {
	if sites, ok := p.allows[pkg]; ok {
		return sites
	}
	sites := collectAllows(pkg.Fset, pkg.Files)
	p.allows[pkg] = sites
	return sites
}

// AllowedAt reports whether a finding by the named analyzer at pos in
// pkg is waived by a //lint:allow directive. Interprocedural analyzers
// use it to honor waivers at the callee: a waived allocation inside a
// helper does not poison the helper's summary.
func (p *Program) AllowedAt(pkg *Package, analyzer string, pos token.Pos) bool {
	line := pkg.Fset.Position(pos).Line
	// Same-line directives first, mirroring the finding filter: in a
	// stack of trailing allows each is credited for its own line.
	for _, s := range p.allowsFor(pkg) {
		if s.analyzers[analyzer] && s.line == line {
			s.used = true
			return true
		}
	}
	for _, s := range p.allowsFor(pkg) {
		if s.analyzers[analyzer] && s.line+1 == line {
			s.used = true
			return true
		}
	}
	return false
}

// AllowInfo is one //lint:allow directive, for inventory output.
type AllowInfo struct {
	Position  token.Position
	Analyzers []string
	Reason    string
	// Used reports whether any analysis already run on this Program
	// consumed the directive (suppressed a finding, or cleared a callee
	// summary via AllowedAt). Run the full suite over every package
	// before reading it: an untouched package's directives are all
	// trivially unused.
	Used bool
}

// AllowInventory returns every //lint:allow directive in the program's
// non-test files, sorted by position.
func (p *Program) AllowInventory() []AllowInfo {
	var out []AllowInfo
	for _, pkg := range p.pkgs {
		for _, s := range p.allowsFor(pkg) {
			posn := pkg.Fset.Position(s.pos)
			if strings.HasSuffix(posn.Filename, "_test.go") {
				continue
			}
			names := make([]string, 0, len(s.analyzers))
			for n := range s.analyzers {
				names = append(names, n)
			}
			sort.Strings(names)
			out = append(out, AllowInfo{
				Position:  posn,
				Analyzers: names,
				Reason:    s.reason,
				Used:      s.used,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// Fact returns the program-wide fact for key, building it on first use.
// Analyzers use it to compute whole-program collections (e.g. the set of
// atomically-accessed fields) exactly once per lint run.
func (p *Program) Fact(key string, build func() any) any {
	if f, ok := p.facts[key]; ok {
		return f
	}
	f := build()
	p.facts[key] = f
	return f
}

// A FuncNode is one call-graph node: a function or method with a
// declaration in the program, or an interface method acting as a
// dispatch hub over its in-program implementations (Decl == nil).
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil for interface-method dispatch hubs
	Pkg  *Package      // nil for dispatch hubs

	// Callees are the statically-resolvable call targets, in first-use
	// order: direct calls, method calls, method-value references (a
	// method used as a value may be called later, so it is an edge), and
	// — for dispatch hubs — every in-program concrete implementation.
	Callees []*types.Func
	// CallsUnknown records that the body calls through a function value
	// or other callee the graph cannot resolve to a *types.Func.
	CallsUnknown bool
}

// A CallGraph is the static over-approximated call graph of a Program,
// plus its strongly-connected components in bottom-up (callee-first)
// order.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode

	// sccs lists the condensation's components in reverse topological
	// order: every callee's component appears before (or with) its
	// caller's, so a bottom-up summary pass processes sccs in slice
	// order.
	sccs [][]*FuncNode
}

// Node returns the call-graph node for fn, or nil when fn has no
// declaration in the program (external, stdlib, or export-data-only).
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.nodes[fn] }

// CallGraph builds (once) and returns the program's call graph.
func (p *Program) CallGraph() *CallGraph {
	if p.cg != nil {
		return p.cg
	}
	g := &CallGraph{nodes: map[*types.Func]*FuncNode{}}

	// Pass 1: a node per declared function, with edges collected from
	// its body (function literals are attributed to the enclosing
	// declaration: their bodies run, at the latest, while the enclosing
	// frame's effects are the caller's responsibility).
	var ifaceMethods []*types.Func
	seenIface := map[*types.Func]bool{}
	for _, pkg := range p.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &FuncNode{Fn: obj, Decl: fd, Pkg: pkg}
				collectEdges(pkg.Info, fd.Body, n, seenIface, &ifaceMethods)
				g.nodes[obj] = n
			}
		}
	}

	// Pass 2: expand interface methods into dispatch hubs over every
	// in-program implementation (conservative: any concrete type that
	// implements the interface may be the dynamic callee).
	for _, im := range ifaceMethods {
		if g.nodes[im] != nil {
			continue
		}
		hub := &FuncNode{Fn: im}
		iface := ifaceOf(im)
		for _, pkg := range p.pkgs {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				if _, isIface := named.Underlying().(*types.Interface); isIface {
					continue
				}
				var recv types.Type = named
				if iface != nil && !types.Implements(recv, iface) {
					recv = types.NewPointer(named)
					if !types.Implements(recv, iface) {
						continue
					}
				}
				obj, _, _ := types.LookupFieldOrMethod(recv, true, im.Pkg(), im.Name())
				if m, ok := obj.(*types.Func); ok && g.nodes[m] != nil {
					hub.Callees = append(hub.Callees, m)
				}
			}
		}
		// A dispatch hub with zero in-program implementations behaves as
		// an unknown callee: implementations may live outside the program.
		if len(hub.Callees) == 0 {
			hub.CallsUnknown = true
		}
		g.nodes[im] = hub
	}

	g.computeSCCs()
	p.cg = g
	return g
}

// ifaceOf returns the interface type declaring the method, or nil.
func ifaceOf(m *types.Func) *types.Interface {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if named, ok := t.(*types.Named); ok {
		t = named.Underlying()
	}
	iface, _ := t.(*types.Interface)
	return iface
}

// resolveCallee classifies a call expression: a statically-known
// *types.Func target (direct call, method call, generic instantiation),
// a harmless non-function "call" (builtin, type conversion, func
// literal invoked in place), or an unknown callee (a call through a
// function value the graph cannot resolve).
func resolveCallee(info *types.Info, call *ast.CallExpr) (fn *types.Func, unknown bool) {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](x), m[T1, T2](x).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if tv, ok := info.Types[fun]; !ok || !tv.IsType() {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.FuncLit:
		// Invoked in place: its body is already attributed to the
		// enclosing declaration by the edge walk.
		return nil, false
	default:
		// *ast.ArrayType and friends are type conversions.
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return nil, false
		}
		return nil, true
	}
	switch obj := obj.(type) {
	case *types.Func:
		return obj, false
	case *types.Builtin, *types.TypeName, nil:
		return nil, false
	default:
		// *types.Var (a function value) or anything else: unresolvable.
		return nil, true
	}
}

// collectEdges walks one function body recording call and method-value
// edges on n. Interface-method callees are recorded both as edges and in
// ifaceMethods for hub expansion.
func collectEdges(info *types.Info, body ast.Node, n *FuncNode,
	seenIface map[*types.Func]bool, ifaceMethods *[]*types.Func) {

	// callFuns marks expressions that appear as the Fun of a call, so a
	// *types.Func used outside call position is recognized as a method
	// value (a possible deferred call) rather than double-counted.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	seen := map[*types.Func]bool{}
	addEdge := func(fn *types.Func) {
		if fn == nil {
			return
		}
		if !seen[fn] {
			seen[fn] = true
			n.Callees = append(n.Callees, fn)
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				if !seenIface[fn] {
					seenIface[fn] = true
					*ifaceMethods = append(*ifaceMethods, fn)
				}
			}
		}
	}

	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			fn, unknown := resolveCallee(info, node)
			if fn != nil {
				addEdge(fn)
			} else if unknown {
				n.CallsUnknown = true
			}
		case *ast.Ident:
			if callFuns[ast.Expr(node)] {
				return true
			}
			if fn, ok := info.Uses[node].(*types.Func); ok {
				// A function or method referenced as a value: conservatively
				// an edge (it may be invoked by whoever receives it).
				addEdge(fn)
			}
		case *ast.SelectorExpr:
			if callFuns[ast.Expr(node)] {
				return true
			}
			if fn, ok := info.Uses[node.Sel].(*types.Func); ok {
				addEdge(fn)
			}
		}
		return true
	})
}

// computeSCCs runs Tarjan's algorithm (iteratively, deterministic node
// order) and stores the components in reverse topological order:
// callees before callers.
func (g *CallGraph) computeSCCs() {
	// Deterministic iteration order: sort nodes by position (hubs, which
	// have no Decl, sort by qualified name at the end).
	nodes := make([]*FuncNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		a, b := nodes[i], nodes[j]
		switch {
		case a.Decl != nil && b.Decl != nil:
			return a.Decl.Pos() < b.Decl.Pos()
		case a.Decl != nil:
			return true
		case b.Decl != nil:
			return false
		default:
			return a.Fn.FullName() < b.Fn.FullName()
		}
	})

	index := map[*FuncNode]int{}
	low := map[*FuncNode]int{}
	onStack := map[*FuncNode]bool{}
	var stack []*FuncNode
	next := 0

	type frame struct {
		n  *FuncNode
		ci int // next callee index to visit
	}
	var visit func(root *FuncNode)
	visit = func(root *FuncNode) {
		work := []frame{{n: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			n := f.n
			if f.ci == 0 {
				index[n] = next
				low[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			for f.ci < len(n.Callees) {
				c := g.nodes[n.Callees[f.ci]]
				f.ci++
				if c == nil {
					continue
				}
				if _, seen := index[c]; !seen {
					work = append(work, frame{n: c})
					advanced = true
					break
				}
				if onStack[c] && index[c] < low[n] {
					low[n] = index[c]
				}
			}
			if advanced {
				continue
			}
			// n is finished: pop an SCC if n is a root.
			if low[n] == index[n] {
				var scc []*FuncNode
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					scc = append(scc, m)
					if m == n {
						break
					}
				}
				g.sccs = append(g.sccs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].n
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
}
