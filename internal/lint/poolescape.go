package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pooledDirective marks a function whose return value is pool-owned
// memory: arena slots, free-listed entries, recycled band slices. The
// annotation is an ownership-transfer contract — the caller receives
// memory that dies at the pool owner's Reset/Release — and it is how
// pooled-ness propagates across packages (the analyzer reads the
// directive from the callee's doc comment):
//
//	// newEntry returns a pooled line entry.
//	//
//	//slacksim:pooled
//	func (m *StatusMap) newEntry() *entry { ... }
const pooledDirective = "//slacksim:pooled"

// PoolEscape enforces the DESIGN.md §15 ownership rules for pooled
// memory: references into arena-backed or free-listed storage must not
// be stored anywhere that outlives the pool owner's Reset/Release, and
// snapshot-copy methods must not alias source-owned storage into their
// destination. Three rules:
//
//  1. Into-method aliasing: inside a method named SnapshotInto or
//     CopyInto, no reference-typed value (slice, map, pointer) rooted at
//     the receiver (the source) may be assigned into a location rooted
//     at a parameter (the destination) — the destination must receive a
//     copy (copy(), append(dst[:0], src...), element-wise loops), never
//     the source's backing. Locals bound to receiver-rooted references
//     (including range variables over receiver-rooted containers) are
//     tracked.
//
//  2. Pooled-value escape: a value returned by a //slacksim:pooled
//     function (or by arena-style Get methods so annotated) is tracked
//     through local assignments. It must not be stored to a
//     package-level variable, sent on a channel, captured by a closure,
//     stored into a structure rooted at a *different* object than the
//     pool it came from, or returned from a function that is not itself
//     annotated //slacksim:pooled. Interprocedural summaries propagate
//     two facts about callees a pooled value is passed to: whether the
//     callee returns its argument (the result stays pooled) and whether
//     the callee stores its argument globally (an escape at the call
//     site).
//
//  3. Unclean recycling (the PR 8 event.Bands bug class): a slice pushed
//     onto a free list (append to a field named free/freeList) must have
//     been clear()ed in the same function first — a recycled backing
//     array that still holds its previous items pins them past their
//     release, and hands stale values to the next owner.
//
// Soundness boundary: tracking is per-function and name-based (canonical
// access paths); pooled values reached through container reads (m.lines
// ranged elsewhere), stored into untracked locals' fields, or laundered
// through unresolvable function values are not followed. Ownership of
// whole pooled Machines (engine.MachinePool) is a protocol property
// enforced by the stress equivalence tests, not this analyzer.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "enforce pooled-memory ownership: no arena/free-list reference may outlive its pool's " +
		"Reset/Release, SnapshotInto/CopyInto must copy rather than alias, recycled slices must be cleared",
	Run: runPoolEscape,
}

// poolSummary is the interprocedural fact about one function: whether
// its result is pool-owned memory, and what it does with its parameters.
type poolSummary struct {
	// ReturnsPooled: the function's result is pooled memory (annotated,
	// or inferred from its body — inference is additionally flagged at
	// the decl so the contract gets written down).
	ReturnsPooled bool
	// ParamReturned: bitmask of parameters that may be returned — a
	// pooled argument keeps its taint through the call's result.
	ParamReturned uint32
	// ParamEscapes: bitmask of parameters stored to package-level state.
	ParamEscapes uint32
}

func isPooledDecl(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == pooledDirective {
			return true
		}
	}
	return false
}

// poolSummaries computes the program's pool summaries bottom-up.
func poolSummaries(prog *Program) map[*types.Func]any {
	return prog.Summaries("poolescape", func(n *FuncNode, callee func(*types.Func) (any, bool)) any {
		if n.Decl == nil {
			// Interface dispatch hub: join over implementations.
			var join poolSummary
			for _, c := range n.Callees {
				if s, known := callee(c); known {
					if ps, ok := s.(poolSummary); ok {
						join.ReturnsPooled = join.ReturnsPooled || ps.ReturnsPooled
						join.ParamReturned |= ps.ParamReturned
						join.ParamEscapes |= ps.ParamEscapes
					}
				}
			}
			return join
		}
		sum := poolSummary{ReturnsPooled: isPooledDecl(n.Decl)}
		params := paramIndexObjs(n.Pkg.Info, n.Decl)
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.ReturnStmt:
				for _, res := range node.Results {
					if i, ok := paramIndexOf(n.Pkg.Info, params, res); ok {
						sum.ParamReturned |= 1 << i
					}
					if exprIsPooledCall(n.Pkg.Info, res, callee) {
						sum.ReturnsPooled = true
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					if isPackageLevelTarget(n.Pkg.Info, lhs) {
						for _, rhs := range node.Rhs {
							if i, ok := paramIndexOf(n.Pkg.Info, params, rhs); ok {
								sum.ParamEscapes |= 1 << i
							}
						}
					}
				}
			}
			return true
		})
		return sum
	})
}

// exprIsPooledCall reports whether e is a direct call whose callee
// returns pooled memory (annotated, or by summary).
func exprIsPooledCall(info *types.Info, e ast.Expr, callee func(*types.Func) (any, bool)) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, _ := resolveCallee(info, call)
	if fn == nil {
		return false
	}
	if s, known := callee(fn); known {
		ps, _ := s.(poolSummary)
		return ps.ReturnsPooled
	}
	return false
}

// paramIndexObjs maps each parameter object (receiver excluded) to its
// index.
func paramIndexObjs(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	if fd.Type.Params == nil {
		return out
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return out
}

func paramIndexOf(info *types.Info, params map[types.Object]int, e ast.Expr) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := info.Uses[id]
	if obj == nil {
		return 0, false
	}
	i, ok := params[obj]
	if !ok || i >= 32 {
		return 0, false
	}
	return i, true
}

// isPackageLevelTarget reports whether the assignment target's base is a
// package-scope variable.
func isPackageLevelTarget(info *types.Info, lhs ast.Expr) bool {
	base := baseIdent(lhs)
	if base == nil {
		return false
	}
	obj, ok := info.Uses[base].(*types.Var)
	if !ok || obj.IsField() {
		return false
	}
	return obj.Parent() == obj.Pkg().Scope()
}

// baseIdent returns the root identifier of an access path (x in
// x.f[i].g), or nil when the path has no stable root.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

func runPoolEscape(pass *Pass) error {
	sums := poolSummaries(pass.Prog)
	resolve := func(fn *types.Func) (any, bool) {
		s, ok := sums[fn]
		return s, ok
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolFunc(pass, fd, resolve)
			if fd.Recv != nil && (fd.Name.Name == "SnapshotInto" || fd.Name.Name == "CopyInto") {
				checkIntoAliasing(pass, fd)
			}
		}
	}
	return nil
}

// isRefType reports whether t shares backing storage when assigned:
// slices, maps, pointers, and channels.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan:
		return true
	}
	return false
}

// checkIntoAliasing enforces rule 1 on one SnapshotInto/CopyInto body.
func checkIntoAliasing(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return
	}
	recvName := fd.Recv.List[0].Names[0].Name
	paramNames := map[string]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				paramNames[name.Name] = true
			}
		}
	}
	// srcLocals: locals bound to receiver-rooted reference values
	// (assignments and range variables).
	srcLocals := map[string]bool{}
	rootedAtRecv := func(e ast.Expr) bool {
		base := baseIdent(e)
		if base == nil {
			return false
		}
		return base.Name == recvName || srcLocals[base.Name]
	}
	// aliasesSource reports whether the RHS expression shares backing
	// with receiver-owned storage: a receiver-rooted path, a slice/index
	// of one, or an append that either reuses a receiver-rooted
	// destination or appends a receiver-rooted reference value (a spread
	// append(dst[:0], src...) copies elements and is the accepted
	// idiom — deep-copying ref-typed elements is on the method).
	aliasesSource := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok {
			// Calls produce fresh values (Snapshot(), copies) — except
			// append, which may return or retain its arguments' backing.
			if isBuiltin(pass.Info, call, "append") && len(call.Args) > 0 {
				if rootedAtRecv(ast.Unparen(call.Args[0])) {
					return true
				}
				if call.Ellipsis.IsValid() {
					return false
				}
				for _, arg := range call.Args[1:] {
					arg = ast.Unparen(arg)
					if isRefType(pass.Info.TypeOf(arg)) && rootedAtRecv(arg) {
						return true
					}
				}
			}
			return false
		}
		if !isRefType(pass.Info.TypeOf(e)) {
			return false
		}
		return rootedAtRecv(e)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if v, ok := n.Value.(*ast.Ident); ok && v.Name != "_" && rootedAtRecv(n.X) {
				if isRefType(pass.Info.TypeOf(n.Value)) {
					srcLocals[v.Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				rhs := ast.Unparen(n.Rhs[i])
				// Track locals bound to source-owned references.
				if id, ok := lhs.(*ast.Ident); ok && !paramNames[id.Name] {
					if isRefType(pass.Info.TypeOf(rhs)) && rootedAtRecv(rhs) {
						srcLocals[id.Name] = true
					}
					continue
				}
				base := baseIdent(lhs)
				if base == nil || !paramNames[base.Name] {
					continue
				}
				if aliasesSource(rhs) {
					pass.Reportf(n.Pos(),
						"%s aliases source-owned storage (%s) into the destination; the destination "+
							"must own a copy — use copy(), append(dst[:0], src...), or an element-wise loop "+
							"(recycled source backing would corrupt the snapshot on reuse)",
						fd.Name.Name, describeTarget(rhs))
				}
			}
		}
		return true
	})
}

// taintRoot describes one tracked pooled value: the base identifier of
// the pool owner it was obtained from ("" when the owner has no stable
// root).
type taintRoot struct {
	root string
	pos  token.Pos // where the value was obtained (for messages)
}

// checkPoolFunc enforces rules 2 and 3 on one function body.
func checkPoolFunc(pass *Pass, fd *ast.FuncDecl, callee func(*types.Func) (any, bool)) {
	info := pass.Info
	selfPooled := isPooledDecl(fd)

	// tainted maps local object → pooled-taint; aliases maps local
	// object → the root name of the receiver-/param-rooted storage it
	// references (so `sh := &m.shards[i]` keeps root "m").
	tainted := map[types.Object]taintRoot{}
	aliases := map[types.Object]string{}
	cleared := map[string]bool{} // canonical paths clear()ed so far

	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		return info.Uses[id]
	}
	// rootName resolves an access path to the name of the object that
	// owns its storage, following local aliases.
	rootName := func(e ast.Expr) string {
		base := baseIdent(e)
		if base == nil {
			return ""
		}
		if obj := info.Uses[base]; obj != nil {
			if r, ok := aliases[obj]; ok {
				return r
			}
			if t, ok := tainted[obj]; ok && t.root != "" {
				// A pooled local's fields belong to its pool.
				return t.root
			}
		}
		return base.Name
	}
	// pooledExpr reports whether e carries pooled taint, and from which
	// root: a tainted local, or a call to a pooled-returning function
	// (the root is the callee chain's base, e.g. "m" for m.entries.Get()).
	pooledExpr := func(e ast.Expr) (taintRoot, bool) {
		e = ast.Unparen(e)
		if obj := objOf(e); obj != nil {
			if t, ok := tainted[obj]; ok {
				return t, true
			}
			return taintRoot{}, false
		}
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return taintRoot{}, false
		}
		fn, _ := resolveCallee(info, call)
		if fn == nil {
			return taintRoot{}, false
		}
		if s, known := callee(fn); known {
			ps, _ := s.(poolSummary)
			if ps.ReturnsPooled {
				root := ""
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if base := baseIdent(sel.X); base != nil {
						root = base.Name
					}
				}
				return taintRoot{root: root, pos: call.Pos()}, true
			}
			// A pooled argument returned by the callee keeps its taint.
			for i, arg := range call.Args {
				if i >= 32 {
					break
				}
				if ps.ParamReturned&(1<<i) != 0 {
					if obj := objOf(arg); obj != nil {
						if t, ok := tainted[obj]; ok {
							return t, true
						}
					}
				}
			}
		}
		return taintRoot{}, false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure outlives the statement; pooled values captured by
			// it escape their owner's scope.
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						if t, ok := tainted[obj]; ok {
							pass.Reportf(id.Pos(),
								"pooled memory (obtained at %s) captured by a closure; the closure may outlive "+
									"the pool owner's Reset/Release — copy the value or hoist the capture",
								shortPos(pass.Fset, t.pos))
						}
					}
				}
				return true
			})
			return false
		case *ast.SendStmt:
			if t, ok := pooledExpr(n.Value); ok {
				pass.Reportf(n.Pos(),
					"pooled memory (obtained at %s) sent on a channel escapes its owner; the receiver may "+
						"hold it past Reset/Release — send a copy", shortPos(pass.Fset, t.pos))
			}
		case *ast.ReturnStmt:
			if selfPooled {
				return true
			}
			for _, res := range n.Results {
				if t, ok := pooledExpr(res); ok {
					pass.Reportf(res.Pos(),
						"pooled memory (obtained at %s) returned from a function not annotated "+
							"//slacksim:pooled; write the ownership-transfer contract down (annotate) or return a copy",
						shortPos(pass.Fset, t.pos))
				}
			}
		case *ast.CallExpr:
			// clear(x) marks x's canonical path as safe to recycle.
			if isBuiltin(info, n, "clear") && len(n.Args) == 1 {
				if c := canonExpr(ast.Unparen(n.Args[0])); c != "" {
					cleared[c] = true
				}
				return true
			}
			// Passing a pooled value to a callee that stores its
			// parameter globally is an escape at the call site.
			fn, _ := resolveCallee(info, n)
			if fn != nil {
				if s, known := callee(fn); known {
					ps, _ := s.(poolSummary)
					for i, arg := range n.Args {
						if i >= 32 || ps.ParamEscapes&(1<<i) == 0 {
							continue
						}
						if t, ok := pooledExpr(arg); ok {
							pass.Reportf(arg.Pos(),
								"pooled memory (obtained at %s) passed to %s, which stores its argument in "+
									"package-level state outliving the pool", shortPos(pass.Fset, t.pos), fn.Name())
						}
					}
				}
			}
		case *ast.AssignStmt:
			checkPoolAssign(pass, fd, n, tainted, aliases, cleared, pooledExpr, rootName)
		}
		return true
	})
}

// checkPoolAssign handles taint propagation and the store rules for one
// assignment.
func checkPoolAssign(pass *Pass, fd *ast.FuncDecl, as *ast.AssignStmt,
	tainted map[types.Object]taintRoot, aliases map[types.Object]string,
	cleared map[string]bool, pooledExpr func(ast.Expr) (taintRoot, bool),
	rootName func(ast.Expr) string) {

	info := pass.Info
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		rhs := ast.Unparen(as.Rhs[i])

		// Rule 3: free-list push of a slice that was not cleared; and the
		// store rules applied to values appended into a container.
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(info, call, "append") && len(call.Args) >= 2 {
			if isFreeListPath(lhs) {
				for _, arg := range call.Args[1:] {
					arg = ast.Unparen(arg)
					if _, ok := info.TypeOf(arg).Underlying().(*types.Slice); !ok {
						continue
					}
					base := arg
					if se, ok := arg.(*ast.SliceExpr); ok {
						base = ast.Unparen(se.X)
					}
					if c := canonExpr(base); c != "" && !cleared[c] {
						pass.Reportf(arg.Pos(),
							"recycled slice %s pushed onto the free list without clear(); its backing still "+
								"holds the previous items, pinning them past release and leaking them to the "+
								"next owner (the PR 8 event.Bands aliasing bug class)", c)
					}
				}
			}
			// Appending a pooled value stores it into the destination
			// container: the same global / cross-root rules apply.
			for _, arg := range call.Args[1:] {
				t, pooled := pooledExpr(ast.Unparen(arg))
				if !pooled {
					continue
				}
				if isPackageLevelTarget(info, lhs) {
					pass.Reportf(arg.Pos(),
						"pooled memory (obtained at %s) appended to package-level variable %s; it outlives "+
							"the pool owner's Reset/Release", shortPos(pass.Fset, t.pos), describeTarget(lhs))
					continue
				}
				lroot := rootName(lhs)
				if t.root != "" && lroot != "" && lroot != t.root && !isLocalName(info, fd, lhs) {
					pass.Reportf(arg.Pos(),
						"pooled memory from %s's pool (obtained at %s) appended to %s, rooted at %s; %s's "+
							"Reset/Release would invalidate it while %s still holds the reference",
						t.root, shortPos(pass.Fset, t.pos), describeTarget(lhs), lroot, t.root, lroot)
				}
			}
		}

		// Taint/alias propagation into locals (package-level identifier
		// targets fall through to the store rules below).
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && !isPackageLevelTarget(info, id) {
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if t, ok := pooledExpr(rhs); ok {
				tainted[obj] = t
				continue
			}
			// Alias tracking: sh := &m.shards[i] keeps root "m".
			if isRefType(info.TypeOf(rhs)) {
				if r := rootName(rhs); r != "" && r != id.Name {
					if base := baseIdent(rhs); base != nil {
						aliases[obj] = r
					}
				}
			}
			continue
		}

		// Rule 2: pooled value stored into a field path. Allowed when the
		// target is rooted at the same object the pool came from (the
		// owner storing its own pooled entry); flagged for package-level
		// targets and cross-root stores.
		t, pooled := pooledExpr(rhs)
		if !pooled {
			continue
		}
		if isPackageLevelTarget(info, lhs) {
			pass.Reportf(as.Pos(),
				"pooled memory (obtained at %s) stored to package-level variable %s; it outlives the "+
					"pool owner's Reset/Release", shortPos(pass.Fset, t.pos), describeTarget(lhs))
			continue
		}
		lroot := rootName(lhs)
		if t.root != "" && lroot != "" && lroot != t.root && !isLocalName(info, fd, lhs) {
			pass.Reportf(as.Pos(),
				"pooled memory from %s's pool (obtained at %s) stored into %s, rooted at %s; %s's "+
					"Reset/Release would invalidate it while %s still holds the reference",
				t.root, shortPos(pass.Fset, t.pos), describeTarget(lhs), lroot, t.root, lroot)
		}
	}
}

// isLocalName reports whether the access path's base identifier is a
// variable declared inside fd's body (stores into locals' fields are
// not tracked — the documented soundness boundary). Parameters and the
// receiver are declared before the body, so they do not count as local:
// storing pooled memory into a caller-visible structure is checked.
func isLocalName(info *types.Info, fd *ast.FuncDecl, e ast.Expr) bool {
	base := baseIdent(e)
	if base == nil {
		return false
	}
	obj, ok := info.Uses[base].(*types.Var)
	if !ok || obj.IsField() {
		return false
	}
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return false
	}
	return fd.Body.Pos() <= obj.Pos() && obj.Pos() < fd.Body.End()
}

// isFreeListPath reports whether the assignment target is a free-list
// field (final selector named free or freeList).
func isFreeListPath(lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return lhs.Sel.Name == "free" || lhs.Sel.Name == "freeList"
	case *ast.Ident:
		return lhs.Name == "free" || lhs.Name == "freeList"
	}
	return false
}
