package lint

import (
	"go/types"
	"path/filepath"
	"testing"
)

// loadSummaryFixture loads testdata/src/summaryfix into a fresh Program
// and returns the call graph plus a name → node index ("helper",
// "thing.helper" for methods by bare name).
func loadSummaryFixture(t *testing.T) (*Program, *CallGraph, map[string]*FuncNode) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", "summaryfix"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	prog := NewProgram(pkg)
	g := prog.CallGraph()
	byName := map[string]*FuncNode{}
	for fn, n := range g.nodes {
		byName[fn.Name()] = n
	}
	return prog, g, byName
}

func calleeNames(n *FuncNode) map[string]bool {
	out := map[string]bool{}
	for _, c := range n.Callees {
		out[c.Name()] = true
	}
	return out
}

func TestCallGraphEdges(t *testing.T) {
	_, _, byName := loadSummaryFixture(t)

	if n := byName["callsLeaf"]; n == nil || !calleeNames(n)["leaf"] {
		t.Errorf("callsLeaf should have an edge to leaf; got %+v", n)
	}
	if n := byName["even"]; n == nil || !calleeNames(n)["odd"] {
		t.Errorf("even should have an edge to odd; got %+v", n)
	}
	// Method value: takesValue never calls helper, but referencing it as
	// a value is a conservative edge.
	if n := byName["takesValue"]; n == nil || !calleeNames(n)["helper"] {
		t.Errorf("takesValue should have a method-value edge to helper; got %+v", n)
	}
	// A call through a function value is an unknown callee, not an edge.
	if n := byName["viaFuncValue"]; n == nil || !n.CallsUnknown || len(n.Callees) != 0 {
		t.Errorf("viaFuncValue should have CallsUnknown and no edges; got %+v", n)
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	_, g, byName := loadSummaryFixture(t)

	say := byName["say"]
	if say == nil || len(say.Callees) != 1 {
		t.Fatalf("say should call exactly the interface method; got %+v", say)
	}
	hub := g.Node(say.Callees[0])
	if hub == nil || hub.Decl != nil {
		t.Fatalf("speak should resolve to a dispatch hub (Decl == nil); got %+v", hub)
	}
	impls := calleeNames(hub)
	if !impls["speak"] || len(hub.Callees) != 2 {
		t.Errorf("hub should fan out to both in-program implementations, got %v", hub.Callees)
	}
	if hub.CallsUnknown {
		t.Errorf("a hub with in-program implementations should not be marked unknown")
	}
}

func TestCallGraphSCCOrder(t *testing.T) {
	_, g, byName := loadSummaryFixture(t)

	sccOf := map[*FuncNode]int{}
	for i, scc := range g.sccs {
		for _, n := range scc {
			sccOf[n] = i
		}
	}
	even, odd := byName["even"], byName["odd"]
	if sccOf[even] != sccOf[odd] {
		t.Errorf("even and odd are mutually recursive and must share an SCC (got %d, %d)",
			sccOf[even], sccOf[odd])
	}
	// Callee-first: leaf's component must come no later than its callers'.
	leaf, callsLeaf, top := byName["leaf"], byName["callsLeaf"], byName["top"]
	if !(sccOf[leaf] < sccOf[callsLeaf] && sccOf[callsLeaf] < sccOf[top]) {
		t.Errorf("SCCs must be callee-first: leaf=%d callsLeaf=%d top=%d",
			sccOf[leaf], sccOf[callsLeaf], sccOf[top])
	}
}

// TestSummariesFixpoint runs a reachability analysis ("can reach leaf")
// through the framework: the chain propagates, the even/odd cycle
// converges to a sound fixpoint, and results are cached by name.
func TestSummariesFixpoint(t *testing.T) {
	prog, _, byName := loadSummaryFixture(t)

	transfer := func(n *FuncNode, callee func(*types.Func) (any, bool)) any {
		if n.Fn.Name() == "leaf" {
			return true
		}
		for _, c := range n.Callees {
			if s, known := callee(c); known {
				if b, _ := s.(bool); b {
					return true
				}
			}
		}
		return false
	}
	sums := prog.Summaries("test.reach", transfer)

	for name, want := range map[string]bool{
		"leaf": true, "callsLeaf": true, "top": true,
		"even": false, "odd": false, "say": false,
	} {
		got, _ := sums[byName[name].Fn].(bool)
		if got != want {
			t.Errorf("reach(%s) = %v, want %v", name, got, want)
		}
	}
	if again := prog.Summaries("test.reach", nil); len(again) != len(sums) {
		t.Errorf("cached summaries should be returned without re-running the transfer")
	}
}

// TestSummariesNonMonotonePanics pins the fixpoint guard: a transfer
// that oscillates must trip the iteration cap loudly instead of hanging.
func TestSummariesNonMonotonePanics(t *testing.T) {
	prog, _, _ := loadSummaryFixture(t)

	defer func() {
		if recover() == nil {
			t.Fatal("non-monotone transfer should panic at the iteration cap")
		}
	}()
	round := map[*types.Func]int{}
	prog.Summaries("test.oscillate", func(n *FuncNode, _ func(*types.Func) (any, bool)) any {
		round[n.Fn]++
		return round[n.Fn] // grows forever: never converges
	})
}
