package lint

import (
	"go/types"
	"reflect"
)

// A TransferFunc computes one function's summary for one analysis, given
// a resolver for callee summaries. It is called with:
//
//   - n: the call-graph node being summarized. For interface-method
//     dispatch hubs n.Decl is nil and the transfer function should join
//     over n.Callees (the in-program implementations).
//   - callee: resolves the current summary of a callee. known is false
//     for functions with no declaration in the program (stdlib, export
//     data, or other modules); each analysis chooses its policy for
//     unknown callees and documents it as a soundness boundary.
//
// The per-SCC fixpoint iteration requires transfer functions to be
// monotone over a finite lattice: recomputing with larger callee
// summaries must not shrink the result, or the iteration cap trips.
// Within a cycle, callees not yet summarized resolve to (nil, true) —
// the analysis's bottom.
type TransferFunc func(n *FuncNode, callee func(*types.Func) (sum any, known bool)) any

// sccIterationCap bounds the per-SCC fixpoint loop. Monotone transfers
// over the analyzers' small lattices converge in at most |SCC|+1 rounds;
// the cap turns a non-monotone transfer bug into a loud panic instead of
// a hang.
const sccIterationCap = 64

// Summaries computes (and caches, keyed by name) the bottom-up
// interprocedural fixpoint of tf over every function in the program:
// strongly-connected components of the call graph are processed in
// callee-first order, and each component is iterated until its members'
// summaries stop changing. The returned map is shared — callers must not
// mutate it.
func (p *Program) Summaries(name string, tf TransferFunc) map[*types.Func]any {
	if sums, ok := p.sums[name]; ok {
		return sums
	}
	g := p.CallGraph()
	sums := make(map[*types.Func]any, len(g.nodes))
	resolve := func(fn *types.Func) (any, bool) {
		if g.nodes[fn] == nil {
			return nil, false
		}
		return sums[fn], true
	}
	for _, scc := range g.sccs {
		for round := 0; ; round++ {
			if round == sccIterationCap {
				panic("lint: summary fixpoint for " + name + " did not converge (non-monotone transfer?)")
			}
			changed := false
			for _, n := range scc {
				next := tf(n, resolve)
				if prev, ok := sums[n.Fn]; !ok || !summariesEqual(prev, next) {
					sums[n.Fn] = next
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	p.sums[name] = sums
	return sums
}

// summariesEqual compares two summaries. Summaries are small value
// types; DeepEqual keeps the framework agnostic to each analysis's
// shape.
func summariesEqual(a, b any) bool {
	if a == nil || b == nil {
		return a == b
	}
	return reflect.DeepEqual(a, b)
}
