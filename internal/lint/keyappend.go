package lint

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// appendonlyDirective pins a key-composition function to a schema file.
// It goes in the function's doc comment with the pin file's path
// relative to the file containing the function:
//
//	//slacksim:appendonly testdata/keyschema.golden
//	func (s *Spec) Key() string { ... }
const appendonlyDirective = "//slacksim:appendonly"

// KeyAppend statically verifies that a canonical-key composition
// function only ever evolves by appending: the sequence of key segments
// it builds must exactly match a pinned schema file, so any rename,
// removal, or reordering of an existing segment is flagged, and a new
// segment is flagged until it is recorded at the tail of the pin. The
// pin file is reviewed as an additions-only diff, which together with
// the exact-match check proves every schema change was a tail append —
// the property the result-store golden digests depend on (an existing
// spec must keep hashing to the same key forever).
//
// Segment extraction: the analyzer collects, in source order, the string
// literals that build the key — fmt.Sprintf format strings and literals
// concatenated into += assignments — joins them, splits on '|', and
// takes each piece's name (the text before '=', or the bare literal for
// constant segments like the version tag). The pin file lists the
// expected names one per line ('#' comments and blank lines ignored).
//
// Soundness boundary: segments built from non-literal strings (a
// variable holding the field name) cannot be extracted and are flagged;
// conditional segments are recorded in source order, which for the
// append-only idiom (base Sprintf first, conditional tails after) is
// composition order. The 31 golden digests remain the behavioral
// backstop; this check catches the schema edit before it reaches them.
var KeyAppend = &Analyzer{
	Name: "keyappend",
	Doc: "verify //slacksim:appendonly key-composition functions against their pinned segment " +
		"schema: existing segments must never be renamed, removed, or reordered; new segments only append",
	Run: runKeyAppend,
}

func runKeyAppend(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), appendonlyDirective)
				if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
					continue
				}
				// Diagnostics about the directive itself anchor on the
				// function name, keeping the doc comment finding-free.
				pin := strings.TrimSpace(rest)
				if pin == "" {
					pass.Reportf(fd.Name.Pos(), "%s directive is missing its pin-file path", appendonlyDirective)
					continue
				}
				checkKeySchema(pass, fd, fd.Name.Pos(), pin)
			}
		}
	}
	return nil
}

// checkKeySchema extracts fd's segment sequence and compares it against
// the pinned schema.
func checkKeySchema(pass *Pass, fd *ast.FuncDecl, dirPos token.Pos, pin string) {
	segments, ok := extractSegments(pass, fd)
	if !ok {
		return // extraction already reported
	}
	if len(segments) == 0 {
		pass.Reportf(dirPos,
			"could not extract any key segments from %s; the append-only check needs literal "+
				"segment names (fmt.Sprintf format strings or literal concatenation)", fd.Name.Name)
		return
	}

	pinPath := filepath.Join(filepath.Dir(pass.Fset.Position(fd.Pos()).Filename), filepath.FromSlash(pin))
	data, err := os.ReadFile(pinPath)
	if err != nil {
		pass.Reportf(dirPos,
			"appendonly pin file %s not found; create it listing the current key segments one per "+
				"line (current schema: %s)", pin, strings.Join(names(segments), " "))
		return
	}
	var pinned []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pinned = append(pinned, line)
	}

	// Existing pinned segments must survive, in order, at the front.
	for i, want := range pinned {
		if i >= len(segments) {
			pass.Reportf(fd.Name.Pos(),
				"key segment %q (position %d in %s) is missing from %s; pinned segments must never "+
					"be removed — existing keys would re-hash", want, i+1, pin, fd.Name.Name)
			return
		}
		if segments[i].name != want {
			pass.Reportf(segments[i].pos,
				"key segment %q does not match %q (position %d in %s); existing segments must never "+
					"be renamed, removed, or reordered — new fields may only be appended at the tail",
				segments[i].name, want, i+1, pin)
			return
		}
	}
	// New segments are allowed only once recorded at the pin's tail.
	for _, s := range segments[len(pinned):] {
		pass.Reportf(s.pos,
			"key segment %q extends the schema; append it to %s (additions only) to record the "+
				"change — never insert before existing segments", s.name, pin)
	}
}

// keySegment is one extracted segment name with the position of the
// literal that introduced it.
type keySegment struct {
	name string
	pos  token.Pos
}

func names(segs []keySegment) []string {
	out := make([]string, len(segs))
	for i, s := range segs {
		out[i] = s.name
	}
	return out
}

// extractSegments walks fd's body in source order collecting the string
// literals that compose the key, then splits the joined text on '|'.
// Returns ok=false after reporting an extraction failure.
func extractSegments(pass *Pass, fd *ast.FuncDecl) ([]keySegment, bool) {
	type litPart struct {
		text string
		pos  token.Pos
	}
	var parts []litPart
	addLit := func(lit *ast.BasicLit) {
		if lit.Kind != token.STRING {
			return
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return
		}
		parts = append(parts, litPart{text: s, pos: lit.Pos()})
	}
	// collectConcat flattens a string-concatenation tree into its
	// literal leaves (non-literal operands contribute nothing — they are
	// segment values, not names).
	var collectConcat func(e ast.Expr)
	collectConcat = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.BasicLit:
			addLit(e)
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				collectConcat(e.X)
				collectConcat(e.Y)
			}
		case *ast.CallExpr:
			if isPkgFunc(pass.Info, e, "fmt", "Sprintf") && len(e.Args) > 0 {
				if lit, ok := ast.Unparen(e.Args[0]).(*ast.BasicLit); ok {
					addLit(lit)
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				collectConcat(rhs)
			}
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				collectConcat(res)
			}
			return false
		}
		return true
	})

	var segs []keySegment
	for _, p := range parts {
		for _, piece := range strings.Split(p.text, "|") {
			piece = strings.TrimSpace(piece)
			if piece == "" {
				continue
			}
			name, _, hasEq := strings.Cut(piece, "=")
			if hasEq {
				if name == "" || strings.ContainsAny(name, "%") {
					pass.Reportf(p.pos,
						"key segment name in %q is not a plain literal; append-only verification "+
							"needs literal segment names", piece)
					return nil, false
				}
				segs = append(segs, keySegment{name: name, pos: p.pos})
				continue
			}
			if strings.ContainsAny(piece, "%") {
				// A bare format verb ("%s") is a segment whose *name* is
				// dynamic — unverifiable.
				pass.Reportf(p.pos,
					"key segment %q has a non-literal name; append-only verification needs literal "+
						"segment names", piece)
				return nil, false
			}
			segs = append(segs, keySegment{name: piece, pos: p.pos})
		}
	}
	return segs, true
}
