// Package brokenmod reconstructs the PR 1 parallel-host shutdown bug
// in miniature: shutdown stores the stop flag and broadcasts the cond
// WITHOUT holding the mutex. A core that has just evaluated its wait
// predicate (stop not yet set) but not yet called cond.Wait misses the
// broadcast and parks forever — the lost wakeup the real engine fixed
// by moving the Broadcast inside the critical section. slacksimlint's
// condlock analyzer must flag this module; the regression test in
// cmd/slacksimlint asserts it does.
package brokenmod

import (
	"sync"
	"sync/atomic"
)

type host struct {
	mu      sync.Mutex
	cond    *sync.Cond
	stop    atomic.Bool
	blocked int
}

func newHost() *host {
	h := &host{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// shutdown wakes every parked worker. BUG: the Broadcast is issued
// outside h.mu.
func (h *host) shutdown() {
	h.stop.Store(true)
	h.cond.Broadcast()
}

// park blocks the calling worker until shutdown.
func (h *host) park() {
	h.mu.Lock()
	for !h.stop.Load() {
		h.blocked++
		h.cond.Wait()
		h.blocked--
	}
	h.mu.Unlock()
}
