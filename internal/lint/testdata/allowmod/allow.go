// Fixture module for slacksimlint's -allows waiver inventory: one used
// and justified waiver, one stale waiver that suppresses nothing, and
// one waiver missing its mandatory reason.
package allowmod

//slacksim:hotpath
func hot() *int {
	return new(int) //lint:allow hotpathalloc -- fixture: a used, justified waiver
}

func cold() int {
	x := 1 //lint:allow hotpathalloc -- fixture: stale, nothing on this line allocates in a hot path
	return x
}

//slacksim:hotpath
func hotNoReason() []int {
	return make([]int, 4) //lint:allow hotpathalloc
}
