module allowmod

go 1.22
