// Fixture for the interprocedural side of hotpathalloc: allocations
// propagate bottom-up through call-graph summaries, waivers at the
// callee clear its summary, cold-path conventions (panic arguments,
// Enabled() guards) are exempt, and recursion and interface dispatch
// resolve soundly.
package hotpathinter

import (
	"fmt"
	"strings"
)

type ring struct {
	on  bool
	buf []byte
}

func (r *ring) Enabled() bool { return r.on }

// note grows r.buf: its summary allocates.
func (r *ring) note(v int) {
	r.buf = append(r.buf, byte(v))
}

// noteWaived grows too, but the waiver covers every caller.
func (r *ring) noteWaived(v int) {
	r.buf = append(r.buf, byte(v)) //lint:allow hotpathalloc -- resize is rare and amortized across drains
}

//slacksim:hotpath
func (r *ring) hotCalls(v int) {
	r.note(v) // want `call to note .* allocates: append to r.buf`
}

//slacksim:hotpath
func (r *ring) hotCallsWaived(v int) {
	r.noteWaived(v)
}

//slacksim:hotpath
func (r *ring) hotGuarded(v int) {
	if r.Enabled() {
		r.note(v) // cold diagnostic path: exempt by convention
	}
}

//slacksim:hotpath
func (r *ring) hotGuardedConjunct(v int) {
	if v > 0 && r.Enabled() {
		r.note(v)
	}
}

//slacksim:hotpath
func (r *ring) hotNegatedGuard(v int) {
	if !r.Enabled() {
		return
	}
	r.note(v) // want `call to note .* allocates` — only the positive-guard idiom is exempt
}

// inner/middle: a two-hop chain.
func (r *ring) inner() *ring {
	return &ring{}
}

func (r *ring) middle() {
	_ = r.inner()
}

//slacksim:hotpath
func (r *ring) hotDeep() {
	r.middle() // want `call to middle .* allocates: call to inner`
}

// even/odd: mutual recursion must converge (empty summaries) without
// tripping the fixpoint cap.
func (r *ring) even(n int) bool {
	if n == 0 {
		return true
	}
	return r.odd(n - 1)
}

func (r *ring) odd(n int) bool {
	if n == 0 {
		return false
	}
	return r.even(n - 1)
}

//slacksim:hotpath
func (r *ring) hotRecursion(n int) bool {
	return r.even(n)
}

// growLoop allocates and recurses: the cycle's summary must reach the
// allocating fixpoint, not oscillate.
func (r *ring) growLoop(n int) {
	if n == 0 {
		return
	}
	r.buf = append(r.buf, 0)
	r.growLoop(n - 1)
}

//slacksim:hotpath
func (r *ring) hotRecursiveAlloc(n int) {
	r.growLoop(n) // want `call to growLoop .* allocates`
}

// Interface dispatch: the hub joins over every in-program
// implementation, so one allocating impl taints the call.
type sink interface {
	consume(b []byte)
}

type keeper struct{ dst [][]byte }

func (k *keeper) consume(b []byte) {
	k.dst = append(k.dst, b)
}

type dropper struct{}

func (d *dropper) consume(b []byte) {}

//slacksim:hotpath
func feed(s sink, b []byte) {
	s.consume(b) // want `dispatches to consume`
}

// Variadic boxing and the external denylist.
func vsum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

//slacksim:hotpath
func hotBox(a, b int) int {
	return vsum(a, b) // want `boxes its variadic arguments`
}

//slacksim:hotpath
func hotSpread(xs []int) int {
	return vsum(xs...)
}

//slacksim:hotpath
func hotJoin(parts []string) string {
	return strings.Join(parts, ",") // want `call to strings.Join .* allocates`
}

//slacksim:hotpath
func mustPositive(v int) {
	if v < 0 {
		panic(fmt.Sprintf("bad v=%d", v)) // panic arguments are cold: exempt
	}
}
