// Fixture for the call-graph and summary framework tests: direct
// chains, mutual recursion, method values, and interface dispatch.
package summaryfix

type thing struct{ n int }

func leaf() int      { return 1 }
func callsLeaf() int { return leaf() }
func top() int       { return callsLeaf() }

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func (t *thing) helper() int { return t.n }

// takesValue references helper as a method value: a conservative edge.
func (t *thing) takesValue() func() int {
	return t.helper
}

// viaFuncValue calls through a function value: an unknown callee.
func viaFuncValue(f func() int) int {
	return f()
}

type speaker interface {
	speak() string
}

type dog struct{}

func (d *dog) speak() string { return "woof" }

type cat struct{}

func (c *cat) speak() string { return "meow" }

func say(s speaker) string {
	return s.speak()
}
