// Fixture for the hotpathalloc analyzer: annotated functions may not
// allocate; the reuse idioms (append into x[:0], caller-provided
// buffers, prepared targets) pass, and unannotated functions are
// untouched.
package hotpathalloc

type queue struct {
	items   []int
	scratch []int
}

//slacksim:hotpath
func (q *queue) drainGrow() {
	for _, it := range q.items {
		q.scratch = append(q.scratch, it) // want `can grow`
	}
}

//slacksim:hotpath
func (q *queue) drainReuse(out []int) []int {
	q.scratch = q.scratch[:0]
	for _, it := range q.items {
		q.scratch = append(q.scratch, it)
	}
	out = append(out, q.scratch...)
	return out
}

//slacksim:hotpath
func (q *queue) restore(items []int) {
	q.items = append(q.items[:0], items...)
}

//slacksim:hotpath
func (q *queue) freshSlice(n int) []int {
	return make([]int, n) // want `allocates fresh backing storage`
}

//slacksim:hotpath
func (q *queue) freshMap() map[int]int {
	return make(map[int]int) // want `make\(map\)`
}

//slacksim:hotpath
func (q *queue) closureAlloc(f func(int)) func() {
	return func() { f(0) } // want `closure environment`
}

//slacksim:hotpath
func (q *queue) box() *queue {
	return &queue{} // want `heap-allocates`
}

//slacksim:hotpath
func (q *queue) newEntry() *int {
	return new(int) //lint:allow hotpathalloc -- pool warm-up: runs only while the free list is empty
}

// coldPath carries no annotation, so allocations are fine here.
func (q *queue) coldPath() []int {
	out := make([]int, 0, len(q.items))
	return append(out, q.items...)
}
