// Fixture for the guardedby analyzer: annotated fields must only be
// touched under their mutex; RLock licenses reads but not writes;
// *Locked functions and freshly-constructed objects are exempt.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) badInc() {
	c.n++ // want `without holding`
}

func (c *counter) badRead() int {
	return c.n // want `without holding`
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// getLocked is exempt: the caller holds c.mu by convention.
func (c *counter) getLocked() int {
	return c.n
}

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // fresh object, not yet published
	return c
}

func (c *counter) approx() int {
	return c.n //lint:allow guardedby -- intentionally racy: approximate stat for logging only
}

type rwBox struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (b *rwBox) read() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.v
}

func (b *rwBox) badWriteUnderRLock() {
	b.mu.RLock()
	b.v = 1 // want `exclusive`
	b.mu.RUnlock()
}

func (b *rwBox) write(v int) {
	b.mu.Lock()
	b.v = v
	b.mu.Unlock()
}

// pool/member exercise the qualified Owner.mu form: member records are
// satellites owned by the pool's lock.
type pool struct {
	mu      sync.Mutex
	members []*member // guarded by mu
}

type member struct {
	load int // guarded by pool.mu
}

func (p *pool) bump(m *member) {
	p.mu.Lock()
	m.load++
	p.mu.Unlock()
}

func (p *pool) badBump(m *member) {
	m.load++ // want `without holding`
}

func (p *pool) closureAccess() func() int {
	return func() int {
		return len(p.members) // want `without holding`
	}
}
