// Fixture for the keyappend analyzer: key-composition functions pinned
// with //slacksim:appendonly must match their schema file exactly —
// renames, removals, and reorders are flagged, and new segments are
// flagged until appended to the pin.
package keyappend

import "fmt"

type spec struct {
	workload string
	cores    int
	synth    string
	sample   string
}

// Key matches its pin, including the conditional tail segments.
//
//slacksim:appendonly pins/key.schema
func (s *spec) Key() string {
	canon := fmt.Sprintf("v2|workload=%s|cores=%d", s.workload, s.cores)
	if s.synth != "" {
		canon += "|synth=" + s.synth
	}
	if s.sample != "" {
		canon += fmt.Sprintf("|sample=%s", s.sample)
	}
	return canon
}

//slacksim:appendonly pins/renamed.schema
func (s *spec) keyRenamed() string {
	return fmt.Sprintf("v2|work=%s|cores=%d", s.workload, s.cores) // want `"work" does not match "workload"`
}

//slacksim:appendonly pins/reordered.schema
func (s *spec) keyReordered() string {
	return fmt.Sprintf("v2|cores=%d|workload=%s", s.cores, s.workload) // want `"cores" does not match "workload"`
}

//slacksim:appendonly pins/short.schema
func (s *spec) keyExtended() string {
	return fmt.Sprintf("v2|workload=%s|cores=%d|extra=1", s.workload, s.cores) // want `"extra" extends the schema`
}

//slacksim:appendonly pins/key.schema
func (s *spec) keyMissing() string { // want `"cores" \(position 3 in pins/key.schema\) is missing`
	return fmt.Sprintf("v2|workload=%s", s.workload)
}

//slacksim:appendonly pins/absent.schema
func (s *spec) keyNoPin() string { // want `pin file pins/absent.schema not found`
	return fmt.Sprintf("v2|workload=%s", s.workload)
}

//slacksim:appendonly
func (s *spec) keyNoPath() string { // want `missing its pin-file path`
	return "v2"
}

//slacksim:appendonly pins/key.schema
func (s *spec) keyDynamic() string {
	return fmt.Sprintf("v2|%s=1|workload=%s|cores=%d", s.workload, s.workload, s.cores) // want `not a plain literal`
}

// unpinned key builders are out of scope.
func (s *spec) legacyKey() string {
	return fmt.Sprintf("v1|%s", s.workload)
}
