// Fixture for the allow-directive rules: a reason-less //lint:allow
// still suppresses, but is itself reported, so a waiver can never be
// silent.
package lintdirective

import "sync"

type box struct {
	mu   sync.Mutex
	cond *sync.Cond
}

func newBox() *box {
	b := &box{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *box) bareAllow() {
	b.cond.Broadcast() //lint:allow condlock
}
