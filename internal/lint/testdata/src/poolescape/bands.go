// Regression pin for the PR 8 event.Bands recycled-slice aliasing bug:
// a rebased band pushed onto the free list without clear() keeps the
// previous window's items alive in its backing array and leaks them to
// the slice's next owner.
package poolescape

type item struct{ p *int }

type bands struct {
	bands [][]item
	free  [][]item
}

// recycleUncleared reconstructs the original bug: length is reset to
// zero but the backing still pins the old items.
func (b *bands) recycleUncleared() {
	for i := 1; i < len(b.bands); i++ {
		b.free = append(b.free, b.bands[i][:0]) // want `pushed onto the free list without clear\(\).*PR 8`
	}
	b.bands = b.bands[:1]
}

// recycleCleared is the fixed idiom that shipped: clear, then free-list.
func (b *bands) recycleCleared() {
	for i := 1; i < len(b.bands); i++ {
		clear(b.bands[i])
		b.free = append(b.free, b.bands[i][:0])
	}
	b.bands = b.bands[:1]
}

// recycleViaLocal clears through a local alias of the same band.
func (b *bands) recycleViaLocal() {
	for i := 1; i < len(b.bands); i++ {
		s := b.bands[i]
		clear(s)
		b.free = append(b.free, s[:0])
	}
	b.bands = b.bands[:1]
}
