// Fixture for the poolescape analyzer: pooled memory must not outlive
// its pool's Reset/Release, SnapshotInto/CopyInto must copy rather than
// alias, and recycled slices must be cleared before free-listing.
package poolescape

type entry struct{ buf []int }

type pool struct {
	free []*entry
	live []*entry
}

// Get returns a pool-owned entry; the caller must hand it back before
// the pool's Reset.
//
//slacksim:pooled
func (p *pool) Get() *entry {
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free = p.free[:n-1]
		return e
	}
	return &entry{}
}

// retain stores a pooled entry under its own pool: fine.
func (p *pool) retain() {
	e := p.Get()
	p.live = append(p.live, e)
}

var leaked *entry

// useGlobal parks a pooled entry in package-level state.
func useGlobal(p *pool) {
	e := p.Get()
	leaked = e // want `stored to package-level variable leaked`
}

var leakedList []*entry

// appendGlobal escapes through an append into package-level state.
func appendGlobal(p *pool) {
	e := p.Get()
	leakedList = append(leakedList, e) // want `appended to package-level variable leakedList`
}

type cache struct {
	held *entry
	all  []*entry
}

// crossRoot stores p's entry under a different owner.
func (c *cache) crossRoot(p *pool) {
	e := p.Get()
	c.held = e // want `rooted at c`
}

// crossRootAppend does the same through append.
func (c *cache) crossRootAppend(p *pool) {
	e := p.Get()
	c.all = append(c.all, e) // want `appended to c.all, rooted at c`
}

// take returns pooled memory without declaring the ownership transfer.
func take(p *pool) *entry {
	return p.Get() // want `not annotated`
}

// takeDeclared documents the transfer, so callers inherit the contract.
//
//slacksim:pooled
func takeDeclared(p *pool) *entry {
	return p.Get()
}

// identity returns its argument — pooled in, pooled out.
func identity(e *entry) *entry { return e }

// throughHelper launders a pooled value through a returning helper; the
// taint survives the call.
func throughHelper(p *pool) *entry {
	e := p.Get()
	e2 := identity(e)
	return e2 // want `not annotated`
}

var stash *entry

// keep stores its argument globally; passing pooled memory to it is an
// escape at the call site.
func keep(e *entry) { stash = e }

func escapesViaHelper(p *pool) {
	e := p.Get()
	keep(e) // want `stores its argument in package-level state`
}

// consume only reads its argument: passing pooled memory to it is fine.
func consume(e *entry) int { return len(e.buf) }

func borrowOK(p *pool) int {
	e := p.Get()
	return consume(e)
}

func ship(p *pool, ch chan *entry) {
	ch <- p.Get() // want `sent on a channel`
}

func capture(p *pool) func() int {
	e := p.Get()
	return func() int {
		return consume(e) // want `captured by a closure`
	}
}

// deposit stores a pooled entry into a field of the entry's own pool via
// a tainted local: the roots match, so no finding.
func deposit(p *pool) {
	e := p.Get()
	e.buf = append(e.buf, 1)
	p.live = append(p.live, e)
}
