// SnapshotInto/CopyInto aliasing cases: the destination must own a
// copy; source-rooted reference values may never be stored into it.
package poolescape

type snap struct {
	items []int
	meta  map[string]int
	rows  [][]int
	next  *snap
}

func (s *snap) SnapshotInto(dst *snap) {
	dst.items = s.items // want `aliases source-owned storage \(s.items\)`
	dst.meta = s.meta   // want `aliases source-owned storage \(s.meta\)`
	dst.next = s.next   // pointers to immutable-by-convention siblings still alias // want `aliases source-owned storage \(s.next\)`
}

func (s *snap) CopyInto(dst *snap) {
	// The accepted copying idioms produce no findings.
	dst.items = append(dst.items[:0], s.items...)
	if dst.meta == nil {
		dst.meta = make(map[string]int, len(s.meta))
	}
	clear(dst.meta)
	for k, v := range s.meta {
		dst.meta[k] = v
	}
	n := len(s.rows)
	_ = n
}

// aliasThroughLocal tracks source-rooted references through locals and
// range variables.
func (s *snap) aliasThroughLocal(dst *snap) { // not an Into method: rule does not apply
	dst.items = s.items
}

type deepSnap struct {
	rows [][]int
}

func (d *deepSnap) SnapshotInto(dst *deepSnap) {
	rows := d.rows
	dst.rows = rows // want `aliases source-owned storage \(rows\)`
	for _, row := range d.rows {
		dst.rows = append(dst.rows, row) // want `aliases source-owned storage`
	}
}

// cleanDeep deep-copies row by row: clean.
func (d *deepSnap) CopyInto(dst *deepSnap) {
	dst.rows = dst.rows[:0]
	for i := range d.rows {
		var row []int
		row = append(row, d.rows[i]...)
		dst.rows = append(dst.rows, row)
	}
}
