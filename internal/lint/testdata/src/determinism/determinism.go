// Fixture for the determinism analyzer. The package is named engine so
// it falls inside the result-affecting set; wall-clock reads, global
// math/rand draws, and map iteration escaping into ordered output are
// flagged, while seeded generators, sorted collection, and
// order-insensitive folds pass.
package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `wall clock`
}

func wallClockTimer() *time.Ticker {
	return time.NewTicker(time.Second) // want `wall clock`
}

func profiled() time.Duration {
	start := time.Now() //lint:allow determinism -- host-side profiling; value never reaches Results
	_ = start
	return time.Since(start) //lint:allow determinism -- host-side profiling; value never reaches Results
}

func globalRand() int {
	return rand.Intn(6) // want `process-global generator`
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

func mapOrderEscapes(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `randomized map order`
	}
	return keys
}

func mapOrderSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `randomized map order`
	}
}

func mapSend(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `randomized map order`
	}
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `order-sensitive`
	}
	return sum
}

func intAccum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

func mapCopy(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := []int(nil)
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
