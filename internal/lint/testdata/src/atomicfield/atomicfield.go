// Fixture for the atomicfield analyzer: fields accessed via sync/atomic
// anywhere must be accessed atomically everywhere (outside the
// constructor), and typed atomics must never be copied by value.
package atomicfield

import "sync/atomic"

type counter struct {
	n    int64
	hits int64
	flag atomic.Bool
	vals []atomic.Int64
}

// NewCounter is the constructor: plain initialization before the value
// is published is the idiom.
func NewCounter() *counter {
	c := &counter{}
	c.n = 0
	return c
}

func (c *counter) incr() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) load() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counter) badInc() {
	c.n++ // want `incremented directly`
}

func (c *counter) badRead() int64 {
	return c.n // want `read directly`
}

func (c *counter) badWrite() {
	c.n = 0 // want `written directly`
}

// plainOnly touches a field no one accesses atomically: out of scope.
func (c *counter) plainOnly() {
	c.hits++
	c.hits = c.hits + 1
}

// bump uses its pointer parameter atomically only: a safe sink.
func bump(p *int64) { atomic.AddInt64(p, 1) }

// bumpTwice forwards to bump: still atomic-only, transitively.
func bumpTwice(p *int64) {
	bump(p)
	bump(p)
}

// deref reads its pointer parameter plainly.
func deref(p *int64) int64 { return *p }

func (c *counter) viaHelper() {
	bump(&c.n)
	bumpTwice(&c.n)
}

func (c *counter) viaBadHelper() int64 {
	return deref(&c.n) // want `accesses it non-atomically`
}

var hook func(*int64)

func (c *counter) viaUnknown() {
	hook(&c.n) // want `address taken outside an atomic call`
}

// Typed atomics: method calls and address-taking are fine; copies tear.

func (c *counter) typedOK(v bool) bool {
	c.flag.Store(v)
	return c.flag.Load()
}

func (c *counter) typedAddr() *atomic.Bool {
	return &c.flag
}

func (c *counter) typedCopy() atomic.Bool {
	return c.flag // want `used by value`
}

func (c *counter) typedAssign(v bool) {
	var b atomic.Bool
	b.Store(v)
	c.flag = b // want `assigned by value`
}

func (c *counter) typedRange() int64 {
	var sum int64
	for _, v := range c.vals { // want `copies atomic values`
		_ = v
		sum++
	}
	for i := range c.vals {
		sum += c.vals[i].Load()
	}
	return sum
}
