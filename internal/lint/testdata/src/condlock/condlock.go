// Fixture for the condlock analyzer: broadcasts/signals outside the
// cond's critical section must be flagged; the locked idioms (direct
// lock, defer unlock, cond.L, *Locked convention, justified allow)
// must pass.
package condlock

import "sync"

type host struct {
	mu      sync.Mutex
	cond    *sync.Cond
	stopped bool
	queue   []int
}

func newHost() *host {
	h := &host{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// shutdownBroken is the PR 1 lost-wakeup shape: state is stored and the
// broadcast issued without holding the cond's mutex.
func (h *host) shutdownBroken() {
	h.stopped = true
	h.cond.Broadcast() // want `not dominated by a Lock`
}

func (h *host) shutdownFixed() {
	h.mu.Lock()
	h.stopped = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

func (h *host) pushDeferred(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.queue = append(h.queue, v)
	h.cond.Broadcast()
}

// unlockThenSignal releases the mutex before signalling: a waiter that
// observed the old state and is about to Wait misses the wakeup.
func (h *host) unlockThenSignal() {
	h.mu.Lock()
	h.stopped = true
	h.mu.Unlock()
	h.cond.Signal() // want `not dominated by a Lock`
}

// goBroadcast broadcasts from a closure that does not take the lock;
// closures never inherit their definer's lock state.
func (h *host) goBroadcast() {
	h.mu.Lock()
	defer h.mu.Unlock()
	go func() {
		h.cond.Broadcast() // want `not dominated by a Lock`
	}()
}

func (h *host) goBroadcastUnderLock() {
	go func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	}()
}

// kickLocked relies on the repo-wide convention: *Locked functions
// require the caller to hold the mutex, so they are exempt.
func (h *host) kickLocked() {
	h.cond.Broadcast()
}

// viaL locks through the cond's own L field.
func (h *host) viaL() {
	h.cond.L.Lock()
	h.cond.Broadcast()
	h.cond.L.Unlock()
}

// teardown is single-threaded by construction, so the unlocked
// broadcast is waived with a written reason.
func (h *host) teardown() {
	h.cond.Broadcast() //lint:allow condlock -- teardown runs after all waiters have exited; no Wait can race
}

// wrongMutex holds a mutex — just not the one the cond was built on.
type twoLocks struct {
	mu   sync.Mutex
	aux  sync.Mutex
	cond *sync.Cond
}

func newTwoLocks() *twoLocks {
	t := &twoLocks{}
	t.cond = sync.NewCond(&t.aux)
	return t
}

func (t *twoLocks) wrongMutex() {
	t.mu.Lock()
	t.cond.Broadcast() // want `not dominated by a Lock`
	t.mu.Unlock()
}

func (t *twoLocks) rightMutex() {
	t.aux.Lock()
	t.cond.Broadcast()
	t.aux.Unlock()
}
