package engine

// Host-cost model: a deterministic, host-independent proxy for simulation
// time. Wall-clock seconds on a small shared container are noisy and (on a
// single hardware thread) cannot express parallel speedup, so every run
// also accumulates "host work units" whose per-scheme relative ordering is
// calibrated to the paper's measured seconds:
//
//   - every simulated core-cycle costs CostCoreCycle (the core model's
//     work);
//   - every event the manager services costs CostManagerEvent;
//   - every core suspension — a core thread hitting its max local time and
//     blocking until the manager raises it — costs CostSuspend. This is
//     the dominant synchronization overhead: cycle-by-cycle simulation
//     suspends every core almost every cycle, bounded slack every ~bound
//     cycles, unbounded never, reproducing the paper's CC ≈ 2–3× SU gap;
//   - runs that track violations pay CostViolationCheck per serviced event
//     (the paper: "collecting information about violations is time
//     consuming"), which is why adaptive runs are slower than plain
//     bounded runs at the same violation rate;
//   - each adaptive controller update costs CostAdaptUpdate;
//   - checkpoints cost CostCheckpointWord per 64-bit word of live state
//     copied, so short checkpoint intervals are expensive (Table 2).
const (
	CostCoreCycle      = 1.0
	CostManagerEvent   = 2.0
	CostSuspend        = 2.0
	CostViolationCheck = 0.75
	CostAdaptUpdate    = 8.0
	// CostCheckpointWord is calibrated so the densest checkpoint interval
	// roughly doubles the run cost, as the paper's fork()-based 5k-cycle
	// checkpoints roughly double Table 2's times, while the sparsest
	// interval approaches the plain adaptive cost.
	CostCheckpointWord  = 0.7
	CostRollbackRestore = 0.7 // per word restored on rollback
)

// costMeter accumulates host work units.
type costMeter struct {
	coreCycles  int64
	events      uint64
	suspensions uint64
	violChecked uint64
	adaptOps    uint64
	ckptWords   int64
	rbackWords  int64
}

// total folds the meter into work units.
func (c costMeter) total() float64 {
	return CostCoreCycle*float64(c.coreCycles) +
		CostManagerEvent*float64(c.events) +
		CostSuspend*float64(c.suspensions) +
		CostViolationCheck*float64(c.violChecked) +
		CostAdaptUpdate*float64(c.adaptOps) +
		CostCheckpointWord*float64(c.ckptWords) +
		CostRollbackRestore*float64(c.rbackWords)
}
