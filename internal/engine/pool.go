package engine

import (
	"fmt"
	"strings"
	"sync"

	"slacksim/internal/uncore"
)

// shapeKey is a Machine's pooling identity: two machines with equal keys
// are interchangeable after reset. It fingerprints the resolved
// configuration (core count, uncore config, and — when a custom
// CoreConfig is supplied — every core's resolved Config). The workload is
// NOT part of the key, because reset reloads it. For the common
// nil-CoreConfig case the key is a plain comparable struct, so computing
// and looking it up allocates nothing.
type shapeKey struct {
	numCores int
	uncore   uncore.Config
	// cores fingerprints the per-core configs when CoreConfig is non-nil;
	// empty for the default configuration. A machine built with a custom
	// CoreConfig that happens to return core.DefaultConfig keys
	// differently from a nil CoreConfig — that only costs a pool miss.
	cores string
}

func shapeOf(cfg MachineConfig) shapeKey {
	k := shapeKey{numCores: cfg.NumCores, uncore: cfg.Uncore}
	if cfg.CoreConfig != nil {
		var b strings.Builder
		for i := 0; i < cfg.NumCores; i++ {
			fmt.Fprintf(&b, "|%+v", cfg.CoreConfig(i))
		}
		k.cores = b.String()
	}
	return k
}

// reset returns the machine to a freshly-built state running workload w,
// keeping every warmed allocation: cache arrays, MSHR waiter backings,
// status-map arenas, memory page free lists, ROB free lists, out-queue
// chunks, compiled programs (when the workload name matches), and the
// pooled checkpoint snapshot graph. After reset the machine is
// indistinguishable (state-wise) from NewMachine(cfg, w).
func (m *Machine) reset(w Workload) error {
	progs := m.progs
	if w.Name() != m.wkName {
		var err error
		progs, err = w.Programs(m.cfg.NumCores)
		if err != nil {
			return fmt.Errorf("engine: workload %s: %w", w.Name(), err)
		}
		if len(progs) != m.cfg.NumCores {
			return fmt.Errorf("engine: workload %s produced %d programs for %d cores",
				w.Name(), len(progs), m.cfg.NumCores)
		}
	}
	m.mem.Reset()
	if err := w.InitMemory(m.mem); err != nil {
		return fmt.Errorf("engine: workload %s init: %w", w.Name(), err)
	}
	m.sync.Reset()
	m.det.Reset()
	m.unc.Reset()
	for i, c := range m.cores {
		if err := c.Reset(progs[i]); err != nil {
			return err
		}
		m.outQs[i].Reset()
		m.inQs[i].Restore(nil)
	}
	m.wkName = w.Name()
	m.progs = progs
	return nil
}

// MachinePool recycles Machines between runs. A Machine's first run warms
// every internal pool (caches, arenas, free lists, the checkpoint
// snapshot graph); reusing the machine makes subsequent runs effectively
// allocation-free. Machines are keyed by configuration shape, so a pool
// can serve a mix of configurations. Safe for concurrent use.
type MachinePool struct {
	mu   sync.Mutex
	free map[shapeKey][]*Machine
}

// NewMachinePool returns an empty pool.
func NewMachinePool() *MachinePool {
	return &MachinePool{free: make(map[shapeKey][]*Machine)}
}

// Get returns a machine for cfg loaded with w: a recycled machine of the
// same shape when one is available (reset for w), a freshly-built one
// otherwise.
func (p *MachinePool) Get(cfg MachineConfig, w Workload) (*Machine, error) {
	if cfg.Uncore.NumCores == 0 && cfg.NumCores > 0 {
		// Mirror NewMachine's defaulting so the shape of a zero-Uncore
		// config matches the machine it builds.
		cfg.Uncore = defaultedUncore(cfg)
	}
	key := shapeOf(cfg)
	p.mu.Lock()
	var m *Machine
	if q := p.free[key]; len(q) > 0 {
		m = q[len(q)-1]
		q[len(q)-1] = nil
		p.free[key] = q[:len(q)-1]
	}
	p.mu.Unlock()
	if m != nil {
		if err := m.reset(w); err != nil {
			return nil, err
		}
		return m, nil
	}
	return NewMachine(cfg, w)
}

// Put returns a machine to the pool for reuse. The caller must be done
// with it entirely — including any Results-independent inspection of its
// components — because the next Get may hand it to another run.
func (p *MachinePool) Put(m *Machine) {
	if m == nil {
		return
	}
	key := shapeOf(m.cfg)
	p.mu.Lock()
	p.free[key] = append(p.free[key], m)
	p.mu.Unlock()
}
