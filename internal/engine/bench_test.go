package engine

import (
	"fmt"
	"testing"

	"slacksim/internal/workload"
)

// BenchmarkCheckpointRestore compares the two checkpoint implementations
// on a rollback-heavy speculative run: the reference deep-copy path
// against the default incremental copy-on-write path, at several interval
// densities. The denser the checkpoints, the more the incremental path's
// advantage matters (Tcpt dominates the paper's Ts formula at small I).
// Both paths produce byte-identical Results — proven by
// internal/stress.ExecuteCheckpointEquivalence — so this measures pure
// host cost.
func BenchmarkCheckpointRestore(b *testing.B) {
	for _, iv := range []int64{25, 100, 250, 1000} {
		for _, tc := range []struct {
			name string
			deep bool
		}{
			{"incremental", false},
			{"deep", true},
		} {
			b.Run(fmt.Sprintf("interval=%d/%s", iv, tc.name), func(b *testing.B) {
				b.ReportAllocs()
				var ckpts, rollbacks int
				for i := 0; i < b.N; i++ {
					m, err := NewMachine(MachineConfig{NumCores: 8}, workload.NewFFT(8))
					if err != nil {
						b.Fatal(err)
					}
					res, err := Run(m, RunConfig{
						Scheme:             BoundedSlack(16),
						Seed:               1,
						CheckpointInterval: iv,
						Rollback:           true,
						DeepCheckpoint:     tc.deep,
					})
					if err != nil {
						b.Fatal(err)
					}
					ckpts += res.Checkpoints
					rollbacks += res.Rollbacks
				}
				b.ReportMetric(float64(ckpts)/float64(b.N), "ckpts/run")
				b.ReportMetric(float64(rollbacks)/float64(b.N), "rollbacks/run")
			})
		}
	}
}
