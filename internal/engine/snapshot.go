package engine

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"slacksim/internal/adaptive"
	"slacksim/internal/core"
	"slacksim/internal/event"
	"slacksim/internal/mem"
	"slacksim/internal/syncctl"
	"slacksim/internal/trace"
	"slacksim/internal/uncore"
	"slacksim/internal/violation"
)

// encBufPool recycles snapshot-encode buffers across exports.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// ErrSnapshotted reports that a run stopped at a checkpoint boundary to
// export its state (RunConfig.SnapshotRequest): the serialized state was
// delivered through RunConfig.OnSnapshot and the run can be continued —
// on any node — with Resume.
var ErrSnapshotted = errors.New("engine: run snapshotted at checkpoint boundary")

// EngineStateVersion versions the serialized engine state produced by
// snapshot export (bump on any layout change; Resume rejects mismatches).
const EngineStateVersion = 1

// countingSource wraps a rand.Source and counts Int63 draws so a run's
// RNG position can be exported and fast-forwarded on resume.
//
// It deliberately implements only rand.Source (not Source64): rand.Rand
// falls back to Int63 for every method the engine uses (Int63n, Intn),
// so the stream is identical to rand.New(rand.NewSource(seed)) — and
// every draw is observable, which a Source64 would break (Uint64 would
// bypass Int63).
type countingSource struct {
	src rand.Source
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed)}
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// snapshotRequested reports whether the run should export its state at
// the next checkpoint boundary.
func (cfg RunConfig) snapshotRequested() bool {
	return cfg.SnapshotRequest != nil && cfg.SnapshotRequest.Load() && cfg.OnSnapshot != nil
}

// meterWire mirrors costMeter for serialization.
type meterWire struct {
	CoreCycles  int64
	Events      uint64
	Suspensions uint64
	ViolChecked uint64
	AdaptOps    uint64
	CkptWords   int64
	RbackWords  int64
}

// pendingWire mirrors pendingReq for serialization.
type pendingWire struct {
	Req event.Request
	Arr uint64
}

// engineHeader carries the run's scalar pacing state. The component
// states (cores, uncore, memory, synchronization, violations, adaptive
// controller, event queues) follow it in the gob stream as separate
// values, each with its own wire method.
type engineHeader struct {
	Version  int
	Seed     int64
	NumCores int
	Scheme   string

	Global  int64
	Bound   int64
	Retired []bool
	GQ      []pendingWire
	Arrival uint64

	P2PNext    []int64
	P2PPartner []int
	P2PBlocked []bool

	Meter     meterWire
	LastAdapt int64

	NextCkpt  int64
	Rollbacks int
	Wasted    int64
	Replayed  int64
	Ckpts     int
	CkptWords int64

	RNGDraws uint64
	HasCtrl  bool
}

// exportSnapshot serializes the complete run state. It must be called at
// a quiesced checkpoint boundary: all core clocks equal, the manager
// drained, no rollback pending, no replay in progress — exactly the
// state after atBoundary's takeCheckpoint.
func (r *detRun) exportSnapshot() ([]byte, error) {
	hdr := engineHeader{
		Version:  EngineStateVersion,
		Seed:     r.cfg.Seed,
		NumCores: r.m.NumCores(),
		Scheme:   r.cfg.Scheme.Name(),

		Global:  r.global,
		Bound:   r.bound,
		Retired: r.retired,
		Arrival: r.arrival,

		P2PNext:    r.p2pNext,
		P2PPartner: r.p2pPartner,
		P2PBlocked: r.p2pBlocked,

		Meter: meterWire{
			CoreCycles: r.meter.coreCycles, Events: r.meter.events,
			Suspensions: r.meter.suspensions, ViolChecked: r.meter.violChecked,
			AdaptOps: r.meter.adaptOps, CkptWords: r.meter.ckptWords,
			RbackWords: r.meter.rbackWords,
		},
		LastAdapt: r.lastAdapt,

		NextCkpt:  r.nextCkpt,
		Rollbacks: r.rollbacks,
		Wasted:    r.wasted,
		Replayed:  r.replayed,
		Ckpts:     r.ckpts,
		CkptWords: r.ckptWords,

		RNGDraws: r.rngSrc.n,
		HasCtrl:  r.ctrl != nil,
	}
	for _, p := range r.gq {
		hdr.GQ = append(hdr.GQ, pendingWire{Req: p.req, Arr: p.arr})
	}

	var cores []*core.Snapshot
	for _, c := range r.m.cores {
		cores = append(cores, c.Snapshot())
	}
	var inQs [][]event.Msg
	var outs [][]event.Request
	for i := range r.m.inQs {
		inQs = append(inQs, r.m.inQs[i].Snapshot())
		outs = append(outs, r.m.outQs[i].Snapshot())
	}

	// The gob stream is assembled in a pooled buffer (repeated exports of a
	// live run reuse the same grown backing); the returned bytes are copied
	// out because the caller owns them indefinitely.
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer encBufPool.Put(buf)
	enc := gob.NewEncoder(buf)
	for _, step := range []struct {
		name string
		v    any
	}{
		{"header", hdr},
		{"cores", cores},
		{"uncore", r.m.unc.Snapshot()},
		{"memory", r.m.mem},
		{"sync", r.m.sync},
		{"detector", r.m.det},
		{"inqs", inQs},
		{"outqs", outs},
	} {
		if err := enc.Encode(step.v); err != nil {
			return nil, fmt.Errorf("engine: snapshot %s: %w", step.name, err)
		}
	}
	if hdr.HasCtrl {
		if err := enc.Encode(r.ctrl); err != nil {
			return nil, fmt.Errorf("engine: snapshot controller: %w", err)
		}
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// Resume continues a run exported by a snapshot request. The machine
// must be freshly built from the same spec (same workload, cores, and
// configuration) that produced the snapshot, and cfg must be the same
// run configuration; the continued run then produces Results identical
// to an uninterrupted run (WallClock aside).
func Resume(m *Machine, cfg RunConfig, state []byte) (Results, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}

	dec := gob.NewDecoder(bytes.NewReader(state))
	var hdr engineHeader
	if err := dec.Decode(&hdr); err != nil {
		return Results{}, fmt.Errorf("engine: resume header: %w", err)
	}
	if hdr.Version != EngineStateVersion {
		return Results{}, fmt.Errorf("engine: resume: state version %d, this binary speaks %d", hdr.Version, EngineStateVersion)
	}
	if hdr.NumCores != m.NumCores() {
		return Results{}, fmt.Errorf("engine: resume: state has %d cores, machine has %d", hdr.NumCores, m.NumCores())
	}
	if hdr.Seed != cfg.Seed {
		return Results{}, fmt.Errorf("engine: resume: state seed %d, config seed %d", hdr.Seed, cfg.Seed)
	}
	if name := cfg.Scheme.Name(); hdr.Scheme != name {
		return Results{}, fmt.Errorf("engine: resume: state scheme %q, config scheme %q", hdr.Scheme, name)
	}

	var cores []*core.Snapshot
	unc := &uncore.Snapshot{}
	memImg := mem.New()
	sctl := syncctl.New(hdr.NumCores)
	det := violation.NewDetector()
	var inQs [][]event.Msg
	var outs [][]event.Request
	for _, step := range []struct {
		name string
		v    any
	}{
		{"cores", &cores},
		{"uncore", unc},
		{"memory", memImg},
		{"sync", sctl},
		{"detector", det},
		{"inqs", &inQs},
		{"outqs", &outs},
	} {
		if err := dec.Decode(step.v); err != nil {
			return Results{}, fmt.Errorf("engine: resume %s: %w", step.name, err)
		}
	}
	var ctrl *adaptive.Controller
	if hdr.HasCtrl {
		ctrl = &adaptive.Controller{}
		if err := dec.Decode(ctrl); err != nil {
			return Results{}, fmt.Errorf("engine: resume controller: %w", err)
		}
	}
	if len(cores) != m.NumCores() || len(inQs) != m.NumCores() || len(outs) != m.NumCores() {
		return Results{}, fmt.Errorf("engine: resume: component counts do not match %d cores", m.NumCores())
	}
	if cfg.Scheme.Kind == Adaptive && ctrl == nil {
		return Results{}, fmt.Errorf("engine: resume: adaptive scheme but no controller state")
	}

	// Overwrite the fresh machine's components in place (the machine's
	// internal wiring — queues shared with the uncore, the detector fed by
	// it — stays intact because every Restore copies content, not
	// pointers).
	for i, c := range m.cores {
		c.Restore(cores[i])
		m.inQs[i].Restore(inQs[i])
		m.outQs[i].Restore(outs[i])
	}
	m.unc.Restore(unc)
	m.mem.Restore(memImg)
	m.sync.Restore(sctl)
	m.det.Restore(det)

	// Rebuild the run state the way Run does, then overwrite the pacing
	// scalars from the header.
	src := newCountingSource(cfg.Seed)
	for i := uint64(0); i < hdr.RNGDraws; i++ {
		src.Int63()
	}
	r := &detRun{
		m:       m,
		cfg:     cfg,
		rng:     rand.New(src),
		rngSrc:  src,
		retired: append([]bool(nil), hdr.Retired...),
		bound:   hdr.Bound,
		ctrl:    ctrl,
		prog:    newProgressNotifier(cfg),

		global:  hdr.Global,
		arrival: hdr.Arrival,

		p2pNext:    hdr.P2PNext,
		p2pPartner: hdr.P2PPartner,
		p2pBlocked: hdr.P2PBlocked,

		lastAdapt: hdr.LastAdapt,
		nextCkpt:  hdr.NextCkpt,
		rollbacks: hdr.Rollbacks,
		wasted:    hdr.Wasted,
		replayed:  hdr.Replayed,
		ckpts:     hdr.Ckpts,
		ckptWords: hdr.CkptWords,

		meter: costMeter{
			coreCycles: hdr.Meter.CoreCycles, events: hdr.Meter.Events,
			suspensions: hdr.Meter.Suspensions, violChecked: hdr.Meter.ViolChecked,
			adaptOps: hdr.Meter.AdaptOps, ckptWords: hdr.Meter.CkptWords,
			rbackWords: hdr.Meter.RbackWords,
		},
	}
	m.unc.SetTracer(cfg.Tracer)
	for _, p := range hdr.GQ {
		r.gq = append(r.gq, pendingReq{req: p.Req, arr: p.Arr})
	}
	if len(hdr.Retired) != m.NumCores() {
		return Results{}, fmt.Errorf("engine: resume: retired mask has %d entries for %d cores", len(hdr.Retired), m.NumCores())
	}

	// The exported run held a checkpoint taken at the export boundary;
	// rebuild it from the (identical) restored live state. The checkpoint
	// was already charged to the meter before export, so this rebuild
	// does not touch the accounting.
	if cfg.CheckpointInterval > 0 {
		r.snap = r.fullSnapshot()
		words := int64(m.mem.AllocatedWords() + m.unc.StateWords())
		for _, cs := range r.snap.cores {
			words += int64(cs.StateWords())
		}
		r.snap.words = words
		if !cfg.DeepCheckpoint {
			m.startTracking()
		}
	}
	r.cfg.Tracer.Addf(r.global, -1, trace.Checkpoint, "resumed from snapshot @%d", r.global)

	start := time.Now() //lint:allow determinism -- host wall-time feeds Results.HostDuration (a measurement), never simulated state
	if err := r.loop(); err != nil {
		return Results{}, err
	}
	return r.results(time.Since(start)), nil //lint:allow determinism -- host wall-time feeds Results.HostDuration (a measurement), never simulated state
}
