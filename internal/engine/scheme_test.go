package engine

import (
	"testing"

	"slacksim/internal/adaptive"
	"slacksim/internal/workload"
)

func TestSchemeNames(t *testing.T) {
	cases := map[string]Scheme{
		"CC":       CycleByCycle(),
		"S5":       BoundedSlack(5),
		"SU":       UnboundedSlack(),
		"Q100":     QuantumScheme(100),
		"adaptive": AdaptiveSlack(adaptive.DefaultConfig()),
	}
	for want, s := range cases {
		if got := s.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
	if CC.String() != "cycle-by-cycle" || Quantum.String() != "quantum" {
		t.Error("kind strings wrong")
	}
}

func TestSchemeValidate(t *testing.T) {
	bad := []Scheme{
		BoundedSlack(0),
		QuantumScheme(0),
		AdaptiveSlack(adaptive.Config{}),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad scheme %d accepted", i)
		}
	}
	good := []Scheme{CycleByCycle(), BoundedSlack(1), UnboundedSlack(), QuantumScheme(1)}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("good scheme %d rejected: %v", i, err)
		}
	}
}

func TestMaxLocalFor(t *testing.T) {
	cases := []struct {
		kind                   SchemeKind
		global, bound, quantum int64
		want                   int64
	}{
		{CC, 100, 0, 0, 101},
		{Bounded, 100, 7, 0, 107},
		{Adaptive, 100, 3, 0, 103},
		{Unbounded, 100, 0, 0, unboundedSentinel},
		{Quantum, 100, 0, 50, 150},
		{Quantum, 149, 0, 50, 150},
		{Quantum, 150, 0, 50, 200},
	}
	for _, tc := range cases {
		if got := maxLocalFor(tc.kind, tc.global, tc.bound, tc.quantum); got != tc.want {
			t.Errorf("maxLocalFor(%v,%d,%d,%d) = %d, want %d",
				tc.kind, tc.global, tc.bound, tc.quantum, got, tc.want)
		}
	}
}

// TestPrivateWorkloadMapClean: without line sharing, the cache status map
// sees only per-core monotonic updates, so map violations must be zero at
// any slack. Bus violations still occur — the request bus is a shared
// resource even for private lines, which is exactly why the paper finds
// bus violations an order of magnitude more frequent than map violations.
func TestPrivateWorkloadMapClean(t *testing.T) {
	for _, s := range []Scheme{BoundedSlack(64), UnboundedSlack()} {
		w := workload.NewPrivate(128, 2)
		m := newTestMachine(t, w, 4)
		res := MustRun(m, RunConfig{Scheme: s, Seed: 11})
		if res.MapViolations != 0 {
			t.Errorf("%s: private workload map-violated: %v", s.Name(), res)
		}
		if err := w.VerifyCores(m.Memory(), 4); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

// TestViolationsGrowWithSlack reproduces Figure 3's core phenomenon on a
// real kernel: the bus violation rate is (weakly) increasing in the slack
// bound and reaches a plateau at the unbounded rate, while map violations
// stay at least an order of magnitude rarer and are negligible at small
// bounds.
func TestViolationsGrowWithSlack(t *testing.T) {
	run := func(s Scheme) Results {
		m := newTestMachine(t, workload.NewWater(16, 1), 4)
		return MustRun(m, RunConfig{Scheme: s, Seed: 9})
	}
	small := run(BoundedSlack(2))
	large := run(BoundedSlack(128))
	free := run(UnboundedSlack())
	if small.BusRate > large.BusRate {
		t.Errorf("bus violation rate fell with slack: S2=%v S128=%v",
			small.BusRate, large.BusRate)
	}
	if large.BusRate <= 0 {
		t.Error("large slack produced no violations on a sharing kernel")
	}
	if free.BusRate < large.BusRate*0.3 {
		t.Errorf("unbounded rate %v far below bounded %v", free.BusRate, large.BusRate)
	}
	// Fig 3(b): map violations negligible at small bounds and always far
	// rarer than bus violations.
	if small.MapRate > small.BusRate/2 {
		t.Errorf("small-slack map rate %v not negligible vs bus %v",
			small.MapRate, small.BusRate)
	}
	if large.MapRate > large.BusRate/5 {
		t.Errorf("map rate %v not well below bus rate %v", large.MapRate, large.BusRate)
	}
}

// TestCycleErrorSmall: the paper's headline observation — even unbounded
// slack keeps the execution-time error within single-digit percent.
func TestCycleErrorSmall(t *testing.T) {
	w := workload.NewFFT(128)
	gold := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: CycleByCycle(), Seed: 1})
	for _, s := range []Scheme{BoundedSlack(10), UnboundedSlack()} {
		res := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: s, Seed: 1})
		if err := res.CycleErrorVs(gold); err > 15 {
			t.Errorf("%s: cycle error %.1f%% too large (gold %d, got %d)",
				s.Name(), err, gold.Cycles, res.Cycles)
		}
	}
}

// TestQuantumOneMatchesCCClosely: a quantum of one cycle is the paper's
// degenerate case equivalent to cycle-by-cycle accuracy.
func TestQuantumOneMatchesCCClosely(t *testing.T) {
	w := workload.NewLU(8)
	gold := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: CycleByCycle(), Seed: 2})
	q1 := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: QuantumScheme(1), Seed: 2})
	if err := q1.CycleErrorVs(gold); err > 2 {
		t.Errorf("Q1 error %.2f%% vs CC (gold %d, got %d)", err, gold.Cycles, q1.Cycles)
	}
}

// TestUnboundedCheaperThanCC reproduces the Table 2 cost ordering on the
// host-work metric: SU must be well under CC for the same workload.
func TestUnboundedCheaperThanCC(t *testing.T) {
	w := workload.NewFFT(128)
	cc := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: CycleByCycle(), Seed: 3})
	su := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: UnboundedSlack(), Seed: 3})
	speedup := su.SpeedupOver(cc)
	if speedup < 1.5 {
		t.Errorf("SU speedup over CC = %.2f, want >= 1.5 (paper: 2-3x)", speedup)
	}
	if su.Suspensions >= cc.Suspensions {
		t.Errorf("SU suspensions %d not below CC %d", su.Suspensions, cc.Suspensions)
	}
}

// TestBoundedBetweenCCAndUnbounded: host cost of bounded slack sits
// between the two extremes.
func TestBoundedBetweenCCAndUnbounded(t *testing.T) {
	w := workload.NewWater(12, 1)
	cc := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: CycleByCycle(), Seed: 4})
	s8 := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: BoundedSlack(8), Seed: 4})
	su := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: UnboundedSlack(), Seed: 4})
	if !(su.HostWorkUnits < s8.HostWorkUnits && s8.HostWorkUnits < cc.HostWorkUnits) {
		t.Errorf("cost ordering broken: SU=%.0f S8=%.0f CC=%.0f",
			su.HostWorkUnits, s8.HostWorkUnits, cc.HostWorkUnits)
	}
}

// TestMaxInstructionsStops the run mid-program, like the paper's 100M
// committed-instruction budget.
func TestMaxInstructionsStops(t *testing.T) {
	m := newTestMachine(t, workload.NewPrivate(4096, 50), 4)
	res := MustRun(m, RunConfig{Scheme: UnboundedSlack(), Seed: 1, MaxInstructions: 5000})
	if res.Committed < 5000 {
		t.Errorf("stopped before the budget: %d", res.Committed)
	}
	if res.Committed > 5000+4*1000 {
		t.Errorf("overshot the budget wildly: %d", res.Committed)
	}
}

// TestMaxCyclesStops caps global time.
func TestMaxCyclesStops(t *testing.T) {
	m := newTestMachine(t, workload.NewPrivate(65536, 100), 2)
	res := MustRun(m, RunConfig{Scheme: CycleByCycle(), Seed: 1, MaxCycles: 500})
	if res.Cycles > 510 {
		t.Errorf("ran to %d cycles past the 500 cap", res.Cycles)
	}
}

// TestRunConfigValidation rejects inconsistent configurations.
func TestRunConfigValidation(t *testing.T) {
	m := newTestMachine(t, workload.NewPrivate(8, 1), 2)
	if _, err := Run(m, RunConfig{Scheme: BoundedSlack(0)}); err == nil {
		t.Error("zero bound accepted")
	}
	m2 := newTestMachine(t, workload.NewPrivate(8, 1), 2)
	if _, err := Run(m2, RunConfig{Scheme: CycleByCycle(), Rollback: true}); err == nil {
		t.Error("rollback without checkpoint interval accepted")
	}
}

// TestMachineConfigValidation covers machine construction errors.
func TestMachineConfigValidation(t *testing.T) {
	if _, err := NewMachine(MachineConfig{NumCores: 0}, workload.NewPrivate(8, 1)); err == nil {
		t.Error("zero cores accepted")
	}
	// LU rejects 3 cores; the machine surfaces the workload error.
	if _, err := NewMachine(MachineConfig{NumCores: 3}, workload.NewLU(8)); err == nil {
		t.Error("workload program error not surfaced")
	}
	if _, err := NewMachine(MachineConfig{NumCores: 2}, workload.NewFFT(5)); err == nil {
		t.Error("workload init error not surfaced")
	}
}
