package engine

import (
	"time"

	"slacksim/internal/violation"
)

// results assembles the Results for a finished deterministic run.
func (r *detRun) results(wall time.Duration) Results {
	m := r.m
	det := m.Detector()
	res := Results{
		Workload: m.WorkloadName(),
		Scheme:   r.cfg.Scheme.Name(),
		Host:     "deterministic",

		Cycles:    r.global,
		Committed: m.committed(),

		BusViolations:      det.Count(violation.Bus),
		MapViolations:      det.Count(violation.Map),
		WorkloadViolations: det.Count(violation.Workload),
		ViolationRate:      det.Rate(r.global),
		BusRate:            det.RateOf(violation.Bus, r.global),
		MapRate:            det.RateOf(violation.Map, r.global),
		Intervals:          det.Intervals(r.global),

		HostWorkUnits: r.meter.total(),
		WallClock:     wall,
		Suspensions:   r.meter.suspensions,
		EventsServed:  r.meter.events,

		Checkpoints:     r.ckpts,
		CheckpointWords: r.ckptWords,
		Rollbacks:       r.rollbacks,
		WastedCycles:    r.wasted,
		ReplayCycles:    r.replayed,

		LockAcquires:    m.Sync().Acquires,
		LockContended:   m.Sync().Contended,
		BarrierEpisodes: m.Sync().BarrierEpisodes,
	}
	for _, c := range m.cores {
		res.PerCore = append(res.PerCore, c.Stats())
	}
	if res.Committed > 0 {
		res.CPI = float64(res.Cycles) * float64(m.NumCores()) / float64(res.Committed)
	}
	if r.ctrl != nil {
		res.FinalBound = r.ctrl.Bound()
		res.MeanBound = r.ctrl.MeanBound()
		res.Adjustments = r.ctrl.Adjustments
	}
	if r.samp != nil {
		res.Sampling = r.samp.finish(r.global, m.committed())
	}
	return res
}
