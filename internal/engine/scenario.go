package engine

import (
	"slacksim/internal/core"
	"slacksim/internal/sampling"
)

// MemRecorder receives the architectural retire stream of every core plus
// the engine's checkpoint lifecycle, so a speculative run records
// correctly: Checkpoint marks the streams at every boundary and Rollback
// truncates back to the marks before the cycle-by-cycle replay re-records
// the window. internal/memtrace.Recorder is the standard implementation.
//
// On the parallel host RecordOp is called concurrently from the core
// goroutines (one core index per goroutine); Checkpoint is only called at
// quiesced boundaries. The deterministic host is single-threaded.
type MemRecorder interface {
	core.OpRecorder
	Checkpoint()
	Rollback()
}

// setRecorders installs cfg.MemRecorder on every core (cores clear it on
// Reset, so a pooled machine never leaks a recorder into the next run).
func setRecorders(m *Machine, cfg RunConfig) {
	if cfg.MemRecorder == nil {
		return
	}
	for _, c := range m.cores {
		c.SetRecorder(cfg.MemRecorder)
	}
}

// sampleState is the deterministic host's interval-sampling cursor. The
// run is cut into intervals of at least Plan.IntervalInsts committed
// instructions (machine-wide); the cursor closes an interval at the first
// pacing step past its boundary, feeds it to the estimator, and flips the
// engine's effective mode: detailed intervals run cycle-accurate CC,
// fast-forward intervals run with unbounded slack — the warmed functional
// mode (caches, predictors, and the memory image stay live; only the
// manager's pacing work is skipped).
type sampleState struct {
	plan sampling.Plan
	est  *sampling.Estimator

	idx         int
	detailed    bool
	startCycles int64
	startInsts  uint64
	nextBound   uint64
}

func newSampleState(plan sampling.Plan) *sampleState {
	return &sampleState{
		plan:      plan,
		est:       sampling.NewEstimator(plan),
		detailed:  plan.Detailed(0),
		nextBound: plan.IntervalInsts,
	}
}

// step closes the current interval once the machine has committed past
// its boundary and opens the next. Called from the engine loop after
// global time is recomputed, so interval cycle counts are consistent.
func (r *detRun) sampleStep() {
	s := r.samp
	committed := r.m.committed()
	if committed < s.nextBound {
		return
	}
	s.close(r.global, committed)
}

func (s *sampleState) close(global int64, committed uint64) {
	cycles := global - s.startCycles
	insts := int64(committed - s.startInsts)
	if s.detailed {
		s.est.AddDetailed(cycles, insts)
	} else {
		s.est.AddFastForward(cycles, insts)
	}
	s.idx++
	s.detailed = s.plan.Detailed(s.idx)
	s.startCycles = global
	s.startInsts = committed
	s.nextBound = committed + s.plan.IntervalInsts
}

// finish closes the trailing partial interval and returns the report.
func (s *sampleState) finish(global int64, committed uint64) *sampling.Report {
	if committed > s.startInsts {
		s.close(global, committed)
	}
	rep := s.est.Report()
	return &rep
}
