package engine

import (
	"fmt"
	"strings"
	"time"

	"slacksim/internal/trace"
)

// CoreStall is one core's pacing state at the moment a stall was detected,
// as captured by the watchdog for the structured failure dump.
type CoreStall struct {
	Core      int
	LocalTime int64
	MaxLocal  int64
	Parked    bool
	Retired   bool
}

// StallError reports that the goroutine-parallel host made no forward
// progress (no core advanced its local time, committed an instruction, or
// retired) for a full wall-clock stall budget. It carries a structured
// snapshot of the pacing state so a wedged CI run fails with a diagnosis
// instead of hanging: per-core local/max-local times, park/retire flags,
// the global time, and the manager's GQ depth.
type StallError struct {
	// Budget is the wall-clock window that elapsed with no progress.
	Budget time.Duration
	// Global is the manager's global time (min active local time).
	Global int64
	// GQDepth is the number of requests queued in the manager's GQ.
	GQDepth int
	// Cores holds one entry per target core.
	Cores []CoreStall
	// Trace is the tail of the run's event ring (serviced requests,
	// violations, bound changes, checkpoints), newest last — what the
	// simulation was doing just before it wedged. Empty when the run was
	// not traced (Config.TraceEvents == 0).
	Trace []string
	// TraceTotal is how many events the ring recorded overall, so the
	// dump shows how much history the tail represents.
	TraceTotal uint64
}

// Error formats the structured dump, one line per core, followed by the
// trace tail when the run was traced.
func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: parallel host stalled: no progress for %v at global=%d (gq depth %d)",
		e.Budget, e.Global, e.GQDepth)
	for _, c := range e.Cores {
		fmt.Fprintf(&b, "\n  core %d: local=%d maxLocal=%d parked=%v retired=%v",
			c.Core, c.LocalTime, c.MaxLocal, c.Parked, c.Retired)
	}
	if len(e.Trace) > 0 {
		fmt.Fprintf(&b, "\n  trace tail (last %d of %d events):", len(e.Trace), e.TraceTotal)
		for _, line := range e.Trace {
			fmt.Fprintf(&b, "\n    %s", line)
		}
	}
	return b.String()
}

// stallTraceTail bounds how many ring events a stall dump carries.
const stallTraceTail = 32

// attachTrace copies the tail of the run's event ring into the dump.
// Callers must only invoke it once the ring is quiescent (after the
// run's goroutines have joined); a nil ring is a no-op.
func (e *StallError) attachTrace(r *trace.Ring) {
	if r == nil {
		return
	}
	events := r.Events()
	if len(events) > stallTraceTail {
		events = events[len(events)-stallTraceTail:]
	}
	for _, ev := range events {
		e.Trace = append(e.Trace, ev.String())
	}
	e.TraceTotal = r.Total()
}

// progress is a monotone counter of forward motion: it increases whenever
// any core ticks, commits, or retires. The watchdog declares a stall only
// when this value stays constant for the whole budget.
func (r *parRun) progress() uint64 {
	var p uint64
	for i := range r.localTime {
		p += uint64(r.localTime[i].Load())
		p += r.committed[i].Load()
		if r.retired[i].Load() {
			p++
		}
	}
	return p
}

// stallDump captures the pacing state for a StallError. parked is read
// under mu; the clocks are read through their atomics.
func (r *parRun) stallDump() *StallError {
	e := &StallError{
		Budget:  r.cfg.StallTimeout,
		Global:  r.globalNow.Load(),
		GQDepth: int(r.gqDepth.Load()),
	}
	r.mu.Lock()
	for i := range r.localTime {
		e.Cores = append(e.Cores, CoreStall{
			Core:      i,
			LocalTime: r.localTime[i].Load(),
			MaxLocal:  r.maxLocal[i].Load(),
			Parked:    r.parked[i],
			Retired:   r.retired[i].Load(),
		})
	}
	r.mu.Unlock()
	return e
}

// failStall records the stall and force-stops the run: the error is
// published first, then stop is raised under mu with a broadcast (the
// lost-wakeup-safe shutdown path) and the manager is kicked out of its
// channel wait.
func (r *parRun) failStall() {
	r.stallErr.Store(r.stallDump())
	r.shutdown()
	r.kickManager()
}

// watchdog polls the run's progress counter and fails the run via
// failStall when it does not change for a full StallTimeout window. It
// exits when done is closed. Polling (rather than instrumenting every
// pacing operation) keeps the hot paths untouched; the budget is a
// wall-clock bound so detection latency is at most budget + one poll.
func (r *parRun) watchdog(done <-chan struct{}) {
	budget := r.cfg.StallTimeout
	poll := budget / 16
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	if poll > time.Second {
		poll = time.Second
	}
	tick := time.NewTicker(poll) //lint:allow determinism -- the stall watchdog is wall-clock by design and never touches simulated state
	defer tick.Stop()
	last := r.progress()
	lastChange := time.Now() //lint:allow determinism -- the stall watchdog is wall-clock by design and never touches simulated state
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			cur := r.progress()
			if cur != last {
				last = cur
				lastChange = time.Now() //lint:allow determinism -- the stall watchdog is wall-clock by design and never touches simulated state
				continue
			}
			if time.Since(lastChange) >= budget { //lint:allow determinism -- the stall watchdog is wall-clock by design and never touches simulated state
				r.failStall()
				return
			}
		}
	}
}
