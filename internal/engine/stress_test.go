package engine_test

// The randomized stress harness: hundreds of short scenarios across
// scheme × core count × checkpoint interval × seed, built to run under
// `go test -race`. Liveness is guaranteed by the parallel host's stall
// watchdog (a pacing deadlock fails with a structured dump instead of
// hanging the test binary), and the CC scheme is asserted to match the
// deterministic host cycle-for-cycle on every eligible scenario. The
// same generator backs the standalone cmd/stress driver.

import (
	"math/rand"
	"testing"

	"slacksim/internal/stress"
)

// TestStressEquivalenceRandomized sweeps 120 randomized CC scenarios and
// asserts parallel-vs-deterministic cycle-for-cycle equivalence on each.
func TestStressEquivalenceRandomized(t *testing.T) {
	runs := 120
	if testing.Short() {
		runs = 25
	}
	rng := rand.New(rand.NewSource(2026))
	for i := 0; i < runs; i++ {
		cfg := stress.RandomEquivalence(rng)
		res, err := stress.Execute(cfg)
		if err != nil {
			t.Fatalf("scenario %d {%s}: %v", i, cfg, err)
		}
		if res.Det == nil {
			t.Fatalf("scenario %d {%s}: equivalence not checked", i, cfg)
		}
	}
}

// TestStressLivenessRandomized sweeps randomized scenarios across all six
// schemes: every run must terminate (watchdog-bounded), respect the
// horizon, and produce a correct memory image when untruncated.
func TestStressLivenessRandomized(t *testing.T) {
	runs := 60
	if testing.Short() {
		runs = 15
	}
	rng := rand.New(rand.NewSource(777))
	for i := 0; i < runs; i++ {
		cfg := stress.Random(rng)
		if _, err := stress.Execute(cfg); err != nil {
			t.Fatalf("scenario %d {%s}: %v", i, cfg, err)
		}
	}
}

// TestStressEdges pins the deterministic corner scenarios: n=1 machines
// under every scheme (the Lax-P2P partner-pick regression), all cores
// retiring before the first checkpoint, and horizons landing exactly on
// checkpoint boundaries.
func TestStressEdges(t *testing.T) {
	for _, cfg := range stress.Edges() {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			if _, err := stress.Execute(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
