package engine

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"slacksim/internal/adaptive"
	"slacksim/internal/event"
	"slacksim/internal/sampling"
	"slacksim/internal/trace"
	"slacksim/internal/violation"
)

// RunConfig parameterizes one simulation run.
type RunConfig struct {
	// Scheme is the synchronization scheme.
	Scheme Scheme
	// MaxInstructions stops the run once the machine has committed this
	// many instructions in total (0 = run until every program halts).
	MaxInstructions uint64
	// MaxCycles is a safety cap on global time (default 1<<40).
	MaxCycles int64
	// Seed drives the deterministic host's scheduling.
	Seed int64
	// MaxChunk caps how many cycles one core runs uninterrupted in the
	// deterministic host (models host scheduling granularity; default 16).
	MaxChunk int64
	// HostDriftCap bounds how far any core's clock may run ahead of the
	// slowest core in the deterministic host, independently of the slack
	// bound (default 64). It models host threads that execute at roughly
	// equal speeds with bounded transient drift: below the cap the slack
	// bound is what limits reordering (violations grow with the bound);
	// beyond it the host's own pacing dominates (the violation-rate
	// plateau of the paper's Figure 3).
	HostDriftCap int64
	// CheckpointInterval, when positive, takes a global checkpoint every
	// that many simulated cycles.
	CheckpointInterval int64
	// Rollback enables full speculative slack simulation: on a selected
	// violation the run restores the last checkpoint and replays
	// cycle-by-cycle to the next boundary (forward progress), then resumes
	// the slack scheme.
	Rollback bool
	// DeepCheckpoint selects the reference checkpoint implementation: a
	// full deep copy of all simulation state at every boundary. The
	// default (false) is the incremental copy-on-write path, which keeps
	// one evolving snapshot and copies only state dirtied since the
	// previous boundary. Both paths produce byte-identical Results (the
	// cost model charges the same checkpoint words either way — it models
	// the paper's fork()-based checkpoints, whose cost the host-side
	// incremental optimization does not change); the deep path exists for
	// equivalence testing and as a fallback.
	DeepCheckpoint bool
	// Selected restricts which violation types steer adaptation and
	// trigger rollback (nil = all types).
	Selected []violation.Type
	// TrackIntervals enables Table 3/4 interval statistics for the given
	// interval lengths.
	TrackIntervals []int64
	// MeasureViolations charges the violation-detection overhead to the
	// host cost model (it is implied by Adaptive, Rollback and interval
	// tracking; set it to model an instrumented bounded run, as in the
	// Figure 3 experiments).
	MeasureViolations bool
	// AdaptivePolicy selects the controller's bound-adjustment policy
	// (AIMD by default; AIAD exists for the ablation study).
	AdaptivePolicy adaptive.Policy
	// Tracer, when non-nil, records serviced requests, violations, bound
	// changes, checkpoints and rollbacks for post-run inspection.
	Tracer *trace.Ring
	// MemRecorder, when non-nil, captures every core's architectural
	// retire stream (loads, stores, lock/barrier ops, halts, in commit
	// order) for trace record/replay. Works on both hosts and through
	// checkpoint/rollback cycles.
	MemRecorder MemRecorder
	// Sampling, when non-nil, enables Pac-Sim-style interval sampling:
	// periodic detailed intervals under cycle-accurate CC pacing, the
	// rest fast-forwarded through warmed functional mode (unbounded
	// slack), with an extrapolated cycle estimate and confidence bound in
	// Results.Sampling. Deterministic host only; requires the cc scheme
	// and no checkpointing or interval tracking.
	Sampling *sampling.Plan
	// StallTimeout is the parallel host's liveness watchdog budget: if no
	// core makes forward progress (local time, committed instructions, or
	// retirement) for this much wall-clock time, the run is force-stopped
	// and RunParallel returns a *StallError with a structured dump of the
	// pacing state instead of hanging. 0 selects the default (30s);
	// negative disables the watchdog. The deterministic host is
	// single-threaded and cannot stall, so it ignores this.
	StallTimeout time.Duration
	// OnProgress, when non-nil, is called with monotone Progress snapshots
	// as the run advances (at most once per ProgressEvery global cycles).
	// On the parallel host the callback runs on the manager goroutine and
	// must be fast and non-blocking, or it will slow the pacing protocol.
	OnProgress func(Progress)
	// ProgressEvery is the minimum global-time advance between OnProgress
	// deliveries (default DefaultProgressEvery).
	ProgressEvery int64
	// Interrupt, when non-nil, is an external stop request: once it is
	// set true the run stops at the next pacing step and returns
	// ErrInterrupted. Services use it to cancel in-flight jobs.
	Interrupt *atomic.Bool
	// SnapshotRequest, when non-nil and set true, asks the run to export
	// its complete state at the next checkpoint boundary: the serialized
	// state is delivered through OnSnapshot and the run returns
	// ErrSnapshotted. The run can then be continued elsewhere with
	// Resume. Requires CheckpointInterval > 0 and the deterministic host
	// (the parallel host ignores it).
	SnapshotRequest *atomic.Bool
	// OnSnapshot receives the serialized run state when a snapshot
	// request fires. Both SnapshotRequest and OnSnapshot must be set for
	// export to happen.
	OnSnapshot func(state []byte)
}

func (cfg RunConfig) withDefaults() RunConfig {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 1 << 40
	}
	if cfg.MaxChunk == 0 {
		cfg.MaxChunk = 16
	}
	if cfg.HostDriftCap == 0 {
		cfg.HostDriftCap = 64
	}
	if cfg.Scheme.Kind == Adaptive || cfg.Rollback || len(cfg.TrackIntervals) > 0 {
		cfg.MeasureViolations = true
	}
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = 30 * time.Second
	}
	if cfg.Sampling != nil {
		p := *cfg.Sampling
		p.Normalize()
		cfg.Sampling = &p
	}
	return cfg
}

// Validate reports configuration errors.
func (cfg RunConfig) Validate() error {
	if err := cfg.Scheme.Validate(); err != nil {
		return err
	}
	if cfg.MaxChunk < 0 || cfg.MaxCycles < 0 || cfg.CheckpointInterval < 0 {
		return fmt.Errorf("engine: negative run limits")
	}
	if cfg.Rollback && cfg.CheckpointInterval <= 0 {
		return fmt.Errorf("engine: rollback requires a checkpoint interval")
	}
	if cfg.Sampling != nil {
		if err := cfg.Sampling.Validate(); err != nil {
			return err
		}
		if cfg.Scheme.Kind != CC {
			return fmt.Errorf("engine: sampling requires the cc scheme (detailed intervals are the cycle-accurate reference)")
		}
		if cfg.Rollback || cfg.CheckpointInterval > 0 {
			return fmt.Errorf("engine: sampling cannot be combined with checkpointing")
		}
		if len(cfg.TrackIntervals) > 0 {
			return fmt.Errorf("engine: sampling cannot be combined with interval tracking")
		}
	}
	return nil
}

type pendingReq struct {
	req event.Request
	arr uint64
}

// detRun is the state of one deterministic-host run.
type detRun struct {
	m   *Machine
	cfg RunConfig
	rng *rand.Rand
	// rngSrc is rng's underlying source; its draw count is part of the
	// exported run state (Resume fast-forwards a fresh source to it).
	rngSrc *countingSource

	ctrl  *adaptive.Controller
	bound int64

	retired []bool
	global  int64

	gq      []pendingReq
	arrival uint64

	// Lax-P2P state: the next pairwise sync point, the currently chosen
	// partner (-1 = none), and whether the core is currently blocked at a
	// sync (for suspension accounting), per core.
	p2pNext    []int64
	p2pPartner []int
	p2pBlocked []bool

	meter costMeter
	prog  *progressNotifier

	lastAdapt int64

	// Reused scratch buffers (hot-path allocation elimination).
	runnable []int
	drainBuf []event.Request

	// Interval-sampling cursor (nil unless cfg.Sampling is set).
	samp *sampleState

	// Checkpoint/rollback state.
	nextCkpt        int64
	snap            *globalSnapshot
	replayUntil     int64
	pendingRollback bool
	rollbacks       int
	wasted          int64
	replayed        int64
	ckpts           int
	ckptWords       int64
}

// Run simulates the machine to completion under cfg on the deterministic
// host and returns the results. The machine must be freshly built (a
// machine cannot be reused across runs).
func Run(m *Machine, cfg RunConfig) (Results, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	src := newCountingSource(cfg.Seed)
	r := &detRun{
		m:       m,
		cfg:     cfg,
		rng:     rand.New(src),
		rngSrc:  src,
		retired: make([]bool, m.NumCores()),
		bound:   cfg.Scheme.Bound,
		prog:    newProgressNotifier(cfg),
	}
	m.unc.SetTracer(cfg.Tracer)
	setRecorders(m, cfg)
	if cfg.Sampling != nil {
		r.samp = newSampleState(*cfg.Sampling)
	}
	if cfg.Scheme.Kind == Adaptive {
		ctrl, err := adaptive.New(cfg.Scheme.Adaptive)
		if err != nil {
			return Results{}, err
		}
		ctrl.SetPolicy(cfg.AdaptivePolicy)
		r.ctrl = ctrl
		r.bound = ctrl.Bound()
	}
	if cfg.Scheme.Kind == LaxP2P {
		r.p2pNext = make([]int64, m.NumCores())
		r.p2pPartner = make([]int, m.NumCores())
		r.p2pBlocked = make([]bool, m.NumCores())
		for i := range r.p2pNext {
			r.p2pNext[i] = cfg.Scheme.SyncPeriod
			r.p2pPartner[i] = -1
		}
	}
	if len(cfg.TrackIntervals) > 0 {
		m.Detector().TrackIntervals(cfg.TrackIntervals...)
	}
	if len(cfg.Selected) > 0 {
		m.Detector().Select(cfg.Selected...)
	}
	if cfg.CheckpointInterval > 0 {
		r.nextCkpt = cfg.CheckpointInterval
		if cfg.Rollback {
			// The initial state is the first recovery point, so a
			// violation before the first boundary can still roll back.
			r.takeCheckpoint()
		}
	}
	start := time.Now() //lint:allow determinism -- host wall-time feeds Results.HostDuration (a measurement), never simulated state
	if err := r.loop(); err != nil {
		return Results{}, err
	}
	return r.results(time.Since(start)), nil //lint:allow determinism -- host wall-time feeds Results.HostDuration (a measurement), never simulated state
}

// MustRun is Run but panics on error.
func MustRun(m *Machine, cfg RunConfig) Results {
	res, err := Run(m, cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// mode returns the effective scheme kind, accounting for cycle-by-cycle
// replay after a rollback.
func (r *detRun) mode() SchemeKind {
	if r.replayUntil > 0 && r.global < r.replayUntil {
		return CC
	}
	if r.samp != nil && !r.samp.detailed {
		// Fast-forward interval: warmed functional mode (unbounded slack;
		// the host drift cap still bounds core spread).
		return Unbounded
	}
	return r.cfg.Scheme.Kind
}

// conservative reports whether the manager must currently service events
// in timestamp order.
func (r *detRun) conservative() bool { return r.mode() == CC }

// maxLocal computes the current max local time shared by all cores
// (every scheme here is symmetric), capped at the next checkpoint
// boundary so a global checkpoint can be taken with all clocks equal.
func (r *detRun) maxLocal() int64 {
	ml := maxLocalFor(r.mode(), r.global, r.bound, r.cfg.Scheme.Quantum)
	if ml > r.cfg.MaxCycles {
		// Clamp to the simulation horizon, mirroring the parallel host, so
		// no core's clock ever passes MaxCycles.
		ml = r.cfg.MaxCycles
	}
	if r.nextCkpt > 0 && ml > r.nextCkpt {
		ml = r.nextCkpt
	}
	return ml
}

func (r *detRun) done() bool {
	if r.global >= r.cfg.MaxCycles {
		return true
	}
	if r.cfg.MaxInstructions > 0 && r.m.committed() >= r.cfg.MaxInstructions {
		return true
	}
	for i := range r.retired {
		if !r.retired[i] {
			return false
		}
	}
	return true
}

// recomputeGlobal sets global time to the minimum local time of active
// cores (global never decreases except across a rollback restore).
func (r *detRun) recomputeGlobal() {
	min := int64(-1)
	for i, c := range r.m.cores {
		if r.retired[i] {
			continue
		}
		if min < 0 || c.Now() < min {
			min = c.Now()
		}
	}
	if min >= 0 {
		r.global = min
	}
}

func (r *detRun) loop() error {
	for !r.done() {
		if r.cfg.interrupted() {
			return ErrInterrupted
		}
		ml := r.maxLocal()
		pick := r.nextCore(ml)
		if pick < 0 {
			// Everyone is at the wall: either a checkpoint boundary or an
			// inconsistency (global should always free the slowest core).
			if r.nextCkpt > 0 && r.global == r.nextCkpt {
				if err := r.atBoundary(); err != nil {
					return err
				}
				continue
			}
			return fmt.Errorf("engine: no runnable core at global=%d maxLocal=%d", r.global, ml)
		}
		c := r.m.cores[pick]
		budget := ml - c.Now()
		chunk := int64(1)
		if r.cfg.MaxChunk > 1 {
			chunk += r.rng.Int63n(r.cfg.MaxChunk)
		}
		if chunk > budget {
			chunk = budget
		}
		for k := int64(0); k < chunk; k++ {
			c.Tick()
			r.meter.coreCycles++
		}
		if c.Now() >= ml {
			r.meter.suspensions++
		}
		if c.Halted() {
			r.retired[pick] = true
		}

		r.drain(pick)
		r.recomputeGlobal()
		if err := r.service(); err != nil {
			return err
		}
		r.prog.maybe(r.global, r.m.committed(), r.progressCounter())
		if r.samp != nil {
			r.sampleStep()
		}
		if r.pendingRollback {
			// The paper's recipe: roll back as soon as the manager detects
			// a selected violation.
			r.doRollback()
			continue
		}
		r.adapt()
		if r.nextCkpt > 0 && r.global == r.nextCkpt && r.allAtBoundary() {
			if err := r.atBoundary(); err != nil {
				return err
			}
		}
	}
	// Final drain so trailing requests are reflected in stats.
	r.drainAll()
	r.recomputeGlobal()
	return r.serviceAll()
}

// nextCore picks a uniformly random core among those below both the
// scheme's wall and the host drift cap. Random picks make each core's
// clock a random walk (the ordering jitter that causes violations); the
// drift cap keeps the walk within what a real host's roughly-equal thread
// speeds would allow. It returns -1 when no core can run at all.
func (r *detRun) nextCore(ml int64) int {
	cap := ml
	if d := r.global + r.cfg.HostDriftCap; d < cap {
		cap = d
	}
	runnable := r.runnable[:0]
	for i, c := range r.m.cores {
		if !r.retired[i] && c.Now() < cap && r.p2pClear(i) {
			runnable = append(runnable, i)
		}
	}
	r.runnable = runnable
	if len(runnable) == 0 {
		// The slowest active core always sits below global+drift, so this
		// only happens at a scheme wall (checkpoint boundary or a bug).
		return -1
	}
	return runnable[r.rng.Intn(len(runnable))]
}

// p2pClear evaluates core i's Lax-P2P gate: away from a sync point it is
// free; at one it picks a random partner (kept until the sync resolves)
// and may proceed only when it is no more than P2PMaxAhead cycles past
// the partner. The globally slowest core is never gated, so the scheme is
// deadlock-free.
func (r *detRun) p2pClear(i int) bool {
	// With a single core there is no partner to pick (Intn(0) would
	// panic); the gate degenerates to free-running, as on the parallel host.
	if r.cfg.Scheme.Kind != LaxP2P || r.m.NumCores() < 2 {
		return true
	}
	c := r.m.cores[i]
	if c.Now() < r.p2pNext[i] {
		return true
	}
	if r.p2pPartner[i] < 0 {
		p := r.rng.Intn(r.m.NumCores() - 1)
		if p >= i {
			p++
		}
		r.p2pPartner[i] = p
	}
	p := r.p2pPartner[i]
	if !r.retired[p] && r.m.cores[p].Now() < c.Now()-r.cfg.Scheme.P2PMaxAhead {
		if !r.p2pBlocked[i] {
			r.p2pBlocked[i] = true
			r.meter.suspensions++
		}
		return false
	}
	r.p2pNext[i] += r.cfg.Scheme.SyncPeriod
	r.p2pPartner[i] = -1
	r.p2pBlocked[i] = false
	return true
}

// drain moves requests from core i's OutQ into the manager's global queue
// (GQ), preserving arrival order. One DrainInto into a reused buffer
// replaces the per-item Pop loop (one lock, zero allocations).
//
//slacksim:hotpath
func (r *detRun) drain(i int) {
	r.drainBuf = r.m.outQs[i].DrainInto(r.drainBuf[:0])
	for _, req := range r.drainBuf {
		r.arrival++
		r.gq = append(r.gq, pendingReq{req: req, arr: r.arrival}) //lint:allow hotpathalloc -- gq's backing array is reused across boundaries (truncated to gq[:0] by service); growth is amortized
	}
}

func (r *detRun) drainAll() {
	for i := range r.m.outQs {
		r.drain(i)
	}
}

// service runs the manager: eagerly in slack modes (arrival order), or
// conservatively in CC mode (timestamp order, only events that can no
// longer be preceded).
func (r *detRun) service() error {
	if r.conservative() {
		return r.serviceConservative(r.global)
	}
	for _, p := range r.gq {
		r.serveOne(p.req)
	}
	r.gq = r.gq[:0]
	return nil
}

// serviceConservative services queued requests with TS strictly below
// safeTime in (TS, core, arrival) order; later-timestamped requests stay
// queued because a slower core could still issue an earlier one.
func (r *detRun) serviceConservative(safeTime int64) error {
	if len(r.gq) == 0 {
		return nil
	}
	sortPending(r.gq)
	n := 0
	for n < len(r.gq) && r.gq[n].req.TS < safeTime {
		r.serveOne(r.gq[n].req)
		n++
	}
	if n > 0 {
		// Compact in place instead of re-slicing so the backing array's
		// capacity is never abandoned.
		r.gq = r.gq[:copy(r.gq, r.gq[n:])]
	}
	return nil
}

// serviceAll flushes every queued request regardless of safety (used when
// the run is over).
func (r *detRun) serviceAll() error {
	return r.serviceConservative(unboundedSentinel)
}

func (r *detRun) serveOne(req event.Request) {
	before := r.m.det.SelectedCount()
	r.m.unc.Service(req)
	r.meter.events++
	if r.cfg.MeasureViolations {
		r.meter.violChecked++
	}
	if r.cfg.Rollback && r.replayUntil == 0 {
		if r.m.det.SelectedCount() > before {
			r.pendingRollback = true
		}
	}
}

// adapt runs the adaptive controller at its period.
func (r *detRun) adapt() {
	if r.ctrl == nil || r.mode() == CC {
		return
	}
	period := r.cfg.Scheme.Adaptive.Period
	if r.global-r.lastAdapt < period {
		return
	}
	r.lastAdapt = r.global
	rate := r.m.det.Rate(r.global)
	before := r.bound
	r.bound = r.ctrl.Update(rate)
	r.meter.adaptOps++
	if r.bound != before && r.cfg.Tracer.Enabled() {
		r.cfg.Tracer.Addf(r.global, -1, trace.BoundChange,
			"rate=%.5f bound %d -> %d", rate, before, r.bound)
	}
}

// allAtBoundary reports whether every active core's clock equals the next
// checkpoint boundary.
func (r *detRun) allAtBoundary() bool {
	for i, c := range r.m.cores {
		if !r.retired[i] && c.Now() != r.nextCkpt {
			return false
		}
	}
	return true
}

// atBoundary handles a checkpoint boundary: quiesce the manager, either
// roll back (if a selected violation fired during the elapsed interval)
// or take a fresh global checkpoint, then advance the boundary.
func (r *detRun) atBoundary() error {
	r.drainAll()
	if err := r.service(); err != nil {
		return err
	}
	if r.pendingRollback {
		r.doRollback()
		return nil
	}
	if r.replayUntil > 0 && r.global >= r.replayUntil {
		r.replayed += r.replayUntil - r.snapGlobal()
		r.replayUntil = 0
	}
	r.takeCheckpoint()
	r.nextCkpt += r.cfg.CheckpointInterval
	if r.cfg.snapshotRequested() {
		// The run is quiesced and checkpointed: export the state and stop.
		state, err := r.exportSnapshot()
		if err != nil {
			return err
		}
		r.cfg.OnSnapshot(state)
		return ErrSnapshotted
	}
	return nil
}

func (r *detRun) snapGlobal() int64 {
	if r.snap == nil {
		return 0
	}
	return r.snap.global
}
