package engine

import (
	"testing"

	"slacksim/internal/workload"
)

func TestLaxP2PFunctional(t *testing.T) {
	for _, name := range []string{"fft", "water"} {
		w, err := workload.ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		m := newTestMachine(t, w, 4)
		res := MustRun(m, RunConfig{Scheme: LaxP2PScheme(100, 100), Seed: 3})
		if res.Committed == 0 {
			t.Fatalf("%s: nothing committed", name)
		}
		if err := w.(workload.Verifier).Verify(m.Memory()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestLaxP2PBoundsDrift(t *testing.T) {
	// With pairwise syncing every 50 cycles and 25 cycles of allowed
	// lead, clocks cannot run away; cycle error vs CC stays moderate, and
	// some pairwise suspensions must occur.
	w := workload.NewFFT(128)
	gold := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: CycleByCycle(), Seed: 1})
	p2p := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: LaxP2PScheme(50, 25), Seed: 1})
	if err := p2p.CycleErrorVs(gold); err > 20 {
		t.Errorf("P2P cycle error %.1f%% (gold %d, got %d)", err, gold.Cycles, p2p.Cycles)
	}
	if p2p.Suspensions == 0 {
		t.Error("no pairwise suspensions recorded")
	}
	// And it must be cheaper than cycle-by-cycle.
	if p2p.HostWorkUnits >= gold.HostWorkUnits {
		t.Errorf("P2P work %v not below CC %v", p2p.HostWorkUnits, gold.HostWorkUnits)
	}
}

func TestLaxP2PSuspendsLessThanCC(t *testing.T) {
	w := workload.NewLU(8)
	cc := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: CycleByCycle(), Seed: 2})
	p2p := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: LaxP2PScheme(100, 50), Seed: 2})
	if p2p.Suspensions >= cc.Suspensions {
		t.Errorf("P2P suspensions %d not below CC %d", p2p.Suspensions, cc.Suspensions)
	}
}

func TestLaxP2PParallelHost(t *testing.T) {
	w := workload.NewFFT(64)
	m := newTestMachine(t, w, 4)
	res, err := RunParallel(m, RunConfig{Scheme: LaxP2PScheme(100, 100), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "P2P100" {
		t.Errorf("scheme name %q", res.Scheme)
	}
}

func TestLaxP2PValidation(t *testing.T) {
	if err := LaxP2PScheme(0, 10).Validate(); err == nil {
		t.Error("zero period accepted")
	}
	if err := LaxP2PScheme(10, -1).Validate(); err == nil {
		t.Error("negative max-ahead accepted")
	}
	if err := LaxP2PScheme(100, 0).Validate(); err != nil {
		t.Errorf("valid P2P rejected: %v", err)
	}
}

func TestLaxP2PDeterministic(t *testing.T) {
	run := func() Results {
		m := newTestMachine(t, workload.NewWater(8, 1), 4)
		return MustRun(m, RunConfig{Scheme: LaxP2PScheme(64, 32), Seed: 11})
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.BusViolations != b.BusViolations {
		t.Errorf("P2P not reproducible: %v vs %v", a, b)
	}
}
