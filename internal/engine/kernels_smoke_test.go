package engine

import (
	"testing"

	"slacksim/internal/workload"
)

func TestSmokeKernelsCC(t *testing.T) {
	cases := []struct {
		name string
		w    Workload
		ver  workload.Verifier
	}{
		{"fft", workload.NewFFT(64), workload.NewFFT(64)},
		{"lu", workload.NewLU(8), workload.NewLU(8)},
		{"barnes", workload.NewBarnes(16, 1), workload.NewBarnes(16, 1)},
		{"water", workload.NewWater(8, 1), workload.NewWater(8, 1)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := newTestMachine(t, tc.w, 4)
			res, err := Run(m, RunConfig{Scheme: CycleByCycle(), Seed: 1})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.BusViolations != 0 || res.MapViolations != 0 {
				t.Errorf("CC run had violations: %v", res)
			}
			if err := tc.ver.Verify(m.Memory()); err != nil {
				t.Fatalf("verify: %v", err)
			}
			t.Logf("%s", res)
		})
	}
}

func TestSmokeKernelsUnbounded(t *testing.T) {
	cases := []struct {
		name string
		w    Workload
		ver  workload.Verifier
	}{
		{name: "fft", w: workload.NewFFT(64)},
		{name: "lu", w: workload.NewLU(8)},
		{name: "barnes", w: workload.NewBarnes(16, 1)},
		{name: "water", w: workload.NewWater(8, 1)},
	}
	for i := range cases {
		cases[i].ver = cases[i].w.(workload.Verifier)
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := newTestMachine(t, tc.w, 4)
			if _, err := Run(m, RunConfig{Scheme: UnboundedSlack(), Seed: 7}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := tc.ver.Verify(m.Memory()); err != nil {
				t.Fatalf("verify: %v", err)
			}
		})
	}
}

func TestSmokeParallelHost(t *testing.T) {
	w := workload.NewFFT(64)
	m := newTestMachine(t, w, 4)
	res, err := RunParallel(m, RunConfig{Scheme: BoundedSlack(8), Seed: 1})
	if err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatalf("verify: %v", err)
	}
	t.Logf("%s", res)
}

func TestSmokeCheckpointRollback(t *testing.T) {
	w := workload.NewFalseShare(256)
	m := newTestMachine(t, w, 4)
	res, err := Run(m, RunConfig{
		Scheme:             BoundedSlack(32),
		Seed:               3,
		CheckpointInterval: 500,
		Rollback:           true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.VerifyCores(m.Memory(), 4); err != nil {
		t.Fatalf("verify: %v", err)
	}
	t.Logf("ckpts=%d rollbacks=%d wasted=%d replay=%d %s",
		res.Checkpoints, res.Rollbacks, res.WastedCycles, res.ReplayCycles, res)
}

func TestSmokeOcean(t *testing.T) {
	w := workload.NewOcean(16, 2)
	m := newTestMachine(t, w, 4)
	res := MustRun(m, RunConfig{Scheme: CycleByCycle(), Seed: 1})
	if res.BusViolations != 0 {
		t.Errorf("CC ocean violated: %v", res)
	}
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatalf("CC: %v", err)
	}
	m2 := newTestMachine(t, w, 4)
	MustRun(m2, RunConfig{Scheme: UnboundedSlack(), Seed: 5})
	if err := w.Verify(m2.Memory()); err != nil {
		t.Fatalf("SU: %v", err)
	}
}

func TestSmokeRadix(t *testing.T) {
	// Radix's scatter order is schedule-dependent, so correctness is
	// semantic (digit-sorted permutation) rather than bit-exact — under
	// every scheme, on both hosts.
	for _, s := range []Scheme{CycleByCycle(), BoundedSlack(32), UnboundedSlack()} {
		w := workload.NewRadix(64)
		m := newTestMachine(t, w, 4)
		MustRun(m, RunConfig{Scheme: s, Seed: 3})
		if err := w.Verify(m.Memory()); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
	w := workload.NewRadix(64)
	m := newTestMachine(t, w, 4)
	if _, err := RunParallel(m, RunConfig{Scheme: BoundedSlack(16)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatalf("parallel: %v", err)
	}
}
