package engine

import (
	"testing"

	"slacksim/internal/workload"
)

// TestSameSeedSameResults: the deterministic host is bit-reproducible.
func TestSameSeedSameResults(t *testing.T) {
	run := func() Results {
		m := newTestMachine(t, workload.NewFalseShare(128), 4)
		return MustRun(m, RunConfig{Scheme: BoundedSlack(16), Seed: 42})
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Committed != b.Committed ||
		a.BusViolations != b.BusViolations || a.MapViolations != b.MapViolations ||
		a.EventsServed != b.EventsServed || a.Suspensions != b.Suspensions {
		t.Errorf("same seed diverged:\n%v\n%v", a, b)
	}
}

// TestDifferentSeedsStillCorrect: scheduling randomness must never change
// functional results, only timing.
func TestDifferentSeedsStillCorrect(t *testing.T) {
	w := workload.NewWater(8, 1)
	for seed := int64(0); seed < 4; seed++ {
		m := newTestMachine(t, w, 4)
		MustRun(m, RunConfig{Scheme: BoundedSlack(64), Seed: seed})
		if err := w.Verify(m.Memory()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestCCIndependentOfSeed: cycle-by-cycle simulation is the gold standard;
// the host's scheduling randomness must not leak into it at all.
func TestCCIndependentOfSeed(t *testing.T) {
	run := func(seed int64) Results {
		m := newTestMachine(t, workload.NewFFT(64), 4)
		return MustRun(m, RunConfig{Scheme: CycleByCycle(), Seed: seed})
	}
	a, b := run(1), run(999)
	if a.Cycles != b.Cycles || a.Committed != b.Committed {
		t.Errorf("CC depends on seed: %d/%d vs %d/%d cycles/insts",
			a.Cycles, a.Committed, b.Cycles, b.Committed)
	}
	if a.BusViolations != 0 || a.MapViolations != 0 {
		t.Errorf("CC produced violations: %v", a)
	}
}

// TestCCChunkingInvariant: the deterministic host's chunk size must not
// change cycle-by-cycle results either (cores are re-picked within the
// one-cycle window anyway).
func TestCCChunkingInvariant(t *testing.T) {
	run := func(chunk int64) Results {
		m := newTestMachine(t, workload.NewLU(8), 4)
		return MustRun(m, RunConfig{Scheme: CycleByCycle(), Seed: 5, MaxChunk: chunk})
	}
	a, b := run(1), run(64)
	if a.Cycles != b.Cycles || a.Committed != b.Committed {
		t.Errorf("CC depends on chunking: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

// TestCCParallelMatchesDeterministic: both hosts must produce the same
// gold-standard timing for a data-race-free, barrier-synchronized
// workload. This is the strongest cross-host correctness check.
func TestCCParallelMatchesDeterministic(t *testing.T) {
	w := workload.NewFFT(64)
	md := newTestMachine(t, w, 4)
	det := MustRun(md, RunConfig{Scheme: CycleByCycle(), Seed: 1})

	mp := newTestMachine(t, w, 4)
	par, err := RunParallel(mp, RunConfig{Scheme: CycleByCycle()})
	if err != nil {
		t.Fatal(err)
	}
	if det.Cycles != par.Cycles {
		t.Errorf("CC cycles: deterministic %d vs parallel %d", det.Cycles, par.Cycles)
	}
	if det.Committed != par.Committed {
		t.Errorf("CC insts: deterministic %d vs parallel %d", det.Committed, par.Committed)
	}
	if par.BusViolations != 0 || par.MapViolations != 0 {
		t.Errorf("parallel CC produced violations: %v", par)
	}
	if err := w.Verify(mp.Memory()); err != nil {
		t.Fatalf("parallel CC functional: %v", err)
	}
}

// TestCCParallelMatchesDeterministicLU repeats the cross-host check on a
// second kernel with a different sharing pattern.
func TestCCParallelMatchesDeterministicLU(t *testing.T) {
	w := workload.NewLU(8)
	md := newTestMachine(t, w, 4)
	det := MustRun(md, RunConfig{Scheme: CycleByCycle(), Seed: 3})
	mp := newTestMachine(t, w, 4)
	par, err := RunParallel(mp, RunConfig{Scheme: CycleByCycle()})
	if err != nil {
		t.Fatal(err)
	}
	if det.Cycles != par.Cycles || det.Committed != par.Committed {
		t.Errorf("LU CC host mismatch: %d/%d vs %d/%d",
			det.Cycles, det.Committed, par.Cycles, par.Committed)
	}
}
