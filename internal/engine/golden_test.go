package engine

import (
	"testing"

	"slacksim/internal/workload"
)

// TestGoldenCCCycles pins the gold-standard (cycle-by-cycle) results of
// every kernel on the paper's 8-core target. Cycle-by-cycle simulation is
// bit-deterministic across hosts, seeds and chunk sizes, so these exact
// values guard the whole stack — ISA semantics, pipeline timing, MESI
// transitions, bus/L2 latencies, barrier/lock visibility — against
// accidental behavioural change. An intentional model change must update
// this table (and revalidate EXPERIMENTS.md).
func TestGoldenCCCycles(t *testing.T) {
	golden := []struct {
		workload  string
		cycles    int64
		committed uint64
	}{
		{"barnes", 9245, 34576},
		{"fft", 7220, 41192},
		{"lu", 7337, 16505},
		{"water", 13346, 24160},
		{"ocean", 2698, 12456},
	}
	for _, g := range golden {
		g := g
		t.Run(g.workload, func(t *testing.T) {
			w, err := workload.ByName(g.workload, 1)
			if err != nil {
				t.Fatal(err)
			}
			m := newTestMachine(t, w, 8)
			res := MustRun(m, RunConfig{Scheme: CycleByCycle(), Seed: 1})
			if res.Cycles != g.cycles || res.Committed != g.committed {
				t.Errorf("CC result moved: %d cycles / %d insts, golden %d / %d",
					res.Cycles, res.Committed, g.cycles, g.committed)
			}
			if v, ok := w.(workload.Verifier); ok {
				if err := v.Verify(m.Memory()); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
