package engine

import (
	"testing"

	"slacksim/internal/workload"
)

func newTestMachine(t *testing.T, w Workload, cores int) *Machine {
	t.Helper()
	cfg := MachineConfig{NumCores: cores}
	m, err := NewMachine(cfg, w)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func TestSmokePrivateCC(t *testing.T) {
	w := workload.NewPrivate(64, 2)
	m := newTestMachine(t, w, 2)
	res, err := Run(m, RunConfig{Scheme: CycleByCycle(), Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Committed == 0 {
		t.Fatalf("nothing committed")
	}
	if err := w.VerifyCores(m.Memory(), 2); err != nil {
		t.Fatalf("verify: %v", err)
	}
	t.Logf("%s", res)
}

func TestSmokeFalseShareUnbounded(t *testing.T) {
	w := workload.NewFalseShare(64)
	m := newTestMachine(t, w, 4)
	res, err := Run(m, RunConfig{Scheme: UnboundedSlack(), Seed: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := w.VerifyCores(m.Memory(), 4); err != nil {
		t.Fatalf("verify: %v", err)
	}
	t.Logf("%s", res)
}
