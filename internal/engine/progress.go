package engine

import "errors"

// ErrInterrupted reports that a run was stopped early because
// RunConfig.Interrupt was raised (for example when a service cancels a
// running job). The machine state is left mid-run and must be discarded.
var ErrInterrupted = errors.New("engine: run interrupted")

// DefaultProgressEvery is the default minimum global-time advance, in
// simulated cycles, between two OnProgress deliveries.
const DefaultProgressEvery = 1024

// Progress is a snapshot of a run's forward motion, delivered through
// RunConfig.OnProgress. Counter is the same monotone progress counter the
// parallel host's stall watchdog polls (the sum of every core's local
// time, committed instructions, and retirement flag), so an external
// observer and the watchdog always agree on whether the run is moving.
type Progress struct {
	// Cycles is the global time (the minimum active local time).
	Cycles int64 `json:"cycles"`
	// Committed is the total committed instruction count across cores.
	Committed uint64 `json:"committed"`
	// Counter is the monotone progress counter (see the type comment).
	Counter uint64 `json:"counter"`
}

// progressNotifier rate-limits and monotonizes OnProgress deliveries. It
// is single-goroutine state: the deterministic host calls maybe from its
// run loop and the parallel host only from the manager goroutine, so the
// callback never runs concurrently with itself.
type progressNotifier struct {
	fn            func(Progress)
	every         int64
	fired         bool
	lastGlobal    int64
	lastCounter   uint64
	lastCommitted uint64
}

func newProgressNotifier(cfg RunConfig) *progressNotifier {
	if cfg.OnProgress == nil {
		return nil
	}
	every := cfg.ProgressEvery
	if every <= 0 {
		every = DefaultProgressEvery
	}
	return &progressNotifier{fn: cfg.OnProgress, every: every}
}

// maybe delivers a snapshot when the run has advanced at least `every`
// global cycles since the last delivery, the counter strictly increased,
// and neither the global time nor the committed count went backwards (a
// rollback restore rewinds all three; those windows are silently skipped
// so subscribers always observe a monotone sequence). The first call
// always fires, giving subscribers an immediate baseline.
func (p *progressNotifier) maybe(global int64, committed, counter uint64) {
	if p == nil {
		return
	}
	if p.fired {
		if global < p.lastGlobal+p.every {
			return
		}
		if counter <= p.lastCounter || committed < p.lastCommitted {
			return
		}
	}
	p.fired = true
	p.lastGlobal = global
	p.lastCounter = counter
	p.lastCommitted = committed
	p.fn(Progress{Cycles: global, Committed: committed, Counter: counter})
}

// progressCounter is the deterministic host's analogue of the parallel
// host's watchdog counter: the same formula over the same quantities, so
// tests can assert the two hosts report comparable motion.
func (r *detRun) progressCounter() uint64 {
	var p uint64
	for i, c := range r.m.cores {
		p += uint64(c.Now())
		p += c.Stats().Committed
		if r.retired[i] {
			p++
		}
	}
	return p
}

// interrupted reports whether the external interrupt flag is raised.
func (cfg RunConfig) interrupted() bool {
	return cfg.Interrupt != nil && cfg.Interrupt.Load()
}
