package engine

import (
	"slacksim/internal/adaptive"
	"slacksim/internal/core"
	"slacksim/internal/event"
	"slacksim/internal/mem"
	"slacksim/internal/syncctl"
	"slacksim/internal/trace"
	"slacksim/internal/uncore"
	"slacksim/internal/violation"
)

// globalSnapshot is a consistent copy of the entire simulation: every core
// thread's state, the manager's state (uncore + queued work), target
// memory, workload synchronization, violation accounting, and the engine's
// own pacing state. It plays the role of the paper's set of fork()ed
// processes forming a global checkpoint (Section 5.1); an in-process deep
// copy has the same cost structure and is portable.
type globalSnapshot struct {
	global  int64
	bound   int64
	retired []bool

	cores []*core.Snapshot
	unc   *uncore.Snapshot
	mem   *mem.Memory
	sync  *syncctl.Controller
	det   *violation.Detector
	ctrl  *adaptive.Controller

	inQs [][]event.Msg
	outs [][]event.Request
	gq   []pendingReq

	lastAdapt int64
	words     int64
}

// takeCheckpoint captures the current simulation state, replacing the
// previous checkpoint (old checkpoints are discarded as the paper does to
// release resources).
func (r *detRun) takeCheckpoint() {
	s := &globalSnapshot{
		global:    r.global,
		bound:     r.bound,
		retired:   append([]bool(nil), r.retired...),
		unc:       r.m.unc.Snapshot(),
		mem:       r.m.mem.Snapshot(),
		sync:      r.m.sync.Snapshot(),
		det:       r.m.det.Snapshot(),
		lastAdapt: r.lastAdapt,
		gq:        append([]pendingReq(nil), r.gq...),
	}
	if r.ctrl != nil {
		s.ctrl = r.ctrl.Snapshot()
	}
	words := int64(r.m.mem.AllocatedWords() + r.m.unc.StateWords())
	for _, c := range r.m.cores {
		cs := c.Snapshot()
		s.cores = append(s.cores, cs)
		words += int64(cs.StateWords())
	}
	for i := range r.m.inQs {
		s.inQs = append(s.inQs, r.m.inQs[i].Snapshot())
		s.outs = append(s.outs, r.m.outQs[i].Snapshot())
	}
	s.words = words
	r.snap = s
	r.ckpts++
	r.ckptWords += words
	r.meter.ckptWords += words
	r.cfg.Tracer.Addf(r.global, -1, trace.Checkpoint, "#%d words=%d", r.ckpts, words)
}

// doRollback restores the last checkpoint and enters cycle-by-cycle replay
// until the next checkpoint boundary to guarantee forward progress.
func (r *detRun) doRollback() {
	s := r.snap
	r.pendingRollback = false
	r.rollbacks++
	r.wasted += r.global - s.global
	r.cfg.Tracer.Addf(r.global, -1, trace.Rollback,
		"#%d to @%d (wasted %d cycles)", r.rollbacks, s.global, r.global-s.global)

	r.global = s.global
	r.bound = s.bound
	copy(r.retired, s.retired)
	r.lastAdapt = s.lastAdapt
	r.gq = append(r.gq[:0], s.gq...)
	r.m.unc.Restore(s.unc)
	r.m.mem.Restore(s.mem)
	r.m.sync.Restore(s.sync)
	r.m.det.Restore(s.det)
	if r.ctrl != nil && s.ctrl != nil {
		r.ctrl.Restore(s.ctrl)
	}
	for i, c := range r.m.cores {
		c.Restore(s.cores[i])
		r.m.inQs[i].Restore(s.inQs[i])
		r.m.outQs[i].Restore(s.outs[i])
	}
	r.meter.rbackWords += s.words

	// Replay in cycle-by-cycle mode until the boundary we were heading
	// for; the new checkpoint there resumes slack simulation.
	r.replayUntil = r.nextCkpt
}
