package engine

import (
	"slacksim/internal/adaptive"
	"slacksim/internal/core"
	"slacksim/internal/event"
	"slacksim/internal/mem"
	"slacksim/internal/syncctl"
	"slacksim/internal/trace"
	"slacksim/internal/uncore"
	"slacksim/internal/violation"
)

// globalSnapshot is a consistent copy of the entire simulation: every core
// thread's state, the manager's state (uncore + queued work), target
// memory, workload synchronization, violation accounting, and the engine's
// own pacing state. It plays the role of the paper's set of fork()ed
// processes forming a global checkpoint (Section 5.1).
//
// Two checkpoint implementations maintain it. The reference path
// (RunConfig.DeepCheckpoint) builds a fresh deep copy at every boundary,
// like re-fork()ing the whole process set. The default incremental path
// exploits that consecutive checkpoints share most of their state — the
// copy-on-write behavior fork() gets from the kernel for free — by keeping
// ONE evolving snapshot and, at each boundary, copying back only state
// dirtied since the previous one (dirty cache sets, dirty status-map
// lines, dirty memory pages, versioned MSHR files). Rollback applies the
// same dirty sets as an undo log. Both paths yield byte-identical Results:
// the cost model's checkpoint words measure the simulated fork cost, which
// is computed from the same state-size formulas either way.
type globalSnapshot struct {
	global  int64
	bound   int64
	retired []bool

	cores []*core.Snapshot
	unc   *uncore.Snapshot
	mem   *mem.Memory
	sync  *syncctl.Controller
	det   *violation.Detector
	ctrl  *adaptive.Controller

	inQs [][]event.Msg
	outs [][]event.Request
	gq   []pendingReq

	lastAdapt int64
	words     int64
}

// takeCheckpoint captures the current simulation state, replacing the
// previous checkpoint (old checkpoints are discarded as the paper does to
// release resources).
//
//slacksim:hotpath
func (r *detRun) takeCheckpoint() {
	incremental := !r.cfg.DeepCheckpoint
	if r.snap == nil || !incremental {
		r.snap = r.fullSnapshot()
		if incremental {
			// From now on every boundary needs only the dirty state.
			r.m.startTracking()
		}
	} else {
		r.syncCheckpoint(r.snap)
	}
	s := r.snap

	// Checkpoint words are computed from the same formulas on both paths
	// (the synced snapshot's lengths equal the live machine's), keeping
	// HostWorkUnits — and therefore Results — identical.
	words := int64(r.m.mem.AllocatedWords() + r.m.unc.StateWords())
	for _, cs := range s.cores {
		words += int64(cs.StateWords())
	}
	s.words = words
	r.ckpts++
	r.ckptWords += words
	r.meter.ckptWords += words
	if r.cfg.MemRecorder != nil {
		// Mark the retire streams so a rollback can truncate exactly the
		// state the engine restore discards.
		r.cfg.MemRecorder.Checkpoint()
	}
	if r.cfg.Tracer.Enabled() {
		r.cfg.Tracer.Addf(r.global, -1, trace.Checkpoint, "#%d words=%d", r.ckpts, words)
	}
}

// fullSnapshot deep-copies everything (the reference path, and the first
// checkpoint of the incremental path) into the machine's pooled snapshot
// graph: every boundary recycles the same backing arrays and component
// snapshots instead of rebuilding the graph from scratch.
func (r *detRun) fullSnapshot() *globalSnapshot {
	s := r.m.snapGraph()
	s.global = r.global
	s.bound = r.bound
	s.retired = append(s.retired[:0], r.retired...)
	s.lastAdapt = r.lastAdapt
	s.gq = append(s.gq[:0], r.gq...)
	r.m.unc.SnapshotInto(s.unc)
	r.m.mem.SnapshotInto(s.mem)
	r.m.sync.SnapshotInto(s.sync)
	r.m.det.CopyInto(s.det)
	if r.ctrl == nil {
		s.ctrl = nil
	} else if s.ctrl == nil {
		s.ctrl = r.ctrl.Snapshot()
	} else {
		s.ctrl.Restore(r.ctrl)
	}
	for i, c := range r.m.cores {
		c.SnapshotInto(s.cores[i])
	}
	for i := range r.m.inQs {
		s.inQs[i] = r.m.inQs[i].SnapshotInto(s.inQs[i])
		s.outs[i] = r.m.outQs[i].SnapshotInto(s.outs[i])
	}
	return s
}

// syncCheckpoint brings the evolving snapshot up to date by copying only
// dirty component state; engine-level slices are small and refreshed into
// reused backing arrays. The synchronization controller and the violation
// detector copy in place, reusing the snapshot's maps — their state is
// tiny and has no single mutation funnel to track, so the whole state is
// the copy set at every boundary.
//
//slacksim:hotpath
func (r *detRun) syncCheckpoint(s *globalSnapshot) {
	s.global = r.global
	s.bound = r.bound
	s.retired = append(s.retired[:0], r.retired...)
	s.lastAdapt = r.lastAdapt
	s.gq = append(s.gq[:0], r.gq...)
	r.m.unc.SyncSnapshot(s.unc)
	r.m.mem.SyncSnapshot(s.mem)
	r.m.sync.SyncSnapshot(s.sync)
	r.m.det.CopyInto(s.det)
	if r.ctrl != nil {
		if s.ctrl == nil {
			s.ctrl = r.ctrl.Snapshot()
		} else {
			s.ctrl.Restore(r.ctrl)
		}
	}
	for i, c := range r.m.cores {
		c.SyncSnapshot(s.cores[i])
	}
	for i := range r.m.inQs {
		s.inQs[i] = r.m.inQs[i].SnapshotInto(s.inQs[i])
		s.outs[i] = r.m.outQs[i].SnapshotInto(s.outs[i])
	}
}

// doRollback restores the last checkpoint and enters cycle-by-cycle replay
// until the next checkpoint boundary to guarantee forward progress.
//
//slacksim:hotpath
func (r *detRun) doRollback() {
	s := r.snap
	r.pendingRollback = false
	r.rollbacks++
	r.wasted += r.global - s.global
	if r.cfg.Tracer.Enabled() {
		r.cfg.Tracer.Addf(r.global, -1, trace.Rollback,
			"#%d to @%d (wasted %d cycles)", r.rollbacks, s.global, r.global-s.global)
	}

	r.global = s.global
	r.bound = s.bound
	copy(r.retired, s.retired)
	r.lastAdapt = s.lastAdapt
	r.gq = append(r.gq[:0], s.gq...)
	if r.cfg.DeepCheckpoint {
		r.m.unc.Restore(s.unc)
		r.m.mem.Restore(s.mem)
	} else {
		// Undo only the state dirtied since the boundary.
		r.m.unc.RestoreDirty(s.unc)
		r.m.mem.RestoreDirty(s.mem)
	}
	r.m.sync.Restore(s.sync)
	r.m.det.Restore(s.det)
	if r.ctrl != nil && s.ctrl != nil {
		r.ctrl.Restore(s.ctrl)
	}
	for i, c := range r.m.cores {
		if r.cfg.DeepCheckpoint {
			c.Restore(s.cores[i])
		} else {
			c.RestoreIncremental(s.cores[i])
		}
		r.m.inQs[i].Restore(s.inQs[i])
		r.m.outQs[i].Restore(s.outs[i])
	}
	r.meter.rbackWords += s.words
	if r.cfg.MemRecorder != nil {
		// Drop everything recorded since the checkpoint; the replay below
		// re-records the window as it re-commits.
		r.cfg.MemRecorder.Rollback()
	}

	// Replay in cycle-by-cycle mode until the boundary we were heading
	// for; the new checkpoint there resumes slack simulation.
	r.replayUntil = r.nextCkpt
}
