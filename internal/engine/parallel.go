package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"slacksim/internal/adaptive"
	"slacksim/internal/event"
	"slacksim/internal/trace"
	"slacksim/internal/violation"
)

// p2pState is one core thread's Lax-P2P bookkeeping (owned by that
// goroutine; partner clocks are read through the shared atomics).
type p2pState struct {
	rng     *rand.Rand
	next    int64
	partner int
	blocked bool
}

// parRun is the state of one goroutine-parallel run: one goroutine per
// target core plus the simulation manager goroutine, mirroring the paper's
// Pthreads architecture (a simulation of an 8-core target is nine host
// threads). Pacing uses the paper's protocol: each core thread owns a
// local time it may advance while it stays below its max local time; the
// manager recomputes the global time (the minimum local time) and raises
// the max local times according to the scheme.
//
// Memory-model contract (the invariants the pacing protocol relies on).
// Pacing is an eventcount (epoch/atomic) protocol: the fast path is
// lock-free on both sides, and mu/cond serve only as the futex-style slow
// path for cores that have exhausted their spin budget. DESIGN.md §13
// gives the full protocol and its lost-wakeup proof; the invariants are:
//
//   - localTime[i], committed[i] and retired[i] are written only by core
//     i's goroutine and read by the manager and watchdog through the
//     atomics; maxLocal[i] is written only by the manager (and once at
//     startup before the core goroutines exist) and read by core i.
//     All are Go atomics, which are sequentially consistent.
//   - stop is sticky: it transitions false→true exactly once.
//   - A publication (any write that can unpark a core: raising
//     maxLocal[i], or setting stop) is: store the state atomically, bump
//     epoch, then — only if waiters != 0 — Broadcast *while holding mu*.
//   - A core parks by: incrementing waiters, acquiring mu, re-testing
//     stop/maxLocal, and only then blocking in cond.Wait. The seq-cst
//     total order makes the waiters gate safe: if the publisher read
//     waiters == 0, the waiter's increment came later, so the waiter's
//     re-test (later still) sees the published state and never blocks;
//     if the publisher read waiters != 0, its Broadcast runs under mu
//     and therefore cannot land between the waiter's re-test and its
//     Wait (the waiter holds mu across that window).
//   - epoch orders publications for spinning cores: a spin loop may use
//     a stale epoch only to spin longer, never to miss state (it re-reads
//     maxLocal/stop directly each iteration).
//   - parked[i] is guarded by mu; it is only meaningful while core i
//     holds mu or is blocked in cond.Wait. The manager's checkpoint
//     quiesce reads it under mu, which also blocks parked cores from
//     resuming mid-inspection (they must reacquire mu to leave Wait).
//   - global is owned by the manager goroutine; globalNow mirrors it for
//     the watchdog. gqDepth mirrors the pending-request count the same
//     way.
type parRun struct {
	m   *Machine
	cfg RunConfig

	localTime []atomic.Int64
	maxLocal  []atomic.Int64
	committed []atomic.Uint64
	retired   []atomic.Bool
	stop      atomic.Bool

	// epoch counts pacing publications (maxLocal raises and shutdown);
	// waiters counts cores committed to the futex-style slow path. See
	// the memory-model contract above and publish/waitForPacing below.
	epoch   atomic.Uint64
	waiters atomic.Int32

	// interrupt caches cfg.Interrupt so the hot loops poll one pointer
	// instead of copying the whole config (which would race with the
	// test idiom of tweaking r.cfg before goroutines observe it).
	interrupt *atomic.Bool

	// mu/cond park core goroutines that hit their max local time; parked
	// tracks which cores are waiting so the manager can quiesce the
	// machine for a global checkpoint.
	mu     sync.Mutex
	cond   *sync.Cond
	parked []bool // guarded by mu

	// kick wakes the manager when a core produced work or blocked.
	kick chan struct{}

	suspensions atomic.Uint64

	// gq holds pending requests for eager servicing and doubles as the
	// reused collection scratch for conservative servicing, where the
	// pending set itself lives in bands (bucketed by timestamp band, so
	// each service pass touches only the requests at the horizon instead
	// of sorting the whole backlog).
	gq      []pendingReq
	bands   *event.Bands[pendingReq]
	arrival uint64
	meter   costMeter
	global  int64
	prog    *progressNotifier

	// globalNow and gqDepth mirror global and len(gq) for the watchdog;
	// stallErr is published by the watchdog before it force-stops the run.
	globalNow atomic.Int64
	gqDepth   atomic.Int64
	stallErr  atomic.Pointer[StallError]

	ctrl      *adaptive.Controller
	bound     int64
	lastAdapt int64

	nextCkpt  int64
	ckpts     int
	ckptWords int64

	// ckptInit records that the first checkpoint populated the machine's
	// pooled snapshot graph (subsequent incremental boundaries sync only
	// the dirty state into it); drainBuf is reused merge scratch.
	ckptInit bool
	drainBuf []event.Request
}

// gqBandShift sets the banded pending queue's granularity (1<<shift
// cycles per band): small enough that a conservative service pass filters
// at most one boundary band, large enough that the window stays a handful
// of bands under CC pacing.
const gqBandShift = 4

// sortPending orders queued requests by (timestamp, core, arrival), the
// target machine's arbitration order used for conservative servicing.
func sortPending(gq []pendingReq) {
	slices.SortFunc(gq, func(pa, pb pendingReq) int {
		if pa.req.TS != pb.req.TS {
			if pa.req.TS < pb.req.TS {
				return -1
			}
			return 1
		}
		if pa.req.Core != pb.req.Core {
			return pa.req.Core - pb.req.Core
		}
		if pa.arr != pb.arr {
			if pa.arr < pb.arr {
				return -1
			}
			return 1
		}
		return 0
	})
}

// RunParallel simulates the machine under cfg with the goroutine host and
// returns the results. Rollback is only available on the deterministic
// host (the paper likewise evaluates speculation analytically on top of
// measured checkpointing overhead); periodic checkpointing is supported.
func RunParallel(m *Machine, cfg RunConfig) (Results, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	if cfg.Rollback {
		return Results{}, fmt.Errorf("engine: rollback is only supported on the deterministic host")
	}
	if cfg.Sampling != nil {
		return Results{}, fmt.Errorf("engine: sampling is only supported on the deterministic host")
	}
	n := m.NumCores()
	r := &parRun{
		m:         m,
		cfg:       cfg,
		localTime: make([]atomic.Int64, n),
		maxLocal:  make([]atomic.Int64, n),
		committed: make([]atomic.Uint64, n),
		retired:   make([]atomic.Bool, n),
		parked:    make([]bool, n),
		kick:      make(chan struct{}, 1),
		bound:     cfg.Scheme.Bound,
		prog:      newProgressNotifier(cfg),
		interrupt: cfg.Interrupt,
	}
	r.cond = sync.NewCond(&r.mu)
	if cfg.Scheme.conservative() {
		r.bands = event.NewBands[pendingReq](gqBandShift)
	}
	if cfg.Scheme.Kind == Adaptive {
		ctrl, err := adaptive.New(cfg.Scheme.Adaptive)
		if err != nil {
			return Results{}, err
		}
		ctrl.SetPolicy(cfg.AdaptivePolicy)
		r.ctrl = ctrl
		r.bound = ctrl.Bound()
	}
	if len(cfg.TrackIntervals) > 0 {
		m.Detector().TrackIntervals(cfg.TrackIntervals...)
	}
	if len(cfg.Selected) > 0 {
		m.Detector().Select(cfg.Selected...)
	}
	if cfg.CheckpointInterval > 0 {
		r.nextCkpt = cfg.CheckpointInterval
	}
	// The event ring is written only by the manager goroutine (uncore
	// services and manager-side events); it is read again only after the
	// run's goroutines have joined, so no locking is needed.
	m.unc.SetTracer(cfg.Tracer)
	setRecorders(m, cfg)
	ml := r.maxLocalNow()
	for i := 0; i < n; i++ {
		r.maxLocal[i].Store(ml)
	}

	start := time.Now() //lint:allow determinism -- host wall-time feeds Results.HostDuration (a measurement), never simulated state
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.coreLoop(i)
		}(i)
	}
	var wdDone chan struct{}
	if cfg.StallTimeout > 0 {
		wdDone = make(chan struct{})
		go r.watchdog(wdDone)
	}
	r.managerLoop()
	// The manager already broadcast stop via shutdown(); repeat it here so
	// the exit does not depend on which return path the manager took.
	r.shutdown()
	wg.Wait()
	if wdDone != nil {
		close(wdDone)
	}
	if serr := r.stallErr.Load(); serr != nil {
		// Attach the trace tail now that every goroutine has joined and
		// the ring is quiescent: the last events before the wedge are the
		// first thing a diagnosis needs.
		serr.attachTrace(cfg.Tracer)
		return Results{}, serr
	}
	if cfg.interrupted() {
		// The interrupt raced the natural end of the run; either way the
		// caller asked for cancellation, so the outcome is ErrInterrupted.
		return Results{}, ErrInterrupted
	}
	// Trailing work issued just before the cores stopped.
	r.drainAll()
	r.recomputeGlobal()
	r.serviceAll()
	return r.results(time.Since(start)), nil //lint:allow determinism -- host wall-time feeds Results.HostDuration (a measurement), never simulated state
}

// shutdown raises stop and wakes every parked core. Shutdown is rare, so
// it broadcasts unconditionally (no waiters gate): the store happens
// before the broadcast, and the broadcast is under mu, so a core between
// its park re-test and cond.Wait cannot miss the wakeup (it holds mu
// across that window; see the memory-model contract).
func (r *parRun) shutdown() {
	r.stop.Store(true)
	r.epoch.Add(1)
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// publish makes a pacing change (new maxLocal values) visible: bump the
// epoch, then wake the slow-path waiters if there are any. The fast path
// — no core parked — is two atomic operations and never touches mu.
//
//slacksim:hotpath
func (r *parRun) publish() {
	r.epoch.Add(1)
	if r.waiters.Load() == 0 {
		// Every core is running or spinning; spinners re-read the pacing
		// atomics directly, and any core that parks after this point
		// re-tests them before blocking (see waitForPacing).
		return
	}
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// maxLocalNow computes the scheme's current max local time, clamped to
// the simulation horizon (MaxCycles) and the next checkpoint boundary so
// no core thread can ever tick past either wall.
func (r *parRun) maxLocalNow() int64 {
	ml := maxLocalFor(r.cfg.Scheme.Kind, r.global, r.bound, r.cfg.Scheme.Quantum)
	if ml > r.cfg.MaxCycles {
		ml = r.cfg.MaxCycles
	}
	if r.nextCkpt > 0 && ml > r.nextCkpt {
		ml = r.nextCkpt
	}
	return ml
}

// kickManager wakes the manager without blocking the core.
func (r *parRun) kickManager() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// parkHook, when non-nil, is called by a core goroutine after it has
// evaluated its park predicate (stop observed false, clock at the wall)
// and before it blocks in cond.Wait, while holding mu. Liveness tests use
// it to hold a core captive inside exactly the lost-wakeup window and
// prove a broadcast issued under mu cannot land there. Always nil in
// production runs.
var parkHook func(core int)

// parkSpinYields is the spin budget a core burns (as runtime.Gosched
// yields, so the manager gets the CPU even on a single-processor host)
// before falling back to the futex-style park. Pacing raises normally
// land within a few manager iterations, so most wall hits resolve in the
// spin phase without ever touching mu.
const parkSpinYields = 32

// pacingClear reports whether core i may advance again: the run is
// stopping (the episode ends and the outer loop exits) or the wall has
// been raised past the core's clock.
//
//slacksim:hotpath
func (r *parRun) pacingClear(i int, now int64) bool {
	return r.stop.Load() || now < r.maxLocal[i].Load()
}

// waitForPacing is one wall-hit episode for core i: kick the manager,
// spin-then-park until the wall rises or the run stops. The suspension
// counter counts episodes, not wakeups.
func (r *parRun) waitForPacing(i int, now int64) {
	r.suspensions.Add(1)
	r.kickManager()
	for n := 0; n < parkSpinYields; n++ {
		if r.pacingClear(i, now) {
			return
		}
		runtime.Gosched()
	}
	// Futex-style slow path. The waiters increment must precede the mu
	// re-test: a publisher that observed waiters == 0 (and so skipped its
	// broadcast) published strictly before this increment in the seq-cst
	// order, so the re-test below sees its state and never blocks.
	e := r.epoch.Load()
	r.waiters.Add(1)
	r.mu.Lock()
	r.parked[i] = true
	r.kickManager() // the manager may be waiting on parked[i] to quiesce
	for r.epoch.Load() == e && !r.pacingClear(i, now) {
		if parkHook != nil {
			parkHook(i)
		}
		r.cond.Wait()
	}
	// The epoch moved or the wall rose; either way re-test from the core
	// loop (an epoch bump always implies new pacing state or shutdown).
	r.parked[i] = false
	r.mu.Unlock()
	r.waiters.Add(-1)
}

// coreLoop is one core thread: advance while below the max local time,
// park when the wall is hit, exit on halt or stop.
func (r *parRun) coreLoop(i int) {
	c := r.m.cores[i]
	var p2p *p2pState
	// LaxP2P pairing needs a partner to pick; on a single-core machine the
	// gate degenerates to free-running (and Intn(0) would panic).
	if r.cfg.Scheme.Kind == LaxP2P && len(r.localTime) > 1 {
		p2p = &p2pState{
			rng:     rand.New(rand.NewSource(r.cfg.Seed + int64(i)*7919)),
			next:    r.cfg.Scheme.SyncPeriod,
			partner: -1,
		}
	}
	for !r.stop.Load() {
		if r.interruptedNow() {
			// Keep the manager awake until it observes the interrupt and
			// shuts the run down; parked cores are woken by the shutdown
			// broadcast, running ones funnel through here.
			r.kickManager()
			runtime.Gosched()
			continue
		}
		if p2p != nil && !r.p2pGate(i, c.Now(), p2p) {
			// Blocked at a pairwise sync: yield until the partner catches
			// up (polling keeps the pairing protocol wait-free).
			runtime.Gosched()
			continue
		}
		if c.Now() < r.maxLocal[i].Load() {
			before := r.m.outQs[i].Len()
			c.Tick()
			r.localTime[i].Store(c.Now())
			r.committed[i].Store(c.Stats().Committed)
			if r.m.outQs[i].Len() > before {
				r.kickManager()
			}
			if c.Halted() {
				r.retired[i].Store(true)
				r.kickManager()
				return
			}
			continue
		}
		// Suspend until the manager raises the max local time. This is
		// the synchronization cost cycle-by-cycle simulation pays every
		// cycle and unbounded slack never pays.
		r.waitForPacing(i, c.Now())
	}
}

// p2pGate evaluates one core's Lax-P2P synchronization: true when the
// core may advance. At each sync point it picks a random partner and
// waits while it is more than P2PMaxAhead cycles past it. The globally
// slowest core is never gated, so the protocol cannot deadlock.
func (r *parRun) p2pGate(i int, now int64, s *p2pState) bool {
	if now < s.next {
		return true
	}
	if s.partner < 0 {
		p := s.rng.Intn(len(r.localTime) - 1)
		if p >= i {
			p++
		}
		s.partner = p
	}
	if !r.retired[s.partner].Load() &&
		r.localTime[s.partner].Load() < now-r.cfg.Scheme.P2PMaxAhead {
		if !s.blocked {
			s.blocked = true
			r.suspensions.Add(1)
		}
		return false
	}
	s.next += r.cfg.Scheme.SyncPeriod
	s.partner = -1
	s.blocked = false
	return true
}

// managerLoop consolidates OutQ entries into the GQ, services them,
// maintains the global time, paces the cores, runs the adaptive
// controller, and takes checkpoints at boundaries.
func (r *parRun) managerLoop() {
	for {
		<-r.kick
		if r.stop.Load() {
			// The watchdog force-stopped the run while the manager was
			// waiting for work.
			return
		}
		for {
			r.drainAll()
			r.recomputeGlobal()
			r.service()
			r.adapt()
			r.prog.maybe(r.global, r.committedNow(), r.progress())
			if r.stop.Load() || r.interruptedNow() || r.doneNow() {
				r.shutdown()
				return
			}
			if r.nextCkpt > 0 && r.global == r.nextCkpt && !r.tryCheckpoint() {
				// Wait for the stragglers to park at the boundary.
			}
			// Raise the max local times: lock-free stores followed by one
			// publication. Spinning cores observe the stores directly; a
			// core headed for the slow path re-tests them before blocking
			// (see the memory-model contract), so no mu is taken here
			// unless a waiter is actually parked.
			ml := r.maxLocalNow()
			changed := false
			for i := range r.maxLocal {
				if r.maxLocal[i].Load() != ml {
					r.maxLocal[i].Store(ml)
					changed = true
				}
			}
			if changed {
				r.publish()
			}
			if r.quietQueues() {
				break
			}
		}
	}
}

func (r *parRun) quietQueues() bool {
	for i := range r.m.outQs {
		if r.m.outQs[i].Len() > 0 {
			return false
		}
	}
	return true
}

// committedNow sums the per-core committed-instruction mirrors.
// interruptedNow reports whether the run's cancellation flag is raised.
// It reads the cached pointer, never r.cfg, so core goroutines can poll
// it without touching the (non-atomic) config struct.
func (r *parRun) interruptedNow() bool {
	return r.interrupt != nil && r.interrupt.Load()
}

func (r *parRun) committedNow() uint64 {
	var n uint64
	for i := range r.committed {
		n += r.committed[i].Load()
	}
	return n
}

func (r *parRun) doneNow() bool {
	if r.global >= r.cfg.MaxCycles {
		return true
	}
	if r.cfg.MaxInstructions > 0 && r.committedNow() >= r.cfg.MaxInstructions {
		return true
	}
	for i := range r.retired {
		if !r.retired[i].Load() {
			return false
		}
	}
	return true
}

func (r *parRun) recomputeGlobal() {
	min := int64(-1)
	for i := range r.localTime {
		if r.retired[i].Load() {
			continue
		}
		t := r.localTime[i].Load()
		if min < 0 || t < min {
			min = t
		}
	}
	if min >= 0 {
		r.global = min
		r.globalNow.Store(min)
	}
}

//slacksim:hotpath
func (r *parRun) drainAll() {
	for i := range r.m.outQs {
		r.drainBuf = r.m.outQs[i].DrainInto(r.drainBuf[:0])
		for _, req := range r.drainBuf {
			r.arrival++
			if r.bands != nil {
				r.bands.Add(req.TS, pendingReq{req: req, arr: r.arrival})
			} else {
				r.gq = append(r.gq, pendingReq{req: req, arr: r.arrival}) //lint:allow hotpathalloc -- gq's backing array is reused across boundaries (truncated to gq[:0] by service); growth is amortized
			}
		}
	}
	r.gqDepth.Store(int64(r.pendingLen()))
}

// pendingLen is the number of unserviced requests (banded or flat).
func (r *parRun) pendingLen() int {
	if r.bands != nil {
		return r.bands.Len()
	}
	return len(r.gq)
}

func (r *parRun) service() {
	if r.cfg.Scheme.conservative() {
		r.serviceConservative(r.global)
		return
	}
	for _, p := range r.gq {
		r.serveOne(p.req)
	}
	r.gq = r.gq[:0]
	r.gqDepth.Store(0)
}

// serviceConservative serves every pending request with TS < safeTime in
// the target's arbitration order. The pending set lives in time bands, so
// the collection touches only the requests at the horizon and the sort
// runs over exactly the batch being served — the far future is never
// scanned. The served sequence is identical to sorting the whole backlog
// and serving the prefix: TakeBelow returns exactly the set {TS <
// safeTime}, and (TS, core, arrival) is a total order.
func (r *parRun) serviceConservative(safeTime int64) {
	r.gq = r.bands.TakeBelow(safeTime, r.gq[:0])
	if len(r.gq) > 0 {
		sortPending(r.gq)
		for _, p := range r.gq {
			r.serveOne(p.req)
		}
		r.gq = r.gq[:0]
	}
	r.gqDepth.Store(int64(r.bands.Len()))
}

func (r *parRun) serviceAll() {
	if r.bands != nil {
		r.serviceConservative(unboundedSentinel)
		return
	}
	// Eager schemes keep a flat arrival-order gq; the trailing flush
	// serves it in arbitration order, as before.
	sortPending(r.gq)
	for _, p := range r.gq {
		r.serveOne(p.req)
	}
	r.gq = r.gq[:0]
	r.gqDepth.Store(0)
}

func (r *parRun) serveOne(req event.Request) {
	r.m.unc.Service(req)
	r.meter.events++
	if r.cfg.MeasureViolations {
		r.meter.violChecked++
	}
}

func (r *parRun) adapt() {
	if r.ctrl == nil {
		return
	}
	if r.global-r.lastAdapt < r.cfg.Scheme.Adaptive.Period {
		return
	}
	r.lastAdapt = r.global
	rate := r.m.det.Rate(r.global)
	before := r.bound
	r.bound = r.ctrl.Update(rate)
	r.meter.adaptOps++
	if r.bound != before && r.cfg.Tracer.Enabled() {
		r.cfg.Tracer.Addf(r.global, -1, trace.BoundChange,
			"rate=%.5f bound %d -> %d", rate, before, r.bound)
	}
}

// tryCheckpoint quiesces the machine at a checkpoint boundary and takes a
// global snapshot (the copies are made for real so the overhead is real;
// without rollback the snapshot is dropped, exactly like the paper's
// Table 2 runs where "checkpoints always succeed"). It returns false when
// some active core has not parked at the boundary yet.
//
//slacksim:hotpath
func (r *parRun) tryCheckpoint() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.parked {
		if r.retired[i].Load() {
			continue
		}
		if !r.parked[i] || r.localTime[i].Load() != r.nextCkpt {
			return false
		}
	}
	// All active cores are parked exactly at the boundary, so their state
	// is stable and the manager can copy it (the paper forks every
	// thread's process here instead). The copies are made for real so the
	// host-side overhead is real; checkpoint *words* (the simulated fork
	// cost charged by the cost model) are computed from the same state
	// sizes on both paths.
	words := int64(r.m.mem.AllocatedWords() + r.m.unc.StateWords())
	s := r.m.snapGraph()
	if r.cfg.DeepCheckpoint || !r.ckptInit {
		r.m.mem.SnapshotInto(s.mem)
		r.m.unc.SnapshotInto(s.unc)
		r.m.sync.SnapshotInto(s.sync)
		for i, c := range r.m.cores {
			c.SnapshotInto(s.cores[i])
			words += int64(s.cores[i].StateWords())
		}
		if !r.cfg.DeepCheckpoint {
			// First incremental checkpoint: subsequent boundaries sync only
			// the dirty state into the pooled snapshot graph. The track
			// flags are published to the parked core goroutines by mu.
			r.m.startTracking()
		}
		r.ckptInit = true
	} else {
		r.m.mem.SyncSnapshot(s.mem)
		r.m.unc.SyncSnapshot(s.unc)
		r.m.sync.SyncSnapshot(s.sync)
		for i, c := range r.m.cores {
			c.SyncSnapshot(s.cores[i])
			words += int64(s.cores[i].StateWords())
		}
	}
	r.ckpts++
	r.ckptWords += words
	r.meter.ckptWords += words
	if r.cfg.MemRecorder != nil {
		// Every core is parked at the boundary, so the retire streams are
		// stable and the marks are consistent with the snapshot.
		r.cfg.MemRecorder.Checkpoint()
	}
	if r.cfg.Tracer.Enabled() {
		r.cfg.Tracer.Addf(r.nextCkpt, -1, trace.Checkpoint, "ckpt %d (%d words)", r.ckpts, words)
	}
	r.nextCkpt += r.cfg.CheckpointInterval
	return true
}

// results assembles the Results for a finished parallel run.
func (r *parRun) results(wall time.Duration) Results {
	m := r.m
	det := m.Detector()
	r.meter.suspensions = r.suspensions.Load()
	var coreCycles int64
	for _, c := range m.cores {
		coreCycles += c.Stats().Cycles
	}
	r.meter.coreCycles = coreCycles
	res := Results{
		Workload: m.WorkloadName(),
		Scheme:   r.cfg.Scheme.Name(),
		Host:     "parallel",

		Cycles:    r.global,
		Committed: m.committed(),

		BusViolations:      det.Count(violation.Bus),
		MapViolations:      det.Count(violation.Map),
		WorkloadViolations: det.Count(violation.Workload),
		ViolationRate:      det.Rate(r.global),
		BusRate:            det.RateOf(violation.Bus, r.global),
		MapRate:            det.RateOf(violation.Map, r.global),
		Intervals:          det.Intervals(r.global),

		HostWorkUnits: r.meter.total(),
		WallClock:     wall,
		Suspensions:   r.meter.suspensions,
		EventsServed:  r.meter.events,

		Checkpoints:     r.ckpts,
		CheckpointWords: r.ckptWords,

		LockAcquires:    m.Sync().Acquires,
		LockContended:   m.Sync().Contended,
		BarrierEpisodes: m.Sync().BarrierEpisodes,
	}
	for _, c := range m.cores {
		res.PerCore = append(res.PerCore, c.Stats())
	}
	if res.Committed > 0 {
		res.CPI = float64(res.Cycles) * float64(m.NumCores()) / float64(res.Committed)
	}
	if r.ctrl != nil {
		res.FinalBound = r.ctrl.Bound()
		res.MeanBound = r.ctrl.MeanBound()
		res.Adjustments = r.ctrl.Adjustments
	}
	return res
}
