// Package engine implements the simulation kernel of SlackSim: the
// local-time / max-local-time / global-time pacing protocol, the slack
// schemes (cycle-by-cycle, bounded, unbounded, quantum, adaptive), and the
// speculative checkpoint/rollback machinery. Two hosts drive the same
// machine model: a seeded deterministic host that reproducibly emulates
// host-thread interleaving (used for accuracy experiments on any machine)
// and a goroutine-parallel host mirroring the paper's Pthreads
// implementation.
package engine

import (
	"fmt"

	"slacksim/internal/adaptive"
)

// SchemeKind selects the synchronization discipline between simulation
// threads.
type SchemeKind uint8

// Scheme kinds.
const (
	// CC is cycle-by-cycle simulation, the gold standard: every core
	// advances in lockstep and the manager services events conservatively
	// in timestamp order, so results are exact and deterministic.
	CC SchemeKind = iota
	// Bounded keeps all core clocks within a fixed slack bound of the
	// global time and services events eagerly.
	Bounded
	// Unbounded lets cores run free (the paper's SU).
	Unbounded
	// Quantum barriers all cores every Quantum cycles (WWT-II style),
	// servicing eagerly inside the quantum.
	Quantum
	// Adaptive is Bounded with the slack bound steered by the adaptive
	// controller to hold a target violation rate.
	Adaptive
	// LaxP2P is Graphite's random-pairwise synchronization, which the
	// paper singles out as an interesting approach to explore: every
	// SyncPeriod cycles a core picks a random other core and, if it has
	// run more than P2PMaxAhead cycles past it, waits for the partner to
	// catch up. There is no global wall at all.
	LaxP2P
)

// String names the scheme kind.
func (k SchemeKind) String() string {
	switch k {
	case CC:
		return "cycle-by-cycle"
	case Bounded:
		return "bounded"
	case Unbounded:
		return "unbounded"
	case Quantum:
		return "quantum"
	case Adaptive:
		return "adaptive"
	case LaxP2P:
		return "lax-p2p"
	}
	return fmt.Sprintf("SchemeKind(%d)", uint8(k))
}

// Scheme is a fully-parameterized synchronization scheme.
type Scheme struct {
	Kind SchemeKind
	// Bound is the slack bound for Bounded.
	Bound int64
	// Quantum is the barrier period for Quantum.
	Quantum int64
	// Adaptive configures the controller for Adaptive.
	Adaptive adaptive.Config
	// SyncPeriod and P2PMaxAhead configure LaxP2P.
	SyncPeriod, P2PMaxAhead int64
}

// CycleByCycle returns the gold-standard scheme.
func CycleByCycle() Scheme { return Scheme{Kind: CC} }

// BoundedSlack returns a bounded slack scheme with the given bound.
func BoundedSlack(bound int64) Scheme { return Scheme{Kind: Bounded, Bound: bound} }

// UnboundedSlack returns the SU scheme.
func UnboundedSlack() Scheme { return Scheme{Kind: Unbounded} }

// QuantumScheme returns a quantum simulation with period q.
func QuantumScheme(q int64) Scheme { return Scheme{Kind: Quantum, Quantum: q} }

// AdaptiveSlack returns an adaptive scheme with the given controller
// configuration.
func AdaptiveSlack(cfg adaptive.Config) Scheme { return Scheme{Kind: Adaptive, Adaptive: cfg} }

// LaxP2PScheme returns Graphite-style random-pairwise synchronization:
// every period cycles a core syncs with one random partner, waiting when
// it is more than maxAhead cycles past it.
func LaxP2PScheme(period, maxAhead int64) Scheme {
	return Scheme{Kind: LaxP2P, SyncPeriod: period, P2PMaxAhead: maxAhead}
}

// Validate reports scheme parameter errors.
func (s Scheme) Validate() error {
	switch s.Kind {
	case Bounded:
		if s.Bound < 1 {
			return fmt.Errorf("engine: bounded slack needs Bound >= 1, got %d", s.Bound)
		}
	case Quantum:
		if s.Quantum < 1 {
			return fmt.Errorf("engine: quantum needs Quantum >= 1, got %d", s.Quantum)
		}
	case Adaptive:
		return s.Adaptive.Validate()
	case LaxP2P:
		if s.SyncPeriod < 1 || s.P2PMaxAhead < 0 {
			return fmt.Errorf("engine: lax-p2p needs SyncPeriod >= 1 and P2PMaxAhead >= 0")
		}
	}
	return nil
}

// Name returns a short label for tables ("CC", "S5", "SU", "Q100",
// "adaptive").
func (s Scheme) Name() string {
	switch s.Kind {
	case CC:
		return "CC"
	case Bounded:
		return fmt.Sprintf("S%d", s.Bound)
	case Unbounded:
		return "SU"
	case Quantum:
		return fmt.Sprintf("Q%d", s.Quantum)
	case Adaptive:
		return "adaptive"
	case LaxP2P:
		return fmt.Sprintf("P2P%d", s.SyncPeriod)
	}
	return s.Kind.String()
}

// conservative reports whether the manager must hold events back and
// service them in timestamp order (exact simulation).
func (s Scheme) conservative() bool { return s.Kind == CC }

// unboundedSentinel is "infinitely far in the future" for max local times.
const unboundedSentinel = int64(1) << 62

// maxLocalFor computes the max local time for the scheme given the current
// global time and the current (possibly adaptive) bound.
func maxLocalFor(kind SchemeKind, global, bound, quantum int64) int64 {
	switch kind {
	case CC:
		return global + 1
	case Bounded, Adaptive:
		return global + bound
	case Unbounded:
		return unboundedSentinel
	case Quantum:
		return (global/quantum + 1) * quantum
	case LaxP2P:
		// Pairwise gating replaces the global wall entirely.
		return unboundedSentinel
	}
	return global + 1
}
