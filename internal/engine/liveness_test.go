package engine

// Liveness regressions for the goroutine-parallel host: the lost-wakeup
// shutdown race, the stall watchdog's structured dump, the MaxCycles
// horizon clamp, and the Lax-P2P single-core partner-pick panic.

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slacksim/internal/trace"
	"slacksim/internal/workload"
)

// newParkedRun builds a parRun whose cores park immediately (maxLocal
// stays 0) and starts their goroutines without a manager, exposing the
// park/stop interleaving directly.
func newParkedRun(t *testing.T, cores int) (*parRun, *sync.WaitGroup) {
	t.Helper()
	m := newTestMachine(t, workload.NewPrivate(4, 1), cores)
	r := &parRun{
		m:         m,
		cfg:       RunConfig{Scheme: CycleByCycle()}.withDefaults(),
		localTime: make([]atomic.Int64, cores),
		maxLocal:  make([]atomic.Int64, cores),
		committed: make([]atomic.Uint64, cores),
		retired:   make([]atomic.Bool, cores),
		parked:    make([]bool, cores),
		kick:      make(chan struct{}, 1),
	}
	r.cond = sync.NewCond(&r.mu)
	var wg sync.WaitGroup
	for i := 0; i < cores; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.coreLoop(i)
		}(i)
	}
	return r, &wg
}

// waitOrFatal fails the test if the core goroutines do not exit in time —
// the signature of a lost wakeup.
func waitOrFatal(t *testing.T, wg *sync.WaitGroup, msg string) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal(msg)
	}
}

// captiveHook installs a parkHook that reports when a core is inside the
// lost-wakeup window (park predicate evaluated with stop==false, cond.Wait
// not yet entered, mu held) and holds it there until release is closed.
func captiveHook(t *testing.T) (entered chan int, release chan struct{}) {
	t.Helper()
	entered = make(chan int, 16)
	release = make(chan struct{})
	parkHook = func(core int) {
		select {
		case entered <- core:
		default:
		}
		<-release
	}
	t.Cleanup(func() { parkHook = nil })
	return entered, release
}

// awaitWindow waits until a core reports it is captive in the park window.
func awaitWindow(t *testing.T, entered chan int) {
	t.Helper()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("core never reached the park window")
	}
}

// TestShutdownBroadcastNoLostWakeup forces the exact park/stop
// interleaving the unlocked Broadcast lost: a core is held captive between
// its park predicate (stop observed false) and cond.Wait while the test
// shuts the run down. The locked protocol must block on mu until the core
// is actually waiting, so the broadcast lands; the pre-fix code
// (stop.Store + Broadcast without mu) completes while the core is captive
// and leaves it asleep forever — which this test reports as a fatal
// timeout instead of hanging CI.
func TestShutdownBroadcastNoLostWakeup(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		entered, release := captiveHook(t)
		r, wg := newParkedRun(t, 1)
		awaitWindow(t, entered)
		sdDone := make(chan struct{})
		go func() {
			r.shutdown()
			close(sdDone)
		}()
		select {
		case <-sdDone:
			// Shutdown finished while the core was captive pre-Wait: its
			// broadcast can only have been issued without mu (the bug).
			close(release)
			waitOrFatal(t, wg, "unlocked shutdown broadcast was lost: core asleep forever")
			t.Fatal("shutdown completed while a core held mu inside the park window")
		case <-time.After(50 * time.Millisecond):
			// Correct: shutdown is blocked on mu until the core waits.
		}
		close(release)
		waitOrFatal(t, wg, "core goroutine missed the stop wakeup (lost wakeup)")
		<-sdDone
		parkHook = nil
	}
}

// TestMaxLocalRaiseNoLostWakeup forces the same window against the
// manager's other wakeup path: raising the max local times. The raise
// must not complete while a core is captive pre-Wait; once released, the
// core must observe the new wall and tick forward.
func TestMaxLocalRaiseNoLostWakeup(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		entered, release := captiveHook(t)
		r, wg := newParkedRun(t, 1)
		awaitWindow(t, entered)
		raised := make(chan struct{})
		go func() {
			// The manager's raise path: store and broadcast under mu.
			r.mu.Lock()
			r.maxLocal[0].Store(1)
			r.cond.Broadcast()
			r.mu.Unlock()
			close(raised)
		}()
		select {
		case <-raised:
			t.Fatal("max-local raise completed while a core held mu inside the park window")
		case <-time.After(50 * time.Millisecond):
		}
		close(release)
		<-raised
		// The raise must not be lost: the core wakes and ticks to the new
		// wall. A lost wakeup leaves localTime at 0 forever.
		deadline := time.Now().Add(10 * time.Second)
		for r.localTime[0].Load() < 1 {
			if time.Now().After(deadline) {
				t.Fatal("max-local raise broadcast was lost: core asleep forever")
			}
			time.Sleep(time.Millisecond)
		}
		r.shutdown()
		waitOrFatal(t, wg, "core goroutine missed the stop wakeup after a raise")
		parkHook = nil
	}
}

// TestWatchdogStallDump wedges a run on purpose (cores parked, nobody
// raising the wall) and asserts the watchdog fails it with the structured
// per-core dump instead of hanging.
func TestWatchdogStallDump(t *testing.T) {
	r, wg := newParkedRun(t, 3)
	r.cfg.StallTimeout = 50 * time.Millisecond
	wdDone := make(chan struct{})
	go r.watchdog(wdDone)
	waitOrFatal(t, wg, "watchdog did not force-stop the stalled run")
	close(wdDone)
	serr := r.stallErr.Load()
	if serr == nil {
		t.Fatal("watchdog fired but published no StallError")
	}
	if serr.Budget != 50*time.Millisecond {
		t.Errorf("dump budget = %v, want 50ms", serr.Budget)
	}
	if len(serr.Cores) != 3 {
		t.Fatalf("dump has %d cores, want 3", len(serr.Cores))
	}
	for _, c := range serr.Cores {
		if c.LocalTime != 0 || c.MaxLocal != 0 || c.Retired {
			t.Errorf("core %d dump = %+v, want local=0 maxLocal=0 retired=false", c.Core, c)
		}
	}
	msg := serr.Error()
	for _, want := range []string{"stalled", "no progress", "core 0:", "core 2:", "parked="} {
		if !strings.Contains(msg, want) {
			t.Errorf("dump message missing %q:\n%s", want, msg)
		}
	}
}

// TestWatchdogQuietOnHealthyRun: a normal run under a tight budget must
// not trip the watchdog as long as progress continues.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	m := newTestMachine(t, workload.NewFFT(64), 4)
	res, err := RunParallel(m, RunConfig{Scheme: BoundedSlack(16), StallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	if res.Committed == 0 {
		t.Fatal("empty results")
	}
}

// TestParallelHorizonClamp: with the max-local clamp no core thread may
// tick past MaxCycles, even under unbounded slack where the horizon is
// the only wall.
func TestParallelHorizonClamp(t *testing.T) {
	const horizon = 300
	m := newTestMachine(t, workload.NewPrivate(65536, 100), 4)
	res, err := RunParallel(m, RunConfig{Scheme: UnboundedSlack(), MaxCycles: horizon})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > horizon {
		t.Errorf("global time %d past horizon %d", res.Cycles, horizon)
	}
	for i, s := range res.PerCore {
		if s.Cycles > horizon {
			t.Errorf("core %d ticked to %d, past horizon %d", i, s.Cycles, horizon)
		}
	}
}

// TestDeterministicHorizonClamp mirrors the horizon invariant on the
// deterministic host.
func TestDeterministicHorizonClamp(t *testing.T) {
	const horizon = 300
	m := newTestMachine(t, workload.NewPrivate(65536, 100), 4)
	res := MustRun(m, RunConfig{Scheme: UnboundedSlack(), Seed: 9, MaxCycles: horizon})
	if res.Cycles > horizon {
		t.Errorf("global time %d past horizon %d", res.Cycles, horizon)
	}
	for i, s := range res.PerCore {
		if s.Cycles > horizon {
			t.Errorf("core %d ticked to %d, past horizon %d", i, s.Cycles, horizon)
		}
	}
}

// TestLaxP2PSingleCore: with one core there is no partner to pick; both
// hosts must degenerate to free-running instead of panicking in Intn(0).
func TestLaxP2PSingleCore(t *testing.T) {
	w := workload.NewPrivate(64, 2)
	mp := newTestMachine(t, w, 1)
	par, err := RunParallel(mp, RunConfig{Scheme: LaxP2PScheme(32, 8)})
	if err != nil {
		t.Fatalf("parallel 1-core lax-p2p: %v", err)
	}
	if par.Committed == 0 {
		t.Fatal("parallel 1-core lax-p2p committed nothing")
	}
	if err := w.VerifyCores(mp.Memory(), 1); err != nil {
		t.Fatalf("parallel 1-core lax-p2p functional: %v", err)
	}
	md := newTestMachine(t, w, 1)
	det := MustRun(md, RunConfig{Scheme: LaxP2PScheme(32, 8), Seed: 5})
	if det.Committed == 0 {
		t.Fatal("deterministic 1-core lax-p2p committed nothing")
	}
	if err := w.VerifyCores(md.Memory(), 1); err != nil {
		t.Fatalf("deterministic 1-core lax-p2p functional: %v", err)
	}
}

// TestStallDumpIncludesTraceTail: attaching a ring to a StallError copies
// at most the last stallTraceTail events and the dump renders them.
func TestStallDumpIncludesTraceTail(t *testing.T) {
	ring := trace.NewRing(64)
	for i := 0; i < 40; i++ {
		ring.Addf(int64(i), i%4, trace.Request, "event-%d", i)
	}
	serr := &StallError{Budget: time.Second}
	serr.attachTrace(ring)
	if len(serr.Trace) != stallTraceTail {
		t.Fatalf("trace tail has %d events, want %d", len(serr.Trace), stallTraceTail)
	}
	if serr.TraceTotal != 40 {
		t.Errorf("TraceTotal = %d, want 40", serr.TraceTotal)
	}
	msg := serr.Error()
	for _, want := range []string{"trace tail (last 32 of 40 events):", "event-39", "event-8"} {
		if !strings.Contains(msg, want) {
			t.Errorf("dump message missing %q:\n%s", want, msg)
		}
	}
	if strings.Contains(msg, "event-7\n") {
		t.Error("dump kept events past the tail bound")
	}

	// An untraced run (nil ring) attaches nothing and renders no tail.
	plain := &StallError{Budget: time.Second}
	plain.attachTrace(nil)
	if len(plain.Trace) != 0 || strings.Contains(plain.Error(), "trace tail") {
		t.Error("nil ring produced a trace tail")
	}
}

// TestParallelHostFeedsTraceRing: the parallel host wires the configured
// ring into the uncore and the manager, so a traced parallel run records
// serviced requests and checkpoints — the same ring a stall dump taps.
func TestParallelHostFeedsTraceRing(t *testing.T) {
	ring := trace.NewRing(4096)
	m := newTestMachine(t, workload.NewFFT(64), 4)
	res, err := RunParallel(m, RunConfig{
		Scheme:             BoundedSlack(16),
		CheckpointInterval: 256,
		Tracer:             ring,
	})
	if err != nil {
		t.Fatalf("traced parallel run failed: %v", err)
	}
	if res.Committed == 0 {
		t.Fatal("empty results")
	}
	out := ring.String()
	if !strings.Contains(out, "request") {
		t.Error("no uncore requests traced on the parallel host")
	}
	if !strings.Contains(out, "ckpt") {
		t.Error("no checkpoints traced on the parallel host")
	}
	if ring.Total() == 0 {
		t.Error("ring recorded no events")
	}
}
