package engine

import (
	"strings"
	"testing"

	"slacksim/internal/adaptive"
	"slacksim/internal/trace"
	"slacksim/internal/workload"
)

// TestQuantumAccuracyDegradesWithSize: the paper's related-work point —
// quantum simulation is accurate only when the quantum approaches the
// critical latency; bigger quanta mean bigger errors.
func TestQuantumAccuracyDegradesWithSize(t *testing.T) {
	w := workload.NewWater(12, 1)
	gold := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: CycleByCycle(), Seed: 2})
	small := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: QuantumScheme(2), Seed: 2})
	big := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: QuantumScheme(500), Seed: 2})
	if small.CycleErrorVs(gold) > big.CycleErrorVs(gold)+1 {
		t.Errorf("Q2 error %.2f%% above Q500 error %.2f%%",
			small.CycleErrorVs(gold), big.CycleErrorVs(gold))
	}
	if big.BusViolations <= small.BusViolations {
		t.Errorf("Q500 violations %d not above Q2 %d",
			big.BusViolations, small.BusViolations)
	}
}

// TestDriftCapLimitsViolations: a tighter host drift cap bounds the
// reordering window even under unbounded slack.
func TestDriftCapLimitsViolations(t *testing.T) {
	run := func(cap int64) Results {
		m := newTestMachine(t, workload.NewWater(12, 1), 4)
		return MustRun(m, RunConfig{Scheme: UnboundedSlack(), Seed: 4, HostDriftCap: cap})
	}
	tight := run(4)
	loose := run(256)
	if tight.BusRate >= loose.BusRate {
		t.Errorf("drift cap 4 rate %v not below cap 256 rate %v",
			tight.BusRate, loose.BusRate)
	}
}

// TestResultsHelpers covers the summary helpers' edge cases.
func TestResultsHelpers(t *testing.T) {
	a := Results{HostWorkUnits: 100, Cycles: 110}
	b := Results{HostWorkUnits: 200, Cycles: 100}
	if got := a.SpeedupOver(b); got != 2 {
		t.Errorf("SpeedupOver = %v", got)
	}
	if got := (Results{}).SpeedupOver(b); got != 0 {
		t.Errorf("zero-work SpeedupOver = %v", got)
	}
	if got := a.CycleErrorVs(b); got != 10 {
		t.Errorf("CycleErrorVs = %v, want 10", got)
	}
	if got := b.CycleErrorVs(a); got < 9 || got > 10 {
		t.Errorf("CycleErrorVs reverse = %v", got)
	}
	if got := a.CycleErrorVs(Results{}); got != 0 {
		t.Errorf("CycleErrorVs zero gold = %v", got)
	}
}

// TestResultsTableRendersEverything checks the human-readable report.
func TestResultsTableRendersEverything(t *testing.T) {
	m := newTestMachine(t, workload.NewWater(8, 1), 4)
	res := MustRun(m, RunConfig{
		Scheme:             AdaptiveSlack(testAdaptive()),
		Seed:               1,
		CheckpointInterval: 1000,
		TrackIntervals:     []int64{500},
	})
	out := res.Table()
	for _, want := range []string{
		"workload", "adaptive", "bus violations", "map violations",
		"checkpoints", "slack bound", "interval 500",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table() missing %q:\n%s", want, out)
		}
	}
}

// TestTracerRecordsBoundChanges: the adaptive controller's adjustments
// appear in the trace.
func TestTracerRecordsBoundChanges(t *testing.T) {
	ring := trace.NewRing(4096)
	m := newTestMachine(t, workload.NewWater(12, 1), 4)
	MustRun(m, RunConfig{
		Scheme: AdaptiveSlack(testAdaptive()),
		Seed:   2,
		Tracer: ring,
	})
	if !strings.Contains(ring.String(), "bound") {
		t.Error("no bound changes traced")
	}
}

// TestCCDriftCapIrrelevant: the drift cap cannot change cycle-by-cycle
// results (CC's wall is tighter than any cap).
func TestCCDriftCapIrrelevant(t *testing.T) {
	run := func(cap int64) Results {
		m := newTestMachine(t, workload.NewLU(8), 4)
		return MustRun(m, RunConfig{Scheme: CycleByCycle(), Seed: 5, HostDriftCap: cap})
	}
	a, b := run(1), run(1024)
	if a.Cycles != b.Cycles || a.Committed != b.Committed {
		t.Errorf("CC depends on drift cap: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func testAdaptive() adaptive.Config {
	return adaptive.Config{
		TargetRate:   0.005,
		Band:         0.05,
		InitialBound: 4,
		MinBound:     1,
		MaxBound:     256,
		Period:       256,
	}
}
