package engine

import (
	"testing"

	"slacksim/internal/adaptive"
	"slacksim/internal/workload"
)

func TestParallelSchemesFunctional(t *testing.T) {
	schemes := []Scheme{
		CycleByCycle(),
		BoundedSlack(8),
		UnboundedSlack(),
		QuantumScheme(100),
		AdaptiveSlack(adaptive.DefaultConfig()),
	}
	for _, s := range schemes {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			w := workload.NewFFT(64)
			m := newTestMachine(t, w, 4)
			res, err := RunParallel(m, RunConfig{Scheme: s})
			if err != nil {
				t.Fatalf("RunParallel: %v", err)
			}
			if err := w.Verify(m.Memory()); err != nil {
				t.Fatalf("functional: %v", err)
			}
			if res.Committed == 0 || res.Cycles == 0 {
				t.Fatalf("empty results: %v", res)
			}
			if res.Host != "parallel" {
				t.Errorf("host label %q", res.Host)
			}
		})
	}
}

func TestParallelLockKernel(t *testing.T) {
	w := workload.NewBarnes(16, 1)
	m := newTestMachine(t, w, 4)
	if _, err := RunParallel(m, RunConfig{Scheme: BoundedSlack(16)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatalf("lock-heavy kernel broke under the parallel host: %v", err)
	}
}

func TestParallelCheckpointing(t *testing.T) {
	w := workload.NewLU(8)
	m := newTestMachine(t, w, 4)
	res, err := RunParallel(m, RunConfig{
		Scheme: BoundedSlack(16), CheckpointInterval: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints == 0 {
		t.Error("parallel host took no checkpoints")
	}
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatal(err)
	}
}

func TestParallelRollbackRejected(t *testing.T) {
	m := newTestMachine(t, workload.NewPrivate(16, 1), 2)
	_, err := RunParallel(m, RunConfig{
		Scheme: BoundedSlack(8), CheckpointInterval: 100, Rollback: true,
	})
	if err == nil {
		t.Fatal("parallel rollback accepted")
	}
}

func TestParallelMaxInstructions(t *testing.T) {
	m := newTestMachine(t, workload.NewPrivate(4096, 50), 4)
	res, err := RunParallel(m, RunConfig{Scheme: UnboundedSlack(), MaxInstructions: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed < 4000 {
		t.Errorf("stopped at %d committed, want >= 4000", res.Committed)
	}
}

func TestParallelMaxCycles(t *testing.T) {
	m := newTestMachine(t, workload.NewPrivate(65536, 100), 2)
	res, err := RunParallel(m, RunConfig{Scheme: BoundedSlack(4), MaxCycles: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > 600 {
		t.Errorf("ran to %d cycles past the cap", res.Cycles)
	}
}

func TestParallelSuspensionOrdering(t *testing.T) {
	// The synchronization-cost signature: CC suspends far more often than
	// a loose bound on the same workload.
	w := workload.NewPrivate(256, 2)
	mc := newTestMachine(t, w, 4)
	cc, err := RunParallel(mc, RunConfig{Scheme: CycleByCycle()})
	if err != nil {
		t.Fatal(err)
	}
	ms := newTestMachine(t, w, 4)
	su, err := RunParallel(ms, RunConfig{Scheme: UnboundedSlack()})
	if err != nil {
		t.Fatal(err)
	}
	if su.Suspensions >= cc.Suspensions {
		t.Errorf("SU suspensions %d not below CC %d", su.Suspensions, cc.Suspensions)
	}
}
