package engine

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"slacksim/internal/adaptive"
	"slacksim/internal/workload"
)

func stripWall(r Results) Results {
	r.WallClock = 0
	return r
}

// resumeRoundTrip runs cfg to completion, reruns it with a snapshot
// request armed mid-run, resumes the exported state on a fresh machine,
// and requires the resumed Results to be identical to the uninterrupted
// baseline (wall clock aside).
func resumeRoundTrip(t *testing.T, mkW func() workload.Workload, cores int, cfg RunConfig) {
	t.Helper()
	base := MustRun(newTestMachine(t, mkW(), cores), cfg)

	// Arm the snapshot request once the run is past the midpoint, so the
	// export captures genuinely mid-flight state.
	var req atomic.Bool
	var blob []byte
	mid := base.Cycles / 2
	icfg := cfg
	icfg.SnapshotRequest = &req
	icfg.OnSnapshot = func(state []byte) { blob = append([]byte(nil), state...) }
	icfg.ProgressEvery = 1
	icfg.OnProgress = func(p Progress) {
		if p.Cycles >= mid {
			req.Store(true)
		}
	}
	_, err := Run(newTestMachine(t, mkW(), cores), icfg)
	if !errors.Is(err, ErrSnapshotted) {
		t.Fatalf("interrupted run: err = %v, want ErrSnapshotted", err)
	}
	if len(blob) == 0 {
		t.Fatal("OnSnapshot delivered no state")
	}

	got, err := Resume(newTestMachine(t, mkW(), cores), cfg, blob)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if !reflect.DeepEqual(stripWall(base), stripWall(got)) {
		t.Errorf("resumed results diverged from uninterrupted run:\nbase: %+v\ngot:  %+v",
			stripWall(base), stripWall(got))
	}
}

func TestResumeBounded(t *testing.T) {
	resumeRoundTrip(t, func() workload.Workload { return workload.NewFalseShare(128) }, 4,
		RunConfig{Scheme: BoundedSlack(16), Seed: 42, CheckpointInterval: 256})
}

func TestResumeBoundedRollback(t *testing.T) {
	resumeRoundTrip(t, func() workload.Workload { return workload.NewFalseShare(128) }, 4,
		RunConfig{Scheme: BoundedSlack(64), Seed: 7, CheckpointInterval: 256, Rollback: true})
}

func TestResumeDeepCheckpoint(t *testing.T) {
	resumeRoundTrip(t, func() workload.Workload { return workload.NewFalseShare(128) }, 4,
		RunConfig{Scheme: BoundedSlack(64), Seed: 7, CheckpointInterval: 256,
			Rollback: true, DeepCheckpoint: true})
}

func TestResumeAdaptive(t *testing.T) {
	resumeRoundTrip(t, func() workload.Workload { return workload.NewFFT(64) }, 4,
		RunConfig{Scheme: AdaptiveSlack(adaptive.DefaultConfig()), Seed: 3,
			CheckpointInterval: 512})
}

func TestResumeCycleByCycle(t *testing.T) {
	resumeRoundTrip(t, func() workload.Workload { return workload.NewFalseShare(64) }, 2,
		RunConfig{Scheme: CycleByCycle(), Seed: 1, CheckpointInterval: 128})
}

func TestResumeQuantum(t *testing.T) {
	resumeRoundTrip(t, func() workload.Workload { return workload.NewFalseShare(128) }, 4,
		RunConfig{Scheme: QuantumScheme(64), Seed: 11, CheckpointInterval: 256})
}

func TestResumeLaxP2P(t *testing.T) {
	resumeRoundTrip(t, func() workload.Workload { return workload.NewFalseShare(128) }, 4,
		RunConfig{Scheme: LaxP2PScheme(32, 64), Seed: 5, CheckpointInterval: 256})
}

func TestResumeIntervalTracking(t *testing.T) {
	resumeRoundTrip(t, func() workload.Workload { return workload.NewWater(8, 1) }, 4,
		RunConfig{Scheme: BoundedSlack(32), Seed: 9, CheckpointInterval: 256,
			TrackIntervals: []int64{100, 1000}})
}

// TestResumeChained snapshots a run, resumes it, snapshots the resumed
// run again, and resumes that: migration must compose.
func TestResumeChained(t *testing.T) {
	mkW := func() workload.Workload { return workload.NewFalseShare(128) }
	cfg := RunConfig{Scheme: BoundedSlack(16), Seed: 42, CheckpointInterval: 256}
	base := MustRun(newTestMachine(t, mkW(), 4), cfg)

	snapshotPast := func(run func(RunConfig) (Results, error), after int64) []byte {
		t.Helper()
		var req atomic.Bool
		var blob []byte
		icfg := cfg
		icfg.SnapshotRequest = &req
		icfg.OnSnapshot = func(state []byte) { blob = append([]byte(nil), state...) }
		icfg.ProgressEvery = 1
		icfg.OnProgress = func(p Progress) {
			if p.Cycles >= after {
				req.Store(true)
			}
		}
		if _, err := run(icfg); !errors.Is(err, ErrSnapshotted) {
			t.Fatalf("err = %v, want ErrSnapshotted", err)
		}
		return blob
	}

	blob1 := snapshotPast(func(c RunConfig) (Results, error) {
		return Run(newTestMachine(t, mkW(), 4), c)
	}, base.Cycles/3)
	blob2 := snapshotPast(func(c RunConfig) (Results, error) {
		return Resume(newTestMachine(t, mkW(), 4), c, blob1)
	}, 2*base.Cycles/3)

	got, err := Resume(newTestMachine(t, mkW(), 4), cfg, blob2)
	if err != nil {
		t.Fatalf("final Resume: %v", err)
	}
	if !reflect.DeepEqual(stripWall(base), stripWall(got)) {
		t.Errorf("doubly-migrated run diverged:\nbase: %+v\ngot:  %+v",
			stripWall(base), stripWall(got))
	}
}

// TestResumeRejectsMismatch: a snapshot only resumes under the exact run
// configuration that produced it.
func TestResumeRejectsMismatch(t *testing.T) {
	mkW := func() workload.Workload { return workload.NewFalseShare(128) }
	cfg := RunConfig{Scheme: BoundedSlack(16), Seed: 42, CheckpointInterval: 256}

	var req atomic.Bool
	req.Store(true) // export at the first boundary
	var blob []byte
	icfg := cfg
	icfg.SnapshotRequest = &req
	icfg.OnSnapshot = func(state []byte) { blob = append([]byte(nil), state...) }
	if _, err := Run(newTestMachine(t, mkW(), 4), icfg); !errors.Is(err, ErrSnapshotted) {
		t.Fatalf("err = %v, want ErrSnapshotted", err)
	}

	cases := []struct {
		name string
		cfg  RunConfig
		m    *Machine
		blob []byte
	}{
		{"wrong seed", RunConfig{Scheme: BoundedSlack(16), Seed: 43, CheckpointInterval: 256},
			newTestMachine(t, mkW(), 4), blob},
		{"wrong scheme", RunConfig{Scheme: QuantumScheme(64), Seed: 42, CheckpointInterval: 256},
			newTestMachine(t, mkW(), 4), blob},
		{"wrong cores", cfg, newTestMachine(t, mkW(), 8), blob},
		{"truncated state", cfg, newTestMachine(t, mkW(), 4), blob[:len(blob)/2]},
		{"garbage state", cfg, newTestMachine(t, mkW(), 4), []byte("not a snapshot")},
	}
	for _, tc := range cases {
		if _, err := Resume(tc.m, tc.cfg, tc.blob); err == nil {
			t.Errorf("%s: Resume accepted a mismatched snapshot", tc.name)
		}
	}
}
