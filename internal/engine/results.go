package engine

import (
	"fmt"
	"strings"
	"time"

	"slacksim/internal/core"
	"slacksim/internal/sampling"
	"slacksim/internal/violation"
)

// Results summarizes one simulation run. The json tags are a stable,
// machine-readable contract: they are the slacksimd service's response
// body and the -json output of cmd/slacksim, so renaming one is an API
// break.
type Results struct {
	// Workload and Scheme identify the run.
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	// Host is "deterministic" or "parallel".
	Host string `json:"host"`

	// Cycles is the final global time (the simulated execution time).
	Cycles int64 `json:"cycles"`
	// Committed is the total committed instruction count across cores.
	Committed uint64 `json:"committed"`
	// CPI is aggregate cycles-per-instruction: Cycles·NumCores/Committed.
	CPI float64 `json:"cpi"`

	// PerCore carries each core's counters.
	PerCore []core.Stats `json:"per_core,omitempty"`

	// Violation accounting.
	BusViolations      uint64 `json:"bus_violations"`
	MapViolations      uint64 `json:"map_violations"`
	WorkloadViolations uint64 `json:"workload_violations"`
	// ViolationRate is selected violations / Cycles.
	ViolationRate float64 `json:"violation_rate"`
	BusRate       float64 `json:"bus_rate"`
	MapRate       float64 `json:"map_rate"`
	// Intervals carries Table 3/4 statistics when interval tracking was on.
	Intervals []violation.IntervalReport `json:"intervals,omitempty"`

	// Host-side costs. WallClock serializes as integer nanoseconds.
	HostWorkUnits float64       `json:"host_work_units"`
	WallClock     time.Duration `json:"wall_clock_ns"`
	Suspensions   uint64        `json:"suspensions"`
	EventsServed  uint64        `json:"events_served"`

	// Checkpoint/rollback accounting (speculative runs).
	Checkpoints     int   `json:"checkpoints,omitempty"`
	CheckpointWords int64 `json:"checkpoint_words,omitempty"`
	Rollbacks       int   `json:"rollbacks,omitempty"`
	WastedCycles    int64 `json:"wasted_cycles,omitempty"`
	ReplayCycles    int64 `json:"replay_cycles,omitempty"`

	// Adaptive controller summary.
	FinalBound  int64   `json:"final_bound,omitempty"`
	MeanBound   float64 `json:"mean_bound,omitempty"`
	Adjustments uint64  `json:"adjustments,omitempty"`

	// Synchronization traffic.
	LockAcquires    uint64 `json:"lock_acquires"`
	LockContended   uint64 `json:"lock_contended"`
	BarrierEpisodes uint64 `json:"barrier_episodes"`

	// Sampling carries the interval-sampling estimate when the run used
	// RunConfig.Sampling: estimated cycles with a confidence bound, next
	// to the (fast-forward-skewed) measured Cycles above.
	Sampling *sampling.Report `json:"sampling,omitempty"`
}

// String renders a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%s/%s[%s]: %d cycles, %d insts, CPI=%.2f, viol(bus=%d,map=%d) rate=%.5f%%, work=%.0f",
		r.Workload, r.Scheme, r.Host, r.Cycles, r.Committed, r.CPI,
		r.BusViolations, r.MapViolations, 100*r.ViolationRate, r.HostWorkUnits)
}

// Table renders a multi-line human-readable report.
func (r Results) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload           %s\n", r.Workload)
	fmt.Fprintf(&b, "scheme             %s (%s host)\n", r.Scheme, r.Host)
	fmt.Fprintf(&b, "simulated cycles   %d\n", r.Cycles)
	fmt.Fprintf(&b, "committed insts    %d\n", r.Committed)
	fmt.Fprintf(&b, "aggregate CPI      %.3f\n", r.CPI)
	fmt.Fprintf(&b, "bus violations     %d (rate %.5f%%)\n", r.BusViolations, 100*r.BusRate)
	fmt.Fprintf(&b, "map violations     %d (rate %.5f%%)\n", r.MapViolations, 100*r.MapRate)
	fmt.Fprintf(&b, "host work units    %.0f\n", r.HostWorkUnits)
	fmt.Fprintf(&b, "wall clock         %v\n", r.WallClock)
	fmt.Fprintf(&b, "events serviced    %d\n", r.EventsServed)
	fmt.Fprintf(&b, "suspensions        %d\n", r.Suspensions)
	if r.Checkpoints > 0 {
		fmt.Fprintf(&b, "checkpoints        %d (%d words)\n", r.Checkpoints, r.CheckpointWords)
		fmt.Fprintf(&b, "rollbacks          %d (wasted %d cycles, replayed %d)\n",
			r.Rollbacks, r.WastedCycles, r.ReplayCycles)
	}
	if r.MeanBound > 0 {
		fmt.Fprintf(&b, "slack bound        final=%d mean=%.1f adjustments=%d\n",
			r.FinalBound, r.MeanBound, r.Adjustments)
	}
	for _, ir := range r.Intervals {
		fmt.Fprintf(&b, "interval %-7d   F=%.2f Dr=%.0f\n",
			ir.Interval, ir.FractionViolating, ir.MeanFirstDistance)
	}
	return b.String()
}

// SpeedupOver returns how many times faster this run was than other in
// host work units.
func (r Results) SpeedupOver(other Results) float64 {
	if r.HostWorkUnits == 0 {
		return 0
	}
	return other.HostWorkUnits / r.HostWorkUnits
}

// CycleErrorVs returns the relative error of this run's simulated
// execution time against a reference (gold-standard) run, in percent.
func (r Results) CycleErrorVs(gold Results) float64 {
	if gold.Cycles == 0 {
		return 0
	}
	d := float64(r.Cycles - gold.Cycles)
	if d < 0 {
		d = -d
	}
	return 100 * d / float64(gold.Cycles)
}
