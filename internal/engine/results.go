package engine

import (
	"fmt"
	"strings"
	"time"

	"slacksim/internal/core"
	"slacksim/internal/violation"
)

// Results summarizes one simulation run.
type Results struct {
	// Workload and Scheme identify the run.
	Workload string
	Scheme   string
	// Host is "deterministic" or "parallel".
	Host string

	// Cycles is the final global time (the simulated execution time).
	Cycles int64
	// Committed is the total committed instruction count across cores.
	Committed uint64
	// CPI is aggregate cycles-per-instruction: Cycles·NumCores/Committed.
	CPI float64

	// PerCore carries each core's counters.
	PerCore []core.Stats

	// Violation accounting.
	BusViolations      uint64
	MapViolations      uint64
	WorkloadViolations uint64
	// ViolationRate is selected violations / Cycles.
	ViolationRate float64
	BusRate       float64
	MapRate       float64
	// Intervals carries Table 3/4 statistics when interval tracking was on.
	Intervals []violation.IntervalReport

	// Host-side costs.
	HostWorkUnits float64
	WallClock     time.Duration
	Suspensions   uint64
	EventsServed  uint64

	// Checkpoint/rollback accounting (speculative runs).
	Checkpoints     int
	CheckpointWords int64
	Rollbacks       int
	WastedCycles    int64
	ReplayCycles    int64

	// Adaptive controller summary.
	FinalBound  int64
	MeanBound   float64
	Adjustments uint64

	// Synchronization traffic.
	LockAcquires, LockContended, BarrierEpisodes uint64
}

// String renders a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%s/%s[%s]: %d cycles, %d insts, CPI=%.2f, viol(bus=%d,map=%d) rate=%.5f%%, work=%.0f",
		r.Workload, r.Scheme, r.Host, r.Cycles, r.Committed, r.CPI,
		r.BusViolations, r.MapViolations, 100*r.ViolationRate, r.HostWorkUnits)
}

// Table renders a multi-line human-readable report.
func (r Results) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload           %s\n", r.Workload)
	fmt.Fprintf(&b, "scheme             %s (%s host)\n", r.Scheme, r.Host)
	fmt.Fprintf(&b, "simulated cycles   %d\n", r.Cycles)
	fmt.Fprintf(&b, "committed insts    %d\n", r.Committed)
	fmt.Fprintf(&b, "aggregate CPI      %.3f\n", r.CPI)
	fmt.Fprintf(&b, "bus violations     %d (rate %.5f%%)\n", r.BusViolations, 100*r.BusRate)
	fmt.Fprintf(&b, "map violations     %d (rate %.5f%%)\n", r.MapViolations, 100*r.MapRate)
	fmt.Fprintf(&b, "host work units    %.0f\n", r.HostWorkUnits)
	fmt.Fprintf(&b, "wall clock         %v\n", r.WallClock)
	fmt.Fprintf(&b, "events serviced    %d\n", r.EventsServed)
	fmt.Fprintf(&b, "suspensions        %d\n", r.Suspensions)
	if r.Checkpoints > 0 {
		fmt.Fprintf(&b, "checkpoints        %d (%d words)\n", r.Checkpoints, r.CheckpointWords)
		fmt.Fprintf(&b, "rollbacks          %d (wasted %d cycles, replayed %d)\n",
			r.Rollbacks, r.WastedCycles, r.ReplayCycles)
	}
	if r.MeanBound > 0 {
		fmt.Fprintf(&b, "slack bound        final=%d mean=%.1f adjustments=%d\n",
			r.FinalBound, r.MeanBound, r.Adjustments)
	}
	for _, ir := range r.Intervals {
		fmt.Fprintf(&b, "interval %-7d   F=%.2f Dr=%.0f\n",
			ir.Interval, ir.FractionViolating, ir.MeanFirstDistance)
	}
	return b.String()
}

// SpeedupOver returns how many times faster this run was than other in
// host work units.
func (r Results) SpeedupOver(other Results) float64 {
	if r.HostWorkUnits == 0 {
		return 0
	}
	return other.HostWorkUnits / r.HostWorkUnits
}

// CycleErrorVs returns the relative error of this run's simulated
// execution time against a reference (gold-standard) run, in percent.
func (r Results) CycleErrorVs(gold Results) float64 {
	if gold.Cycles == 0 {
		return 0
	}
	d := float64(r.Cycles - gold.Cycles)
	if d < 0 {
		d = -d
	}
	return 100 * d / float64(gold.Cycles)
}
