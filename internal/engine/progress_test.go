package engine

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"slacksim/internal/workload"
)

// checkMonotone asserts the recorded progress sequence is strictly
// increasing in Counter and nondecreasing in Cycles and Committed.
func checkMonotone(t *testing.T, got []Progress) {
	t.Helper()
	if len(got) == 0 {
		t.Fatalf("progress hook never fired")
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if b.Counter <= a.Counter {
			t.Fatalf("counter not strictly increasing at %d: %d -> %d", i, a.Counter, b.Counter)
		}
		if b.Cycles < a.Cycles {
			t.Fatalf("cycles decreased at %d: %d -> %d", i, a.Cycles, b.Cycles)
		}
		if b.Committed < a.Committed {
			t.Fatalf("committed decreased at %d: %d -> %d", i, a.Committed, b.Committed)
		}
	}
}

// finalCounter recomputes the watchdog's progress formula from the
// machine's end-of-run state: sum of local times, committed instructions,
// and retirement flags. Both hosts' hooks must never report more motion
// than the machine actually made.
func finalCounter(m *Machine, res Results) uint64 {
	var p uint64
	for _, c := range m.cores {
		p += uint64(c.Now())
		p += c.Stats().Committed
		if c.Halted() {
			p++
		}
	}
	return p
}

func TestProgressHookDeterministic(t *testing.T) {
	w := workload.NewFFT(64)
	m := newTestMachine(t, w, 4)
	var got []Progress
	res, err := Run(m, RunConfig{
		Scheme:        BoundedSlack(8),
		Seed:          3,
		OnProgress:    func(p Progress) { got = append(got, p) },
		ProgressEvery: 1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkMonotone(t, got)
	if len(got) < 2 {
		t.Fatalf("expected several progress deliveries with ProgressEvery=1, got %d", len(got))
	}
	fc := finalCounter(m, res)
	last := got[len(got)-1]
	if last.Counter > fc {
		t.Fatalf("hook counter %d exceeds machine's final progress %d", last.Counter, fc)
	}
	if last.Cycles > res.Cycles {
		t.Fatalf("hook cycles %d exceeds final global time %d", last.Cycles, res.Cycles)
	}
}

func TestProgressHookParallel(t *testing.T) {
	w := workload.NewFFT(64)
	m := newTestMachine(t, w, 4)
	// The hook runs on the manager goroutine only, so plain appends are
	// safe; the slice is read after RunParallel returns.
	var got []Progress
	res, err := RunParallel(m, RunConfig{
		Scheme:        BoundedSlack(8),
		OnProgress:    func(p Progress) { got = append(got, p) },
		ProgressEvery: 1,
		StallTimeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	checkMonotone(t, got)
	// The parallel hook reports parRun.progress() verbatim — the same
	// counter the stall watchdog polls — so it can never exceed the
	// machine's final motion, and a nonzero delivery proves the watchdog
	// would have seen the same forward progress.
	fc := finalCounter(m, res)
	last := got[len(got)-1]
	if last.Counter > fc {
		t.Fatalf("hook counter %d exceeds watchdog's final progress %d", last.Counter, fc)
	}
	if last.Counter == 0 && len(got) == 1 {
		t.Fatalf("hook only observed zero progress")
	}
}

// TestProgressHookRollbackMonotone: rollback restores clocks backwards;
// the notifier must suppress those windows so subscribers still see a
// strictly increasing counter.
func TestProgressHookRollbackMonotone(t *testing.T) {
	w := workload.NewFalseShare(128)
	m := newTestMachine(t, w, 4)
	var got []Progress
	res, err := Run(m, RunConfig{
		Scheme:             BoundedSlack(32),
		Seed:               7,
		CheckpointInterval: 200,
		Rollback:           true,
		OnProgress:         func(p Progress) { got = append(got, p) },
		ProgressEvery:      1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkMonotone(t, got)
	_ = res
}

func TestInterruptDeterministic(t *testing.T) {
	w := workload.NewFFT(256)
	m := newTestMachine(t, w, 4)
	var stop atomic.Bool
	n := 0
	_, err := Run(m, RunConfig{
		Scheme: BoundedSlack(8),
		Seed:   1,
		OnProgress: func(Progress) {
			n++
			if n == 3 {
				stop.Store(true)
			}
		},
		ProgressEvery: 1,
		Interrupt:     &stop,
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
}

func TestInterruptParallel(t *testing.T) {
	w := workload.NewFFT(256)
	m := newTestMachine(t, w, 4)
	var stop atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := RunParallel(m, RunConfig{
			Scheme:       UnboundedSlack(),
			StallTimeout: 30 * time.Second,
			Interrupt:    &stop,
		})
		done <- err
	}()
	stop.Store(true)
	select {
	case err := <-done:
		// A fast run may legitimately finish before the store lands; the
		// contract is only that a raised interrupt yields ErrInterrupted.
		if err != nil && !errors.Is(err, ErrInterrupted) {
			t.Fatalf("want nil or ErrInterrupted, got %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("interrupted parallel run did not stop")
	}
}
