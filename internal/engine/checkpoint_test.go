package engine

import (
	"testing"

	"slacksim/internal/adaptive"
	"slacksim/internal/violation"
	"slacksim/internal/workload"
)

// TestCheckpointOnlyOverhead: periodic checkpoints without rollback (the
// paper's Table 2 runs) must not change functional results and must cost
// host work proportional to checkpoint count.
func TestCheckpointOnlyOverhead(t *testing.T) {
	w := workload.NewFFT(64)
	base := MustRun(newTestMachine(t, w, 4), RunConfig{Scheme: BoundedSlack(16), Seed: 5})

	m := newTestMachine(t, w, 4)
	ck := MustRun(m, RunConfig{Scheme: BoundedSlack(16), Seed: 5, CheckpointInterval: 500})
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatalf("checkpointed run broke the workload: %v", err)
	}
	if ck.Checkpoints == 0 || ck.CheckpointWords == 0 {
		t.Fatalf("no checkpoints taken: %+v", ck.Checkpoints)
	}
	wantCkpts := int(ck.Cycles / 500)
	if ck.Checkpoints < wantCkpts-1 || ck.Checkpoints > wantCkpts+2 {
		t.Errorf("checkpoints = %d for %d cycles at 500-cycle interval", ck.Checkpoints, ck.Cycles)
	}
	if ck.HostWorkUnits <= base.HostWorkUnits {
		t.Errorf("checkpointing cost nothing: %v vs %v", ck.HostWorkUnits, base.HostWorkUnits)
	}
}

// TestShorterIntervalsCostMore reproduces Table 2's key trend: the
// checkpointing overhead grows as the interval shrinks.
func TestShorterIntervalsCostMore(t *testing.T) {
	cost := func(interval int64) float64 {
		m := newTestMachine(t, workload.NewFFT(64), 4)
		res := MustRun(m, RunConfig{Scheme: BoundedSlack(16), Seed: 5, CheckpointInterval: interval})
		return res.HostWorkUnits
	}
	c500, c2000 := cost(500), cost(2000)
	if c500 <= c2000 {
		t.Errorf("5x denser checkpoints not more expensive: %v vs %v", c500, c2000)
	}
}

// TestRollbackRecoversCorrectState: the full speculative scheme must end
// with a bit-correct workload result despite many rollbacks.
func TestRollbackRecoversCorrectState(t *testing.T) {
	w := workload.NewWater(8, 1)
	m := newTestMachine(t, w, 4)
	res := MustRun(m, RunConfig{
		Scheme:             BoundedSlack(64),
		Seed:               7,
		CheckpointInterval: 400,
		Rollback:           true,
	})
	if res.Rollbacks == 0 {
		t.Fatal("sharing kernel at large slack triggered no rollbacks")
	}
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatalf("speculative run broke the workload: %v", err)
	}
	if res.WastedCycles <= 0 {
		t.Error("rollbacks wasted no cycles")
	}
	if res.ReplayCycles <= 0 {
		t.Error("no cycle-by-cycle replay recorded")
	}
}

// TestRollbackSuppressesViolations: every selected violation triggers a
// rollback that erases it, so the surviving count stays near zero (only
// end-of-run stragglers may remain).
func TestRollbackSuppressesViolations(t *testing.T) {
	m := newTestMachine(t, workload.NewFalseShare(128), 4)
	res := MustRun(m, RunConfig{
		Scheme:             BoundedSlack(32),
		Seed:               3,
		CheckpointInterval: 300,
		Rollback:           true,
	})
	survivors := res.BusViolations + res.MapViolations
	if survivors > 5 {
		t.Errorf("%d violations survived a full speculative run", survivors)
	}
}

// TestSelectiveRollbackMapOnly: the paper's Section 5.2 refinement —
// rolling back only on (rare) map violations — must produce far fewer
// rollbacks than rolling back on everything.
func TestSelectiveRollbackMapOnly(t *testing.T) {
	all := MustRun(newTestMachine(t, workload.NewWater(12, 1), 4), RunConfig{
		Scheme: BoundedSlack(64), Seed: 2, CheckpointInterval: 500, Rollback: true,
	})
	mapOnly := MustRun(newTestMachine(t, workload.NewWater(12, 1), 4), RunConfig{
		Scheme: BoundedSlack(64), Seed: 2, CheckpointInterval: 500, Rollback: true,
		Selected: []violation.Type{violation.Map},
	})
	if mapOnly.Rollbacks >= all.Rollbacks && all.Rollbacks > 0 {
		t.Errorf("map-only rollbacks %d not below all-violations %d",
			mapOnly.Rollbacks, all.Rollbacks)
	}
	// Bus violations survive under map-only selection.
	if mapOnly.BusViolations == 0 {
		t.Error("map-only run should tolerate bus violations")
	}
}

// TestAdaptiveConvergesToTarget: the adaptive controller holds the
// cumulative violation rate near the target (the paper's Figure 4 setup).
func TestAdaptiveConvergesToTarget(t *testing.T) {
	cfg := adaptive.Config{
		TargetRate:   0.01, // 1% — reachable on this small contended run
		Band:         0.10,
		InitialBound: 4,
		MinBound:     1,
		MaxBound:     256,
		Period:       256,
	}
	m := newTestMachine(t, workload.NewWater(16, 2), 4)
	res := MustRun(m, RunConfig{Scheme: AdaptiveSlack(cfg), Seed: 4})
	if res.Adjustments == 0 {
		t.Fatal("controller never adjusted")
	}
	if res.ViolationRate < cfg.TargetRate/4 || res.ViolationRate > cfg.TargetRate*4 {
		t.Errorf("final rate %v too far from target %v (bound %d, mean %.1f)",
			res.ViolationRate, cfg.TargetRate, res.FinalBound, res.MeanBound)
	}
}

// TestAdaptiveBoundMovesBothWays: with a mid-range target the bound must
// both grow (quiet start) and shrink (after violations accumulate).
func TestAdaptiveBoundMovesBothWays(t *testing.T) {
	cfg := adaptive.Config{
		TargetRate: 0.005, Band: 0.05,
		InitialBound: 2, MinBound: 1, MaxBound: 512, Period: 128,
	}
	m := newTestMachine(t, workload.NewBarnes(32, 2), 4)
	res := MustRun(m, RunConfig{Scheme: AdaptiveSlack(cfg), Seed: 6})
	if res.MeanBound <= float64(cfg.InitialBound) {
		t.Errorf("bound never grew: mean %.1f", res.MeanBound)
	}
	if res.Adjustments < 2 {
		t.Errorf("only %d adjustments", res.Adjustments)
	}
}

// TestAdaptivePlusCheckpointing is the paper's combined configuration
// (base adaptive at 0.01% with periodic checkpoints).
func TestAdaptivePlusCheckpointing(t *testing.T) {
	w := workload.NewLU(16)
	m := newTestMachine(t, w, 4)
	res := MustRun(m, RunConfig{
		Scheme:             AdaptiveSlack(adaptive.DefaultConfig()),
		Seed:               8,
		CheckpointInterval: 1000,
		TrackIntervals:     []int64{1000},
	})
	if res.Checkpoints == 0 {
		t.Error("no checkpoints in combined run")
	}
	if len(res.Intervals) != 1 || res.Intervals[0].Interval != 1000 {
		t.Fatalf("interval stats missing: %+v", res.Intervals)
	}
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalStatsFeedModel: a tracked run's F and Dr plug directly into
// the analytical model (Tables 3-5 pipeline).
func TestIntervalStatsFeedModel(t *testing.T) {
	m := newTestMachine(t, workload.NewWater(16, 1), 4)
	res := MustRun(m, RunConfig{
		Scheme:         BoundedSlack(32),
		Seed:           1,
		TrackIntervals: []int64{500, 2000},
	})
	if len(res.Intervals) != 2 {
		t.Fatalf("want 2 interval reports, got %d", len(res.Intervals))
	}
	for _, ir := range res.Intervals {
		if ir.FractionViolating < 0 || ir.FractionViolating > 1 {
			t.Errorf("F out of range: %+v", ir)
		}
		if ir.MeanFirstDistance < 0 || ir.MeanFirstDistance >= float64(ir.Interval) {
			t.Errorf("Dr out of range: %+v", ir)
		}
	}
	// Larger intervals violate at least as often (Table 3's trend).
	if res.Intervals[1].FractionViolating < res.Intervals[0].FractionViolating {
		t.Errorf("F fell with interval size: %+v", res.Intervals)
	}
}
