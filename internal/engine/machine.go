package engine

import (
	"fmt"

	"slacksim/internal/core"
	"slacksim/internal/event"
	"slacksim/internal/isa"
	"slacksim/internal/mem"
	"slacksim/internal/syncctl"
	"slacksim/internal/uncore"
	"slacksim/internal/violation"
)

// MachineConfig describes the target CMP.
type MachineConfig struct {
	NumCores int
	// CoreConfig builds the configuration of core i; nil means
	// core.DefaultConfig.
	CoreConfig func(i int) core.Config
	// Uncore describes the shared memory system; zero value means
	// uncore.DefaultConfig.
	Uncore uncore.Config
}

// DefaultMachineConfig returns the paper's 8-core target.
func DefaultMachineConfig() MachineConfig {
	return MachineConfig{NumCores: 8}
}

// Workload supplies the per-core programs and initializes target memory
// before simulation starts (the simulation measures from after workload
// thread creation, as the paper does).
type Workload interface {
	// Name identifies the workload in results.
	Name() string
	// Programs returns one program per core.
	Programs(numCores int) ([]*isa.Program, error)
	// InitMemory fills the target memory image with the input set.
	InitMemory(m *mem.Memory) error
}

// Machine is an assembled target system ready to simulate: cores, queues,
// the uncore, shared memory, the synchronization controller, and the
// violation detector.
type Machine struct {
	cfg    MachineConfig
	cores  []*core.Core
	outQs  []*event.Shard[event.Request]
	inQs   []*event.Queue[event.Msg]
	unc    *uncore.Uncore
	mem    *mem.Memory
	sync   *syncctl.Controller
	det    *violation.Detector
	wkName string
	// progs are the loaded workload's compiled programs. Programs are
	// immutable during simulation, so a pooled machine reuses them when it
	// is reloaded with a workload of the same name (built-in workload names
	// embed every program-affecting parameter) instead of recompiling.
	progs []*isa.Program

	// snapPool is the machine's pooled checkpoint graph: both hosts copy
	// into this one set of snapshot objects at every boundary instead of
	// allocating fresh ones, and a pooled machine carries the warmed graph
	// into its next run. Built lazily by snapGraph.
	snapPool *globalSnapshot
}

// defaultedUncore resolves a zero-value Uncore config the way NewMachine
// does (shared with MachinePool so shapes match).
func defaultedUncore(cfg MachineConfig) uncore.Config {
	return uncore.DefaultConfig(cfg.NumCores)
}

// NewMachine builds the target machine and loads the workload.
func NewMachine(cfg MachineConfig, w Workload) (*Machine, error) {
	if cfg.NumCores <= 0 {
		return nil, fmt.Errorf("engine: NumCores must be positive")
	}
	if cfg.Uncore.NumCores == 0 {
		cfg.Uncore = defaultedUncore(cfg)
	}
	if cfg.Uncore.NumCores != cfg.NumCores {
		return nil, fmt.Errorf("engine: uncore configured for %d cores, machine has %d",
			cfg.Uncore.NumCores, cfg.NumCores)
	}
	progs, err := w.Programs(cfg.NumCores)
	if err != nil {
		return nil, fmt.Errorf("engine: workload %s: %w", w.Name(), err)
	}
	if len(progs) != cfg.NumCores {
		return nil, fmt.Errorf("engine: workload %s produced %d programs for %d cores",
			w.Name(), len(progs), cfg.NumCores)
	}

	m := &Machine{
		cfg:    cfg,
		mem:    mem.New(),
		sync:   syncctl.New(cfg.NumCores),
		det:    violation.NewDetector(),
		wkName: w.Name(),
		progs:  progs,
	}
	if err := w.InitMemory(m.mem); err != nil {
		return nil, fmt.Errorf("engine: workload %s init: %w", w.Name(), err)
	}
	for i := 0; i < cfg.NumCores; i++ {
		// Each core's out-queue is its private shard of the global queue:
		// the core appends lock-free, the manager merges the shards at
		// drain time. In-queues stay mutex-protected queues — the uncore
		// pushes invalidations into *other* cores' inQs, so they are not
		// single-producer.
		m.outQs = append(m.outQs, event.NewShard[event.Request]())
		m.inQs = append(m.inQs, event.NewQueue[event.Msg]())
	}
	m.unc, err = uncore.New(cfg.Uncore, m.inQs, m.det)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.NumCores; i++ {
		ccfg := core.DefaultConfig(i)
		if cfg.CoreConfig != nil {
			ccfg = cfg.CoreConfig(i)
		}
		c, err := core.New(ccfg, progs[i], m.mem, m.sync, m.outQs[i], m.inQs[i])
		if err != nil {
			return nil, err
		}
		m.cores = append(m.cores, c)
	}
	return m, nil
}

// NumCores returns the core count.
func (m *Machine) NumCores() int { return m.cfg.NumCores }

// Cores exposes the cores (tests, stats).
func (m *Machine) Cores() []*core.Core { return m.cores }

// Uncore exposes the shared memory-system model.
func (m *Machine) Uncore() *uncore.Uncore { return m.unc }

// Memory exposes the target memory image (workload result checks).
func (m *Machine) Memory() *mem.Memory { return m.mem }

// Sync exposes the synchronization controller.
func (m *Machine) Sync() *syncctl.Controller { return m.sync }

// Detector exposes the violation detector.
func (m *Machine) Detector() *violation.Detector { return m.det }

// WorkloadName returns the loaded workload's name.
func (m *Machine) WorkloadName() string { return m.wkName }

// snapGraph returns the machine's pooled snapshot graph, building it on
// first use. Exactly one checkpoint is live at a time on either host (old
// checkpoints are discarded, as in the paper), so one graph per machine
// suffices; every boundary overwrites it in place through the components'
// SnapshotInto/SyncSnapshot methods.
func (m *Machine) snapGraph() *globalSnapshot {
	if m.snapPool == nil {
		m.snapPool = m.newSnapGraph() //lint:allow hotpathalloc -- one-time pool warm-up; every later boundary overwrites the graph in place
	}
	return m.snapPool
}

// newSnapGraph builds the pooled snapshot graph: the one-time warm-up
// allocation behind snapGraph.
func (m *Machine) newSnapGraph() *globalSnapshot {
	s := &globalSnapshot{
		mem:  mem.New(),
		sync: syncctl.New(m.cfg.NumCores),
		det:  violation.NewDetector(),
		unc:  &uncore.Snapshot{},
		inQs: make([][]event.Msg, m.cfg.NumCores),
		outs: make([][]event.Request, m.cfg.NumCores),
	}
	for range m.cores {
		s.cores = append(s.cores, &core.Snapshot{})
	}
	return s
}

// startTracking enables dirty tracking in every component for incremental
// checkpoints. Called once, at the instant the first full snapshot is
// taken. On the parallel host this runs on the manager goroutine while
// all core goroutines are parked at the checkpoint boundary, so the
// non-atomic track flags are published by the pacing mutex.
func (m *Machine) startTracking() {
	m.mem.StartTracking()
	m.unc.StartTracking()
	for _, c := range m.cores {
		c.StartTracking()
	}
}

// committed sums committed instructions across cores.
func (m *Machine) committed() uint64 {
	var n uint64
	for _, c := range m.cores {
		n += c.Stats().Committed
	}
	return n
}

// stateWords estimates the machine's live checkpoint size in 64-bit words.
func (m *Machine) stateWords() int {
	n := m.mem.AllocatedWords() + m.unc.StateWords()
	for _, c := range m.cores {
		// A fresh snapshot would be exact; approximate with cache sizes to
		// avoid building one just for accounting.
		n += c.L1I().StateWords() + c.L1D().StateWords() + 256
	}
	return n
}
