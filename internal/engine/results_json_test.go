package engine

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"slacksim/internal/workload"
)

// TestResultsJSONRoundTrip runs a small simulation with every accounting
// block populated (per-core stats, intervals, checkpoints, adaptive-style
// fields) and asserts Results survives a JSON round trip unchanged. This
// is the service's response body, so the encoding must be lossless.
func TestResultsJSONRoundTrip(t *testing.T) {
	w := workload.NewFFT(64)
	m := newTestMachine(t, w, 4)
	res, err := Run(m, RunConfig{
		Scheme:             BoundedSlack(8),
		Seed:               5,
		CheckpointInterval: 500,
		TrackIntervals:     []int64{100, 1000},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Exercise the optional fields too.
	res.FinalBound, res.MeanBound, res.Adjustments = 12, 9.5, 7
	res.Rollbacks, res.WastedCycles, res.ReplayCycles = 2, 300, 150

	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Results
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, res)
	}

	// Spot-check the stable field names the service contract promises.
	for _, key := range []string{
		`"workload"`, `"scheme"`, `"host"`, `"cycles"`, `"committed"`,
		`"per_core"`, `"bus_violations"`, `"wall_clock_ns"`, `"intervals"`,
		`"lock_acquires"`,
	} {
		if !strings.Contains(string(blob), key) {
			t.Fatalf("serialized results missing %s:\n%s", key, blob)
		}
	}
}
