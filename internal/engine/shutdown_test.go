package engine

// Shutdown-path coverage for the parallel host: the MaxInstructions stop,
// all cores retiring before the first checkpoint boundary, and the
// trailing-OutQ drain (serviceAll after the cores stop vs the in-run
// service) for both eager and conservative schemes.

import (
	"testing"

	"slacksim/internal/workload"
)

// TestParallelMaxInstructionsStopsPromptly: the commit-cap stop must
// terminate the run, reach the cap, and not let cores run away past it
// (the manager notices within one pacing round).
func TestParallelMaxInstructionsStopsPromptly(t *testing.T) {
	const cap = 2000
	m := newTestMachine(t, workload.NewPrivate(65536, 100), 4)
	res, err := RunParallel(m, RunConfig{Scheme: BoundedSlack(8), MaxInstructions: cap})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed < cap {
		t.Errorf("stopped at %d committed, want >= %d", res.Committed, cap)
	}
	// Overshoot is bounded by one pacing round: each core can at most
	// finish the slack window it was in when the cap was crossed.
	if res.Committed > 8*cap {
		t.Errorf("committed %d, runaway past the %d cap", res.Committed, cap)
	}
}

// TestParallelAllRetireBeforeCheckpoint: when every program halts before
// the first boundary, the run must finish cleanly with zero checkpoints
// (no manager thread waiting forever for cores to park at a boundary).
func TestParallelAllRetireBeforeCheckpoint(t *testing.T) {
	w := workload.NewFalseShare(32)
	m := newTestMachine(t, w, 4)
	res, err := RunParallel(m, RunConfig{
		Scheme: BoundedSlack(16), CheckpointInterval: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 0 {
		t.Errorf("took %d checkpoints past the halt time", res.Checkpoints)
	}
	if err := w.Verify(m.Memory()); err != nil {
		t.Fatal(err)
	}
}

// TestParallelTrailingDrain: requests issued just before the cores stop
// must still be drained from the OutQs and serviced — eagerly mid-run for
// non-conservative schemes, and by the final serviceAll flush either way.
// After RunParallel returns, no queue may hold residue.
func TestParallelTrailingDrain(t *testing.T) {
	schemes := []Scheme{
		CycleByCycle(),   // conservative: in-run service holds events back
		BoundedSlack(32), // eager in-run service
		UnboundedSlack(),
		QuantumScheme(64),
	}
	for _, s := range schemes {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			w := workload.NewFalseShare(64)
			m := newTestMachine(t, w, 4)
			res, err := RunParallel(m, RunConfig{Scheme: s})
			if err != nil {
				t.Fatal(err)
			}
			for i := range m.outQs {
				if n := m.outQs[i].Len(); n != 0 {
					t.Errorf("core %d OutQ holds %d undrained requests", i, n)
				}
			}
			if res.EventsServed == 0 {
				t.Error("no events serviced")
			}
			if err := w.Verify(m.Memory()); err != nil {
				t.Fatalf("trailing requests lost: %v", err)
			}
		})
	}
}

// TestParallelMaxInstructionsTrailingDrain combines the two shutdown
// paths: a commit-cap stop mid-flight must still drain and service the
// trailing OutQ work before results are assembled.
func TestParallelMaxInstructionsTrailingDrain(t *testing.T) {
	m := newTestMachine(t, workload.NewFalseShare(512), 4)
	res, err := RunParallel(m, RunConfig{Scheme: UnboundedSlack(), MaxInstructions: 3000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.outQs {
		if n := m.outQs[i].Len(); n != 0 {
			t.Errorf("core %d OutQ holds %d undrained requests after cap stop", i, n)
		}
	}
	if res.Committed < 3000 {
		t.Errorf("stopped at %d committed, want >= 3000", res.Committed)
	}
}
