package trace

import (
	"strings"
	"testing"
)

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Add(Event{})
	r.Addf(1, 0, Request, "x")
	if r.Events() != nil || r.Total() != 0 {
		t.Error("nil ring recorded something")
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(Event{Cycle: int64(i)})
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d events", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != int64(i+2) {
			t.Errorf("event %d cycle %d, want %d (oldest-first order)", i, e.Cycle, i+2)
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
}

func TestRingUnderfill(t *testing.T) {
	r := NewRing(10)
	r.Addf(7, 2, Violation, "bus reorder ts=%d", 5)
	ev := r.Events()
	if len(ev) != 1 || ev[0].Kind != Violation || ev[0].Core != 2 {
		t.Fatalf("events = %+v", ev)
	}
	if !strings.Contains(ev[0].Detail, "ts=5") {
		t.Errorf("detail %q", ev[0].Detail)
	}
}

func TestEventString(t *testing.T) {
	withCore := Event{Cycle: 9, Core: 3, Kind: Checkpoint, Detail: "words=10"}
	if !strings.Contains(withCore.String(), "c3") {
		t.Errorf("%q missing core", withCore.String())
	}
	noCore := Event{Cycle: 9, Core: -1, Kind: Rollback}
	if strings.Contains(noCore.String(), "c-1") {
		t.Errorf("%q renders core -1", noCore.String())
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Request: "request", Violation: "violation", BoundChange: "bound",
		Checkpoint: "checkpoint", Rollback: "rollback", Custom: "custom",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestRingString(t *testing.T) {
	r := NewRing(2)
	r.Addf(1, -1, Checkpoint, "a")
	r.Addf(2, -1, Rollback, "b")
	s := r.String()
	if !strings.Contains(s, "checkpoint") || !strings.Contains(s, "rollback") {
		t.Errorf("String() = %q", s)
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity accepted")
		}
	}()
	NewRing(0)
}
