// Package trace provides a bounded, low-overhead event ring for debugging
// simulations: the engine and the manager record noteworthy events
// (serviced requests, violations, bound changes, checkpoints, rollbacks)
// and tools dump the tail after a run. A nil *Ring is valid everywhere
// and records nothing, so tracing costs nothing when disabled.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds.
const (
	// Request is a memory-system request serviced by the manager.
	Request Kind = iota
	// Violation is a detected simulation violation.
	Violation
	// BoundChange is an adaptive slack-bound adjustment.
	BoundChange
	// Checkpoint is a global checkpoint.
	Checkpoint
	// Rollback is a speculative rollback.
	Rollback
	// Custom is tool-defined.
	Custom
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Request:
		return "request"
	case Violation:
		return "violation"
	case BoundChange:
		return "bound"
	case Checkpoint:
		return "checkpoint"
	case Rollback:
		return "rollback"
	case Custom:
		return "custom"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	// Cycle is the simulated time of the event (the relevant clock:
	// request timestamp, global time for engine events).
	Cycle int64
	// Core is the core involved, or -1.
	Core int
	Kind Kind
	// Detail is a short human-readable payload.
	Detail string
}

// String renders the event.
func (e Event) String() string {
	if e.Core >= 0 {
		return fmt.Sprintf("@%-8d c%-2d %-10s %s", e.Cycle, e.Core, e.Kind, e.Detail)
	}
	return fmt.Sprintf("@%-8d     %-10s %s", e.Cycle, e.Kind, e.Detail)
}

// Ring is a fixed-capacity event buffer keeping the most recent events.
// Methods on a nil Ring are no-ops, so callers thread an optional tracer
// without nil checks.
type Ring struct {
	buf   []Event
	next  int
	count uint64
}

// NewRing returns a ring keeping the last n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		panic("trace: ring capacity must be positive")
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Enabled reports whether the ring records events. Hot paths guard Addf
// calls with it so the variadic-argument boxing — which the compiler
// emits at the call site, heap-allocating even when the ring is nil —
// only happens when a tracer is actually attached.
func (r *Ring) Enabled() bool { return r != nil }

// Add records an event.
func (r *Ring) Add(e Event) {
	if r == nil {
		return
	}
	r.count++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Addf records a formatted event.
func (r *Ring) Addf(cycle int64, core int, kind Kind, format string, args ...any) {
	if r == nil {
		return
	}
	r.Add(Event{Cycle: cycle, Core: core, Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Total reports how many events were recorded overall (including ones
// that have been overwritten).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.count
}

// String renders the retained events, one per line.
func (r *Ring) String() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
