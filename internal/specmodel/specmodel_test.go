package specmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEstimateByHand(t *testing.T) {
	// Ts = (1-F)·Tcpt + F·Dr·Tcpt/I + F·Tcc
	//    = 0.5·100 + 0.5·10·100/100 + 0.5·200 = 50 + 5 + 100 = 155.
	in := Inputs{Tcc: 200, Tcpt: 100, F: 0.5, Dr: 10, I: 100}
	got, err := in.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-155) > 1e-9 {
		t.Errorf("Ts = %v, want 155", got)
	}
}

func TestEstimateZeroF(t *testing.T) {
	// No violating intervals: Ts is exactly the checkpointed slack time.
	in := Inputs{Tcc: 500, Tcpt: 123, F: 0, Dr: 0, I: 1000}
	got := in.MustEstimate()
	if got != 123 {
		t.Errorf("Ts = %v, want Tcpt", got)
	}
}

func TestEstimateFullF(t *testing.T) {
	// Every interval violates immediately at its end (Dr = I): Ts is
	// a full slack pass plus a full CC pass.
	in := Inputs{Tcc: 500, Tcpt: 100, F: 1, Dr: 100, I: 100}
	got := in.MustEstimate()
	if got != 100+500 {
		t.Errorf("Ts = %v, want 600", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Inputs{
		{Tcc: -1, Tcpt: 1, F: 0, Dr: 0, I: 1},
		{Tcc: 1, Tcpt: -1, F: 0, Dr: 0, I: 1},
		{Tcc: 1, Tcpt: 1, F: -0.1, Dr: 0, I: 1},
		{Tcc: 1, Tcpt: 1, F: 1.1, Dr: 0, I: 1},
		{Tcc: 1, Tcpt: 1, F: 0, Dr: -1, I: 1},
		{Tcc: 1, Tcpt: 1, F: 0, Dr: 0, I: 0},
		{Tcc: 1, Tcpt: 1, F: 0, Dr: 5, I: 4},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("bad input %d accepted", i)
		}
		if _, err := in.Estimate(); err == nil {
			t.Errorf("Estimate accepted bad input %d", i)
		}
	}
}

func TestWorthwhile(t *testing.T) {
	// Light violations and cheap checkpointing: speculation wins.
	win := Inputs{Tcc: 500, Tcpt: 200, F: 0.1, Dr: 10, I: 100}
	ok, err := win.Worthwhile()
	if err != nil || !ok {
		t.Errorf("expected worthwhile, got %v/%v", ok, err)
	}
	// The paper's negative result: heavy violating fractions lose to CC.
	lose := Inputs{Tcc: 500, Tcpt: 480, F: 0.95, Dr: 50, I: 100}
	ok, err = lose.Worthwhile()
	if err != nil || ok {
		t.Errorf("expected not worthwhile, got %v/%v", ok, err)
	}
}

func TestTable5Shape(t *testing.T) {
	// Plugging numbers shaped like the paper's Barnes 100k row (Tcc=517,
	// Tcpt=506, F=0.94, Dr=8000, I=100000) must land above Tcc — the
	// paper's Table 5 outcome.
	in := Inputs{Tcc: 517, Tcpt: 506, F: 0.94, Dr: 8000, I: 100000}
	ts := in.MustEstimate()
	if ts <= in.Tcc {
		t.Errorf("Ts = %v, want > Tcc = %v (paper's negative result)", ts, in.Tcc)
	}
}

func TestBreakEvenF(t *testing.T) {
	in := Inputs{Tcc: 500, Tcpt: 250, F: 0, Dr: 10, I: 100}
	f, err := in.BreakEvenF()
	if err != nil {
		t.Fatal(err)
	}
	// At the break-even F the estimate equals Tcc.
	in.F = f
	ts := in.MustEstimate()
	if math.Abs(ts-in.Tcc) > 1e-6 {
		t.Errorf("Ts at break-even = %v, want %v", ts, in.Tcc)
	}
	// Tcpt >= Tcc: speculation can never win.
	never := Inputs{Tcc: 100, Tcpt: 150, F: 0, Dr: 1, I: 10}
	f, _ = never.BreakEvenF()
	if f != 0 {
		t.Errorf("break-even with Tcpt>Tcc = %v, want 0", f)
	}
}

// Property: Ts is monotone non-decreasing in F (more violating intervals
// never speed the simulation up) whenever the slope terms are positive.
func TestQuickMonotoneInF(t *testing.T) {
	prop := func(f1, f2 float64) bool {
		f1 = math.Abs(math.Mod(f1, 1))
		f2 = math.Abs(math.Mod(f2, 1))
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		a := Inputs{Tcc: 500, Tcpt: 200, F: f1, Dr: 20, I: 100}
		b := a
		b.F = f2
		return a.MustEstimate() <= b.MustEstimate()+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: for F in [0,1], Ts is between min(Tcpt, ...) and Tcpt+Tcc+Dr
// overhead bound.
func TestQuickEstimateBounded(t *testing.T) {
	prop := func(f float64) bool {
		f = math.Abs(math.Mod(f, 1))
		in := Inputs{Tcc: 300, Tcpt: 100, F: f, Dr: 50, I: 200}
		ts := in.MustEstimate()
		return ts >= 0 && ts <= in.Tcpt+in.Tcc+in.Dr*in.Tcpt/in.I+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
