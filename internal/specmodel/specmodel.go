// Package specmodel implements the paper's analytical model for the
// overall time of a fully-functional speculative slack simulation
// (Section 5.2):
//
//	Ts = (1-F)·Tcpt + F·Dr·Tcpt/I + F·Tcc
//
// where Tcpt is the time of the slack simulation with checkpointing, Tcc
// the time of cycle-by-cycle simulation, F the fraction of checkpoint
// intervals containing at least one violation, Dr the mean rollback
// distance (cycles from the interval start to the first violation), and I
// the checkpoint interval length in cycles.
//
// The first term is normal (violation-free) simulation, the second the
// work wasted re-reaching the violation point, and the third the
// cycle-by-cycle replay required for forward progress after a rollback.
// The model omits the (secondary) cost of the rollback itself, so it
// slightly underestimates, as the paper notes.
package specmodel

import "fmt"

// Inputs are the model parameters, all in consistent units (Tcc and Tcpt
// in any time unit; Dr and I in simulated cycles).
type Inputs struct {
	// Tcc is the cycle-by-cycle simulation time.
	Tcc float64
	// Tcpt is the slack simulation time including checkpointing overhead.
	Tcpt float64
	// F is the fraction of checkpoint intervals with >= 1 violation.
	F float64
	// Dr is the average rollback distance in simulated cycles.
	Dr float64
	// I is the checkpoint interval in simulated cycles.
	I float64
}

// Validate reports out-of-domain parameters.
func (in Inputs) Validate() error {
	if in.Tcc < 0 || in.Tcpt < 0 {
		return fmt.Errorf("specmodel: times must be non-negative")
	}
	if in.F < 0 || in.F > 1 {
		return fmt.Errorf("specmodel: F=%v outside [0,1]", in.F)
	}
	if in.Dr < 0 {
		return fmt.Errorf("specmodel: Dr must be non-negative")
	}
	if in.I <= 0 {
		return fmt.Errorf("specmodel: I must be positive")
	}
	if in.Dr > in.I {
		return fmt.Errorf("specmodel: rollback distance %v exceeds interval %v", in.Dr, in.I)
	}
	return nil
}

// Estimate returns Ts, the modeled speculative slack simulation time.
func (in Inputs) Estimate() (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	return (1-in.F)*in.Tcpt + in.F*in.Dr*in.Tcpt/in.I + in.F*in.Tcc, nil
}

// MustEstimate is Estimate but panics on invalid inputs (for benches on
// statically-valid data).
func (in Inputs) MustEstimate() float64 {
	t, err := in.Estimate()
	if err != nil {
		panic(err)
	}
	return t
}

// Worthwhile reports whether the modeled speculative simulation beats
// cycle-by-cycle simulation — the paper's acceptance criterion.
func (in Inputs) Worthwhile() (bool, error) {
	ts, err := in.Estimate()
	if err != nil {
		return false, err
	}
	return ts < in.Tcc, nil
}

// BreakEvenF returns the largest violating-interval fraction F at which
// the speculative simulation still matches cycle-by-cycle time, holding
// the other parameters fixed. It returns 1 when speculation wins even at
// F=1, and 0 when it loses even at F=0 (Tcpt >= Tcc).
func (in Inputs) BreakEvenF() (float64, error) {
	probe := in
	probe.F = 0
	if err := probe.Validate(); err != nil {
		return 0, err
	}
	// Ts(F) = Tcpt + F·(Dr·Tcpt/I + Tcc - Tcpt) is linear in F.
	slope := in.Dr*in.Tcpt/in.I + in.Tcc - in.Tcpt
	if slope <= 0 {
		if in.Tcpt < in.Tcc {
			return 1, nil
		}
		return 0, nil
	}
	f := (in.Tcc - in.Tcpt) / slope
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f, nil
}
