// Package coherence defines the MESI cache-coherence protocol used by the
// target CMP's private L1 caches over the snooping request/response bus.
//
// The package is deliberately small: it encodes states, bus request kinds,
// and the legal state-transition relation, so that both the L1 controllers
// (in internal/core) and the global cache status map maintained by the
// simulation manager (in internal/cache and internal/uncore) share one
// protocol definition and tests can check protocol invariants (single
// writer, no stale exclusives) in one place.
package coherence

import "fmt"

// State is a MESI line state.
type State uint8

// The four MESI states plus Invalid's explicit zero value.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the single-letter conventional name of the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether the line holds data.
func (s State) Valid() bool { return s != Invalid }

// CanRead reports whether a local load hits in this state.
func (s State) CanRead() bool { return s != Invalid }

// CanWrite reports whether a local store hits without a bus transaction.
func (s State) CanWrite() bool { return s == Modified || s == Exclusive }

// Dirty reports whether the line must be written back when evicted or
// transferred.
func (s State) Dirty() bool { return s == Modified }

// BusReq is the kind of transaction a cache places on the request bus.
type BusReq uint8

// Bus request kinds. BusRd requests a readable copy, BusRdX a writable
// (exclusive) copy, BusUpgr upgrades S->M without a data transfer, and
// BusWB writes a dirty evicted line back to L2.
const (
	BusNone BusReq = iota
	BusRd
	BusRdX
	BusUpgr
	BusWB
	BusIFetch // instruction fetch; read-only, never upgraded
)

// String returns the conventional name of the request kind.
func (r BusReq) String() string {
	switch r {
	case BusNone:
		return "None"
	case BusRd:
		return "BusRd"
	case BusRdX:
		return "BusRdX"
	case BusUpgr:
		return "BusUpgr"
	case BusWB:
		return "BusWB"
	case BusIFetch:
		return "BusIFetch"
	}
	return fmt.Sprintf("BusReq(%d)", uint8(r))
}

// RequestFor returns the bus request a cache in state s must issue for a
// load (write=false) or store (write=true), or BusNone on a hit.
func RequestFor(s State, write bool) BusReq {
	if !write {
		if s.CanRead() {
			return BusNone
		}
		return BusRd
	}
	switch s {
	case Modified, Exclusive:
		return BusNone
	case Shared:
		return BusUpgr
	default:
		return BusRdX
	}
}

// GrantState returns the requester's new state after its request is
// serviced. sharedElsewhere reports whether any other cache holds the line
// at grant time (it decides E vs S on BusRd).
func GrantState(req BusReq, sharedElsewhere bool) State {
	switch req {
	case BusRd, BusIFetch:
		if sharedElsewhere {
			return Shared
		}
		return Exclusive
	case BusRdX, BusUpgr:
		return Modified
	case BusWB:
		return Invalid
	}
	return Invalid
}

// SnoopState returns a remote (non-requesting) cache's new state when it
// snoops req for a line it holds in state s, and whether it must flush
// (supply/writeback) its dirty data.
func SnoopState(s State, req BusReq) (next State, flush bool) {
	if s == Invalid {
		return Invalid, false
	}
	switch req {
	case BusRd, BusIFetch:
		return Shared, s == Modified
	case BusRdX:
		return Invalid, s == Modified
	case BusUpgr:
		// Upgrades only happen when requester is in S, so no remote M/E
		// copy can exist; remote S copies are invalidated.
		return Invalid, false
	case BusWB:
		return s, false
	}
	return s, false
}

// LegalPair reports whether two caches may simultaneously hold the same
// line in states a and b. It encodes the MESI compatibility matrix:
// M and E are exclusive; S is compatible with S and I; I with anything.
func LegalPair(a, b State) bool {
	if a == Invalid || b == Invalid {
		return true
	}
	return a == Shared && b == Shared
}
