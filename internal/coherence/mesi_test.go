package coherence

import (
	"testing"
	"testing/quick"
)

func allStates() []State { return []State{Invalid, Shared, Exclusive, Modified} }

func TestStateString(t *testing.T) {
	want := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

func TestStatePredicates(t *testing.T) {
	cases := []struct {
		s                         State
		valid, read, write, dirty bool
	}{
		{Invalid, false, false, false, false},
		{Shared, true, true, false, false},
		{Exclusive, true, true, true, false},
		{Modified, true, true, true, true},
	}
	for _, tc := range cases {
		if tc.s.Valid() != tc.valid || tc.s.CanRead() != tc.read ||
			tc.s.CanWrite() != tc.write || tc.s.Dirty() != tc.dirty {
			t.Errorf("%v predicates wrong", tc.s)
		}
	}
}

func TestRequestFor(t *testing.T) {
	cases := []struct {
		s     State
		write bool
		want  BusReq
	}{
		{Invalid, false, BusRd},
		{Shared, false, BusNone},
		{Exclusive, false, BusNone},
		{Modified, false, BusNone},
		{Invalid, true, BusRdX},
		{Shared, true, BusUpgr},
		{Exclusive, true, BusNone},
		{Modified, true, BusNone},
	}
	for _, tc := range cases {
		if got := RequestFor(tc.s, tc.write); got != tc.want {
			t.Errorf("RequestFor(%v,%v) = %v, want %v", tc.s, tc.write, got, tc.want)
		}
	}
}

func TestGrantState(t *testing.T) {
	cases := []struct {
		req    BusReq
		shared bool
		want   State
	}{
		{BusRd, false, Exclusive},
		{BusRd, true, Shared},
		{BusIFetch, false, Exclusive},
		{BusIFetch, true, Shared},
		{BusRdX, false, Modified},
		{BusRdX, true, Modified},
		{BusUpgr, true, Modified},
		{BusWB, false, Invalid},
	}
	for _, tc := range cases {
		if got := GrantState(tc.req, tc.shared); got != tc.want {
			t.Errorf("GrantState(%v,%v) = %v, want %v", tc.req, tc.shared, got, tc.want)
		}
	}
}

func TestSnoopState(t *testing.T) {
	cases := []struct {
		s     State
		req   BusReq
		next  State
		flush bool
	}{
		{Invalid, BusRd, Invalid, false},
		{Shared, BusRd, Shared, false},
		{Exclusive, BusRd, Shared, false},
		{Modified, BusRd, Shared, true},
		{Shared, BusRdX, Invalid, false},
		{Exclusive, BusRdX, Invalid, false},
		{Modified, BusRdX, Invalid, true},
		{Shared, BusUpgr, Invalid, false},
		{Modified, BusWB, Modified, false},
		{Modified, BusIFetch, Shared, true},
	}
	for _, tc := range cases {
		next, flush := SnoopState(tc.s, tc.req)
		if next != tc.next || flush != tc.flush {
			t.Errorf("SnoopState(%v,%v) = (%v,%v), want (%v,%v)",
				tc.s, tc.req, next, flush, tc.next, tc.flush)
		}
	}
}

func TestLegalPair(t *testing.T) {
	for _, a := range allStates() {
		for _, b := range allStates() {
			want := a == Invalid || b == Invalid || (a == Shared && b == Shared)
			if got := LegalPair(a, b); got != want {
				t.Errorf("LegalPair(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// Protocol invariant: after any request by one cache snooped by another,
// the (grant state, snooped state) pair is legal.
func TestGrantAndSnoopAlwaysLegal(t *testing.T) {
	reqs := []BusReq{BusRd, BusRdX, BusUpgr, BusIFetch}
	for _, req := range reqs {
		for _, remote := range allStates() {
			next, _ := SnoopState(remote, req)
			grant := GrantState(req, next.Valid())
			if !LegalPair(grant, next) {
				t.Errorf("req %v vs remote %v: grant %v with snooped %v is illegal",
					req, remote, grant, next)
			}
		}
	}
}

// Property: SnoopState never upgrades a remote cache's permissions.
func TestQuickSnoopNeverUpgrades(t *testing.T) {
	rank := map[State]int{Invalid: 0, Shared: 1, Exclusive: 2, Modified: 3}
	prop := func(s8, r8 uint8) bool {
		s := State(s8 % 4)
		req := []BusReq{BusRd, BusRdX, BusUpgr, BusWB, BusIFetch}[r8%5]
		next, _ := SnoopState(s, req)
		return rank[next] <= rank[s]
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
