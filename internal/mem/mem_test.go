package mem

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	m.Write(0x1000, 42)
	if got := m.Read(0x1000); got != 42 {
		t.Errorf("Read = %d, want 42", got)
	}
	m.Write(0x1000, 43)
	if got := m.Read(0x1000); got != 43 {
		t.Errorf("overwrite Read = %d, want 43", got)
	}
}

func TestUnallocatedReadsZero(t *testing.T) {
	m := New()
	if got := m.Read(0xDEAD_BEE8); got != 0 {
		t.Errorf("unallocated Read = %d, want 0", got)
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Error("unaligned access did not panic")
		}
	}()
	m.Read(0x1001)
}

func TestFloatRoundTrip(t *testing.T) {
	m := New()
	for i, v := range []float64{0, 1.5, -math.Pi, math.Inf(-1)} {
		addr := uint64(i * 8)
		m.WriteFloat(addr, v)
		if got := m.ReadFloat(addr); got != v {
			t.Errorf("float at %#x = %v, want %v", addr, got, v)
		}
	}
}

func TestPageBoundaries(t *testing.T) {
	m := New()
	// Adjacent words across a page boundary must not interfere.
	last := uint64(PageWords-1) * 8
	first := uint64(PageWords) * 8
	m.Write(last, 1)
	m.Write(first, 2)
	if m.Read(last) != 1 || m.Read(first) != 2 {
		t.Error("page boundary interference")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := New()
	m.Write(0x2000, 7)
	snap := m.Snapshot()
	m.Write(0x2000, 8)
	m.Write(0x3000, 9)
	if snap.Read(0x2000) != 7 || snap.Read(0x3000) != 0 {
		t.Error("snapshot not isolated from later writes")
	}
}

func TestRestore(t *testing.T) {
	m := New()
	m.Write(0x10, 1)
	m.Write(0x18, 2)
	snap := m.Snapshot()
	m.Write(0x10, 99)
	m.Write(0x2000, 50)
	m.Restore(snap)
	if m.Read(0x10) != 1 || m.Read(0x18) != 2 {
		t.Error("restore lost original values")
	}
	if m.Read(0x2000) != 0 {
		t.Error("restore kept post-snapshot page")
	}
	if !m.Equal(snap) {
		t.Error("restored memory not Equal to snapshot")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(), New()
	if !a.Equal(b) {
		t.Error("two empty memories unequal")
	}
	a.Write(0x100, 5)
	if a.Equal(b) {
		t.Error("different contents equal")
	}
	b.Write(0x100, 5)
	if !a.Equal(b) {
		t.Error("same contents unequal")
	}
	// A zero-valued allocated page equals an absent page.
	a.Write(0x4000, 0)
	if !a.Equal(b) {
		t.Error("zero page must equal absent page")
	}
}

func TestAllocatedWords(t *testing.T) {
	m := New()
	if m.AllocatedWords() != 0 {
		t.Error("fresh memory has allocations")
	}
	m.Write(0, 1)
	if got := m.AllocatedWords(); got != PageWords {
		t.Errorf("AllocatedWords = %d, want %d", got, PageWords)
	}
	m.Write(8, 2) // same page
	if got := m.AllocatedWords(); got != PageWords {
		t.Errorf("AllocatedWords after same-page write = %d", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * 0x10000
			for i := 0; i < 200; i++ {
				addr := base + uint64(i)*8
				m.Write(addr, uint64(g*1000+i))
				if got := m.Read(addr); got != uint64(g*1000+i) {
					t.Errorf("goroutine %d readback mismatch", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: a batch of random writes reads back exactly (last write per
// address wins).
func TestQuickWriteRead(t *testing.T) {
	prop := func(addrs []uint16, vals []uint64) bool {
		m := New()
		want := map[uint64]uint64{}
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			a := uint64(addrs[i]) * 8
			m.Write(a, vals[i])
			want[a] = vals[i]
		}
		for a, v := range want {
			if m.Read(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Snapshot/Restore is lossless for any write set.
func TestQuickSnapshotRestore(t *testing.T) {
	prop := func(addrs []uint16, vals []uint64) bool {
		m := New()
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			m.Write(uint64(addrs[i])*8, vals[i])
		}
		snap := m.Snapshot()
		m.Write(0x9999_9998, 123)
		m.Restore(snap)
		return m.Equal(snap)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
