package mem

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestMemoryWireRoundTrip(t *testing.T) {
	m := New()
	for i := uint64(0); i < 2000; i++ {
		m.Write(i*8*37, i+1) // spread across pages and shards
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got := New()
	got.Write(123456, 42) // stale content must be dropped by decode
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !m.Equal(got) {
		t.Fatal("memory did not survive the wire round trip")
	}
	if m.AllocatedWords() != got.AllocatedWords() {
		t.Fatalf("allocated words %d != %d (cost model would diverge)",
			m.AllocatedWords(), got.AllocatedWords())
	}
}
