package mem

import (
	"bytes"
	"encoding/gob"
	"sort"
)

// Wire serialization for run snapshots: the sparse page set flattened
// into a page-number-sorted slice, so encoding is deterministic and the
// decode rebuilds exactly the allocated pages (AllocatedWords, which
// feeds the checkpoint cost model, survives the round trip).

type pageWire struct {
	PN    uint64
	Words page
}

// GobEncode implements gob.GobEncoder. The receiver must be quiescent
// (no concurrent writers); the engine serializes only at checkpoint
// boundaries, where that holds.
func (m *Memory) GobEncode() ([]byte, error) {
	var pages []pageWire
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for pn, p := range sh.pages {
			pages = append(pages, pageWire{PN: pn, Words: *p})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].PN < pages[j].PN })
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(pages)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder, leaving the memory holding
// exactly the encoded pages with tracking off.
func (m *Memory) GobDecode(data []byte) error {
	var pages []pageWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&pages); err != nil {
		return err
	}
	fresh := New()
	for i := range pages {
		p := pages[i].Words
		fresh.shardFor(pages[i].PN).pages[pages[i].PN] = &p
	}
	for i := range m.shards {
		dst := &m.shards[i]
		dst.mu.Lock()
		dst.pages = fresh.shards[i].pages
		dst.dirty = nil
		dst.mu.Unlock()
	}
	m.track.Store(false)
	return nil
}
