// Package mem implements the target machine's physical memory image.
//
// Memory is word-granular (64-bit words at 8-byte-aligned addresses) and
// sparsely paged so that workloads can use widely-spread address regions
// without preallocating gigabytes. All accesses are safe for concurrent use
// by core threads in the parallel host; functional values read through a
// lock so the simulated workload state itself can never be corrupted by
// host races (the paper relies on the same property: workload
// synchronization is executed reliably inside the simulator).
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	// PageWords is the number of 64-bit words per page (4 KiB pages).
	PageWords = 512
	// pageShift converts a word index to a page number.
	pageShift = 9
	pageMask  = PageWords - 1
	numShards = 16
)

type page [PageWords]uint64

type shard struct {
	mu    sync.RWMutex
	pages map[uint64]*page
	// dirty lists pages written since the last incremental-checkpoint
	// sync; guarded by mu.
	dirty map[uint64]struct{}
	// free parks zeroed pages released by rollback deletion or Reset, so
	// page churn recycles instead of allocating; guarded by mu (or by
	// exclusive ownership of the Memory, e.g. a manager-private snapshot).
	free []*page
}

// getPage pops a recycled (already zeroed) page or allocates a fresh one.
// The caller holds sh.mu or owns the Memory exclusively.
//
//slacksim:hotpath
//slacksim:pooled
func (sh *shard) getPage() *page {
	if n := len(sh.free); n > 0 { //lint:allow guardedby -- locking contract: every caller holds sh.mu or owns the Memory exclusively
		p := sh.free[n-1]       //lint:allow guardedby -- see above
		sh.free[n-1] = nil      //lint:allow guardedby -- see above
		sh.free = sh.free[:n-1] //lint:allow guardedby -- see above
		return p
	}
	return new(page) //lint:allow hotpathalloc -- pool warm-up: runs only while the page free list is empty
}

// putPage zeroes p and parks it on the free list. Same locking contract
// as getPage. Zeroing happens here, off the Write fast path, so a
// recycled page reads as zero exactly like a fresh one.
//
//slacksim:hotpath
func (sh *shard) putPage(p *page) {
	*p = page{}
	sh.free = append(sh.free, p) //lint:allow hotpathalloc,guardedby -- free-list growth is bounded by the high-water page count, then reused; caller holds sh.mu per the locking contract
}

// Memory is a sparse, sharded target memory image.
type Memory struct {
	shards [numShards]shard
	// track enables dirty-page recording. Atomic because the parallel
	// host's core goroutines consult it inside Write while the manager
	// flips it on at the first checkpoint.
	track atomic.Bool
}

// New returns an empty memory image.
func New() *Memory {
	m := &Memory{}
	for i := range m.shards {
		m.shards[i].pages = make(map[uint64]*page)
	}
	return m
}

func split(addr uint64) (pn, off uint64) {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mem: unaligned access at %#x", addr))
	}
	w := addr >> 3
	return w >> pageShift, w & pageMask
}

func (m *Memory) shardFor(pn uint64) *shard { return &m.shards[pn%numShards] }

// Read returns the 64-bit word at the 8-byte-aligned address addr.
// Unallocated memory reads as zero.
func (m *Memory) Read(addr uint64) uint64 {
	pn, off := split(addr)
	sh := m.shardFor(pn)
	sh.mu.RLock()
	p := sh.pages[pn]
	var v uint64
	if p != nil {
		v = p[off]
	}
	sh.mu.RUnlock()
	return v
}

// Write stores the 64-bit word v at the 8-byte-aligned address addr.
func (m *Memory) Write(addr uint64, v uint64) {
	pn, off := split(addr)
	sh := m.shardFor(pn)
	sh.mu.Lock()
	p := sh.pages[pn]
	if p == nil {
		p = sh.getPage()
		sh.pages[pn] = p
	}
	p[off] = v
	if m.track.Load() {
		sh.dirty[pn] = struct{}{}
	}
	sh.mu.Unlock()
}

// ReadFloat reads the word at addr and reinterprets it as float64.
func (m *Memory) ReadFloat(addr uint64) float64 {
	return f64(m.Read(addr))
}

// WriteFloat stores float64 f's bit pattern at addr.
func (m *Memory) WriteFloat(addr uint64, f float64) {
	m.Write(addr, u64(f))
}

// Snapshot returns a deep copy of the memory image. It is the memory's
// contribution to a simulation checkpoint.
func (m *Memory) Snapshot() *Memory {
	c := New()
	m.SnapshotInto(c)
	return c
}

// SnapshotInto deep-copies the memory image into dst, reusing dst's page
// maps and recycled pages — the pooled-snapshot-graph variant of
// Snapshot.
func (m *Memory) SnapshotInto(dst *Memory) {
	dst.Restore(m)
}

// Restore overwrites this memory with the snapshot's contents, reusing
// the existing page maps and page allocations.
func (m *Memory) Restore(snap *Memory) {
	for i := range m.shards {
		src := &snap.shards[i]
		dst := &m.shards[i]
		src.mu.RLock()
		dst.mu.Lock()
		for pn, p := range dst.pages {
			if src.pages[pn] == nil {
				delete(dst.pages, pn)
				dst.putPage(p)
			}
		}
		for pn, p := range src.pages {
			q := dst.pages[pn]
			if q == nil {
				q = dst.getPage()
				dst.pages[pn] = q
			}
			*q = *p
		}
		clear(dst.dirty)
		dst.mu.Unlock()
		src.mu.RUnlock()
	}
}

// Reset returns the memory to its freshly-constructed (empty) state,
// recycling every page through the shard free lists. Used when a pooled
// machine is recycled for a new run.
func (m *Memory) Reset() {
	m.track.Store(false)
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for _, p := range sh.pages {
			sh.putPage(p)
		}
		clear(sh.pages)
		clear(sh.dirty)
		sh.mu.Unlock()
	}
}

// StartTracking begins dirty-page tracking for incremental checkpoints;
// the caller takes a full Snapshot at the same instant. On the parallel
// host it must be called while core goroutines are quiescent (the
// manager's checkpoint path guarantees this).
func (m *Memory) StartTracking() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		if sh.dirty == nil {
			sh.dirty = make(map[uint64]struct{}) //lint:allow hotpathalloc -- one-time tracking warm-up; cleared and reused thereafter
		} else {
			clear(sh.dirty)
		}
		sh.mu.Unlock()
	}
	m.track.Store(true)
}

// SyncSnapshot brings snap (a full Snapshot kept current since tracking
// started) up to date by copying only pages written since the last sync
// or restore.
//
//slacksim:hotpath
func (m *Memory) SyncSnapshot(snap *Memory) {
	for i := range m.shards {
		src := &m.shards[i]
		dst := &snap.shards[i]
		src.mu.Lock()
		for pn := range src.dirty {
			p := src.pages[pn]
			if p == nil {
				continue
			}
			q := dst.pages[pn]
			if q == nil {
				// First sync of a page only; subsequent boundaries reuse
				// it, and the free list makes even the first sync cheap.
				q = dst.getPage()
				dst.pages[pn] = q
			}
			*q = *p
		}
		clear(src.dirty)
		src.mu.Unlock()
	}
}

// RestoreDirty rolls memory back to snap by undoing only the pages
// written since the last sync: diverged pages are copied back and pages
// allocated after the checkpoint are deleted (so AllocatedWords — which
// feeds the checkpoint cost model — matches a deep restore exactly).
//
//slacksim:hotpath
func (m *Memory) RestoreDirty(snap *Memory) {
	for i := range m.shards {
		dst := &m.shards[i]
		src := &snap.shards[i]
		dst.mu.Lock()
		for pn := range dst.dirty {
			q := src.pages[pn]
			if q == nil {
				if p := dst.pages[pn]; p != nil {
					dst.putPage(p)
				}
				delete(dst.pages, pn)
				continue
			}
			if p := dst.pages[pn]; p != nil {
				*p = *q
			}
		}
		clear(dst.dirty)
		dst.mu.Unlock()
	}
}

// AllocatedWords reports how many words of backing store are allocated
// (used by the checkpoint cost model).
func (m *Memory) AllocatedWords() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.pages) * PageWords
		sh.mu.RUnlock()
	}
	return n
}

// Equal reports whether two memory images hold identical contents
// (unallocated pages compare equal to zero pages).
func (m *Memory) Equal(o *Memory) bool {
	zero := page{}
	check := func(a, b *Memory) bool {
		for i := range a.shards {
			sa := &a.shards[i]
			sb := &b.shards[i]
			sa.mu.RLock()
			sb.mu.RLock()
			ok := true
			for pn, p := range sa.pages {
				q := sb.pages[pn]
				if q == nil {
					q = &zero
				}
				if *p != *q {
					ok = false
					break
				}
			}
			sb.mu.RUnlock()
			sa.mu.RUnlock()
			if !ok {
				return false
			}
		}
		return true
	}
	return check(m, o) && check(o, m)
}
