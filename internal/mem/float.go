package mem

import "math"

func f64(u uint64) float64 { return math.Float64frombits(u) }
func u64(f float64) uint64 { return math.Float64bits(f) }
