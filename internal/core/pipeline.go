package core

import (
	"fmt"

	"slacksim/internal/cache"
	"slacksim/internal/coherence"
	"slacksim/internal/event"
	"slacksim/internal/isa"
)

// Tick simulates one target clock cycle: message delivery from the
// manager, then the pipeline stages in reverse order so results flow with
// realistic timing, then the local clock advances. A halted core still
// ticks (idling) so the slack time protocol stays live until the engine
// retires it.
func (c *Core) Tick() {
	c.processInQ()
	if c.halted {
		c.stats.IdleAfterEnd++
	} else {
		c.commit()
		c.completeExec()
		c.issue()
		c.dispatch()
		c.fetch()
	}
	c.now++
	c.stats.Cycles++
}

// processInQ consumes manager messages whose effect time has been reached,
// per the paper's InQ protocol (a core reads an entry out when its local
// time reaches the entry's timestamp).
func (c *Core) processInQ() {
	for {
		msg, ok := c.inQ.PopIf(func(m event.Msg) bool { return m.TS <= c.now })
		if !ok {
			return
		}
		switch msg.Kind {
		case event.MsgReply:
			c.applyReply(msg)
		case event.MsgInval:
			c.applySnoop(msg)
		}
	}
}

func (c *Core) applyReply(msg event.Msg) {
	if c.imshr.Lookup(msg.LineAddr) != nil {
		c.imshr.Release(msg.LineAddr)
		// Instruction lines are never dirty; victims are dropped silently.
		c.l1i.Insert(msg.LineAddr, msg.NewState)
		return
	}
	waiters := c.dmshr.Release(msg.LineAddr)
	victim := c.l1d.Insert(msg.LineAddr, msg.NewState)
	if victim.Valid && victim.Dirty {
		c.sendReq(coherence.BusWB, victim.LineAddr)
	}
	for _, seq := range waiters {
		e := c.bySeq(seq)
		if e == nil || e.state != stWaitMem {
			continue // squashed or already satisfied
		}
		if cache.LineAddr(e.addr) != msg.LineAddr {
			continue
		}
		if e.inst.Op == isa.Load {
			// Register values and memory data are fetched just before
			// execution (NetBurst-like), so the load reads the memory
			// image at completion time.
			e.result = c.mem.Read(e.addr)
			e.hasResult = true
		}
		e.state = stDone
		e.doneAt = c.now
	}
}

func (c *Core) applySnoop(msg event.Msg) {
	if c.l1d.State(msg.LineAddr).Valid() {
		// Before yielding the line, complete a non-speculative store that
		// already obtained write permission on it: hardware performs the
		// pending store and then transfers the line. Without this, a
		// heavily-contended line livelocks — every core's ownership fill
		// is revoked by the next core's queued snoop before the store at
		// the head of the ROB can commit.
		if c.robLen() > 0 {
			e := c.rob[c.robHead]
			if e.inst.Op == isa.Store && e.state == stDone && !e.written &&
				e.addrValid && cache.LineAddr(e.addr) == msg.LineAddr &&
				c.l1d.State(msg.LineAddr).CanWrite() {
				c.mem.Write(e.addr, e.storeVal)
				e.written = true
			}
		}
		c.l1d.SetState(msg.LineAddr, msg.NewState)
	}
	if c.l1i.State(msg.LineAddr).Valid() && msg.NewState == coherence.Invalid {
		c.l1i.SetState(msg.LineAddr, coherence.Invalid)
	}
}

// commit retires up to CommitWidth instructions from the head of the ROB.
// Synchronization instructions execute here, non-speculatively.
func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.robLen() > 0; n++ {
		e := c.rob[c.robHead]
		switch e.inst.Op.Class() {
		case isa.ClassSync:
			if !c.commitSync(e) {
				return
			}
		case isa.ClassHalt:
			c.halted = true
		case isa.ClassStore:
			if e.state != stDone {
				return
			}
			if !c.commitStore(e) {
				return
			}
		default:
			if e.state != stDone {
				return
			}
			if e.hasResult && writesDest(e.inst) {
				c.regs[e.inst.Dst] = e.result
			}
		}
		c.retireHead(e)
		if c.halted {
			return
		}
	}
}

//slacksim:hotpath
func (c *Core) retireHead(e *robEntry) {
	if c.rec != nil {
		c.recordRetire(e)
	}
	c.rob[c.robHead] = nil
	c.robHead++
	if c.robHead == len(c.rob) {
		// Window empty: reset to the start of the backing array so the
		// full capacity is reusable and bySeq never walks a long prefix.
		c.rob = c.rob[:0]
		c.robHead = 0
	} else if c.robHead >= 32 && c.robHead*2 >= len(c.rob) {
		// Amortized compaction: copy the window down once the dead prefix
		// dominates, so the backing array stays bounded by ~2×ROBSize.
		n := copy(c.rob, c.rob[c.robHead:])
		clear(c.rob[n:])
		c.rob = c.rob[:n]
		c.robHead = 0
	}
	if c.mapTable[e.inst.Dst] == e.seq {
		c.mapTable[e.inst.Dst] = -1
	}
	if c.serializeSeq == e.seq {
		c.serializeSeq = -1
	}
	c.stats.Committed++
	switch e.inst.Op.Class() {
	case isa.ClassLoad:
		c.stats.Loads++
	case isa.ClassStore:
		c.stats.Stores++
	case isa.ClassBranch:
		c.stats.Branches++
	}
	c.freeEntry(e)
}

// commitSync executes a lock or barrier at the head of the ROB. It returns
// false while the operation must keep the core waiting (the core spins in
// target time: its clock keeps advancing, no commit happens).
func (c *Core) commitSync(e *robEntry) bool {
	switch e.inst.Op {
	case isa.LockAcq:
		if e.state == stDone {
			return true
		}
		c.stats.LockWait++
		if c.now < e.nextLockTry {
			return false
		}
		addr := c.regs[e.inst.Src1] + uint64(e.inst.Imm)
		if c.sync.TryLock(addr, c.cfg.ID, c.now) {
			e.state = stDone
			return true
		}
		c.stats.LockRetries++
		e.nextLockTry = c.now + c.cfg.LockRetryInterval
		return false
	case isa.LockRel:
		addr := c.regs[e.inst.Src1] + uint64(e.inst.Imm)
		c.sync.Unlock(addr, c.cfg.ID, c.now)
		return true
	case isa.Barrier:
		if !e.barrierArrived {
			e.barrierGen = c.sync.BarrierArrive(e.inst.Imm, c.cfg.ID, c.now)
			e.barrierArrived = true
		}
		if c.sync.BarrierPassed(e.inst.Imm, e.barrierGen, c.now) {
			return true
		}
		c.stats.BarrierWait++
		return false
	}
	panic(fmt.Sprintf("core %d: unknown sync op %v", c.cfg.ID, e.inst.Op))
}

// commitStore performs the architectural store: it needs write permission
// in the L1D (which a snoop may have stolen since the store executed); on
// a lost line it re-requests ownership and stalls commit.
func (c *Core) commitStore(e *robEntry) bool {
	if e.written {
		// The write was already performed when a snoop forced the line
		// away (see applySnoop); nothing left to do but retire.
		return true
	}
	line := cache.LineAddr(e.addr)
	st := c.l1d.State(line)
	if !st.CanWrite() {
		// A snoop stole the line between execution and commit: re-obtain
		// write permission. Merge into an outstanding miss on the line if
		// one exists (its reply wakes this store; a read-grade grant just
		// sends us around this loop once more); on a full MSHR file stay
		// retired-pending and retry next cycle.
		if entry, primary := c.dmshr.Allocate(line, true, e.seq, c.now); entry != nil {
			if primary {
				kind := coherence.RequestFor(st, true)
				if kind == coherence.BusNone {
					kind = coherence.BusRdX
				}
				c.sendReq(kind, line)
			}
			e.state = stWaitMem
		}
		return false
	}
	c.mem.Write(e.addr, e.storeVal)
	if st == coherence.Exclusive {
		c.l1d.SetState(line, coherence.Modified)
	}
	c.l1d.Probe(line, true) // touch LRU, count the write access
	return true
}

// completeExec marks issued instructions whose latency elapsed as done and
// resolves branches, flushing on mispredictions.
func (c *Core) completeExec() {
	rob := c.robs()
	for i := 0; i < len(rob); i++ {
		e := rob[i]
		if e.state != stIssued || e.doneAt > c.now {
			continue
		}
		e.state = stDone
		if e.inst.Op.IsBranch() && !e.resolved {
			e.resolved = true
			c.pred.Update(e.pc, e.actualTaken)
			if e.actualTaken != e.predTaken {
				c.pred.Mispredicts++
				c.stats.Mispredicts++
				c.flushAfter(i)
				next := e.pc + 1
				if e.actualTaken {
					next = int(e.inst.Imm)
				}
				c.fetchPC = next
				c.fetchStallUntil = c.now + int64(c.cfg.MispredictPenalty)
				return
			}
		}
	}
}

// flushAfter squashes every ROB entry younger than window index i and the
// entire fetch buffer, then rebuilds the map table from the surviving
// entries. nextSeq rewinds to just past the youngest survivor so window
// seqs stay contiguous (the bySeq invariant). Reusing squashed seqs is
// safe: the only external holders of seqs are MSHR waiter lists, and a
// reused-seq entry waiting on the same line necessarily merged into the
// same outstanding MSHR entry, so a wakeup through the stale seq is a
// wakeup the entry was owed anyway (applyReply re-checks state and line).
func (c *Core) flushAfter(i int) {
	c.stats.Flushes++
	w := c.robs()
	for j := i + 1; j < len(w); j++ {
		e := w[j]
		if c.serializeSeq == e.seq {
			c.serializeSeq = -1
		}
		c.freeEntry(e)
		w[j] = nil
	}
	c.rob = c.rob[:c.robHead+i+1]
	c.nextSeq = w[i].seq + 1
	c.fetchBuf = c.fetchBuf[:0]
	for r := range c.mapTable {
		c.mapTable[r] = -1
	}
	for _, e := range c.robs() {
		if writesDest(e.inst) {
			c.mapTable[e.inst.Dst] = e.seq
		}
	}
}

// issue selects up to IssueWidth ready instructions, oldest first, reads
// their operands and starts execution, modeling per-class functional-unit
// limits.
func (c *Core) issue() {
	slots := c.cfg.IssueWidth
	memPorts := c.cfg.MemPortsPerCycle
	fpOps := c.cfg.FPopsPerCycle
	divs := c.cfg.DivsPerCycle
	rob := c.robs()
	for i := 0; i < len(rob) && slots > 0; i++ {
		e := rob[i]
		if e.state != stDispatched {
			continue
		}
		cls := e.inst.Op.Class()
		switch cls {
		case isa.ClassSync, isa.ClassHalt, isa.ClassNop:
			// Executed at commit (sync/halt) or trivially done (nop).
			if cls == isa.ClassNop {
				e.state = stDone
				e.doneAt = c.now
			}
			continue
		case isa.ClassLoad, isa.ClassStore:
			if memPorts == 0 {
				continue
			}
		case isa.ClassFPAdd, isa.ClassFPMul:
			if fpOps == 0 {
				continue
			}
		case isa.ClassIntDiv, isa.ClassFPDiv:
			if divs == 0 {
				continue
			}
		}
		issued := c.tryIssue(i, e)
		if !issued {
			continue
		}
		slots--
		switch cls {
		case isa.ClassLoad, isa.ClassStore:
			memPorts--
		case isa.ClassFPAdd, isa.ClassFPMul:
			fpOps--
		case isa.ClassIntDiv, isa.ClassFPDiv:
			divs--
		}
	}
}

// tryIssue attempts to begin execution of ROB entry e (at index idx).
func (c *Core) tryIssue(idx int, e *robEntry) bool {
	useS1, useS2 := reads(e.inst)
	var a, b uint64
	if useS1 {
		v, ok := c.operand(e, 0, e.inst.Src1)
		if !ok {
			return false
		}
		a = v
	}
	if useS2 {
		v, ok := c.operand(e, 1, e.inst.Src2)
		if !ok {
			return false
		}
		b = v
	}
	switch e.inst.Op.Class() {
	case isa.ClassBranch:
		e.actualTaken = isa.BranchTaken(e.inst, a, b)
		e.state = stIssued
		e.doneAt = c.now + execLatency(isa.ClassBranch)
		return true
	case isa.ClassLoad:
		return c.issueLoad(idx, e, a)
	case isa.ClassStore:
		e.addr = a + uint64(e.inst.Imm)
		e.addrValid = true
		e.storeVal = b
		return c.issueStore(e)
	default:
		e.result = isa.ALUResult(e.inst, a, b)
		e.hasResult = true
		e.state = stIssued
		e.doneAt = c.now + execLatency(e.inst.Op.Class())
		return true
	}
}

// issueLoad executes a load: memory disambiguation against older stores,
// store-to-load forwarding, then L1D access with lock-up-free misses.
func (c *Core) issueLoad(idx int, e *robEntry, base uint64) bool {
	addr := base + uint64(e.inst.Imm)
	// Disambiguate: every older store must have a known address; the
	// youngest older store to the same word forwards its value.
	var fwd *robEntry
	rob := c.robs()
	for i := 0; i < idx; i++ {
		s := rob[i]
		if s.inst.Op != isa.Store {
			continue
		}
		if !s.addrValid {
			return false // conservative: wait for the address
		}
		if s.addr == addr {
			fwd = s
		}
	}
	e.addr = addr
	e.addrValid = true
	if fwd != nil {
		e.result = fwd.storeVal
		e.hasResult = true
		e.state = stIssued
		e.doneAt = c.now + 1 // forwarding latency
		return true
	}
	line := cache.LineAddr(addr)
	if c.l1d.Probe(line, false) {
		e.result = c.mem.Read(addr)
		e.hasResult = true
		e.state = stIssued
		e.doneAt = c.now + int64(c.l1d.Latency())
		return true
	}
	entry, primary := c.dmshr.Allocate(line, false, e.seq, c.now)
	if entry == nil {
		return false // MSHR file full; retry next cycle
	}
	if primary {
		c.sendReq(coherence.BusRd, line)
	}
	e.state = stWaitMem
	return true
}

// issueStore computes the store's address and value and obtains write
// permission; the architectural write happens at commit.
func (c *Core) issueStore(e *robEntry) bool {
	line := cache.LineAddr(e.addr)
	st := c.l1d.State(line)
	if st.CanWrite() {
		e.state = stIssued
		e.doneAt = c.now + execLatency(isa.ClassStore)
		return true
	}
	entry, primary := c.dmshr.Allocate(line, true, e.seq, c.now)
	if entry == nil {
		e.addrValid = false // retry whole issue next cycle
		return false
	}
	if primary {
		kind := coherence.RequestFor(st, true)
		if kind == coherence.BusNone {
			kind = coherence.BusRdX
		}
		c.sendReq(kind, line)
	}
	e.state = stWaitMem
	return true
}

// dispatch moves instructions from the fetch buffer into the ROB,
// recording operand producers (renaming). Sync and halt instructions
// serialize: nothing younger dispatches until they commit.
func (c *Core) dispatch() {
	k := 0
	for n := 0; n < c.cfg.IssueWidth && k < len(c.fetchBuf) && c.robLen() < c.cfg.ROBSize; n++ {
		if c.serializeSeq >= 0 {
			break
		}
		f := c.fetchBuf[k]
		k++
		e := c.allocEntry()
		*e = robEntry{
			seq: c.nextSeq, pc: f.pc, inst: f.inst, state: stDispatched,
			predTaken: f.predTaken, srcProd: [2]int{-1, -1},
		}
		c.nextSeq++
		useS1, useS2 := reads(f.inst)
		if useS1 {
			e.srcProd[0] = c.mapTable[f.inst.Src1]
		}
		if useS2 {
			e.srcProd[1] = c.mapTable[f.inst.Src2]
		}
		if writesDest(f.inst) {
			c.mapTable[f.inst.Dst] = e.seq
		}
		if f.inst.Op.IsSync() || f.inst.Op == isa.Halt {
			c.serializeSeq = e.seq
		}
		c.rob = append(c.rob, e)
	}
	if k > 0 {
		c.fetchBuf = c.fetchBuf[:copy(c.fetchBuf, c.fetchBuf[k:])]
	}
}

// fetch brings up to FetchWidth instructions into the fetch buffer,
// predicting branch directions; it stalls on I-cache misses and after
// mispredict redirects.
func (c *Core) fetch() {
	if c.now < c.fetchStallUntil {
		return
	}
	for n := 0; n < c.cfg.FetchWidth && len(c.fetchBuf) < c.cfg.FetchBufSize; n++ {
		pc := c.fetchPC
		line := c.codeLine(pc)
		if c.imshr.Lookup(line) != nil {
			return // miss outstanding
		}
		if !c.l1i.Probe(line, false) {
			if _, primary := c.imshr.Allocate(line, false, -1, c.now); primary {
				c.sendReq(coherence.BusIFetch, line)
			}
			return
		}
		in := c.prog.At(pc)
		f := fetched{pc: pc, inst: in}
		next := pc + 1
		if in.Op.IsBranch() {
			if in.Op == isa.Jmp {
				f.predTaken = true
			} else {
				f.predTaken = c.pred.Predict(pc)
			}
			if f.predTaken {
				next = int(in.Imm)
			}
		}
		c.fetchBuf = append(c.fetchBuf, f)
		c.fetchPC = next
		if in.Op == isa.Halt || in.Op.IsSync() {
			return // do not fetch past serializing instructions this cycle
		}
		if f.predTaken {
			return // taken branch ends the fetch group
		}
	}
}
