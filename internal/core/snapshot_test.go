package core

import (
	"testing"

	"slacksim/internal/isa"
)

// TestSnapshotRestoreMidFlight checkpoints a core in the middle of a loop
// with in-flight memory traffic and verifies the re-executed run reaches
// the same architectural state — the property the speculative slack
// engine's rollback relies on.
func TestSnapshotRestoreMidFlight(t *testing.T) {
	build := func(b *isa.Builder) {
		b.Li(3, 40) // counter
		b.Li(4, 0)  // sum
		b.Li(6, 0x3000)
		top := b.Here()
		b.Load(5, 6, 0)
		b.Op3(isa.Add, 4, 4, 5)
		b.Store(4, 6, 0)
		b.Subi(3, 3, 1)
		b.Bne(3, isa.Zero, top)
		b.Halt()
	}
	h := newHarness(t, build)
	h.mem.Write(0x3000, 1)

	// Advance into the middle of the loop.
	for i := 0; i < 37; i++ {
		h.core.Tick()
		h.pump()
	}
	snap := h.core.Snapshot()
	memSnap := h.mem.Snapshot()
	inQSnap := h.inQ.Snapshot()
	outQSnap := h.outQ.Snapshot()
	syncSnap := h.sync.Snapshot()

	h.run(t, 20000)
	wantR4 := h.core.Reg(4)
	wantMem := h.mem.Read(0x3000)
	wantCommitted := h.core.Stats().Committed

	// Roll back and replay.
	h.core.Restore(snap)
	h.mem.Restore(memSnap)
	h.inQ.Restore(inQSnap)
	h.outQ.Restore(outQSnap)
	h.sync.Restore(syncSnap)

	h.run(t, 20000)
	if got := h.core.Reg(4); got != wantR4 {
		t.Errorf("replayed r4 = %d, want %d", got, wantR4)
	}
	if got := h.mem.Read(0x3000); got != wantMem {
		t.Errorf("replayed mem = %d, want %d", got, wantMem)
	}
	if got := h.core.Stats().Committed; got != wantCommitted {
		t.Errorf("replayed committed = %d, want %d", got, wantCommitted)
	}
}

// TestSnapshotIsDeep mutates the core after a snapshot and checks the
// snapshot still restores the original state.
func TestSnapshotIsDeep(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 100)
		top := b.Here()
		b.OpImm(isa.Addi, 4, 4, 1)
		b.Subi(3, 3, 1)
		b.Bne(3, isa.Zero, top)
		b.Halt()
	})
	for i := 0; i < 20; i++ {
		h.core.Tick()
		h.pump()
	}
	snap := h.core.Snapshot()
	r3 := h.core.Reg(3)
	inFlight := h.core.InFlight()
	now := h.core.Now()

	for i := 0; i < 30; i++ {
		h.core.Tick()
		h.pump()
	}
	h.core.Restore(snap)
	if h.core.Reg(3) != r3 || h.core.InFlight() != inFlight || h.core.Now() != now {
		t.Errorf("restore mismatch: r3=%d inflight=%d now=%d, want %d/%d/%d",
			h.core.Reg(3), h.core.InFlight(), h.core.Now(), r3, inFlight, now)
	}
	// Tick the restored core; the snapshot must remain restorable again.
	for i := 0; i < 10; i++ {
		h.core.Tick()
		h.pump()
	}
	h.core.Restore(snap)
	if h.core.Reg(3) != r3 || h.core.Now() != now {
		t.Error("second restore from same snapshot diverged")
	}
}

// TestSnapshotStateWords sanity-checks the cost accounting.
func TestSnapshotStateWords(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 1)
		b.Halt()
	})
	s := h.core.Snapshot()
	if s.StateWords() <= 0 {
		t.Error("snapshot reports no state")
	}
}

// TestRestoreDeterministicReplay runs the same program twice from the same
// snapshot and demands bit-identical commit counts each tick — rollback
// replay must be deterministic.
func TestRestoreDeterministicReplay(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 30)
		b.Li(6, 0x7000)
		top := b.Here()
		b.Store(3, 6, 0)
		b.Load(4, 6, 0)
		b.Subi(3, 3, 1)
		b.Bne(3, isa.Zero, top)
		b.Halt()
	})
	for i := 0; i < 25; i++ {
		h.core.Tick()
		h.pump()
	}
	snap := h.core.Snapshot()
	memSnap := h.mem.Snapshot()
	inSnap := h.inQ.Snapshot()
	outSnap := h.outQ.Snapshot()

	replay := func() []uint64 {
		h.core.Restore(snap)
		h.mem.Restore(memSnap)
		h.inQ.Restore(inSnap)
		h.outQ.Restore(outSnap)
		var trace []uint64
		for i := 0; i < 300 && !h.core.Halted(); i++ {
			h.core.Tick()
			h.pump()
			trace = append(trace, h.core.Stats().Committed)
		}
		return trace
	}
	a := replay()
	b := replay()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at tick %d: %d vs %d", i, a[i], b[i])
		}
	}
}
