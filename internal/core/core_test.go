package core

import (
	"testing"

	"slacksim/internal/coherence"
	"slacksim/internal/event"
	"slacksim/internal/isa"
	"slacksim/internal/mem"
	"slacksim/internal/syncctl"
)

// harness drives a single core with a loopback memory system: every
// request is serviced after a fixed latency with an exclusive grant, so
// the core model can be tested in isolation from the uncore.
type harness struct {
	core *Core
	mem  *mem.Memory
	sync *syncctl.Controller
	outQ *event.Shard[event.Request]
	inQ  *event.Queue[event.Msg]

	latency int64
	served  int
}

func newHarness(t *testing.T, build func(b *isa.Builder)) *harness {
	t.Helper()
	b := isa.NewBuilder("test")
	build(b)
	prog, err := b.Program()
	if err != nil {
		t.Fatalf("program: %v", err)
	}
	return newHarnessProg(t, prog)
}

func newHarnessProg(t *testing.T, prog *isa.Program) *harness {
	t.Helper()
	h := &harness{
		mem:     mem.New(),
		sync:    syncctl.New(1),
		outQ:    event.NewShard[event.Request](),
		inQ:     event.NewQueue[event.Msg](),
		latency: 10,
	}
	c, err := New(DefaultConfig(0), prog, h.mem, h.sync, h.outQ, h.inQ)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.core = c
	return h
}

// pump services all pending requests with exclusive grants.
func (h *harness) pump() {
	for {
		req, ok := h.outQ.Pop()
		if !ok {
			return
		}
		h.served++
		if req.Kind == coherence.BusWB {
			continue
		}
		h.inQ.Push(event.Msg{
			Kind:     event.MsgReply,
			ReqID:    req.ID,
			LineAddr: req.LineAddr,
			NewState: coherence.GrantState(req.Kind, false),
			TS:       req.TS + h.latency,
		})
	}
}

// run ticks until the core halts or maxCycles elapse; it fails the test on
// timeout.
func (h *harness) run(t *testing.T, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		if h.core.Halted() {
			return
		}
		h.core.Tick()
		h.pump()
	}
	t.Fatalf("core did not halt in %d cycles: %v", maxCycles, h.core)
}

func TestALUProgram(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 6)
		b.Li(4, 7)
		b.Op3(isa.Mul, 5, 3, 4)
		b.OpImm(isa.Addi, 5, 5, 8)
		b.Op3(isa.Sub, 6, 5, 3)
		b.Halt()
	})
	h.run(t, 2000)
	if got := h.core.Reg(5); got != 50 {
		t.Errorf("r5 = %d, want 50", got)
	}
	if got := h.core.Reg(6); got != 44 {
		t.Errorf("r6 = %d, want 44", got)
	}
	if h.core.Stats().Committed != 6 {
		t.Errorf("committed = %d, want 6", h.core.Stats().Committed)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.OpImm(isa.Addi, isa.Zero, isa.Zero, 99)
		b.Op3(isa.Add, 3, isa.Zero, isa.Zero)
		b.Halt()
	})
	h.run(t, 2000)
	if h.core.Reg(isa.Zero) != 0 || h.core.Reg(3) != 0 {
		t.Error("write to r0 was not discarded")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 0x1000)
		b.Li(4, 1234)
		b.Store(4, 3, 0)
		b.Load(5, 3, 0)
		b.Load(6, 3, 8) // different word, same line
		b.Halt()
	})
	h.run(t, 5000)
	if h.mem.Read(0x1000) != 1234 {
		t.Errorf("mem = %d, want 1234", h.mem.Read(0x1000))
	}
	if h.core.Reg(5) != 1234 {
		t.Errorf("r5 = %d, want 1234 (forwarded or from cache)", h.core.Reg(5))
	}
	if h.core.Reg(6) != 0 {
		t.Errorf("r6 = %d, want 0", h.core.Reg(6))
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	// The load must see the store's value even before the store commits.
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 0x2000)
		b.Li(4, 77)
		b.Store(4, 3, 0)
		b.Load(5, 3, 0)
		b.Halt()
	})
	h.run(t, 5000)
	if h.core.Reg(5) != 77 {
		t.Errorf("r5 = %d, want 77", h.core.Reg(5))
	}
}

func TestLoopAndBranchPredictorTrains(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 50)
		b.Li(4, 0)
		top := b.Here()
		b.OpImm(isa.Addi, 4, 4, 2)
		b.Subi(3, 3, 1)
		b.Bne(3, isa.Zero, top)
		b.Halt()
	})
	h.run(t, 20000)
	if h.core.Reg(4) != 100 {
		t.Errorf("r4 = %d, want 100", h.core.Reg(4))
	}
	st := h.core.Stats()
	if st.Branches != 50 {
		t.Errorf("branches = %d, want 50", st.Branches)
	}
	// A bimodal predictor on a 50-iteration loop mispredicts only the
	// first iteration(s) and the exit.
	if st.Mispredicts > 5 {
		t.Errorf("mispredicts = %d, too many for a tight loop", st.Mispredicts)
	}
	if st.Mispredicts == 0 {
		t.Error("loop exit must mispredict at least once")
	}
}

func TestMispredictRecovery(t *testing.T) {
	// A data-dependent branch alternates taken/not-taken; results must
	// still be architecturally correct.
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 20) // counter
		b.Li(4, 0)  // sum of even iterations
		b.Li(5, 0)  // parity scratch
		top := b.Here()
		odd := b.NewLabel()
		b.OpImm(isa.Andi, 5, 3, 1)
		b.Bne(5, isa.Zero, odd)
		b.OpImm(isa.Addi, 4, 4, 1)
		b.Bind(odd)
		b.Subi(3, 3, 1)
		b.Bne(3, isa.Zero, top)
		b.Halt()
	})
	h.run(t, 20000)
	if h.core.Reg(4) != 10 {
		t.Errorf("r4 = %d, want 10", h.core.Reg(4))
	}
	if h.core.Stats().Flushes == 0 {
		t.Error("alternating branch never flushed")
	}
}

func TestICacheMissesCounted(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		for i := 0; i < 100; i++ {
			b.Nop()
		}
		b.Halt()
	})
	h.run(t, 10000)
	if h.core.L1I().Misses == 0 {
		t.Error("no I-cache misses on a cold cache")
	}
	if h.served == 0 {
		t.Error("no fetch requests reached the manager")
	}
}

func TestDCacheMissAndHit(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 0x4000)
		b.Load(4, 3, 0)  // cold miss
		b.Load(5, 3, 16) // same line: hit after fill
		b.Halt()
	})
	h.mem.Write(0x4000, 5)
	h.mem.Write(0x4010, 6)
	h.run(t, 5000)
	if h.core.Reg(4) != 5 || h.core.Reg(5) != 6 {
		t.Errorf("loads r4=%d r5=%d, want 5,6", h.core.Reg(4), h.core.Reg(5))
	}
	if h.core.L1D().Misses == 0 {
		t.Error("no D-cache miss recorded")
	}
}

func TestMSHRMergesSecondaryMisses(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 0x5000)
		b.Load(4, 3, 0)
		b.Load(5, 3, 8) // same line while miss outstanding: merge
		b.Halt()
	})
	h.mem.Write(0x5000, 1)
	h.mem.Write(0x5008, 2)
	h.run(t, 5000)
	if h.core.Reg(4) != 1 || h.core.Reg(5) != 2 {
		t.Errorf("merged loads r4=%d r5=%d", h.core.Reg(4), h.core.Reg(5))
	}
}

func TestLockUnlockViaController(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, int64(0x9000))
		b.Lock(3, 0)
		b.Li(4, 5)
		b.Unlock(3, 0)
		b.Halt()
	})
	h.run(t, 5000)
	if h.sync.Acquires != 1 || h.sync.Releases != 1 {
		t.Errorf("lock traffic %d/%d, want 1/1", h.sync.Acquires, h.sync.Releases)
	}
	if h.sync.LocksHeld() != 0 {
		t.Error("lock leaked")
	}
}

func TestLockSpinsWhenHeld(t *testing.T) {
	prog := func(b *isa.Builder) {
		b.Li(3, int64(0x9000))
		b.Lock(3, 0)
		b.Unlock(3, 0)
		b.Halt()
	}
	b := isa.NewBuilder("spin")
	prog(b)
	h := newHarnessProg(t, b.MustProgram())
	// Pre-hold the lock with a phantom second core.
	h.sync = syncctl.New(2)
	h.core.sync = h.sync
	h.sync.TryLock(0x9000, 1, 0)
	for i := 0; i < 100; i++ {
		h.core.Tick()
		h.pump()
	}
	if h.core.Halted() {
		t.Fatal("core passed a held lock")
	}
	if h.core.Stats().LockRetries == 0 {
		t.Fatal("no lock retries recorded")
	}
	h.sync.Unlock(0x9000, 1, h.core.Now())
	h.run(t, 5000)
}

func TestBarrierSingleCoreReleases(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Barrier(0)
		b.Li(3, 1)
		b.Halt()
	})
	h.run(t, 5000) // numCores=1: barrier releases immediately
	if h.core.Reg(3) != 1 {
		t.Error("code after barrier did not run")
	}
}

func TestHaltStopsCommitment(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 1)
		b.Halt()
		b.Li(3, 99) // must never commit
	})
	h.run(t, 5000)
	committed := h.core.Stats().Committed
	for i := 0; i < 50; i++ {
		h.core.Tick()
	}
	if h.core.Reg(3) != 1 {
		t.Errorf("r3 = %d, instruction after halt committed", h.core.Reg(3))
	}
	if h.core.Stats().Committed != committed {
		t.Error("commits after halt")
	}
	if h.core.Stats().IdleAfterEnd == 0 {
		t.Error("idle cycles not counted")
	}
}

func TestROBNeverExceedsCapacity(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 0x6000)
		// A long chain of dependent loads to fill the window.
		for i := 0; i < 200; i++ {
			b.Load(4, 3, int64(i*8)%512)
		}
		b.Halt()
	})
	for i := 0; i < 3000 && !h.core.Halted(); i++ {
		h.core.Tick()
		if h.core.InFlight() > DefaultConfig(0).ROBSize {
			t.Fatalf("ROB grew to %d", h.core.InFlight())
		}
		h.pump()
	}
}

func TestCPIWithinSanity(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 200)
		b.Li(4, 0)
		top := b.Here()
		b.OpImm(isa.Addi, 4, 4, 1)
		b.OpImm(isa.Addi, 5, 5, 1)
		b.OpImm(isa.Addi, 6, 6, 1)
		b.Subi(3, 3, 1)
		b.Bne(3, isa.Zero, top)
		b.Halt()
	})
	h.run(t, 20000)
	cpi := h.core.Stats().CPI()
	// Independent ALU chains on a 4-wide core: CPI must be comfortably
	// below 2 and above the theoretical 0.25.
	if cpi < 0.25 || cpi > 2 {
		t.Errorf("CPI = %v out of sanity range", cpi)
	}
}

func TestStatsCPIZeroWhenNothingCommitted(t *testing.T) {
	var s Stats
	if s.CPI() != 0 {
		t.Error("CPI of empty stats not 0")
	}
}

// replyFor builds the harness's standard exclusive-grant reply.
func replyFor(req event.Request, latency int64) event.Msg {
	return event.Msg{
		Kind:     event.MsgReply,
		ReqID:    req.ID,
		LineAddr: req.LineAddr,
		NewState: coherence.GrantState(req.Kind, false),
		TS:       req.TS + latency,
	}
}
