// Package core implements the cycle-level out-of-order core model that a
// SlackSim core thread simulates: a 4-way-issue machine with up to 64
// in-flight instructions, split 16KB L1 I/D caches kept lock-up free with
// MSHRs, and a NetBurst-like execution discipline in which register values
// are fetched just before execution (paper, Section 2). One call to Tick
// simulates one target clock of the core and its L1s.
package core

import (
	"fmt"

	"slacksim/internal/cache"
	"slacksim/internal/isa"
)

// Config describes one target core.
type Config struct {
	// ID is the core's index in the CMP.
	ID int

	// FetchWidth, IssueWidth and CommitWidth are instructions per cycle.
	FetchWidth, IssueWidth, CommitWidth int
	// ROBSize bounds in-flight instructions (the paper's cores allow 64).
	ROBSize int
	// FetchBufSize bounds the fetch-to-dispatch buffer.
	FetchBufSize int

	// DataMSHRs and InstMSHRs size the lock-up-free miss machinery.
	DataMSHRs, InstMSHRs int

	// L1I and L1D configure the private caches.
	L1I, L1D cache.Config

	// BimodalEntries sizes the branch direction predictor.
	BimodalEntries int
	// MispredictPenalty is the fetch-redirect bubble in cycles.
	MispredictPenalty int

	// MemPortsPerCycle, FPopsPerCycle, DivsPerCycle bound per-cycle issue
	// by functional-unit class (total issue is bounded by IssueWidth).
	MemPortsPerCycle, FPopsPerCycle, DivsPerCycle int

	// LockRetryInterval is how many target cycles a core spins before
	// retrying a contended lock.
	LockRetryInterval int64

	// CodeBase is the byte address where this core's program image lives;
	// it must not collide with any data region or other core's code.
	CodeBase uint64
}

// DefaultConfig returns the paper's target-core configuration for core id
// in a machine of numCores cores.
func DefaultConfig(id int) Config {
	return Config{
		ID:           id,
		FetchWidth:   4,
		IssueWidth:   4,
		CommitWidth:  4,
		ROBSize:      64,
		FetchBufSize: 8,
		DataMSHRs:    8,
		InstMSHRs:    2,
		L1I: cache.Config{
			Name: fmt.Sprintf("c%d.l1i", id), SizeBytes: 16 << 10, Assoc: 4, LatencyCycles: 1,
		},
		L1D: cache.Config{
			Name: fmt.Sprintf("c%d.l1d", id), SizeBytes: 16 << 10, Assoc: 4, LatencyCycles: 2,
		},
		BimodalEntries:    512,
		MispredictPenalty: 3,
		MemPortsPerCycle:  2,
		FPopsPerCycle:     2,
		DivsPerCycle:      1,
		LockRetryInterval: 16,
		CodeBase:          0x1000_0000_0000 + uint64(id)<<32,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("core %d: widths must be positive", c.ID)
	}
	if c.ROBSize <= 0 || c.FetchBufSize <= 0 {
		return fmt.Errorf("core %d: ROB and fetch buffer must be positive", c.ID)
	}
	if c.DataMSHRs <= 0 || c.InstMSHRs <= 0 {
		return fmt.Errorf("core %d: MSHR counts must be positive", c.ID)
	}
	if c.BimodalEntries <= 0 || c.BimodalEntries&(c.BimodalEntries-1) != 0 {
		return fmt.Errorf("core %d: bimodal entries must be a positive power of two", c.ID)
	}
	if c.LockRetryInterval <= 0 {
		return fmt.Errorf("core %d: lock retry interval must be positive", c.ID)
	}
	if err := c.L1I.Validate(); err != nil {
		return err
	}
	return c.L1D.Validate()
}

// Latency of each operation class in cycles (execution latency; load
// latency additionally includes the L1D hit time or the full miss round
// trip).
func execLatency(class isa.Class) int64 {
	switch class {
	case isa.ClassIntALU:
		return 1
	case isa.ClassIntMul:
		return 3
	case isa.ClassIntDiv:
		return 12
	case isa.ClassFPAdd:
		return 2
	case isa.ClassFPMul:
		return 4
	case isa.ClassFPDiv:
		return 12
	case isa.ClassBranch:
		return 1
	case isa.ClassStore:
		return 1
	}
	return 1
}
