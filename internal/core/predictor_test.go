package core

import (
	"testing"

	"slacksim/internal/isa"
)

func TestPredictorColdNotTaken(t *testing.T) {
	p := NewPredictor(64)
	if p.Predict(0) {
		t.Error("cold predictor predicts taken")
	}
}

func TestPredictorTrainsToTaken(t *testing.T) {
	p := NewPredictor(64)
	p.Update(5, true)
	if p.Predict(5) {
		t.Error("weakly-not-taken flipped after one update")
	}
	p.Update(5, true)
	if !p.Predict(5) {
		t.Error("two taken updates did not flip the counter")
	}
}

func TestPredictorSaturates(t *testing.T) {
	p := NewPredictor(64)
	for i := 0; i < 10; i++ {
		p.Update(5, true)
	}
	// One not-taken from saturation must not flip the prediction.
	p.Update(5, false)
	if !p.Predict(5) {
		t.Error("saturated counter flipped after one not-taken")
	}
	p.Update(5, false)
	p.Update(5, false)
	if p.Predict(5) {
		t.Error("three not-taken did not retrain")
	}
}

func TestPredictorIndexAliasing(t *testing.T) {
	p := NewPredictor(16)
	p.Update(3, true)
	p.Update(3, true)
	// pc 19 aliases pc 3 in a 16-entry table.
	if !p.Predict(19) {
		t.Error("aliased entry not shared")
	}
	// pc 4 is independent.
	if p.Predict(4) {
		t.Error("independent entry polluted")
	}
}

func TestPredictorSnapshotRestore(t *testing.T) {
	p := NewPredictor(32)
	p.Update(1, true)
	p.Update(1, true)
	p.Predict(1)
	snap := p.Snapshot()
	p.Update(1, false)
	p.Update(1, false)
	p.Update(1, false)
	p.Restore(snap)
	if !p.Predict(1) {
		t.Error("restore lost training")
	}
	if p.Lookups != snap.Lookups+1 {
		t.Errorf("lookups after restore = %d", p.Lookups)
	}
	// Deep copy: retraining the restored predictor must not touch the
	// snapshot.
	p.Update(1, false)
	p.Update(1, false)
	p.Update(1, false)
	restored := NewPredictor(32)
	restored.Restore(snap)
	if !restored.Predict(1) {
		t.Error("snapshot aliased live counters")
	}
}

func TestReadsTable(t *testing.T) {
	check := func(op isa.Op, wantS1, wantS2 bool) {
		t.Helper()
		s1, s2 := reads(isa.Inst{Op: op})
		if s1 != wantS1 || s2 != wantS2 {
			t.Errorf("reads(%v) = (%v,%v), want (%v,%v)", op, s1, s2, wantS1, wantS2)
		}
	}
	check(isa.Add, true, true)
	check(isa.FMul, true, true)
	check(isa.Addi, true, false)
	check(isa.FSqrt, true, false)
	check(isa.Itof, true, false)
	check(isa.Lui, false, false)
	check(isa.Load, true, false)
	check(isa.Store, true, true)
	check(isa.Beq, true, true)
	check(isa.Jmp, false, false)
	check(isa.LockAcq, false, false)
	check(isa.Barrier, false, false)
	check(isa.Halt, false, false)
	check(isa.Nop, false, false)
}

func TestWritesDestTable(t *testing.T) {
	check := func(in isa.Inst, want bool) {
		t.Helper()
		if got := writesDest(in); got != want {
			t.Errorf("writesDest(%v dst=r%d) = %v, want %v", in.Op, in.Dst, got, want)
		}
	}
	check(isa.Inst{Op: isa.Add, Dst: 3}, true)
	check(isa.Inst{Op: isa.Add, Dst: isa.Zero}, false) // r0 is not renamed
	check(isa.Inst{Op: isa.Load, Dst: 4}, true)
	check(isa.Inst{Op: isa.Store, Dst: 4}, false)
	check(isa.Inst{Op: isa.Beq, Dst: 4}, false)
	check(isa.Inst{Op: isa.Barrier, Dst: 4}, false)
	check(isa.Inst{Op: isa.Halt}, false)
}
