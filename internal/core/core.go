package core

import (
	"fmt"

	"slacksim/internal/cache"
	"slacksim/internal/coherence"
	"slacksim/internal/event"
	"slacksim/internal/isa"
	"slacksim/internal/mem"
	"slacksim/internal/syncctl"
)

// entryState tracks an in-flight instruction through the back end.
type entryState uint8

const (
	stDispatched entryState = iota // in ROB, not yet issued
	stIssued                       // executing; done at doneAt
	stWaitMem                      // waiting for a memory-system reply
	stDone                         // result ready; eligible to commit
)

// robEntry is one in-flight instruction.
type robEntry struct {
	seq   int
	pc    int
	inst  isa.Inst
	state entryState

	// srcProd holds the ROB seq of each source operand's producer, or -1
	// when the value comes from the architectural register file.
	srcProd [2]int

	doneAt    int64
	result    uint64
	hasResult bool

	// Branch bookkeeping.
	predTaken   bool
	actualTaken bool
	resolved    bool

	// Memory bookkeeping.
	addr      uint64
	addrValid bool
	storeVal  uint64
	// written marks a store whose architectural write was performed early
	// because a snoop took the line (see applySnoop).
	written bool

	// Synchronization bookkeeping.
	barrierGen     uint64
	barrierArrived bool
	nextLockTry    int64
}

type fetched struct {
	pc        int
	inst      isa.Inst
	predTaken bool
}

// Stats aggregates per-core performance counters. The json tags are part
// of the stable Results serialization contract (see engine.Results).
type Stats struct {
	Cycles       int64  `json:"cycles"`
	Committed    uint64 `json:"committed"`
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`
	Branches     uint64 `json:"branches"`
	Mispredicts  uint64 `json:"mispredicts"`
	Flushes      uint64 `json:"flushes"`
	LockRetries  uint64 `json:"lock_retries"`
	BarrierWait  int64  `json:"barrier_wait"`   // cycles spent with a barrier op stalled at head
	LockWait     int64  `json:"lock_wait"`      // cycles spent with a lock op stalled at head
	IdleAfterEnd int64  `json:"idle_after_end"` // cycles ticked after Halt committed
}

// CPI returns cycles per committed instruction (0 when nothing committed).
func (s Stats) CPI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Committed)
}

// Core is one simulated out-of-order core with its private L1 caches.
// It is single-goroutine state: exactly one host thread (its core thread)
// may call Tick; cross-thread communication happens only through the
// OutQ/InQ event queues and the syncctl controller, mirroring SlackSim.
type Core struct {
	cfg  Config
	prog *isa.Program
	mem  *mem.Memory
	sync *syncctl.Controller

	outQ *event.Shard[event.Request]
	inQ  *event.Queue[event.Msg]

	l1i, l1d *cache.Cache
	imshr    *cache.MSHRFile
	dmshr    *cache.MSHRFile
	pred     *Predictor

	now  int64
	regs [isa.NumRegs]uint64

	// mapTable maps an architectural register to the seq of the youngest
	// in-flight producer, or -1.
	mapTable [isa.NumRegs]int

	// rob is a head-index deque: the live window is rob[robHead:], so
	// retiring the head is an index bump that keeps the slice's capacity
	// (append-per-dispatch stops allocating once the backing array has
	// grown to the ROB size). Window seqs are contiguous — dispatch
	// appends nextSeq++, commit pops the head, a squash truncates the
	// tail and rewinds nextSeq — so seq lookup is index arithmetic off
	// the head entry's seq (see bySeq) and no seq→entry map is needed.
	rob      []*robEntry
	robHead  int
	nextSeq  int
	fetchBuf []fetched

	fetchPC         int
	fetchStallUntil int64
	// serializeSeq is the seq of an in-flight sync/halt instruction; while
	// set, dispatch is blocked (sync ops execute non-speculatively at the
	// head of the ROB).
	serializeSeq int

	halted bool
	reqID  uint64

	// rec, when set, receives the in-order architectural retire stream
	// (see recorder.go). Nil outside recording runs: one predictable
	// branch on the retire path.
	rec OpRecorder

	stats Stats

	// freeList recycles robEntry allocations: dispatch pops from it and
	// retire/flush/restore push onto it, so the steady-state pipeline
	// allocates no entries at all. Safe because entries are referenced
	// only through the rob window, which drops an entry before it is
	// freed.
	freeList []*robEntry
}

//slacksim:hotpath
//slacksim:pooled
func (c *Core) allocEntry() *robEntry {
	if n := len(c.freeList); n > 0 {
		e := c.freeList[n-1]
		c.freeList = c.freeList[:n-1]
		return e
	}
	return new(robEntry) //lint:allow hotpathalloc -- pool warm-up: runs only while the free list is empty
}

//slacksim:hotpath
func (c *Core) freeEntry(e *robEntry) {
	c.freeList = append(c.freeList, e) //lint:allow hotpathalloc -- free-list growth is bounded by ROB size, then reused forever
}

// New builds a core executing prog against the shared memory image and
// synchronization controller, communicating through outQ (to the manager)
// and inQ (from the manager).
func New(cfg Config, prog *isa.Program, m *mem.Memory, sc *syncctl.Controller,
	outQ *event.Shard[event.Request], inQ *event.Queue[event.Msg]) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:   cfg,
		prog:  prog,
		mem:   m,
		sync:  sc,
		outQ:  outQ,
		inQ:   inQ,
		l1i:   cache.New(cfg.L1I),
		l1d:   cache.New(cfg.L1D),
		imshr: cache.NewMSHRFile(cfg.InstMSHRs),
		dmshr: cache.NewMSHRFile(cfg.DataMSHRs),
		pred:  NewPredictor(cfg.BimodalEntries),

		serializeSeq: -1,
	}
	for i := range c.mapTable {
		c.mapTable[i] = -1
	}
	return c, nil
}

// MustNew is New but panics on error, for static configurations.
func MustNew(cfg Config, prog *isa.Program, m *mem.Memory, sc *syncctl.Controller,
	outQ *event.Shard[event.Request], inQ *event.Queue[event.Msg]) *Core {
	c, err := New(cfg, prog, m, sc, outQ, inQ)
	if err != nil {
		panic(err)
	}
	return c
}

// Reset returns the core to its freshly-constructed state running prog,
// keeping the configuration, shared-structure wiring, and every pooled
// backing (ROB free list, cache arrays, MSHR waiter arenas, predictor
// table). Used when a pooled machine is recycled for a new run.
func (c *Core) Reset(prog *isa.Program) error {
	if err := prog.Validate(); err != nil {
		return err
	}
	c.prog = prog
	c.l1i.Reset()
	c.l1d.Reset()
	c.imshr.Reset()
	c.dmshr.Reset()
	c.pred.Reset()
	c.now = 0
	c.regs = [isa.NumRegs]uint64{}
	for i := range c.mapTable {
		c.mapTable[i] = -1
	}
	for _, e := range c.robs() {
		c.freeEntry(e)
	}
	clear(c.rob)
	c.rob = c.rob[:0]
	c.robHead = 0
	c.nextSeq = 0
	c.fetchBuf = c.fetchBuf[:0]
	c.fetchPC = 0
	c.fetchStallUntil = 0
	c.serializeSeq = -1
	c.halted = false
	c.reqID = 0
	c.rec = nil
	c.stats = Stats{}
	return nil
}

// ID returns the core's index.
func (c *Core) ID() int { return c.cfg.ID }

// Now returns the core's local time in cycles.
func (c *Core) Now() int64 { return c.now }

// Halted reports whether the program has committed its Halt.
func (c *Core) Halted() bool { return c.halted }

// Stats returns a copy of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// L1I and L1D expose the caches for stats and tests.
func (c *Core) L1I() *cache.Cache { return c.l1i }

// L1D returns the data cache.
func (c *Core) L1D() *cache.Cache { return c.l1d }

// Reg returns the architectural value of register r (committed state).
func (c *Core) Reg(r isa.Reg) uint64 { return c.regs[r] }

// robs returns the live ROB window, oldest first.
//
//slacksim:hotpath
func (c *Core) robs() []*robEntry { return c.rob[c.robHead:] }

// robLen returns the number of in-flight ROB entries.
//
//slacksim:hotpath
func (c *Core) robLen() int { return len(c.rob) - c.robHead }

// bySeq returns the in-flight entry with the given seq, or nil when that
// seq has committed, been squashed, or never dispatched. Window seqs are
// contiguous (see the rob field comment), so the lookup is bounds-checked
// index arithmetic off the head entry.
//
//slacksim:hotpath
func (c *Core) bySeq(seq int) *robEntry {
	if c.robHead >= len(c.rob) {
		return nil
	}
	first := c.rob[c.robHead].seq
	if seq < first {
		return nil
	}
	i := c.robHead + (seq - first)
	if i >= len(c.rob) {
		return nil
	}
	return c.rob[i]
}

// InFlight returns the number of ROB entries, for tests.
func (c *Core) InFlight() int { return c.robLen() }

func (c *Core) codeLine(pc int) uint64 {
	return cache.LineAddr(c.cfg.CodeBase + uint64(pc)*isa.InstBytes)
}

func (c *Core) sendReq(kind coherence.BusReq, lineAddr uint64) uint64 {
	c.reqID++
	c.outQ.Push(event.Request{
		ID: c.reqID, Core: c.cfg.ID, Kind: kind, LineAddr: lineAddr, TS: c.now,
	})
	return c.reqID
}

// reads reports which source registers the instruction consumes in the
// out-of-order back end (sync ops read their base register at commit,
// architecturally, so they report none here).
func reads(in isa.Inst) (useS1, useS2 bool) {
	switch in.Op.Class() {
	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassIntDiv,
		isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv:
		switch in.Op {
		case isa.Lui:
			return false, false
		case isa.Addi, isa.Andi, isa.Ori, isa.Xori, isa.Shli, isa.Shri,
			isa.Slti, isa.FSqrt, isa.FNeg, isa.Itof, isa.Ftoi:
			return true, false
		}
		return true, true
	case isa.ClassLoad:
		return true, false
	case isa.ClassStore:
		return true, true
	case isa.ClassBranch:
		if in.Op == isa.Jmp {
			return false, false
		}
		return true, true
	}
	return false, false
}

// writesDest reports whether the instruction produces a register result
// (writes to r0 are architectural no-ops and are not renamed).
func writesDest(in isa.Inst) bool {
	switch in.Op.Class() {
	case isa.ClassIntALU, isa.ClassIntMul, isa.ClassIntDiv,
		isa.ClassFPAdd, isa.ClassFPMul, isa.ClassFPDiv, isa.ClassLoad:
		return in.Dst != isa.Zero
	}
	return false
}

// operand resolves source i of e: the producer's result if it is still in
// flight and done, the architectural register otherwise.
func (c *Core) operand(e *robEntry, i int, reg isa.Reg) (val uint64, ready bool) {
	p := e.srcProd[i]
	if p < 0 {
		return c.regs[reg], true
	}
	pe := c.bySeq(p)
	if pe == nil {
		// Producer committed after e dispatched; its value reached the
		// architectural register file.
		return c.regs[reg], true
	}
	if pe.state == stDone && pe.hasResult {
		return pe.result, true
	}
	return 0, false
}

func (c *Core) String() string {
	return fmt.Sprintf("core%d{t=%d pc=%d rob=%d halted=%v}",
		c.cfg.ID, c.now, c.fetchPC, c.robLen(), c.halted)
}
