package core

import "slacksim/internal/isa"

// MemOp classifies one architecturally-retired memory or synchronization
// event. Values are part of the on-disk trace format (internal/memtrace)
// and must never be renumbered.
type MemOp uint8

const (
	OpLoad MemOp = iota + 1
	OpStore
	OpLockAcq
	OpLockRel
	OpBarrier
	OpHalt
)

// String returns the op's trace mnemonic.
func (o MemOp) String() string {
	switch o {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpLockAcq:
		return "lock"
	case OpLockRel:
		return "unlock"
	case OpBarrier:
		return "barrier"
	case OpHalt:
		return "halt"
	}
	return "invalid"
}

// OpRecorder receives the core's in-order architectural memory-event
// stream: every load, store, lock acquire/release, barrier, and halt, in
// commit order, as it retires from the head of the ROB. The hook sits at
// the retire point because that stream — unlike the manager's
// arrival-ordered request stream — is identical on both hosts under the
// cycle-by-cycle scheme, which is what makes recorded traces portable.
// Calls for a given core always come from that core's simulation thread;
// implementations must not share mutable state across core indices.
type OpRecorder interface {
	RecordOp(core int, op MemOp, addr, val uint64)
}

// SetRecorder installs (or, with nil, removes) the retire-stream
// recorder. The engine sets it per run; Reset clears it so a pooled core
// never leaks a recorder into an unrelated run.
func (c *Core) SetRecorder(r OpRecorder) { c.rec = r }

// recordRetire forwards one retiring entry to the recorder. Lock
// addresses are recomputed from the architectural registers, which are
// stable here: sync ops execute non-speculatively at the head of the ROB.
//
//slacksim:hotpath
func (c *Core) recordRetire(e *robEntry) {
	switch e.inst.Op.Class() {
	case isa.ClassLoad:
		c.rec.RecordOp(c.cfg.ID, OpLoad, e.addr, 0)
	case isa.ClassStore:
		c.rec.RecordOp(c.cfg.ID, OpStore, e.addr, e.storeVal)
	case isa.ClassSync:
		switch e.inst.Op {
		case isa.LockAcq:
			c.rec.RecordOp(c.cfg.ID, OpLockAcq, c.regs[e.inst.Src1]+uint64(e.inst.Imm), 0)
		case isa.LockRel:
			c.rec.RecordOp(c.cfg.ID, OpLockRel, c.regs[e.inst.Src1]+uint64(e.inst.Imm), 0)
		case isa.Barrier:
			c.rec.RecordOp(c.cfg.ID, OpBarrier, uint64(e.inst.Imm), 0)
		}
	case isa.ClassHalt:
		c.rec.RecordOp(c.cfg.ID, OpHalt, 0, 0)
	}
}
