package core

// Predictor is a bimodal (2-bit saturating counter) branch direction
// predictor. Branch targets in this ISA are static, so no BTB is needed:
// a fetched branch's target is known at fetch time and only the direction
// can be mispredicted.
type Predictor struct {
	counters []uint8
	mask     int

	// Lookups and Mispredicts count predictor traffic (Mispredicts is
	// incremented by the pipeline at resolve time).
	Lookups, Mispredicts uint64
}

// NewPredictor returns a predictor with entries counters (a power of two),
// initialized to weakly-not-taken.
func NewPredictor(entries int) *Predictor {
	return &Predictor{counters: make([]uint8, entries), mask: entries - 1}
}

// Predict returns the predicted direction for the branch at instruction
// index pc.
func (p *Predictor) Predict(pc int) bool {
	p.Lookups++
	return p.counters[pc&p.mask] >= 2
}

// Update trains the counter for pc with the actual direction.
func (p *Predictor) Update(pc int, taken bool) {
	c := &p.counters[pc&p.mask]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// Snapshot deep-copies the predictor.
func (p *Predictor) Snapshot() *Predictor {
	return &Predictor{
		counters:    append([]uint8(nil), p.counters...),
		mask:        p.mask,
		Lookups:     p.Lookups,
		Mispredicts: p.Mispredicts,
	}
}

// SnapshotInto deep-copies the predictor into dst, reusing dst's counter
// table — the pooled-snapshot-graph variant of Snapshot.
func (p *Predictor) SnapshotInto(dst *Predictor) {
	dst.Restore(p)
}

// Reset returns the predictor to its freshly-constructed state (all
// counters weakly-not-taken, stats zeroed). Used when a pooled machine is
// recycled for a new run.
func (p *Predictor) Reset() {
	clear(p.counters)
	p.Lookups, p.Mispredicts = 0, 0
}

// Restore overwrites the predictor from a snapshot.
func (p *Predictor) Restore(snap *Predictor) {
	copy(p.counters, snap.counters)
	p.mask = snap.mask
	p.Lookups, p.Mispredicts = snap.Lookups, snap.Mispredicts
}

// SyncSnapshot brings snap up to date with the live predictor. The
// counter table is small and mutated on nearly every fetch, so there is
// no per-entry dirty tracking — the whole table is copied in place.
func (p *Predictor) SyncSnapshot(snap *Predictor) {
	snap.Restore(p)
}

// Equal reports whether two predictors hold identical counters and stats.
func (p *Predictor) Equal(o *Predictor) bool {
	if p.mask != o.mask || p.Lookups != o.Lookups || p.Mispredicts != o.Mispredicts {
		return false
	}
	for i := range p.counters {
		if p.counters[i] != o.counters[i] {
			return false
		}
	}
	return true
}
