package core

import (
	"slacksim/internal/cache"
	"slacksim/internal/isa"
)

// Snapshot is a deep copy of a core's architectural and micro-architectural
// state, the core's contribution to a global simulation checkpoint. The
// paper checkpoints whole simulator processes with fork(); inside a single
// Go process the equivalent is an explicit deep copy, which exposes the
// same cost structure (cost grows with live state and checkpoint
// frequency). The shared event queues and memory image are checkpointed by
// the engine, not here.
type Snapshot struct {
	now      int64
	regs     [isa.NumRegs]uint64
	mapTable [isa.NumRegs]int
	rob      []robEntry
	fetchBuf []fetched

	fetchPC         int
	fetchStallUntil int64
	serializeSeq    int
	nextSeq         int
	halted          bool
	reqID           uint64
	stats           Stats

	l1i, l1d *cache.Cache
	imshr    *cache.MSHRFile
	dmshr    *cache.MSHRFile
	pred     *Predictor
}

// Snapshot captures the core's complete state.
func (c *Core) Snapshot() *Snapshot {
	s := &Snapshot{
		now:             c.now,
		regs:            c.regs,
		mapTable:        c.mapTable,
		fetchPC:         c.fetchPC,
		fetchStallUntil: c.fetchStallUntil,
		serializeSeq:    c.serializeSeq,
		nextSeq:         c.nextSeq,
		halted:          c.halted,
		reqID:           c.reqID,
		stats:           c.stats,
		l1i:             c.l1i.Snapshot(),
		l1d:             c.l1d.Snapshot(),
		imshr:           c.imshr.Snapshot(),
		dmshr:           c.dmshr.Snapshot(),
		pred:            c.pred.Snapshot(),
	}
	s.rob = make([]robEntry, len(c.rob))
	for i, e := range c.rob {
		s.rob[i] = *e
	}
	s.fetchBuf = append([]fetched(nil), c.fetchBuf...)
	return s
}

// Restore overwrites the core's state from a snapshot taken on the same
// core.
func (c *Core) Restore(s *Snapshot) {
	c.now = s.now
	c.regs = s.regs
	c.mapTable = s.mapTable
	c.fetchPC = s.fetchPC
	c.fetchStallUntil = s.fetchStallUntil
	c.serializeSeq = s.serializeSeq
	c.nextSeq = s.nextSeq
	c.halted = s.halted
	c.reqID = s.reqID
	c.stats = s.stats
	c.l1i.Restore(s.l1i)
	c.l1d.Restore(s.l1d)
	c.imshr.Restore(s.imshr)
	c.dmshr.Restore(s.dmshr)
	c.pred.Restore(s.pred)

	c.rob = make([]*robEntry, len(s.rob))
	c.seqMap = make(map[int]*robEntry, len(s.rob))
	for i := range s.rob {
		e := s.rob[i] // copy
		c.rob[i] = &e
		c.seqMap[e.seq] = &e
	}
	c.fetchBuf = append(c.fetchBuf[:0], s.fetchBuf...)
}

// StateWords estimates the snapshot's size in 64-bit words, for the
// checkpoint cost model.
func (s *Snapshot) StateWords() int {
	return len(s.rob)*16 + len(s.fetchBuf)*3 +
		s.l1i.StateWords() + s.l1d.StateWords() +
		2*isa.NumRegs + 64
}
