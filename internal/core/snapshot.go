package core

import (
	"slacksim/internal/cache"
	"slacksim/internal/isa"
)

// Snapshot is a deep copy of a core's architectural and micro-architectural
// state, the core's contribution to a global simulation checkpoint. The
// paper checkpoints whole simulator processes with fork(); inside a single
// Go process the equivalent is an explicit deep copy, which exposes the
// same cost structure (cost grows with live state and checkpoint
// frequency). The shared event queues and memory image are checkpointed by
// the engine, not here.
type Snapshot struct {
	now      int64
	regs     [isa.NumRegs]uint64
	mapTable [isa.NumRegs]int
	rob      []robEntry
	fetchBuf []fetched

	fetchPC         int
	fetchStallUntil int64
	serializeSeq    int
	nextSeq         int
	halted          bool
	reqID           uint64
	stats           Stats

	l1i, l1d *cache.Cache
	imshr    *cache.MSHRFile
	dmshr    *cache.MSHRFile
	pred     *Predictor
}

// Snapshot captures the core's complete state.
func (c *Core) Snapshot() *Snapshot {
	s := &Snapshot{
		now:             c.now,
		regs:            c.regs,
		mapTable:        c.mapTable,
		fetchPC:         c.fetchPC,
		fetchStallUntil: c.fetchStallUntil,
		serializeSeq:    c.serializeSeq,
		nextSeq:         c.nextSeq,
		halted:          c.halted,
		reqID:           c.reqID,
		stats:           c.stats,
		l1i:             c.l1i.Snapshot(),
		l1d:             c.l1d.Snapshot(),
		imshr:           c.imshr.Snapshot(),
		dmshr:           c.dmshr.Snapshot(),
		pred:            c.pred.Snapshot(),
	}
	s.rob = make([]robEntry, c.robLen())
	for i, e := range c.robs() {
		s.rob[i] = *e
	}
	s.fetchBuf = append([]fetched(nil), c.fetchBuf...)
	return s
}

// SnapshotInto captures the core's complete state into s, reusing s's
// ROB/fetch backings and component graphs — the pooled-snapshot-graph
// variant of Snapshot. A zero Snapshot is populated on first use (pool
// warm-up); after that nothing is reallocated.
func (c *Core) SnapshotInto(s *Snapshot) {
	s.now = c.now
	s.regs = c.regs
	s.mapTable = c.mapTable
	s.fetchPC = c.fetchPC
	s.fetchStallUntil = c.fetchStallUntil
	s.serializeSeq = c.serializeSeq
	s.nextSeq = c.nextSeq
	s.halted = c.halted
	s.reqID = c.reqID
	s.stats = c.stats
	s.rob = s.rob[:0]
	for _, e := range c.robs() {
		s.rob = append(s.rob, *e)
	}
	s.fetchBuf = append(s.fetchBuf[:0], c.fetchBuf...)
	if s.l1i == nil {
		s.l1i, s.l1d = c.l1i.Snapshot(), c.l1d.Snapshot()         //lint:allow hotpathalloc -- one-time pool warm-up; later boundaries reuse the caches in place
		s.imshr, s.dmshr = c.imshr.Snapshot(), c.dmshr.Snapshot() //lint:allow hotpathalloc -- one-time pool warm-up; see above
		s.pred = c.pred.Snapshot()                                //lint:allow hotpathalloc -- one-time pool warm-up; see above
		return
	}
	c.l1i.SnapshotInto(s.l1i)
	c.l1d.SnapshotInto(s.l1d)
	c.imshr.SnapshotInto(s.imshr)
	c.dmshr.SnapshotInto(s.dmshr)
	c.pred.SnapshotInto(s.pred)
}

// restoreScalars copies everything except the cache/MSHR/predictor
// structures, recycling the live ROB entries through the freelist so a
// restore allocates nothing once the pools are warm.
//
//slacksim:hotpath
func (c *Core) restoreScalars(s *Snapshot) {
	c.now = s.now
	c.regs = s.regs
	c.mapTable = s.mapTable
	c.fetchPC = s.fetchPC
	c.fetchStallUntil = s.fetchStallUntil
	c.serializeSeq = s.serializeSeq
	c.nextSeq = s.nextSeq
	c.halted = s.halted
	c.reqID = s.reqID
	c.stats = s.stats

	for _, e := range c.robs() {
		c.freeEntry(e)
	}
	clear(c.rob)
	c.rob = c.rob[:0]
	c.robHead = 0
	for i := range s.rob {
		e := c.allocEntry()
		*e = s.rob[i]
		c.rob = append(c.rob, e)
	}
	c.fetchBuf = append(c.fetchBuf[:0], s.fetchBuf...)
}

// Restore overwrites the core's state from a snapshot taken on the same
// core.
//
//slacksim:hotpath
func (c *Core) Restore(s *Snapshot) {
	c.restoreScalars(s)
	c.l1i.Restore(s.l1i)
	c.l1d.Restore(s.l1d)
	c.imshr.Restore(s.imshr)
	c.dmshr.Restore(s.dmshr)
	c.pred.Restore(s.pred)
}

// StartTracking begins dirty tracking in the core's caches for
// incremental checkpoints; the caller takes a full Snapshot at the same
// instant.
func (c *Core) StartTracking() {
	c.l1i.StartTracking()
	c.l1d.StartTracking()
}

// SyncSnapshot brings s (a full Snapshot kept current since tracking
// started) up to date with the live core, copying only cache sets and
// MSHR files touched since the last sync or restore. The ROB and fetch
// buffer churn every cycle, so they are always copied — into s's reused
// backing arrays.
//
//slacksim:hotpath
func (c *Core) SyncSnapshot(s *Snapshot) {
	s.now = c.now
	s.regs = c.regs
	s.mapTable = c.mapTable
	s.fetchPC = c.fetchPC
	s.fetchStallUntil = c.fetchStallUntil
	s.serializeSeq = c.serializeSeq
	s.nextSeq = c.nextSeq
	s.halted = c.halted
	s.reqID = c.reqID
	s.stats = c.stats

	s.rob = s.rob[:0]
	for _, e := range c.robs() {
		s.rob = append(s.rob, *e)
	}
	s.fetchBuf = append(s.fetchBuf[:0], c.fetchBuf...)

	c.l1i.SyncSnapshot(s.l1i)
	c.l1d.SyncSnapshot(s.l1d)
	c.imshr.SyncSnapshot(s.imshr)
	c.dmshr.SyncSnapshot(s.dmshr)
	c.pred.SyncSnapshot(s.pred)
}

// RestoreIncremental rolls the core back to s, undoing only cache sets
// and MSHR state touched since the last sync.
//
//slacksim:hotpath
func (c *Core) RestoreIncremental(s *Snapshot) {
	c.restoreScalars(s)
	c.l1i.RestoreDirty(s.l1i)
	c.l1d.RestoreDirty(s.l1d)
	c.imshr.RestoreDirty(s.imshr)
	c.dmshr.RestoreDirty(s.dmshr)
	c.pred.Restore(s.pred)
}

// StateEqual reports whether two cores (same configuration, typically in
// different machines driven by the same run) hold identical architectural
// and micro-architectural state. Used by checkpoint-equivalence tests.
func (c *Core) StateEqual(o *Core) bool {
	if c.now != o.now || c.regs != o.regs || c.mapTable != o.mapTable ||
		c.fetchPC != o.fetchPC || c.fetchStallUntil != o.fetchStallUntil ||
		c.serializeSeq != o.serializeSeq || c.nextSeq != o.nextSeq ||
		c.halted != o.halted || c.reqID != o.reqID || c.stats != o.stats ||
		c.robLen() != o.robLen() || len(c.fetchBuf) != len(o.fetchBuf) {
		return false
	}
	cw, ow := c.robs(), o.robs()
	for i := range cw {
		if *cw[i] != *ow[i] {
			return false
		}
	}
	for i := range c.fetchBuf {
		if c.fetchBuf[i] != o.fetchBuf[i] {
			return false
		}
	}
	return c.l1i.Equal(o.l1i) && c.l1d.Equal(o.l1d) &&
		c.imshr.Equal(o.imshr) && c.dmshr.Equal(o.dmshr) &&
		c.pred.Equal(o.pred)
}

// StateWords estimates the snapshot's size in 64-bit words, for the
// checkpoint cost model.
func (s *Snapshot) StateWords() int {
	return len(s.rob)*16 + len(s.fetchBuf)*3 +
		s.l1i.StateWords() + s.l1d.StateWords() +
		2*isa.NumRegs + 64
}
