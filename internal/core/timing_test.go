package core

import (
	"testing"

	"slacksim/internal/isa"
)

// runToHalt drives the harness and returns total cycles at halt.
func (h *harness) runToHalt(t *testing.T) int64 {
	t.Helper()
	h.run(t, 100000)
	return h.core.Stats().Cycles
}

// cyclesFor builds and runs a program, returning its cycle count.
func cyclesFor(t *testing.T, build func(b *isa.Builder)) int64 {
	t.Helper()
	h := newHarness(t, build)
	return h.runToHalt(t)
}

// TestExecLatencies pins the per-class execution latencies by measuring
// dependent chains: N back-to-back dependent ops of latency L add N·L
// cycles over the baseline.
func TestExecLatencies(t *testing.T) {
	const chain = 32
	base := cyclesFor(t, func(b *isa.Builder) {
		b.Li(3, 1)
		b.Halt()
	})
	cases := []struct {
		name    string
		op      isa.Op
		latency int64
	}{
		{"add", isa.Add, 1},
		{"mul", isa.Mul, 3},
		{"div", isa.Div, 12},
		{"fadd", isa.FAdd, 2},
		{"fmul", isa.FMul, 4},
		{"fdiv", isa.FDiv, 12},
	}
	measured := map[string]int64{}
	for _, tc := range cases {
		got := cyclesFor(t, func(b *isa.Builder) {
			b.Li(3, 1)
			b.Li(4, 3)
			for i := 0; i < chain; i++ {
				b.Op3(tc.op, 4, 4, 3) // dependent chain
			}
			b.Halt()
		})
		delta := got - base
		measured[tc.name] = delta
		want := int64(chain) * tc.latency
		// The extra cycles are the chain latency plus the cold I-fetch
		// misses for the chain's own code (a few lines).
		if delta < want || delta > want+64 {
			t.Errorf("%s chain of %d: %d extra cycles, want ~%d",
				tc.name, chain, delta, want)
		}
	}
	// Latency classes must order correctly regardless of fetch noise.
	if !(measured["add"] < measured["mul"] && measured["mul"] < measured["div"]) {
		t.Errorf("integer latency ordering broken: %v", measured)
	}
	if !(measured["fadd"] < measured["fmul"] && measured["fmul"] < measured["fdiv"]) {
		t.Errorf("float latency ordering broken: %v", measured)
	}
}

// TestIndependentOpsOverlap: independent ops of the same class pipeline,
// so 32 independent multiplies cost far less than 32 dependent ones.
func TestIndependentOpsOverlap(t *testing.T) {
	dep := cyclesFor(t, func(b *isa.Builder) {
		b.Li(3, 1)
		b.Li(4, 3)
		for i := 0; i < 32; i++ {
			b.Op3(isa.Mul, 4, 4, 3)
		}
		b.Halt()
	})
	indep := cyclesFor(t, func(b *isa.Builder) {
		b.Li(3, 1)
		for i := 0; i < 32; i++ {
			b.Op3(isa.Mul, isa.Reg(4+i%8), 3, 3)
		}
		b.Halt()
	})
	if indep >= dep {
		t.Errorf("independent mults (%d cycles) not faster than dependent (%d)", indep, dep)
	}
}

// TestIssueWidthLimits: more than IssueWidth independent single-cycle ops
// per cycle cannot issue; a long stream of independent adds commits at
// most IssueWidth per cycle.
func TestIssueWidthLimits(t *testing.T) {
	const n = 200
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 1)
		for i := 0; i < n; i++ {
			b.Op3(isa.Add, isa.Reg(4+i%8), 3, 3)
		}
		b.Halt()
	})
	cycles := h.runToHalt(t)
	minCycles := int64(n / DefaultConfig(0).IssueWidth)
	if cycles < minCycles {
		t.Errorf("%d adds in %d cycles beats the %d-wide issue limit",
			n, cycles, DefaultConfig(0).IssueWidth)
	}
}

// TestMemPortLimit: loads are bounded by MemPortsPerCycle (2), so a
// stream of independent cache-hitting loads takes at least n/2 cycles.
func TestMemPortLimit(t *testing.T) {
	const n = 64
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 0x1000)
		b.Load(4, 3, 0) // warm the line
		for i := 0; i < n; i++ {
			b.Load(isa.Reg(5+i%8), 3, 8)
		}
		b.Halt()
	})
	cycles := h.runToHalt(t)
	if cycles < int64(n)/2 {
		t.Errorf("%d loads in %d cycles beats the 2-port limit", n, cycles)
	}
}

// TestLoadMissRoundTrip pins the cold-miss latency: issue + request
// round trip (harness latency 10) + completion.
func TestLoadMissRoundTrip(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 0x2000)
		b.Load(4, 3, 0)
		b.Halt()
	})
	h.mem.Write(0x2000, 42)
	cycles := h.runToHalt(t)
	if cycles < h.latency {
		t.Errorf("miss completed in %d cycles, below the %d-cycle reply latency",
			cycles, h.latency)
	}
	if h.core.Reg(4) != 42 {
		t.Errorf("loaded %d", h.core.Reg(4))
	}
}

// TestMispredictPenaltyVisible: a hard-to-predict branch pattern costs
// measurably more than an always-taken loop with the same trip count.
func TestMispredictPenaltyVisible(t *testing.T) {
	regular := cyclesFor(t, func(b *isa.Builder) {
		b.Li(3, 64)
		top := b.Here()
		b.Subi(3, 3, 1)
		b.Bne(3, isa.Zero, top)
		b.Halt()
	})
	// Alternating taken/not-taken inner branch (bimodal cannot learn it).
	alternating := cyclesFor(t, func(b *isa.Builder) {
		b.Li(3, 64)
		top := b.Here()
		skip := b.NewLabel()
		b.OpImm(isa.Andi, 4, 3, 1)
		b.Bne(4, isa.Zero, skip)
		b.Nop()
		b.Bind(skip)
		b.Subi(3, 3, 1)
		b.Bne(3, isa.Zero, top)
		b.Halt()
	})
	// The alternating version runs 3 extra instructions per iteration but
	// pays far more than 3 cycles — the flush penalty dominates.
	if alternating < regular+64 {
		t.Errorf("alternating branches cost %d vs %d; mispredictions too cheap",
			alternating, regular)
	}
}

// TestSyncSerializesDispatch: instructions after a lock cannot commit in
// the same cycle burst as those before it — the sync op drains the ROB.
func TestSyncSerializesDispatch(t *testing.T) {
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, int64(0x9000))
		b.Lock(3, 0)
		b.Unlock(3, 0)
		b.Halt()
	})
	// Run cycle by cycle; while the lock has not committed, nothing
	// younger may be in flight beyond it.
	for i := 0; i < 200 && !h.core.Halted(); i++ {
		h.core.Tick()
		h.pump()
		if h.core.InFlight() > 0 && h.core.rob[0].inst.Op == isa.LockAcq {
			for _, e := range h.core.rob[1:] {
				if e.state != stDispatched {
					t.Fatalf("younger op %v advanced past an uncommitted lock", e.inst)
				}
			}
		}
	}
}

// TestReplyHeldUntilTimestamp: a reply with a future timestamp must not
// take effect early (the paper's InQ protocol).
func TestReplyHeldUntilTimestamp(t *testing.T) {
	b := isa.NewBuilder("hold")
	b.Li(3, 0x3000)
	b.Load(4, 3, 0)
	b.Halt()
	h := newHarnessProg(t, b.MustProgram())
	h.mem.Write(0x3000, 9)
	h.latency = 50
	start := h.core.Now()
	h.run(t, 10000)
	if h.core.Stats().Cycles-start < 50 {
		t.Errorf("load completed before the reply timestamp (cycles=%d)", h.core.Stats().Cycles)
	}
	if h.core.Reg(4) != 9 {
		t.Errorf("loaded %d", h.core.Reg(4))
	}
}

// TestDirtyVictimWritesBack: evicting a modified line emits a BusWB.
func TestDirtyVictimWritesBack(t *testing.T) {
	cfg := DefaultConfig(0)
	sets := cfg.L1D.Sets()
	h := newHarness(t, func(b *isa.Builder) {
		b.Li(3, 0x10000)
		b.Li(4, 7)
		b.Store(4, 3, 0) // dirty line X
		// Delay the conflicting loads behind a slow dependent chain so
		// the store commits (and last touches X) before they fill the
		// set; X is then the LRU way when the set overflows.
		b.Li(7, 1)
		for i := 0; i < 8; i++ {
			b.Op3(isa.Div, 7, 7, 7)
		}
		b.Op3(isa.Xor, 7, 7, 7) // 0, but dependent on the chain
		b.Op3(isa.Add, 6, 3, 7) // delayed copy of the base address
		// Touch enough same-set lines to evict X (4-way set).
		for w := 1; w <= 4; w++ {
			off := int64(w * sets * 64)
			b.Load(isa.Reg(5), 6, off)
		}
		b.Halt()
	})
	sawWB := false
	for i := 0; i < 5000 && !h.core.Halted(); i++ {
		h.core.Tick()
		for {
			req, ok := h.outQ.Pop()
			if !ok {
				break
			}
			if req.Kind.String() == "BusWB" {
				sawWB = true
				continue
			}
			h.inQ.Push(replyFor(req, h.latency))
		}
	}
	if !sawWB {
		t.Error("dirty eviction produced no writeback")
	}
}
