package core

import (
	"bytes"
	"encoding/gob"

	"slacksim/internal/cache"
	"slacksim/internal/isa"
)

// Wire serialization for run snapshots. A core.Snapshot already is the
// deep-copied checkpoint state, so it is the unit of export: the engine
// serializes the per-core snapshots it holds at a checkpoint boundary.
// The nested cache/MSHR/predictor structures carry their own gob
// methods.

type robEntryWire struct {
	Seq   int
	PC    int
	Inst  isa.Inst
	State uint8

	SrcProd [2]int

	DoneAt    int64
	Result    uint64
	HasResult bool

	PredTaken   bool
	ActualTaken bool
	Resolved    bool

	Addr      uint64
	AddrValid bool
	StoreVal  uint64
	Written   bool

	BarrierGen     uint64
	BarrierArrived bool
	NextLockTry    int64
}

func wireROBEntry(e *robEntry) robEntryWire {
	return robEntryWire{
		Seq: e.seq, PC: e.pc, Inst: e.inst, State: uint8(e.state),
		SrcProd: e.srcProd, DoneAt: e.doneAt, Result: e.result, HasResult: e.hasResult,
		PredTaken: e.predTaken, ActualTaken: e.actualTaken, Resolved: e.resolved,
		Addr: e.addr, AddrValid: e.addrValid, StoreVal: e.storeVal, Written: e.written,
		BarrierGen: e.barrierGen, BarrierArrived: e.barrierArrived, NextLockTry: e.nextLockTry,
	}
}

func (w robEntryWire) entry() robEntry {
	return robEntry{
		seq: w.Seq, pc: w.PC, inst: w.Inst, state: entryState(w.State),
		srcProd: w.SrcProd, doneAt: w.DoneAt, result: w.Result, hasResult: w.HasResult,
		predTaken: w.PredTaken, actualTaken: w.ActualTaken, resolved: w.Resolved,
		addr: w.Addr, addrValid: w.AddrValid, storeVal: w.StoreVal, written: w.Written,
		barrierGen: w.BarrierGen, barrierArrived: w.BarrierArrived, nextLockTry: w.NextLockTry,
	}
}

type fetchedWire struct {
	PC        int
	Inst      isa.Inst
	PredTaken bool
}

type predictorWire struct {
	Counters []uint8
	Mask     int

	Lookups, Mispredicts uint64
}

// GobEncode implements gob.GobEncoder.
func (p *Predictor) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(predictorWire{
		Counters: p.counters, Mask: p.mask,
		Lookups: p.Lookups, Mispredicts: p.Mispredicts,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (p *Predictor) GobDecode(data []byte) error {
	var w predictorWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*p = Predictor{counters: w.Counters, mask: w.Mask, Lookups: w.Lookups, Mispredicts: w.Mispredicts}
	return nil
}

type snapshotWire struct {
	Now      int64
	Regs     [isa.NumRegs]uint64
	MapTable [isa.NumRegs]int
	ROB      []robEntryWire
	FetchBuf []fetchedWire

	FetchPC         int
	FetchStallUntil int64
	SerializeSeq    int
	NextSeq         int
	Halted          bool
	ReqID           uint64
	Stats           Stats

	L1I, L1D     *cache.Cache
	IMSHR, DMSHR *cache.MSHRFile
	Pred         *Predictor
}

// GobEncode implements gob.GobEncoder.
func (s *Snapshot) GobEncode() ([]byte, error) {
	w := snapshotWire{
		Now: s.now, Regs: s.regs, MapTable: s.mapTable,
		FetchPC: s.fetchPC, FetchStallUntil: s.fetchStallUntil,
		SerializeSeq: s.serializeSeq, NextSeq: s.nextSeq,
		Halted: s.halted, ReqID: s.reqID, Stats: s.stats,
		L1I: s.l1i, L1D: s.l1d, IMSHR: s.imshr, DMSHR: s.dmshr, Pred: s.pred,
	}
	w.ROB = make([]robEntryWire, len(s.rob))
	for i := range s.rob {
		w.ROB[i] = wireROBEntry(&s.rob[i])
	}
	w.FetchBuf = make([]fetchedWire, len(s.fetchBuf))
	for i, f := range s.fetchBuf {
		w.FetchBuf[i] = fetchedWire{PC: f.pc, Inst: f.inst, PredTaken: f.predTaken}
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (s *Snapshot) GobDecode(data []byte) error {
	var w snapshotWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	*s = Snapshot{
		now: w.Now, regs: w.Regs, mapTable: w.MapTable,
		fetchPC: w.FetchPC, fetchStallUntil: w.FetchStallUntil,
		serializeSeq: w.SerializeSeq, nextSeq: w.NextSeq,
		halted: w.Halted, reqID: w.ReqID, stats: w.Stats,
		l1i: w.L1I, l1d: w.L1D, imshr: w.IMSHR, dmshr: w.DMSHR, pred: w.Pred,
	}
	s.rob = make([]robEntry, len(w.ROB))
	for i := range w.ROB {
		s.rob[i] = w.ROB[i].entry()
	}
	s.fetchBuf = make([]fetched, len(w.FetchBuf))
	for i, f := range w.FetchBuf {
		s.fetchBuf[i] = fetched{pc: f.PC, inst: f.Inst, predTaken: f.PredTaken}
	}
	return nil
}
