package core

import (
	"math/rand"
	"testing"

	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// goldenModel executes a program sequentially with simple functional
// semantics — no pipeline, no caches — and returns the final register
// file. The out-of-order core must match it architecturally on every
// program: this is golden-model co-simulation over randomly generated
// programs, the strongest functional check the core has.
func goldenModel(p *isa.Program, m *mem.Memory) [isa.NumRegs]uint64 {
	var regs [isa.NumRegs]uint64
	pc := 0
	for steps := 0; steps < 1_000_000; steps++ {
		in := p.At(pc)
		switch in.Op.Class() {
		case isa.ClassHalt:
			return regs
		case isa.ClassLoad:
			if in.Dst != isa.Zero {
				regs[in.Dst] = m.Read(regs[in.Src1] + uint64(in.Imm))
			}
			pc++
		case isa.ClassStore:
			m.Write(regs[in.Src1]+uint64(in.Imm), regs[in.Src2])
			pc++
		case isa.ClassBranch:
			if isa.BranchTaken(in, regs[in.Src1], regs[in.Src2]) {
				pc = int(in.Imm)
			} else {
				pc++
			}
		case isa.ClassSync, isa.ClassNop:
			pc++
		default:
			if in.Dst != isa.Zero {
				regs[in.Dst] = isa.ALUResult(in, regs[in.Src1], regs[in.Src2])
			}
			pc++
		}
	}
	panic("golden model did not terminate")
}

// genProgram builds a random but guaranteed-terminating program: straight-
// line random ALU/memory ops interleaved with bounded counted loops over
// random bodies.
func genProgram(rng *rand.Rand) *isa.Program {
	b := isa.NewBuilder("cosim")
	// Seed a few registers with random values.
	for r := isa.Reg(3); r < 11; r++ {
		b.Li(r, rng.Int63n(1<<20))
	}
	// Private data region pointer.
	b.Li(11, 0x8000)

	aluOps := []isa.Op{
		isa.Add, isa.Sub, isa.Mul, isa.Div, isa.Rem, isa.And, isa.Or,
		isa.Xor, isa.Shl, isa.Shr, isa.Slt,
		isa.FAdd, isa.FSub, isa.FMul, isa.Itof, isa.Ftoi,
	}
	immOps := []isa.Op{isa.Addi, isa.Andi, isa.Ori, isa.Xori, isa.Shli, isa.Shri, isa.Slti}
	// r3..r10 are fair game; r11 (data pointer) and r13 (loop counter)
	// are reserved so addresses stay aligned and loops stay bounded.
	reg := func() isa.Reg { return isa.Reg(3 + rng.Intn(8)) }

	emitRandom := func() {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			b.Op3(aluOps[rng.Intn(len(aluOps))], reg(), reg(), reg())
		case 4, 5:
			b.OpImm(immOps[rng.Intn(len(immOps))], reg(), reg(), int64(rng.Intn(64)))
		case 6, 7:
			// Load from the private region (bounded offset, aligned).
			b.Emit(isa.Inst{Op: isa.Load, Dst: reg(), Src1: 11, Imm: int64(rng.Intn(64)) * 8})
		case 8:
			b.Emit(isa.Inst{Op: isa.Store, Src1: 11, Src2: reg(), Imm: int64(rng.Intn(64)) * 8})
		case 9:
			b.Nop()
		}
	}

	blocks := 3 + rng.Intn(4)
	for i := 0; i < blocks; i++ {
		if rng.Intn(2) == 0 {
			// Straight-line block.
			for k := 0; k < 3+rng.Intn(8); k++ {
				emitRandom()
			}
		} else {
			// Counted loop with a random body (loop counter r13 is
			// reserved so the body cannot clobber it).
			body := 2 + rng.Intn(5)
			b.Loop(13, int64(1+rng.Intn(6)), func() {
				for k := 0; k < body; k++ {
					emitRandom()
				}
			})
		}
		// Occasionally a data-dependent forward skip.
		if rng.Intn(3) == 0 {
			skip := b.NewLabel()
			b.Blt(reg(), reg(), skip)
			emitRandom()
			b.Bind(skip)
		}
	}
	b.Halt()
	return b.MustProgram()
}

// TestCosimRandomPrograms runs many random programs on the full OoO core
// (with speculation, forwarding, caches, MSHRs) and demands architectural
// equality with the sequential golden model.
func TestCosimRandomPrograms(t *testing.T) {
	const programs = 60
	for seed := int64(0); seed < programs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog := genProgram(rng)

		goldenMem := mem.New()
		wantRegs := goldenModel(prog, goldenMem)

		h := newHarnessProg(t, prog)
		h.run(t, 300000)

		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if got := h.core.Reg(r); got != wantRegs[r] {
				t.Fatalf("seed %d: r%d = %#x, want %#x\nprogram:\n%s",
					seed, r, got, wantRegs[r], dumpProgram(prog))
			}
		}
		// Memory effects must match too.
		if !h.mem.Equal(goldenMem) {
			t.Fatalf("seed %d: memory diverged\nprogram:\n%s", seed, dumpProgram(prog))
		}
	}
}

func dumpProgram(p *isa.Program) string {
	s := ""
	for i, in := range p.Insts {
		s += in.String()
		if i > 80 {
			s += " ..."
			break
		}
		s += "\n"
	}
	return s
}
