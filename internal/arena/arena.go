// Package arena provides slab allocators with free lists for the
// simulator's steady-state pools: objects and fixed-width slices are
// carved out of large blocks, recycled through a free list when their
// owner releases them, and reclaimed wholesale by Reset when a pooled
// machine is recycled for a new run.
//
// The allocators are deliberately minimal — single-goroutine, no
// finalizers, no per-object headers. Ownership rules (who may hold a
// pooled object across a checkpoint boundary, and why rollback can never
// observe recycled memory) are documented in DESIGN.md §15.
package arena

// Slab allocates objects of type T from fixed-size blocks. Get returns a
// zeroed *T; Put recycles one (zeroing it); Reset recycles everything at
// once, keeping the block storage for the next run. Pointers obtained
// before a Reset must not be used afterwards.
type Slab[T any] struct {
	blockSize int
	blocks    [][]T
	cur       int // index of the block Get carves from
	pos       int // next unused index within blocks[cur]
	free      []*T
}

// NewSlab returns a slab handing out objects in blocks of blockSize.
func NewSlab[T any](blockSize int) *Slab[T] {
	if blockSize <= 0 {
		blockSize = 64
	}
	return &Slab[T]{blockSize: blockSize}
}

// Get returns a zeroed object, recycling a freed one when available.
//
//slacksim:hotpath
//slacksim:pooled
func (s *Slab[T]) Get() *T {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return p
	}
	if s.cur == len(s.blocks) {
		s.blocks = append(s.blocks, make([]T, s.blockSize)) //lint:allow hotpathalloc -- pool warm-up: a new block only when every existing block is full
	}
	p := &s.blocks[s.cur][s.pos]
	s.pos++
	if s.pos == s.blockSize {
		s.cur++
		s.pos = 0
	}
	return p
}

// Put zeroes the object and returns it to the free list. The caller must
// not retain the pointer.
//
//slacksim:hotpath
func (s *Slab[T]) Put(p *T) {
	var zero T
	*p = zero
	s.free = append(s.free, p) //lint:allow hotpathalloc -- free-list growth is bounded by the high-water object count, then reused forever
}

// Reset recycles every outstanding object at once: all blocks are zeroed
// and reused from the start. Outstanding pointers become invalid.
func (s *Slab[T]) Reset() {
	for i := range s.blocks {
		clear(s.blocks[i])
	}
	clear(s.free)
	s.free = s.free[:0]
	s.cur = 0
	s.pos = 0
}

// Live returns the number of objects handed out and not yet recycled
// (diagnostics and tests).
func (s *Slab[T]) Live() int {
	return s.cur*s.blockSize + s.pos - len(s.free)
}

// Slices allocates fixed-width []T values from large blocks: the slice
// arena behind per-line state vectors and similar small, uniform slices,
// where one make per element would dominate the allocation profile.
type Slices[T any] struct {
	width    int
	perBlock int // slices per block
	blocks   [][]T
	cur, pos int // pos counts slices, not elements
	free     [][]T
}

// NewSlices returns an arena of width-element slices, perBlock slices per
// backing block.
func NewSlices[T any](width, perBlock int) *Slices[T] {
	if width <= 0 {
		panic("arena: slice width must be positive")
	}
	if perBlock <= 0 {
		perBlock = 64
	}
	return &Slices[T]{width: width, perBlock: perBlock}
}

// Width returns the element count of every slice this arena hands out.
func (a *Slices[T]) Width() int { return a.width }

// Get returns a zeroed slice of the arena's width, recycling a freed one
// when available.
//
//slacksim:hotpath
//slacksim:pooled
func (a *Slices[T]) Get() []T {
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return s
	}
	if a.cur == len(a.blocks) {
		a.blocks = append(a.blocks, make([]T, a.width*a.perBlock)) //lint:allow hotpathalloc -- pool warm-up: a new block only when every existing block is full
	}
	off := a.pos * a.width
	s := a.blocks[a.cur][off : off+a.width : off+a.width]
	a.pos++
	if a.pos == a.perBlock {
		a.cur++
		a.pos = 0
	}
	return s
}

// Put zeroes the slice and returns it to the free list. The caller must
// not retain the slice. Only slices obtained from this arena may be Put.
//
//slacksim:hotpath
func (a *Slices[T]) Put(s []T) {
	if len(s) != a.width {
		panic("arena: Put of a slice with the wrong width")
	}
	clear(s)
	a.free = append(a.free, s) //lint:allow hotpathalloc -- free-list growth is bounded by the high-water slice count, then reused forever
}

// Reset recycles every outstanding slice at once. Outstanding slices
// become invalid.
func (a *Slices[T]) Reset() {
	for i := range a.blocks {
		clear(a.blocks[i])
	}
	clear(a.free)
	a.free = a.free[:0]
	a.cur = 0
	a.pos = 0
}

// Live returns the number of slices handed out and not yet recycled.
func (a *Slices[T]) Live() int {
	return a.cur*a.perBlock + a.pos - len(a.free)
}
