package arena

import "testing"

func TestSlabGetPutReset(t *testing.T) {
	s := NewSlab[int64](4) // small blocks to exercise block growth
	var ptrs []*int64
	for i := 0; i < 10; i++ {
		p := s.Get()
		if *p != 0 {
			t.Fatalf("Get #%d returned non-zero %d", i, *p)
		}
		*p = int64(i + 1)
		ptrs = append(ptrs, p)
	}
	if s.Live() != 10 {
		t.Fatalf("Live = %d, want 10", s.Live())
	}
	// Distinct objects.
	seen := map[*int64]bool{}
	for _, p := range ptrs {
		if seen[p] {
			t.Fatal("Get returned the same pointer twice")
		}
		seen[p] = true
	}
	// Put zeroes and recycles.
	s.Put(ptrs[3])
	if *ptrs[3] != 0 {
		t.Fatal("Put did not zero the object")
	}
	if p := s.Get(); p != ptrs[3] {
		t.Fatal("Get did not recycle the freed object")
	}
	// Reset zeroes everything and reuses storage.
	s.Reset()
	if s.Live() != 0 {
		t.Fatalf("Live after Reset = %d", s.Live())
	}
	for _, p := range ptrs {
		if *p != 0 {
			t.Fatal("Reset left a non-zero object")
		}
	}
	if p := s.Get(); p != ptrs[0] {
		t.Fatal("Get after Reset did not reuse block storage from the start")
	}
}

func TestSlicesGetPutReset(t *testing.T) {
	a := NewSlices[uint8](3, 4)
	if a.Width() != 3 {
		t.Fatalf("Width = %d", a.Width())
	}
	var got [][]uint8
	for i := 0; i < 9; i++ {
		s := a.Get()
		if len(s) != 3 || cap(s) != 3 {
			t.Fatalf("Get #%d: len=%d cap=%d", i, len(s), cap(s))
		}
		for _, v := range s {
			if v != 0 {
				t.Fatalf("Get #%d returned non-zero slice", i)
			}
		}
		s[0], s[1], s[2] = uint8(i), uint8(i), uint8(i)
		got = append(got, s)
	}
	if a.Live() != 9 {
		t.Fatalf("Live = %d, want 9", a.Live())
	}
	// Slices must not overlap: each retains its own writes.
	for i, s := range got {
		if s[0] != uint8(i) {
			t.Fatalf("slice %d clobbered: %v", i, s)
		}
	}
	// cap is clamped, so appending cannot bleed into a neighbor.
	grown := append(got[0], 99)
	if &grown[0] == &got[0][0] && len(got) > 1 && got[1][0] == 99 {
		t.Fatal("append bled into the neighboring slice")
	}
	a.Put(got[5])
	s := a.Get()
	if &s[0] != &got[5][0] {
		t.Fatal("Get did not recycle the freed slice")
	}
	a.Reset()
	if a.Live() != 0 {
		t.Fatalf("Live after Reset = %d", a.Live())
	}
	for i, s := range got[1:] { // got[0] was grown above; skip it
		for _, v := range s {
			if v != 0 {
				t.Fatalf("Reset left slice %d non-zero: %v", i+1, s)
			}
		}
	}
}

func TestSlicesPutWrongWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a wrong-width slice did not panic")
		}
	}()
	a := NewSlices[int](2, 4)
	a.Put(make([]int, 3))
}
