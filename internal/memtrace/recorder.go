package memtrace

import (
	"slacksim/internal/core"
)

// Recorder captures a run's architectural retire streams. It implements
// core.OpRecorder plus the engine's checkpoint hooks, so speculative runs
// record correctly: replayed instructions after a rollback overwrite the
// rolled-back suffix instead of duplicating it.
//
// Concurrency: RecordOp for core i is called only from core i's
// simulation thread, and each core appends to its own stream — there is
// no shared mutable state between core indices, so the parallel host
// records without locks. Checkpoint and Rollback are called only at
// quiesced boundaries (every core parked, queues drained).
type Recorder struct {
	workload string
	events   [][]Event
	// marks holds each stream's length at the last checkpoint; Rollback
	// truncates to it, mirroring the engine's state restore.
	marks []int
}

// NewRecorder returns a recorder for a cores-wide run of the named
// workload.
func NewRecorder(cores int, workload string) *Recorder {
	return &Recorder{
		workload: workload,
		events:   make([][]Event, cores),
		marks:    make([]int, cores),
	}
}

// RecordOp implements core.OpRecorder.
//
//slacksim:hotpath
func (r *Recorder) RecordOp(c int, op core.MemOp, addr, val uint64) {
	r.events[c] = append(r.events[c], Event{Op: op, Addr: addr, Val: val}) //lint:allow hotpathalloc -- trace capture buffers the whole retire stream by design; growth is amortized append
}

// Checkpoint marks the current stream lengths; the engine calls it at
// every checkpoint boundary.
func (r *Recorder) Checkpoint() {
	for i, evs := range r.events {
		r.marks[i] = len(evs)
	}
}

// Rollback discards everything recorded since the last checkpoint; the
// engine calls it when it restores that checkpoint. The subsequent replay
// re-records the discarded window.
func (r *Recorder) Rollback() {
	for i := range r.events {
		r.events[i] = r.events[i][:r.marks[i]]
	}
}

// Trace returns the captured trace. The event slices are shared with the
// recorder; capture is complete once the run has finished.
func (r *Recorder) Trace() *Trace {
	return &Trace{
		Version:  version,
		Workload: r.workload,
		Cores:    len(r.events),
		Events:   r.events,
	}
}

// Encode serializes the captured trace into the canonical byte form.
func (r *Recorder) Encode() ([]byte, error) { return Encode(r.Trace()) }
