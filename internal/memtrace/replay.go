package memtrace

import (
	"fmt"

	"slacksim/internal/core"
	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// Replay is a workload that re-executes a captured trace: each core's
// program replays its recorded retire stream — loads and stores at the
// recorded addresses (stores with the recorded values), barriers through
// the live synchronization controller — so the replay exercises the full
// coherence machinery with the original run's exact sharing pattern.
//
// Lock operations are replayed as stores to the lock line, not as live
// Lock/Unlock instructions. The recorded stream already fixes who won
// each acquisition; re-running the spin loop would only re-race it, and
// the spin count is a host artifact (the one part of a CC run that is
// not byte-identical across hosts). A store reproduces what matters to
// the memory system — the lock line's exclusive-ownership migration —
// and keeps replay programs straight-line: no cross-core data-dependent
// control flow, so by the engine's race-free CC invariant a replayed
// trace produces byte-identical Results on both hosts, whatever the
// recorded workload did.
//
// The trace digest is embedded in the workload name, making replay specs
// content-addressed and keeping machine pooling from reusing programs
// compiled for a different trace.
type Replay struct {
	trace  *Trace
	digest string
}

// NewReplay decodes an encoded trace into a replay workload.
func NewReplay(data []byte) (*Replay, error) {
	t, err := Decode(data)
	if err != nil {
		return nil, err
	}
	return &Replay{trace: t, digest: Digest(data)}, nil
}

// NewReplayTrace wraps an in-memory trace; the digest is computed from
// its canonical encoding.
func NewReplayTrace(t *Trace) (*Replay, error) {
	data, err := Encode(t)
	if err != nil {
		return nil, err
	}
	return NewReplay(data)
}

// Trace returns the decoded trace.
func (r *Replay) Trace() *Trace { return r.trace }

// Digest returns the full hex digest of the encoded trace.
func (r *Replay) Digest() string { return r.digest }

// Name implements workload.Workload.
func (r *Replay) Name() string { return "replay-" + r.digest[:12] }

// InitMemory implements workload.Workload; replay starts from a zeroed
// image, like the recorded run did.
func (r *Replay) InitMemory(m *mem.Memory) error { return nil }

// Programs implements workload.Workload. The machine must match the
// trace's width: a trace is a complete parallel execution, not a
// resizable benchmark.
func (r *Replay) Programs(numCores int) ([]*isa.Program, error) {
	if numCores != r.trace.Cores {
		return nil, fmt.Errorf("memtrace: trace was recorded on %d cores, cannot replay on %d", r.trace.Cores, numCores)
	}
	progs := make([]*isa.Program, numCores)
	for c := 0; c < numCores; c++ {
		p, err := r.program(c)
		if err != nil {
			return nil, err
		}
		progs[c] = p
	}
	return progs, nil
}

const (
	rAddr isa.Reg = 3
	rTmp  isa.Reg = 4
	rVal  isa.Reg = 5
)

func (r *Replay) program(c int) (*isa.Program, error) {
	b := isa.NewBuilder(fmt.Sprintf("%s.t%d", r.Name(), c))
	halted := false
	for _, e := range r.trace.Events[c] {
		if halted {
			return nil, fmt.Errorf("memtrace: core %d has events after halt", c)
		}
		switch e.Op {
		case core.OpLoad:
			b.Li(rAddr, int64(e.Addr))
			b.Load(rTmp, rAddr, 0)
		case core.OpStore:
			b.Li(rVal, int64(e.Val))
			b.Li(rAddr, int64(e.Addr))
			b.Store(rVal, rAddr, 0)
		case core.OpLockAcq:
			// Acquisition = take the lock line exclusive (see type doc).
			b.Li(rVal, 1)
			b.Li(rAddr, int64(e.Addr))
			b.Store(rVal, rAddr, 0)
		case core.OpLockRel:
			b.Li(rVal, 0)
			b.Li(rAddr, int64(e.Addr))
			b.Store(rVal, rAddr, 0)
		case core.OpBarrier:
			b.Barrier(int64(e.Addr))
		case core.OpHalt:
			b.Halt()
			halted = true
		default:
			return nil, fmt.Errorf("memtrace: core %d: invalid op %d", c, e.Op)
		}
	}
	if !halted {
		// A trace captured from a cycle-capped run ends mid-stream;
		// replay just halts where the recording stopped.
		b.Halt()
	}
	return b.Program()
}

// Verify implements workload.Verifier trivially: a trace carries no
// functional reference to check against (the recorded run already
// verified its own workload), but front ends like sweep verify every
// workload that can be, so replay must satisfy the interface.
func (r *Replay) Verify(m *mem.Memory) error { return nil }
