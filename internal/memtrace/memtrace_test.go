package memtrace

import (
	"bytes"
	"reflect"
	"testing"

	"slacksim/internal/core"
	"slacksim/internal/isa"
	"slacksim/internal/recframe"
)

func sampleTrace() *Trace {
	return &Trace{
		Version:  version,
		Workload: "falseshare-4",
		Cores:    2,
		Events: [][]Event{
			{
				{Op: core.OpLoad, Addr: 0x0100_0000},
				{Op: core.OpStore, Addr: 0x0100_0000, Val: 1},
				{Op: core.OpLockAcq, Addr: 0x0800_0000},
				{Op: core.OpLockRel, Addr: 0x0800_0000},
				{Op: core.OpBarrier, Addr: 0},
				{Op: core.OpHalt},
			},
			{
				{Op: core.OpStore, Addr: 0x0100_0008, Val: 0xdead_beef_cafe},
				{Op: core.OpBarrier, Addr: 0},
				{Op: core.OpHalt},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	data, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", tr, got)
	}
}

func TestEncodeCanonical(t *testing.T) {
	a, err := Encode(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Encode(sampleTrace())
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not canonical")
	}
	if Digest(a) != Digest(b) {
		t.Fatal("digests differ for identical encodings")
	}
}

func TestLargeTraceBatches(t *testing.T) {
	tr := &Trace{Version: version, Workload: "big", Cores: 1, Events: make([][]Event, 1)}
	for i := 0; i < 3*batchSize+7; i++ {
		tr.Events[0] = append(tr.Events[0], Event{Op: core.OpStore, Addr: uint64(i) * 8, Val: uint64(i)})
	}
	data, err := Encode(tr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalEvents() != tr.TotalEvents() {
		t.Fatalf("decoded %d events, want %d", got.TotalEvents(), tr.TotalEvents())
	}
}

// mustNotPanic asserts Decode returns an error (not a panic, not a nil
// error) for malformed input.
func mustNotPanic(t *testing.T, name string, data []byte) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: Decode panicked: %v", name, r)
		}
	}()
	if _, err := Decode(data); err == nil {
		t.Errorf("%s: Decode accepted malformed input", name)
	}
}

func TestDecodeRobustness(t *testing.T) {
	good, err := Encode(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}

	mustNotPanic(t, "empty", nil)
	mustNotPanic(t, "torn header", good[:5])
	mustNotPanic(t, "torn mid-record", good[:len(good)/2])
	mustNotPanic(t, "missing trailer", good[:len(good)-20])

	flip := append([]byte(nil), good...)
	flip[len(flip)/2] ^= 0x40
	mustNotPanic(t, "corrupt CRC", flip)

	// Bad magic: corrupt the first header payload byte and refresh its CRC
	// so the framing passes but the format check must fire.
	badMagic := append([]byte(nil), good...)
	badMagic[8] = 'X'
	refreshCRC(badMagic, 0)
	mustNotPanic(t, "bad magic", badMagic)

	badVer := append([]byte(nil), good...)
	badVer[8+len(magic)] = 99
	refreshCRC(badVer, 0)
	mustNotPanic(t, "bad version", badVer)

	mustNotPanic(t, "garbage", []byte("not a trace at all, but long enough to look like one"))
}

// refreshCRC recomputes the framing checksum of the record starting at
// off, so payload-level corruption tests reach the format decoder.
func refreshCRC(data []byte, off int) {
	n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
	payload := data[off+8 : off+8+n]
	// Re-frame via the durable package by rebuilding the header.
	var buf bytes.Buffer
	if _, err := recframe.Append(&buf, payload); err != nil {
		panic(err)
	}
	copy(data[off:], buf.Bytes()[:8])
}

func TestDecodeTrailerMismatch(t *testing.T) {
	tr := sampleTrace()
	data, _ := Encode(tr)
	// Re-encode with a lying trailer by appending an extra event record
	// after encoding (the trailer no longer matches).
	extra := []byte{tagEvents, 0, 1, byte(core.OpLoad), 8}
	var buf bytes.Buffer
	buf.Write(data)
	if _, err := recframe.Append(&buf, extra); err != nil {
		t.Fatal(err)
	}
	mustNotPanic(t, "record after trailer", buf.Bytes())
}

func TestRecorderCheckpointRollback(t *testing.T) {
	r := NewRecorder(2, "wk")
	r.RecordOp(0, core.OpLoad, 8, 0)
	r.RecordOp(1, core.OpStore, 16, 1)
	r.Checkpoint()
	r.RecordOp(0, core.OpStore, 24, 2)
	r.RecordOp(1, core.OpLoad, 32, 0)
	r.Rollback()
	r.RecordOp(0, core.OpStore, 24, 3) // replayed window, different value
	tr := r.Trace()
	if len(tr.Events[0]) != 2 || len(tr.Events[1]) != 1 {
		t.Fatalf("rollback did not truncate: %d/%d events", len(tr.Events[0]), len(tr.Events[1]))
	}
	if tr.Events[0][1].Val != 3 {
		t.Fatalf("replayed event lost: %+v", tr.Events[0][1])
	}
	if _, err := r.Encode(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayPrograms(t *testing.T) {
	data, err := Encode(sampleTrace())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewReplay(data)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "replay-"+Digest(data)[:12] {
		t.Fatalf("name %q must embed the trace digest", rp.Name())
	}
	progs, err := rp.Programs(2)
	if err != nil {
		t.Fatal(err)
	}
	for c, p := range progs {
		last := p.Insts[len(p.Insts)-1]
		if last.Op != isa.Halt {
			t.Errorf("core %d replay program must end in Halt, got %v", c, last.Op)
		}
	}
	if _, err := rp.Programs(4); err == nil {
		t.Fatal("replay on the wrong core count must fail")
	}
	if err := rp.Verify(nil); err != nil {
		t.Fatalf("trivial Verify must pass: %v", err)
	}
}

func TestReplayUnhaltedTraceGetsHalt(t *testing.T) {
	tr := &Trace{Version: version, Workload: "w", Cores: 1,
		Events: [][]Event{{{Op: core.OpLoad, Addr: 64}}}}
	rp, err := NewReplayTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	progs, err := rp.Programs(1)
	if err != nil {
		t.Fatal(err)
	}
	if progs[0].Insts[len(progs[0].Insts)-1].Op != isa.Halt {
		t.Fatal("truncated trace's replay must still halt")
	}
}

func TestReplayRejectsEventsAfterHalt(t *testing.T) {
	tr := &Trace{Version: version, Workload: "w", Cores: 1,
		Events: [][]Event{{{Op: core.OpHalt}, {Op: core.OpLoad, Addr: 64}}}}
	rp, err := NewReplayTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.Programs(1); err == nil {
		t.Fatal("events after halt must be rejected")
	}
}

func FuzzDecode(f *testing.F) {
	good, err := Encode(sampleTrace())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data) // must never panic
		if err != nil {
			return
		}
		// Valid decodes must re-encode and round-trip.
		enc, err := Encode(tr)
		if err != nil {
			t.Fatalf("decoded trace failed to encode: %v", err)
		}
		tr2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("re-encode round trip mismatch")
		}
	})
}
