// Package memtrace defines the versioned on-disk memory-event trace
// format, the engine-side recorder that captures a run's architectural
// retire stream, and the replay workload that turns a captured trace back
// into runnable programs.
//
// A trace file is a sequence of records in the durable package's shared
// framing (length + CRC-32C per record), so a torn or bit-flipped file is
// detected record-by-record. Inside the framing the format is:
//
//	header  "SLKTRC" ver  cores name          (first record)
//	events  'E' core count (op addr [val])*   (batched, core-major order)
//	trailer 'T' total percore*                (last record)
//
// Integers are uvarints. The trailer is mandatory: a file that ends
// without one — however cleanly the framing survives — is truncated and
// Decode says so. Events are serialized core-major (all of core 0, then
// core 1, ...), which is canonical: a trace's bytes are a pure function
// of its content, so the digest of a CC run's trace is host-independent.
package memtrace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"slacksim/internal/core"
	"slacksim/internal/recframe"
)

// Format constants. Version bumps when the payload layout changes;
// decoders reject versions they do not understand.
const (
	magic   = "SLKTRC"
	version = 1

	tagEvents  = 'E'
	tagTrailer = 'T'

	// batchSize bounds events per record so one corrupt record loses a
	// bounded window and record payloads stay far under the framing's
	// maximum record length.
	batchSize = 4096

	// maxCores bounds the decoded core count against corrupt headers.
	maxCores = 4096
)

// Event is one architecturally-retired memory or synchronization
// operation. Val is meaningful only for stores (the value written) — for
// barriers Addr carries the barrier id.
type Event struct {
	Op   core.MemOp
	Addr uint64
	Val  uint64
}

// Trace is a decoded trace: the per-core retire streams of one run.
type Trace struct {
	Version  int
	Workload string // name of the recorded workload
	Cores    int
	Events   [][]Event // [core][commit order]
}

// TotalEvents returns the number of events across all cores.
func (t *Trace) TotalEvents() int {
	n := 0
	for _, evs := range t.Events {
		n += len(evs)
	}
	return n
}

// Encode serializes the trace into the canonical byte form.
func Encode(t *Trace) ([]byte, error) {
	if t.Cores != len(t.Events) {
		return nil, fmt.Errorf("memtrace: trace has %d cores but %d event streams", t.Cores, len(t.Events))
	}
	if t.Cores < 1 || t.Cores > maxCores {
		return nil, fmt.Errorf("memtrace: core count %d out of range [1, %d]", t.Cores, maxCores)
	}
	var out bytes.Buffer
	var scratch []byte

	hdr := append([]byte(magic), version)
	hdr = binary.AppendUvarint(hdr, uint64(t.Cores))
	hdr = binary.AppendUvarint(hdr, uint64(len(t.Workload)))
	hdr = append(hdr, t.Workload...)
	if _, err := recframe.Append(&out, hdr); err != nil {
		return nil, err
	}

	for c, evs := range t.Events {
		for start := 0; start < len(evs); start += batchSize {
			end := min(start+batchSize, len(evs))
			scratch = scratch[:0]
			scratch = append(scratch, tagEvents)
			scratch = binary.AppendUvarint(scratch, uint64(c))
			scratch = binary.AppendUvarint(scratch, uint64(end-start))
			for _, e := range evs[start:end] {
				scratch = append(scratch, byte(e.Op))
				scratch = binary.AppendUvarint(scratch, e.Addr)
				if e.Op == core.OpStore {
					scratch = binary.AppendUvarint(scratch, e.Val)
				}
			}
			if _, err := recframe.Append(&out, scratch); err != nil {
				return nil, err
			}
		}
	}

	tr := []byte{tagTrailer}
	tr = binary.AppendUvarint(tr, uint64(t.TotalEvents()))
	for _, evs := range t.Events {
		tr = binary.AppendUvarint(tr, uint64(len(evs)))
	}
	if _, err := recframe.Append(&out, tr); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Digest returns the hex SHA-256 of an encoded trace; it is the trace's
// content address (spec keys embed it).
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Decode parses an encoded trace. Every malformation — torn tail, corrupt
// CRC, bad magic or version, unknown record tag, truncated payload,
// missing trailer, or totals that do not add up — returns an error;
// Decode never panics on adversarial input.
func Decode(data []byte) (*Trace, error) {
	var t *Trace
	sawTrailer := false
	res, err := recframe.Scan(bytes.NewReader(data), func(_ int64, payload []byte) error {
		switch {
		case t == nil:
			tr, err := decodeHeader(payload)
			if err != nil {
				return err
			}
			t = tr
			return nil
		case sawTrailer:
			return fmt.Errorf("memtrace: record after trailer")
		case len(payload) == 0:
			return fmt.Errorf("memtrace: empty record")
		case payload[0] == tagEvents:
			return decodeEvents(t, payload[1:])
		case payload[0] == tagTrailer:
			sawTrailer = true
			return checkTrailer(t, payload[1:])
		default:
			return fmt.Errorf("memtrace: unknown record tag %#x", payload[0])
		}
	})
	if err != nil {
		return nil, err
	}
	if res.Torn {
		return nil, fmt.Errorf("memtrace: torn or corrupt record tail")
	}
	if t == nil {
		return nil, fmt.Errorf("memtrace: empty trace file")
	}
	if !sawTrailer {
		return nil, fmt.Errorf("memtrace: missing trailer (truncated trace)")
	}
	return t, nil
}

func decodeHeader(payload []byte) (*Trace, error) {
	if len(payload) < len(magic)+1 || string(payload[:len(magic)]) != magic {
		return nil, fmt.Errorf("memtrace: bad magic (not a trace file)")
	}
	if v := payload[len(magic)]; v != version {
		return nil, fmt.Errorf("memtrace: unsupported trace version %d (decoder speaks %d)", v, version)
	}
	rest := payload[len(magic)+1:]
	cores, rest, err := uvarint(rest)
	if err != nil {
		return nil, fmt.Errorf("memtrace: header cores: %w", err)
	}
	if cores < 1 || cores > maxCores {
		return nil, fmt.Errorf("memtrace: core count %d out of range [1, %d]", cores, maxCores)
	}
	nameLen, rest, err := uvarint(rest)
	if err != nil {
		return nil, fmt.Errorf("memtrace: header name length: %w", err)
	}
	if nameLen != uint64(len(rest)) {
		return nil, fmt.Errorf("memtrace: header name length %d does not match %d remaining bytes", nameLen, len(rest))
	}
	return &Trace{
		Version:  version,
		Workload: string(rest),
		Cores:    int(cores),
		Events:   make([][]Event, cores),
	}, nil
}

func decodeEvents(t *Trace, payload []byte) error {
	c, payload, err := uvarint(payload)
	if err != nil {
		return fmt.Errorf("memtrace: event record core: %w", err)
	}
	if c >= uint64(t.Cores) {
		return fmt.Errorf("memtrace: event record for core %d of a %d-core trace", c, t.Cores)
	}
	count, payload, err := uvarint(payload)
	if err != nil {
		return fmt.Errorf("memtrace: event record count: %w", err)
	}
	if count > batchSize {
		return fmt.Errorf("memtrace: event record claims %d events (batch limit %d)", count, batchSize)
	}
	for i := uint64(0); i < count; i++ {
		if len(payload) == 0 {
			return fmt.Errorf("memtrace: event record truncated at event %d of %d", i, count)
		}
		op := core.MemOp(payload[0])
		if op < core.OpLoad || op > core.OpHalt {
			return fmt.Errorf("memtrace: invalid op byte %#x", payload[0])
		}
		payload = payload[1:]
		var e Event
		e.Op = op
		if e.Addr, payload, err = uvarint(payload); err != nil {
			return fmt.Errorf("memtrace: event %d addr: %w", i, err)
		}
		if op == core.OpStore {
			if e.Val, payload, err = uvarint(payload); err != nil {
				return fmt.Errorf("memtrace: event %d store value: %w", i, err)
			}
		}
		t.Events[c] = append(t.Events[c], e)
	}
	if len(payload) != 0 {
		return fmt.Errorf("memtrace: %d trailing bytes in event record", len(payload))
	}
	return nil
}

func checkTrailer(t *Trace, payload []byte) error {
	total, payload, err := uvarint(payload)
	if err != nil {
		return fmt.Errorf("memtrace: trailer total: %w", err)
	}
	if got := uint64(t.TotalEvents()); got != total {
		return fmt.Errorf("memtrace: trailer claims %d events, decoded %d", total, got)
	}
	for c, evs := range t.Events {
		var n uint64
		if n, payload, err = uvarint(payload); err != nil {
			return fmt.Errorf("memtrace: trailer core %d count: %w", c, err)
		}
		if n != uint64(len(evs)) {
			return fmt.Errorf("memtrace: trailer claims %d events for core %d, decoded %d", n, c, len(evs))
		}
	}
	if len(payload) != 0 {
		return fmt.Errorf("memtrace: %d trailing bytes in trailer", len(payload))
	}
	return nil
}

// uvarint decodes one uvarint from b, returning the value and the rest.
func uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated or oversized uvarint")
	}
	return v, b[n:], nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
