package isa

import "fmt"

// Builder assembles Programs with forward-referenced labels, so workload
// kernels can be written as structured loop nests in Go and compiled into
// real target programs.
//
// Usage:
//
//	b := isa.NewBuilder("kernel")
//	b.Li(3, 10)
//	top := b.Here()
//	b.Op3(isa.Add, 4, 4, 3)
//	b.Subi(3, 3, 1)
//	b.Bne(3, isa.Zero, top)
//	b.Halt()
//	prog, err := b.Program()
type Builder struct {
	name   string
	insts  []Inst
	labels []int   // label id -> instruction index (-1 if unplaced)
	fixups []fixup // branches awaiting label placement
	errs   []error
}

type fixup struct {
	inst  int // instruction index whose Imm is a label id
	label Label
}

// Label names a position in the program under construction.
type Label int

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// NewLabel allocates a label that can be bound later with Bind, enabling
// forward branches.
func (b *Builder) NewLabel() Label {
	b.labels = append(b.labels, -1)
	return Label(len(b.labels) - 1)
}

// Bind places lbl at the next emitted instruction.
func (b *Builder) Bind(lbl Label) {
	if int(lbl) >= len(b.labels) {
		b.errs = append(b.errs, fmt.Errorf("isa: bind of unknown label %d", lbl))
		return
	}
	if b.labels[lbl] != -1 {
		b.errs = append(b.errs, fmt.Errorf("isa: label %d bound twice", lbl))
		return
	}
	b.labels[lbl] = len(b.insts)
}

// Here allocates a label bound at the current position (for backward
// branches).
func (b *Builder) Here() Label {
	l := b.NewLabel()
	b.Bind(l)
	return l
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in Inst) {
	b.insts = append(b.insts, in)
}

// Len reports the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// Op3 emits a three-register ALU instruction: dst = src1 op src2.
func (b *Builder) Op3(op Op, dst, src1, src2 Reg) {
	b.Emit(Inst{Op: op, Dst: dst, Src1: src1, Src2: src2})
}

// OpImm emits a register-immediate ALU instruction: dst = src1 op imm.
func (b *Builder) OpImm(op Op, dst, src1 Reg, imm int64) {
	b.Emit(Inst{Op: op, Dst: dst, Src1: src1, Imm: imm})
}

// Li loads a 64-bit constant into dst (one or two instructions).
func (b *Builder) Li(dst Reg, v int64) {
	lo := v & 0xffffffff
	hi := v >> 32
	if hi == 0 || (hi == -1 && lo&0x80000000 != 0) {
		// Fits in the sign-extended... Addi's Imm is a full int64 in this
		// toy encoding, so a single Addi always suffices; keep Lui for
		// realism in instruction mix when the value is large.
	}
	if v >= -1<<31 && v < 1<<31 {
		b.OpImm(Addi, dst, Zero, v)
		return
	}
	b.OpImm(Lui, dst, Zero, hi)
	b.OpImm(Ori, dst, dst, lo)
}

// Lf loads a float64 constant's bit pattern into dst.
func (b *Builder) Lf(dst Reg, f float64) {
	v := int64(F2U(f))
	b.OpImm(Lui, dst, Zero, v>>32)
	b.OpImm(Ori, dst, dst, v&0xffffffff)
}

// Mov copies src to dst.
func (b *Builder) Mov(dst, src Reg) { b.Op3(Add, dst, src, Zero) }

// Addi emits dst = src + imm.
func (b *Builder) Addi(dst, src Reg, imm int64) { b.OpImm(Addi, dst, src, imm) }

// Subi emits dst = src - imm.
func (b *Builder) Subi(dst, src Reg, imm int64) { b.OpImm(Addi, dst, src, -imm) }

// Load emits dst = mem[base+off].
func (b *Builder) Load(dst, base Reg, off int64) {
	b.Emit(Inst{Op: Load, Dst: dst, Src1: base, Imm: off})
}

// Store emits mem[base+off] = src.
func (b *Builder) Store(src, base Reg, off int64) {
	b.Emit(Inst{Op: Store, Src1: base, Src2: src, Imm: off})
}

func (b *Builder) branch(op Op, s1, s2 Reg, target Label) {
	b.Emit(Inst{Op: op, Src1: s1, Src2: s2, Imm: int64(target)})
	b.fixups = append(b.fixups, fixup{inst: len(b.insts) - 1, label: target})
}

// Beq emits a branch to target when s1 == s2.
func (b *Builder) Beq(s1, s2 Reg, target Label) { b.branch(Beq, s1, s2, target) }

// Bne emits a branch to target when s1 != s2.
func (b *Builder) Bne(s1, s2 Reg, target Label) { b.branch(Bne, s1, s2, target) }

// Blt emits a branch to target when s1 < s2 (signed).
func (b *Builder) Blt(s1, s2 Reg, target Label) { b.branch(Blt, s1, s2, target) }

// Bge emits a branch to target when s1 >= s2 (signed).
func (b *Builder) Bge(s1, s2 Reg, target Label) { b.branch(Bge, s1, s2, target) }

// Jmp emits an unconditional jump to target.
func (b *Builder) Jmp(target Label) { b.branch(Jmp, Zero, Zero, target) }

// Lock emits a lock acquire on the lock word at base+off.
func (b *Builder) Lock(base Reg, off int64) {
	b.Emit(Inst{Op: LockAcq, Src1: base, Imm: off})
}

// Unlock emits a lock release on the lock word at base+off.
func (b *Builder) Unlock(base Reg, off int64) {
	b.Emit(Inst{Op: LockRel, Src1: base, Imm: off})
}

// Barrier emits a global barrier on barrier variable id.
func (b *Builder) Barrier(id int64) {
	b.Emit(Inst{Op: Barrier, Imm: id})
}

// Halt emits program termination.
func (b *Builder) Halt() { b.Emit(Inst{Op: Halt}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(Inst{Op: Nop}) }

// Loop runs body with a fresh loop: it initializes ctr to count, runs body,
// decrements ctr and branches back while ctr != 0. count must be >= 1.
func (b *Builder) Loop(ctr Reg, count int64, body func()) {
	b.Li(ctr, count)
	top := b.Here()
	body()
	b.Subi(ctr, ctr, 1)
	b.Bne(ctr, Zero, top)
}

// Program resolves labels and returns the assembled program. It fails if
// any label is unbound or any recorded error occurred.
func (b *Builder) Program() (*Program, error) {
	for _, e := range b.errs {
		return nil, e
	}
	insts := make([]Inst, len(b.insts))
	copy(insts, b.insts)
	for _, f := range b.fixups {
		pos := b.labels[f.label]
		if pos == -1 {
			return nil, fmt.Errorf("isa: %s: label %d never bound", b.name, f.label)
		}
		insts[f.inst].Imm = int64(pos)
	}
	p := &Program{Insts: insts, Name: b.name}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustProgram is Program but panics on error; for use in tests and
// statically-correct workload constructors.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}
