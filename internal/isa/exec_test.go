package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestALUResultInteger(t *testing.T) {
	cases := []struct {
		in   Inst
		a, b uint64
		want uint64
	}{
		{Inst{Op: Add}, 3, 4, 7},
		{Inst{Op: Sub}, 10, 4, 6},
		{Inst{Op: Sub}, 0, 1, ^uint64(0)},
		{Inst{Op: Mul}, 6, 7, 42},
		{Inst{Op: Div}, 42, 7, 6},
		{Inst{Op: Div}, uint64(0xFFFFFFFFFFFFFFF6), 5, uint64(0xFFFFFFFFFFFFFFFE)}, // -10/5 = -2
		{Inst{Op: Div}, 5, 0, ^uint64(0)},
		{Inst{Op: Rem}, 17, 5, 2},
		{Inst{Op: Rem}, 17, 0, 17},
		{Inst{Op: And}, 0b1100, 0b1010, 0b1000},
		{Inst{Op: Or}, 0b1100, 0b1010, 0b1110},
		{Inst{Op: Xor}, 0b1100, 0b1010, 0b0110},
		{Inst{Op: Shl}, 1, 4, 16},
		{Inst{Op: Shl}, 1, 68, 16}, // shift amount masked to 6 bits
		{Inst{Op: Shr}, 16, 4, 1},
		{Inst{Op: Slt}, 3, 4, 1},
		{Inst{Op: Slt}, 4, 3, 0},
		{Inst{Op: Slt}, ^uint64(0), 0, 1}, // -1 < 0 signed
		{Inst{Op: Addi, Imm: 5}, 2, 0, 7},
		{Inst{Op: Addi, Imm: -5}, 2, 0, uint64(0xFFFFFFFFFFFFFFFD)},
		{Inst{Op: Andi, Imm: 0xF}, 0x3C, 0, 0xC},
		{Inst{Op: Ori, Imm: 0x1}, 0x2, 0, 0x3},
		{Inst{Op: Xori, Imm: 0xFF}, 0x0F, 0, 0xF0},
		{Inst{Op: Shli, Imm: 3}, 2, 0, 16},
		{Inst{Op: Shri, Imm: 3}, 16, 0, 2},
		{Inst{Op: Slti, Imm: 10}, 5, 0, 1},
		{Inst{Op: Slti, Imm: 10}, 15, 0, 0},
		{Inst{Op: Lui, Imm: 0x1234}, 99, 99, 0x1234 << 32},
	}
	for _, tc := range cases {
		if got := ALUResult(tc.in, tc.a, tc.b); got != tc.want {
			t.Errorf("%v(%d,%d) = %d, want %d", tc.in.Op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestALUResultFloat(t *testing.T) {
	f := func(v float64) uint64 { return F2U(v) }
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{FAdd, f(1.5), f(2.25), f(3.75)},
		{FSub, f(1.5), f(2.25), f(-0.75)},
		{FMul, f(3), f(4), f(12)},
		{FDiv, f(1), f(4), f(0.25)},
		{FSqrt, f(9), 0, f(3)},
		{FNeg, f(2.5), 0, f(-2.5)},
		{Itof, 7, 0, f(7)},
		{Itof, ^uint64(0), 0, f(-1)},
		{Ftoi, f(3.99), 0, 3},
		{Ftoi, f(-3.99), 0, uint64(0xFFFFFFFFFFFFFFFD)},
		{FLt, f(1), f(2), 1},
		{FLt, f(2), f(1), 0},
	}
	for _, tc := range cases {
		if got := ALUResult(Inst{Op: tc.op}, tc.a, tc.b); got != tc.want {
			t.Errorf("%v: got %#x, want %#x", tc.op, got, tc.want)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{Beq, 5, 5, true}, {Beq, 5, 6, false},
		{Bne, 5, 6, true}, {Bne, 5, 5, false},
		{Blt, 3, 5, true}, {Blt, 5, 3, false},
		{Blt, ^uint64(0), 0, true}, // signed
		{Bge, 5, 5, true}, {Bge, 3, 5, false},
		{Jmp, 0, 0, true},
		{Add, 1, 1, false}, // non-branch never taken
	}
	for _, tc := range cases {
		if got := BranchTaken(Inst{Op: tc.op}, tc.a, tc.b); got != tc.want {
			t.Errorf("%v(%d,%d) = %v, want %v", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

// Property: integer add/sub and xor are involutive pairs.
func TestQuickAddSubRoundTrip(t *testing.T) {
	prop := func(a, b uint64) bool {
		s := ALUResult(Inst{Op: Add}, a, b)
		return ALUResult(Inst{Op: Sub}, s, b) == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	xorProp := func(a, b uint64) bool {
		x := ALUResult(Inst{Op: Xor}, a, b)
		return ALUResult(Inst{Op: Xor}, x, b) == a
	}
	if err := quick.Check(xorProp, nil); err != nil {
		t.Error(err)
	}
}

// Property: Slt matches Go's signed comparison; FLt matches float compare.
func TestQuickComparisons(t *testing.T) {
	slt := func(a, b int64) bool {
		got := ALUResult(Inst{Op: Slt}, uint64(a), uint64(b))
		want := uint64(0)
		if a < b {
			want = 1
		}
		return got == want
	}
	if err := quick.Check(slt, nil); err != nil {
		t.Error(err)
	}
	flt := func(a, b float64) bool {
		got := ALUResult(Inst{Op: FLt}, F2U(a), F2U(b))
		want := uint64(0)
		if a < b {
			want = 1
		}
		return got == want
	}
	if err := quick.Check(flt, nil); err != nil {
		t.Error(err)
	}
}

// Property: float ops agree with Go's float64 arithmetic bit for bit.
func TestQuickFloatOps(t *testing.T) {
	prop := func(a, b float64) bool {
		if ALUResult(Inst{Op: FAdd}, F2U(a), F2U(b)) != F2U(a+b) {
			return false
		}
		if ALUResult(Inst{Op: FMul}, F2U(a), F2U(b)) != F2U(a*b) {
			return false
		}
		return ALUResult(Inst{Op: FDiv}, F2U(a), F2U(b)) == F2U(a/b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatConversionsRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		if U2F(F2U(v)) != v {
			t.Errorf("roundtrip broke %v", v)
		}
	}
	// NaN round-trips to NaN (bit pattern preserved).
	if !math.IsNaN(U2F(F2U(math.NaN()))) {
		t.Error("NaN lost")
	}
}
