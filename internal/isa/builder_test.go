package isa

import (
	"strings"
	"testing"
)

func TestBuilderBackwardBranch(t *testing.T) {
	b := NewBuilder("back")
	b.Li(3, 5)
	top := b.Here()
	b.Subi(3, 3, 1)
	b.Bne(3, Zero, top)
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	// Li (1 inst for small value), then loop body at index 1.
	br := p.Insts[2]
	if br.Op != Bne || br.Imm != 1 {
		t.Errorf("backward branch resolved to %v", br)
	}
}

func TestBuilderForwardBranch(t *testing.T) {
	b := NewBuilder("fwd")
	done := b.NewLabel()
	b.Beq(Zero, Zero, done)
	b.Nop()
	b.Nop()
	b.Bind(done)
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Imm != 3 {
		t.Errorf("forward branch resolved to %d, want 3", p.Insts[0].Imm)
	}
}

func TestBuilderUnboundLabel(t *testing.T) {
	b := NewBuilder("unbound")
	l := b.NewLabel()
	b.Jmp(l)
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "never bound") {
		t.Errorf("unbound label not reported: %v", err)
	}
}

func TestBuilderDoubleBind(t *testing.T) {
	b := NewBuilder("double")
	l := b.NewLabel()
	b.Bind(l)
	b.Bind(l)
	b.Halt()
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("double bind not reported: %v", err)
	}
}

func TestBuilderLiSizes(t *testing.T) {
	small := NewBuilder("small")
	small.Li(3, 42)
	if small.Len() != 1 {
		t.Errorf("small Li emitted %d instructions, want 1", small.Len())
	}
	neg := NewBuilder("neg")
	neg.Li(3, -1)
	if neg.Len() != 1 {
		t.Errorf("negative small Li emitted %d instructions, want 1", neg.Len())
	}
	big := NewBuilder("big")
	big.Li(3, 0x1234_5678_9ABC)
	if big.Len() != 2 {
		t.Errorf("large Li emitted %d instructions, want 2", big.Len())
	}
}

func TestBuilderLoopEmitsCountedLoop(t *testing.T) {
	b := NewBuilder("loop")
	body := 0
	b.Loop(3, 4, func() {
		b.Nop()
		body = 1
	})
	b.Halt()
	p := b.MustProgram()
	if body != 1 {
		t.Fatal("body not invoked")
	}
	// Li ctr; nop; subi; bne.
	if p.Len() != 5 {
		t.Errorf("loop emitted %d instructions, want 5", p.Len())
	}
}

func TestBuilderMustProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProgram did not panic on unbound label")
		}
	}()
	b := NewBuilder("panic")
	b.Jmp(b.NewLabel())
	b.MustProgram()
}

func TestBuilderLfLoadsFloatBits(t *testing.T) {
	b := NewBuilder("lf")
	b.Lf(4, 3.5)
	b.Halt()
	p := b.MustProgram()
	if p.Insts[0].Op != Lui || p.Insts[1].Op != Ori {
		t.Fatalf("Lf emitted %v, %v", p.Insts[0].Op, p.Insts[1].Op)
	}
	v := uint64(p.Insts[0].Imm)<<32 | uint64(p.Insts[1].Imm)&0xFFFFFFFF
	if U2F(v) != 3.5 {
		t.Errorf("Lf encodes %v, want 3.5", U2F(v))
	}
}

func TestBuilderProgramIsolation(t *testing.T) {
	// Program must copy the instruction slice so later emits don't mutate
	// an already-returned program.
	b := NewBuilder("iso")
	b.Nop()
	b.Halt()
	p1 := b.MustProgram()
	b.Emit(Inst{Op: Add})
	if p1.Len() != 2 {
		t.Errorf("returned program changed length to %d", p1.Len())
	}
}
