// Package isa defines the target instruction set simulated by SlackSim.
//
// The ISA is a small load/store RISC with 32 general-purpose 64-bit
// registers (r0 is hardwired to zero), integer and floating-point ALU
// operations, PC-relative branches, and three synchronization primitives
// (LOCK, UNLOCK, BARRIER) that the simulator executes reliably, as the
// paper's MP_Simplesim-derived API does. It stands in for the SimpleScalar
// PISA instruction set used by the original SlackSim: slack-simulation
// behaviour depends on the timing and interleaving of memory and
// synchronization events, not on instruction encodings, so any RISC ISA
// with comparable operation classes exercises the same machinery.
package isa

import "fmt"

// NumRegs is the number of general-purpose registers. Register 0 always
// reads as zero; writes to it are discarded.
const NumRegs = 32

// Reg identifies a general-purpose register.
type Reg uint8

// Conventional register aliases used by the workload kernels.
const (
	Zero Reg = 0 // hardwired zero
	RA   Reg = 1 // return/link (by convention only)
	SP   Reg = 2 // stack pointer (by convention only)
)

// Op enumerates instruction opcodes.
type Op uint8

// Opcode space. Operation classes matter to the core model (they select
// execution latency and functional unit); individual opcodes matter to the
// functional semantics in Exec.
const (
	Nop Op = iota

	// Integer ALU, register-register.
	Add
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Slt // set if less-than (signed)

	// Integer ALU, register-immediate.
	Addi
	Andi
	Ori
	Xori
	Shli
	Shri
	Slti
	Lui // load upper immediate: dst = imm << 32

	// Floating point (operands are float64 bit patterns in GPRs).
	FAdd
	FSub
	FMul
	FDiv
	FSqrt
	FNeg
	Itof // int -> float64 bits
	Ftoi // float64 bits -> int (truncated)
	FLt  // set dst to 1 if float(src1) < float(src2)

	// Memory. Effective address = src1 + imm. Load/Store move 8 bytes.
	Load
	Store

	// Control. Branch target is the absolute instruction index in Imm.
	Beq
	Bne
	Blt // signed less-than
	Bge
	Jmp

	// Synchronization: executed reliably inside the simulator.
	LockAcq // acquire lock at address src1+imm
	LockRel // release lock at address src1+imm
	Barrier // global barrier; Imm selects the barrier variable

	// Halt terminates the hardware thread's program.
	Halt

	numOps // sentinel
)

var opNames = [numOps]string{
	Nop: "nop",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr", Slt: "slt",
	Addi: "addi", Andi: "andi", Ori: "ori", Xori: "xori",
	Shli: "shli", Shri: "shri", Slti: "slti", Lui: "lui",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv",
	FSqrt: "fsqrt", FNeg: "fneg", Itof: "itof", Ftoi: "ftoi", FLt: "flt",
	Load: "load", Store: "store",
	Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge", Jmp: "jmp",
	LockAcq: "lock", LockRel: "unlock", Barrier: "barrier",
	Halt: "halt",
}

// String returns the mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Class groups opcodes by the functional unit and latency they use in the
// core's execution stage.
type Class uint8

// Operation classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassSync
	ClassHalt
)

// Class reports the operation class of op.
func (op Op) Class() Class {
	switch op {
	case Nop:
		return ClassNop
	case Add, Sub, And, Or, Xor, Shl, Shr, Slt,
		Addi, Andi, Ori, Xori, Shli, Shri, Slti, Lui, Itof, Ftoi, FNeg, FLt:
		return ClassIntALU
	case Mul:
		return ClassIntMul
	case Div, Rem:
		return ClassIntDiv
	case FAdd, FSub:
		return ClassFPAdd
	case FMul:
		return ClassFPMul
	case FDiv, FSqrt:
		return ClassFPDiv
	case Load:
		return ClassLoad
	case Store:
		return ClassStore
	case Beq, Bne, Blt, Bge, Jmp:
		return ClassBranch
	case LockAcq, LockRel, Barrier:
		return ClassSync
	case Halt:
		return ClassHalt
	}
	return ClassNop
}

// IsBranch reports whether op redirects control flow.
func (op Op) IsBranch() bool { return op.Class() == ClassBranch }

// IsMem reports whether op accesses data memory (including lock words).
func (op Op) IsMem() bool {
	c := op.Class()
	return c == ClassLoad || c == ClassStore
}

// IsSync reports whether op is a synchronization primitive.
func (op Op) IsSync() bool { return op.Class() == ClassSync }

// Inst is one decoded instruction.
//
// Fields are interpreted per opcode:
//
//	ALU rr:   Dst = Src1 op Src2
//	ALU ri:   Dst = Src1 op Imm
//	Load:     Dst = mem[Src1+Imm]
//	Store:    mem[Src1+Imm] = Src2
//	Branch:   if cond(Src1, Src2) goto Imm (absolute instruction index)
//	Jmp:      goto Imm
//	LockAcq:  acquire lock word at Src1+Imm
//	LockRel:  release lock word at Src1+Imm
//	Barrier:  wait at barrier #Imm
type Inst struct {
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Imm  int64
}

// String renders the instruction in a compact assembly-like syntax.
func (in Inst) String() string {
	switch in.Op.Class() {
	case ClassNop, ClassHalt:
		return in.Op.String()
	case ClassLoad:
		return fmt.Sprintf("load r%d, %d(r%d)", in.Dst, in.Imm, in.Src1)
	case ClassStore:
		return fmt.Sprintf("store r%d, %d(r%d)", in.Src2, in.Imm, in.Src1)
	case ClassBranch:
		if in.Op == Jmp {
			return fmt.Sprintf("jmp @%d", in.Imm)
		}
		return fmt.Sprintf("%s r%d, r%d, @%d", in.Op, in.Src1, in.Src2, in.Imm)
	case ClassSync:
		if in.Op == Barrier {
			return fmt.Sprintf("barrier #%d", in.Imm)
		}
		return fmt.Sprintf("%s %d(r%d)", in.Op, in.Imm, in.Src1)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d, imm=%d", in.Op, in.Dst, in.Src1, in.Src2, in.Imm)
	}
}

// Program is a sequence of instructions for one hardware thread. Instruction
// addresses used by the I-cache are InstBytes times the instruction index.
type Program struct {
	Insts []Inst
	// Name identifies the program in stats and traces.
	Name string
}

// InstBytes is the architectural size of one encoded instruction, used to
// derive instruction-fetch addresses for the I-cache.
const InstBytes = 8

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Insts) }

// At returns the instruction at index i, or Halt when i is out of range so
// that a runaway PC self-terminates deterministically.
func (p *Program) At(i int) Inst {
	if i < 0 || i >= len(p.Insts) {
		return Inst{Op: Halt}
	}
	return p.Insts[i]
}

// Validate checks structural well-formedness: branch targets in range and
// register indices below NumRegs. It returns the first problem found.
func (p *Program) Validate() error {
	for i, in := range p.Insts {
		if in.Dst >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs {
			return fmt.Errorf("isa: %s inst %d: register out of range", p.Name, i)
		}
		if in.Op.IsBranch() {
			if in.Imm < 0 || in.Imm > int64(len(p.Insts)) {
				return fmt.Errorf("isa: %s inst %d: branch target %d out of range [0,%d]",
					p.Name, i, in.Imm, len(p.Insts))
			}
		}
	}
	return nil
}
