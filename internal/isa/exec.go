package isa

import "math"

// ALUResult computes the functional result of a non-memory, non-branch,
// non-sync instruction given its two source operand values. Memory, branch
// and sync semantics live in the core model because they need machine state
// (memory port, PC, sync controller).
func ALUResult(in Inst, a, b uint64) uint64 {
	switch in.Op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return ^uint64(0)
		}
		return uint64(int64(a) / int64(b))
	case Rem:
		if b == 0 {
			return a
		}
		return uint64(int64(a) % int64(b))
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Shl:
		return a << (b & 63)
	case Shr:
		return a >> (b & 63)
	case Slt:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case Addi:
		return a + uint64(in.Imm)
	case Andi:
		return a & uint64(in.Imm)
	case Ori:
		return a | uint64(in.Imm)
	case Xori:
		return a ^ uint64(in.Imm)
	case Shli:
		return a << (uint64(in.Imm) & 63)
	case Shri:
		return a >> (uint64(in.Imm) & 63)
	case Slti:
		if int64(a) < in.Imm {
			return 1
		}
		return 0
	case Lui:
		return uint64(in.Imm) << 32
	case FAdd:
		return f2u(u2f(a) + u2f(b))
	case FSub:
		return f2u(u2f(a) - u2f(b))
	case FMul:
		return f2u(u2f(a) * u2f(b))
	case FDiv:
		return f2u(u2f(a) / u2f(b))
	case FSqrt:
		return f2u(math.Sqrt(u2f(a)))
	case FNeg:
		return f2u(-u2f(a))
	case Itof:
		return f2u(float64(int64(a)))
	case Ftoi:
		return uint64(int64(u2f(a)))
	case FLt:
		if u2f(a) < u2f(b) {
			return 1
		}
		return 0
	}
	return 0
}

// BranchTaken evaluates a conditional or unconditional branch given its
// source operand values.
func BranchTaken(in Inst, a, b uint64) bool {
	switch in.Op {
	case Beq:
		return a == b
	case Bne:
		return a != b
	case Blt:
		return int64(a) < int64(b)
	case Bge:
		return int64(a) >= int64(b)
	case Jmp:
		return true
	}
	return false
}

func u2f(u uint64) float64 { return math.Float64frombits(u) }
func f2u(f float64) uint64 { return math.Float64bits(f) }

// F2U converts a float64 to its register bit pattern (exported for workload
// builders and tests).
func F2U(f float64) uint64 { return math.Float64bits(f) }

// U2F converts a register bit pattern to float64.
func U2F(u uint64) float64 { return math.Float64frombits(u) }
