package isa

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		Nop: "nop", Add: "add", FDiv: "fdiv", Load: "load", Store: "store",
		Beq: "beq", Jmp: "jmp", LockAcq: "lock", LockRel: "unlock",
		Barrier: "barrier", Halt: "halt",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op String() = %q", got)
	}
}

func TestOpClass(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{Nop, ClassNop},
		{Add, ClassIntALU}, {Sub, ClassIntALU}, {Slti, ClassIntALU},
		{Lui, ClassIntALU}, {Itof, ClassIntALU}, {FLt, ClassIntALU},
		{Mul, ClassIntMul}, {Div, ClassIntDiv}, {Rem, ClassIntDiv},
		{FAdd, ClassFPAdd}, {FSub, ClassFPAdd},
		{FMul, ClassFPMul},
		{FDiv, ClassFPDiv}, {FSqrt, ClassFPDiv},
		{Load, ClassLoad}, {Store, ClassStore},
		{Beq, ClassBranch}, {Bne, ClassBranch}, {Blt, ClassBranch},
		{Bge, ClassBranch}, {Jmp, ClassBranch},
		{LockAcq, ClassSync}, {LockRel, ClassSync}, {Barrier, ClassSync},
		{Halt, ClassHalt},
	}
	for _, tc := range cases {
		if got := tc.op.Class(); got != tc.want {
			t.Errorf("%v.Class() = %v, want %v", tc.op, got, tc.want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !Beq.IsBranch() || Add.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !Load.IsMem() || !Store.IsMem() || Add.IsMem() || Barrier.IsMem() {
		t.Error("IsMem wrong")
	}
	if !LockAcq.IsSync() || Load.IsSync() {
		t.Error("IsSync wrong")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: Nop}, "nop"},
		{Inst{Op: Load, Dst: 3, Src1: 4, Imm: 16}, "load r3, 16(r4)"},
		{Inst{Op: Store, Src1: 4, Src2: 5, Imm: 8}, "store r5, 8(r4)"},
		{Inst{Op: Beq, Src1: 1, Src2: 2, Imm: 7}, "beq r1, r2, @7"},
		{Inst{Op: Jmp, Imm: 3}, "jmp @3"},
		{Inst{Op: Barrier, Imm: 2}, "barrier #2"},
		{Inst{Op: LockAcq, Src1: 6, Imm: 8}, "lock 8(r6)"},
		{Inst{Op: Add, Dst: 1, Src1: 2, Src2: 3}, "add r1, r2, r3, imm=0"},
	}
	for _, tc := range cases {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestProgramAt(t *testing.T) {
	p := &Program{Insts: []Inst{{Op: Add}, {Op: Sub}}}
	if p.At(0).Op != Add || p.At(1).Op != Sub {
		t.Error("At in range wrong")
	}
	if p.At(-1).Op != Halt || p.At(2).Op != Halt {
		t.Error("At out of range must return Halt")
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d, want 2", p.Len())
	}
}

func TestProgramValidate(t *testing.T) {
	good := &Program{Name: "g", Insts: []Inst{
		{Op: Add, Dst: 1, Src1: 2, Src2: 3},
		{Op: Beq, Src1: 1, Src2: 2, Imm: 0},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("good program invalid: %v", err)
	}
	badReg := &Program{Name: "r", Insts: []Inst{{Op: Add, Dst: 40}}}
	if err := badReg.Validate(); err == nil {
		t.Error("register out of range not caught")
	}
	badTarget := &Program{Name: "t", Insts: []Inst{{Op: Jmp, Imm: 5}}}
	if err := badTarget.Validate(); err == nil {
		t.Error("branch target out of range not caught")
	}
	negTarget := &Program{Name: "n", Insts: []Inst{{Op: Jmp, Imm: -1}}}
	if err := negTarget.Validate(); err == nil {
		t.Error("negative branch target not caught")
	}
}
