// Package recframe is the shared on-disk record framing used by every
// slacksim persistence format: the durable package's write-ahead logs,
// journals, and snapshot containers, and the memtrace trace files. A
// record is a fixed header of two little-endian uint32s — payload length
// and CRC-32C (Castagnoli) of the payload — followed by the payload. A
// process death can tear at most the record being appended; a scan stops
// at the first record that fails its length or checksum test and reports
// how many prefix bytes are good, so recovery can truncate the tail and
// every surviving byte is known-good.
package recframe

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Framing bounds. A length field beyond MaxRecordLen is treated as a torn
// tail, not an allocation order.
const (
	HeaderLen    = 8
	MaxRecordLen = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Append frames payload and appends it to w, returning the number of
// bytes written (header + payload).
func Append(w io.Writer, payload []byte) (int64, error) {
	if len(payload) > MaxRecordLen {
		return 0, fmt.Errorf("recframe: record of %d bytes exceeds the %d-byte bound", len(payload), MaxRecordLen)
	}
	var hdr [HeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(HeaderLen + len(payload)), nil
}

// ScanResult describes one pass over a record log.
type ScanResult struct {
	// GoodBytes is the offset just past the last record that passed both
	// the length and checksum tests.
	GoodBytes int64
	// Torn reports whether the file continued past GoodBytes with bytes
	// that did not form a valid record (a torn or corrupt tail).
	Torn bool
}

// Scan reads records from r, invoking fn with each payload and the
// record's starting offset. It stops at EOF or at the first record that
// fails validation; the result says how many prefix bytes are good.
func Scan(r io.Reader, fn func(off int64, payload []byte) error) (ScanResult, error) {
	var off int64
	var hdr [HeaderLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return ScanResult{GoodBytes: off}, nil
			}
			// io.ErrUnexpectedEOF: a torn header.
			return ScanResult{GoodBytes: off, Torn: true}, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n > MaxRecordLen {
			return ScanResult{GoodBytes: off, Torn: true}, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return ScanResult{GoodBytes: off, Torn: true}, nil
		}
		if crc32.Checksum(payload, crcTable) != want {
			return ScanResult{GoodBytes: off, Torn: true}, nil
		}
		if err := fn(off, payload); err != nil {
			return ScanResult{GoodBytes: off}, err
		}
		off += int64(HeaderLen) + int64(n)
	}
}
