// Package prof starts CPU and heap profiling for the command-line tools
// (the -cpuprofile / -memprofile convention of the go test runner), so a
// slow experiment sweep can be fed straight to `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuFile and arranges for a heap profile
// in memFile; either may be empty. The returned stop function ends the
// CPU profile and writes the heap profile. Call it on every exit path:
// deferred calls do not survive os.Exit, so error exits must invoke it
// explicitly.
func Start(cpuFile, memFile string) (stop func(), err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
