package bus

import (
	"testing"
	"testing/quick"
)

func TestGrantInOrder(t *testing.T) {
	b := New(1, 1)
	g1, v1 := b.Grant(10)
	g2, v2 := b.Grant(20)
	if g1 != 10 || g2 != 20 {
		t.Errorf("grants %d,%d, want 10,20", g1, g2)
	}
	if v1 || v2 {
		t.Error("in-order grants flagged as violations")
	}
	if b.Grants != 2 || b.Conflicts != 0 || b.Violations != 0 {
		t.Errorf("stats %d/%d/%d", b.Grants, b.Conflicts, b.Violations)
	}
}

func TestGrantConflictDelays(t *testing.T) {
	b := New(1, 1)
	b.Grant(10)
	g, v := b.Grant(10) // same cycle: bus busy, delayed one cycle
	if g != 11 {
		t.Errorf("conflicting grant at %d, want 11", g)
	}
	if v {
		t.Error("equal-timestamp conflict is not a violation")
	}
	if b.Conflicts != 1 {
		t.Errorf("Conflicts = %d, want 1", b.Conflicts)
	}
}

func TestGrantRetrogradeViolation(t *testing.T) {
	b := New(1, 1)
	b.Grant(20)
	g, v := b.Grant(10)
	if !v {
		t.Error("retrograde grant not flagged")
	}
	if b.Violations != 1 {
		t.Errorf("Violations = %d, want 1", b.Violations)
	}
	// The retrograde request occupies the (free) earlier slot: the
	// reordering is the violation, not a timing penalty.
	if g != 10 {
		t.Errorf("retrograde grant time %d, want 10", g)
	}
	// A second retrograde request colliding with the first is pushed.
	g2, _ := b.Grant(10)
	if g2 != 11 {
		t.Errorf("second retrograde grant %d, want 11", g2)
	}
	// Monitor keeps its high-water mark.
	if b.MonitorTS() != 20 {
		t.Errorf("monitor = %d, want 20", b.MonitorTS())
	}
}

func TestRequestOccupancy(t *testing.T) {
	b := New(4, 1)
	b.Grant(0)
	g, _ := b.Grant(1)
	if g != 4 {
		t.Errorf("grant with 4-cycle occupancy at %d, want 4", g)
	}
}

func TestScheduleResponse(t *testing.T) {
	b := New(1, 2)
	d1 := b.ScheduleResponse(10)
	if d1 != 12 {
		t.Errorf("first response done at %d, want 12", d1)
	}
	d2 := b.ScheduleResponse(10) // must queue behind the first
	if d2 != 14 {
		t.Errorf("second response done at %d, want 14", d2)
	}
	d3 := b.ScheduleResponse(100) // idle bus: starts at ready time
	if d3 != 102 {
		t.Errorf("late response done at %d, want 102", d3)
	}
}

func TestSnapshotRestore(t *testing.T) {
	b := New(1, 1)
	b.Grant(5)
	b.ScheduleResponse(9)
	snap := b.Snapshot()
	b.Grant(50)
	b.Restore(snap)
	g, _ := b.Grant(5)
	if g != 6 {
		t.Errorf("grant after restore at %d, want 6", g)
	}
	if b.Grants != 2 {
		t.Errorf("stats after restore: %d grants, want 2", b.Grants)
	}
}

func TestInvalidOccupancyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero occupancy accepted")
		}
	}()
	New(0, 1)
}

// Property: a grant never lands before its request's own timestamp, and
// no two grants ever overlap on the bus.
func TestQuickGrantSlots(t *testing.T) {
	prop := func(tss []int16) bool {
		b := New(1, 1)
		used := map[int64]bool{}
		for _, ts16 := range tss {
			ts := int64(ts16)
			if ts < 0 {
				ts = -ts
			}
			g, _ := b.Grant(ts)
			if g < ts || used[g] {
				return false
			}
			used[g] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: requests arriving in nondecreasing timestamp order get
// nondecreasing grants (conservative servicing stays in order).
func TestQuickInOrderGrantsMonotone(t *testing.T) {
	prop := func(deltas []uint8) bool {
		b := New(1, 1)
		ts, last := int64(0), int64(-1)
		for _, d := range deltas {
			ts += int64(d)
			g, v := b.Grant(ts)
			if v || g < last {
				return false
			}
			last = g
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a violation is flagged exactly when a timestamp is below the
// running maximum.
func TestQuickViolationIffRetrograde(t *testing.T) {
	prop := func(tss []int16) bool {
		b := New(1, 1)
		max := int64(-1)
		for _, ts16 := range tss {
			ts := int64(ts16)
			if ts < 0 {
				ts = -ts
			}
			_, v := b.Grant(ts)
			if v != (ts < max) {
				return false
			}
			if ts > max {
				max = ts
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
