// Package bus models the target CMP's split-transaction snooping
// interconnect: a request bus on which cores broadcast coherence requests
// (snooped by all L1s and the L2) and a response bus on which data replies
// propagate, as in the paper's Figure 2.
//
// Both buses are single-occupancy resources, so the critical latency of the
// target system is one cycle: two requests arriving in the same cycle
// conflict, and the order in which the simulation manager grants them can
// differ from target order whenever simulation slack is allowed. The bus
// therefore carries a monitoring variable on grant order; retrograde grants
// are the paper's "bus violations", by far the most frequent kind.
package bus

import "slacksim/internal/violation"

// Bus is the manager-side state of the request/response bus pair.
//
// Both buses are modeled as slot calendars: a transaction occupies the
// first free slot at or after its own timestamp. An eagerly-serviced slack
// simulation may therefore place a reservation *behind* an already-granted
// later one — that retrograde ordering is precisely a bus violation and is
// counted, but it does not artificially drag the late request's timing up
// to the run-ahead core's clock (a "busy-until" high-water mark would
// ratchet every laggard's timing forward and inflate simulated time).
type Bus struct {
	// reqRes and respRes hold the start cycles of recent reservations on
	// the request and response buses, sorted ascending and pruned to a
	// bounded window.
	reqRes  []int64
	respRes []int64

	monitor violation.Monitor

	// ReqOccupancy is how many cycles a request occupies the request bus.
	ReqOccupancy int64
	// RespOccupancy is how many cycles a data response occupies the
	// response bus (one line transfer).
	RespOccupancy int64

	// Grants counts request-bus grants.
	Grants uint64
	// Conflicts counts grants delayed by an earlier occupant.
	Conflicts uint64
	// RespConflicts counts response transfers delayed by an occupied bus.
	RespConflicts uint64
	// Violations counts retrograde grants (simulation state violations).
	Violations uint64
}

// resWindow bounds how many recent reservations are remembered per bus;
// older ones can no longer collide with new traffic in practice.
const resWindow = 128

// reserve places a transaction of the given occupancy at the first
// non-overlapping slot at or after ready in the reservation list, and
// returns the start cycle plus whether the transaction was delayed.
func reserve(res *[]int64, ready, occupancy int64) (start int64, delayed bool) {
	start = ready
	moved := true
	for moved {
		moved = false
		for _, s := range *res {
			if start < s+occupancy && s < start+occupancy {
				start = s + occupancy
				moved = true
			}
		}
	}
	// Insert sorted; prune the oldest beyond the window.
	r := *res
	i := len(r)
	for i > 0 && r[i-1] > start {
		i--
	}
	r = append(r, 0)
	copy(r[i+1:], r[i:])
	r[i] = start
	if len(r) > resWindow {
		r = r[1:]
	}
	*res = r
	return start, start != ready
}

// New returns an idle bus with the given occupancies (cycles per request
// and per response).
func New(reqOccupancy, respOccupancy int64) *Bus {
	if reqOccupancy <= 0 || respOccupancy <= 0 {
		panic("bus: occupancies must be positive")
	}
	return &Bus{
		monitor:       violation.NewMonitor(),
		ReqOccupancy:  reqOccupancy,
		RespOccupancy: respOccupancy,
	}
}

// Grant arbitrates the request bus for a request issued at simulated time
// ts. It returns the cycle at which the request actually occupies the bus
// and whether the grant was retrograde with respect to an earlier grant
// (a bus violation). Requests are granted in the order the manager
// services them — eagerly, within the slack window — which is exactly what
// makes violations possible.
func (b *Bus) Grant(ts int64) (grantTime int64, violated bool) {
	start, delayed := reserve(&b.reqRes, ts, b.ReqOccupancy)
	if delayed {
		b.Conflicts++
	}
	b.Grants++
	if b.monitor.Observe(ts) {
		b.Violations++
		violated = true
	}
	return start, violated
}

// ScheduleResponse reserves the response bus for a reply whose data is
// ready at readyTime; it returns the cycle at which the transfer
// completes. The transfer is placed at the first slot at or after
// readyTime that does not overlap an existing reservation, so a fast reply
// is not blocked behind a slower one that was merely scheduled earlier.
func (b *Bus) ScheduleResponse(readyTime int64) (doneTime int64) {
	start, delayed := reserve(&b.respRes, readyTime, b.RespOccupancy)
	if delayed {
		b.RespConflicts++
	}
	return start + b.RespOccupancy
}

// MonitorTS exposes the grant-order monitor's high-water mark for tests.
func (b *Bus) MonitorTS() int64 { return b.monitor.MaxTS }

// Snapshot copies the bus state.
func (b *Bus) Snapshot() *Bus {
	c := *b
	c.reqRes = append([]int64(nil), b.reqRes...)
	c.respRes = append([]int64(nil), b.respRes...)
	return &c
}

// SnapshotInto copies the bus state into dst, reusing dst's reservation
// backing arrays — the pooled-snapshot-graph variant of Snapshot.
func (b *Bus) SnapshotInto(dst *Bus) {
	dst.Restore(b)
}

// Reset returns the bus to its freshly-constructed idle state (same
// occupancies). Used when a pooled machine is recycled for a new run.
func (b *Bus) Reset() {
	b.reqRes = b.reqRes[:0]
	b.respRes = b.respRes[:0]
	b.monitor = violation.NewMonitor()
	b.Grants, b.Conflicts, b.RespConflicts, b.Violations = 0, 0, 0, 0
}

// Restore overwrites the bus state from a snapshot, reusing the existing
// reservation backing arrays (lengths are bounded by resWindow, so after
// warm-up no restore allocates).
func (b *Bus) Restore(snap *Bus) {
	reqRes := append(b.reqRes[:0], snap.reqRes...)
	respRes := append(b.respRes[:0], snap.respRes...)
	*b = *snap
	b.reqRes, b.respRes = reqRes, respRes
}

// SyncSnapshot brings snap up to date with the live bus, reusing snap's
// backing arrays. The bus state is small and bounded (two reservation
// windows plus scalars), so there is no per-field dirty tracking — the
// whole state is the undo set.
func (b *Bus) SyncSnapshot(snap *Bus) {
	snap.Restore(b)
}

// Equal reports whether two buses hold identical reservations, monitor
// state, and counters (used by checkpoint-equivalence tests).
func (b *Bus) Equal(o *Bus) bool {
	if b.monitor != o.monitor ||
		b.ReqOccupancy != o.ReqOccupancy || b.RespOccupancy != o.RespOccupancy ||
		b.Grants != o.Grants || b.Conflicts != o.Conflicts ||
		b.RespConflicts != o.RespConflicts || b.Violations != o.Violations ||
		len(b.reqRes) != len(o.reqRes) || len(b.respRes) != len(o.respRes) {
		return false
	}
	for i := range b.reqRes {
		if b.reqRes[i] != o.reqRes[i] {
			return false
		}
	}
	for i := range b.respRes {
		if b.respRes[i] != o.respRes[i] {
			return false
		}
	}
	return true
}
