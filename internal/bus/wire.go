package bus

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"slacksim/internal/violation"
)

// Wire serialization for run snapshots. The bus is small and bounded:
// two reservation windows, the grant-order monitor, and counters.

type busWire struct {
	ReqRes, RespRes []int64
	Monitor         violation.Monitor
	ReqOccupancy    int64
	RespOccupancy   int64

	Grants, Conflicts, RespConflicts, Violations uint64
}

// GobEncode implements gob.GobEncoder.
func (b *Bus) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(busWire{
		ReqRes: b.reqRes, RespRes: b.respRes, Monitor: b.monitor,
		ReqOccupancy: b.ReqOccupancy, RespOccupancy: b.RespOccupancy,
		Grants: b.Grants, Conflicts: b.Conflicts,
		RespConflicts: b.RespConflicts, Violations: b.Violations,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (b *Bus) GobDecode(data []byte) error {
	var w busWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.ReqOccupancy <= 0 || w.RespOccupancy <= 0 {
		return fmt.Errorf("bus: wire occupancies %d/%d must be positive", w.ReqOccupancy, w.RespOccupancy)
	}
	*b = Bus{
		reqRes: w.ReqRes, respRes: w.RespRes, monitor: w.Monitor,
		ReqOccupancy: w.ReqOccupancy, RespOccupancy: w.RespOccupancy,
		Grants: w.Grants, Conflicts: w.Conflicts,
		RespConflicts: w.RespConflicts, Violations: w.Violations,
	}
	return nil
}
