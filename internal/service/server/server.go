// Package server implements slacksimd, the simulation-as-a-service HTTP
// layer over the slacksim engine. It composes the service subsystem:
//
//   - a bounded job queue (internal/service/jobqueue) providing admission
//     control — a full queue rejects with 429 + Retry-After so clients
//     back off instead of piling work onto the host;
//   - a content-addressed result cache (internal/service/resultcache)
//     keyed by spec.Key, so identical runs are served without
//     re-simulating, plus single-flight coalescing so N concurrent
//     identical submissions share one engine run;
//   - a worker pool (default GOMAXPROCS) that executes runs through the
//     public slacksim API with the stall watchdog armed, streaming the
//     engine's progress hook out to SSE subscribers;
//   - graceful drain: on SIGTERM the daemon stops admission, finishes
//     every accepted job, and only then exits, so no result is dropped.
//
// API (all JSON):
//
//	POST   /v1/jobs            submit a run spec; 202 + job, 200 on cache hit,
//	                           429 + Retry-After on a full queue
//	GET    /v1/jobs/{id}       job status, including the result when done
//	GET    /v1/jobs/{id}/events  SSE: progress events, then one terminal event
//	DELETE /v1/jobs/{id}       cancel (pending: immediate; running: interrupt)
//	GET    /v1/healthz         liveness ("ok", or "draining" with 503)
//	GET    /v1/statsz          queue/cache/worker counters
//	GET    /metrics            the same counters in Prometheus text format
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"slacksim"
	"slacksim/internal/promtext"
	"slacksim/internal/service/jobqueue"
	"slacksim/internal/service/resultcache"
	"slacksim/internal/spec"
)

// RunContext hands a worker everything it needs to execute one job.
type RunContext struct {
	// JobID identifies the job being executed, so runners that keep
	// per-job state (the fleet coordinator's attempt history) can key it.
	JobID string
	// Spec is the normalized run spec.
	Spec spec.Spec
	// Interrupt cancels the run mid-flight when set true.
	Interrupt *atomic.Bool
	// OnProgress receives the engine's monotone progress snapshots.
	OnProgress func(slacksim.Progress)
	// ProgressEvery is the minimum cycle advance between snapshots.
	ProgressEvery int64
	// StallTimeout arms the parallel host's stall watchdog.
	StallTimeout time.Duration
}

// Runner executes one simulation. The default is RealRunner; tests
// substitute a gated fake to exercise queueing deterministically.
type Runner func(rc RunContext) (*slacksim.Results, error)

// RealRunner builds and runs the simulation through the public slacksim
// API, then verifies the workload's functional result when supported, so
// a run that silently corrupted target memory fails its job instead of
// poisoning the cache.
func RealRunner(rc RunContext) (*slacksim.Results, error) {
	cfg, err := rc.Spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.OnProgress = rc.OnProgress
	cfg.ProgressEvery = rc.ProgressEvery
	cfg.Interrupt = rc.Interrupt
	cfg.StallTimeout = rc.StallTimeout
	sim, err := slacksim.New(cfg)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	if err := sim.Verify(); err != nil {
		return nil, fmt.Errorf("functional check failed: %w", err)
	}
	return &res, nil
}

// Config parameterizes a Server.
type Config struct {
	// QueueDepth bounds the pending FIFO (default 64).
	QueueDepth int
	// Workers sizes the pool (default runtime.GOMAXPROCS(0)).
	Workers int
	// CacheSize bounds the result cache (default 128 entries).
	CacheSize int
	// ProgressEvery throttles the per-job progress stream (default 256
	// cycles — fine-grained enough that even sub-second runs emit events).
	ProgressEvery int64
	// StallTimeout arms each run's stall watchdog (default 30s).
	StallTimeout time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ for live CPU and
	// heap profiling of a busy daemon. Off by default: the profile
	// endpoints expose internals and cost cycles when scraped.
	Pprof bool
	// Runner overrides run execution (default RealRunner; tests use a
	// gated fake, the fleet façade dispatches to remote workers).
	Runner Runner
	// Detail, when non-nil, is asked for extra per-job information to
	// embed in the job view (the fleet façade returns the job's
	// per-attempt dispatch history). A nil return adds nothing.
	Detail func(jobID string) any
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 256
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.Runner == nil {
		c.Runner = RealRunner
	}
	return c
}

// Server is one slacksimd instance: queue + cache + worker pool + HTTP
// handlers. Create with New, serve Handler(), stop with Drain.
type Server struct {
	cfg   Config
	queue *jobqueue.Queue
	cache *resultcache.Cache[*slacksim.Results]

	// mu guards the single-flight table: spec key → in-flight job.
	mu       sync.Mutex
	inflight map[string]*jobqueue.Job

	// interrupts maps job ID → the run's interrupt flag.
	imu        sync.Mutex
	interrupts map[string]*atomic.Bool

	coalesced atomic.Uint64 // submissions attached to an in-flight run
	runs      atomic.Uint64 // engine runs actually executed
	draining  atomic.Bool
	start     time.Time
	wg        sync.WaitGroup
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		queue:      jobqueue.New(cfg.QueueDepth),
		cache:      resultcache.New[*slacksim.Results](cfg.CacheSize),
		inflight:   make(map[string]*jobqueue.Job),
		interrupts: make(map[string]*atomic.Bool),
		start:      time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker pulls jobs until the queue closes and drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, err := s.queue.Next()
		if err != nil {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one admitted job and retires it.
func (s *Server) runJob(j *jobqueue.Job) {
	sp := j.Payload.(spec.Spec)
	s.imu.Lock()
	intr := s.interrupts[j.ID]
	s.imu.Unlock()
	if intr == nil {
		intr = new(atomic.Bool)
	}
	res, err := s.cfg.Runner(RunContext{
		JobID:         j.ID,
		Spec:          sp,
		Interrupt:     intr,
		OnProgress:    func(p slacksim.Progress) { j.Publish(p) },
		ProgressEvery: s.cfg.ProgressEvery,
		StallTimeout:  s.cfg.StallTimeout,
	})
	s.runs.Add(1)
	if err == nil {
		s.cache.Put(j.Key, res)
	}
	if errors.Is(err, slacksim.ErrInterrupted) {
		err = fmt.Errorf("%w: %v", jobqueue.ErrCancelled, err)
	}
	s.mu.Lock()
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	s.mu.Unlock()
	s.imu.Lock()
	delete(s.interrupts, j.ID)
	s.imu.Unlock()
	s.queue.Finish(j, res, err)
}

// Drain gracefully stops the server: admission is closed (POST returns
// 503, healthz reports draining), every already-accepted job runs to
// completion, and the worker pool exits. It returns ctx's error if the
// deadline expires first — results of jobs finished by then are still
// retrievable.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	if err := s.queue.Drain(ctx); err != nil {
		return err
	}
	s.wg.Wait()
	return nil
}

// jobView is the wire representation of a job.
type jobView struct {
	ID        string             `json:"id"`
	State     string             `json:"state"`
	Key       string             `json:"key"`
	Spec      spec.Spec          `json:"spec"`
	Cached    bool               `json:"cached,omitempty"`
	Coalesced bool               `json:"coalesced,omitempty"`
	Progress  *slacksim.Progress `json:"progress,omitempty"`
	Result    *slacksim.Results  `json:"result,omitempty"`
	Error     string             `json:"error,omitempty"`
	// Detail carries runner-specific extras (the fleet façade's
	// per-attempt dispatch history).
	Detail any `json:"detail,omitempty"`
}

func (s *Server) view(j *jobqueue.Job, cached, coalesced bool) jobView {
	v := jobView{
		ID:        j.ID,
		State:     j.State().String(),
		Key:       j.Key,
		Spec:      j.Payload.(spec.Spec),
		Cached:    cached,
		Coalesced: coalesced,
	}
	if s.cfg.Detail != nil {
		v.Detail = s.cfg.Detail(j.ID)
	}
	if p, ok := j.LastEvent().(slacksim.Progress); ok {
		v.Progress = &p
	}
	if j.State().Terminal() {
		if res, err := j.Result(); err != nil {
			v.Error = err.Error()
		} else if r, ok := res.(*slacksim.Results); ok {
			v.Result = r
		}
	}
	return v
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Pprof {
		// net/http/pprof registers only on http.DefaultServeMux; route the
		// prefix to its index handler, which dispatches to the others.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit admits one run spec: cache hit → an immediately-done job;
// identical run in flight → coalesce onto it; otherwise enqueue, or 429
// with Retry-After when the queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var sp spec.Spec
	if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
		writeErr(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	sp = sp.Normalize()
	if err := sp.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := sp.Key()

	// The single-flight window: cache lookup, coalesce check, and enqueue
	// must be atomic or two identical concurrent submissions both miss.
	s.mu.Lock()
	if res, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		j := s.queue.AddDone(key, sp, res)
		writeJSON(w, http.StatusOK, s.view(j, true, false))
		return
	}
	if j, ok := s.inflight[key]; ok {
		s.coalesced.Add(1)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, s.view(j, false, true))
		return
	}
	j, err := s.queue.Submit(key, sp)
	if err != nil {
		s.mu.Unlock()
		if errors.Is(err, jobqueue.ErrFull) {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "queue full (depth %d); retry later", s.cfg.QueueDepth)
			return
		}
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.inflight[key] = j
	s.mu.Unlock()
	s.imu.Lock()
	s.interrupts[j.ID] = new(atomic.Bool)
	s.imu.Unlock()
	writeJSON(w, http.StatusAccepted, s.view(j, false, false))
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.view(j, false, false))
}

// handleDelete cancels a job: pending jobs leave the queue immediately;
// running jobs get their engine interrupt raised and report "cancelling"
// until the run unwinds; terminal jobs are left as they are.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.queue.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	switch err := s.queue.Cancel(id); {
	case err == nil:
		// The job never reached a worker, so release its single-flight and
		// interrupt entries here (runJob would have done it otherwise).
		s.mu.Lock()
		if s.inflight[j.Key] == j {
			delete(s.inflight, j.Key)
		}
		s.mu.Unlock()
		s.imu.Lock()
		delete(s.interrupts, id)
		s.imu.Unlock()
		writeJSON(w, http.StatusOK, s.view(j, false, false))
	case errors.Is(err, jobqueue.ErrNotCancellable) && j.State() == jobqueue.Running:
		s.imu.Lock()
		intr := s.interrupts[id]
		s.imu.Unlock()
		if intr != nil {
			intr.Store(true)
		}
		writeJSON(w, http.StatusAccepted, s.view(j, false, false))
	case errors.Is(err, jobqueue.ErrNotCancellable):
		// Already terminal; report the final state, idempotently.
		writeJSON(w, http.StatusOK, s.view(j, false, false))
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// statsView is /v1/statsz's body.
type statsView struct {
	UptimeSeconds float64           `json:"uptime_s"`
	Workers       int               `json:"workers"`
	Draining      bool              `json:"draining"`
	Runs          uint64            `json:"runs"`
	Coalesced     uint64            `json:"coalesced"`
	Queue         jobqueue.Stats    `json:"queue"`
	Cache         resultcache.Stats `json:"cache"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsView{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		Draining:      s.draining.Load(),
		Runs:          s.runs.Load(),
		Coalesced:     s.coalesced.Load(),
		Queue:         s.queue.Stats(),
		Cache:         s.cache.Stats(),
	})
}

// WriteMetrics renders the service counters in the Prometheus text
// exposition format. The fleet coordinator scrapes exactly these names
// (queue depth, jobs in flight, capacity) for load-aware routing, and
// any metrics stack can scrape GET /metrics directly.
func (s *Server) WriteMetrics(w io.Writer) error {
	q := s.queue.Stats()
	ca := s.cache.Stats()
	p := promtext.NewWriter(w)
	p.Gauge("slacksimd_up", "whether the service is accepting work (0 while draining)", boolGauge(!s.draining.Load()))
	p.Gauge("slacksimd_uptime_seconds", "seconds since the service started", time.Since(s.start).Seconds())
	p.Gauge("slacksimd_workers", "size of the simulation worker pool", float64(s.cfg.Workers))
	p.Gauge("slacksimd_queue_depth", "pending jobs waiting for a worker", float64(q.Depth))
	p.Gauge("slacksimd_queue_capacity", "admission bound of the pending queue", float64(q.Capacity))
	p.Gauge("slacksimd_jobs_running", "jobs currently executing", float64(q.Running))
	p.Counter("slacksimd_jobs_submitted_total", "jobs admitted to the queue", float64(q.Submitted))
	p.Counter("slacksimd_jobs_rejected_total", "submissions rejected by backpressure", float64(q.Rejected))
	p.Counter("slacksimd_jobs_completed_total", "jobs finished successfully", float64(q.Done))
	p.Counter("slacksimd_jobs_failed_total", "jobs finished in error", float64(q.Failed))
	p.Counter("slacksimd_jobs_cancelled_total", "jobs cancelled before completion", float64(q.Cancelled))
	p.Counter("slacksimd_runs_total", "engine runs actually executed", float64(s.runs.Load()))
	p.Counter("slacksimd_coalesced_total", "submissions attached to an in-flight identical run", float64(s.coalesced.Load()))
	p.Gauge("slacksimd_result_cache_entries", "entries in the result cache", float64(ca.Entries))
	p.Gauge("slacksimd_result_cache_capacity", "capacity of the result cache", float64(ca.Capacity))
	p.Counter("slacksimd_result_cache_hits_total", "result cache hits", float64(ca.Hits))
	p.Counter("slacksimd_result_cache_misses_total", "result cache misses", float64(ca.Misses))
	p.Counter("slacksimd_result_cache_evictions_total", "result cache evictions", float64(ca.Evictions))
	return p.Err()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}

// handleEvents streams a job's progress as Server-Sent Events: zero or
// more "progress" events (the latest known snapshot is replayed on
// attach, so every subscriber sees at least one before completion of a
// live run) followed by exactly one terminal event named after the final
// state ("done", "failed", "cancelled") carrying the full job view.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	send := func(event string, v any) {
		blob, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, blob)
		fl.Flush()
	}

	// Subscribe before reading state so no event can slip between the
	// check and the subscription; replay the latest snapshot on attach.
	events, cancel := j.Subscribe(16)
	defer cancel()
	if p, ok := j.LastEvent().(slacksim.Progress); ok {
		send("progress", p)
	}
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				// Terminal: emit the final event and end the stream.
				send(j.State().String(), s.view(j, false, false))
				return
			}
			if p, ok := ev.(slacksim.Progress); ok {
				send("progress", p)
			}
		case <-j.Done():
			// Drain any buffered progress, then terminate. The subscriber
			// channel closes shortly after Done; loop around to catch it.
			select {
			case ev, ok := <-events:
				if ok {
					if p, ok := ev.(slacksim.Progress); ok {
						send("progress", p)
					}
					continue
				}
			default:
			}
			send(j.State().String(), s.view(j, false, false))
			return
		case <-r.Context().Done():
			return
		}
	}
}
